package culpeo_test

import (
	"math/rand"
	"testing"

	"culpeo"
)

func TestPublicQuickstartFlow(t *testing.T) {
	// The README quickstart, as a test: build the Capybara system, compute
	// V_safe for a LoRa-class pulse three ways, and validate against ground
	// truth.
	cfg := culpeo.Capybara()
	model := culpeo.ModelFor(cfg)

	h, err := culpeo.NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := culpeo.PulseLoad(50e-3, 10e-3)
	gt, err := h.GroundTruth(task)
	if err != nil {
		t.Fatal(err)
	}

	// Compile-time (profile-guided).
	pg := culpeo.NewPG(model)
	est, err := pg.Estimate(task)
	if err != nil {
		t.Fatal(err)
	}
	if culpeo.Classify(est.VSafe, gt) == culpeo.Unsafe {
		t.Errorf("PG estimate %g unsafe vs truth %g", est.VSafe, gt)
	}

	// Runtime (ISR probe).
	sys := h.NewSystem()
	sys.Monitor().Force(true)
	rEst, err := culpeo.REstimate(model, sys, culpeo.NewISRProbe(sys.VTerm), task, 0)
	if err != nil {
		t.Fatal(err)
	}
	if culpeo.Classify(rEst.VSafe, gt) == culpeo.Unsafe {
		t.Errorf("R estimate %g unsafe vs truth %g", rEst.VSafe, gt)
	}

	// The energy-only baseline misses the ESR drop.
	cat := culpeo.CatnapEstimate(h, task)
	if culpeo.Classify(cat, gt) != culpeo.Unsafe {
		t.Errorf("CatNap estimate %g vs truth %g should be unsafe", cat, gt)
	}
}

func TestPublicInterfaceFlow(t *testing.T) {
	cfg := culpeo.Capybara()
	model := culpeo.ModelFor(cfg)
	h, err := culpeo.NewHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys := h.NewSystem()
	sys.Monitor().Force(true)

	probe := culpeo.NewUArchProbe(sys.VTerm)
	iface, err := culpeo.NewInterface(model, probe)
	if err != nil {
		t.Fatal(err)
	}

	// The Table I call sequence around a real task execution.
	task := culpeo.BLERadio()
	iface.ProfileStart()
	res := culpeo.DriveTask(sys, probe, task, 0)
	if !res.Completed {
		t.Fatal("profiling run failed")
	}
	if err := iface.ProfileEnd("ble"); err != nil {
		t.Fatal(err)
	}
	culpeo.DriveRebound(sys, probe, 0)
	if err := iface.ReboundEnd("ble"); err != nil {
		t.Fatal(err)
	}
	iface.ComputeVSafe("ble")
	v := iface.GetVSafe("ble")
	if v <= model.VOff || v >= model.VHigh {
		t.Errorf("GetVSafe = %g out of window", v)
	}
	if iface.GetVDrop("ble") <= 0 {
		t.Error("GetVDrop should be positive for a radio pulse")
	}
}

func TestPublicSequenceComposition(t *testing.T) {
	sense := culpeo.TaskReq{ID: "sense", VE: 0.05, VDelta: 0.1}
	radio := culpeo.TaskReq{ID: "radio", VE: 0.1, VDelta: 0.4}
	seq := []culpeo.TaskReq{sense, radio}
	need := culpeo.VSafeMulti(1.6, seq)
	if !(need > 1.6) {
		t.Fatal("sequence requirement must exceed V_off")
	}
	if !culpeo.Feasible(need, 1.6, seq) {
		t.Error("requirement itself must be feasible")
	}
	if culpeo.Feasible(need-0.01, 1.6, seq) {
		t.Error("below requirement must be infeasible")
	}
	vs := culpeo.VSafeSeq(1.6, seq)
	if len(vs) != 2 || vs[0] != need {
		t.Error("VSafeSeq inconsistent with VSafeMulti")
	}
	if culpeo.Penalty(1.6, 0.4, 1.7) <= 0 {
		t.Error("penalty should engage for a large drop")
	}
}

func TestPublicCustomSystem(t *testing.T) {
	// Build a custom two-branch network through the public API.
	esr, err := culpeo.NewESRCurve(
		culpeo.ESRPoint{Hz: 1, Ohm: 8},
		culpeo.ESRPoint{Hz: 1000, Ohm: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if esr.At(1) != 8 {
		t.Error("curve lookup broken")
	}
	net, err := culpeo.NewNetwork(
		&culpeo.Branch{Name: "main", C: 33e-3, ESR: 4, Voltage: 2.4},
		&culpeo.Branch{Name: "dec", C: 400e-6, ESR: 0.05, Voltage: 2.4},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := culpeo.Capybara()
	cfg.Storage = net
	sys, err := culpeo.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Monitor().Force(true)
	res := sys.Run(culpeo.UniformLoad(25e-3, 5e-3), culpeo.RunOptions{SkipRebound: true})
	if !res.Completed {
		t.Error("light pulse should complete")
	}
}

func TestPublicSchedulerFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("application sim")
	}
	app := culpeo.PeriodicSensing()
	dev, err := app.NewDevice(culpeo.NewCulpeoScheduler(app.Model()))
	if err != nil {
		t.Fatal(err)
	}
	streams := app.Streams(30, rand.New(rand.NewSource(1)))
	met, err := dev.Run(streams, 30)
	if err != nil {
		t.Fatal(err)
	}
	if met.PerStream["PS"].CaptureRate() < 99 {
		t.Errorf("capture = %g", met.PerStream["PS"].CaptureRate())
	}
}

func TestPublicArrivalGenerators(t *testing.T) {
	if len(culpeo.PeriodicArrivals(1, 10)) != 9 {
		t.Error("periodic arrivals wrong")
	}
	a := culpeo.PoissonArrivals(rand.New(rand.NewSource(2)), 5, 100)
	if len(a) == 0 {
		t.Error("poisson arrivals empty")
	}
}

func TestPublicHardwareModels(t *testing.T) {
	if culpeo.MSP430ADC12().Bits != 12 || culpeo.MicroArch8().Bits != 8 {
		t.Error("ADC models wrong")
	}
	blk := culpeo.NewCulpeoBlock()
	if blk.ADC.Bits != 8 {
		t.Error("block ADC wrong")
	}
	// Peripheral profiles all exist and are finite.
	for _, p := range []culpeo.Profile{
		culpeo.Gesture(), culpeo.BLERadio(), culpeo.BLEListen(1),
		culpeo.ComputeAccel(), culpeo.LoRa(), culpeo.IMURead(8),
	} {
		if p.Duration() <= 0 {
			t.Errorf("%s degenerate", p.Name())
		}
	}
	if culpeo.LoadEnergy(culpeo.LoRa(), 2.55, 0) <= 0 {
		t.Error("LoadEnergy broken")
	}
}

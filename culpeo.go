// Package culpeo is a Go reproduction of "An Architectural Charge
// Management Interface for Energy-Harvesting Systems" (MICRO 2022).
//
// Culpeo computes V_safe — the minimum energy-buffer voltage at which a
// software task can start and run to completion on a batteryless,
// energy-harvesting device without the capacitor's terminal voltage dipping
// below the power-off threshold. Unlike energy-only charge management,
// Culpeo accounts for the voltage drop induced by the storage capacitor's
// equivalent series resistance (ESR), which rebounds after the load is
// removed and is therefore invisible to energy accounting.
//
// The package exposes three layers:
//
//   - The charge model: VSafePG (compile-time, Algorithm 1 over a current
//     trace), VSafeR (runtime, from three observed voltages), and the
//     VSafeMulti sequence composition with its penalty rule.
//   - The runtime interface of the paper's Table I (Interface):
//     ProfileStart / ProfileEnd / ReboundEnd / ComputeVSafe / GetVSafe /
//     GetVDrop, backed by either the ISR sampling probe or the proposed
//     µArch peripheral block.
//   - The simulation substrate used to evaluate everything: a circuit-level
//     power-system simulator (capacitor networks with ESR, boost
//     converters, V_high/V_off hysteresis), load profiles, a validation
//     harness with ground-truth V_safe search, baseline estimators, and the
//     CatNap/Culpeo schedulers with the paper's three applications.
//
// Start with NewSystem(Capybara()) and the examples/ directory.
package culpeo

import (
	"io"
	"math/rand"

	"culpeo/internal/apps"
	"culpeo/internal/baseline"
	"culpeo/internal/capacitor"
	"culpeo/internal/charact"
	"culpeo/internal/chargetypes"
	"culpeo/internal/core"
	"culpeo/internal/harness"
	"culpeo/internal/harvester"
	"culpeo/internal/intermittent"
	"culpeo/internal/load"
	"culpeo/internal/mcu"
	"culpeo/internal/powersys"
	"culpeo/internal/prob"
	"culpeo/internal/profiler"
	"culpeo/internal/reconfig"
	"culpeo/internal/sched"
	"culpeo/internal/trace"
)

// Charge-model types (the paper's contribution).
type (
	// PowerModel describes what Culpeo knows about a power system:
	// capacitance, the measured ESR-versus-frequency curve, booster
	// efficiency, and the V_high/V_off window.
	PowerModel = core.PowerModel
	// Estimate is a V_safe result: the safe starting voltage, the
	// worst-case ESR drop V_delta, and the energy voltage-cost VE.
	Estimate = core.Estimate
	// Observation is what runtime profiling captures: V_start, V_min,
	// V_final.
	Observation = core.Observation
	// TaskReq is a task's contribution to a sequence requirement.
	TaskReq = core.TaskReq
	// TaskID identifies a task in the runtime tables.
	TaskID = core.TaskID
	// BufferID identifies an energy-buffer configuration.
	BufferID = core.BufferID
	// Interface is the Table I runtime interface.
	Interface = core.Interface
	// Probe abstracts the voltage-capture mechanism behind the interface.
	Probe = core.Probe
)

// Simulation-substrate types.
type (
	// Config assembles a simulated power system.
	Config = powersys.Config
	// System is a running power-system simulation.
	System = powersys.System
	// RunResult summarizes one load execution.
	RunResult = powersys.RunResult
	// RunOptions controls System.Run.
	RunOptions = powersys.RunOptions
	// Branch is one storage element (capacitance behind an ESR).
	Branch = capacitor.Branch
	// Network is a set of storage branches sharing a terminal node.
	Network = capacitor.Network
	// ESRCurve is a measured ESR-versus-frequency characteristic.
	ESRCurve = capacitor.ESRCurve
	// ESRPoint is one sample of an ESRCurve.
	ESRPoint = capacitor.ESRPoint
	// Aging models capacitor lifetime drift (C fade, ESR growth).
	Aging = capacitor.Aging
	// Profile is a current-versus-time load.
	Profile = load.Profile
	// Trace is a sampled current profile.
	Trace = load.Trace
	// Recorder collects voltage/current time series.
	Recorder = trace.Recorder
	// Harness validates estimates against brute-force ground truth.
	Harness = harness.Harness
	// Verdict classifies an estimate against ground truth.
	Verdict = harness.Verdict
)

// Scheduler and application types.
type (
	// SchedPolicy decides when task chains may dispatch.
	SchedPolicy = sched.Policy
	// SchedTask is a schedulable unit.
	SchedTask = sched.Task
	// SchedStream is an event stream with deadlines.
	SchedStream = sched.Stream
	// Device runs an event-driven application under a policy.
	Device = sched.Device
	// Metrics summarizes an application run.
	Metrics = sched.Metrics
	// App bundles one of the paper's evaluation applications.
	App = apps.App
)

// Verdict values.
const (
	Safe     = harness.Safe
	Marginal = harness.Marginal
	Unsafe   = harness.Unsafe
)

// Capybara returns the paper's evaluated hardware configuration: a 45 mF
// supercapacitor bank (six CPX3225A-class parts), TPS61200-style output
// booster at 2.55 V, BQ25504-style input booster, and a 2.56 V / 1.6 V
// monitor window.
func Capybara() Config { return powersys.Capybara() }

// NewSystem builds a power-system simulation from a configuration.
func NewSystem(cfg Config) (*System, error) { return powersys.New(cfg) }

// NewHarness builds the validation harness around a configuration.
func NewHarness(cfg Config) (*Harness, error) { return harness.New(cfg) }

// NewNetwork builds a storage network from branches.
func NewNetwork(branches ...*Branch) (*Network, error) {
	return capacitor.NewNetwork(branches...)
}

// NewESRCurve builds an ESR-versus-frequency curve from measured points.
func NewESRCurve(points ...ESRPoint) (*ESRCurve, error) {
	return capacitor.NewESRCurve(points...)
}

// FlatESR returns a frequency-independent ESR curve.
func FlatESR(ohm float64) *ESRCurve { return capacitor.Flat(ohm) }

// ModelFor derives a Culpeo power model from a simulated configuration
// using a flat ESR curve at the main bank's resistance. Real deployments
// measure the curve; see NewESRCurve.
func ModelFor(cfg Config) PowerModel {
	return PowerModel{
		C:     cfg.Storage.TotalCapacitance(),
		ESR:   capacitor.Flat(cfg.Storage.Main().ESR),
		VOut:  cfg.Output.VOut,
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Eff:   cfg.Output.Efficiency,
	}
}

// VSafePG runs the compile-time, profile-guided analysis (Algorithm 1) on a
// sampled current trace.
func VSafePG(m PowerModel, tr Trace) (Estimate, error) { return core.VSafePG(m, tr) }

// VSafeR runs the runtime calculation (Equations 1 and 3) on a profiled
// observation.
func VSafeR(m PowerModel, o Observation) (Estimate, error) { return core.VSafeR(m, o) }

// VSafeMulti composes the safe starting voltage for an ordered task
// sequence via the penalty recursion.
func VSafeMulti(vOff float64, tasks []TaskReq) float64 { return core.VSafeMulti(vOff, tasks) }

// VSafeSeq returns per-suffix requirements for a task sequence.
func VSafeSeq(vOff float64, tasks []TaskReq) []float64 { return core.VSafeSeq(vOff, tasks) }

// Penalty computes the corrective term for a task's ESR drop given the next
// task's requirement.
func Penalty(vOff, vDelta, vSafeNext float64) float64 {
	return core.Penalty(vOff, vDelta, vSafeNext)
}

// Feasible is Theorem 1's corrected feasibility test.
func Feasible(v, vOff float64, tasks []TaskReq) bool { return core.Feasible(v, vOff, tasks) }

// NewInterface builds the Table I runtime interface around a model and a
// probe (NewISRProbe or NewUArchProbe).
func NewInterface(m PowerModel, p Probe) (*Interface, error) { return core.NewInterface(m, p) }

// NewISRProbe builds the Culpeo-R-ISR sampling probe (1 ms timer interrupt,
// 12-bit on-chip ADC). source supplies the live terminal voltage.
func NewISRProbe(source func() float64) *profiler.ISRProbe {
	return profiler.NewISRProbe(source)
}

// NewUArchProbe builds the Culpeo-µArch peripheral probe (8-bit ADC,
// hardware comparator, 100 kHz clock).
func NewUArchProbe(source func() float64) *profiler.UArchProbe {
	return profiler.NewUArchProbe(source)
}

// NewPG builds the profile-guided analyzer for a model.
func NewPG(m PowerModel) profiler.PG { return profiler.PG{Model: m} }

// ProfileRun executes a fully framed profile (Start → task → End → rebound
// → ReboundEnd) and returns the observation (see also REstimate).
func ProfileRun(sys *System, s profiler.Sampler, task Profile, harvest float64) (Observation, RunResult) {
	return profiler.ProfileRun(sys, s, task, harvest)
}

// DriveTask runs a task while ticking a probe without framing it — use
// between Interface.ProfileStart and Interface.ProfileEnd.
func DriveTask(sys *System, s profiler.Sampler, task Profile, harvest float64) RunResult {
	return profiler.DriveTask(sys, s, task, harvest)
}

// DriveRebound settles the post-task rebound while ticking a probe — use
// between Interface.ProfileEnd and Interface.ReboundEnd.
func DriveRebound(sys *System, s profiler.Sampler, harvest float64) float64 {
	return profiler.DriveRebound(sys, s, harvest)
}

// REstimate profiles a task once and returns its Culpeo-R estimate.
func REstimate(m PowerModel, sys *System, s profiler.Sampler, task Profile, harvest float64) (Estimate, error) {
	return profiler.REstimate(m, sys, s, task, harvest)
}

// Load-profile constructors (Table III and the application peripherals).
var (
	// UniformLoad is a rectangular pulse.
	UniformLoad = load.NewUniform
	// PulseLoad is a pulse followed by 100 ms of low-power compute.
	PulseLoad = load.NewPulse
	// SampleLoad discretizes a profile into a current trace.
	SampleLoad = load.Sample
	// LoadEnergy integrates a profile's energy at the regulated rail.
	LoadEnergy = load.Energy
)

// Peripheral profiles.
func Gesture() Profile                 { return load.Gesture() }
func BLERadio() Profile                { return load.BLERadio() }
func BLEListen(window float64) Profile { return load.BLEListen(window) }
func ComputeAccel() Profile            { return load.ComputeAccel() }
func LoRa() Profile                    { return load.LoRa() }
func IMURead(n int) Profile            { return load.IMURead(n) }

// Baseline estimators (the systems Culpeo is evaluated against).
func EnergyDirectEstimate(h *Harness, task Profile) float64 {
	return baseline.Estimate(baseline.EnergyDirect, h, task)
}
func EnergyVEstimate(h *Harness, task Profile) float64 {
	return baseline.Estimate(baseline.EnergyV, h, task)
}
func CatnapEstimate(h *Harness, task Profile) float64 {
	return baseline.Estimate(baseline.CatnapMeasured, h, task)
}

// Classify applies the paper's 20 mV safety rule to an estimate.
func Classify(estimate, groundTruth float64) Verdict {
	return harness.Classify(estimate, groundTruth)
}

// Schedulers.
func NewCatNapScheduler() *sched.CatNapPolicy { return sched.NewCatNapPolicy() }
func NewCulpeoScheduler(m PowerModel) *sched.CulpeoPolicy {
	return sched.NewCulpeoPolicy(m)
}

// NewDevice wires an application device.
func NewDevice(sys *System, harvest float64, tasks []SchedTask, background *SchedTask, policy SchedPolicy) (*Device, error) {
	return sched.NewDevice(sys, harvest, tasks, background, policy)
}

// The paper's evaluation applications.
func PeriodicSensing() App     { return apps.PeriodicSensing() }
func ResponsiveReporting() App { return apps.ResponsiveReporting() }
func NoiseMonitoring() App     { return apps.NoiseMonitoring() }

// PoissonArrivals and PeriodicArrivals generate event streams.
func PoissonArrivals(rng *rand.Rand, lambda, horizon float64) []float64 {
	return sched.PoissonArrivals(rng, lambda, horizon)
}
func PeriodicArrivals(period, horizon float64) []float64 {
	return sched.PeriodicArrivals(period, horizon)
}

// MSP430ADC12 and MicroArch8 are the two ADC models of the evaluation.
func MSP430ADC12() mcu.ADC { return mcu.MSP430ADC12() }
func MicroArch8() mcu.ADC  { return mcu.MicroArch8() }

// NewCulpeoBlock builds the proposed µArch peripheral block (Table II).
func NewCulpeoBlock() *mcu.CulpeoBlock { return mcu.NewCulpeoBlock() }

// --- extensions beyond the headline evaluation ---------------------------

// Harvester sources (environmental energy models).
type (
	// HarvestSource maps time to harvested power.
	HarvestSource = harvester.Source
	// SolarSource is a clear-sky diurnal profile.
	SolarSource = harvester.Solar
	// ChangeDetector triggers re-profiling when incoming power shifts
	// (Section V-B).
	ChangeDetector = harvester.ChangeDetector
)

// NewSolar builds a diurnal solar source peaking at peak watts.
func NewSolar(peak float64) harvester.Solar { return harvester.NewSolar(peak) }

// NewChangeDetector builds the re-profiling trigger.
func NewChangeDetector(threshold, initial float64) *harvester.ChangeDetector {
	return harvester.NewChangeDetector(threshold, initial)
}

// Intermittent execution (atomic tasks with re-execution).
type (
	// AtomicTask is one unit of atomic re-execution.
	AtomicTask = intermittent.AtomicTask
	// IntermittentProgram is an ordered atomic-task sequence.
	IntermittentProgram = intermittent.Program
	// IntermittentRuntime executes a program intermittently.
	IntermittentRuntime = intermittent.Runtime
	// DispatchGate decides when the next task may start.
	DispatchGate = intermittent.Gate
)

// NewCulpeoGate builds the V_safe dispatch gate for a program.
func NewCulpeoGate(m PowerModel, prog IntermittentProgram) (intermittent.CulpeoGate, error) {
	return intermittent.NewCulpeoGate(m, prog)
}

// DecomposeFeasible splits an oversized task into the smallest number of
// chunks that each fit the buffer (the §III task-division workflow).
func DecomposeFeasible(m PowerModel, task AtomicTask, maxChunks int) ([]AtomicTask, error) {
	return intermittent.DecomposeFeasible(m, task, maxChunks)
}

// FeasibleOn flags the first program task whose V_safe exceeds V_high
// (compile-time non-termination check); -1 means all fit.
func FeasibleOn(m PowerModel, prog IntermittentProgram) (int, error) {
	return intermittent.FeasibleOn(m, prog)
}

// Characterize measures a power system's ESR-versus-frequency curve and
// booster efficiency line (Section IV-B) and assembles the PowerModel.
func Characterize(cfg Config) (PowerModel, error) { return charact.Characterize(cfg) }

// MeasureESRCurve runs just the impedance sweep.
func MeasureESRCurve(cfg Config, widths []float64, iTest float64) (*ESRCurve, error) {
	return charact.MeasureESRCurve(cfg, widths, iTest)
}

// Reconfigurable storage arrays (Section V-B buffer configurations).
type (
	// StorageArray is a software-defined, switchable capacitor array.
	StorageArray = reconfig.Array
	// StorageBank is one physical bank of an array.
	StorageBank = reconfig.Bank
	// ConfigChoice ranks a buffer configuration for a task.
	ConfigChoice = reconfig.Choice
)

// NewStorageArray builds a reconfigurable array.
func NewStorageArray(switchESR float64, banks ...StorageBank) (*StorageArray, error) {
	return reconfig.NewArray(switchESR, banks...)
}

// TraceFromCSV ingests an externally captured current trace for Culpeo-PG.
func TraceFromCSV(r io.Reader, id string, rate float64) (Trace, error) {
	return load.TraceFromCSV(r, id, rate)
}

// Charge-state typing (§IX "Language Constructs").
type (
	// TypedProgram is a call DAG of Culpeo-characterized operations.
	TypedProgram = chargetypes.Program
	// TypedOp is one program element.
	TypedOp = chargetypes.Op
	// TypedCall is an invocation site.
	TypedCall = chargetypes.Call
	// ChargeLevels maps operations to guaranteed entry voltages.
	ChargeLevels = chargetypes.Levels
)

// Typing disciplines.
const (
	EnergyDiscipline  = chargetypes.EnergyDiscipline
	VoltageDiscipline = chargetypes.VoltageDiscipline
)

// InferLevels computes minimal consistent charge-state levels for a
// program under a discipline, reporting operations that cannot fit the
// buffer.
func InferLevels(p TypedProgram, d chargetypes.Discipline) (ChargeLevels, []string, error) {
	return chargetypes.Infer(p, d)
}

// CheckLevels validates declared levels (nil violations = well typed).
func CheckLevels(p TypedProgram, d chargetypes.Discipline, l ChargeLevels) ([]chargetypes.Violation, error) {
	return chargetypes.Check(p, d, l)
}

// Probabilistic resource reasoning (§IX).
type (
	// TaskDist generates task instances with run-to-run cost variation.
	TaskDist = prob.TaskDist
	// KnobPulse is a pulse whose duration varies uniformly.
	KnobPulse = prob.KnobPulse
)

// CompletionProb Monte-Carlo-estimates P(task completes | start voltage).
func CompletionProb(cfg Config, d TaskDist, vStart float64, n int, seed int64) (float64, error) {
	return prob.CompletionProb(cfg, d, vStart, n, seed)
}

// VSafeQuantile finds the lowest start voltage reaching the target
// completion probability.
func VSafeQuantile(cfg Config, d TaskDist, target float64, n int, seed int64) (float64, error) {
	return prob.VSafeQuantile(cfg, d, target, n, seed)
}

// Scheduler event logging.
type (
	// SchedEventLog records dispatches, failures and deadline misses when
	// attached to Device.Log.
	SchedEventLog = sched.EventLog
	// SchedEvent is one log entry.
	SchedEvent = sched.Event
)

// Scheduler event kinds.
const (
	SchedChainStart   = sched.EvChainStart
	SchedChainDone    = sched.EvChainDone
	SchedChainFail    = sched.EvChainFail
	SchedDeadlineMiss = sched.EvDeadlineMiss
	SchedRecharged    = sched.EvRecharged
)

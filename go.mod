module culpeo

go 1.22

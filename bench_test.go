// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each BenchmarkFigXX runs the corresponding experiment driver
// end to end, so `go test -bench=. -benchmem` doubles as the full
// reproduction sweep; see EXPERIMENTS.md for the recorded outputs.
//
// Hygiene rules for this file: every benchmark that allocates reports its
// allocations (b.ReportAllocs), and every benchmark that needs randomness
// builds its own seeded rand.New(rand.NewSource(...)) so runs are
// reproducible and independent of the global source.
package culpeo_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"culpeo"
	"culpeo/internal/expt"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/sweep"
)

func BenchmarkFig01b(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig1b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig03(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig3(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Banks) == 0 {
			b.Fatal("no banks")
		}
	}
}

func BenchmarkFig04(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig5(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable03(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rows, err := expt.Tbl3(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 27 {
			b.Fatal("bad catalogue")
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig10(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig11(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// The application benchmarks use a trimmed horizon (45 s, one trial) so the
// full bench sweep stays minutes-scale; `cmd/culpeo fig12` runs the paper's
// full five-minute, three-trial version.
func BenchmarkFig12(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig12(ctx, expt.Fig12Opts{Horizon: 45, Trials: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig13(ctx, expt.Fig12Opts{Horizon: 45, Trials: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecoupling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Decoupling(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sweep engine: serial vs parallel on the same drivers ----------------

// BenchmarkSweepParallel runs representative drivers with the worker pool
// pinned to 1 and to NumCPU, so `benchstat` shows the parallel speedup
// directly. On a single-core host both sub-benchmarks coincide.
func BenchmarkSweepParallel(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		ctx := sweep.WithWorkers(context.Background(), workers)
		b.Run(fmt.Sprintf("fig10/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := expt.Fig10(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fig11/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := expt.Fig11(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("tbl3/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := expt.Tbl3(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablation benches: design choices called out in DESIGN.md -----------

// BenchmarkAblationTimestep measures the cost of finer integration steps.
func BenchmarkAblationTimestep(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := expt.TimestepSweep(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationADCBits measures the resolution sweep.
func BenchmarkAblationADCBits(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := expt.ADCBitsSweep(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationISRPeriod measures the sampling-period sweep.
func BenchmarkAblationISRPeriod(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := expt.ISRPeriodSweep(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationESRLoss measures the Algorithm 1 I²R comparison.
func BenchmarkAblationESRLoss(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := expt.ESRLossSweep(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks: the hot paths under everything -------------------

// BenchmarkSimStepSingleBranch exercises the closed-form quadratic path.
func BenchmarkSimStepSingleBranch(b *testing.B) {
	sys, err := powersys.New(powersys.Capybara())
	if err != nil {
		b.Fatal(err)
	}
	sys.Monitor().Force(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(10e-3, 1e-3)
		if i%1_000_000 == 0 {
			_ = sys.ChargeTo(2.4) // keep the buffer alive
		}
	}
}

// BenchmarkSimStepMultiBranch exercises the general bisection node solver
// (main bank + decoupling branch).
func BenchmarkSimStepMultiBranch(b *testing.B) {
	net, err := culpeo.NewNetwork(
		&culpeo.Branch{Name: "main", C: 45e-3, ESR: 5, Voltage: 2.4},
		&culpeo.Branch{Name: "dec", C: 400e-6, ESR: 0.05, Voltage: 2.4},
	)
	if err != nil {
		b.Fatal(err)
	}
	cfg := powersys.Capybara()
	cfg.Storage = net
	sys, err := powersys.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys.Monitor().Force(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(10e-3, 1e-3)
		if i%1_000_000 == 0 {
			_ = sys.ChargeTo(2.4)
		}
	}
}

// BenchmarkVSafePG measures Algorithm 1 on a 125 kHz LoRa trace.
func BenchmarkVSafePG(b *testing.B) {
	model := culpeo.ModelFor(culpeo.Capybara())
	tr := load.Sample(load.LoRa(), 125e3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := culpeo.VSafePG(model, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVSafeR measures the runtime calculation — the cost the MCU pays.
func BenchmarkVSafeR(b *testing.B) {
	model := culpeo.ModelFor(culpeo.Capybara())
	obs := culpeo.Observation{VStart: 2.4, VMin: 1.95, VFinal: 2.25}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := culpeo.VSafeR(model, obs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVSafeMulti measures sequence composition for an 8-task chain.
func BenchmarkVSafeMulti(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tasks := make([]culpeo.TaskReq, 8)
	for i := range tasks {
		tasks[i] = culpeo.TaskReq{VE: rng.Float64() * 0.2, VDelta: rng.Float64() * 0.4}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = culpeo.VSafeMulti(1.6, tasks)
	}
}

// BenchmarkGroundTruth measures the brute-force search the estimators are
// judged against.
func BenchmarkGroundTruth(b *testing.B) {
	h, err := culpeo.NewHarness(culpeo.Capybara())
	if err != nil {
		b.Fatal(err)
	}
	task := culpeo.PulseLoad(25e-3, 10e-3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.GroundTruth(task); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepFastPath measures the end-to-end ground-truth sweep on both
// steppers — the ratio of the two sub-benchmarks is the fast-path speedup
// `culpeo bench` records in BENCH_culpeo.json.
func BenchmarkSweepFastPath(b *testing.B) {
	tasks := []load.Profile{
		load.NewUniform(50e-3, 20e-3),
		load.NewPulse(50e-3, 5e-3),
		load.Gesture(),
		load.BLERadio(),
	}
	for _, mode := range []struct {
		name string
		fast bool
	}{{"exact", false}, {"fast", true}} {
		b.Run(mode.name, func(b *testing.B) {
			h, err := culpeo.NewHarness(culpeo.Capybara())
			if err != nil {
				b.Fatal(err)
			}
			h.Fast = mode.fast
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, task := range tasks {
					if _, err := h.GroundTruth(task); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkCharact measures the §IV-B impedance characterization sweep.
func BenchmarkCharact(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Charact(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReprofile measures the §V-B re-profiling experiment.
func BenchmarkReprofile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Reprofile(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntermittent measures the dispatch-gate comparison (trimmed
// 20 s horizon; `cmd/culpeo intermittent` runs the full version).
func BenchmarkIntermittent(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Intermittent(ctx, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompose measures the task-division sweep.
func BenchmarkDecompose(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Decompose(ctx, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterizeModel measures the full power-model measurement.
func BenchmarkCharacterizeModel(b *testing.B) {
	cfg := culpeo.Capybara()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := culpeo.Characterize(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFutureWork measures the §IX extension demonstrations.
func BenchmarkFutureWork(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.ChargeTypes(); err != nil {
			b.Fatal(err)
		}
		if _, err := expt.Probabilistic(); err != nil {
			b.Fatal(err)
		}
	}
}

// Buffer design: use V_safe as a design tool when sizing an energy buffer.
//
// Section III: "If using a device with a configurable energy storage array,
// the programmer can also use V_safe as a guide to configure the energy
// buffer." This example explores two axes for a BLE-reporting workload:
//
//  1. Capacitor technology (Figure 3): assemble 45 mF banks from each
//     technology's best part and see which can actually serve the load.
//  2. Decoupling capacitance (Section II-D): show that even large decoupling
//     cannot absorb a sustained pulse.
//
// Run with: go run ./examples/bufferdesign
package main

import (
	"fmt"
	"log"

	"culpeo"
)

func main() {
	task := culpeo.BLERadio()
	fmt.Printf("workload: %s (13 mA peak, 17 ms)\n\n", task.Name())

	// --- Axis 1: technology choice -------------------------------------
	// Representative best 45 mF banks per technology (volume-optimal points
	// from the Figure 3 sweep, see `culpeo fig3`).
	type bankChoice struct {
		name   string
		esr    float64 // net bank ESR (Ω)
		volume float64 // mm³
		dcl    float64 // A
	}
	banks := []bankChoice{
		{"supercapacitor (6 parts)", 5.0, 42, 20e-9},
		{"tantalum (~30 parts)", 0.03, 3000, 22e-3},
		{"ceramic (>2000 parts)", 10e-3 / 2045, 4800, 10e-6},
		{"electrolytic", 0.08, 500000, 1e-4},
	}
	fmt.Println("technology choice for a 45 mF buffer:")
	for _, b := range banks {
		cfg := culpeo.Capybara()
		net, err := culpeo.NewNetwork(&culpeo.Branch{
			Name: "main", C: 45e-3, ESR: b.esr, Leakage: b.dcl, Voltage: cfg.VHigh,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg.Storage = net
		model := culpeo.ModelFor(cfg)
		est, err := culpeo.NewPG(model).Estimate(task)
		if err != nil {
			log.Fatal(err)
		}
		headroom := (cfg.VHigh - est.VSafe) / (cfg.VHigh - cfg.VOff) * 100
		fmt.Printf("  %-26s vol %8.0f mm³  leak %8.2e A  V_safe %.3f V  headroom %5.1f%%\n",
			b.name, b.volume, b.dcl, est.VSafe, headroom)
	}
	fmt.Println("\n  The supercapacitor wins on volume and leakage by orders of magnitude;")
	fmt.Println("  its ESR cost shows up as a higher V_safe — which Culpeo quantifies so")
	fmt.Println("  the designer can budget for it instead of discovering it in the field.")

	// --- Axis 2: decoupling capacitance --------------------------------
	fmt.Println("\ndecoupling capacitance vs a sustained 50 mA / 100 ms pulse (33 mF, 3 Ω):")
	lora := culpeo.UniformLoad(50e-3, 100e-3)
	for _, dec := range []float64{0, 400e-6, 1.6e-3, 6.4e-3} {
		branches := []*culpeo.Branch{{Name: "main", C: 33e-3, ESR: 3, Voltage: 2.56}}
		if dec > 0 {
			branches = append(branches, &culpeo.Branch{Name: "dec", C: dec, ESR: 0.05, Voltage: 2.56})
		}
		net, err := culpeo.NewNetwork(branches...)
		if err != nil {
			log.Fatal(err)
		}
		cfg := culpeo.Capybara()
		cfg.Storage = net
		sys, err := culpeo.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sys.Monitor().Force(true)
		res := sys.Run(lora, culpeo.RunOptions{})
		esrDrop := res.VFinal - res.VMin
		fmt.Printf("  decoupling %7.1f mF → residual ESR drop %.3f V (%.0f%% of operating range)\n",
			dec*1e3, esrDrop, esrDrop/(cfg.VHigh-cfg.VOff)*100)
	}
	fmt.Println("\n  Decoupling absorbs transients, not sustained loads — the 'go-to'")
	fmt.Println("  circuit fix does not remove the need for ESR-aware scheduling.")

	reconfigurableArray()
}

// reconfigurableArray demonstrates the §V-B reconfigurable storage story:
// per-buffer-configuration V_safe tables and recharge-time-ranked choice.
func reconfigurableArray() {
	fmt.Println("\nreconfigurable array: pick a buffer configuration per task (§V-B):")
	arr, err := culpeo.NewStorageArray(0.05,
		culpeo.StorageBank{Name: "small", C: 7.5e-3, ESR: 30},
		culpeo.StorageBank{Name: "big-1", C: 22.5e-3, ESR: 10},
		culpeo.StorageBank{Name: "big-2", C: 22.5e-3, ESR: 10},
	)
	if err != nil {
		log.Fatal(err)
	}
	must := func(e error) {
		if e != nil {
			log.Fatal(e)
		}
	}
	must(arr.Define("small", 0))
	must(arr.Define("big", 1, 2))
	must(arr.Define("all", 0, 1, 2))

	template := culpeo.Capybara()
	model, err := arr.Model("all", template)
	if err != nil {
		log.Fatal(err)
	}
	iface, err := culpeo.NewInterface(model, culpeo.NewUArchProbe(func() float64 { return template.VHigh }))
	if err != nil {
		log.Fatal(err)
	}
	task := culpeo.UniformLoad(25e-3, 10e-3)
	if err := arr.ProfileAcross(iface, template, "radio", task); err != nil {
		log.Fatal(err)
	}
	choices, err := arr.Choose(iface, template, "radio", 2.5e-3)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range choices {
		status := fmt.Sprintf("V_safe %.3f V, recharge-to-ready %.1f s", c.VSafe, c.RechargeTime)
		if !c.Feasible {
			status = fmt.Sprintf("INFEASIBLE (V_safe %.2f V > V_high)", c.VSafe)
		}
		fmt.Printf("  config %-6s %s\n", c.Config, status)
	}
	fmt.Println("\n  The lone high-ESR bank cannot serve the 25 mA radio at any voltage;")
	fmt.Println("  among the feasible configurations, the chooser ranks by how quickly")
	fmt.Println("  the configuration recharges to its own V_safe.")
}

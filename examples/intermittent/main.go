// Intermittent execution: atomic tasks, re-execution, and Culpeo-guided
// task division.
//
// The paper's introduction motivates Culpeo with the failure economics of
// intermittent computing: tasks interrupted by power failure re-execute
// from scratch, and "trying to execute a task with insufficient stored
// energy dooms the device to fail ... [and] risks prolonged
// non-termination". This example shows all three acts on a marginal
// 15 mF / 15 Ω device:
//
//  1. A sense→process→report pipeline under opportunistic vs Culpeo-gated
//     dispatch: the opportunistic runtime burns energy on attempts the ESR
//     drop dooms.
//  2. A job whose whole-task V_safe exceeds V_high: the opportunistic
//     runtime livelocks; Culpeo-PG flags it before deployment (§III).
//  3. DecomposeFeasible splits the job into the smallest number of atomic
//     chunks that each fit, and the decomposed program terminates.
//
// Run with: go run ./examples/intermittent
package main

import (
	"fmt"
	"log"

	"culpeo"
)

func main() {
	// A marginal device: two 7.5 mF / 30 Ω supercaps → 15 mF at 15 Ω.
	cfg := culpeo.Capybara()
	net, err := culpeo.NewNetwork(&culpeo.Branch{
		Name: "main", C: 15e-3, ESR: 15, Voltage: cfg.VHigh,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg.Storage = net
	cfg.DT = 40e-6
	model := culpeo.ModelFor(cfg)

	// --- Act 1: dispatch gates on a feasible pipeline -------------------
	pipeline := culpeo.IntermittentProgram{
		Name: "sense-pipeline",
		Tasks: []culpeo.AtomicTask{
			{ID: "sample", Profile: culpeo.IMURead(16)},
			{ID: "report", Profile: culpeo.UniformLoad(20e-3, 20e-3)},
		},
	}
	gate, err := culpeo.NewCulpeoGate(model, pipeline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Act 1 — pipeline on 1.5 mW harvest, 60 s:")
	for _, g := range []culpeo.DispatchGate{gateless{}, gate} {
		sys, err := culpeo.NewSystem(cloneCfg(cfg))
		if err != nil {
			log.Fatal(err)
		}
		rt := &culpeo.IntermittentRuntime{Sys: sys, Harvest: 1.5e-3, Gate: g, MaxAttempts: 1000}
		res, err := rt.Run(pipeline, 60)
		if err != nil {
			log.Fatal(err)
		}
		waste := 0.0
		if tot := res.WastedEnergy + res.UsefulEnergy; tot > 0 {
			waste = res.WastedEnergy / tot * 100
		}
		fmt.Printf("  %-14s %2d iterations, %3d re-executions, %4.1f%% energy wasted\n",
			g.Name(), res.Iterations, res.Reexecutions, waste)
	}

	// --- Act 2: the doomed job ------------------------------------------
	big := culpeo.AtomicTask{ID: "bigjob", Profile: culpeo.UniformLoad(10e-3, 3.0)}
	doomed := culpeo.IntermittentProgram{Name: "doomed", Tasks: []culpeo.AtomicTask{big}}
	idx, err := culpeo.FeasibleOn(model, doomed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAct 2 — a 10 mA × 3 s job (≈100 mJ) on a 15 mF buffer (≈30 mJ usable):")
	if idx >= 0 {
		ests, _ := culpeo.NewCulpeoGate(model, doomed)
		fmt.Printf("  Culpeo-PG flags task %q at compile time: V_safe %.2f V > V_high %.2f V\n",
			doomed.Tasks[idx].ID, ests.VSafe[idx], model.VHigh)
	}
	sys, err := culpeo.NewSystem(cloneCfg(cfg))
	if err != nil {
		log.Fatal(err)
	}
	rt := &culpeo.IntermittentRuntime{Sys: sys, Harvest: 2.5e-3, Gate: gateless{}, MaxAttempts: 8}
	res, err := rt.Run(doomed, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Opportunistic execution: %d failed attempts, livelocked=%v — prolonged non-termination\n",
		res.Reexecutions, res.LiveLocked)

	// --- Act 3: Culpeo-guided task division ------------------------------
	chunks, err := culpeo.DecomposeFeasible(model, big, 16)
	if err != nil {
		log.Fatal(err)
	}
	fixed := culpeo.IntermittentProgram{Name: "fixed", Tasks: chunks}
	fixedGate, err := culpeo.NewCulpeoGate(model, fixed)
	if err != nil {
		log.Fatal(err)
	}
	sys, err = culpeo.NewSystem(cloneCfg(cfg))
	if err != nil {
		log.Fatal(err)
	}
	rt = &culpeo.IntermittentRuntime{Sys: sys, Harvest: 2.5e-3, Gate: fixedGate}
	res, err = rt.Run(fixed, 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAct 3 — DecomposeFeasible splits the job into %d chunks (chunk V_safe %.2f V):\n",
		len(chunks), fixedGate.VSafe[0])
	fmt.Printf("  the decomposed program completes %d full passes in 300 s with %d re-executions.\n",
		res.Iterations, res.Reexecutions)
}

// gateless is the opportunistic dispatcher of early intermittent systems.
type gateless struct{}

func (gateless) Name() string            { return "opportunistic" }
func (gateless) Ready(int, float64) bool { return true }

func cloneCfg(cfg culpeo.Config) culpeo.Config {
	out := cfg
	out.Storage = cfg.Storage.Clone()
	return out
}

// Scheduler integration: run the paper's Responsive Reporting application
// under the energy-only CatNap scheduler and under the Culpeo-corrected
// scheduler, and compare event-capture rates.
//
// Responsive Reporting (Section VI-B): GPIO interrupts arrive as a Poisson
// process (λ = 45 s); each triggers a chain — read 32 IMU samples, encrypt
// them, transmit over BLE, listen 2 s for a response — that must finish
// within 3 s. A background photoresistor task soaks up surplus energy.
//
// CatNap's feasibility test reasons about energy only: it dispatches the
// chain at voltages that cannot survive the BLE pulse's ESR drop, browns
// out, and then spends tens of seconds recharging to V_high — missing
// events. Culpeo replaces the test with Theorem 1 (voltage ≥ V_safe_multi).
//
// Run with: go run ./examples/scheduler
package main

import (
	"fmt"
	"log"
	"math/rand"

	"culpeo"
)

const horizon = 300 // the paper's five-minute trials

func main() {
	app := culpeo.ResponsiveReporting()

	fmt.Printf("Responsive Reporting on a %.0f mF bank, %.1f mW harvest, %d s horizon\n\n",
		app.Config.Storage.TotalCapacitance()*1e3, app.Harvest*1e3, horizon)

	for seed := int64(1); seed <= 3; seed++ {
		cat := run(app, culpeo.NewCatNapScheduler(), seed)
		cul := run(app, culpeo.NewCulpeoScheduler(app.Model()), seed)
		fmt.Printf("trial %d:  CatNap %3.0f%% captured (%d power failures)   Culpeo %3.0f%% captured (%d power failures)\n",
			seed,
			cat.PerStream["RR"].CaptureRate(), cat.PowerFailures,
			cul.PerStream["RR"].CaptureRate(), cul.PowerFailures)
	}

	// Peek inside the Culpeo runtime: the per-task V_safe table the
	// scheduler consults (Table I's get_vsafe / get_vdrop).
	pol := culpeo.NewCulpeoScheduler(app.Model())
	dev, err := app.NewDevice(pol)
	if err != nil {
		log.Fatal(err)
	}
	streams := app.Streams(1, rand.New(rand.NewSource(1)))
	if _, err := dev.Run(streams, 1); err != nil { // triggers Prepare
		log.Fatal(err)
	}
	fmt.Println("\nCulpeo per-task estimates (ISR-profiled once at startup):")
	for _, id := range pol.Interface().Tasks() {
		fmt.Printf("  %-11s V_safe %.3f V   V_delta %.3f V\n",
			id, pol.Interface().GetVSafe(id), pol.Interface().GetVDrop(id))
	}
	chain := []culpeo.TaskID{"imu-read", "encrypt", "ble-tx", "ble-listen"}
	if v, ok := pol.Interface().SeqVSafe(chain); ok {
		fmt.Printf("  whole chain V_safe_multi = %.3f V\n", v)
	}

	// A timeline of CatNap's failures, from the scheduler's event log.
	_, elog := runLogged(app, culpeo.NewCatNapScheduler(), 1)
	fmt.Println("\nCatNap trial-1 timeline (failures and misses only):")
	shown := 0
	for _, e := range elog.Events {
		if e.Kind == culpeo.SchedChainFail || e.Kind == culpeo.SchedDeadlineMiss {
			fmt.Println("  " + e.String())
			shown++
			if shown == 8 {
				fmt.Println("  ...")
				break
			}
		}
	}
}

func run(app culpeo.App, pol culpeo.SchedPolicy, seed int64) culpeo.Metrics {
	met, _ := runLogged(app, pol, seed)
	return met
}

func runLogged(app culpeo.App, pol culpeo.SchedPolicy, seed int64) (culpeo.Metrics, *culpeo.SchedEventLog) {
	dev, err := app.NewDevice(pol)
	if err != nil {
		log.Fatal(err)
	}
	elog := &culpeo.SchedEventLog{}
	dev.Log = elog
	streams := app.Streams(horizon, rand.New(rand.NewSource(seed)))
	met, err := dev.Run(streams, horizon)
	if err != nil {
		log.Fatal(err)
	}
	return met, elog
}

// Quickstart: compute a safe starting voltage for a radio transmission.
//
// This example walks the core Culpeo workflow on the paper's Capybara-class
// power system: a 45 mF supercapacitor bank whose ~5 Ω ESR makes energy-only
// charge management unsafe.
//
//  1. Describe the power system to Culpeo (PowerModel).
//  2. Ask three estimators for the LoRa packet's V_safe: the compile-time
//     profile-guided analysis, the runtime ISR implementation, and the
//     energy-only CatNap baseline.
//  3. Validate each answer by actually launching the packet from the
//     estimated voltage on the simulated hardware.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"culpeo"
)

func main() {
	cfg := culpeo.Capybara()
	model := culpeo.ModelFor(cfg)
	task := culpeo.LoRa() // 50 mA for 100 ms

	h, err := culpeo.NewHarness(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: brute-force binary search on the simulated hardware,
	// exactly the paper's validation methodology (Section VI-A).
	truth, err := h.GroundTruth(task)
	if err != nil {
		log.Fatalf("the LoRa packet cannot run on this buffer: %v", err)
	}
	fmt.Printf("load %-14s ground-truth V_safe = %.3f V (window %.2f–%.2f V)\n\n",
		task.Name(), truth, cfg.VOff, cfg.VHigh)

	// Culpeo-PG: compile time, from a sampled current trace + power model.
	pg, err := culpeo.NewPG(model).Estimate(task)
	if err != nil {
		log.Fatal(err)
	}
	report(h, "Culpeo-PG (compile time)", pg.VSafe, truth, task)

	// Culpeo-R: runtime, from one profiled execution (ISR sampling).
	sys := h.NewSystem()
	sys.Monitor().Force(true)
	r, err := culpeo.REstimate(model, sys, culpeo.NewISRProbe(sys.VTerm), task, 0)
	if err != nil {
		log.Fatal(err)
	}
	report(h, "Culpeo-R  (runtime, ISR)", r.VSafe, truth, task)
	fmt.Printf("    → per-task V_delta (worst-case ESR drop): %.3f V\n\n", r.VDelta)

	// The energy-only baseline misses the ESR drop entirely.
	cat := culpeo.CatnapEstimate(h, task)
	report(h, "CatNap    (energy only)", cat, truth, task)

	fmt.Println("\nThe ESR drop rebounds after the load — energy accounting cannot see")
	fmt.Println("it, which is why the CatNap launch browns out with energy to spare.")
}

func report(h *culpeo.Harness, name string, vsafe, truth float64, task culpeo.Profile) {
	res := h.RunAt(vsafe, task, culpeo.RunOptions{SkipRebound: true})
	outcome := "POWER FAILURE"
	if res.Completed && res.VMin >= h.Config().VOff {
		outcome = fmt.Sprintf("completes, V_min %.3f V", res.VMin)
	}
	fmt.Printf("%s: V_safe %.3f V (%+5.1f%% of range vs truth) → %s\n",
		name, vsafe, h.ErrorPercent(vsafe, truth), outcome)
}

// Aging: how capacitor wear breaks compile-time estimates and how Culpeo-R
// re-profiling adapts.
//
// Section IV-C: "Culpeo-PG assumes a static ESR model, but supercapacitor
// ESR and nominal capacitance change over the device lifetime (years).
// Capacitance can reduce to less than 80% of nominal and ESR can increase
// to double its nominal ... A runtime V_safe calculation captures these
// aging effects by rerunning periodically."
//
// This example sweeps the device's life fraction, comparing:
//   - the stale Culpeo-PG estimate computed once at deployment, and
//   - the fresh Culpeo-R estimate re-profiled on the aged hardware,
//
// against the aged hardware's true V_safe.
//
// Run with: go run ./examples/aging
package main

import (
	"fmt"
	"log"

	"culpeo"
)

func main() {
	task := culpeo.PulseLoad(25e-3, 10e-3)
	fresh := culpeo.Capybara()
	freshModel := culpeo.ModelFor(fresh)

	// Culpeo-PG runs once, against the fresh power-system model.
	stale, err := culpeo.NewPG(freshModel).Estimate(task)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("task: %s — deployment-time Culpeo-PG V_safe = %.3f V\n\n", task.Name(), stale.VSafe)
	fmt.Println("life   C factor  ESR factor  true V_safe  stale PG     fresh Culpeo-R")

	for _, life := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		aging := culpeo.Aging{LifeFraction: life}

		// Build the aged hardware.
		agedCfg := culpeo.Capybara()
		main := agedCfg.Storage.Main()
		main.C *= aging.CapacitanceFactor()
		main.ESR *= aging.ESRFactor()

		h, err := culpeo.NewHarness(agedCfg)
		if err != nil {
			log.Fatal(err)
		}
		truth, err := h.GroundTruth(task)
		if err != nil {
			log.Fatal(err)
		}

		// Re-profile on the aged hardware: Culpeo-R sees the real behaviour
		// through the ADC, no model update required.
		sys := h.NewSystem()
		sys.Monitor().Force(true)
		rEst, err := culpeo.REstimate(freshModel, sys, culpeo.NewISRProbe(sys.VTerm), task, 0)
		if err != nil {
			log.Fatal(err)
		}

		verdict := func(v float64) string {
			switch culpeo.Classify(v, truth) {
			case culpeo.Safe:
				return fmt.Sprintf("%.3f ✓", v)
			case culpeo.Marginal:
				return fmt.Sprintf("%.3f ~", v)
			default:
				return fmt.Sprintf("%.3f ✗", v)
			}
		}
		fmt.Printf("%4.0f%%  ×%.2f     ×%.2f       %.3f        %-11s  %s\n",
			life*100, aging.CapacitanceFactor(), aging.ESRFactor(),
			truth, verdict(stale.VSafe), verdict(rEst.VSafe))
	}

	fmt.Println("\n✓ safe   ~ marginal (within 20 mV)   ✗ unsafe (reliably fails)")
	fmt.Println("\nAs ESR doubles, the true V_safe climbs past the stale compile-time")
	fmt.Println("estimate; re-profiling with Culpeo-R tracks the drift because the")
	fmt.Println("observation (V_start, V_min, V_final) reflects the aged hardware.")
}

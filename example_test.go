package culpeo_test

import (
	"fmt"

	"culpeo"
)

// The penalty rule of Section IV-A: a task's ESR drop only costs extra
// starting voltage when the next task's requirement is too low to absorb
// it.
func ExamplePenalty() {
	vOff := 1.6
	// Next task needs 1.9 V — enough headroom for a 0.2 V dip.
	fmt.Printf("%.2f\n", culpeo.Penalty(vOff, 0.2, 1.9))
	// A 0.5 V dip would cross V_off: the penalty tops the requirement up.
	fmt.Printf("%.2f\n", culpeo.Penalty(vOff, 0.5, 1.9))
	// Output:
	// 0.00
	// 0.20
}

// Composing a sense→radio sequence: the radio's large ESR drop dominates
// the requirement, exactly the Figure 5 scenario.
func ExampleVSafeMulti() {
	vOff := 1.6
	tasks := []culpeo.TaskReq{
		{ID: "sense", VE: 0.08, VDelta: 0.05},
		{ID: "radio", VE: 0.12, VDelta: 0.45},
	}
	fmt.Printf("V_safe_multi = %.2f V\n", culpeo.VSafeMulti(vOff, tasks))
	energyOnly := vOff + 0.08 + 0.12
	fmt.Printf("energy-only  = %.2f V\n", energyOnly)
	// Output:
	// V_safe_multi = 2.25 V
	// energy-only  = 1.80 V
}

// Theorem 1's corrected feasibility test.
func ExampleFeasible() {
	tasks := []culpeo.TaskReq{{ID: "radio", VE: 0.1, VDelta: 0.4}}
	need := culpeo.VSafeMulti(1.6, tasks)
	fmt.Println(culpeo.Feasible(need, 1.6, tasks))
	fmt.Println(culpeo.Feasible(need-0.05, 1.6, tasks))
	// Output:
	// true
	// false
}

// Compile-time analysis of a radio pulse on the Capybara power system.
func ExampleVSafePG() {
	model := culpeo.ModelFor(culpeo.Capybara())
	task := culpeo.PulseLoad(50e-3, 10e-3) // 50 mA for 10 ms + compute tail
	tr := culpeo.SampleLoad(task, 125e3)
	est, err := culpeo.VSafePG(model, tr)
	if err != nil {
		panic(err)
	}
	fmt.Printf("V_safe %.2f V (energy %.2f V + ESR drop %.2f V above V_off)\n",
		est.VSafe, est.VE, est.VDelta)
	// Output:
	// V_safe 2.19 V (energy 0.03 V + ESR drop 0.55 V above V_off)
}

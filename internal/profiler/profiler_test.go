package profiler

import (
	"math"
	"testing"

	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

func testModel() core.PowerModel {
	cfg := powersys.Capybara()
	return core.PowerModel{
		C:     cfg.Storage.TotalCapacitance(),
		ESR:   capacitor.Flat(cfg.Storage.Main().ESR),
		VOut:  cfg.Output.VOut,
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Eff:   cfg.Output.Efficiency,
	}
}

func newHarness(t *testing.T) *harness.Harness {
	t.Helper()
	h, err := harness.New(powersys.Capybara())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPGEstimateSafeForTableLoads(t *testing.T) {
	h := newHarness(t)
	pg := PG{Model: testModel()}
	for _, p := range load.Fig6Loads() {
		est, err := pg.Estimate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		gt, err := h.GroundTruth(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if v := harness.Classify(est.VSafe, gt); v == harness.Unsafe {
			t.Errorf("%s: Culpeo-PG estimate %g unsafe vs ground truth %g",
				p.Name(), est.VSafe, gt)
		}
		// Performant: within 15 % of the operating range above truth.
		if errPct := h.ErrorPercent(est.VSafe, gt); errPct > 15 {
			t.Errorf("%s: Culpeo-PG overshoot %g%%", p.Name(), errPct)
		}
	}
}

func profileAt(t *testing.T, h *harness.Harness, mk func(src func() float64) Sampler, task load.Profile, vStart float64) (core.Observation, powersys.RunResult) {
	t.Helper()
	sys := h.NewSystem()
	if err := sys.DischargeTo(vStart); err != nil {
		t.Fatal(err)
	}
	sys.Monitor().Force(true)
	s := mk(sys.VTerm)
	return ProfileRun(sys, s, task, 0)
}

func TestISRProbeObservation(t *testing.T) {
	h := newHarness(t)
	obs, res := profileAt(t, h, func(src func() float64) Sampler { return NewISRProbe(src) },
		load.NewPulse(25e-3, 10e-3), 2.4)
	if !res.Completed {
		t.Fatal("profiling run failed")
	}
	if err := obs.Validate(); err != nil {
		t.Fatalf("invalid observation: %v (obs=%+v)", err, obs)
	}
	// V_start near 2.4 (quantized down by at most one 12-bit LSB).
	if obs.VStart > 2.4 || obs.VStart < 2.4-2e-3 {
		t.Errorf("VStart = %g", obs.VStart)
	}
	// The minimum must reflect the ESR drop of a 25 mA pulse through 1.5 Ω
	// (tens of millivolts at least).
	if obs.VStart-obs.VMin < 30e-3 {
		t.Errorf("observed drop too small: %g", obs.VStart-obs.VMin)
	}
	// And rebound recovers most of it.
	if obs.VFinal-obs.VMin < 0.3*(obs.VStart-obs.VMin) {
		t.Errorf("rebound too small: min=%g final=%g", obs.VMin, obs.VFinal)
	}
}

func TestUArchProbeObservation(t *testing.T) {
	h := newHarness(t)
	obs, res := profileAt(t, h, func(src func() float64) Sampler { return NewUArchProbe(src) },
		load.NewPulse(25e-3, 10e-3), 2.4)
	if !res.Completed {
		t.Fatal("profiling run failed")
	}
	if err := obs.Validate(); err != nil {
		t.Fatalf("invalid observation: %v (obs=%+v)", err, obs)
	}
	if obs.VStart-obs.VMin < 30e-3 {
		t.Errorf("observed drop too small: %g", obs.VStart-obs.VMin)
	}
}

func TestISRMissesFastMinimum(t *testing.T) {
	// The paper's Figure 10 quirk: Culpeo-R-ISR's 1 ms sampling misses the
	// minimum of a 1 ms, 50 mA pulse, while the 100 kHz µArch block sees it.
	h := newHarness(t)
	task := load.NewPulse(50e-3, 1e-3)
	isrObs, _ := profileAt(t, h, func(src func() float64) Sampler { return NewISRProbe(src) }, task, 2.4)
	uaObs, _ := profileAt(t, h, func(src func() float64) Sampler { return NewUArchProbe(src) }, task, 2.4)
	if !(uaObs.VDelta() > isrObs.VDelta()+20e-3) {
		t.Errorf("µArch VDelta %g should exceed ISR VDelta %g for a 1 ms pulse",
			uaObs.VDelta(), isrObs.VDelta())
	}
}

func TestProbesReportExtraCurrent(t *testing.T) {
	isr := NewISRProbe(func() float64 { return 2.4 })
	if isr.ExtraCurrent() != 0 {
		t.Error("idle ISR probe draws current")
	}
	isr.Start()
	if isr.ExtraCurrent() != isr.ADC.SupplyCurrent {
		t.Error("task-phase ISR probe should draw full ADC current")
	}
	isr.End()
	if got := isr.ExtraCurrent(); got <= 0 || got >= isr.ADC.SupplyCurrent {
		t.Errorf("rebound-phase ISR draw should be duty-cycled: %g", got)
	}
	isr.ReboundEnd()
	if isr.ExtraCurrent() != 0 {
		t.Error("finished ISR probe draws current")
	}

	ua := NewUArchProbe(func() float64 { return 2.4 })
	if ua.ExtraCurrent() != 0 {
		t.Error("idle µArch probe draws current")
	}
	ua.Start()
	if ua.ExtraCurrent() <= 0 || ua.ExtraCurrent() > 100e-9 {
		t.Errorf("µArch draw should be nanoamps: %g", ua.ExtraCurrent())
	}
	ua.ReboundEnd()
	if ua.ExtraCurrent() != 0 {
		t.Error("disabled µArch probe draws current")
	}
}

func TestREstimateSafety(t *testing.T) {
	// Culpeo-R estimates (both probes) must be safe for the Figure 6 loads.
	h := newHarness(t)
	model := testModel()
	for _, task := range load.Fig6Loads() {
		gt, err := h.GroundTruth(task)
		if err != nil {
			t.Fatalf("%s: %v", task.Name(), err)
		}
		for _, mk := range []struct {
			name string
			f    func(src func() float64) Sampler
		}{
			{"isr", func(src func() float64) Sampler { return NewISRProbe(src) }},
			{"uarch", func(src func() float64) Sampler { return NewUArchProbe(src) }},
		} {
			sys := h.NewSystem()
			sys.Monitor().Force(true)
			est, err := REstimate(model, sys, mk.f(sys.VTerm), task, 0)
			if err != nil {
				t.Fatalf("%s/%s: %v", task.Name(), mk.name, err)
			}
			if v := harness.Classify(est.VSafe, gt); v == harness.Unsafe {
				t.Errorf("%s/%s: estimate %g unsafe vs truth %g",
					task.Name(), mk.name, est.VSafe, gt)
			}
		}
	}
}

func TestREstimateFailedRunFallsBack(t *testing.T) {
	// Profiling a task that fails yields the conservative V_high fallback.
	model := testModel()
	h := newHarness(t)
	sys := h.NewSystem()
	if err := sys.DischargeTo(1.65); err != nil {
		t.Fatal(err)
	}
	sys.Monitor().Force(true)
	est, err := REstimate(model, sys, NewISRProbe(sys.VTerm), load.LoRa(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.VSafe != model.VHigh {
		t.Errorf("fallback VSafe = %g, want VHigh", est.VSafe)
	}
	if !math.IsNaN(est.VDelta) {
		t.Error("fallback VDelta should be NaN")
	}
}

func TestPGSampleRateDefault(t *testing.T) {
	pg := PG{Model: testModel(), SampleRate: 0}
	if _, err := pg.Estimate(load.Gesture()); err != nil {
		t.Fatal(err)
	}
}

func TestProbesAsCoreProbe(t *testing.T) {
	// Both probes satisfy core.Probe and integrate with the Table I
	// interface.
	var _ core.Probe = NewISRProbe(func() float64 { return 2.4 })
	var _ core.Probe = NewUArchProbe(func() float64 { return 2.4 })
}

// TestEstimateTraceMatchesEstimate: handing PG a pre-sampled trace must give
// bit-identical results to sampling the profile itself, for every cache
// routing (the serving layer's upload path relies on this equivalence).
func TestEstimateTraceMatchesEstimate(t *testing.T) {
	model := testModel()
	task := load.NewPulse(25e-3, 10e-3)
	tr := load.Sample(task, load.SampleRateDefault)
	for _, tc := range []struct {
		name string
		pg   PG
	}{
		{"default-cache", PG{Model: model}},
		{"private-cache", PG{Model: model, Cache: core.NewVSafeCache(4)}},
		{"no-cache", PG{Model: model, NoCache: true}},
	} {
		want, err := tc.pg.Estimate(task)
		if err != nil {
			t.Fatalf("%s: Estimate: %v", tc.name, err)
		}
		got, err := tc.pg.EstimateTrace(tr)
		if err != nil {
			t.Fatalf("%s: EstimateTrace: %v", tc.name, err)
		}
		if got != want {
			t.Errorf("%s: EstimateTrace = %+v, Estimate = %+v", tc.name, got, want)
		}
	}
}

// TestEstimateTraceOwnRate: a trace at a non-default rate is analyzed at
// that rate, not resampled.
func TestEstimateTraceOwnRate(t *testing.T) {
	model := testModel()
	task := load.NewUniform(25e-3, 10e-3)
	coarse := load.Sample(task, 10e3)
	fine := load.Sample(task, load.SampleRateDefault)
	pg := PG{Model: model, NoCache: true}
	ec, err := pg.EstimateTrace(coarse)
	if err != nil {
		t.Fatal(err)
	}
	ef, err := pg.EstimateTrace(fine)
	if err != nil {
		t.Fatal(err)
	}
	// Same waveform at different rates: close but not identical estimates.
	if ec == ef {
		t.Error("coarse trace produced the fine-rate estimate; rate ignored?")
	}
	if math.Abs(ec.VSafe-ef.VSafe) > 5e-3 {
		t.Errorf("rates diverge too far: %g vs %g", ec.VSafe, ef.VSafe)
	}
}

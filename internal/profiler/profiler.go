// Package profiler operationalizes the Culpeo charge model: it produces the
// observations (Culpeo-R) and current-trace analyses (Culpeo-PG) that feed
// V_safe calculations.
//
// Three implementations mirror the paper's Section V:
//
//   - PG: offline, profile-guided — samples a task's current profile at
//     125 kHz on continuous power and runs Algorithm 1 against the power
//     system model.
//   - ISRProbe (Culpeo-R-ISR): a 1 ms timer interrupt reads the MCU's
//     12-bit ADC during the task and wakes every 50 ms during the rebound.
//     The ADC's supply current is charged to the task being profiled.
//   - UArchProbe (Culpeo-µArch): the memory-mapped peripheral block samples
//     at 100 kHz with an 8-bit ADC and a hardware comparator; the CPU only
//     touches it at task boundaries.
package profiler

import (
	"context"
	"math"

	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/mcu"
	"culpeo/internal/powersys"
)

// PG is the profile-guided, compile-time analysis (Culpeo-PG).
type PG struct {
	// Model describes the target power system (built from datasheets plus
	// the measured ESR curve).
	Model core.PowerModel
	// SampleRate of the captured current trace; 0 = 125 kHz.
	SampleRate float64
	// Cache overrides the memo the estimate routes through; nil selects the
	// shared process-wide core.DefaultVSafeCache.
	Cache *core.VSafeCache
	// NoCache forces a direct computation, bypassing memoization entirely.
	NoCache bool
}

// Estimate profiles the task's current on continuous power (exact in
// simulation: we sample the profile directly, as a bench power monitor
// would) and applies Algorithm 1. Results are memoized by (model, trace)
// fingerprint — Algorithm 1 is pure, so cached and direct results are
// bit-identical (see core.VSafeCache).
func (p PG) Estimate(task load.Profile) (core.Estimate, error) {
	return p.EstimateCtx(context.Background(), task)
}

// EstimateCtx is Estimate with a context bounding the cache's coalesced
// wait: when another request is already computing this (model, trace) key,
// the caller waits for that leader's bit-exact result — unless ctx is
// cancelled first, in which case only this wait is abandoned (the leader's
// computation proceeds for everyone else). The serving layer threads each
// request's deadline through here so a dead client stops occupying a slot.
func (p PG) EstimateCtx(ctx context.Context, task load.Profile) (core.Estimate, error) {
	rate := p.SampleRate
	if rate <= 0 {
		rate = load.SampleRateDefault
	}
	tr := load.Sample(task, rate)
	switch {
	case p.NoCache:
		return core.VSafePG(p.Model, tr)
	case p.Cache != nil:
		return p.Cache.PGCtx(ctx, p.Model, tr)
	default:
		return core.VSafePGCachedCtx(ctx, p.Model, tr)
	}
}

// EstimateTrace applies Algorithm 1 to an already-captured current trace at
// its own sample rate — the ingestion path for traces uploaded over the
// serving API or loaded from CSV, where re-sampling through a Profile would
// distort the waveform. Memoization routes exactly as Estimate's.
func (p PG) EstimateTrace(tr load.Trace) (core.Estimate, error) {
	return p.EstimateTraceCtx(context.Background(), tr)
}

// EstimateTraceCtx is EstimateTrace with a context bounding the cache's
// coalesced wait (see EstimateCtx).
func (p PG) EstimateTraceCtx(ctx context.Context, tr load.Trace) (core.Estimate, error) {
	switch {
	case p.NoCache:
		return core.VSafePG(p.Model, tr)
	case p.Cache != nil:
		return p.Cache.PGCtx(ctx, p.Model, tr)
	default:
		return core.VSafePGCachedCtx(ctx, p.Model, tr)
	}
}

// Sampler is a voltage-capture mechanism driven by the simulation loop. It
// doubles as the core.Probe the Culpeo interface needs: Start/End/ReboundEnd
// frame a task execution while Tick delivers terminal-voltage samples.
type Sampler interface {
	core.Probe
	// Tick presents the live terminal voltage at simulation time t.
	Tick(t, v float64)
	// ExtraCurrent returns the additional load the profiling mechanism
	// imposes right now (ADC supply current).
	ExtraCurrent() float64
}

type phase int

const (
	phaseIdle phase = iota
	phaseTask
	phaseRebound
)

// ISRProbe implements Culpeo-R-ISR (Section V-C): a hardware timer ISR
// samples the on-chip ADC every Period during the task; after profile_end
// the MCU sleeps, waking every ReboundPeriod to track the rebound maximum.
type ISRProbe struct {
	ADC           mcu.ADC
	Period        float64 // task-phase sampling period (1 ms in the paper)
	ReboundPeriod float64 // rebound-phase wake period (50 ms in the paper)

	// Source supplies the instantaneous terminal voltage for the reads the
	// CPU performs outside the tick stream (V_start at profile_start).
	Source func() float64

	ph       phase
	vstart   float64
	minV     float64
	maxV     float64
	lastT    float64
	havePrev bool
}

// NewISRProbe builds the paper-configured ISR probe.
func NewISRProbe(source func() float64) *ISRProbe {
	return &ISRProbe{
		ADC:           mcu.MSP430ADC12(),
		Period:        1e-3,
		ReboundPeriod: 50e-3,
		Source:        source,
	}
}

// Start implements profile_start: record V_start and arm minimum tracking.
// The hardware timer fires its first interrupt one full Period after being
// enabled, so the first in-task sample lands at t_start + Period — which is
// exactly why the ISR variant misses the minimum of sub-period pulses
// (Section VII-A's 50 mA/1 ms observation).
func (p *ISRProbe) Start() {
	p.ph = phaseTask
	p.vstart = p.ADC.Read(p.Source())
	p.minV = p.vstart
	p.maxV = 0
	p.havePrev = false
}

// End implements profile_end: stop the task-phase timer and begin rebound
// (maximum) tracking with the MCU sleeping between samples.
func (p *ISRProbe) End() {
	p.ph = phaseRebound
	p.havePrev = false
}

// ReboundEnd stops tracking and returns the observation. If the rebound
// never produced a sample (e.g. zero rebound window) the final voltage is
// read directly.
func (p *ISRProbe) ReboundEnd() core.Observation {
	if p.maxV == 0 {
		p.maxV = p.ADC.Read(p.Source())
	}
	p.ph = phaseIdle
	obs := core.Observation{VStart: p.vstart, VMin: p.minV, VFinal: p.maxV}
	// Quantization can leave VFinal a code below VMin for drop-free tasks;
	// clamp to a physical ordering.
	if obs.VFinal < obs.VMin {
		obs.VFinal = obs.VMin
	}
	if obs.VFinal > obs.VStart {
		obs.VFinal = obs.VStart
	}
	return obs
}

// Tick delivers the live terminal voltage; the probe subsamples it at its
// configured periods, quantized through its ADC.
func (p *ISRProbe) Tick(t, v float64) {
	var period float64
	switch p.ph {
	case phaseTask:
		period = p.Period
	case phaseRebound:
		period = p.ReboundPeriod
	default:
		return
	}
	if !p.havePrev {
		// Arm the timer: the first conversion happens one period from now.
		p.lastT = t
		p.havePrev = true
		return
	}
	if t-p.lastT < period*(1-1e-9) {
		return
	}
	p.lastT = t
	r := p.ADC.Read(v)
	switch p.ph {
	case phaseTask:
		if r < p.minV {
			p.minV = r
		}
	case phaseRebound:
		if r > p.maxV {
			p.maxV = r
		}
	}
}

// ExtraCurrent charges the ADC's supply current to the profiled task during
// the task phase. During the rebound the MCU sleeps between samples, so the
// amortized draw is the ADC current scaled by its duty cycle (a 100 µs
// conversion every ReboundPeriod).
func (p *ISRProbe) ExtraCurrent() float64 {
	switch p.ph {
	case phaseTask:
		return p.ADC.SupplyCurrent
	case phaseRebound:
		duty := 100e-6 / p.ReboundPeriod
		return p.ADC.SupplyCurrent * duty
	default:
		return 0
	}
}

// UArchProbe implements Culpeo-µArch (Section V-D): the peripheral block
// does all sampling in hardware; the CPU issues Table II commands at task
// boundaries only.
type UArchProbe struct {
	Block  *mcu.CulpeoBlock
	Source func() float64

	vstart float64
	minV   float64
	active bool
}

// NewUArchProbe builds the prototype-configured probe.
func NewUArchProbe(source func() float64) *UArchProbe {
	return &UArchProbe{Block: mcu.NewCulpeoBlock(), Source: source}
}

// Start implements profile_start via the driver sequence of Section V-D:
// configure(on), read V_start, prepare(min), sample(min).
func (p *UArchProbe) Start() {
	p.Block.Configure(true)
	p.vstart = p.Block.ADC.Read(p.Source())
	p.Block.Prepare(mcu.CaptureMin)
	p.Block.Sample(mcu.CaptureMin)
	p.active = true
}

// End implements profile_end: read the minimum, then switch to maximum
// tracking for the rebound.
func (p *UArchProbe) End() {
	p.minV = p.Block.ReadVoltage()
	p.Block.Prepare(mcu.CaptureMax)
	p.Block.Sample(mcu.CaptureMax)
}

// ReboundEnd implements rebound_done: read the maximum and disable the
// block.
func (p *UArchProbe) ReboundEnd() core.Observation {
	maxV := p.Block.ReadVoltage()
	p.Block.Stop()
	p.Block.Configure(false)
	p.active = false
	obs := core.Observation{VStart: p.vstart, VMin: p.minV, VFinal: maxV}
	if obs.VFinal < obs.VMin {
		obs.VFinal = obs.VMin
	}
	if obs.VFinal > obs.VStart {
		obs.VFinal = obs.VStart
	}
	return obs
}

// Tick clocks the peripheral block.
func (p *UArchProbe) Tick(t, v float64) { p.Block.Tick(t, v) }

// ExtraCurrent returns the block's supply draw (nanoamps — effectively
// free, which is the design's point).
func (p *UArchProbe) ExtraCurrent() float64 { return p.Block.SupplyCurrent() }

// DriveTask runs one task on the system while ticking the sampler. It does
// NOT frame the profile: the caller (typically the Table I interface) calls
// Start before and End after. The sampler's extra supply current is charged
// to the run, as it is on real hardware.
func DriveTask(sys *powersys.System, s Sampler, task load.Profile, harvest float64) powersys.RunResult {
	return sys.Run(task, powersys.RunOptions{
		HarvestPower: harvest,
		Baseline:     s.ExtraCurrent(),
		SkipRebound:  true,
		OnStep:       func(info powersys.StepInfo) { s.Tick(info.T, info.VTerm) },
	})
}

// DriveRebound lets the system's voltage rebound while ticking the sampler
// (which should be in its maximum-tracking phase) and returns the settled
// voltage.
func DriveRebound(sys *powersys.System, s Sampler, harvest float64) float64 {
	return sys.Rebound(powersys.RunOptions{
		HarvestPower: harvest,
		OnStep:       func(info powersys.StepInfo) { s.Tick(info.T, info.VTerm) },
	})
}

// ProfileRun executes one full framed profile: Start, run the task, End,
// settle the rebound, ReboundEnd. It returns the observation alongside the
// raw run result. The system must already be at the desired starting state
// with delivery enabled. harvest is the incoming power during the run.
func ProfileRun(sys *powersys.System, s Sampler, task load.Profile, harvest float64) (core.Observation, powersys.RunResult) {
	s.Start()
	res := DriveTask(sys, s, task, harvest)
	s.End()
	if !res.Completed {
		// Task failed: no valid profile (the scheduler aborts it).
		return s.ReboundEnd(), res
	}
	res.VFinal = DriveRebound(sys, s, harvest)
	return s.ReboundEnd(), res
}

// REstimate profiles the task once with the sampler starting from the
// system's current state and returns the Culpeo-R estimate.
func REstimate(model core.PowerModel, sys *powersys.System, s Sampler, task load.Profile, harvest float64) (core.Estimate, error) {
	obs, res := ProfileRun(sys, s, task, harvest)
	if !res.Completed {
		// Conservative fallback: an estimate demanding a full buffer.
		return core.Estimate{VSafe: model.VHigh, VDelta: math.NaN()}, nil
	}
	return core.VSafeR(model, obs)
}

// Perturbed threads a Sampler's tick stream through a measurement-chain
// transform: the hook fault injection uses to corrupt what a probe observes
// (ADC offset/gain/noise/stuck bits on the voltage, jitter on the sample
// timestamp) without the probe knowing. Start/End/ReboundEnd framing and the
// probe's own load current pass through untouched.
type Perturbed struct {
	Inner Sampler
	// Measure maps a (time, voltage) sample to what the chain reports.
	// A nil Measure is the identity.
	Measure func(t, v float64) (float64, float64)
}

// Start begins profiling on the wrapped sampler.
func (p Perturbed) Start() { p.Inner.Start() }

// End latches the in-task minimum on the wrapped sampler.
func (p Perturbed) End() { p.Inner.End() }

// ReboundEnd completes the observation on the wrapped sampler.
func (p Perturbed) ReboundEnd() core.Observation { return p.Inner.ReboundEnd() }

// Tick delivers the perturbed sample to the wrapped sampler.
func (p Perturbed) Tick(t, v float64) {
	if p.Measure != nil {
		t, v = p.Measure(t, v)
	}
	p.Inner.Tick(t, v)
}

// ExtraCurrent reports the wrapped sampler's own load.
func (p Perturbed) ExtraCurrent() float64 { return p.Inner.ExtraCurrent() }

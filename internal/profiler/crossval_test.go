package profiler

import (
	"fmt"
	"testing"

	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

// TestSafetyMatrix cross-validates every estimator across an ESR × load
// grid — the central correctness claim of the system, as a regression
// fence: Culpeo-PG and Culpeo-R stay safe (or marginal) everywhere the
// task is feasible, regardless of how resistive the bank is.
func TestSafetyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("grid of ground-truth searches")
	}
	esrs := []float64{1, 3, 5, 8}
	tasks := []load.Profile{
		load.NewUniform(10e-3, 10e-3),
		load.NewUniform(25e-3, 10e-3),
		load.NewPulse(25e-3, 10e-3),
		load.BLERadio(),
	}
	for _, esr := range esrs {
		esr := esr
		t.Run(fmt.Sprintf("esr=%g", esr), func(t *testing.T) {
			net, err := capacitor.NewNetwork(&capacitor.Branch{
				Name: "main", C: 45e-3, ESR: esr, Voltage: 2.56,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := powersys.Capybara()
			cfg.Storage = net
			h, err := harness.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			model := core.PowerModel{
				C:    45e-3,
				ESR:  capacitor.Flat(esr),
				VOut: cfg.Output.VOut, VOff: cfg.VOff, VHigh: cfg.VHigh,
				Eff: cfg.Output.Efficiency,
			}
			for _, task := range tasks {
				gt, err := h.GroundTruth(task)
				if err != nil {
					continue // infeasible at this ESR: nothing to validate
				}
				pgEst, err := PG{Model: model}.Estimate(task)
				if err != nil {
					t.Fatal(err)
				}
				if harness.Classify(pgEst.VSafe, gt) == harness.Unsafe {
					t.Errorf("PG unsafe on %s: %g vs %g", task.Name(), pgEst.VSafe, gt)
				}
				sys := h.NewSystem()
				sys.Monitor().Force(true)
				rEst, err := REstimate(model, sys, NewISRProbe(sys.VTerm), task, 0)
				if err != nil {
					t.Fatal(err)
				}
				if harness.Classify(rEst.VSafe, gt) == harness.Unsafe {
					t.Errorf("R-ISR unsafe on %s: %g vs %g", task.Name(), rEst.VSafe, gt)
				}
				// Neither estimator wildly overshoots (stays dispatchable).
				for name, v := range map[string]float64{"PG": pgEst.VSafe, "R": rEst.VSafe} {
					if v < cfg.VHigh && h.ErrorPercent(v, gt) > 25 {
						t.Errorf("%s on %s at ESR %g overshoots: %+.1f%%",
							name, task.Name(), esr, h.ErrorPercent(v, gt))
					}
				}
			}
		})
	}
}

// TestChainCompositionMatchesSimulatedChain validates V_safe_multi against
// the simulator: a chain's composed requirement must be safe for — and
// reasonably close to — the ground truth of running the same tasks back to
// back in one discharge.
func TestChainCompositionMatchesSimulatedChain(t *testing.T) {
	if testing.Short() {
		t.Skip("ground-truth search")
	}
	cfg := powersys.Capybara()
	h, err := harness.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := core.PowerModel{
		C:    cfg.Storage.TotalCapacitance(),
		ESR:  capacitor.Flat(cfg.Storage.Main().ESR),
		VOut: cfg.Output.VOut, VOff: cfg.VOff, VHigh: cfg.VHigh,
		Eff: cfg.Output.Efficiency,
	}

	chains := [][]load.Profile{
		{load.IMURead(32), load.Encrypt(192), load.BLERadio()},
		{load.PhotoRead(), load.NewUniform(25e-3, 10e-3)},
		{load.NewUniform(5e-3, 50e-3), load.NewUniform(50e-3, 5e-3)},
	}
	for ci, chain := range chains {
		// Composed requirement from per-task Culpeo-R estimates.
		var reqs []core.TaskReq
		for ti, task := range chain {
			sys := h.NewSystem()
			sys.Monitor().Force(true)
			est, err := REstimate(model, sys, NewISRProbe(sys.VTerm), task, 0)
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, est.Req(fmt.Sprintf("c%d-t%d", ci, ti)))
		}
		composed := core.VSafeMulti(cfg.VOff, reqs)

		// Ground truth of the whole chain as one back-to-back profile.
		seq := load.NewSeq(fmt.Sprintf("chain-%d", ci), chain...)
		gt, err := h.GroundTruth(seq)
		if err != nil {
			t.Fatalf("chain %d infeasible: %v", ci, err)
		}
		// Safe within the paper's 20 mV band.
		if composed < gt-20e-3 {
			t.Errorf("chain %d: composed %g below truth %g", ci, composed, gt)
		}
		// And not uselessly conservative.
		if h.ErrorPercent(composed, gt) > 25 {
			t.Errorf("chain %d: composed %g overshoots truth %g (%+.1f%%)",
				ci, composed, gt, h.ErrorPercent(composed, gt))
		}
		// Launching the chain at the composed requirement (plus the
		// deployment margin) completes.
		res := h.RunAt(composed+20e-3, seq, powersys.RunOptions{SkipRebound: true})
		if !res.Completed || res.VMin < cfg.VOff {
			t.Errorf("chain %d fails at its composed requirement: VMin %g", ci, res.VMin)
		}
	}
}

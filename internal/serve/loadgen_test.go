package serve

import (
	"context"
	"testing"
	"time"
)

// TestLoadTestSelfHosted runs a short self-hosted burst and sanity-checks
// the aggregates. The real throughput acceptance run is `culpeo loadtest`;
// here the window is small to keep the suite fast.
func TestLoadTestSelfHosted(t *testing.T) {
	res, err := LoadTest(context.Background(), LoadTestOptions{
		Duration:    200 * time.Millisecond,
		Concurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want >0 / 0", res.Requests, res.Errors)
	}
	if !res.SelfHosted {
		t.Error("empty URL should self-host")
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput %v, want > 0", res.Throughput)
	}
	if res.P50Ms <= 0 || res.P99Ms < res.P50Ms {
		t.Errorf("quantiles p50=%v p99=%v malformed", res.P50Ms, res.P99Ms)
	}
	if res.CacheHitRate <= 0.5 {
		t.Errorf("cache-hot workload hit rate %v, want > 0.5", res.CacheHitRate)
	}
}

// TestLoadTestBadTarget fails fast when the target is unreachable.
func TestLoadTestBadTarget(t *testing.T) {
	_, err := LoadTest(context.Background(), LoadTestOptions{
		URL:      "http://127.0.0.1:1",
		Duration: 100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("unreachable target should error")
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(data, 0.5); q != 5 {
		t.Errorf("p50 = %v, want 5", q)
	}
	if q := quantile(data, 0.99); q != 9 {
		t.Errorf("p99 = %v, want 9 (nearest rank)", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadTestSelfHosted runs a short self-hosted burst and sanity-checks
// the aggregates. The real throughput acceptance run is `culpeo loadtest`;
// here the window is small to keep the suite fast.
func TestLoadTestSelfHosted(t *testing.T) {
	res, err := LoadTest(context.Background(), LoadTestOptions{
		Duration:    200 * time.Millisecond,
		Concurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want >0 / 0", res.Requests, res.Errors)
	}
	if !res.SelfHosted {
		t.Error("empty URL should self-host")
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput %v, want > 0", res.Throughput)
	}
	if res.P50Ms <= 0 || res.P99Ms < res.P50Ms {
		t.Errorf("quantiles p50=%v p99=%v malformed", res.P50Ms, res.P99Ms)
	}
	if res.CacheHitRate <= 0.5 {
		t.Errorf("cache-hot workload hit rate %v, want > 0.5", res.CacheHitRate)
	}
}

// TestLoadTestBadTarget fails fast when the target is unreachable.
func TestLoadTestBadTarget(t *testing.T) {
	_, err := LoadTest(context.Background(), LoadTestOptions{
		URL:      "http://127.0.0.1:1",
		Duration: 100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("unreachable target should error")
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(data, 0.5); q != 5 {
		t.Errorf("p50 = %v, want 5", q)
	}
	if q := quantile(data, 0.99); q != 9 {
		t.Errorf("p99 = %v, want 9 (nearest rank)", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

// TestLoadTestBackpressure points the generator at a target that sheds
// half its load with 503 + Retry-After: 1 and checks that rejections are
// counted as backpressure — not errors — and that workers honor the
// Retry-After: with a 1 s backoff and a 300 ms window, each worker parks
// after its first rejection, so backpressure stays bounded by the worker
// count instead of turning into a reject storm.
func TestLoadTestBackpressure(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := n.Add(1)
		if c > 1 && c%2 == 0 { // warm-up always succeeds, then every other request is shed
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"v_safe":2.5,"v_delta":0.1,"v_e":2.4}`)
	}))
	defer ts.Close()

	const workers = 8
	res, err := LoadTest(context.Background(), LoadTestOptions{
		URL:         ts.URL,
		Duration:    300 * time.Millisecond,
		Concurrency: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backpressure == 0 {
		t.Fatalf("backpressure = 0, want > 0: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0 — 503s must count as backpressure", res.Errors)
	}
	if res.Backpressure > workers {
		t.Fatalf("backpressure = %d > %d workers — Retry-After not honored", res.Backpressure, workers)
	}
	if res.Requests == 0 {
		t.Fatal("no successful requests recorded")
	}
}

package serve

import (
	"math"
	"net/http"
	"testing"
)

// simCorpus is a mixed batch: completing and browning-out elements,
// custom power systems, harvest subsidies and explicit start voltages.
func simCorpus() []SimulateRequest {
	return []SimulateRequest{
		{Load: LoadSpec{Shape: "pulse", I: 25e-3, T: 10e-3}},
		{Load: LoadSpec{Shape: "uniform", I: 5, T: 1}}, // browns out
		{Load: LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}, VStart: 2.2},
		{Load: LoadSpec{Peripheral: "gesture"}, VStart: 1.9},
		{Load: LoadSpec{Shape: "pulse", I: 40e-3, T: 5e-3}, Harvest: 5e-3},
		{Load: LoadSpec{Shape: "uniform", I: 30e-3, T: 20e-3}, Power: PowerSpec{C: 20e-3, ESR: 3}},
		{Load: LoadSpec{Peripheral: "lora"}, VStart: 1.75}, // marginal
	}
}

// checkSimParity compares a batch element's verdict against the scalar
// /v1/simulate answer for the same request. Exact elements must match bit
// for bit; fast elements are bounded (the fast batch lane segments the
// compiled schedule differently from the scalar fast scan) but must agree
// on the verdict.
func checkSimParity(t *testing.T, name string, got, want SimulateResponse, exact bool) {
	t.Helper()
	if got.Completed != want.Completed || got.PowerFailed != want.PowerFailed || got.Error != want.Error {
		t.Errorf("%s: verdict diverged: batch %+v, scalar %+v", name, got, want)
		return
	}
	fields := []struct {
		fname  string
		gv, wv float64
	}{
		{"v_start", got.VStart, want.VStart},
		{"v_min", got.VMin, want.VMin},
		{"v_final", got.VFinal, want.VFinal},
		{"duration", got.Duration, want.Duration},
		{"energy_used", got.EnergyUsed, want.EnergyUsed},
	}
	for _, f := range fields {
		if exact {
			if math.Float64bits(f.gv) != math.Float64bits(f.wv) {
				t.Errorf("%s: %s %v (%#x) != scalar %v (%#x)",
					name, f.fname, f.gv, math.Float64bits(f.gv), f.wv, math.Float64bits(f.wv))
			}
		} else if math.Abs(f.gv-f.wv) > 1e-3 {
			t.Errorf("%s: %s %v vs scalar %v beyond 1 mV", name, f.fname, f.gv, f.wv)
		}
	}
}

// TestBatchSimulateParity: every element of a batch simulation answers
// byte-identically to posting the same element to /v1/simulate alone —
// the serving-layer face of the batch stepper's equivalence contract.
func TestBatchSimulateParity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, fast := range []bool{false, true} {
		reqs := simCorpus()
		for i := range reqs {
			reqs[i].Fast = fast
		}
		got := decodeResp[BatchResponse](t, postJSON(t, ts.URL+"/v1/batch", BatchRequest{Simulations: reqs}), http.StatusOK)
		if len(got.Simulations) != len(reqs) {
			t.Fatalf("fast=%v: got %d results, want %d", fast, len(got.Simulations), len(reqs))
		}
		for i, req := range reqs {
			el := got.Simulations[i]
			if el.Result == nil {
				t.Fatalf("fast=%v: element %d missing result: %+v", fast, i, el)
			}
			want := decodeResp[SimulateResponse](t, postJSON(t, ts.URL+"/v1/simulate", req), http.StatusOK)
			checkSimParity(t, req.Load.Shape+req.Load.Peripheral, *el.Result, want, !fast)
		}
	}
}

// TestBatchSimulateErrorsInPlace: a malformed element reports its error in
// its own slot without failing its siblings; mixed estimate+simulation
// batches answer both lists.
func TestBatchSimulateErrorsInPlace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := BatchRequest{
		Requests: []VSafeRequest{
			{Load: LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}},
		},
		Simulations: []SimulateRequest{
			{Load: LoadSpec{Shape: "pulse", I: 25e-3, T: 10e-3}},
			{Load: LoadSpec{Shape: "nope"}},                                   // bad spec
			{Load: LoadSpec{Shape: "uniform", I: 1e-3, T: 1e-3}, VStart: 0.2}, // bad v_start
			{Load: LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}},
		},
	}
	got := decodeResp[BatchResponse](t, postJSON(t, ts.URL+"/v1/batch", req), http.StatusOK)
	if len(got.Results) != 1 || got.Results[0].Estimate == nil {
		t.Fatalf("estimate list: %+v", got.Results)
	}
	if len(got.Simulations) != 4 {
		t.Fatalf("got %d simulation results, want 4", len(got.Simulations))
	}
	for _, i := range []int{1, 2} {
		if got.Simulations[i].Error == "" || got.Simulations[i].Result != nil {
			t.Errorf("element %d should fail in place: %+v", i, got.Simulations[i])
		}
	}
	for _, i := range []int{0, 3} {
		if got.Simulations[i].Result == nil || !got.Simulations[i].Result.Completed {
			t.Errorf("element %d should complete: %+v", i, got.Simulations[i])
		}
	}
}

// TestBatchSimulateScalarFallback: with the ScalarBatch knob set, batch
// simulations take the per-element scalar path and still answer
// bit-identically — the fallback changes the engine, never the contract.
func TestBatchSimulateScalarFallback(t *testing.T) {
	_, ts := newTestServer(t, Config{ScalarBatch: true})
	reqs := simCorpus()
	got := decodeResp[BatchResponse](t, postJSON(t, ts.URL+"/v1/batch", BatchRequest{Simulations: reqs}), http.StatusOK)
	for i, req := range reqs {
		if got.Simulations[i].Result == nil {
			t.Fatalf("element %d missing result", i)
		}
		want := decodeResp[SimulateResponse](t, postJSON(t, ts.URL+"/v1/simulate", req), http.StatusOK)
		checkSimParity(t, req.Load.Shape+req.Load.Peripheral, *got.Simulations[i].Result, want, true)
	}
}

// TestBatchSimulateSizeCap: the cap counts estimate and simulation
// elements together.
func TestBatchSimulateSizeCap(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sims := make([]SimulateRequest, maxBatch)
	for i := range sims {
		sims[i] = SimulateRequest{Load: LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}}
	}
	req := BatchRequest{
		Requests:    []VSafeRequest{{Load: LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}}},
		Simulations: sims,
	}
	resp := postJSON(t, ts.URL+"/v1/batch", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized mixed batch: status %d, want 400", resp.StatusCode)
	}
}

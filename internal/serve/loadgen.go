// The load generator behind `culpeo loadtest`: closed-loop concurrent
// clients hammering POST /v1/vsafe over real loopback HTTP, reporting
// sustained throughput and latency quantiles. Self-hosted mode (no target
// URL) boots an in-process server on an ephemeral port, so one command
// measures the full stack — admission queue, middleware, JSON codec,
// cache-hot estimation — with no external setup.
//
// The workers drive internal/client (retries and breaker off — a
// saturated server answering 503s is the measurement, not a dead
// backend), and they are well-behaved under backpressure: a 503 is
// counted separately from transport errors, and its Retry-After is
// honored before the worker issues its next request.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"culpeo/internal/client"
	"culpeo/internal/core"
)

// LoadTestOptions configures a load-generation run.
type LoadTestOptions struct {
	// URL targets a running daemon (e.g. "http://127.0.0.1:8080"); empty
	// self-hosts an in-process server.
	URL string
	// Duration is the measurement window (<=0: 3 s).
	Duration time.Duration
	// Concurrency is the closed-loop client count (<=0: 4×GOMAXPROCS).
	Concurrency int
	// Body is the request body each client posts to /v1/vsafe; empty uses a
	// fixed cache-hot single-estimate query, the serving fast path the
	// throughput target is defined over.
	Body []byte
	// Server tunes the self-hosted server (ignored when URL is set).
	Server Config
}

// LoadTestResult is the report of one run.
type LoadTestResult struct {
	Requests uint64 `json:"requests"`
	// Errors counts transport failures and unexpected statuses.
	Errors uint64 `json:"errors"`
	// Backpressure counts 503 rejections — the server shedding load as
	// designed, not failing; kept apart from Errors so a saturation run
	// reads as saturation.
	Backpressure uint64  `json:"backpressure"`
	DurationSec  float64 `json:"duration_sec"`
	Throughput   float64 `json:"throughput_rps"`
	MeanMs       float64 `json:"mean_ms"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	Concurrency  int     `json:"concurrency"`
	SelfHosted   bool    `json:"self_hosted"`
	CacheHitRate float64 `json:"cache_hit_rate"` // self-hosted only
	// CacheStats is the target's full V_safe cache counter set —
	// singleflight and warm-bisection fields included — scraped from its
	// /metrics after the run via the client pool's BackendSnapshot (nil if
	// the scrape failed, e.g. a pre-/metrics daemon).
	CacheStats *core.VSafeCacheStats `json:"cache_stats,omitempty"`
	// BatchDeduped is the target's in-batch fingerprint dedup total from
	// the same scrape.
	BatchDeduped uint64 `json:"batch_deduped,omitempty"`
}

// defaultLoadTestBody is the canonical cache-hot query: after the first
// request misses, every later one coalesces onto the memoized estimate.
const defaultLoadTestBody = `{"load":{"shape":"uniform","i":0.025,"t":0.01}}`

// LoadTest runs closed-loop clients against /v1/vsafe until the duration
// (or ctx) expires and aggregates latency quantiles across all of them.
func LoadTest(ctx context.Context, opt LoadTestOptions) (LoadTestResult, error) {
	if opt.Duration <= 0 {
		opt.Duration = 3 * time.Second
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 4 * runtime.GOMAXPROCS(0)
	}
	body := opt.Body
	if len(body) == 0 {
		body = []byte(defaultLoadTestBody)
	}

	res := LoadTestResult{Concurrency: opt.Concurrency}
	base := opt.URL
	var self *Server
	if base == "" {
		// MaxInFlight defaults to GOMAXPROCS; with 4× closed-loop clients the
		// overflow sits in the admission queue, so size it to hold them all —
		// the loadtest measures service latency, not 503 turnaround.
		cfg := opt.Server
		if cfg.QueueDepth <= 0 {
			cfg.QueueDepth = 4 * opt.Concurrency
		}
		self = New(cfg)
		ts := httptest.NewServer(self.Handler())
		defer ts.Close()
		base = ts.URL
		res.SelfHosted = true
	}

	// One attempt per request and no breaker: the loadtest measures the
	// server's raw turnaround, and a 503 burst must surface as
	// backpressure here rather than trip failover machinery.
	pool, err := client.New(client.Config{
		Backends: []string{base},
		HTTPClient: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        opt.Concurrency,
			MaxIdleConnsPerHost: opt.Concurrency,
		}},
		Budget:         30 * time.Second,
		AttemptTimeout: 10 * time.Second,
		MaxAttempts:    1,
		Breaker:        client.BreakerConfig{Disabled: true},
	})
	if err != nil {
		return res, fmt.Errorf("loadtest: %w", err)
	}
	defer pool.Close()

	// One warm-up request: the cold Algorithm 1 miss should not pollute the
	// steady-state quantiles (and it verifies the target answers at all).
	if _, err := pool.Do(ctx, client.PathVSafe, body); err != nil {
		return res, fmt.Errorf("loadtest: target unreachable: %w", err)
	}

	runCtx, cancel := context.WithTimeout(ctx, opt.Duration)
	defer cancel()

	var (
		wg           sync.WaitGroup
		errs         atomic.Uint64
		backpressure atomic.Uint64
		perGorou     = make([][]float64, opt.Concurrency) // latencies in ms
	)
	start := time.Now()
	for g := 0; g < opt.Concurrency; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := make([]float64, 0, 1<<14)
			for runCtx.Err() == nil {
				t0 := time.Now()
				_, err := pool.Do(runCtx, client.PathVSafe, body)
				if err != nil {
					if runCtx.Err() != nil {
						break
					}
					var he *client.HTTPError
					if errors.As(err, &he) && he.Status == http.StatusServiceUnavailable {
						// The server is shedding load: count it as
						// backpressure and honor its Retry-After before
						// the next request.
						backpressure.Add(1)
						sleepUntil(runCtx, he.RetryAfter)
						continue
					}
					errs.Add(1)
					continue
				}
				lat = append(lat, float64(time.Since(t0))/1e6)
			}
			perGorou[g] = lat
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []float64
	for _, l := range perGorou {
		all = append(all, l...)
	}
	sort.Float64s(all)

	res.Requests = uint64(len(all))
	res.Errors = errs.Load()
	res.Backpressure = backpressure.Load()
	res.DurationSec = elapsed.Seconds()
	if res.DurationSec > 0 {
		res.Throughput = float64(res.Requests) / res.DurationSec
	}
	if len(all) > 0 {
		var sum float64
		for _, v := range all {
			sum += v
		}
		res.MeanMs = sum / float64(len(all))
		res.P50Ms = quantile(all, 0.50)
		res.P99Ms = quantile(all, 0.99)
	}
	if self != nil {
		res.CacheHitRate = self.Cache().Stats().HitRate()
	}
	// One /metrics scrape (outer ctx: runCtx has expired) so the report can
	// print server-side coalescing next to client-side counts; works against
	// remote targets too, where Cache() is out of reach.
	pool.ScrapeServerMetrics(ctx)
	if bs := pool.Metrics().Backends; len(bs) > 0 && bs[0].VSafeCache != nil {
		res.CacheStats = bs[0].VSafeCache
		res.BatchDeduped = bs[0].BatchDeduped
		if !res.SelfHosted {
			res.CacheHitRate = res.CacheStats.HitRate()
		}
	}
	if res.Requests == 0 {
		return res, fmt.Errorf("loadtest: no request completed in %v", opt.Duration)
	}
	return res, nil
}

// sleepUntil waits d (or until ctx expires). A zero d yields briefly so a
// Retry-After-less 503 still backs off the closed loop a little.
func sleepUntil(ctx context.Context, d time.Duration) {
	if d <= 0 {
		d = time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// quantile reads the q-th quantile from sorted data (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

package serve

import (
	"net/http"
	"testing"

	"culpeo/internal/api"
	"culpeo/internal/journal"
)

// newJournaledServer opens a journal in dir and builds a server around it.
// The server is born in phase "starting": the caller decides when Recover
// runs (that's the point of these tests).
func newJournaledServer(t *testing.T, dir string, cfg Config) (*Server, journal.Recovery, string) {
	t.Helper()
	j, rec, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	cfg.Journal = j
	s, ts := newTestServer(t, cfg)
	t.Cleanup(s.Close)
	return s, rec, ts.URL
}

// TestPhaseGateAndHealthz: a journaled server admits no work — request/
// response or streaming — until Recover flips it ready, and /healthz
// narrates the phase the whole way ("starting" -> "ready" -> "draining").
func TestPhaseGateAndHealthz(t *testing.T) {
	s, rec, base := newJournaledServer(t, t.TempDir(), Config{})

	h := decodeResp[HealthResponse](t, mustGet(t, base+"/healthz"), http.StatusServiceUnavailable)
	if h.OK || h.Phase != "starting" {
		t.Fatalf("pre-recovery healthz: %+v", h)
	}
	// Work endpoints are gated, with Retry-After so pools back off politely.
	resp := postJSON(t, base+"/v1/vsafe", VSafeRequest{Load: LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}})
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("pre-recovery vsafe: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()
	resp = postJSON(t, base+api.PathStream, api.StreamOpenRequest{Device: "dev-gate"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-recovery stream open: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	st, err := s.Recover(rec)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if st.Sessions != 0 || st.Records != 0 {
		t.Fatalf("fresh journal recovered state: %+v", st)
	}
	h = decodeResp[HealthResponse](t, mustGet(t, base+"/healthz"), http.StatusOK)
	if !h.OK || h.Phase != "ready" {
		t.Fatalf("post-recovery healthz: %+v", h)
	}
	resp = postJSON(t, base+"/v1/vsafe", VSafeRequest{Load: LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery vsafe: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	s.SetDraining(true)
	h = decodeResp[HealthResponse](t, mustGet(t, base+"/healthz"), http.StatusServiceUnavailable)
	if h.Phase != "draining" || !h.Draining {
		t.Fatalf("draining healthz: %+v", h)
	}
}

// TestServeRecoveryRoundTrip drives the full loop at the HTTP layer: stream
// traffic into a journaled server, drop it cold, rebuild a second server
// from the same directory, and verify the resumed stream's snapshot is
// bit-identical to the last pre-crash update and the obs retry deduplicates.
func TestServeRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j1, rec1, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("journal.Open 1: %v", err)
	}
	s1, ts1 := newTestServer(t, Config{Journal: j1})
	t.Cleanup(s1.Close)
	base1 := ts1.URL
	if _, err := s1.Recover(rec1); err != nil {
		t.Fatalf("Recover 1: %v", err)
	}

	conn := openStream(t, base1, api.StreamOpenRequest{Device: "dev-rt", Ring: 4})
	_ = conn.next(t) // snapshot frame

	var history []api.StreamObservation
	var lastAck api.StreamObsResponse
	var lastUpdate api.StreamUpdate
	for seq := uint64(1); seq <= 6; seq += 2 {
		batch := []api.StreamObservation{mkStreamObs(seq), mkStreamObs(seq + 1)}
		history = append(history, batch...)
		lastAck = decodeResp[api.StreamObsResponse](t, postJSON(t, base1+api.PathStreamObs, api.StreamObsRequest{
			Device: "dev-rt", Observations: batch,
		}), http.StatusOK)
		lastUpdate = conn.next(t)
	}
	if lastAck.LastSeq != 6 || lastUpdate.ObsSeq != 6 {
		t.Fatalf("pre-crash state: ack %+v, update %+v", lastAck, lastUpdate)
	}

	// "Crash": the first server is abandoned mid-stream. Closing its journal
	// takes no snapshot and folds nothing — every acked record is already on
	// disk, which is exactly what a SIGKILL leaves behind.
	if err := j1.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	s2, rec2, base2 := newJournaledServer(t, dir, Config{})
	st, err := s2.Recover(rec2)
	if err != nil {
		t.Fatalf("Recover 2: %v", err)
	}
	if st.Sessions != 1 {
		t.Fatalf("recovered stats: %+v", st)
	}

	// The client resumes with its replay tail, exactly as client.Stream
	// would. The snapshot must continue the event numbering and carry the
	// identical estimate.
	tail := history[len(history)-4:]
	conn2 := openStream(t, base2, api.StreamOpenRequest{Device: "dev-rt", Ring: 4, Replay: tail})
	snap := conn2.next(t)
	if snap.Seq != lastUpdate.Seq+1 || snap.ObsSeq != lastUpdate.ObsSeq || snap.Window != lastUpdate.Window {
		t.Fatalf("resumed snapshot %+v, last pre-crash update %+v", snap, lastUpdate)
	}
	if !sameBitsF(snap.VSafe, lastUpdate.VSafe) || !sameBitsF(snap.Margin, lastUpdate.Margin) ||
		!sameBitsF(snap.VDelta, lastUpdate.VDelta) || !sameBitsF(snap.VE, lastUpdate.VE) {
		t.Fatalf("resumed snapshot not bit-exact:\n got %+v\nwant %+v", snap, lastUpdate)
	}
	checkUpdateParity(t, snap, defaultModel(t), tail, history)

	// A retried batch is pure duplicates on the recovered server.
	retry := decodeResp[api.StreamObsResponse](t, postJSON(t, base2+api.PathStreamObs, api.StreamObsRequest{
		Device: "dev-rt", Observations: history[len(history)-2:],
	}), http.StatusOK)
	if retry.Duplicates != 2 || retry.LastSeq != 6 {
		t.Fatalf("post-recovery retry: %+v", retry)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/core"
	"culpeo/internal/session"
)

// streamConn is a raw client-side view of one /v1/stream connection.
type streamConn struct {
	resp *http.Response
	sc   *api.SSEScanner
}

// openStream POSTs a stream-open and asserts it was accepted.
func openStream(t *testing.T, base string, req api.StreamOpenRequest) *streamConn {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal open: %v", err)
	}
	resp, err := http.Post(base+api.PathStream, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		t.Fatalf("open stream: status %d (%s)", resp.StatusCode, e.Error)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("open stream: Content-Type %q", ct)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return &streamConn{resp: resp, sc: api.NewSSEScanner(resp.Body)}
}

// next reads the next update frame (skipping heartbeats happens inside the
// scanner — comments never dispatch).
func (c *streamConn) next(t *testing.T) api.StreamUpdate {
	t.Helper()
	ev, err := c.sc.Next()
	if err != nil {
		t.Fatalf("read event: %v", err)
	}
	if ev.Name != api.StreamEventUpdate {
		t.Fatalf("event name %q, want %q", ev.Name, api.StreamEventUpdate)
	}
	var u api.StreamUpdate
	if err := json.Unmarshal(ev.Data, &u); err != nil {
		t.Fatalf("decode update: %v", err)
	}
	return u
}

// mkStreamObs builds a valid observation, varying with seq so estimates
// differ across the window.
func mkStreamObs(seq uint64) api.StreamObservation {
	vstart := 2.30 + 0.013*float64(seq%7)
	vfinal := vstart - 0.12 - 0.017*float64(seq%5)
	return api.StreamObservation{
		Seq:    seq,
		VStart: vstart,
		VMin:   vfinal - 0.06,
		VFinal: vfinal,
		Failed: seq%9 == 0,
	}
}

func sameBitsF(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// checkUpdateParity pins the streamed update against the from-scratch
// reference fold over the same window, bit for bit.
func checkUpdateParity(t *testing.T, u api.StreamUpdate, model core.PowerModel, window, history []api.StreamObservation) {
	t.Helper()
	want, have, err := session.FoldWindow(model, window)
	if err != nil {
		t.Fatalf("FoldWindow: %v", err)
	}
	if !have {
		t.Fatalf("reference fold over %d obs produced nothing", len(window))
	}
	if !sameBitsF(u.VSafe, want.VSafe) || !sameBitsF(u.VDelta, want.VDelta) || !sameBitsF(u.VE, want.VE) {
		t.Fatalf("estimate parity: streamed {%x %x %x} != folded {%x %x %x}",
			math.Float64bits(u.VSafe), math.Float64bits(u.VDelta), math.Float64bits(u.VE),
			math.Float64bits(want.VSafe), math.Float64bits(want.VDelta), math.Float64bits(want.VE))
	}
	if u.Window != len(window) {
		t.Fatalf("window %d, want %d", u.Window, len(window))
	}
	m := session.FoldMargin(*core.DefaultAdaptiveMargin(), history)
	if !sameBitsF(u.Margin, m.Margin()) {
		t.Fatalf("margin parity: streamed %x != folded %x", math.Float64bits(u.Margin), math.Float64bits(m.Margin()))
	}
	if !sameBitsF(u.Launch, u.VSafe+u.Margin) {
		t.Fatalf("launch %x != v_safe+margin %x", math.Float64bits(u.Launch), math.Float64bits(u.VSafe+u.Margin))
	}
}

// TestStreamRoundTrip is the end-to-end happy path: open, observe in
// batches, verify every pushed update bit-exactly against the reference
// fold, close, receive exactly one terminal, see the tombstone replay it.
func TestStreamRoundTrip(t *testing.T) {
	leakCheck(t)
	s, ts := newTestServer(t, Config{SessionRing: 8})
	model := defaultModel(t)
	const dev = "dev-roundtrip"

	conn := openStream(t, ts.URL, api.StreamOpenRequest{Device: dev})
	snap := conn.next(t)
	if snap.Seq != 1 || snap.Window != 0 || snap.Final {
		t.Fatalf("fresh snapshot %+v", snap)
	}
	if snap.Margin <= 0 {
		t.Fatalf("fresh snapshot margin %g", snap.Margin)
	}

	var history []api.StreamObservation
	var lastSeq uint64
	for batch := 0; batch < 5; batch++ {
		var obs []api.StreamObservation
		for i := 0; i < 3; i++ {
			lastSeq++
			obs = append(obs, mkStreamObs(lastSeq))
		}
		history = append(history, obs...)
		ack := decodeResp[api.StreamObsResponse](t, postJSON(t, ts.URL+api.PathStreamObs,
			api.StreamObsRequest{Device: dev, Observations: obs}), http.StatusOK)
		if ack.LastSeq != lastSeq || ack.Duplicates != 0 {
			t.Fatalf("ack %+v after seq %d", ack, lastSeq)
		}
		u := conn.next(t)
		if u.ObsSeq != lastSeq || u.Final {
			t.Fatalf("update %+v after seq %d", u, lastSeq)
		}
		window := history
		if len(window) > 8 {
			window = window[len(window)-8:]
		}
		checkUpdateParity(t, u, model, window, history)
	}

	// A duplicate retry is acknowledged without a new update.
	dupAck := decodeResp[api.StreamObsResponse](t, postJSON(t, ts.URL+api.PathStreamObs,
		api.StreamObsRequest{Device: dev, Observations: history[len(history)-2:]}), http.StatusOK)
	if dupAck.Duplicates != 2 || dupAck.LastSeq != lastSeq {
		t.Fatalf("duplicate ack %+v", dupAck)
	}
	// The retry still publishes one update (the batch was non-empty); its
	// state must be identical to the pre-retry state.
	if u := conn.next(t); u.ObsSeq != lastSeq || u.Window != 8 {
		t.Fatalf("post-retry update %+v", u)
	}

	closeAck := decodeResp[api.StreamObsResponse](t, postJSON(t, ts.URL+api.PathStreamObs,
		api.StreamObsRequest{Device: dev, Close: true}), http.StatusOK)
	if !closeAck.Closed {
		t.Fatalf("close ack %+v", closeAck)
	}
	term := conn.next(t)
	if !term.Final || term.Reason != "close" {
		t.Fatalf("terminal %+v", term)
	}
	window := history[len(history)-8:]
	checkUpdateParity(t, term, model, window, history)
	if _, err := conn.sc.Next(); err == nil {
		t.Fatal("stream did not end after terminal")
	}

	// A late resume hits the tombstone: the same terminal replays, then EOF.
	replayConn := openStream(t, ts.URL, api.StreamOpenRequest{Device: dev})
	replay := replayConn.next(t)
	if !replay.Final || replay.Reason != "close" || !sameBitsF(replay.VSafe, term.VSafe) || replay.Seq != term.Seq {
		t.Fatalf("tombstone replay %+v != terminal %+v", replay, term)
	}
	if _, err := replayConn.sc.Next(); err == nil {
		t.Fatal("tombstone stream did not end after replayed terminal")
	}

	st := s.Metrics().Sessions
	if st.Opened != 1 || st.Closed != 1 || st.Terminals != 1 || st.Updates < 5 || st.DupObs != 2 {
		t.Errorf("session stats %+v", st)
	}
}

// TestStreamResumeAndRebuild covers both reconnect flavors: a resume while
// the session is live (event numbering continues), and a rebuild from the
// client's replayed tail after eviction destroyed the server-side state —
// estimates re-converge bit-exactly in both.
func TestStreamResumeAndRebuild(t *testing.T) {
	leakCheck(t)
	s, ts := newTestServer(t, Config{SessionRing: 4})
	model := defaultModel(t)
	const dev = "dev-resume"

	conn := openStream(t, ts.URL, api.StreamOpenRequest{Device: dev})
	_ = conn.next(t)
	var history []api.StreamObservation
	for seq := uint64(1); seq <= 6; seq++ {
		history = append(history, mkStreamObs(seq))
	}
	decodeResp[api.StreamObsResponse](t, postJSON(t, ts.URL+api.PathStreamObs,
		api.StreamObsRequest{Device: dev, Observations: history}), http.StatusOK)
	first := conn.next(t)
	conn.resp.Body.Close()
	waitFor(t, "stream detach", func() bool { return s.Sessions().Stats().Attached == 0 })

	// Resume: the session is still live, so the snapshot continues the
	// event numbering and carries identical state.
	resumed := openStream(t, ts.URL, api.StreamOpenRequest{Device: dev})
	snap := resumed.next(t)
	if snap.Seq <= first.Seq {
		t.Fatalf("resume snapshot seq %d, want > %d (continued numbering)", snap.Seq, first.Seq)
	}
	checkUpdateParity(t, snap, model, history[len(history)-4:], history)
	resumed.resp.Body.Close()
	waitFor(t, "stream detach", func() bool { return s.Sessions().Stats().Attached == 0 })

	// Evict the detached session by sweeping past the idle horizon.
	for i := 0; i < session.DefaultIdleEpochs+2; i++ {
		s.Sessions().AdvanceEpoch()
	}
	if n := s.Sessions().Len(); n != 0 {
		t.Fatalf("%d sessions after idle sweeps, want 0", n)
	}

	// Uploads now miss: 404 tells the client to reconnect with a replay.
	lost := postJSON(t, ts.URL+api.PathStreamObs, api.StreamObsRequest{
		Device: dev, Observations: []api.StreamObservation{mkStreamObs(7)},
	})
	lost.Body.Close()
	if lost.StatusCode != http.StatusNotFound {
		t.Fatalf("obs after eviction: status %d, want 404", lost.StatusCode)
	}

	// Rebuild from the replayed tail: a fresh session (Seq restarts at 1)
	// whose estimate is bit-identical to the from-scratch fold. The margin
	// folds over the replay only — the older history died with the session.
	tail := history[len(history)-4:]
	rebuilt := openStream(t, ts.URL, api.StreamOpenRequest{Device: dev, Ring: 4, Replay: tail, LastEventSeq: snap.Seq})
	rsnap := rebuilt.next(t)
	if rsnap.Seq != 1 {
		t.Fatalf("rebuild snapshot seq %d, want 1", rsnap.Seq)
	}
	checkUpdateParity(t, rsnap, model, tail, tail)
	if !sameBitsF(rsnap.VSafe, snap.VSafe) || !sameBitsF(rsnap.VDelta, snap.VDelta) || !sameBitsF(rsnap.VE, snap.VE) {
		t.Fatalf("rebuilt estimate %+v != pre-eviction %+v", rsnap, snap)
	}
	if got := s.Metrics().Sessions; got.Rebuilt != 1 || got.Evicted != 1 {
		t.Errorf("stats %+v, want 1 rebuild / 1 eviction", got)
	}
}

// TestStreamSupersede: a second connection for the same device takes over;
// the first ends with an explicit "superseded" terminal frame.
func TestStreamSupersede(t *testing.T) {
	leakCheck(t)
	s, ts := newTestServer(t, Config{})
	const dev = "dev-supersede"

	first := openStream(t, ts.URL, api.StreamOpenRequest{Device: dev})
	_ = first.next(t)
	second := openStream(t, ts.URL, api.StreamOpenRequest{Device: dev})
	_ = second.next(t)

	u := first.next(t)
	if !u.Final || u.Reason != "superseded" {
		t.Fatalf("superseded terminal %+v", u)
	}
	if _, err := first.sc.Next(); err == nil {
		t.Fatal("superseded stream did not end")
	}
	if got := s.Metrics().Sessions.Superseded; got != 1 {
		t.Errorf("superseded_total = %d, want 1", got)
	}

	// The second connection still works.
	decodeResp[api.StreamObsResponse](t, postJSON(t, ts.URL+api.PathStreamObs,
		api.StreamObsRequest{Device: dev, Observations: []api.StreamObservation{mkStreamObs(1)}}), http.StatusOK)
	if u := second.next(t); u.ObsSeq != 1 {
		t.Fatalf("takeover update %+v", u)
	}
}

// TestStreamDrain: SetDraining ends every live stream with a "drain"
// terminal and refuses new opens; the sessions survive, so undraining lets
// the device resume with its state intact.
func TestStreamDrain(t *testing.T) {
	leakCheck(t)
	s, ts := newTestServer(t, Config{})
	const dev = "dev-drain"

	conn := openStream(t, ts.URL, api.StreamOpenRequest{Device: dev})
	_ = conn.next(t)
	obs := []api.StreamObservation{mkStreamObs(1), mkStreamObs(2)}
	decodeResp[api.StreamObsResponse](t, postJSON(t, ts.URL+api.PathStreamObs,
		api.StreamObsRequest{Device: dev, Observations: obs}), http.StatusOK)
	before := conn.next(t)

	s.SetDraining(true)
	term := conn.next(t)
	if !term.Final || term.Reason != "drain" {
		t.Fatalf("drain terminal %+v", term)
	}
	if !sameBitsF(term.VSafe, before.VSafe) || term.Window != 2 {
		t.Fatalf("drain terminal %+v should carry session state %+v", term, before)
	}
	if _, err := conn.sc.Next(); err == nil {
		t.Fatal("drained stream did not end")
	}

	// New opens are refused while draining.
	b, _ := json.Marshal(api.StreamOpenRequest{Device: "dev-other"})
	resp, err := http.Post(ts.URL+api.PathStream, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("open while draining: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open while draining: status %d, want 503", resp.StatusCode)
	}

	// Resuming the live session is refused just the same — a client that
	// auto-reattached here after the drain kick would hold a fresh SSE
	// stream open that DrainStreams already swept past, hanging Shutdown.
	b, _ = json.Marshal(api.StreamOpenRequest{Device: dev})
	resp, err = http.Post(ts.URL+api.PathStream, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("resume while draining: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("resume while draining: status %d, want 503", resp.StatusCode)
	}

	// Undrain: the session survived the drain, the device resumes.
	s.SetDraining(false)
	resumed := openStream(t, ts.URL, api.StreamOpenRequest{Device: dev})
	snap := resumed.next(t)
	if snap.Window != 2 || !sameBitsF(snap.VSafe, before.VSafe) || snap.Seq <= term.Seq {
		t.Fatalf("post-drain resume %+v, want window 2 continuing from %+v", snap, term)
	}
}

// TestStreamCaps: MaxSessions refuses the N+1st device with 503 +
// Retry-After, and a full event queue kicks (not blocks) a consumer that
// stopped reading — the session survives for a resume.
func TestStreamCaps(t *testing.T) {
	leakCheck(t)
	s, ts := newTestServer(t, Config{MaxSessions: 1})

	conn := openStream(t, ts.URL, api.StreamOpenRequest{Device: "dev-a"})
	_ = conn.next(t)
	b, _ := json.Marshal(api.StreamOpenRequest{Device: "dev-b"})
	resp, err := http.Post(ts.URL+api.PathStream, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("open over cap: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("open over cap: status %d Retry-After %q, want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if got := s.Metrics().Sessions.Rejected; got != 1 {
		t.Errorf("rejected_total = %d, want 1", got)
	}
}

// TestStreamErrors walks the request-validation surface of both stream
// endpoints.
func TestStreamErrors(t *testing.T) {
	leakCheck(t)
	_, ts := newTestServer(t, Config{})

	// GET is not a stream open (and not an upload).
	for _, p := range []string{api.PathStream, api.PathStreamObs} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatalf("GET %s: %v", p, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", p, resp.StatusCode)
		}
	}

	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(api.PathStream, `junk`); got != http.StatusBadRequest {
		t.Errorf("junk open: %d, want 400", got)
	}
	if got := post(api.PathStream, `{"device":"has space"}`); got != http.StatusBadRequest {
		t.Errorf("bad device: %d, want 400", got)
	}
	if got := post(api.PathStream, `{"device":"dev-x","ring":100000}`); got != http.StatusBadRequest {
		t.Errorf("oversized ring: %d, want 400", got)
	}
	if got := post(api.PathStream, `{"device":"dev-x","power":{"part":"flux-capacitor"}}`); got != http.StatusBadRequest {
		t.Errorf("unknown part: %d, want 400", got)
	}
	if got := post(api.PathStream, `{"device":"dev-x","replay":[{"seq":1,"v_start":2.0,"v_min":2.4,"v_final":2.2}]}`); got != http.StatusBadRequest {
		t.Errorf("invalid replay observation: %d, want 400", got)
	}
	if got := post(api.PathStreamObs, `{"device":"dev-ghost","observations":[{"seq":1,"v_start":2.4,"v_min":2.0,"v_final":2.2}]}`); got != http.StatusNotFound {
		t.Errorf("obs for unknown device: %d, want 404", got)
	}

	// A live session that closes answers 409 to genuinely new observations.
	conn := openStream(t, ts.URL, api.StreamOpenRequest{Device: "dev-err"})
	_ = conn.next(t)
	decodeResp[api.StreamObsResponse](t, postJSON(t, ts.URL+api.PathStreamObs,
		api.StreamObsRequest{Device: "dev-err", Observations: []api.StreamObservation{mkStreamObs(1)}, Close: true}), http.StatusOK)
	if got := post(api.PathStreamObs, `{"device":"dev-err","observations":[{"seq":2,"v_start":2.4,"v_min":2.0,"v_final":2.2}]}`); got != http.StatusConflict {
		t.Errorf("new obs to closed session: %d, want 409", got)
	}
	// A ring-size mismatch on resume is refused (tombstones replay instead,
	// so use a second live device).
	conn2 := openStream(t, ts.URL, api.StreamOpenRequest{Device: "dev-err2", Ring: 8})
	_ = conn2.next(t)
	if got := post(api.PathStream, `{"device":"dev-err2","ring":16}`); got != http.StatusBadRequest {
		t.Errorf("ring mismatch on resume: %d, want 400", got)
	}
}

// TestSessionSweeper: with SessionSweep set, New starts the epoch ticker
// and Close stops it (leakCheck proves the stop); idle sessions age out
// without anyone calling AdvanceEpoch.
func TestSessionSweeper(t *testing.T) {
	leakCheck(t)
	s, ts := newTestServer(t, Config{SessionSweep: 2 * time.Millisecond, SessionIdleEpochs: 1})
	t.Cleanup(s.Close)

	conn := openStream(t, ts.URL, api.StreamOpenRequest{Device: "dev-sweep"})
	_ = conn.next(t)
	conn.resp.Body.Close()
	waitFor(t, "stream detach", func() bool { return s.Sessions().Stats().Attached == 0 })
	waitFor(t, "sweeper eviction", func() bool { return s.Sessions().Len() == 0 })
	if s.Sessions().Epoch() == 0 {
		t.Error("sweeper never advanced the epoch")
	}
}

// Command smoke is the `make serve-smoke` harness: it builds nothing
// itself, but takes a culpeod binary (-bin), boots it on an ephemeral port,
// exercises the serving surface end to end — /healthz, a single estimate, a
// batch, /metrics — then sends SIGTERM and requires a graceful drain with
// exit status 0. It is the out-of-process complement to the httptest
// suites: the real binary, a real socket, a real signal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

func main() {
	bin := flag.String("bin", "", "path to the culpeod binary")
	timeout := flag.Duration("timeout", 30*time.Second, "overall smoke deadline")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "smoke: -bin is required")
		os.Exit(2)
	}
	if err := smoke(*bin, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("smoke: ok")
}

func smoke(bin string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)

	// Capture stdout in a lock-guarded buffer rather than a pipe: cmd.Wait
	// would close a pipe racily against our final read of the drain log.
	out := &syncBuf{}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	cmd.Stdout = out
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", bin, err)
	}
	// On any failure path, make sure the daemon dies with us.
	defer cmd.Process.Kill()

	// The startup contract: the first stdout line announces the address.
	var base string
	for base == "" {
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon never announced an address; output: %q", out.String())
		}
		if s := out.String(); strings.Contains(s, "listening on http://") {
			line := s[strings.Index(s, "http://"):]
			base = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) (int, []byte, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}
	post := func(path, body string) (int, []byte, error) {
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}

	// 1. Health.
	status, body, err := get("/healthz")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("healthz: status %d err %v", status, err)
	}

	// 2. A single estimate, decodable with a positive V_safe.
	status, body, err = post("/v1/vsafe", `{"load":{"shape":"uniform","i":0.025,"t":0.01}}`)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("vsafe: status %d err %v body %s", status, err, body)
	}
	var est struct {
		VSafe float64 `json:"v_safe"`
	}
	if err := json.Unmarshal(body, &est); err != nil || est.VSafe <= 0 {
		return fmt.Errorf("vsafe: bad estimate %s (err %v)", body, err)
	}

	// 3. A batch: three elements, the middle one malformed in place.
	status, body, err = post("/v1/batch",
		`{"requests":[{"load":{"shape":"uniform","i":0.025,"t":0.01}},{"load":{"shape":"nope"}},{"load":{"peripheral":"ble"}}]}`)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("batch: status %d err %v body %s", status, err, body)
	}
	var batch struct {
		Results []struct {
			Estimate *struct {
				VSafe float64 `json:"v_safe"`
			} `json:"estimate"`
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &batch); err != nil {
		return fmt.Errorf("batch: undecodable %s: %v", body, err)
	}
	if len(batch.Results) != 3 || batch.Results[0].Estimate == nil ||
		batch.Results[1].Error == "" || batch.Results[2].Estimate == nil {
		return fmt.Errorf("batch: wrong shape %s", body)
	}

	// 4. Metrics account for the traffic just sent.
	status, body, err = get("/metrics")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("metrics: status %d err %v", status, err)
	}
	var met struct {
		Endpoints map[string]struct {
			Requests uint64 `json:"requests"`
		} `json:"endpoints"`
		VSafeCache struct {
			Misses uint64 `json:"misses"`
		} `json:"vsafe_cache"`
	}
	if err := json.Unmarshal(body, &met); err != nil {
		return fmt.Errorf("metrics: undecodable %s: %v", body, err)
	}
	if met.Endpoints["vsafe"].Requests == 0 || met.Endpoints["batch"].Requests == 0 || met.VSafeCache.Misses == 0 {
		return fmt.Errorf("metrics: counters did not move: %s", body)
	}

	// 5. SIGTERM → graceful drain → exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %w", err)
		}
	case <-time.After(time.Until(deadline)):
		return fmt.Errorf("daemon did not exit within the smoke deadline")
	}
	if log := out.String(); !strings.Contains(log, "drained, exiting") {
		return fmt.Errorf("drain log missing 'drained, exiting': %q", log)
	}
	return nil
}

// syncBuf is a concurrency-safe stdout sink.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

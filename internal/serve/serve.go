// Package serve is the network face of the repository: an HTTP/JSON
// service exposing V_safe estimation (profile-guided and runtime),
// simulation verdicts and batched estimation over the same library code the
// CLIs drive. One server owns one core.VSafeCache, so every endpoint —
// single estimates, batch fan-outs, concurrent clients — coalesces
// identical (model, trace) work into one memoized Algorithm 1 run, and the
// /metrics document reports the cache's live hit rate next to the request
// counters.
//
// The server is production-shaped rather than a bare mux:
//
//   - admission control: at most MaxInFlight requests execute while at most
//     QueueDepth wait; beyond that clients get 503 + Retry-After
//     immediately (backpressure, never unbounded queueing);
//   - per-request deadlines: Timeout bounds every request, and the context
//     threads through powersys.RunOptions.Ctx so a deadline abandons a
//     simulation mid-run instead of finishing it for a dead client;
//   - panic isolation: a panicking handler answers 500 and increments a
//     counter without taking the process down — the same recovery
//     discipline internal/sweep applies per cell (batch cells additionally
//     get the sweep engine's own recovery);
//   - graceful drain: SetDraining flips /healthz to 503 so load balancers
//     stop routing, while in-flight work completes (cmd/culpeod pairs this
//     with http.Server.Shutdown and a hard deadline).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/core"
	"culpeo/internal/journal"
	"culpeo/internal/load"
	"culpeo/internal/partsdb"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
	"culpeo/internal/session"
	"culpeo/internal/sweep"
)

// Defaults for Config's zero values.
const (
	DefaultQueueDepth = 64
	DefaultTimeout    = 30 * time.Second
	// maxBatch bounds a single batch request; larger workloads should shard
	// across requests (each one admission-queue slot).
	maxBatch = 4096
)

// Config tunes a Server. The zero value is serviceable: GOMAXPROCS
// in-flight requests, a 64-deep admission queue, 30 s deadlines, the
// default-sized V_safe cache and the default-seed part catalogue.
type Config struct {
	// MaxInFlight bounds concurrently executing requests (<=0: GOMAXPROCS).
	MaxInFlight int
	// QueueDepth bounds requests waiting for an execution slot (<=0:
	// DefaultQueueDepth). The K+1st waiter is refused with 503.
	QueueDepth int
	// Timeout is the per-request deadline (<=0: DefaultTimeout).
	Timeout time.Duration
	// CacheSize sizes the server's V_safe cache (<=0: core default).
	CacheSize int
	// Cache overrides the server-owned cache entirely (tests share or
	// undersize it; nil builds one of CacheSize).
	Cache *core.VSafeCache
	// Workers bounds the sweep pool a batch request fans out over (<=0:
	// GOMAXPROCS).
	Workers int
	// ScalarBatch routes batch simulations through the scalar per-element
	// path instead of the SoA lockstep batch stepper — the fallback knob
	// for shapes the batch lane mishandles (none known; the equivalence
	// suite pins the lanes byte-identical).
	ScalarBatch bool
	// Catalog resolves PowerSpec.Part (nil: partsdb.DefaultIndex()).
	Catalog *partsdb.Index
	// ShardID names this node's slot in a sharded deployment ("" for a
	// standalone daemon). It is advertised on /healthz and /metrics so
	// routers (internal/shard) and operators can confirm which shard
	// answered; it does not change routing inside the server.
	ShardID string

	// MaxSessions caps live streaming sessions; beyond it /v1/stream opens
	// answer 503 + Retry-After (<=0: session.DefaultMaxSessions).
	MaxSessions int
	// SessionRing is the default observation-window size for sessions that
	// do not request one (<=0: session.DefaultRing).
	SessionRing int
	// SessionQueue bounds each stream connection's event queue; a consumer
	// that lets it fill is disconnected (<=0: session.DefaultQueue).
	SessionQueue int
	// SessionIdleEpochs evicts a detached session after this many sweep
	// epochs without activity (<=0: session.DefaultIdleEpochs).
	SessionIdleEpochs int
	// SessionSweep is the epoch sweeper's tick interval. 0 leaves the
	// sweeper off — tests (and embedders that want their own clock) drive
	// Sessions().AdvanceEpoch() directly. When on, Close stops it.
	SessionSweep time.Duration

	// Journal, when non-nil, makes the session table crash-durable: folds
	// are acknowledged only after their write-ahead record is durable, and
	// the server boots in phase "starting" — the embedder must call Recover
	// with the journal's recovery view before any work is admitted.
	Journal *journal.Journal
	// SnapshotEvery triggers an automatic compacted journal snapshot after
	// this many appended records (<=0: snapshots happen only on graceful
	// drain via JournalSnapshot). Ignored without a Journal.
	SnapshotEvery int
}

// BuildVersion identifies the serving build on /healthz. Bumped whenever
// the wire surface changes shape (PR number, not semver — the repo grows
// one PR at a time).
const BuildVersion = "culpeod/10"

// Lifecycle phases advertised on /healthz. A server without a journal is
// born ready; a journaled one walks starting → recovering → ready and
// refuses work (503) until it arrives.
const (
	phaseReady int32 = iota
	phaseStarting
	phaseRecovering
)

// Server implements the culpeod HTTP API. Create with New, expose with
// Handler.
type Server struct {
	cfg     Config
	cache   *core.VSafeCache
	catalog *partsdb.Index
	met     *metrics
	mux     *http.ServeMux

	// slots is the execution semaphore (capacity MaxInFlight); queued
	// counts waiters and is bounded by QueueDepth in admit.
	slots  chan struct{}
	queued atomic.Int64

	// holdForTest, when non-nil, blocks every /v1 handler after admission
	// until the channel yields — how the backpressure tests pin requests
	// in-flight deterministically.
	holdForTest chan struct{}

	// reqSeq numbers requests that arrive without an X-Request-Id of their
	// own, so every response carries a correlatable ID.
	reqSeq atomic.Uint64

	// topoEpoch is the fleet topology version last pushed to this node
	// (SetTopologyEpoch); 0 means standalone or never told. Advertised on
	// /healthz and /metrics so a router can verify its view propagated.
	topoEpoch atomic.Uint64

	// sessions is the streaming tier's device-session table; sweepStop /
	// sweepDone bracket its epoch ticker when SessionSweep enabled one.
	sessions  *session.Table
	sweepStop chan struct{}
	sweepDone chan struct{}
	closeOnce sync.Once

	// phase is the lifecycle gate (phaseReady/Starting/Recovering);
	// snapStop / snapDone bracket the automatic-snapshot ticker Recover
	// starts when SnapshotEvery is set.
	phase    atomic.Int32
	snapStop chan struct{}
	snapDone chan struct{}
}

// RequestIDHeader aliases the shared wire constant: the client sends one
// ID per attempt, the server echoes it (or mints its own), and failures
// become correlatable across client log, chaos proxy schedule and server
// metrics.
const RequestIDHeader = api.RequestIDHeader

// requestID returns the caller's sanitized correlation ID or mints one.
func (s *Server) requestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get(RequestIDHeader)); id != "" {
		return id
	}
	return fmt.Sprintf("culpeod-%d", s.reqSeq.Add(1))
}

// sanitizeRequestID accepts short token-shaped IDs only: a hostile header
// must not be reflected into responses or metrics verbatim.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return ""
		}
	}
	return id
}

// endpointNames keys the per-endpoint metrics.
var endpointNames = []string{"vsafe", "vsafe-r", "simulate", "batch", "stream", "stream-obs", "healthz", "metrics"}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	cache := cfg.Cache
	if cache == nil {
		cache = core.NewVSafeCache(cfg.CacheSize)
	}
	catalog := cfg.Catalog
	if catalog == nil {
		catalog = partsdb.DefaultIndex()
	}
	s := &Server{
		cfg:     cfg,
		cache:   cache,
		catalog: catalog,
		met:     newMetrics(endpointNames),
		mux:     http.NewServeMux(),
		slots:   make(chan struct{}, cfg.MaxInFlight),
		sessions: session.NewTable(session.Config{
			MaxSessions: cfg.MaxSessions,
			Ring:        cfg.SessionRing,
			Queue:       cfg.SessionQueue,
			IdleEpochs:  cfg.SessionIdleEpochs,
			Journal:     cfg.Journal,
		}),
	}
	if cfg.Journal != nil {
		// Born not-ready: the embedder must Recover (even on an empty
		// journal) before work is admitted, so requests can never race a
		// half-rebuilt session table.
		s.phase.Store(phaseStarting)
	}
	s.mux.Handle("/v1/vsafe", s.api("vsafe", s.handleVSafe))
	s.mux.Handle("/v1/vsafe-r", s.api("vsafe-r", s.handleVSafeR))
	s.mux.Handle("/v1/simulate", s.api("simulate", s.handleSimulate))
	s.mux.Handle("/v1/batch", s.api("batch", s.handleBatch))
	s.mux.Handle(api.PathStream, s.streaming("stream", s.handleStreamOpen))
	s.mux.Handle(api.PathStreamObs, s.api("stream-obs", s.handleStreamObs))
	s.mux.Handle("/healthz", s.observed("healthz", s.handleHealthz))
	s.mux.Handle("/metrics", s.observed("metrics", s.handleMetrics))
	if cfg.SessionSweep > 0 {
		s.sweepStop = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweepLoop(cfg.SessionSweep)
	}
	return s
}

// sweepLoop drives the session table's epoch clock until Close.
func (s *Server) sweepLoop(every time.Duration) {
	defer close(s.sweepDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sessions.AdvanceEpoch()
		case <-s.sweepStop:
			return
		}
	}
}

// Sessions exposes the streaming session table (tests drive its epoch
// clock; cmd/culpeod reports its stats).
func (s *Server) Sessions() *session.Table { return s.sessions }

// Ready reports whether the server admits work (phase "ready"; draining is
// a separate flag — a draining server still answers stragglers).
func (s *Server) Ready() bool { return s.phase.Load() == phaseReady }

// phaseString names the lifecycle phase for /healthz and error bodies.
func (s *Server) phaseString() string {
	switch s.phase.Load() {
	case phaseStarting:
		return "starting"
	case phaseRecovering:
		return "recovering"
	default:
		return "ready"
	}
}

// resolveSpec turns a journaled power-spec blob back into its model — the
// session table's recovery resolver. An empty blob is the all-defaults
// spec, exactly as an empty PowerSpec on the wire would be.
func (s *Server) resolveSpec(spec []byte) (core.PowerModel, error) {
	var p PowerSpec
	if len(spec) > 0 {
		if err := json.Unmarshal(spec, &p); err != nil {
			return core.PowerModel{}, fmt.Errorf("recover: decode power spec: %w", err)
		}
	}
	rp, err := resolvePower(p, s.catalog)
	if err != nil {
		return core.PowerModel{}, err
	}
	return rp.model, nil
}

// Recover replays the journal's recovery view into the session table and
// flips the server ready. It must run before the listener admits traffic
// (cmd/culpeod replays before announcing its address); /healthz advertises
// phase "recovering" while it runs so pool probes keep routing elsewhere.
// On a server without a journal it is a ready no-op.
func (s *Server) Recover(rec journal.Recovery) (session.RecoverStats, error) {
	if s.cfg.Journal == nil {
		return session.RecoverStats{}, nil
	}
	s.phase.Store(phaseRecovering)
	st, err := s.sessions.Replay(rec, s.resolveSpec)
	if err != nil {
		return st, err
	}
	s.phase.Store(phaseReady)
	if s.cfg.SnapshotEvery > 0 {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapLoop()
	}
	return st, nil
}

// snapLoop triggers a compacted snapshot whenever SnapshotEvery records
// have been appended since the last one.
func (s *Server) snapLoop() {
	defer close(s.snapDone)
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if s.sessions.JournalAppendsSinceSnapshot() >= uint64(s.cfg.SnapshotEvery) {
				// A snapshot failure poisons the journal; the next
				// acknowledged fold reports it loudly.
				_ = s.sessions.JournalSnapshot()
			}
		case <-s.snapStop:
			return
		}
	}
}

// JournalSnapshot writes one compacted snapshot now — cmd/culpeod calls it
// on graceful drain so the next boot replays an image, not a record tail.
func (s *Server) JournalSnapshot() error { return s.sessions.JournalSnapshot() }

// Close releases the server's background resources: the session epoch
// sweeper stops and every live stream is disconnected with a drain
// terminal. Idempotent; the HTTP listener is the embedder's to close.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.sessions.SetDraining(true)
		s.sessions.DrainStreams()
		if s.sweepStop != nil {
			close(s.sweepStop)
			<-s.sweepDone
		}
		if s.snapStop != nil {
			close(s.snapStop)
			<-s.snapDone
		}
	})
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the server-owned V_safe cache (loadtest reports its
// hit rate; tests reset it).
func (s *Server) Cache() *core.VSafeCache { return s.cache }

// SetDraining flips the drain flag: /healthz answers 503 so load balancers
// stop routing while in-flight requests finish. Estimation endpoints keep
// answering — during http.Server.Shutdown the listener is already closed,
// and any straggler arriving on a kept-alive connection still deserves a
// real response. Draining also ends every live stream with a terminal
// update (reason "drain") and refuses new opens — without this,
// http.Server.Shutdown would wait on the long-lived SSE connections
// forever; the sessions themselves survive for clients that resume before
// the listener closes (resume elsewhere rebuilds from the replayed tail).
func (s *Server) SetDraining(v bool) {
	s.met.drained.Store(v)
	s.sessions.SetDraining(v)
	if v {
		s.sessions.DrainStreams()
	}
}

// SetTopologyEpoch records the fleet topology version this node was told
// about (control-plane push; internal/shard calls it on join/leave). The
// server itself only advertises the number — routing stays client-side.
func (s *Server) SetTopologyEpoch(epoch uint64) { s.topoEpoch.Store(epoch) }

// Metrics snapshots the live metrics document.
func (s *Server) Metrics() MetricsSnapshot {
	snap := s.met.snapshot(s.queued.Load(), int64(len(s.slots)), s.cache.Stats())
	snap.ShardID = s.cfg.ShardID
	snap.TopologyEpoch = s.topoEpoch.Load()
	snap.Sessions = s.sessions.Stats()
	return snap
}

// admission is the outcome of trying to enter the bounded queue.
type admission int

const (
	admitOK admission = iota
	admitFull
	admitCanceled
)

// admit implements the bounded admission queue: take an execution slot if
// one is free, otherwise wait — but only if fewer than QueueDepth requests
// are already waiting. The bound is strict (checked with one atomic add),
// so with K waiters the K+1st arrival is refused immediately.
func (s *Server) admit(ctx context.Context) admission {
	select {
	case s.slots <- struct{}{}:
		return admitOK
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.met.queueFull.Add(1)
		return admitFull
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return admitOK
	case <-ctx.Done():
		return admitCanceled
	}
}

func (s *Server) release() { <-s.slots }

// statusWriter captures the status code a handler wrote so the metrics
// middleware can classify the outcome.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.NewResponseController reach the underlying writer's
// Flusher — the stream handler flushes after every event.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // a write error means the client is gone
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// observed wraps the cheap GET endpoints with panic isolation and metrics
// but no admission control: health and metrics must answer while the work
// endpoints are saturated — that is when they matter most.
func (s *Server) observed(name string, fn http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		reqID := s.requestID(r)
		sw.Header().Set(RequestIDHeader, reqID)
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.met.recordPanic(reqID)
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, fmt.Errorf("panic (request %s): %v", reqID, rec))
				}
			}
			s.met.record(name, sw.status, time.Since(start))
		}()
		fn(sw, r)
	})
}

// api wraps a work endpoint with the full middleware stack: method check,
// panic isolation, admission control with backpressure, the per-request
// deadline, and outcome classification into HTTP statuses.
func (s *Server) api(name string, fn func(ctx context.Context, r *http.Request) (any, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		reqID := s.requestID(r)
		sw.Header().Set(RequestIDHeader, reqID)
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.met.recordPanic(reqID)
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, fmt.Errorf("panic (request %s): %v", reqID, rec))
				}
			}
			s.met.record(name, sw.status, time.Since(start))
		}()

		if r.Method != http.MethodPost {
			sw.Header().Set("Allow", http.MethodPost)
			writeError(sw, http.StatusMethodNotAllowed, errors.New("POST only"))
			return
		}

		if !s.Ready() {
			// Boot-time journal replay in progress: the session table is
			// half-rebuilt and must not be read or written around the replay.
			sw.Header().Set("Retry-After", "1")
			writeError(sw, http.StatusServiceUnavailable, fmt.Errorf("server %s", s.phaseString()))
			return
		}

		switch s.admit(r.Context()) {
		case admitFull:
			sw.Header().Set("Retry-After", "1")
			writeError(sw, http.StatusServiceUnavailable, errors.New("admission queue full"))
			return
		case admitCanceled:
			// The client gave up (or its deadline fired) while queued; the
			// response is best-effort.
			writeError(sw, http.StatusServiceUnavailable, errors.New("canceled while queued"))
			return
		}
		defer s.release()

		if s.holdForTest != nil {
			select {
			case <-s.holdForTest:
			case <-r.Context().Done():
			}
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		r.Body = http.MaxBytesReader(sw, r.Body, maxBodyBytes)

		v, err := fn(ctx, r)
		switch {
		case err == nil:
			writeJSON(sw, http.StatusOK, v)
		case errors.Is(err, errSpec):
			writeError(sw, http.StatusBadRequest, err)
		case errors.Is(err, session.ErrNoSession):
			// The device has no session here (evicted, restarted, or a
			// different backend): the client reconnects with a replay.
			writeError(sw, http.StatusNotFound, err)
		case errors.Is(err, session.ErrClosed):
			writeError(sw, http.StatusConflict, err)
		case errors.Is(err, context.DeadlineExceeded):
			s.met.timeouts.Add(1)
			writeError(sw, http.StatusGatewayTimeout, errors.New("deadline exceeded"))
		case errors.Is(err, context.Canceled):
			// Client disconnect: nothing to deliver, but record honestly.
			writeError(sw, statusClientClosed, err)
		default:
			writeError(sw, http.StatusInternalServerError, err)
		}
	})
}

// statusClientClosed mirrors nginx's non-standard 499 "client closed
// request" for metrics classification.
const statusClientClosed = 499

// estimate is the shared core of /v1/vsafe and each batch element: resolve
// both specs, route through the server's cache, answer bit-identically to
// the library path.
func (s *Server) estimate(ctx context.Context, req VSafeRequest) (EstimateResponse, error) {
	if err := ctx.Err(); err != nil {
		return EstimateResponse{}, err
	}
	rp, err := resolvePower(req.Power, s.catalog)
	if err != nil {
		return EstimateResponse{}, err
	}
	rl, err := resolveLoad(req.Load)
	if err != nil {
		return EstimateResponse{}, err
	}
	pg := profiler.PG{Model: rp.model, Cache: s.cache}
	var est core.Estimate
	if rl.isTrace {
		est, err = pg.EstimateTraceCtx(ctx, rl.trace)
	} else {
		est, err = pg.EstimateCtx(ctx, rl.profile)
	}
	if err != nil {
		// Residual Algorithm 1 failures are input-data problems (the specs
		// themselves already validated).
		return EstimateResponse{}, specErrorf("estimate: %v", err)
	}
	return EstimateResponse{VSafe: est.VSafe, VDelta: est.VDelta, VE: est.VE}, nil
}

func (s *Server) handleVSafe(ctx context.Context, r *http.Request) (any, error) {
	var req VSafeRequest
	if err := decodeBody(r.Body, &req); err != nil {
		return nil, err
	}
	return s.estimate(ctx, req)
}

func (s *Server) handleVSafeR(ctx context.Context, r *http.Request) (any, error) {
	var req VSafeRRequest
	if err := decodeBody(r.Body, &req); err != nil {
		return nil, err
	}
	rp, err := resolvePower(req.Power, s.catalog)
	if err != nil {
		return nil, err
	}
	obs, err := resolveObservation(req.Observation)
	if err != nil {
		return nil, err
	}
	est, err := core.VSafeRCtx(ctx, rp.model, obs)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr // deadline/cancel beats input classification
		}
		return nil, specErrorf("vsafe-r: %v", err)
	}
	return EstimateResponse{VSafe: est.VSafe, VDelta: est.VDelta, VE: est.VE}, nil
}

// resolvedSim is one validated simulation element, ready to run on either
// the scalar path or a lockstep batch lane.
type resolvedSim struct {
	cfg     powersys.Config
	prof    load.Profile
	vStart  float64
	harvest float64
	fast    bool
}

// resolveSimulate validates a simulation request into its runnable form,
// shared by /v1/simulate and each batch simulation element.
func resolveSimulate(req SimulateRequest, catalog *partsdb.Index) (resolvedSim, error) {
	rp, err := resolvePower(req.Power, catalog)
	if err != nil {
		return resolvedSim{}, err
	}
	rl, err := resolveLoad(req.Load)
	if err != nil {
		return resolvedSim{}, err
	}
	vStart := req.VStart
	if vStart == 0 {
		vStart = rp.cfg.VHigh
	}
	if !isFinite(vStart) || vStart < rp.cfg.VOff || vStart > rp.cfg.VHigh {
		return resolvedSim{}, specErrorf("simulate: v_start %g outside [%g, %g]", vStart, rp.cfg.VOff, rp.cfg.VHigh)
	}
	if !isFinite(req.Harvest) || req.Harvest < 0 {
		return resolvedSim{}, specErrorf("simulate: harvest %g", req.Harvest)
	}
	return resolvedSim{cfg: rp.cfg, prof: rl.asProfile(), vStart: vStart, harvest: req.Harvest, fast: req.Fast}, nil
}

// simResponse maps a run result onto the wire shape, shared by the scalar
// and batch paths so their answers are field-for-field comparable.
func simResponse(res powersys.RunResult) SimulateResponse {
	resp := SimulateResponse{
		Completed:   res.Completed,
		PowerFailed: res.PowerFailed,
		VStart:      res.VStart,
		VMin:        res.VMin,
		VFinal:      res.VFinal,
		Duration:    res.Duration,
		EnergyUsed:  res.EnergyUsed,
	}
	if res.Err != nil {
		resp.Error = res.Err.Error()
	}
	return resp
}

// ctxFailure reports a run result aborted by the request deadline or a
// client disconnect — outcomes that fail the request, not the element.
func ctxFailure(res powersys.RunResult) error {
	if res.Err != nil && (errors.Is(res.Err, context.DeadlineExceeded) || errors.Is(res.Err, context.Canceled)) {
		return res.Err
	}
	return nil
}

// simulateScalar runs one element on its own freshly prepared system: the
// harness's launch-validation sequence — charge to V_high, discharge to
// the requested start, force delivery on, run.
func simulateScalar(ctx context.Context, rs resolvedSim) (SimulateResponse, error) {
	sys, err := powersys.New(rs.cfg)
	if err != nil {
		return SimulateResponse{}, specErrorf("simulate: %v", err)
	}
	if err := sys.ChargeTo(rs.cfg.VHigh); err != nil {
		return SimulateResponse{}, specErrorf("simulate: %v", err)
	}
	if err := sys.DischargeTo(rs.vStart); err != nil {
		return SimulateResponse{}, specErrorf("simulate: %v", err)
	}
	sys.Monitor().Force(true)
	res := sys.Run(rs.prof, powersys.RunOptions{
		SkipRebound:  true,
		HarvestPower: rs.harvest,
		Fast:         rs.fast,
		Ctx:          ctx,
	})
	if err := ctxFailure(res); err != nil {
		return SimulateResponse{}, err
	}
	return simResponse(res), nil
}

func (s *Server) handleSimulate(ctx context.Context, r *http.Request) (any, error) {
	var req SimulateRequest
	if err := decodeBody(r.Body, &req); err != nil {
		return nil, err
	}
	rs, err := resolveSimulate(req, s.catalog)
	if err != nil {
		return nil, err
	}
	return simulateScalar(ctx, rs)
}

// handleBatch fans the elements out over the sweep worker pool. Results are
// order-preserving and per-element: one malformed element reports its error
// in place without failing its siblings. All estimate elements share the
// server's V_safe cache, so a batch of near-duplicate configurations
// coalesces into few Algorithm 1 runs; simulation elements run on the SoA
// lockstep batch stepper, one chunk of lanes per worker dispatch.
func (s *Server) handleBatch(ctx context.Context, r *http.Request) (any, error) {
	var req BatchRequest
	if err := decodeBody(r.Body, &req); err != nil {
		return nil, err
	}
	if len(req.Requests) == 0 && len(req.Simulations) == 0 {
		return nil, specErrorf("batch: empty request list")
	}
	if n := len(req.Requests) + len(req.Simulations); n > maxBatch {
		return nil, specErrorf("batch: %d elements exceeds the %d cap", n, maxBatch)
	}
	var resp BatchResponse
	if len(req.Requests) > 0 {
		// In-batch fingerprint dedup: elements resolving to the same
		// (power-model, trace) key — the exact key the V_safe cache and the
		// shard router use — are computed once and fanned back out in
		// order. Elements that fail fingerprint resolution would be 400s on
		// any path; each keeps its own slot so its error reports in place.
		type keyT [2]uint64
		seen := make(map[keyT]int, len(req.Requests)) // key -> representative index
		reps := make([]int, 0, len(req.Requests))     // indices actually computed
		followers := make(map[int][]int)              // representative -> duplicate indices
		var deduped uint64
		for i, el := range req.Requests {
			if mf, tf, err := Fingerprints(el, s.catalog); err == nil {
				k := keyT{mf, tf}
				if rep, ok := seen[k]; ok {
					followers[rep] = append(followers[rep], i)
					deduped++
					continue
				}
				seen[k] = i
			}
			reps = append(reps, i)
		}
		repResults, err := sweep.Map(ctx, reps, func(ctx context.Context, _ int, idx int) (BatchResult, error) {
			est, err := s.estimate(ctx, req.Requests[idx])
			if err != nil {
				if ctx.Err() != nil {
					return BatchResult{}, ctx.Err() // deadline: fail the batch, not the element
				}
				return BatchResult{Error: err.Error()}, nil
			}
			return BatchResult{Estimate: &est}, nil
		}, sweep.Workers(s.cfg.Workers))
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, err
		}
		results := make([]BatchResult, len(req.Requests))
		for j, idx := range reps {
			results[idx] = repResults[j]
			for _, f := range followers[idx] {
				r := repResults[j]
				if r.Estimate != nil {
					est := *r.Estimate // value copy: no aliasing across elements
					r.Estimate = &est
				}
				results[f] = r
			}
		}
		s.met.batchDeduped.Add(deduped)
		resp.Results = results
	}
	if len(req.Simulations) > 0 {
		sims, err := s.simulateBatch(ctx, req.Simulations)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, err
		}
		resp.Simulations = sims
	}
	return resp, nil
}

// batchChunk is how many simulation lanes one worker dispatch advances in
// lockstep: enough to amortize the SoA setup, small enough that a request's
// lanes still spread across the pool.
const batchChunk = 64

// simulateBatch answers the Simulations list. Elements are validated
// individually (a malformed one reports its error in place), then grouped
// by stepper — exact and fast lanes run in separate lockstep batches — and
// chunked over the sweep pool. Every lane's verdict is byte-identical to
// the scalar /v1/simulate answer for the same element: the exact batch
// lane is bit-equal by construction and the parity tests pin it.
func (s *Server) simulateBatch(ctx context.Context, reqs []SimulateRequest) ([]BatchSimResult, error) {
	out := make([]BatchSimResult, len(reqs))
	type lane struct {
		idx int
		rs  resolvedSim
	}
	var exact, fast []lane
	for i, req := range reqs {
		rs, err := resolveSimulate(req, s.catalog)
		if err != nil {
			out[i] = BatchSimResult{Error: err.Error()}
			continue
		}
		if rs.fast {
			fast = append(fast, lane{i, rs})
		} else {
			exact = append(exact, lane{i, rs})
		}
	}

	runChunk := func(ctx context.Context, chunk []lane, useFast bool) ([]SimulateResponse, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !s.cfg.ScalarBatch {
			scens := make([]powersys.BatchScenario, len(chunk))
			for j, ln := range chunk {
				cfg := ln.rs.cfg
				scens[j] = powersys.BatchScenario{
					Profile: ln.rs.prof,
					Config:  &cfg,
					VStart:  ln.rs.vStart,
					Harvest: ln.rs.harvest,
				}
			}
			bs, err := powersys.NewBatch(chunk[0].rs.cfg, scens)
			if err == nil {
				results := bs.Run(powersys.BatchOptions{SkipRebound: true, Fast: useFast, Ctx: ctx})
				resps := make([]SimulateResponse, len(chunk))
				for j := range chunk {
					if err := ctxFailure(results[j]); err != nil {
						return nil, err
					}
					resps[j] = simResponse(results[j])
				}
				return resps, nil
			}
			// Shape the batch lane cannot hold (mixed timesteps, branch
			// counts): fall back to the scalar path below.
		}
		resps := make([]SimulateResponse, len(chunk))
		for j, ln := range chunk {
			r, err := simulateScalar(ctx, ln.rs)
			if err != nil {
				return nil, err
			}
			resps[j] = r
		}
		return resps, nil
	}

	for _, group := range []struct {
		lanes   []lane
		useFast bool
	}{{exact, false}, {fast, true}} {
		group := group
		if len(group.lanes) == 0 {
			continue
		}
		resps, err := sweep.MapChunks(ctx, group.lanes, batchChunk, func(ctx context.Context, _ int, chunk []lane) ([]SimulateResponse, error) {
			return runChunk(ctx, chunk, group.useFast)
		}, sweep.Workers(s.cfg.Workers))
		if err != nil {
			return nil, err
		}
		for j, ln := range group.lanes {
			r := resps[j]
			out[ln.idx] = BatchSimResult{Result: &r}
		}
	}
	return out, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	draining := s.met.drained.Load()
	phase := s.phaseString()
	if draining {
		phase = "draining"
	}
	ok := phase == "ready"
	status := http.StatusOK
	if !ok {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, HealthResponse{
		OK:            ok,
		Draining:      draining,
		Phase:         phase,
		ShardID:       s.cfg.ShardID,
		TopologyEpoch: s.topoEpoch.Load(),
		Version:       BuildVersion,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

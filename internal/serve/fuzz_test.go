package serve

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"culpeo/internal/api"
	"culpeo/internal/partsdb"
	"culpeo/internal/session"
)

// testCatalog shares the process-wide index so fuzz iterations don't
// re-synthesize the 2,000-part catalogue.
func testCatalog() *partsdb.Index { return partsdb.DefaultIndex() }

// fuzzSeeds are representative request bodies: the golden-corpus load
// shapes, peripheral and trace forms, part-catalogue resolution, plus
// near-miss malformations. The fuzzer mutates from here.
var fuzzSeeds = []string{
	`{"load":{"shape":"uniform","i":0.025,"t":0.01}}`,
	`{"load":{"shape":"pulse","i":0.05,"t":0.1}}`,
	`{"load":{"peripheral":"ble"}}`,
	`{"load":{"peripheral":"gesture"}}`,
	`{"load":{"samples":[0.01,0.02,0.015],"rate":125000}}`,
	`{"power":{"c":0.033,"esr":3,"v_off":1.8,"v_high":2.4},"load":{"shape":"uniform","i":0.025,"t":0.01}}`,
	`{"power":{"part":"supercapacitor-0000","bank_c":0.045},"load":{"shape":"pulse","i":0.05,"t":0.01}}`,
	`{"power":{"age":0.5},"load":{"shape":"uniform","i":0.025,"t":0.01}}`,
	`{"power":{"c":1e308,"esr":1e308},"load":{"shape":"uniform","i":1e308,"t":1e-308}}`,
	`{"load":{"shape":"uniform","i":-1,"t":0}}`,
	`{"load":{"samples":[-1,1e400,null]}}`,
	`{"load":{}}`,
	`{}`,
	`null`,
	`[]`,
	`{"load":{"shape":"uniform","i":0.025,"t":0.01}} trailing`,
	`{"power":{"v_off":0,"v_high":0}}`,
	"\x00\xff",
}

// checkSpecErr asserts every resolution failure is the 400-mapped errSpec,
// never an internal error class (and, implicitly via the fuzzer, never a
// panic).
func checkSpecErr(t *testing.T, err error) {
	t.Helper()
	if err != nil && !errors.Is(err, errSpec) {
		t.Fatalf("resolution error not classified as a client error: %v", err)
	}
}

// FuzzVSafeDecode drives the /v1/vsafe decode + resolve path with arbitrary
// bytes: the contract is malformed input maps to a 400-class error and
// nothing ever panics.
func FuzzVSafeDecode(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	catalog := testCatalog()
	f.Fuzz(func(t *testing.T, body string) {
		var req VSafeRequest
		if err := decodeBody(strings.NewReader(body), &req); err != nil {
			checkSpecErr(t, err)
			return
		}
		if _, err := resolvePower(req.Power, catalog); err != nil {
			checkSpecErr(t, err)
			return
		}
		_, err := resolveLoad(req.Load)
		checkSpecErr(t, err)
	})
}

// FuzzBatchDecode covers the batch envelope: element counts, nested specs,
// nulls in the array.
func FuzzBatchDecode(f *testing.F) {
	f.Add(`{"requests":[{"load":{"shape":"uniform","i":0.025,"t":0.01}},{"load":{"peripheral":"ble"}}]}`)
	f.Add(`{"requests":[]}`)
	f.Add(`{"requests":[null]}`)
	f.Add(`{"requests":"nope"}`)
	for _, s := range fuzzSeeds {
		f.Add(`{"requests":[` + s + `]}`)
	}
	catalog := testCatalog()
	f.Fuzz(func(t *testing.T, body string) {
		var req BatchRequest
		if err := decodeBody(strings.NewReader(body), &req); err != nil {
			checkSpecErr(t, err)
			return
		}
		for _, el := range req.Requests {
			if _, err := resolvePower(el.Power, catalog); err != nil {
				checkSpecErr(t, err)
				continue
			}
			_, err := resolveLoad(el.Load)
			checkSpecErr(t, err)
		}
	})
}

// FuzzSimulateDecode covers the simulate body (v_start, harvest, fast).
func FuzzSimulateDecode(f *testing.F) {
	f.Add(`{"load":{"shape":"pulse","i":0.025,"t":0.01},"v_start":2.2,"harvest":0.001,"fast":true}`)
	f.Add(`{"load":{"shape":"uniform","i":0.025,"t":0.01},"v_start":-1}`)
	f.Add(`{"load":{"peripheral":"lora"},"harvest":1e308}`)
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	catalog := testCatalog()
	f.Fuzz(func(t *testing.T, body string) {
		var req SimulateRequest
		if err := decodeBody(strings.NewReader(body), &req); err != nil {
			checkSpecErr(t, err)
			return
		}
		if _, err := resolvePower(req.Power, catalog); err != nil {
			checkSpecErr(t, err)
			return
		}
		_, err := resolveLoad(req.Load)
		checkSpecErr(t, err)
	})
}

// FuzzVSafeRDecode covers the runtime-estimate body.
func FuzzVSafeRDecode(f *testing.F) {
	f.Add(`{"observation":{"v_start":2.4,"v_min":2.0,"v_final":2.2}}`)
	f.Add(`{"observation":{"v_start":0,"v_min":0,"v_final":0}}`)
	f.Add(`{"observation":{"v_start":-2.4,"v_min":2.0,"v_final":1e309}}`)
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	catalog := testCatalog()
	f.Fuzz(func(t *testing.T, body string) {
		var req VSafeRRequest
		if err := decodeBody(strings.NewReader(body), &req); err != nil {
			checkSpecErr(t, err)
			return
		}
		if _, err := resolvePower(req.Power, catalog); err != nil {
			checkSpecErr(t, err)
			return
		}
		_, err := resolveObservation(req.Observation)
		checkSpecErr(t, err)
	})
}

// FuzzStreamFrameDecode covers the streaming tier's decode surface from
// both directions: arbitrary bytes through the bounded SSE scanner (the
// client side of the frame) and through the stream-open / stream-obs
// request decoding plus session attach (the server side). The contract is
// the same as the other targets — bounded memory, client-classified
// errors, no panics.
func FuzzStreamFrameDecode(f *testing.F) {
	f.Add("event: update\ndata: {\"seq\":1,\"v_safe\":2.4}\n\n")
	f.Add(": hb\n\nevent: update\r\ndata: {}\r\n\r\n")
	f.Add("data: {\"final\":true,\"reason\":\"close\"}\n\n")
	f.Add("data: line1\ndata: line2\n\n")
	f.Add("data: cut-mid-frame")
	f.Add(`{"device":"dev-1","ring":8,"replay":[{"seq":1,"v_start":2.4,"v_min":2.0,"v_final":2.2}]}`)
	f.Add(`{"device":"dev 1"}`)
	f.Add(`{"device":"dev-1","ring":-3}`)
	f.Add(`{"device":"dev-1","observations":[{"seq":0,"v_start":1e400}],"close":true}`)
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	catalog := testCatalog()
	f.Fuzz(func(t *testing.T, body string) {
		// Client side: scan the bytes as an SSE stream. Every event must be
		// produced under the line bound; errors are fine, growth is not.
		sc := api.NewSSEScanner(strings.NewReader(body))
		for {
			ev, err := sc.Next()
			if err != nil {
				break
			}
			var u api.StreamUpdate
			_ = json.Unmarshal(ev.Data, &u)
		}

		// Server side: the same bytes as a stream-open body, driven through
		// decode → resolve → attach on a throwaway table.
		var open api.StreamOpenRequest
		if err := decodeBody(strings.NewReader(body), &open); err == nil {
			if rp, err := resolvePower(open.Power, catalog); err != nil {
				checkSpecErr(t, err)
			} else {
				tbl := session.NewTable(session.Config{Shards: 1, MaxSessions: 4})
				if res, err := tbl.Attach(open.Device, rp.model, open.Ring, open.Replay); err == nil && res.Sub != nil {
					res.Sub.Detach()
				}
			}
		} else {
			checkSpecErr(t, err)
		}

		// And as a stream-obs body: fold errors must classify, never panic.
		var obs api.StreamObsRequest
		if err := decodeBody(strings.NewReader(body), &obs); err == nil {
			tbl := session.NewTable(session.Config{Shards: 1, MaxSessions: 4})
			_, _ = tbl.Fold(obs.Device, obs.Observations, obs.Close)
		} else {
			checkSpecErr(t, err)
		}
	})
}

// Live serving metrics: lock-free counters and the shared fixed-bucket
// latency histogram (internal/api — the client keeps per-backend histograms
// in the identical shape), snapshotted as one JSON document by GET /metrics
// (expvar-style — a flat, scrape-friendly object, no external metrics
// dependency). Every counter is monotonic; gauges (queue depth, in-flight)
// are read at snapshot time from the admission state.
package serve

import (
	"sync/atomic"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/core"
	"culpeo/internal/session"
)

// histogram keeps serve's historical name for the shared implementation;
// the bucket bounds live in api.LatencyBuckets.
type histogram = api.Histogram

const numBuckets = api.NumLatencyBuckets

// endpointStats counts one endpoint's traffic by outcome.
type endpointStats struct {
	requests     atomic.Uint64
	clientErrors atomic.Uint64 // 4xx
	serverErrors atomic.Uint64 // 5xx
}

// EndpointSnapshot is the wire form of one endpoint's counters.
type EndpointSnapshot struct {
	Requests     uint64 `json:"requests"`
	ClientErrors uint64 `json:"client_errors"`
	ServerErrors uint64 `json:"server_errors"`
}

// metrics aggregates everything /metrics exports.
type metrics struct {
	start     time.Time
	endpoints map[string]*endpointStats
	latency   histogram
	queueFull atomic.Uint64
	timeouts  atomic.Uint64
	panics    atomic.Uint64
	// batchDeduped counts /v1/batch elements answered by another element's
	// computation in the same request (in-batch fingerprint dedup).
	batchDeduped atomic.Uint64
	drained      atomic.Bool
	// lastPanicReqID holds the request ID of the most recent panicking
	// request (string), so a chaos-soak failure is correlatable from the
	// metrics document alone.
	lastPanicReqID atomic.Value
}

func newMetrics(endpoints []string) *metrics {
	m := &metrics{start: time.Now(), endpoints: make(map[string]*endpointStats, len(endpoints))}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointStats{}
	}
	return m
}

func (m *metrics) record(endpoint string, status int, d time.Duration) {
	es, ok := m.endpoints[endpoint]
	if !ok {
		return
	}
	es.requests.Add(1)
	switch {
	case status >= 500:
		es.serverErrors.Add(1)
	case status >= 400:
		es.clientErrors.Add(1)
	}
	m.latency.Observe(d)
}

// recordStatus counts an outcome without a latency observation — the
// streaming endpoint's connections live for minutes, and folding their
// lifetimes into the request-latency histogram would bury every real
// request duration under connection durations.
func (m *metrics) recordStatus(endpoint string, status int) {
	es, ok := m.endpoints[endpoint]
	if !ok {
		return
	}
	es.requests.Add(1)
	switch {
	case status >= 500:
		es.serverErrors.Add(1)
	case status >= 400:
		es.clientErrors.Add(1)
	}
}

// recordPanic counts a recovered handler panic and remembers the request
// it happened on.
func (m *metrics) recordPanic(reqID string) {
	m.panics.Add(1)
	m.lastPanicReqID.Store(reqID)
}

// MetricsSnapshot is the document GET /metrics returns.
type MetricsSnapshot struct {
	UptimeSec          float64                     `json:"uptime_sec"`
	Draining           bool                        `json:"draining"`
	Endpoints          map[string]EndpointSnapshot `json:"endpoints"`
	Latency            HistogramSnapshot           `json:"latency"`
	QueueDepth         int64                       `json:"queue_depth"`
	InFlight           int64                       `json:"in_flight"`
	QueueFull          uint64                      `json:"queue_full_total"`
	Timeouts           uint64                      `json:"timeouts_total"`
	Panics             uint64                      `json:"panics_total"`
	BatchDeduped       uint64                      `json:"batch_deduped_total"`
	LastPanicRequestID string                      `json:"last_panic_request_id,omitempty"`
	VSafeCache         core.VSafeCacheStats        `json:"vsafe_cache"`
	// Sessions is the streaming tier's counter block (live sessions,
	// evictions, slow-consumer kicks, terminals...).
	Sessions session.Stats `json:"sessions"`
	// ShardID / TopologyEpoch mirror /healthz (additive; zero-valued on a
	// standalone daemon) so one /metrics scrape identifies the shard.
	ShardID       string `json:"shard_id,omitempty"`
	TopologyEpoch uint64 `json:"topology_epoch,omitempty"`
}

func (m *metrics) snapshot(queueDepth, inFlight int64, cache core.VSafeCacheStats) MetricsSnapshot {
	s := MetricsSnapshot{
		UptimeSec:    time.Since(m.start).Seconds(),
		Draining:     m.drained.Load(),
		Endpoints:    make(map[string]EndpointSnapshot, len(m.endpoints)),
		Latency:      m.latency.Snapshot(),
		QueueDepth:   queueDepth,
		InFlight:     inFlight,
		QueueFull:    m.queueFull.Load(),
		Timeouts:     m.timeouts.Load(),
		Panics:       m.panics.Load(),
		BatchDeduped: m.batchDeduped.Load(),
		VSafeCache:   cache,
	}
	if id, ok := m.lastPanicReqID.Load().(string); ok {
		s.LastPanicRequestID = id
	}
	for name, es := range m.endpoints {
		s.Endpoints[name] = EndpointSnapshot{
			Requests:     es.requests.Load(),
			ClientErrors: es.clientErrors.Load(),
			ServerErrors: es.serverErrors.Load(),
		}
	}
	return s
}

// Live serving metrics: lock-free counters and a fixed-bucket latency
// histogram, snapshotted as one JSON document by GET /metrics (expvar-style
// — a flat, scrape-friendly object, no external metrics dependency). Every
// counter is monotonic; gauges (queue depth, in-flight) are read at
// snapshot time from the admission state.
package serve

import (
	"sync/atomic"
	"time"

	"culpeo/internal/core"
)

// latencyBuckets are the histogram's upper bounds in seconds. The spread
// covers a cache hit (~100 µs) through a cold ground-truth simulation
// (seconds); the terminal +Inf bucket is implicit.
var latencyBuckets = [numBuckets]float64{
	100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3,
	50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5, 5, 10,
}

const numBuckets = 16

// histogram is a fixed-bound latency histogram safe for concurrent Observe.
type histogram struct {
	counts  [numBuckets + 1]atomic.Uint64 // last = overflow (+Inf)
	count   atomic.Uint64
	sumNano atomic.Int64
}

func (h *histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < numBuckets && s > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNano.Add(int64(d))
}

// HistogramBucket is one cumulative bucket of the latency histogram: Count
// observations took LE seconds or less (LE 0 marks the +Inf bucket).
type HistogramBucket struct {
	LE    float64 `json:"le_seconds"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is the wire form of the latency histogram.
type HistogramSnapshot struct {
	Buckets []HistogramBucket `json:"buckets"`
	Count   uint64            `json:"count"`
	MeanMs  float64           `json:"mean_ms"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	cum := uint64(0)
	for i, le := range latencyBuckets {
		cum += h.counts[i].Load()
		s.Buckets = append(s.Buckets, HistogramBucket{LE: le, Count: cum})
	}
	cum += h.counts[numBuckets].Load()
	s.Buckets = append(s.Buckets, HistogramBucket{LE: 0, Count: cum})
	s.Count = h.count.Load()
	if s.Count > 0 {
		s.MeanMs = float64(h.sumNano.Load()) / float64(s.Count) / 1e6
	}
	return s
}

// endpointStats counts one endpoint's traffic by outcome.
type endpointStats struct {
	requests     atomic.Uint64
	clientErrors atomic.Uint64 // 4xx
	serverErrors atomic.Uint64 // 5xx
}

// EndpointSnapshot is the wire form of one endpoint's counters.
type EndpointSnapshot struct {
	Requests     uint64 `json:"requests"`
	ClientErrors uint64 `json:"client_errors"`
	ServerErrors uint64 `json:"server_errors"`
}

// metrics aggregates everything /metrics exports.
type metrics struct {
	start     time.Time
	endpoints map[string]*endpointStats
	latency   histogram
	queueFull atomic.Uint64
	timeouts  atomic.Uint64
	panics    atomic.Uint64
	drained   atomic.Bool
}

func newMetrics(endpoints []string) *metrics {
	m := &metrics{start: time.Now(), endpoints: make(map[string]*endpointStats, len(endpoints))}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointStats{}
	}
	return m
}

func (m *metrics) record(endpoint string, status int, d time.Duration) {
	es, ok := m.endpoints[endpoint]
	if !ok {
		return
	}
	es.requests.Add(1)
	switch {
	case status >= 500:
		es.serverErrors.Add(1)
	case status >= 400:
		es.clientErrors.Add(1)
	}
	m.latency.Observe(d)
}

// MetricsSnapshot is the document GET /metrics returns.
type MetricsSnapshot struct {
	UptimeSec  float64                     `json:"uptime_sec"`
	Draining   bool                        `json:"draining"`
	Endpoints  map[string]EndpointSnapshot `json:"endpoints"`
	Latency    HistogramSnapshot           `json:"latency"`
	QueueDepth int64                       `json:"queue_depth"`
	InFlight   int64                       `json:"in_flight"`
	QueueFull  uint64                      `json:"queue_full_total"`
	Timeouts   uint64                      `json:"timeouts_total"`
	Panics     uint64                      `json:"panics_total"`
	VSafeCache core.VSafeCacheStats        `json:"vsafe_cache"`
}

func (m *metrics) snapshot(queueDepth, inFlight int64, cache core.VSafeCacheStats) MetricsSnapshot {
	s := MetricsSnapshot{
		UptimeSec:  time.Since(m.start).Seconds(),
		Draining:   m.drained.Load(),
		Endpoints:  make(map[string]EndpointSnapshot, len(m.endpoints)),
		Latency:    m.latency.snapshot(),
		QueueDepth: queueDepth,
		InFlight:   inFlight,
		QueueFull:  m.queueFull.Load(),
		Timeouts:   m.timeouts.Load(),
		Panics:     m.panics.Load(),
		VSafeCache: cache,
	}
	for name, es := range m.endpoints {
		s.Endpoints[name] = EndpointSnapshot{
			Requests:     es.requests.Load(),
			ClientErrors: es.clientErrors.Load(),
			ServerErrors: es.serverErrors.Load(),
		}
	}
	return s
}

// The /v1/stream endpoint pair: the long-lived SSE downlink that holds a
// device's session open and pushes refined V_safe + margin updates, and
// the /v1/stream/obs uplink that folds observation batches into the
// session through the ordinary POST middleware (admission queue included —
// uplink traffic competes fairly with the request/response endpoints).
//
// The downlink deliberately bypasses admission and the per-request
// timeout: a stream is supposed to outlive both, and parking it in an
// execution slot would let MaxInFlight streams starve every other
// endpoint. Its middleware (streaming) keeps the rest of the stack —
// method check, request IDs, panic isolation, status metrics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"culpeo/internal/api"
	"culpeo/internal/session"
)

// maxStreamBodyBytes bounds a stream-open body: a full replay ring is
// ~30 KB of JSON, so 1 MB is generous without letting an open hold the
// 32 MB batch allowance.
const maxStreamBodyBytes = 1 << 20

// streaming wraps the stream endpoint with the non-admission middleware
// slice: POST check, request ID, panic isolation, and status-only metrics
// (no latency observation — connection lifetimes are not request
// latencies).
func (s *Server) streaming(name string, fn func(sw *statusWriter, r *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		reqID := s.requestID(r)
		sw.Header().Set(RequestIDHeader, reqID)
		defer func() {
			if rec := recover(); rec != nil {
				s.met.recordPanic(reqID)
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, fmt.Errorf("panic (request %s): %v", reqID, rec))
				}
			}
			s.met.recordStatus(name, sw.status)
		}()
		if r.Method != http.MethodPost {
			sw.Header().Set("Allow", http.MethodPost)
			writeError(sw, http.StatusMethodNotAllowed, errors.New("POST only"))
			return
		}
		if !s.Ready() {
			// Same gate as api(): no attaches into a half-rebuilt table.
			sw.Header().Set("Retry-After", "1")
			writeError(sw, http.StatusServiceUnavailable, fmt.Errorf("server %s", s.phaseString()))
			return
		}
		fn(sw, r)
	})
}

// handleStreamOpen attaches (or resumes) a device session and streams
// update events until the session ends, the table detaches this
// connection, or the client goes away.
func (s *Server) handleStreamOpen(sw *statusWriter, r *http.Request) {
	var req api.StreamOpenRequest
	r.Body = http.MaxBytesReader(sw, r.Body, maxStreamBodyBytes)
	if err := decodeBody(r.Body, &req); err != nil {
		writeError(sw, http.StatusBadRequest, err)
		return
	}
	rp, err := resolvePower(req.Power, s.catalog)
	if err != nil {
		writeError(sw, http.StatusBadRequest, err)
		return
	}
	spec, err := json.Marshal(req.Power)
	if err != nil {
		writeError(sw, http.StatusBadRequest, specErrorf("stream: encode power spec: %v", err))
		return
	}
	res, err := s.sessions.AttachSpec(req.Device, rp.model, spec, req.Ring, req.Replay)
	if err != nil {
		switch {
		case errors.Is(err, session.ErrFull):
			sw.Header().Set("Retry-After", "1")
			writeError(sw, http.StatusServiceUnavailable, err)
		case errors.Is(err, session.ErrDraining):
			writeError(sw, http.StatusServiceUnavailable, err)
		default:
			writeError(sw, http.StatusBadRequest, err)
		}
		return
	}

	h := sw.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not batch the downlink
	sw.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(sw)

	send := func(u api.StreamUpdate) bool {
		data, err := marshalUpdate(u)
		if err != nil {
			return false
		}
		if err := api.EncodeSSE(sw, api.StreamEventUpdate, data); err != nil {
			return false
		}
		return rc.Flush() == nil
	}

	// The snapshot is the first frame: the session's complete current state
	// (a resume needs no event replay — this frame carries everything).
	if !send(res.Snapshot) || res.Terminal {
		if res.Sub != nil {
			res.Sub.Detach()
		}
		return
	}

	sub := res.Sub
	ctx := r.Context()
	for {
		select {
		case ev := <-sub.Events:
			if ev.Heartbeat {
				if api.EncodeSSEComment(sw, "hb") != nil || rc.Flush() != nil {
					sub.Detach()
					return
				}
				continue
			}
			if !send(ev.Update) {
				sub.Detach()
				return
			}
		case u := <-sub.Terminal:
			send(u)
			sub.Detach()
			return
		case <-sub.Done:
			// The table detached us. A drain races its terminal against the
			// Done close — prefer delivering it; otherwise synthesize a bare
			// terminal carrying only the reason (superseded / slow-consumer),
			// so the client always sees an explicit end-of-stream frame.
			select {
			case u := <-sub.Terminal:
				send(u)
			default:
				send(api.StreamUpdate{Final: true, Reason: sub.Reason()})
			}
			return
		case <-ctx.Done():
			sub.Detach()
			return
		}
	}
}

// handleStreamObs folds an observation batch (POST, full middleware). The
// refined estimate is pushed on the stream; the response acknowledges.
func (s *Server) handleStreamObs(ctx context.Context, r *http.Request) (any, error) {
	var req api.StreamObsRequest
	if err := decodeBody(r.Body, &req); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := s.sessions.Fold(req.Device, req.Observations, req.Close)
	if err != nil {
		if errors.Is(err, session.ErrNoSession) || errors.Is(err, session.ErrClosed) {
			return nil, err // api() maps these to 404 / 409
		}
		return nil, specErrorf("stream-obs: %v", err)
	}
	return api.StreamObsResponse{
		LastSeq:    res.LastSeq,
		Duplicates: res.Duplicates,
		Window:     res.Window,
		Closed:     res.Closed,
	}, nil
}

// marshalUpdate renders one update frame. Estimates must round-trip
// bit-exactly; encoding/json's float64 formatting (strconv shortest-form)
// guarantees that, so plain Marshal is the whole implementation.
func marshalUpdate(u api.StreamUpdate) ([]byte, error) { return json.Marshal(u) }

package serve

import (
	"runtime"
	"testing"
	"time"
)

// leakCheck guards a test against goroutine leaks: it snapshots
// runtime.NumGoroutine at entry and, at cleanup time, retries until the
// count settles back to (or below) the snapshot. The retry loop absorbs
// legitimate asynchronous teardown — httptest connections unwinding, SSE
// handlers noticing a closed client, the session sweeper stopping — while
// still failing loudly on a real leak, with full stacks for the autopsy.
//
// Call it FIRST in the test body: t.Cleanup runs last-registered-first, so
// registering before newTestServer means the check runs after the server
// (and every stream it holds) has been torn down.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		var after int
		for i := 0; i < 100; i++ {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d at start, %d after 2s settle\n%s", before, after, buf[:n])
	})
}

// waitFor polls cond until it holds or the deadline passes — the streaming
// tests use it for state that changes when a handler notices a disconnect.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// Resolution of the culpeod wire API (internal/api) into the library's
// types. Every field is optional; omitted power-system parameters default
// to the evaluated Capybara configuration (Section VI-A), so
// `{"load":{"shape":"uniform","i":0.025,"t":0.01}}` is a complete request.
// Resolution is strict beyond that: a spec that names an unknown part, an
// invalid voltage window or a malformed load is a client error (HTTP 400),
// never a panic — the decoder fuzz suite enforces this.
//
// The wire shapes themselves live in internal/api (shared with the
// resilient client in internal/client); the aliases below keep serve's
// historical names working.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"culpeo/internal/api"
	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/partsdb"
	"culpeo/internal/powersys"
)

// The wire contract moved to internal/api so the client package can share
// it without importing the serving stack; these aliases keep serve's API
// surface unchanged.
type (
	PowerSpec         = api.PowerSpec
	LoadSpec          = api.LoadSpec
	VSafeRequest      = api.VSafeRequest
	ObservationSpec   = api.ObservationSpec
	VSafeRRequest     = api.VSafeRRequest
	SimulateRequest   = api.SimulateRequest
	BatchRequest      = api.BatchRequest
	EstimateResponse  = api.EstimateResponse
	SimulateResponse  = api.SimulateResponse
	BatchResult       = api.BatchResult
	BatchSimResult    = api.BatchSimResult
	BatchResponse     = api.BatchResponse
	ErrorResponse     = api.ErrorResponse
	HealthResponse    = api.HealthResponse
	HistogramBucket   = api.HistogramBucket
	HistogramSnapshot = api.HistogramSnapshot
)

// maxBodyBytes bounds request bodies. A raw 125 kHz trace runs ~20 bytes a
// sample in JSON, so this admits about ten seconds of capture — far beyond
// any Table III task — while keeping a hostile body from exhausting memory.
const maxBodyBytes = 32 << 20

// errSpec marks client-side specification errors (HTTP 400).
var errSpec = errors.New("bad request")

func specErrorf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errSpec, fmt.Sprintf(format, args...))
}

// decodeBody unmarshals a bounded JSON body into dst, rejecting trailing
// garbage. All decode failures are client errors.
func decodeBody(r io.Reader, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		return specErrorf("decode: %v", err)
	}
	if dec.More() {
		return specErrorf("decode: trailing data after JSON body")
	}
	return nil
}

// resolved is a PowerSpec turned into the library's working types: the
// simulator configuration and the model the estimators consume.
type resolved struct {
	cfg   powersys.Config
	model core.PowerModel
}

// resolvePower validates the spec and produces the simulator configuration
// and estimator model, resolving named parts through the catalogue index.
// The construction mirrors cmd/vsafe exactly — nominal C with aging carried
// on the model — so served estimates match the library bit for bit.
// (Functions rather than methods: the spec types are aliases into
// internal/api, and Go does not allow methods on non-local types.)
func resolvePower(p PowerSpec, catalog *partsdb.Index) (resolved, error) {
	base := powersys.Capybara()
	c := base.Storage.TotalCapacitance()
	esr := base.Storage.Main().ESR
	if p.Part != "" {
		if p.C != 0 || p.ESR != 0 {
			return resolved{}, specErrorf("power: part %q conflicts with explicit c/esr", p.Part)
		}
		if catalog == nil {
			catalog = partsdb.DefaultIndex()
		}
		bank, err := catalog.Bank(p.Part, p.BankC)
		if err != nil {
			return resolved{}, specErrorf("power: %v", err)
		}
		c, esr = bank.C(), bank.ESR()
	} else {
		if p.BankC != 0 {
			return resolved{}, specErrorf("power: bank_c requires part")
		}
		if p.C != 0 {
			c = p.C
		}
		if p.ESR != 0 {
			esr = p.ESR
		}
	}
	vOff, vHigh := base.VOff, base.VHigh
	if p.VOff != 0 {
		vOff = p.VOff
	}
	if p.VHigh != 0 {
		vHigh = p.VHigh
	}
	switch {
	case !isFinite(c) || c <= 0:
		return resolved{}, specErrorf("power: capacitance %g", c)
	case !isFinite(esr) || esr < 0:
		return resolved{}, specErrorf("power: esr %g", esr)
	case !isFinite(vOff) || !isFinite(vHigh) || vOff <= 0 || vHigh <= vOff:
		return resolved{}, specErrorf("power: invalid voltage window [%g, %g]", vOff, vHigh)
	case !isFinite(p.Age) || p.Age < 0 || p.Age > 1:
		return resolved{}, specErrorf("power: age %g outside [0, 1]", p.Age)
	}

	aging := capacitor.Aging{LifeFraction: p.Age}
	aged := aging.Apply(capacitor.Branch{Name: "main", C: c, ESR: esr})
	aged.Voltage = vHigh
	net, err := capacitor.NewNetwork(&aged)
	if err != nil {
		return resolved{}, specErrorf("power: %v", err)
	}
	cfg := base
	cfg.Storage = net
	cfg.VOff, cfg.VHigh = vOff, vHigh

	model := core.PowerModel{
		C:     c, // nominal; aging carried on the model, as cmd/vsafe does
		ESR:   capacitor.Flat(esr),
		VOut:  cfg.Output.VOut,
		VOff:  vOff,
		VHigh: vHigh,
		Eff:   cfg.Output.Efficiency,
		Aging: aging,
	}
	if err := model.Validate(); err != nil {
		return resolved{}, specErrorf("power: %v", err)
	}
	return resolved{cfg: cfg, model: model}, nil
}

// resolvedLoad is a LoadSpec turned into either a Profile (synthetic or
// peripheral) or a raw Trace (uploaded samples).
type resolvedLoad struct {
	profile load.Profile // nil when trace-backed
	trace   load.Trace
	isTrace bool
}

func resolveLoad(l LoadSpec) (resolvedLoad, error) {
	forms := 0
	if l.Shape != "" {
		forms++
	}
	if l.Peripheral != "" {
		forms++
	}
	if len(l.Samples) > 0 {
		forms++
	}
	if forms != 1 {
		return resolvedLoad{}, specErrorf("load: give exactly one of shape, peripheral or samples")
	}
	switch {
	case l.Peripheral != "":
		switch l.Peripheral {
		case "gesture":
			return resolvedLoad{profile: load.Gesture()}, nil
		case "ble":
			return resolvedLoad{profile: load.BLERadio()}, nil
		case "mnist":
			return resolvedLoad{profile: load.ComputeAccel()}, nil
		case "lora":
			return resolvedLoad{profile: load.LoRa()}, nil
		}
		return resolvedLoad{}, specErrorf("load: unknown peripheral %q", l.Peripheral)
	case len(l.Samples) > 0:
		rate := l.Rate
		if rate == 0 {
			rate = load.SampleRateDefault
		}
		if !isFinite(rate) || rate <= 0 {
			return resolvedLoad{}, specErrorf("load: sample rate %g", rate)
		}
		for i, s := range l.Samples {
			if !isFinite(s) || s < 0 {
				return resolvedLoad{}, specErrorf("load: sample %d = %g", i, s)
			}
		}
		tr := load.Trace{ID: "uploaded", Rate: rate, Samples: l.Samples}
		return resolvedLoad{trace: tr, isTrace: true}, nil
	default:
		if !isFinite(l.I) || l.I <= 0 || !isFinite(l.T) || l.T <= 0 {
			return resolvedLoad{}, specErrorf("load: shape needs positive i and t, got i=%g t=%g", l.I, l.T)
		}
		if l.T > 60 {
			return resolvedLoad{}, specErrorf("load: duration %g s beyond the 60 s serving cap", l.T)
		}
		switch l.Shape {
		case "uniform":
			return resolvedLoad{profile: load.NewUniform(l.I, l.T)}, nil
		case "pulse":
			return resolvedLoad{profile: load.NewPulse(l.I, l.T)}, nil
		}
		return resolvedLoad{}, specErrorf("load: unknown shape %q", l.Shape)
	}
}

// asProfile returns the load as a Profile for simulation (a raw trace is
// itself a Profile).
func (r resolvedLoad) asProfile() load.Profile {
	if r.isTrace {
		return r.trace
	}
	return r.profile
}

func resolveObservation(o ObservationSpec) (core.Observation, error) {
	obs := core.Observation{VStart: o.VStart, VMin: o.VMin, VFinal: o.VFinal}
	if !isFinite(o.VStart) || !isFinite(o.VMin) || !isFinite(o.VFinal) {
		return obs, specErrorf("observation: non-finite voltage")
	}
	if err := obs.Validate(); err != nil {
		return obs, specErrorf("observation: %v", err)
	}
	return obs, nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Fingerprints resolves a /v1/vsafe request exactly as the handler would
// and returns the (power-model fingerprint, trace fingerprint) pair that
// keys the server's V_safe cache for it. This is the routing contract of
// internal/shard: a router that hashes on these two values sends every
// request to the shard whose cache already holds (or will hold) its entry.
// Profile-backed loads are fingerprinted through the same
// load.Sample(profile, load.SampleRateDefault) call profiler.PG.Estimate
// makes, so the route key and the cache key can never drift apart. The
// error, when non-nil, wraps errSpec — the request would have been a 400
// on any shard, so callers may route it anywhere.
func Fingerprints(req VSafeRequest, catalog *partsdb.Index) (model, trace uint64, err error) {
	rp, err := resolvePower(req.Power, catalog)
	if err != nil {
		return 0, 0, err
	}
	rl, err := resolveLoad(req.Load)
	if err != nil {
		return 0, 0, err
	}
	if rl.isTrace {
		return rp.model.Fingerprint(), core.TraceFingerprint(rl.trace), nil
	}
	return rp.model.Fingerprint(), core.TraceFingerprint(load.Sample(rl.profile, load.SampleRateDefault)), nil
}

// PowerFingerprint resolves just the power half of a spec — the routing
// key component for /v1/vsafe-r, whose load side is three observed
// voltages rather than a trace.
func PowerFingerprint(p PowerSpec, catalog *partsdb.Index) (uint64, error) {
	rp, err := resolvePower(p, catalog)
	if err != nil {
		return 0, err
	}
	return rp.model.Fingerprint(), nil
}

// SimulateFingerprints is Fingerprints for /v1/simulate elements.
// Simulations bypass the V_safe cache, so any stable key works; using the
// same (model, trace) pair keeps a task's estimates and its launch
// verdicts on one shard, where an operator would look for them.
func SimulateFingerprints(req SimulateRequest, catalog *partsdb.Index) (model, trace uint64, err error) {
	return Fingerprints(VSafeRequest{Power: req.Power, Load: req.Load}, catalog)
}

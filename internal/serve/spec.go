// Request and response shapes of the culpeod wire API, plus their
// resolution into the library's types. Every field is optional; omitted
// power-system parameters default to the evaluated Capybara configuration
// (Section VI-A), so `{"load":{"shape":"uniform","i":0.025,"t":0.01}}` is a
// complete request. Resolution is strict beyond that: a spec that names an
// unknown part, an invalid voltage window or a malformed load is a client
// error (HTTP 400), never a panic — the decoder fuzz suite enforces this.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/partsdb"
	"culpeo/internal/powersys"
)

// maxBodyBytes bounds request bodies. A raw 125 kHz trace runs ~20 bytes a
// sample in JSON, so this admits about ten seconds of capture — far beyond
// any Table III task — while keeping a hostile body from exhausting memory.
const maxBodyBytes = 32 << 20

// PowerSpec describes the power system a request targets. Either name a
// catalogue part (resolved through internal/partsdb into an assembled bank)
// or give C/ESR explicitly; both default to the Capybara buffer.
type PowerSpec struct {
	// Part is a partsdb catalogue number (e.g. "supercapacitor-0000"). When
	// set, C and ESR come from a bank of these parts and must not also be
	// given explicitly.
	Part string `json:"part,omitempty"`
	// BankC is the target bank capacitance used with Part (F); 0 selects
	// the figures' 45 mF.
	BankC float64 `json:"bank_c,omitempty"`
	// C is the explicit buffer capacitance (F); 0 selects Capybara's 45 mF.
	C float64 `json:"c,omitempty"`
	// ESR is the explicit buffer ESR (Ω); 0 selects Capybara's 5 Ω net.
	ESR float64 `json:"esr,omitempty"`
	// VOff and VHigh set the monitor window (V); 0 selects 1.6 / 2.56.
	VOff  float64 `json:"v_off,omitempty"`
	VHigh float64 `json:"v_high,omitempty"`
	// Age is the capacitor life fraction consumed, in [0, 1]: capacitance
	// fades and ESR doubles toward end of life.
	Age float64 `json:"age,omitempty"`
}

// LoadSpec describes the task whose V_safe is wanted: a synthetic Table III
// shape, a named real-peripheral profile, or a raw uploaded current trace.
// Exactly one of Shape, Peripheral or Samples must be present.
type LoadSpec struct {
	// Shape is "uniform" or "pulse" (pulse adds the paper's 1.5 mA / 100 ms
	// compute tail), parameterized by I and T.
	Shape string  `json:"shape,omitempty"`
	I     float64 `json:"i,omitempty"` // load current (A)
	T     float64 `json:"t,omitempty"` // pulse duration (s)
	// Peripheral selects a measured profile: gesture | ble | mnist | lora.
	Peripheral string `json:"peripheral,omitempty"`
	// Samples is a raw captured current trace (A), analyzed at Rate.
	Samples []float64 `json:"samples,omitempty"`
	// Rate is the sample rate of Samples in Hz; 0 selects 125 kHz.
	Rate float64 `json:"rate,omitempty"`
}

// VSafeRequest is the body of POST /v1/vsafe and each element of a batch.
type VSafeRequest struct {
	Power PowerSpec `json:"power"`
	Load  LoadSpec  `json:"load"`
}

// ObservationSpec carries the three voltages Culpeo-R computes from.
type ObservationSpec struct {
	VStart float64 `json:"v_start"`
	VMin   float64 `json:"v_min"`
	VFinal float64 `json:"v_final"`
}

// VSafeRRequest is the body of POST /v1/vsafe-r: a runtime estimate from
// one observed execution (Equations 1a–1c and 3).
type VSafeRRequest struct {
	Power       PowerSpec       `json:"power"`
	Observation ObservationSpec `json:"observation"`
}

// SimulateRequest is the body of POST /v1/simulate: launch the task at
// VStart on a fresh system and report the verdict.
type SimulateRequest struct {
	Power PowerSpec `json:"power"`
	Load  LoadSpec  `json:"load"`
	// VStart is the starting terminal voltage; 0 launches from V_high.
	VStart float64 `json:"v_start,omitempty"`
	// Harvest is constant harvested power during the run (W).
	Harvest float64 `json:"harvest,omitempty"`
	// Fast opts into the analytic segment-advance stepper.
	Fast bool `json:"fast,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Requests []VSafeRequest `json:"requests"`
}

// EstimateResponse mirrors core.Estimate on the wire. encoding/json emits
// float64 at full round-trip precision, so a served estimate is
// bit-identical to the library's (the parity suite asserts this).
type EstimateResponse struct {
	VSafe  float64 `json:"v_safe"`
	VDelta float64 `json:"v_delta"`
	VE     float64 `json:"v_e"`
}

// SimulateResponse reports one launch verdict.
type SimulateResponse struct {
	Completed   bool    `json:"completed"`
	PowerFailed bool    `json:"power_failed"`
	VStart      float64 `json:"v_start"`
	VMin        float64 `json:"v_min"`
	VFinal      float64 `json:"v_final"`
	Duration    float64 `json:"duration"`
	EnergyUsed  float64 `json:"energy_used"`
	Error       string  `json:"error,omitempty"`
}

// BatchResult is one element of a batch response: an estimate or a
// per-element error (one bad element never fails its siblings).
type BatchResult struct {
	Estimate *EstimateResponse `json:"estimate,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// BatchResponse is the body returned by POST /v1/batch.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// errSpec marks client-side specification errors (HTTP 400).
var errSpec = errors.New("bad request")

func specErrorf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errSpec, fmt.Sprintf(format, args...))
}

// decodeBody unmarshals a bounded JSON body into dst, rejecting trailing
// garbage. All decode failures are client errors.
func decodeBody(r io.Reader, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		return specErrorf("decode: %v", err)
	}
	if dec.More() {
		return specErrorf("decode: trailing data after JSON body")
	}
	return nil
}

// resolved is a PowerSpec turned into the library's working types: the
// simulator configuration and the model the estimators consume.
type resolved struct {
	cfg   powersys.Config
	model core.PowerModel
}

// Resolve validates the spec and produces the simulator configuration and
// estimator model, resolving named parts through the catalogue index.
// The construction mirrors cmd/vsafe exactly — nominal C with aging carried
// on the model — so served estimates match the library bit for bit.
func (p PowerSpec) resolve(catalog *partsdb.Index) (resolved, error) {
	base := powersys.Capybara()
	c := base.Storage.TotalCapacitance()
	esr := base.Storage.Main().ESR
	if p.Part != "" {
		if p.C != 0 || p.ESR != 0 {
			return resolved{}, specErrorf("power: part %q conflicts with explicit c/esr", p.Part)
		}
		if catalog == nil {
			catalog = partsdb.DefaultIndex()
		}
		bank, err := catalog.Bank(p.Part, p.BankC)
		if err != nil {
			return resolved{}, specErrorf("power: %v", err)
		}
		c, esr = bank.C(), bank.ESR()
	} else {
		if p.BankC != 0 {
			return resolved{}, specErrorf("power: bank_c requires part")
		}
		if p.C != 0 {
			c = p.C
		}
		if p.ESR != 0 {
			esr = p.ESR
		}
	}
	vOff, vHigh := base.VOff, base.VHigh
	if p.VOff != 0 {
		vOff = p.VOff
	}
	if p.VHigh != 0 {
		vHigh = p.VHigh
	}
	switch {
	case !isFinite(c) || c <= 0:
		return resolved{}, specErrorf("power: capacitance %g", c)
	case !isFinite(esr) || esr < 0:
		return resolved{}, specErrorf("power: esr %g", esr)
	case !isFinite(vOff) || !isFinite(vHigh) || vOff <= 0 || vHigh <= vOff:
		return resolved{}, specErrorf("power: invalid voltage window [%g, %g]", vOff, vHigh)
	case !isFinite(p.Age) || p.Age < 0 || p.Age > 1:
		return resolved{}, specErrorf("power: age %g outside [0, 1]", p.Age)
	}

	aging := capacitor.Aging{LifeFraction: p.Age}
	aged := aging.Apply(capacitor.Branch{Name: "main", C: c, ESR: esr})
	aged.Voltage = vHigh
	net, err := capacitor.NewNetwork(&aged)
	if err != nil {
		return resolved{}, specErrorf("power: %v", err)
	}
	cfg := base
	cfg.Storage = net
	cfg.VOff, cfg.VHigh = vOff, vHigh

	model := core.PowerModel{
		C:     c, // nominal; aging carried on the model, as cmd/vsafe does
		ESR:   capacitor.Flat(esr),
		VOut:  cfg.Output.VOut,
		VOff:  vOff,
		VHigh: vHigh,
		Eff:   cfg.Output.Efficiency,
		Aging: aging,
	}
	if err := model.Validate(); err != nil {
		return resolved{}, specErrorf("power: %v", err)
	}
	return resolved{cfg: cfg, model: model}, nil
}

// resolvedLoad is a LoadSpec turned into either a Profile (synthetic or
// peripheral) or a raw Trace (uploaded samples).
type resolvedLoad struct {
	profile load.Profile // nil when trace-backed
	trace   load.Trace
	isTrace bool
}

func (l LoadSpec) resolve() (resolvedLoad, error) {
	forms := 0
	if l.Shape != "" {
		forms++
	}
	if l.Peripheral != "" {
		forms++
	}
	if len(l.Samples) > 0 {
		forms++
	}
	if forms != 1 {
		return resolvedLoad{}, specErrorf("load: give exactly one of shape, peripheral or samples")
	}
	switch {
	case l.Peripheral != "":
		switch l.Peripheral {
		case "gesture":
			return resolvedLoad{profile: load.Gesture()}, nil
		case "ble":
			return resolvedLoad{profile: load.BLERadio()}, nil
		case "mnist":
			return resolvedLoad{profile: load.ComputeAccel()}, nil
		case "lora":
			return resolvedLoad{profile: load.LoRa()}, nil
		}
		return resolvedLoad{}, specErrorf("load: unknown peripheral %q", l.Peripheral)
	case len(l.Samples) > 0:
		rate := l.Rate
		if rate == 0 {
			rate = load.SampleRateDefault
		}
		if !isFinite(rate) || rate <= 0 {
			return resolvedLoad{}, specErrorf("load: sample rate %g", rate)
		}
		for i, s := range l.Samples {
			if !isFinite(s) || s < 0 {
				return resolvedLoad{}, specErrorf("load: sample %d = %g", i, s)
			}
		}
		tr := load.Trace{ID: "uploaded", Rate: rate, Samples: l.Samples}
		return resolvedLoad{trace: tr, isTrace: true}, nil
	default:
		if !isFinite(l.I) || l.I <= 0 || !isFinite(l.T) || l.T <= 0 {
			return resolvedLoad{}, specErrorf("load: shape needs positive i and t, got i=%g t=%g", l.I, l.T)
		}
		if l.T > 60 {
			return resolvedLoad{}, specErrorf("load: duration %g s beyond the 60 s serving cap", l.T)
		}
		switch l.Shape {
		case "uniform":
			return resolvedLoad{profile: load.NewUniform(l.I, l.T)}, nil
		case "pulse":
			return resolvedLoad{profile: load.NewPulse(l.I, l.T)}, nil
		}
		return resolvedLoad{}, specErrorf("load: unknown shape %q", l.Shape)
	}
}

// asProfile returns the load as a Profile for simulation (a raw trace is
// itself a Profile).
func (r resolvedLoad) asProfile() load.Profile {
	if r.isTrace {
		return r.trace
	}
	return r.profile
}

func (o ObservationSpec) resolve() (core.Observation, error) {
	obs := core.Observation{VStart: o.VStart, VMin: o.VMin, VFinal: o.VFinal}
	if !isFinite(o.VStart) || !isFinite(o.VMin) || !isFinite(o.VFinal) {
		return obs, specErrorf("observation: non-finite voltage")
	}
	if err := obs.Validate(); err != nil {
		return obs, specErrorf("observation: %v", err)
	}
	return obs, nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

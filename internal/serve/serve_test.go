package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeResp[T any](t *testing.T, resp *http.Response, wantStatus int) T {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("status %d, want %d (error: %s)", resp.StatusCode, wantStatus, e.Error)
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

// defaultModel reconstructs the model the zero-value PowerSpec resolves to,
// the way cmd/vsafe builds it.
func defaultModel(t *testing.T) core.PowerModel {
	t.Helper()
	cfg := powersys.Capybara()
	m := core.PowerModel{
		C:     cfg.Storage.TotalCapacitance(),
		ESR:   capacitor.Flat(cfg.Storage.Main().ESR),
		VOut:  cfg.Output.VOut,
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Eff:   cfg.Output.Efficiency,
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	return m
}

// specForProfile maps a library profile back to its wire spec.
func specForProfile(t *testing.T, p load.Profile) LoadSpec {
	t.Helper()
	switch l := p.(type) {
	case load.Uniform:
		return LoadSpec{Shape: "uniform", I: l.ILoad, T: l.TPulse}
	case load.Pulse:
		return LoadSpec{Shape: "pulse", I: l.ILoad, T: l.TPulse}
	default:
		t.Fatalf("no wire spec for profile %T", p)
		return LoadSpec{}
	}
}

// TestVSafeParity is the acceptance gate: for every golden-corpus load
// (the full Table III synthetic grid plus the measured peripherals), the
// served estimate must equal the library's profiler.PG result bit for bit —
// same resolution path, same Algorithm 1, JSON float64 round-trip exact.
func TestVSafeParity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	model := defaultModel(t)

	type pcase struct {
		name string
		spec LoadSpec
		task load.Profile
	}
	var cases []pcase
	for _, p := range load.TableIIIUniform() {
		cases = append(cases, pcase{p.Name(), specForProfile(t, p), p})
	}
	for _, p := range load.TableIIIPulse() {
		cases = append(cases, pcase{p.Name(), specForProfile(t, p), p})
	}
	for name, p := range map[string]load.Profile{
		"gesture": load.Gesture(), "ble": load.BLERadio(),
		"mnist": load.ComputeAccel(), "lora": load.LoRa(),
	} {
		cases = append(cases, pcase{"peripheral-" + name, LoadSpec{Peripheral: name}, p})
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want, err := profiler.PG{Model: model}.Estimate(tc.task)
			if err != nil {
				t.Fatalf("library estimate: %v", err)
			}
			got := decodeResp[EstimateResponse](t,
				postJSON(t, ts.URL+"/v1/vsafe", VSafeRequest{Load: tc.spec}), http.StatusOK)
			if math.Float64bits(got.VSafe) != math.Float64bits(want.VSafe) ||
				math.Float64bits(got.VDelta) != math.Float64bits(want.VDelta) ||
				math.Float64bits(got.VE) != math.Float64bits(want.VE) {
				t.Errorf("served estimate diverges from library:\n got  %+v\n want %+v", got, want)
			}
		})
	}
}

// TestVSafeParityNonDefaultPower extends parity to non-default power specs:
// explicit C/ESR, shifted window, aged capacitors, and a catalogue part.
func TestVSafeParityNonDefaultPower(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	task := load.NewPulse(50e-3, 10e-3)
	spec := LoadSpec{Shape: "pulse", I: 50e-3, T: 10e-3}

	cases := []struct {
		name  string
		power PowerSpec
	}{
		{"explicit-c-esr", PowerSpec{C: 33e-3, ESR: 3}},
		{"shifted-window", PowerSpec{VOff: 1.8, VHigh: 2.4}},
		{"aged", PowerSpec{Age: 0.5}},
		{"part", PowerSpec{Part: "supercapacitor-0000"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rp, err := resolvePower(tc.power, s.catalog)
			if err != nil {
				t.Fatalf("resolve: %v", err)
			}
			want, err := profiler.PG{Model: rp.model}.Estimate(task)
			if err != nil {
				t.Fatalf("library estimate: %v", err)
			}
			got := decodeResp[EstimateResponse](t,
				postJSON(t, ts.URL+"/v1/vsafe", VSafeRequest{Power: tc.power, Load: spec}), http.StatusOK)
			if math.Float64bits(got.VSafe) != math.Float64bits(want.VSafe) {
				t.Errorf("V_safe %v != library %v", got.VSafe, want.VSafe)
			}
		})
	}
}

// TestVSafeTraceParity uploads raw samples and checks them against the
// library's trace path.
func TestVSafeTraceParity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	model := defaultModel(t)
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = 10e-3 + 5e-3*math.Sin(float64(i)/50)
	}
	tr := load.Trace{ID: "uploaded", Rate: load.SampleRateDefault, Samples: samples}
	want, err := profiler.PG{Model: model}.EstimateTrace(tr)
	if err != nil {
		t.Fatalf("library estimate: %v", err)
	}
	got := decodeResp[EstimateResponse](t,
		postJSON(t, ts.URL+"/v1/vsafe", VSafeRequest{Load: LoadSpec{Samples: samples}}), http.StatusOK)
	if math.Float64bits(got.VSafe) != math.Float64bits(want.VSafe) {
		t.Errorf("V_safe %v != library %v", got.VSafe, want.VSafe)
	}
}

func TestVSafeR(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	model := defaultModel(t)
	obs := core.Observation{VStart: 2.4, VMin: 2.0, VFinal: 2.2}
	want, err := core.VSafeR(model, obs)
	if err != nil {
		t.Fatalf("library VSafeR: %v", err)
	}
	got := decodeResp[EstimateResponse](t, postJSON(t, ts.URL+"/v1/vsafe-r", VSafeRRequest{
		Observation: ObservationSpec{VStart: 2.4, VMin: 2.0, VFinal: 2.2},
	}), http.StatusOK)
	if math.Float64bits(got.VSafe) != math.Float64bits(want.VSafe) ||
		math.Float64bits(got.VDelta) != math.Float64bits(want.VDelta) {
		t.Errorf("served %+v != library %+v", got, want)
	}

	// Physically impossible ordering is a client error.
	resp := postJSON(t, ts.URL+"/v1/vsafe-r", VSafeRRequest{
		Observation: ObservationSpec{VStart: 2.0, VMin: 2.4, VFinal: 2.2},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid observation: status %d, want 400", resp.StatusCode)
	}
}

func TestSimulateVerdicts(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// A modest pulse from V_high completes.
	ok := decodeResp[SimulateResponse](t, postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Load: LoadSpec{Shape: "pulse", I: 25e-3, T: 10e-3},
	}), http.StatusOK)
	if !ok.Completed || ok.PowerFailed {
		t.Errorf("modest pulse should complete: %+v", ok)
	}

	// An absurd current browns out.
	bad := decodeResp[SimulateResponse](t, postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Load: LoadSpec{Shape: "uniform", I: 5, T: 1},
	}), http.StatusOK)
	if bad.Completed || !bad.PowerFailed {
		t.Errorf("5 A load should brown out: %+v", bad)
	}

	// The fast path reaches the same verdicts.
	fast := decodeResp[SimulateResponse](t, postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Load: LoadSpec{Shape: "pulse", I: 25e-3, T: 10e-3},
		Fast: true,
	}), http.StatusOK)
	if !fast.Completed || fast.PowerFailed {
		t.Errorf("fast path should complete: %+v", fast)
	}

	// v_start below the window is a client error.
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Load:   LoadSpec{Shape: "pulse", I: 25e-3, T: 10e-3},
		VStart: 0.5,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("low v_start: status %d, want 400", resp.StatusCode)
	}
}

// TestBatch checks order preservation, per-element errors and in-batch
// fingerprint dedup across identical elements.
func TestBatch(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	el := VSafeRequest{Load: LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}}
	bad := VSafeRequest{Load: LoadSpec{Shape: "nope", I: 1e-3, T: 1e-3}}
	req := BatchRequest{Requests: []VSafeRequest{el, bad, el, el}}

	got := decodeResp[BatchResponse](t, postJSON(t, ts.URL+"/v1/batch", req), http.StatusOK)
	if len(got.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(got.Results))
	}
	if got.Results[1].Error == "" || got.Results[1].Estimate != nil {
		t.Errorf("element 1 should fail in place: %+v", got.Results[1])
	}
	for _, i := range []int{0, 2, 3} {
		if got.Results[i].Estimate == nil {
			t.Fatalf("element %d missing estimate: %+v", i, got.Results[i])
		}
		if math.Float64bits(got.Results[i].Estimate.VSafe) != math.Float64bits(got.Results[0].Estimate.VSafe) {
			t.Errorf("identical elements diverged: %v vs %v", got.Results[i].Estimate, got.Results[0].Estimate)
		}
	}
	// The three identical elements dedupe to one computation before the
	// cache is even consulted: one miss, no hits, two elements fanned out.
	if st := s.Cache().Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Errorf("identical batch elements should dedupe to one compute: %+v", st)
	}
	if n := s.met.batchDeduped.Load(); n != 2 {
		t.Errorf("batch_deduped_total = %d, want 2", n)
	}
	// Fanned-out results are value copies, not shared pointers.
	if got.Results[0].Estimate == got.Results[2].Estimate {
		t.Error("deduped results alias the same Estimate pointer")
	}

	for _, tc := range []struct {
		name string
		body BatchRequest
	}{
		{"empty", BatchRequest{}},
	} {
		resp := postJSON(t, ts.URL+"/v1/batch", tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s batch: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestBackpressure saturates MaxInFlight=1 and fills the QueueDepth=2
// admission queue with held requests, then asserts the K+1st arrival is
// refused immediately with 503 + Retry-After and a queue-full count.
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, QueueDepth: 2})
	hold := make(chan struct{})
	s.holdForTest = hold

	body := VSafeRequest{Load: LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}}
	var wg sync.WaitGroup
	statuses := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/vsafe", body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}()
	}

	// Wait until one request holds the slot and two sit in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() != 2 || len(s.slots) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: queued=%d inflight=%d", s.queued.Load(), len(s.slots))
		}
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/v1/vsafe", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity request: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	if got := s.Metrics().QueueFull; got != 1 {
		t.Errorf("queue_full_total = %d, want 1", got)
	}

	close(hold)
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Errorf("held request %d finished with %d, want 200", i, st)
		}
	}
	if qd := s.Metrics().QueueDepth; qd != 0 {
		t.Errorf("queue depth after drain = %d, want 0", qd)
	}
}

// TestTimeout threads the per-request deadline into powersys.Run: a
// seconds-long simulation under a millisecond budget must abort with 504.
func TestTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Timeout: 2 * time.Millisecond})
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Load: LoadSpec{Shape: "uniform", I: 1e-3, T: 30},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if got := s.Metrics().Timeouts; got != 1 {
		t.Errorf("timeouts_total = %d, want 1", got)
	}
}

// TestVSafeRTimeout pins the deadline threading through core.VSafeRCtx: an
// expired per-request deadline answers 504 from /v1/vsafe-r even though the
// runtime estimate itself is microseconds of arithmetic — the deadline is
// checked where the work happens, not just at admission.
func TestVSafeRTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Timeout: time.Nanosecond})
	resp := postJSON(t, ts.URL+"/v1/vsafe-r", VSafeRRequest{
		Observation: ObservationSpec{VStart: 2.4, VMin: 2.0, VFinal: 2.2},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if got := s.Metrics().Timeouts; got != 1 {
		t.Errorf("timeouts_total = %d, want 1", got)
	}
}

// TestPanicIsolation drives a panicking handler through the middleware: the
// client sees a 500, the panic counter moves, the process survives.
func TestPanicIsolation(t *testing.T) {
	s := New(Config{})
	h := s.api("vsafe", func(ctx context.Context, r *http.Request) (any, error) {
		panic("handler bug")
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Post(ts.URL, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", resp.StatusCode)
	}
	if got := s.Metrics().Panics; got != 1 {
		t.Errorf("panics_total = %d, want 1", got)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"not-json", "/v1/vsafe", "hello"},
		{"trailing-data", "/v1/vsafe", `{"load":{"shape":"uniform","i":0.025,"t":0.01}} extra`},
		{"wrong-types", "/v1/vsafe", `{"load":{"shape":42}}`},
		{"no-load-form", "/v1/vsafe", `{}`},
		{"two-load-forms", "/v1/vsafe", `{"load":{"shape":"uniform","i":0.025,"t":0.01,"peripheral":"ble"}}`},
		{"unknown-peripheral", "/v1/vsafe", `{"load":{"peripheral":"toaster"}}`},
		{"negative-current", "/v1/vsafe", `{"load":{"shape":"uniform","i":-1,"t":0.01}}`},
		{"over-duration-cap", "/v1/vsafe", `{"load":{"shape":"uniform","i":0.025,"t":3600}}`},
		{"unknown-part", "/v1/vsafe", `{"power":{"part":"flux-capacitor"},"load":{"shape":"uniform","i":0.025,"t":0.01}}`},
		{"part-conflict", "/v1/vsafe", `{"power":{"part":"supercapacitor-0000","c":0.01},"load":{"shape":"uniform","i":0.025,"t":0.01}}`},
		{"bankc-without-part", "/v1/vsafe", `{"power":{"bank_c":0.01},"load":{"shape":"uniform","i":0.025,"t":0.01}}`},
		{"inverted-window", "/v1/vsafe", `{"power":{"v_off":2.5,"v_high":1.6},"load":{"shape":"uniform","i":0.025,"t":0.01}}`},
		{"bad-age", "/v1/vsafe", `{"power":{"age":2},"load":{"shape":"uniform","i":0.025,"t":0.01}}`},
		{"negative-sample", "/v1/vsafe", `{"load":{"samples":[0.01,-0.5]}}`},
		{"bad-rate", "/v1/vsafe", `{"load":{"samples":[0.01],"rate":-5}}`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			e := decodeResp[ErrorResponse](t, resp, http.StatusBadRequest)
			if e.Error == "" {
				t.Error("400 with empty error body")
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/vsafe")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on work endpoint: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	h := decodeResp[HealthResponse](t, mustGet(t, ts.URL+"/healthz"), http.StatusOK)
	if !h.OK || h.Draining {
		t.Errorf("healthy server reports %+v", h)
	}
	s.SetDraining(true)
	hd := decodeResp[HealthResponse](t, mustGet(t, ts.URL+"/healthz"), http.StatusServiceUnavailable)
	if hd.OK || !hd.Draining {
		t.Errorf("draining server reports %+v", hd)
	}
	if !s.Metrics().Draining {
		t.Error("metrics should report draining")
	}
	s.SetDraining(false)
	resp := mustGet(t, ts.URL+"/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("undrained healthz: %d", resp.StatusCode)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

// TestMetricsDocument drives traffic of each outcome class and checks the
// /metrics document accounts for all of it.
func TestMetricsDocument(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ok := postJSON(t, ts.URL+"/v1/vsafe", VSafeRequest{Load: LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}})
	ok.Body.Close()
	again := postJSON(t, ts.URL+"/v1/vsafe", VSafeRequest{Load: LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}})
	again.Body.Close()
	bad, err := http.Post(ts.URL+"/v1/vsafe", "application/json", strings.NewReader("junk"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	bad.Body.Close()

	m := decodeResp[MetricsSnapshot](t, mustGet(t, ts.URL+"/metrics"), http.StatusOK)
	ep := m.Endpoints["vsafe"]
	if ep.Requests != 3 || ep.ClientErrors != 1 || ep.ServerErrors != 0 {
		t.Errorf("vsafe endpoint counters %+v, want 3 requests / 1 client error", ep)
	}
	if m.Latency.Count < 3 {
		t.Errorf("latency count %d, want >= 3", m.Latency.Count)
	}
	if n := len(m.Latency.Buckets); n != numBuckets+1 {
		t.Errorf("bucket count %d, want %d", n, numBuckets+1)
	}
	last := m.Latency.Buckets[len(m.Latency.Buckets)-1]
	if last.LE != 0 || last.Count != m.Latency.Count {
		t.Errorf("terminal bucket %+v should be cumulative total %d", last, m.Latency.Count)
	}
	if m.VSafeCache.Hits < 1 || m.VSafeCache.Misses < 1 {
		t.Errorf("cache stats %+v, want at least one hit and one miss", m.VSafeCache)
	}
	if m.InFlight != 0 || m.QueueDepth != 0 {
		t.Errorf("idle gauges in_flight=%d queue_depth=%d, want 0/0", m.InFlight, m.QueueDepth)
	}
	if m.UptimeSec <= 0 {
		t.Errorf("uptime %v, want > 0", m.UptimeSec)
	}
}

// TestHistogram pins the bucket math directly.
func TestHistogram(t *testing.T) {
	var h histogram
	h.Observe(50 * time.Microsecond)  // bucket 0 (<= 100 µs)
	h.Observe(200 * time.Microsecond) // bucket 1 (<= 250 µs)
	h.Observe(time.Minute)            // overflow
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count %d, want 3", s.Count)
	}
	if s.Buckets[0].Count != 1 {
		t.Errorf("bucket 0 cumulative %d, want 1", s.Buckets[0].Count)
	}
	if s.Buckets[1].Count != 2 {
		t.Errorf("bucket 1 cumulative %d, want 2", s.Buckets[1].Count)
	}
	if got := s.Buckets[len(s.Buckets)-1].Count; got != 3 {
		t.Errorf("+Inf cumulative %d, want 3", got)
	}
	if s.MeanMs <= 0 {
		t.Errorf("mean %v, want > 0", s.MeanMs)
	}
}

// TestBatchSizeCap rejects oversized batches up front.
func TestBatchSizeCap(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reqs := make([]VSafeRequest, maxBatch+1)
	for i := range reqs {
		reqs[i] = VSafeRequest{Load: LoadSpec{Shape: "uniform", I: 25e-3, T: 10e-3}}
	}
	resp := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Requests: reqs})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}

// TestSharedCacheAcrossEndpoints checks the single-server cache coalesces
// work between /v1/vsafe and /v1/batch.
func TestSharedCacheAcrossEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	spec := LoadSpec{Shape: "pulse", I: 30e-3, T: 5e-3}
	resp := postJSON(t, ts.URL+"/v1/vsafe", VSafeRequest{Load: spec})
	resp.Body.Close()
	miss := s.Cache().Stats()
	resp = postJSON(t, ts.URL+"/v1/batch", BatchRequest{Requests: []VSafeRequest{{Load: spec}}})
	resp.Body.Close()
	after := s.Cache().Stats()
	if after.Hits != miss.Hits+1 {
		t.Errorf("batch should hit the single-request cache entry: before %+v after %+v", miss, after)
	}
}

func ExampleServer() {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/vsafe", "application/json",
		strings.NewReader(`{"load":{"shape":"uniform","i":0.025,"t":0.01}}`))
	if err != nil {
		fmt.Println("post:", err)
		return
	}
	defer resp.Body.Close()
	fmt.Println(resp.Status)
	// Output: 200 OK
}

package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"culpeo/internal/api"
)

func TestRequestIDEchoed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/vsafe",
		strings.NewReader(`{"load":{"shape":"uniform","i":0.025,"t":0.01}}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.RequestIDHeader, "c7-a2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(api.RequestIDHeader); got != "c7-a2" {
		t.Fatalf("echoed request ID = %q, want c7-a2", got)
	}
}

func TestRequestIDMintedWhenAbsent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for want := 1; want <= 2; want++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		resp.Body.Close()
		got := resp.Header.Get(api.RequestIDHeader)
		if !strings.HasPrefix(got, "culpeod-") {
			t.Fatalf("minted ID = %q, want culpeod-<seq>", got)
		}
	}
}

func TestRequestIDSanitized(t *testing.T) {
	cases := []string{
		"evil\r\nSet-Cookie: x=1", // header injection
		"<script>alert(1)</script>",
		strings.Repeat("a", 65), // too long
		"id with spaces",
	}
	_, ts := newTestServer(t, Config{})
	for _, hostile := range cases {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		// Set the raw header map directly: http.Header.Set would reject
		// some of these values before they reach the server.
		req.Header["X-Request-Id"] = []string{hostile}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			// The transport itself refuses to send an invalid header
			// value — also an acceptable outcome.
			continue
		}
		resp.Body.Close()
		got := resp.Header.Get(api.RequestIDHeader)
		if !strings.HasPrefix(got, "culpeod-") {
			t.Fatalf("hostile ID %q reflected as %q, want a minted replacement", hostile, got)
		}
	}
}

// TestPanicRequestIDInMetrics ties the request-ID satellite to the panic
// path: the metrics document names the request that panicked.
func TestPanicRequestIDInMetrics(t *testing.T) {
	s := New(Config{})
	h := s.api("vsafe", func(ctx context.Context, r *http.Request) (any, error) {
		panic("handler bug")
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL, strings.NewReader("{}"))
	req.Header.Set(api.RequestIDHeader, "c3-a1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	m := s.Metrics()
	if m.Panics != 1 || m.LastPanicRequestID != "c3-a1" {
		t.Fatalf("panics=%d last_panic_request_id=%q, want 1/c3-a1", m.Panics, m.LastPanicRequestID)
	}
}

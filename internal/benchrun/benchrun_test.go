package benchrun

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample returns a well-formed synthetic report. Collect itself is exercised
// by `culpeo bench` (and takes ~10 s), so the unit tests work on synthetic
// data.
func sample() *Report {
	return &Report{
		Schema:    Schema,
		GoVersion: "go1.22",
		GOOS:      "linux",
		GOARCH:    "amd64",
		NumCPU:    8,
		Benchmarks: []Benchmark{
			{Name: "step/single-branch", NsPerOp: 120.5, AllocsPerOp: 0, BytesPerOp: 0, Iterations: 9_000_000},
			{Name: "step/scalar-64", NsPerOp: 5.0e8, AllocsPerOp: 64, BytesPerOp: 16384, Iterations: 3},
			{Name: "step/batch-64", NsPerOp: 0.5e8, AllocsPerOp: 0, BytesPerOp: 0, Iterations: 25},
			{Name: "sweep/exact-uncached", NsPerOp: 2.1e8, AllocsPerOp: 40, BytesPerOp: 8192, Iterations: 6},
			{Name: "sweep/fast-warm-cache", NsPerOp: 0.6e8, AllocsPerOp: 38, BytesPerOp: 8000, Iterations: 20},
		},
		VSafeCache:      CacheStats{Hits: 96, Misses: 4, HitRate: 0.96},
		FastPathSpeedup: 3.5,
		BatchSpeedup:    10.0,
		Serving: &ServingStats{
			ThroughputRPS: 14000, P50Ms: 0.2, P99Ms: 1.1, MeanMs: 0.3,
			Requests: 42000, Concurrency: 4, DurationSec: 3, CacheHitRate: 0.99,
		},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
	r := sample()
	r.Serving = nil // a bench-only artifact with no recorded loadtest is valid
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]func(*Report){
		"wrong schema":           func(r *Report) { r.Schema = 99 },
		"no go version":          func(r *Report) { r.GoVersion = "" },
		"no cpus":                func(r *Report) { r.NumCPU = 0 },
		"no benchmarks":          func(r *Report) { r.Benchmarks = nil },
		"unnamed bench":          func(r *Report) { r.Benchmarks[0].Name = "" },
		"zero ns":                func(r *Report) { r.Benchmarks[0].NsPerOp = 0 },
		"nan ns":                 func(r *Report) { r.Benchmarks[0].NsPerOp = math.NaN() },
		"negative allocs":        func(r *Report) { r.Benchmarks[0].AllocsPerOp = -1 },
		"zero iterations":        func(r *Report) { r.Benchmarks[0].Iterations = 0 },
		"hit rate over 1":        func(r *Report) { r.VSafeCache.HitRate = 1.5 },
		"zero speedup":           func(r *Report) { r.FastPathSpeedup = 0 },
		"infinite speedup":       func(r *Report) { r.FastPathSpeedup = math.Inf(1) },
		"zero batch speedup":     func(r *Report) { r.BatchSpeedup = 0 },
		"infinite batch speedup": func(r *Report) { r.BatchSpeedup = math.Inf(1) },
		"missing step/batch-64": func(r *Report) {
			for i := range r.Benchmarks {
				if r.Benchmarks[i].Name == "step/batch-64" {
					r.Benchmarks[i].Name = "step/batch-63"
				}
			}
		},
		"missing step/scalar-64": func(r *Report) {
			for i := range r.Benchmarks {
				if r.Benchmarks[i].Name == "step/scalar-64" {
					r.Benchmarks[i].Name = "step/scalar-63"
				}
			}
		},
		"serving zero throughput": func(r *Report) { r.Serving.ThroughputRPS = 0 },
		"serving p99 below p50":   func(r *Report) { r.Serving.P99Ms = r.Serving.P50Ms / 2 },
		"serving zero requests":   func(r *Report) { r.Serving.Requests = 0 },
		"serving no concurrency":  func(r *Report) { r.Serving.Concurrency = 0 },
		"serving zero duration":   func(r *Report) { r.Serving.DurationSec = 0 },
		"serving bad hit rate":    func(r *Report) { r.Serving.CacheHitRate = 2 },
	}
	for name, corrupt := range cases {
		r := sample()
		corrupt(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed report", name)
		}
	}
	var nilRep *Report
	if err := nilRep.Validate(); err == nil {
		t.Error("nil report validated")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_culpeo.json")
	want := sample()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.FastPathSpeedup != want.FastPathSpeedup ||
		got.VSafeCache != want.VSafeCache ||
		len(got.Benchmarks) != len(want.Benchmarks) ||
		got.Benchmarks[0] != want.Benchmarks[0] ||
		got.Serving == nil || *got.Serving != *want.Serving {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "}\n") {
		t.Error("artifact must end with a newline for stable diffs")
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	r := sample()
	r.FastPathSpeedup = -1
	if err := Write(filepath.Join(t.TempDir(), "x.json"), r); err == nil {
		t.Fatal("Write accepted an invalid report")
	}
}

func TestReadRejectsMalformedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_culpeo.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("Read accepted malformed JSON")
	}
	if err := os.WriteFile(path, []byte(`{"schema":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("Read accepted a semantically invalid report")
	}
	if _, err := Read(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Read accepted a missing file")
	}
}

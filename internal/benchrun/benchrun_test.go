package benchrun

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample returns a well-formed synthetic report. Collect itself is exercised
// by `culpeo bench` (and takes ~10 s), so the unit tests work on synthetic
// data.
func sample() *Report {
	return &Report{
		Schema:    Schema,
		GoVersion: "go1.22",
		GOOS:      "linux",
		GOARCH:    "amd64",
		NumCPU:    8,
		Benchmarks: []Benchmark{
			{Name: "step/single-branch", NsPerOp: 120.5, AllocsPerOp: 0, BytesPerOp: 0, Iterations: 9_000_000},
			{Name: "step/scalar-64", NsPerOp: 5.0e8, AllocsPerOp: 64, BytesPerOp: 16384, Iterations: 3},
			{Name: "step/batch-64", NsPerOp: 0.5e8, AllocsPerOp: 0, BytesPerOp: 0, Iterations: 25},
			{Name: "sweep/exact-uncached", NsPerOp: 2.1e8, AllocsPerOp: 40, BytesPerOp: 8192, Iterations: 6},
			{Name: "sweep/fast-warm-cache", NsPerOp: 0.6e8, AllocsPerOp: 38, BytesPerOp: 8000, Iterations: 20},
			{Name: "misspath/sweep-cold", NsPerOp: 3.0e7, AllocsPerOp: 20, BytesPerOp: 4096, Iterations: 40},
			{Name: "misspath/sweep-warm", NsPerOp: 2.0e7, AllocsPerOp: 20, BytesPerOp: 4096, Iterations: 60},
			{Name: "misspath/miss-direct", NsPerOp: 8.0e7, AllocsPerOp: 320, BytesPerOp: 65536, Iterations: 15},
			{Name: "misspath/miss-coalesced", NsPerOp: 1.0e7, AllocsPerOp: 40, BytesPerOp: 8192, Iterations: 120},
		},
		VSafeCache:       CacheStats{Hits: 96, Misses: 4, HitRate: 0.96},
		FastPathSpeedup:  3.5,
		BatchSpeedup:     10.0,
		WarmSweepSpeedup: 1.5,
		CoalesceSpeedup:  8.0,
		Serving: &ServingStats{
			ThroughputRPS: 14000, P50Ms: 0.2, P99Ms: 1.1, MeanMs: 0.3,
			Requests: 42000, Concurrency: 4, DurationSec: 3, CacheHitRate: 0.99,
		},
		ShardScaling: &ShardScaling{
			WorkingSet: 256, PerShardCache: 96, Concurrency: 4,
			Rows: []ShardRow{
				{Shards: 1, Requests: 1024, ThroughputRPS: 550, CacheHitRate: 0.0, Evictions: 900, SpeedupVs1: 1},
				{Shards: 4, Requests: 1024, ThroughputRPS: 3900, CacheHitRate: 0.93, Evictions: 0, SpeedupVs1: 7.1},
				{Shards: 8, Requests: 1024, ThroughputRPS: 4100, CacheHitRate: 0.93, Evictions: 0, SpeedupVs1: 7.45},
			},
		},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatal(err)
	}
	r := sample()
	r.Serving = nil // a bench-only artifact with no recorded loadtest is valid
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]func(*Report){
		"wrong schema":           func(r *Report) { r.Schema = 99 },
		"no go version":          func(r *Report) { r.GoVersion = "" },
		"no cpus":                func(r *Report) { r.NumCPU = 0 },
		"no benchmarks":          func(r *Report) { r.Benchmarks = nil },
		"unnamed bench":          func(r *Report) { r.Benchmarks[0].Name = "" },
		"zero ns":                func(r *Report) { r.Benchmarks[0].NsPerOp = 0 },
		"nan ns":                 func(r *Report) { r.Benchmarks[0].NsPerOp = math.NaN() },
		"negative allocs":        func(r *Report) { r.Benchmarks[0].AllocsPerOp = -1 },
		"zero iterations":        func(r *Report) { r.Benchmarks[0].Iterations = 0 },
		"hit rate over 1":        func(r *Report) { r.VSafeCache.HitRate = 1.5 },
		"zero speedup":           func(r *Report) { r.FastPathSpeedup = 0 },
		"infinite speedup":       func(r *Report) { r.FastPathSpeedup = math.Inf(1) },
		"zero batch speedup":     func(r *Report) { r.BatchSpeedup = 0 },
		"infinite batch speedup": func(r *Report) { r.BatchSpeedup = math.Inf(1) },
		"zero warm speedup":      func(r *Report) { r.WarmSweepSpeedup = 0 },
		"infinite warm speedup":  func(r *Report) { r.WarmSweepSpeedup = math.Inf(1) },
		"coalesce not winning":   func(r *Report) { r.CoalesceSpeedup = 0.9 },
		"missing misspath rows": func(r *Report) {
			for i := range r.Benchmarks {
				if r.Benchmarks[i].Name == "misspath/miss-coalesced" {
					r.Benchmarks[i].Name = "misspath/miss-coalesced-x"
				}
			}
		},
		"missing step/batch-64": func(r *Report) {
			for i := range r.Benchmarks {
				if r.Benchmarks[i].Name == "step/batch-64" {
					r.Benchmarks[i].Name = "step/batch-63"
				}
			}
		},
		"missing step/scalar-64": func(r *Report) {
			for i := range r.Benchmarks {
				if r.Benchmarks[i].Name == "step/scalar-64" {
					r.Benchmarks[i].Name = "step/scalar-63"
				}
			}
		},
		"serving zero throughput": func(r *Report) { r.Serving.ThroughputRPS = 0 },
		"serving p99 below p50":   func(r *Report) { r.Serving.P99Ms = r.Serving.P50Ms / 2 },
		"serving zero requests":   func(r *Report) { r.Serving.Requests = 0 },
		"serving no concurrency":  func(r *Report) { r.Serving.Concurrency = 0 },
		"serving zero duration":   func(r *Report) { r.Serving.DurationSec = 0 },
		"serving bad hit rate":    func(r *Report) { r.Serving.CacheHitRate = 2 },
		"shard scaling no rows":   func(r *Report) { r.ShardScaling.Rows = nil },
		"shard scaling no baseline": func(r *Report) {
			r.ShardScaling.Rows = r.ShardScaling.Rows[1:]
		},
		"shard scaling not increasing": func(r *Report) {
			r.ShardScaling.Rows[2].Shards = 4
		},
		"shard scaling zero requests":   func(r *Report) { r.ShardScaling.Rows[1].Requests = 0 },
		"shard scaling zero throughput": func(r *Report) { r.ShardScaling.Rows[1].ThroughputRPS = 0 },
		"shard scaling bad hit rate":    func(r *Report) { r.ShardScaling.Rows[1].CacheHitRate = 1.5 },
		"shard scaling zero speedup":    func(r *Report) { r.ShardScaling.Rows[1].SpeedupVs1 = 0 },
	}
	for name, corrupt := range cases {
		r := sample()
		corrupt(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed report", name)
		}
	}
	var nilRep *Report
	if err := nilRep.Validate(); err == nil {
		t.Error("nil report validated")
	}
}

// TestCompare: the regression gate accepts noise within tolerance, flags
// every kind of regression beyond it, and skips sections absent on either
// side.
func TestCompare(t *testing.T) {
	base := sample()
	if err := Compare(sample(), base, 0.15); err != nil {
		t.Fatalf("identical reports flagged: %v", err)
	}

	within := sample()
	within.Benchmarks[0].NsPerOp *= 1.10 // +10% < 15%
	within.Serving.ThroughputRPS *= 0.90
	if err := Compare(within, base, 0.15); err != nil {
		t.Fatalf("within-tolerance noise flagged: %v", err)
	}

	regressions := map[string]func(*Report){
		"ns/op":              func(r *Report) { r.Benchmarks[0].NsPerOp *= 1.5 },
		"fast path speedup":  func(r *Report) { r.FastPathSpeedup *= 0.5 },
		"batch speedup":      func(r *Report) { r.BatchSpeedup *= 0.5 },
		"warm sweep speedup": func(r *Report) { r.WarmSweepSpeedup *= 0.5 },
		"coalesce speedup":   func(r *Report) { r.CoalesceSpeedup *= 0.5 },
		"serving throughput": func(r *Report) { r.Serving.ThroughputRPS *= 0.5 },
		"shard speedup":      func(r *Report) { r.ShardScaling.Rows[1].SpeedupVs1 *= 0.5 },
	}
	for name, corrupt := range regressions {
		cur := sample()
		corrupt(cur)
		if err := Compare(cur, base, 0.15); err == nil {
			t.Errorf("%s regression not flagged", name)
		}
	}

	// Both regressions reported, not just the first.
	cur := sample()
	cur.Benchmarks[0].NsPerOp *= 2
	cur.BatchSpeedup *= 0.5
	err := Compare(cur, base, 0.15)
	if err == nil || !strings.Contains(err.Error(), "2 regression(s)") {
		t.Fatalf("want both regressions reported, got %v", err)
	}

	// A fresh bench with no serving/shard sections gates micro-benches only.
	cur = sample()
	cur.Serving, cur.ShardScaling = nil, nil
	if err := Compare(cur, base, 0.15); err != nil {
		t.Fatalf("absent sections must be skipped: %v", err)
	}
	// An improvement is never a violation.
	cur = sample()
	cur.Benchmarks[0].NsPerOp *= 0.2
	cur.ShardScaling.Rows[1].SpeedupVs1 *= 3
	if err := Compare(cur, base, 0.15); err != nil {
		t.Fatalf("improvement flagged: %v", err)
	}
	if err := Compare(nil, base, 0.15); err == nil {
		t.Fatal("nil current accepted")
	}
	if err := Compare(sample(), base, math.NaN()); err == nil {
		t.Fatal("NaN tolerance accepted")
	}
}

func TestCompareCalibration(t *testing.T) {
	withCal := func(ns float64) *Report {
		r := sample()
		r.Benchmarks = append(r.Benchmarks,
			Benchmark{Name: CalibrationName, NsPerOp: ns, Iterations: 1_000_000})
		return r
	}
	base := withCal(1000)

	// A whole-machine slowdown moves every benchmark and the spin alike;
	// normalization cancels it.
	slowVM := withCal(1300)
	for i := range slowVM.Benchmarks {
		slowVM.Benchmarks[i].NsPerOp *= 1.3
	}
	if err := Compare(slowVM, base, 0.15); err != nil {
		t.Fatalf("uniform machine slowdown flagged despite calibration: %v", err)
	}

	// A real code regression moves one benchmark but not the spin.
	regressed := withCal(1000)
	regressed.Benchmarks[0].NsPerOp *= 1.5
	if err := Compare(regressed, base, 0.15); err == nil {
		t.Fatal("code regression hidden by calibration")
	}

	// A regression on a *faster* machine must still be caught: spin says
	// 2x faster, benchmark only 1.1x faster → normalized 1.82x worse.
	fasterVM := withCal(500)
	for i := range fasterVM.Benchmarks {
		fasterVM.Benchmarks[i].NsPerOp *= 0.9
	}
	if err := Compare(fasterVM, base, 0.15); err == nil {
		t.Fatal("relative regression on a faster machine not flagged")
	}

	// Calibration on one side only: raw comparison, no scaling.
	oneSided := sample()
	oneSided.Benchmarks[0].NsPerOp *= 1.5
	if err := Compare(oneSided, base, 0.15); err == nil {
		t.Fatal("regression not flagged when current lacks calibration")
	}
	// The calibration row itself is never a violation: a 5x-faster spin
	// normalizes every other benchmark to 5x worse — all of those are
	// reported, the spin is not.
	calOnly := withCal(200)
	if err := Compare(calOnly, base, 0.15); err == nil {
		t.Fatal("expected violations: every benchmark is 5x-slower-normalized")
	} else if strings.Contains(err.Error(), CalibrationName) {
		t.Fatalf("calibration row reported as a regression: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_culpeo.json")
	want := sample()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.FastPathSpeedup != want.FastPathSpeedup ||
		got.VSafeCache != want.VSafeCache ||
		len(got.Benchmarks) != len(want.Benchmarks) ||
		got.Benchmarks[0] != want.Benchmarks[0] ||
		got.Serving == nil || *got.Serving != *want.Serving {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "}\n") {
		t.Error("artifact must end with a newline for stable diffs")
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	r := sample()
	r.FastPathSpeedup = -1
	if err := Write(filepath.Join(t.TempDir(), "x.json"), r); err == nil {
		t.Fatal("Write accepted an invalid report")
	}
}

func TestReadRejectsMalformedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_culpeo.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("Read accepted malformed JSON")
	}
	if err := os.WriteFile(path, []byte(`{"schema":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("Read accepted a semantically invalid report")
	}
	if _, err := Read(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Read accepted a missing file")
	}
}

// Package benchrun records the simulator's performance trajectory: it runs
// the hot-path benchmarks programmatically (testing.Benchmark), measures the
// end-to-end ground-truth sweep on the exact stepper versus the fast path
// with a warm V_safe cache, and serializes the result as BENCH_culpeo.json —
// a machine-checkable artifact the repo commits alongside code changes so
// performance regressions show up in review like golden-file diffs do.
package benchrun

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
)

// Schema identifies the report layout; bump on breaking changes.
// Schema 2 added the step/scalar-64 / step/batch-64 pair and batch_speedup.
// Schema 3 added the shard_scaling section (`culpeo loadtest -shardsweep
// -record`): sharded-tier throughput at 1/4/8 nodes on the cache-cold mix.
// Schema 4 added the miss-path rows: the warm-started chained ground-truth
// sweep pair (misspath/sweep-{cold,warm} + warm_sweep_speedup) and the
// same-key miss-storm pair (misspath/miss-{direct,coalesced} +
// coalesce_speedup).
// Schema 5 added the stream section (`culpeo streamtest -record`): the
// sessionized streaming soak at stream/sessions-100k scale — event
// throughput, p99 event latency and peak heap per resident session.
// Schema 6 added the recovery section (`culpeo crashtest -record`): the
// write-ahead journal's cold-restart figures at recovery/sessions-100k
// scale — snapshot size, recovery wall clock, sessions recovered per
// second and the journaled append round trip.
const Schema = 6

// Benchmark is one recorded measurement.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// CacheStats records the V_safe cache's effectiveness during the fast sweep.
type CacheStats struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// ServingStats records a `culpeo loadtest -record` run against the HTTP
// service: sustained loopback throughput and latency quantiles for
// cache-hot single V_safe queries.
type ServingStats struct {
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MeanMs        float64 `json:"mean_ms"`
	Requests      uint64  `json:"requests"`
	Concurrency   int     `json:"concurrency"`
	DurationSec   float64 `json:"duration_sec"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
}

// StreamStats records a `culpeo streamtest -record` run: the sessionized
// streaming soak — full device lifecycles (open, stream, detach, resume,
// close) through flapping chaos links, recorded only when every gate
// (zero failed sessions, bit-exact parity, bounded heap) passed.
type StreamStats struct {
	// Name labels the configuration, e.g. "stream/sessions-100k".
	Name         string  `json:"name"`
	Sessions     int     `json:"sessions"`
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	P99EventMs   float64 `json:"p99_event_ms"`
	// PeakHeapPerSessionBytes is heap growth per resident detached
	// session at the soak's all-resident measurement point.
	PeakHeapPerSessionBytes float64 `json:"peak_heap_per_session_bytes"`
	DurationSec             float64 `json:"duration_sec"`
	Workers                 int     `json:"workers"`
}

// RecoveryStats records a `culpeo crashtest -record` run: the cost of a
// cold restart from the write-ahead session journal — journal scan,
// snapshot decode and record replay back to serving state — recorded only
// after the crash soak passed every gate (zero lost acked observations,
// zero duplicated folds, bit-exact recovery, byte-identical logs).
type RecoveryStats struct {
	// Name labels the configuration, e.g. "recovery/sessions-100k".
	Name     string `json:"name"`
	Sessions int    `json:"sessions"`
	// SnapshotBytes is the compacted snapshot's on-disk size.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// RecoverMs is the cold-restart wall clock: journal.Open's segment
	// scan plus the session-table replay, the exact pre-listen boot path.
	RecoverMs      float64 `json:"recover_ms"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// AppendNsPerOp is one journaled append, enqueue to durable ack
	// (group-commit batched, fsync off — the replay path is the subject).
	AppendNsPerOp float64 `json:"append_ns_per_op"`
}

// ShardRow is one shard count in the scaling sweep.
type ShardRow struct {
	Shards        int     `json:"shards"`
	Requests      uint64  `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// CacheHitRate aggregates over every shard's V_safe cache: the
	// mechanism behind the scaling (cache partitioning, not CPU).
	CacheHitRate float64 `json:"cache_hit_rate"`
	Evictions    uint64  `json:"evictions"`
	// SpeedupVs1 is this row's throughput over the 1-shard row's.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// ShardScaling records a `culpeo loadtest -shardsweep -record` run: the
// same working set driven through the rendezvous router at increasing
// shard counts. The first row is always the 1-shard baseline.
type ShardScaling struct {
	WorkingSet    int        `json:"working_set"`
	PerShardCache int        `json:"per_shard_cache"`
	Concurrency   int        `json:"concurrency"`
	Rows          []ShardRow `json:"rows"`
}

// Report is the full bench trajectory written to BENCH_culpeo.json.
type Report struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Benchmarks []Benchmark `json:"benchmarks"`
	VSafeCache CacheStats  `json:"vsafe_cache"`
	// FastPathSpeedup is sweep/exact-uncached ns/op divided by
	// sweep/fast-warm-cache ns/op: the end-to-end win of the analytic
	// stepper plus memoized estimates.
	FastPathSpeedup float64 `json:"fast_path_speedup"`
	// BatchSpeedup is step/scalar-64 ns/op divided by step/batch-64 ns/op:
	// the win of advancing 64 scenarios through the SoA lockstep batch
	// stepper over running them one by one on the scalar fast path.
	BatchSpeedup float64 `json:"batch_speedup"`
	// WarmSweepSpeedup is misspath/sweep-cold ns/op divided by
	// misspath/sweep-warm ns/op: the win of warm-starting each chained
	// ground-truth bisection from its neighbor's verified bracket.
	WarmSweepSpeedup float64 `json:"warm_sweep_speedup"`
	// CoalesceSpeedup is misspath/miss-direct ns/op divided by
	// misspath/miss-coalesced ns/op: the win of collapsing a same-key miss
	// storm into one singleflight computation instead of paying one
	// Algorithm 1 run per caller.
	CoalesceSpeedup float64 `json:"coalesce_speedup"`
	// Serving is the recorded loadtest of the culpeod service, when one has
	// been run (`culpeo loadtest -record`); bench itself leaves it intact.
	Serving *ServingStats `json:"serving,omitempty"`
	// ShardScaling is the recorded sharded-tier scaling sweep, when one has
	// been run (`culpeo loadtest -shardsweep -record`); bench leaves it
	// intact the same way.
	ShardScaling *ShardScaling `json:"shard_scaling,omitempty"`
	// Stream is the recorded streaming soak, when one has been run
	// (`culpeo streamtest -record`); bench leaves it intact the same way.
	Stream *StreamStats `json:"stream,omitempty"`
	// Recovery is the recorded crash-recovery benchmark, when one has been
	// run (`culpeo crashtest -record`); bench leaves it intact the same way.
	Recovery *RecoveryStats `json:"recovery,omitempty"`
}

// sweepTasks is the end-to-end workload: a spread of the evaluation
// catalogue's shapes (sustained, pulsed, two real peripherals), pre-boxed so
// the benchmark loop performs no interface-conversion allocations.
func sweepTasks() []load.Profile {
	return []load.Profile{
		load.NewUniform(50e-3, 20e-3),
		load.NewPulse(50e-3, 5e-3),
		load.Gesture(),
		load.BLERadio(),
	}
}

// batchScenarios is the 64-lane workload behind step/scalar-64 and
// step/batch-64: the evaluation catalogue's shapes — scan-heavy 1.1 s
// compute, two real peripherals and a sustained uniform — across a spread
// of launch voltages, all completing (a lane verdict is checked, not
// measured, here; the equivalence suite owns correctness).
func batchScenarios() []powersys.BatchScenario {
	profiles := []load.Profile{
		load.ComputeAccel(),
		load.BLERadio(),
		load.Gesture(),
		load.NewUniform(25e-3, 50e-3),
	}
	vstarts := []float64{2.56, 2.45, 2.3, 2.2}
	scens := make([]powersys.BatchScenario, 64)
	for i := range scens {
		scens[i] = powersys.BatchScenario{
			Profile: profiles[i%len(profiles)],
			VStart:  vstarts[(i/len(profiles))%len(vstarts)],
		}
	}
	return scens
}

func capybaraModel(cfg powersys.Config) core.PowerModel {
	return core.PowerModel{
		C:     cfg.Storage.TotalCapacitance(),
		ESR:   capacitor.Flat(cfg.Storage.Main().ESR),
		VOut:  cfg.Output.VOut,
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Eff:   cfg.Output.Efficiency,
	}
}

// benchReps is how many times each measurement repeats; the fastest run
// is the one recorded. A single self-calibrated run can land tens of
// percent off on a shared VM, and noise only ever adds time — so the
// minimum over a few runs is the stable estimator of the code's actual
// cost, the only kind a regression gate can meaningfully compare.
const benchReps = 3

// CalibrationName is the fixed-workload spin benchmark Collect records
// alongside the real measurements. Its code never changes, so between two
// reports it moves only with machine speed — host CPU steal, frequency
// scaling — and Compare uses the ratio to normalize that swing out of
// every ns/op comparison. Without it, a gate tight enough to catch real
// regressions (15%) is a coin flip on a VM whose slow phases run 25%
// under its fast ones.
const CalibrationName = "calibrate/spin"

// calSink defeats dead-code elimination of the calibration spin.
var calSink float64

// bestOf repeats fn under testing.Benchmark and keeps the fastest run.
func bestOf(reps int, fn func(b *testing.B)) testing.BenchmarkResult {
	best := testing.Benchmark(fn)
	for i := 1; i < reps; i++ {
		if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// findBenchmark returns the named measurement from a report, if recorded.
func findBenchmark(r *Report, name string) (Benchmark, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// record converts a testing.BenchmarkResult.
func record(name string, r testing.BenchmarkResult) Benchmark {
	return Benchmark{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// sweepOnce runs the end-to-end workload serially: brute-force ground truth
// plus a Culpeo-PG estimate for every task — the inner loop of the Figure 10
// grid, the thing the fast path and the cache exist to accelerate.
func sweepOnce(h *harness.Harness, pg profiler.PG, tasks []load.Profile) error {
	for _, task := range tasks {
		if _, err := h.GroundTruth(task); err != nil {
			return err
		}
		if _, err := pg.Estimate(task); err != nil {
			return err
		}
	}
	return nil
}

// Collect runs the benchmark suite and assembles the report. It takes on the
// order of half a minute: each measurement self-calibrates to roughly one
// second of steady-state iteration and repeats benchReps times.
func Collect() (*Report, error) {
	rep := &Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	// --- calibration: a serial FP multiply-add chain (the same dependency
	// shape as the stepper's hot loop) whose cost is a machine-speed probe,
	// not a measurement of anything in this repo.
	rep.Benchmarks = append(rep.Benchmarks, record(CalibrationName,
		bestOf(benchReps, func(b *testing.B) {
			x := 1.0
			for i := 0; i < b.N; i++ {
				for j := 0; j < 4096; j++ {
					x = x*1.0000001 + float64(j&7)
				}
			}
			calSink = x
		})))

	// --- micro: one exact simulation step, both node-solver paths.
	single, err := powersys.New(powersys.Capybara())
	if err != nil {
		return nil, err
	}
	single.Monitor().Force(true)
	rep.Benchmarks = append(rep.Benchmarks, record("step/single-branch",
		bestOf(benchReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				single.Step(10e-3, 1e-3)
			}
		})))

	net, err := capacitor.NewNetwork(
		&capacitor.Branch{Name: "main", C: 45e-3, ESR: 5, Voltage: 2.4},
		&capacitor.Branch{Name: "dec", C: 400e-6, ESR: 0.05, Voltage: 2.4},
	)
	if err != nil {
		return nil, err
	}
	cfg := powersys.Capybara()
	cfg.Storage = net
	multi, err := powersys.New(cfg)
	if err != nil {
		return nil, err
	}
	multi.Monitor().Force(true)
	rep.Benchmarks = append(rep.Benchmarks, record("step/multi-branch",
		bestOf(benchReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				multi.Step(10e-3, 1e-3)
			}
		})))

	// --- micro: 64 scenarios, one-by-one on the scalar fast path versus one
	// SoA lockstep batch. Both sides re-prepare (charge / discharge / force)
	// and re-run per iteration; schedule compilation happens once outside
	// the loop, which is the batch API's contract — compile once, run many.
	scens := batchScenarios()
	base := powersys.Capybara()
	scalarSys := make([]*powersys.System, len(scens))
	for i := range scens {
		if scalarSys[i], err = powersys.New(powersys.Capybara()); err != nil {
			return nil, err
		}
	}
	var batchErr error
	scalarRes := bestOf(benchReps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, sc := range scens {
				sys := scalarSys[j]
				if err := sys.ChargeTo(base.VHigh); err != nil {
					batchErr = err
					b.Fatal(err)
				}
				if err := sys.DischargeTo(sc.VStart); err != nil {
					batchErr = err
					b.Fatal(err)
				}
				sys.Monitor().Force(true)
				if res := sys.Run(sc.Profile, powersys.RunOptions{Fast: true, SkipRebound: true}); res.Err != nil {
					batchErr = res.Err
					b.Fatal(res.Err)
				}
			}
		}
	})
	if batchErr != nil {
		return nil, batchErr
	}
	rep.Benchmarks = append(rep.Benchmarks, record("step/scalar-64", scalarRes))

	bs, err := powersys.NewBatch(base, scens)
	if err != nil {
		return nil, err
	}
	batchRes := bestOf(benchReps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bs.Reset()
			for _, res := range bs.Run(powersys.BatchOptions{Fast: true, SkipRebound: true}) {
				if res.Err != nil {
					batchErr = res.Err
					b.Fatal(res.Err)
				}
			}
		}
	})
	if batchErr != nil {
		return nil, batchErr
	}
	rep.Benchmarks = append(rep.Benchmarks, record("step/batch-64", batchRes))
	scalarNs := float64(scalarRes.T.Nanoseconds()) / float64(scalarRes.N)
	batchNs := float64(batchRes.T.Nanoseconds()) / float64(batchRes.N)
	if batchNs > 0 {
		rep.BatchSpeedup = scalarNs / batchNs
	}

	// --- micro: Algorithm 1 direct versus memoized (warm line).
	model := capybaraModel(powersys.Capybara())
	tr := load.Sample(load.LoRa(), load.SampleRateDefault)
	rep.Benchmarks = append(rep.Benchmarks, record("vsafe/pg-direct",
		bestOf(benchReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.VSafePG(model, tr); err != nil {
					b.Fatal(err)
				}
			}
		})))
	warm := core.NewVSafeCache(8)
	if _, err := warm.PG(model, tr); err != nil {
		return nil, err
	}
	rep.Benchmarks = append(rep.Benchmarks, record("vsafe/pg-cached",
		bestOf(benchReps, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := warm.PG(model, tr); err != nil {
					b.Fatal(err)
				}
			}
		})))

	// --- macro: the end-to-end sweep, exact-uncached vs fast + warm cache.
	tasks := sweepTasks()
	exactH, err := harness.New(powersys.Capybara())
	if err != nil {
		return nil, err
	}
	exactPG := profiler.PG{Model: model, NoCache: true}
	var sweepErr error
	exactRes := bestOf(benchReps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := sweepOnce(exactH, exactPG, tasks); err != nil {
				sweepErr = err
				b.Fatal(err)
			}
		}
	})
	if sweepErr != nil {
		return nil, sweepErr
	}
	rep.Benchmarks = append(rep.Benchmarks, record("sweep/exact-uncached", exactRes))

	fastH, err := harness.New(powersys.Capybara())
	if err != nil {
		return nil, err
	}
	fastH.Fast = true
	cache := core.NewVSafeCache(0)
	fastPG := profiler.PG{Model: model, Cache: cache}
	// Warm the cache: the recorded hit rate covers this one cold pass plus
	// every benchmark iteration, so it lands just under 1 — the deployment
	// regime the memo targets.
	if err := sweepOnce(fastH, fastPG, tasks); err != nil {
		return nil, err
	}
	fastRes := bestOf(benchReps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := sweepOnce(fastH, fastPG, tasks); err != nil {
				sweepErr = err
				b.Fatal(err)
			}
		}
	})
	if sweepErr != nil {
		return nil, sweepErr
	}
	rep.Benchmarks = append(rep.Benchmarks, record("sweep/fast-warm-cache", fastRes))

	st := cache.Stats()
	rep.VSafeCache = CacheStats{Hits: st.Hits, Misses: st.Misses, HitRate: st.HitRate()}
	exactNs := float64(exactRes.T.Nanoseconds()) / float64(exactRes.N)
	fastNs := float64(fastRes.T.Nanoseconds()) / float64(fastRes.N)
	if fastNs > 0 {
		rep.FastPathSpeedup = exactNs / fastNs
	}

	// --- miss path: a chained ground-truth sweep, cold vs warm-started. The
	// grid is a fine current ladder (neighboring V_safe values inside the
	// guard band), the regime the sweep drivers hit; the hint-verification
	// protocol is stepper-agnostic, so the fast stepper keeps the suite
	// quick without changing the probe-count ratio being measured.
	warmH, err := harness.New(powersys.Capybara())
	if err != nil {
		return nil, err
	}
	warmH.Fast = true
	var grid []load.Profile
	for ma := 30.0; ma < 45.1; ma += 1.5 {
		grid = append(grid, load.NewPulse(ma*1e-3, 1e-3))
	}
	ctx := context.Background()
	var missErr error
	coldSweepRes := bestOf(benchReps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, task := range grid {
				if _, err := warmH.GroundTruthCtx(ctx, task, 0); err != nil {
					missErr = err
					b.Fatal(err)
				}
			}
		}
	})
	if missErr != nil {
		return nil, missErr
	}
	rep.Benchmarks = append(rep.Benchmarks, record("misspath/sweep-cold", coldSweepRes))
	warmSweepRes := bestOf(benchReps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var hint *harness.Bracket
			for _, task := range grid {
				gt, err := warmH.GroundTruthHinted(ctx, task, 0, hint)
				if err != nil {
					missErr = err
					b.Fatal(err)
				}
				hint = &harness.Bracket{Lo: gt - harness.WarmGuardBand, Hi: gt + harness.WarmGuardBand}
			}
		}
	})
	if missErr != nil {
		return nil, missErr
	}
	rep.Benchmarks = append(rep.Benchmarks, record("misspath/sweep-warm", warmSweepRes))
	coldNs := float64(coldSweepRes.T.Nanoseconds()) / float64(coldSweepRes.N)
	warmNs := float64(warmSweepRes.T.Nanoseconds()) / float64(warmSweepRes.N)
	if warmNs > 0 {
		rep.WarmSweepSpeedup = coldNs / warmNs
	}

	// --- miss path: a same-key miss storm — every caller wants the same
	// uncached estimate at once, the shape a popular new spec produces at
	// the serving tier. Direct: each goroutine runs Algorithm 1 itself, so
	// wall clock is ~storm/cores computations. Coalesced: the cache elects
	// one leader and the rest wait on its singleflight, so wall clock is
	// one computation. The storm oversubscribes the cores 8x.
	storm := 8 * runtime.GOMAXPROCS(0)
	var stormErr atomic.Value
	runStorm := func(fn func() error) {
		var wg sync.WaitGroup
		for g := 0; g < storm; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := fn(); err != nil {
					stormErr.Store(err)
				}
			}()
		}
		wg.Wait()
	}
	directRes := bestOf(benchReps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runStorm(func() error {
				_, err := core.VSafePG(model, tr)
				return err
			})
		}
	})
	if err, ok := stormErr.Load().(error); ok {
		return nil, err
	}
	rep.Benchmarks = append(rep.Benchmarks, record("misspath/miss-direct", directRes))
	coalescedRes := bestOf(benchReps, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			missCache := core.NewVSafeCache(4) // fresh per iteration: every storm is cache-cold
			runStorm(func() error {
				_, err := missCache.PG(model, tr)
				return err
			})
		}
	})
	if err, ok := stormErr.Load().(error); ok {
		return nil, err
	}
	rep.Benchmarks = append(rep.Benchmarks, record("misspath/miss-coalesced", coalescedRes))
	directNs := float64(directRes.T.Nanoseconds()) / float64(directRes.N)
	coalescedNs := float64(coalescedRes.T.Nanoseconds()) / float64(coalescedRes.N)
	if coalescedNs > 0 {
		rep.CoalesceSpeedup = directNs / coalescedNs
	}

	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("benchrun: collected report invalid: %w", err)
	}
	return rep, nil
}

// Validate checks the report is well-formed — the gate `culpeo benchcheck`
// (and therefore `make bench`) applies to the committed artifact.
func (r *Report) Validate() error {
	switch {
	case r == nil:
		return fmt.Errorf("benchrun: nil report")
	case r.Schema != Schema:
		return fmt.Errorf("benchrun: schema %d, want %d", r.Schema, Schema)
	case r.GoVersion == "":
		return fmt.Errorf("benchrun: missing go_version")
	case r.NumCPU <= 0:
		return fmt.Errorf("benchrun: num_cpu %d", r.NumCPU)
	case len(r.Benchmarks) == 0:
		return fmt.Errorf("benchrun: no benchmarks")
	}
	required := map[string]bool{
		"step/batch-64": false, "step/scalar-64": false,
		"misspath/sweep-cold": false, "misspath/sweep-warm": false,
		"misspath/miss-direct": false, "misspath/miss-coalesced": false,
	}
	for _, b := range r.Benchmarks {
		switch {
		case b.Name == "":
			return fmt.Errorf("benchrun: unnamed benchmark")
		case !(b.NsPerOp > 0) || math.IsInf(b.NsPerOp, 0):
			return fmt.Errorf("benchrun: %s: bad ns_per_op %v", b.Name, b.NsPerOp)
		case b.AllocsPerOp < 0 || b.BytesPerOp < 0:
			return fmt.Errorf("benchrun: %s: negative alloc figures", b.Name)
		case b.Iterations <= 0:
			return fmt.Errorf("benchrun: %s: iterations %d", b.Name, b.Iterations)
		}
		if _, ok := required[b.Name]; ok {
			required[b.Name] = true
		}
	}
	for name, seen := range required {
		if !seen {
			return fmt.Errorf("benchrun: schema %d report missing %s", Schema, name)
		}
	}
	if r.VSafeCache.HitRate < 0 || r.VSafeCache.HitRate > 1 || math.IsNaN(r.VSafeCache.HitRate) {
		return fmt.Errorf("benchrun: hit_rate %v outside [0,1]", r.VSafeCache.HitRate)
	}
	if !(r.FastPathSpeedup > 0) || math.IsInf(r.FastPathSpeedup, 0) {
		return fmt.Errorf("benchrun: bad fast_path_speedup %v", r.FastPathSpeedup)
	}
	if !(r.BatchSpeedup > 0) || math.IsInf(r.BatchSpeedup, 0) {
		return fmt.Errorf("benchrun: bad batch_speedup %v", r.BatchSpeedup)
	}
	if !(r.WarmSweepSpeedup > 0) || math.IsInf(r.WarmSweepSpeedup, 0) {
		return fmt.Errorf("benchrun: bad warm_sweep_speedup %v", r.WarmSweepSpeedup)
	}
	// Coalescing must at least win: a storm that computes once cannot be
	// slower than one that computes storm times. Anything at or below 1.0
	// means the singleflight is broken, not slow.
	if !(r.CoalesceSpeedup > 1) || math.IsInf(r.CoalesceSpeedup, 0) {
		return fmt.Errorf("benchrun: bad coalesce_speedup %v (a same-key storm must coalesce)", r.CoalesceSpeedup)
	}
	if s := r.Serving; s != nil {
		switch {
		case !(s.ThroughputRPS > 0) || math.IsInf(s.ThroughputRPS, 0):
			return fmt.Errorf("benchrun: serving: bad throughput_rps %v", s.ThroughputRPS)
		case !(s.P50Ms > 0) || s.P99Ms < s.P50Ms || math.IsInf(s.P99Ms, 0):
			return fmt.Errorf("benchrun: serving: bad quantiles p50=%v p99=%v", s.P50Ms, s.P99Ms)
		case s.Requests == 0:
			return fmt.Errorf("benchrun: serving: zero requests")
		case s.Concurrency <= 0:
			return fmt.Errorf("benchrun: serving: concurrency %d", s.Concurrency)
		case !(s.DurationSec > 0):
			return fmt.Errorf("benchrun: serving: duration %v", s.DurationSec)
		case s.CacheHitRate < 0 || s.CacheHitRate > 1 || math.IsNaN(s.CacheHitRate):
			return fmt.Errorf("benchrun: serving: cache_hit_rate %v outside [0,1]", s.CacheHitRate)
		}
	}
	if st := r.Stream; st != nil {
		switch {
		case st.Name == "":
			return fmt.Errorf("benchrun: stream: missing name")
		case st.Sessions <= 0:
			return fmt.Errorf("benchrun: stream: sessions %d", st.Sessions)
		case st.Events <= 0:
			return fmt.Errorf("benchrun: stream: events %d", st.Events)
		case !(st.EventsPerSec > 0) || math.IsInf(st.EventsPerSec, 0):
			return fmt.Errorf("benchrun: stream: bad events_per_sec %v", st.EventsPerSec)
		case !(st.P99EventMs >= 0) || math.IsInf(st.P99EventMs, 0):
			return fmt.Errorf("benchrun: stream: bad p99_event_ms %v", st.P99EventMs)
		case !(st.PeakHeapPerSessionBytes > 0) || math.IsInf(st.PeakHeapPerSessionBytes, 0):
			return fmt.Errorf("benchrun: stream: bad peak_heap_per_session_bytes %v", st.PeakHeapPerSessionBytes)
		case !(st.DurationSec > 0):
			return fmt.Errorf("benchrun: stream: duration %v", st.DurationSec)
		case st.Workers <= 0:
			return fmt.Errorf("benchrun: stream: workers %d", st.Workers)
		}
	}
	if rc := r.Recovery; rc != nil {
		switch {
		case rc.Name == "":
			return fmt.Errorf("benchrun: recovery: missing name")
		case rc.Sessions <= 0:
			return fmt.Errorf("benchrun: recovery: sessions %d", rc.Sessions)
		case rc.SnapshotBytes <= 0:
			return fmt.Errorf("benchrun: recovery: snapshot_bytes %d", rc.SnapshotBytes)
		case !(rc.RecoverMs > 0) || math.IsInf(rc.RecoverMs, 0):
			return fmt.Errorf("benchrun: recovery: bad recover_ms %v", rc.RecoverMs)
		case !(rc.SessionsPerSec > 0) || math.IsInf(rc.SessionsPerSec, 0):
			return fmt.Errorf("benchrun: recovery: bad sessions_per_sec %v", rc.SessionsPerSec)
		case !(rc.AppendNsPerOp > 0) || math.IsInf(rc.AppendNsPerOp, 0):
			return fmt.Errorf("benchrun: recovery: bad append_ns_per_op %v", rc.AppendNsPerOp)
		}
	}
	if sc := r.ShardScaling; sc != nil {
		if len(sc.Rows) == 0 {
			return fmt.Errorf("benchrun: shard_scaling: no rows")
		}
		if sc.Rows[0].Shards != 1 {
			return fmt.Errorf("benchrun: shard_scaling: first row is %d shards, want the 1-shard baseline", sc.Rows[0].Shards)
		}
		for i, row := range sc.Rows {
			switch {
			case row.Shards <= 0:
				return fmt.Errorf("benchrun: shard_scaling: row %d: shards %d", i, row.Shards)
			case i > 0 && row.Shards <= sc.Rows[i-1].Shards:
				return fmt.Errorf("benchrun: shard_scaling: rows not strictly increasing at %d", i)
			case row.Requests == 0:
				return fmt.Errorf("benchrun: shard_scaling: row %d: zero requests", i)
			case !(row.ThroughputRPS > 0) || math.IsInf(row.ThroughputRPS, 0):
				return fmt.Errorf("benchrun: shard_scaling: row %d: bad throughput_rps %v", i, row.ThroughputRPS)
			case row.CacheHitRate < 0 || row.CacheHitRate > 1 || math.IsNaN(row.CacheHitRate):
				return fmt.Errorf("benchrun: shard_scaling: row %d: cache_hit_rate %v outside [0,1]", i, row.CacheHitRate)
			case !(row.SpeedupVs1 > 0) || math.IsInf(row.SpeedupVs1, 0):
				return fmt.Errorf("benchrun: shard_scaling: row %d: bad speedup_vs_1 %v", i, row.SpeedupVs1)
			}
		}
	}
	return nil
}

// Compare gates current against baseline: any matching measurement that
// regressed by more than tol (a fraction — 0.15 means 15%) is a violation,
// and every violation is reported, not just the first. Sections absent on
// either side are skipped: a fresh `culpeo bench` carries no serving or
// shard-scaling record, so comparing it against the committed artifact
// gates the micro-benchmarks and speedups only.
//
// When both reports carry the calibration spin, every current ns/op is
// first scaled by baseline-spin/current-spin — cancelling whole-machine
// speed differences between the two runs so only code-relative movement
// counts against the tolerance. Speedups and throughputs are ratios or
// absent on a fresh report, so they need no such correction.
func Compare(current, baseline *Report, tol float64) error {
	if current == nil || baseline == nil {
		return fmt.Errorf("benchrun: compare: nil report")
	}
	if !(tol >= 0) {
		return fmt.Errorf("benchrun: compare: tolerance %v", tol)
	}
	var violations []string
	worse := func(name string, cur, base float64, lowerIsBetter bool) {
		if !(base > 0) {
			return
		}
		if lowerIsBetter {
			if cur > base*(1+tol) {
				violations = append(violations,
					fmt.Sprintf("%s: %.0f vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
						name, cur, base, (cur/base-1)*100, tol*100))
			}
			return
		}
		if cur < base*(1-tol) {
			violations = append(violations,
				fmt.Sprintf("%s: %.2f vs baseline %.2f (-%.1f%%, tolerance %.0f%%)",
					name, cur, base, (1-cur/base)*100, tol*100))
		}
	}
	base := map[string]Benchmark{}
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	scale := 1.0
	if cur, ok1 := findBenchmark(current, CalibrationName); ok1 {
		if bb, ok2 := base[CalibrationName]; ok2 && cur.NsPerOp > 0 && bb.NsPerOp > 0 {
			scale = bb.NsPerOp / cur.NsPerOp
		}
	}
	for _, b := range current.Benchmarks {
		if b.Name == CalibrationName {
			continue // the normalizer, not a measurement
		}
		if bb, ok := base[b.Name]; ok {
			worse(b.Name+" ns/op", b.NsPerOp*scale, bb.NsPerOp, true)
		}
	}
	worse("fast_path_speedup", current.FastPathSpeedup, baseline.FastPathSpeedup, false)
	worse("batch_speedup", current.BatchSpeedup, baseline.BatchSpeedup, false)
	worse("warm_sweep_speedup", current.WarmSweepSpeedup, baseline.WarmSweepSpeedup, false)
	worse("coalesce_speedup", current.CoalesceSpeedup, baseline.CoalesceSpeedup, false)
	if current.Serving != nil && baseline.Serving != nil {
		worse("serving throughput_rps", current.Serving.ThroughputRPS, baseline.Serving.ThroughputRPS, false)
	}
	if current.Stream != nil && baseline.Stream != nil {
		worse("stream events_per_sec", current.Stream.EventsPerSec, baseline.Stream.EventsPerSec, false)
	}
	if current.Recovery != nil && baseline.Recovery != nil {
		worse("recovery sessions_per_sec", current.Recovery.SessionsPerSec, baseline.Recovery.SessionsPerSec, false)
		worse("recovery append_ns_per_op", current.Recovery.AppendNsPerOp*scale, baseline.Recovery.AppendNsPerOp, true)
	}
	if current.ShardScaling != nil && baseline.ShardScaling != nil {
		baseRows := map[int]ShardRow{}
		for _, row := range baseline.ShardScaling.Rows {
			baseRows[row.Shards] = row
		}
		for _, row := range current.ShardScaling.Rows {
			if br, ok := baseRows[row.Shards]; ok {
				worse(fmt.Sprintf("shard_scaling[%d] speedup_vs_1", row.Shards), row.SpeedupVs1, br.SpeedupVs1, false)
			}
		}
	}
	if len(violations) > 0 {
		msg := violations[0]
		for _, v := range violations[1:] {
			msg += "; " + v
		}
		return fmt.Errorf("benchrun: %d regression(s) beyond tolerance: %s", len(violations), msg)
	}
	return nil
}

// Write serializes the report (indented, trailing newline — stable diffs).
func Write(path string, r *Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read loads and validates a report.
func Read(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchrun: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("benchrun: %s: %w", path, err)
	}
	return &r, nil
}

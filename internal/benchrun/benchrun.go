// Package benchrun records the simulator's performance trajectory: it runs
// the hot-path benchmarks programmatically (testing.Benchmark), measures the
// end-to-end ground-truth sweep on the exact stepper versus the fast path
// with a warm V_safe cache, and serializes the result as BENCH_culpeo.json —
// a machine-checkable artifact the repo commits alongside code changes so
// performance regressions show up in review like golden-file diffs do.
package benchrun

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
)

// Schema identifies the report layout; bump on breaking changes.
// Schema 2 added the step/scalar-64 / step/batch-64 pair and batch_speedup.
const Schema = 2

// Benchmark is one recorded measurement.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// CacheStats records the V_safe cache's effectiveness during the fast sweep.
type CacheStats struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// ServingStats records a `culpeo loadtest -record` run against the HTTP
// service: sustained loopback throughput and latency quantiles for
// cache-hot single V_safe queries.
type ServingStats struct {
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MeanMs        float64 `json:"mean_ms"`
	Requests      uint64  `json:"requests"`
	Concurrency   int     `json:"concurrency"`
	DurationSec   float64 `json:"duration_sec"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
}

// Report is the full bench trajectory written to BENCH_culpeo.json.
type Report struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Benchmarks []Benchmark `json:"benchmarks"`
	VSafeCache CacheStats  `json:"vsafe_cache"`
	// FastPathSpeedup is sweep/exact-uncached ns/op divided by
	// sweep/fast-warm-cache ns/op: the end-to-end win of the analytic
	// stepper plus memoized estimates.
	FastPathSpeedup float64 `json:"fast_path_speedup"`
	// BatchSpeedup is step/scalar-64 ns/op divided by step/batch-64 ns/op:
	// the win of advancing 64 scenarios through the SoA lockstep batch
	// stepper over running them one by one on the scalar fast path.
	BatchSpeedup float64 `json:"batch_speedup"`
	// Serving is the recorded loadtest of the culpeod service, when one has
	// been run (`culpeo loadtest -record`); bench itself leaves it intact.
	Serving *ServingStats `json:"serving,omitempty"`
}

// sweepTasks is the end-to-end workload: a spread of the evaluation
// catalogue's shapes (sustained, pulsed, two real peripherals), pre-boxed so
// the benchmark loop performs no interface-conversion allocations.
func sweepTasks() []load.Profile {
	return []load.Profile{
		load.NewUniform(50e-3, 20e-3),
		load.NewPulse(50e-3, 5e-3),
		load.Gesture(),
		load.BLERadio(),
	}
}

// batchScenarios is the 64-lane workload behind step/scalar-64 and
// step/batch-64: the evaluation catalogue's shapes — scan-heavy 1.1 s
// compute, two real peripherals and a sustained uniform — across a spread
// of launch voltages, all completing (a lane verdict is checked, not
// measured, here; the equivalence suite owns correctness).
func batchScenarios() []powersys.BatchScenario {
	profiles := []load.Profile{
		load.ComputeAccel(),
		load.BLERadio(),
		load.Gesture(),
		load.NewUniform(25e-3, 50e-3),
	}
	vstarts := []float64{2.56, 2.45, 2.3, 2.2}
	scens := make([]powersys.BatchScenario, 64)
	for i := range scens {
		scens[i] = powersys.BatchScenario{
			Profile: profiles[i%len(profiles)],
			VStart:  vstarts[(i/len(profiles))%len(vstarts)],
		}
	}
	return scens
}

func capybaraModel(cfg powersys.Config) core.PowerModel {
	return core.PowerModel{
		C:     cfg.Storage.TotalCapacitance(),
		ESR:   capacitor.Flat(cfg.Storage.Main().ESR),
		VOut:  cfg.Output.VOut,
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Eff:   cfg.Output.Efficiency,
	}
}

// record converts a testing.BenchmarkResult.
func record(name string, r testing.BenchmarkResult) Benchmark {
	return Benchmark{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// sweepOnce runs the end-to-end workload serially: brute-force ground truth
// plus a Culpeo-PG estimate for every task — the inner loop of the Figure 10
// grid, the thing the fast path and the cache exist to accelerate.
func sweepOnce(h *harness.Harness, pg profiler.PG, tasks []load.Profile) error {
	for _, task := range tasks {
		if _, err := h.GroundTruth(task); err != nil {
			return err
		}
		if _, err := pg.Estimate(task); err != nil {
			return err
		}
	}
	return nil
}

// Collect runs the benchmark suite and assembles the report. It takes on the
// order of ten seconds: each measurement self-calibrates to roughly one
// second of steady-state iteration.
func Collect() (*Report, error) {
	rep := &Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	// --- micro: one exact simulation step, both node-solver paths.
	single, err := powersys.New(powersys.Capybara())
	if err != nil {
		return nil, err
	}
	single.Monitor().Force(true)
	rep.Benchmarks = append(rep.Benchmarks, record("step/single-branch",
		testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				single.Step(10e-3, 1e-3)
			}
		})))

	net, err := capacitor.NewNetwork(
		&capacitor.Branch{Name: "main", C: 45e-3, ESR: 5, Voltage: 2.4},
		&capacitor.Branch{Name: "dec", C: 400e-6, ESR: 0.05, Voltage: 2.4},
	)
	if err != nil {
		return nil, err
	}
	cfg := powersys.Capybara()
	cfg.Storage = net
	multi, err := powersys.New(cfg)
	if err != nil {
		return nil, err
	}
	multi.Monitor().Force(true)
	rep.Benchmarks = append(rep.Benchmarks, record("step/multi-branch",
		testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				multi.Step(10e-3, 1e-3)
			}
		})))

	// --- micro: 64 scenarios, one-by-one on the scalar fast path versus one
	// SoA lockstep batch. Both sides re-prepare (charge / discharge / force)
	// and re-run per iteration; schedule compilation happens once outside
	// the loop, which is the batch API's contract — compile once, run many.
	scens := batchScenarios()
	base := powersys.Capybara()
	scalarSys := make([]*powersys.System, len(scens))
	for i := range scens {
		if scalarSys[i], err = powersys.New(powersys.Capybara()); err != nil {
			return nil, err
		}
	}
	var batchErr error
	scalarRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j, sc := range scens {
				sys := scalarSys[j]
				if err := sys.ChargeTo(base.VHigh); err != nil {
					batchErr = err
					b.Fatal(err)
				}
				if err := sys.DischargeTo(sc.VStart); err != nil {
					batchErr = err
					b.Fatal(err)
				}
				sys.Monitor().Force(true)
				if res := sys.Run(sc.Profile, powersys.RunOptions{Fast: true, SkipRebound: true}); res.Err != nil {
					batchErr = res.Err
					b.Fatal(res.Err)
				}
			}
		}
	})
	if batchErr != nil {
		return nil, batchErr
	}
	rep.Benchmarks = append(rep.Benchmarks, record("step/scalar-64", scalarRes))

	bs, err := powersys.NewBatch(base, scens)
	if err != nil {
		return nil, err
	}
	batchRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bs.Reset()
			for _, res := range bs.Run(powersys.BatchOptions{Fast: true, SkipRebound: true}) {
				if res.Err != nil {
					batchErr = res.Err
					b.Fatal(res.Err)
				}
			}
		}
	})
	if batchErr != nil {
		return nil, batchErr
	}
	rep.Benchmarks = append(rep.Benchmarks, record("step/batch-64", batchRes))
	scalarNs := float64(scalarRes.T.Nanoseconds()) / float64(scalarRes.N)
	batchNs := float64(batchRes.T.Nanoseconds()) / float64(batchRes.N)
	if batchNs > 0 {
		rep.BatchSpeedup = scalarNs / batchNs
	}

	// --- micro: Algorithm 1 direct versus memoized (warm line).
	model := capybaraModel(powersys.Capybara())
	tr := load.Sample(load.LoRa(), load.SampleRateDefault)
	rep.Benchmarks = append(rep.Benchmarks, record("vsafe/pg-direct",
		testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.VSafePG(model, tr); err != nil {
					b.Fatal(err)
				}
			}
		})))
	warm := core.NewVSafeCache(8)
	if _, err := warm.PG(model, tr); err != nil {
		return nil, err
	}
	rep.Benchmarks = append(rep.Benchmarks, record("vsafe/pg-cached",
		testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := warm.PG(model, tr); err != nil {
					b.Fatal(err)
				}
			}
		})))

	// --- macro: the end-to-end sweep, exact-uncached vs fast + warm cache.
	tasks := sweepTasks()
	exactH, err := harness.New(powersys.Capybara())
	if err != nil {
		return nil, err
	}
	exactPG := profiler.PG{Model: model, NoCache: true}
	var sweepErr error
	exactRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := sweepOnce(exactH, exactPG, tasks); err != nil {
				sweepErr = err
				b.Fatal(err)
			}
		}
	})
	if sweepErr != nil {
		return nil, sweepErr
	}
	rep.Benchmarks = append(rep.Benchmarks, record("sweep/exact-uncached", exactRes))

	fastH, err := harness.New(powersys.Capybara())
	if err != nil {
		return nil, err
	}
	fastH.Fast = true
	cache := core.NewVSafeCache(0)
	fastPG := profiler.PG{Model: model, Cache: cache}
	// Warm the cache: the recorded hit rate covers this one cold pass plus
	// every benchmark iteration, so it lands just under 1 — the deployment
	// regime the memo targets.
	if err := sweepOnce(fastH, fastPG, tasks); err != nil {
		return nil, err
	}
	fastRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := sweepOnce(fastH, fastPG, tasks); err != nil {
				sweepErr = err
				b.Fatal(err)
			}
		}
	})
	if sweepErr != nil {
		return nil, sweepErr
	}
	rep.Benchmarks = append(rep.Benchmarks, record("sweep/fast-warm-cache", fastRes))

	st := cache.Stats()
	rep.VSafeCache = CacheStats{Hits: st.Hits, Misses: st.Misses, HitRate: st.HitRate()}
	exactNs := float64(exactRes.T.Nanoseconds()) / float64(exactRes.N)
	fastNs := float64(fastRes.T.Nanoseconds()) / float64(fastRes.N)
	if fastNs > 0 {
		rep.FastPathSpeedup = exactNs / fastNs
	}

	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("benchrun: collected report invalid: %w", err)
	}
	return rep, nil
}

// Validate checks the report is well-formed — the gate `culpeo benchcheck`
// (and therefore `make bench`) applies to the committed artifact.
func (r *Report) Validate() error {
	switch {
	case r == nil:
		return fmt.Errorf("benchrun: nil report")
	case r.Schema != Schema:
		return fmt.Errorf("benchrun: schema %d, want %d", r.Schema, Schema)
	case r.GoVersion == "":
		return fmt.Errorf("benchrun: missing go_version")
	case r.NumCPU <= 0:
		return fmt.Errorf("benchrun: num_cpu %d", r.NumCPU)
	case len(r.Benchmarks) == 0:
		return fmt.Errorf("benchrun: no benchmarks")
	}
	required := map[string]bool{"step/batch-64": false, "step/scalar-64": false}
	for _, b := range r.Benchmarks {
		switch {
		case b.Name == "":
			return fmt.Errorf("benchrun: unnamed benchmark")
		case !(b.NsPerOp > 0) || math.IsInf(b.NsPerOp, 0):
			return fmt.Errorf("benchrun: %s: bad ns_per_op %v", b.Name, b.NsPerOp)
		case b.AllocsPerOp < 0 || b.BytesPerOp < 0:
			return fmt.Errorf("benchrun: %s: negative alloc figures", b.Name)
		case b.Iterations <= 0:
			return fmt.Errorf("benchrun: %s: iterations %d", b.Name, b.Iterations)
		}
		if _, ok := required[b.Name]; ok {
			required[b.Name] = true
		}
	}
	for name, seen := range required {
		if !seen {
			return fmt.Errorf("benchrun: schema %d report missing %s", Schema, name)
		}
	}
	if r.VSafeCache.HitRate < 0 || r.VSafeCache.HitRate > 1 || math.IsNaN(r.VSafeCache.HitRate) {
		return fmt.Errorf("benchrun: hit_rate %v outside [0,1]", r.VSafeCache.HitRate)
	}
	if !(r.FastPathSpeedup > 0) || math.IsInf(r.FastPathSpeedup, 0) {
		return fmt.Errorf("benchrun: bad fast_path_speedup %v", r.FastPathSpeedup)
	}
	if !(r.BatchSpeedup > 0) || math.IsInf(r.BatchSpeedup, 0) {
		return fmt.Errorf("benchrun: bad batch_speedup %v", r.BatchSpeedup)
	}
	if s := r.Serving; s != nil {
		switch {
		case !(s.ThroughputRPS > 0) || math.IsInf(s.ThroughputRPS, 0):
			return fmt.Errorf("benchrun: serving: bad throughput_rps %v", s.ThroughputRPS)
		case !(s.P50Ms > 0) || s.P99Ms < s.P50Ms || math.IsInf(s.P99Ms, 0):
			return fmt.Errorf("benchrun: serving: bad quantiles p50=%v p99=%v", s.P50Ms, s.P99Ms)
		case s.Requests == 0:
			return fmt.Errorf("benchrun: serving: zero requests")
		case s.Concurrency <= 0:
			return fmt.Errorf("benchrun: serving: concurrency %d", s.Concurrency)
		case !(s.DurationSec > 0):
			return fmt.Errorf("benchrun: serving: duration %v", s.DurationSec)
		case s.CacheHitRate < 0 || s.CacheHitRate > 1 || math.IsNaN(s.CacheHitRate):
			return fmt.Errorf("benchrun: serving: cache_hit_rate %v outside [0,1]", s.CacheHitRate)
		}
	}
	return nil
}

// Write serializes the report (indented, trailing newline — stable diffs).
func Write(path string, r *Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Read loads and validates a report.
func Read(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchrun: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("benchrun: %s: %w", path, err)
	}
	return &r, nil
}

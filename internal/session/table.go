// The sharded session table: the bounded-memory container for every live
// Session, plus the per-connection Subscriber queues the serving layer
// drains into SSE writes.
//
// Bounds, and where they come from:
//
//   - MaxSessions is a hard cap — the table refuses new devices (ErrFull)
//     rather than growing;
//   - each session's ring is allocated once at its fixed capacity;
//   - each attached connection gets one bounded event queue; a consumer
//     that cannot keep up is disconnected (slow-consumer kick) instead of
//     queueing without limit — the session itself survives and the client
//     resumes;
//   - detached sessions are evicted after IdleEpochs sweep epochs, and
//     closed tombstones after TombstoneEpochs (the tombstone window is the
//     terminal-event dedup horizon: a close retry inside it replays the
//     terminal instead of re-creating the session).
//
// Epochs rather than timers: AdvanceEpoch is the only clock. The serving
// layer drives it from one ticker (or a test drives it manually), each
// sweep touching every session once — no per-session timers, no goroutines
// here at all.
package session

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"culpeo/internal/api"
	"culpeo/internal/core"
	"culpeo/internal/journal"
)

// Defaults for Config's zero values.
const (
	DefaultShards          = 64
	DefaultMaxSessions     = 1 << 20
	DefaultRing            = 16
	DefaultQueue           = 16
	DefaultIdleEpochs      = 3
	DefaultTombstoneEpochs = 2
)

// Config tunes a Table. The zero value is serviceable.
type Config struct {
	// Shards is the lock-striping factor (<=0: DefaultShards).
	Shards int
	// MaxSessions caps live sessions, tombstones included (<=0:
	// DefaultMaxSessions).
	MaxSessions int
	// Ring is the observation-window capacity used when an open request
	// does not name one (<=0: DefaultRing; capped at api.MaxStreamRing).
	Ring int
	// Queue bounds each subscriber's event queue (<=0: DefaultQueue).
	Queue int
	// IdleEpochs evicts a detached, unclosed session after this many
	// sweeps without a touch (<=0: DefaultIdleEpochs).
	IdleEpochs int
	// TombstoneEpochs keeps a closed session's terminal replayable for
	// this many sweeps (<=0: DefaultTombstoneEpochs).
	TombstoneEpochs int
	// Margin is the template AdaptiveMargin each new session copies; the
	// zero value selects core.DefaultAdaptiveMargin.
	Margin *core.AdaptiveMargin
	// Journal, when non-nil, makes the table crash-durable: opens, resumes,
	// acknowledged folds, closes and sweep evictions are appended as
	// write-ahead records, and each mutating operation returns only after
	// its record is durable (group-commit batched). Nil is "-journal=off":
	// the table acknowledges from memory and a crash loses every session.
	Journal *journal.Journal
}

func (c *Config) defaults() {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.Ring <= 0 {
		c.Ring = DefaultRing
	}
	if c.Ring > api.MaxStreamRing {
		c.Ring = api.MaxStreamRing
	}
	if c.Queue <= 0 {
		c.Queue = DefaultQueue
	}
	if c.IdleEpochs <= 0 {
		c.IdleEpochs = DefaultIdleEpochs
	}
	if c.TombstoneEpochs <= 0 {
		c.TombstoneEpochs = DefaultTombstoneEpochs
	}
	if c.Margin == nil {
		c.Margin = core.DefaultAdaptiveMargin()
	}
}

// Event is one item a subscriber's writer drains: a heartbeat marker or an
// update frame.
type Event struct {
	Heartbeat bool
	Update    api.StreamUpdate
}

// Subscriber is one attached connection's view of a session. The serving
// layer selects over the three channels: Events carries updates and
// heartbeats (bounded; overflowing it kicks this subscriber), Terminal
// delivers at most one terminal update, and Done closes when the table
// detached this subscriber itself (superseded by a newer connection, or
// kicked as a slow consumer).
type Subscriber struct {
	Events   <-chan Event
	Terminal <-chan api.StreamUpdate
	Done     <-chan struct{}

	events   chan Event
	terminal chan api.StreamUpdate
	done     chan struct{}
	doneOnce sync.Once
	reason   string // why the table detached this subscriber; set before Done closes

	t    *Table
	sess *Session
}

// Reason reports why the table closed Done ("superseded", "slow-consumer",
// "drain"; "" if the subscriber was not table-detached). Valid only after
// Done is closed.
func (sub *Subscriber) Reason() string { return sub.reason }

func newSubscriber(t *Table, s *Session, queue int) *Subscriber {
	sub := &Subscriber{
		events:   make(chan Event, queue),
		terminal: make(chan api.StreamUpdate, 1),
		done:     make(chan struct{}),
		t:        t,
		sess:     s,
	}
	sub.Events, sub.Terminal, sub.Done = sub.events, sub.terminal, sub.done
	return sub
}

// close marks the subscriber dead. Safe to call more than once; caller
// holds the shard lock (or the session is unreachable).
func (sub *Subscriber) close() { sub.doneOnce.Do(func() { close(sub.done) }) }

// Detach releases the subscriber: the session stays (and keeps folding
// observations) but no longer has a connection to push to. Idempotent.
func (sub *Subscriber) Detach() {
	sh := sub.t.shardFor(sub.sess.device)
	sh.mu.Lock()
	if sub.sess.sub == sub {
		sub.sess.sub = nil
		sub.sess.touched = sub.t.epoch.Load()
	}
	sh.mu.Unlock()
	sub.close()
}

// Stats is the table's counter snapshot, embedded in /metrics.
type Stats struct {
	Live       int    `json:"live"`
	Attached   int    `json:"attached"`
	Epoch      uint64 `json:"epoch"`
	Opened     uint64 `json:"opened_total"`
	Resumed    uint64 `json:"resumed_total"`
	Rebuilt    uint64 `json:"rebuilt_total"`
	Closed     uint64 `json:"closed_total"`
	Evicted    uint64 `json:"evicted_total"`
	Reaped     uint64 `json:"tombstones_reaped_total"`
	Superseded uint64 `json:"superseded_total"`
	SlowKicked uint64 `json:"slow_kicked_total"`
	Rejected   uint64 `json:"rejected_total"`
	DupObs     uint64 `json:"duplicate_obs_total"`
	Heartbeats uint64 `json:"heartbeats_total"`
	Updates    uint64 `json:"updates_total"`
	Terminals  uint64 `json:"terminals_total"`
}

type shard struct {
	mu       sync.Mutex
	sessions map[string]*Session
}

// Table is the sharded session container. Safe for concurrent use.
type Table struct {
	cfg    Config
	shards []*shard
	count  atomic.Int64 // live sessions across shards (tombstones included)
	epoch  atomic.Uint64
	drain  atomic.Bool

	opened, resumed, rebuilt, closed   atomic.Uint64
	evicted, reaped, superseded        atomic.Uint64
	slowKicked, rejected, dupObs       atomic.Uint64
	heartbeats, updates, terminalsSent atomic.Uint64

	// wal is the optional write-ahead journal (Config.Journal);
	// walSinceSnap counts records enqueued since the last snapshot.
	wal          *journal.Journal
	walSinceSnap atomic.Uint64
}

// NewTable builds a Table.
func NewTable(cfg Config) *Table {
	cfg.defaults()
	t := &Table{cfg: cfg, shards: make([]*shard, cfg.Shards), wal: cfg.Journal}
	for i := range t.shards {
		t.shards[i] = &shard{sessions: make(map[string]*Session)}
	}
	return t
}

func (t *Table) shardFor(device string) *shard {
	h := fnv.New32a()
	h.Write([]byte(device))
	// Unsigned modulo: int(Sum32()) is negative for high hashes on 32-bit
	// platforms, and a negative index panics.
	return t.shards[h.Sum32()%uint32(len(t.shards))]
}

// SetDraining flips the drain flag: while set, Attach refuses new work
// with ErrDraining. DrainStreams does the disconnecting.
func (t *Table) SetDraining(v bool) { t.drain.Store(v) }

// Len returns the live session count (tombstones included).
func (t *Table) Len() int { return int(t.count.Load()) }

// Epoch returns the current sweep epoch.
func (t *Table) Epoch() uint64 { return t.epoch.Load() }

// AttachResult is the outcome of Attach: either a live subscription (Sub
// non-nil) with its snapshot update, or — for a session that already
// closed — the replayed terminal (Terminal true, Sub nil).
type AttachResult struct {
	Sub      *Subscriber
	Snapshot api.StreamUpdate
	Terminal bool
	Resumed  bool // an existing session was re-attached
	Rebuilt  bool // a fresh session was built from a non-empty replay
}

// Attach opens (or resumes) the device's session and subscribes the
// calling connection. Replay observations above the session's high-water
// mark are folded silently; the returned snapshot update carries the
// resulting state. A replay with an invalid observation fails the attach.
func (t *Table) Attach(device string, model core.PowerModel, ring int, replay []api.StreamObservation) (AttachResult, error) {
	return t.AttachSpec(device, model, nil, ring, replay)
}

// AttachSpec is Attach carrying the opaque power-spec blob the model was
// resolved from, journaled with the open record so recovery can re-resolve
// the model. When the table is journaled, a successful attach returns only
// after its record is durable.
func (t *Table) AttachSpec(device string, model core.PowerModel, spec []byte, ring int, replay []api.StreamObservation) (AttachResult, error) {
	if !api.ValidStreamDevice(device) {
		return AttachResult{}, fmt.Errorf("session: bad device %q", device)
	}
	if ring < 0 || ring > api.MaxStreamRing {
		return AttachResult{}, fmt.Errorf("session: ring %d outside [0, %d]", ring, api.MaxStreamRing)
	}
	if len(replay) > api.MaxStreamRing {
		return AttachResult{}, fmt.Errorf("session: replay of %d exceeds the %d-observation ring cap", len(replay), api.MaxStreamRing)
	}
	sh := t.shardFor(device)
	sh.mu.Lock()
	res, tk, err := t.attachLocked(sh, device, model, spec, ring, replay)
	sh.mu.Unlock()
	if err != nil {
		return AttachResult{}, err
	}
	if werr := waitJournal(tk); werr != nil {
		// The open/resume never became durable: it must not be
		// acknowledged. The in-memory session may be ahead of the journal
		// now, but nothing further will be acked either — the journal is
		// poisoned and every subsequent mutation fails the same way.
		if res.Sub != nil {
			res.Sub.Detach()
		}
		return AttachResult{}, werr
	}
	return res, nil
}

// attachLocked is AttachSpec's under-lock body. Caller holds sh.mu.
func (t *Table) attachLocked(sh *shard, device string, model core.PowerModel, spec []byte, ring int, replay []api.StreamObservation) (AttachResult, *journal.Ticket, error) {
	fp := model.Fingerprint()
	s, ok := sh.sessions[device]
	if ok {
		if s.modelFP != fp {
			return AttachResult{}, nil, fmt.Errorf("session: device %q already streaming with a different power model", device)
		}
		if ring != 0 && ring != cap(s.ring) {
			return AttachResult{}, nil, fmt.Errorf("session: device %q ring is %d, not %d", device, cap(s.ring), ring)
		}
		s.touched = t.epoch.Load()
		if s.closed {
			// Tombstone: replay the terminal so a close retry (or a client
			// that lost the original terminal mid-flight) converges on
			// exactly one outcome. Allowed even while draining — the replay
			// answers and ends in one response, it attaches nothing. No
			// journal record: nothing changed.
			return AttachResult{Snapshot: s.terminal, Terminal: true, Resumed: true}, nil, nil
		}
		if t.drain.Load() {
			// Refuse live resumes too, not just new devices: a resumed
			// subscriber attached after DrainStreams already swept would
			// hold the draining server's Shutdown open forever. The session
			// itself survives for a resume elsewhere (or after undrain).
			return AttachResult{}, nil, ErrDraining
		}
		if _, err := t.foldLocked(s, replay, true); err != nil {
			return AttachResult{}, nil, err
		}
		if s.sub != nil {
			s.sub.reason = "superseded"
			s.sub.close()
			s.sub = nil
			t.superseded.Add(1)
		}
		sub := newSubscriber(t, s, t.cfg.Queue)
		s.sub = sub
		t.resumed.Add(1)
		snap := s.update()
		tk := t.journalLocked(walRecord{T: "resume", Device: device, Obs: replay, EventSeq: snap.Seq})
		return AttachResult{Sub: sub, Snapshot: snap, Resumed: true}, tk, nil
	}

	if t.drain.Load() {
		return AttachResult{}, nil, ErrDraining
	}
	// Reserve the slot atomically (add-then-check, rolling back on
	// overflow): opens on different shards hold different locks, so a
	// check-then-add could overshoot MaxSessions by up to the shard count.
	if t.count.Add(1) > int64(t.cfg.MaxSessions) {
		t.count.Add(-1)
		t.rejected.Add(1)
		return AttachResult{}, nil, ErrFull
	}
	if ring == 0 {
		ring = t.cfg.Ring
	}
	s = &Session{
		device:  device,
		modelFP: fp,
		model:   model,
		spec:    spec,
		ring:    make([]entry, ring),
		margin:  *t.cfg.Margin,
		touched: t.epoch.Load(),
	}
	if _, err := t.foldLocked(s, replay, true); err != nil {
		t.count.Add(-1)
		return AttachResult{}, nil, err
	}
	sh.sessions[device] = s
	t.opened.Add(1)
	rebuilt := len(replay) > 0
	if rebuilt {
		t.rebuilt.Add(1)
	}
	sub := newSubscriber(t, s, t.cfg.Queue)
	s.sub = sub
	snap := s.update()
	tk := t.journalLocked(walRecord{T: "open", Device: device, Ring: ring, FP: fp, Spec: spec, Obs: replay, EventSeq: snap.Seq})
	return AttachResult{Sub: sub, Snapshot: snap, Rebuilt: rebuilt}, tk, nil
}

// FoldResult acknowledges a Fold.
type FoldResult struct {
	LastSeq    uint64
	Duplicates int
	Window     int
	Closed     bool
}

// Fold folds an observation batch into the device's session and publishes
// one update event to the attached subscriber (if any). Observations at or
// below the high-water mark are dropped as duplicates — retries are
// idempotent. close ends the session: the subscriber receives a terminal
// update and the session tombstones.
func (t *Table) Fold(device string, obs []api.StreamObservation, close bool) (FoldResult, error) {
	if !api.ValidStreamDevice(device) {
		return FoldResult{}, fmt.Errorf("session: bad device %q", device)
	}
	if len(obs) > api.MaxStreamObsBatch {
		return FoldResult{}, fmt.Errorf("session: batch of %d exceeds the %d cap", len(obs), api.MaxStreamObsBatch)
	}
	sh := t.shardFor(device)
	sh.mu.Lock()
	res, tk, err := t.foldApplyLocked(sh, device, obs, close)
	sh.mu.Unlock()
	if err != nil {
		return FoldResult{}, err
	}
	// The 200-ack gate: with a journal, the fold is acknowledged only once
	// its record is durable. The downlink update (already published above,
	// under the lock, to keep event ordering) may race ahead of the ack by
	// one event — a crash in that window is exactly what the client's
	// replay-on-reattach converges.
	if werr := waitJournal(tk); werr != nil {
		return FoldResult{}, werr
	}
	return res, nil
}

// foldApplyLocked is Fold's under-lock body. Caller holds sh.mu.
func (t *Table) foldApplyLocked(sh *shard, device string, obs []api.StreamObservation, close bool) (FoldResult, *journal.Ticket, error) {
	s, ok := sh.sessions[device]
	if !ok {
		return FoldResult{}, nil, ErrNoSession
	}
	s.touched = t.epoch.Load()
	if s.closed {
		// Idempotent retries only: every observation must be old news.
		for _, o := range obs {
			if o.Seq > s.lastObsSeq {
				return FoldResult{}, nil, ErrClosed
			}
		}
		t.dupObs.Add(uint64(len(obs)))
		return FoldResult{LastSeq: s.lastObsSeq, Duplicates: len(obs), Window: s.count, Closed: true}, nil, nil
	}

	dups, err := t.foldLocked(s, obs, false)
	if err != nil {
		return FoldResult{}, nil, err
	}
	res := FoldResult{LastSeq: s.lastObsSeq, Duplicates: dups, Window: s.count}
	if close {
		u := s.update()
		u.Final, u.Reason = true, "close"
		s.closed = true
		s.terminal = u
		t.closed.Add(1)
		res.Closed = true
		if s.sub != nil {
			t.terminalsSent.Add(1)
			s.sub.terminal <- u // cap 1, one terminal per subscriber: never blocks
		}
		tk := t.journalLocked(walRecord{T: "obs", Device: device, Obs: obs, Close: true, EventSeq: u.Seq})
		return res, tk, nil
	}
	if len(obs) > 0 {
		t.publishLocked(s, Event{Update: s.update()})
		tk := t.journalLocked(walRecord{T: "obs", Device: device, Obs: obs, EventSeq: s.eventSeq})
		return res, tk, nil
	}
	return res, nil, nil
}

// foldLocked validates and folds a batch, skipping duplicates. On a
// validation error nothing from the batch is folded (validate-all-first).
// Caller holds the shard lock.
func (t *Table) foldLocked(s *Session, obs []api.StreamObservation, replay bool) (dups int, err error) {
	resolved := make([]core.Observation, len(obs))
	last := s.lastObsSeq
	for i, o := range obs {
		if o.Seq == 0 {
			// Never a legitimate retry: sequence numbers start at 1.
			return 0, fmt.Errorf("session: observation %d: seq must be >= 1", i)
		}
		if o.Seq <= last {
			continue // duplicate: no validation, it was already accepted once
		}
		last = o.Seq
		if resolved[i], err = validateObservation(o); err != nil {
			return 0, fmt.Errorf("session: observation %d (seq %d): %w", i, o.Seq, err)
		}
	}
	for i, o := range obs {
		if o.Seq <= s.lastObsSeq {
			dups++
			continue
		}
		if err := s.fold(o, resolved[i]); err != nil {
			// Unreachable after validation, but fold must not half-apply.
			return dups, fmt.Errorf("session: observation %d (seq %d): %w", i, o.Seq, err)
		}
	}
	if dups > 0 && !replay {
		t.dupObs.Add(uint64(dups))
	}
	return dups, nil
}

// publishLocked enqueues an event on the session's subscriber. A full
// queue means the consumer is not draining its connection: heartbeats are
// simply skipped, updates kick the subscriber (the session survives; a
// resume gets a fresh snapshot). Caller holds the shard lock.
func (t *Table) publishLocked(s *Session, ev Event) {
	sub := s.sub
	if sub == nil {
		return
	}
	select {
	case sub.events <- ev:
		if ev.Heartbeat {
			t.heartbeats.Add(1)
		} else {
			t.updates.Add(1)
		}
	default:
		if !ev.Heartbeat {
			sub.reason = "slow-consumer"
			sub.close()
			s.sub = nil
			t.slowKicked.Add(1)
		}
	}
}

// Window returns a copy of the device's current observation window (oldest
// first) — the parity suites compare FoldWindow over it against the
// streamed estimate.
func (t *Table) Window(device string) ([]api.StreamObservation, error) {
	sh := t.shardFor(device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[device]
	if !ok {
		return nil, ErrNoSession
	}
	return s.window(), nil
}

// AdvanceEpoch runs one sweep: heartbeat every attached session, evict
// detached sessions idle for more than IdleEpochs, reap tombstones older
// than TombstoneEpochs. Returns (evicted, reaped) for this sweep.
func (t *Table) AdvanceEpoch() (evicted, reaped int) {
	epoch := t.epoch.Add(1)
	var tickets []*journal.Ticket
	for _, sh := range t.shards {
		sh.mu.Lock()
		for dev, s := range sh.sessions {
			if s.sub != nil {
				s.touched = epoch
				t.publishLocked(s, Event{Heartbeat: true})
				continue
			}
			idle := epoch - s.touched
			switch {
			case s.closed && idle > uint64(t.cfg.TombstoneEpochs):
				delete(sh.sessions, dev)
				t.count.Add(-1)
				reaped++
				if tk := t.journalLocked(walRecord{T: "evict", Device: dev, Reason: "reap"}); tk != nil {
					tickets = append(tickets, tk)
				}
			case !s.closed && idle > uint64(t.cfg.IdleEpochs):
				delete(sh.sessions, dev)
				t.count.Add(-1)
				evicted++
				if tk := t.journalLocked(walRecord{T: "evict", Device: dev, Reason: "idle"}); tk != nil {
					tickets = append(tickets, tk)
				}
			}
		}
		sh.mu.Unlock()
	}
	// Evictions must be durable before the sweep reports: otherwise a crash
	// could resurrect a session the server already told the world was gone.
	// A journal failure here is not surfaced — the next acknowledged fold
	// fails loudly on the same poisoned journal.
	for _, tk := range tickets {
		_ = tk.Wait()
	}
	t.evicted.Add(uint64(evicted))
	t.reaped.Add(uint64(reaped))
	return evicted, reaped
}

// DrainStreams disconnects every attached subscriber with a terminal
// update (reason "drain"). Sessions are not closed — a drained backend's
// devices resume elsewhere by replaying their ring tails. Returns how many
// subscribers were drained.
func (t *Table) DrainStreams() int {
	n := 0
	for _, sh := range t.shards {
		sh.mu.Lock()
		for _, s := range sh.sessions {
			sub := s.sub
			if sub == nil {
				continue
			}
			u := s.update()
			u.Final, u.Reason = true, "drain"
			select {
			case sub.terminal <- u:
				t.terminalsSent.Add(1)
			default: // a close terminal already occupies the slot
			}
			sub.reason = "drain"
			sub.close()
			s.sub = nil
			n++
		}
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters.
func (t *Table) Stats() Stats {
	attached := 0
	for _, sh := range t.shards {
		sh.mu.Lock()
		for _, s := range sh.sessions {
			if s.sub != nil {
				attached++
			}
		}
		sh.mu.Unlock()
	}
	return Stats{
		Live:       t.Len(),
		Attached:   attached,
		Epoch:      t.epoch.Load(),
		Opened:     t.opened.Load(),
		Resumed:    t.resumed.Load(),
		Rebuilt:    t.rebuilt.Load(),
		Closed:     t.closed.Load(),
		Evicted:    t.evicted.Load(),
		Reaped:     t.reaped.Load(),
		Superseded: t.superseded.Load(),
		SlowKicked: t.slowKicked.Load(),
		Rejected:   t.rejected.Load(),
		DupObs:     t.dupObs.Load(),
		Heartbeats: t.heartbeats.Load(),
		Updates:    t.updates.Load(),
		Terminals:  t.terminalsSent.Load(),
	}
}

package session

import (
	"errors"
	"math/rand"
	"testing"

	"culpeo/internal/api"
	"culpeo/internal/core"
	"culpeo/internal/journal"
)

// openJournal opens a journal in dir (no fsync: these tests exercise the
// record/replay logic, not disk durability).
func openJournal(t *testing.T, dir string) (*journal.Journal, journal.Recovery) {
	t.Helper()
	j, rec, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	return j, rec
}

// resolveTo returns a spec resolver that always yields m — the shape the
// serving layer passes when every session shares one power spec.
func resolveTo(m core.PowerModel) func([]byte) (core.PowerModel, error) {
	return func([]byte) (core.PowerModel, error) { return m, nil }
}

// replayInto closes the journal, reopens it, and replays into a fresh
// table with cfg (Journal unset: the replayed table is inspected, not
// written through).
func replayInto(t *testing.T, dir string, j *journal.Journal, cfg Config, m core.PowerModel) (*Table, RecoverStats) {
	t.Helper()
	if err := j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	j2, rec := openJournal(t, dir)
	t.Cleanup(func() { j2.Close() })
	cfg.Journal = nil
	tbl := NewTable(cfg)
	st, err := tbl.Replay(rec, resolveTo(m))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return tbl, st
}

// wantSameUpdate asserts two stream updates are bit-identical — every
// float compared through Float64bits, every counter exactly equal.
func wantSameUpdate(t *testing.T, label string, got, want api.StreamUpdate) {
	t.Helper()
	if got.Seq != want.Seq || got.ObsSeq != want.ObsSeq || got.Window != want.Window ||
		got.Final != want.Final || got.Reason != want.Reason {
		t.Fatalf("%s: update mismatch:\n got %+v\nwant %+v", label, got, want)
	}
	for _, f := range [][3]interface{}{
		{"v_safe", got.VSafe, want.VSafe},
		{"v_delta", got.VDelta, want.VDelta},
		{"v_e", got.VE, want.VE},
		{"margin", got.Margin, want.Margin},
		{"launch", got.Launch, want.Launch},
	} {
		if !sameBits(f[1].(float64), f[2].(float64)) {
			t.Fatalf("%s: %s not bit-exact: %x vs %x", label, f[0], f[1], f[2])
		}
	}
}

// sessState is a white-box copy of one session's recovery-relevant state.
type sessState struct {
	lastObsSeq uint64
	eventSeq   uint64
	estSeq     uint64
	haveEst    bool
	closed     bool
	est        core.Estimate
	margin     float64
	terminal   api.StreamUpdate
	window     []api.StreamObservation
}

// captureState snapshots a session without touching it (no event seq is
// consumed), so pre-crash and post-replay state can be compared exactly.
func captureState(t *testing.T, tbl *Table, dev string) sessState {
	t.Helper()
	sh := tbl.shardFor(dev)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[dev]
	if !ok {
		t.Fatalf("no session for %s", dev)
	}
	return sessState{
		lastObsSeq: s.lastObsSeq,
		eventSeq:   s.eventSeq,
		estSeq:     s.estSeq,
		haveEst:    s.haveEst,
		closed:     s.closed,
		est:        s.est,
		margin:     s.margin.Margin(),
		terminal:   s.terminal,
		window:     s.window(),
	}
}

// wantSameState asserts a recovered session is bit-identical to the
// pre-crash one.
func wantSameState(t *testing.T, dev string, got, want sessState) {
	t.Helper()
	if got.lastObsSeq != want.lastObsSeq || got.eventSeq != want.eventSeq ||
		got.estSeq != want.estSeq || got.haveEst != want.haveEst || got.closed != want.closed {
		t.Fatalf("%s: state mismatch:\n got %+v\nwant %+v", dev, got, want)
	}
	if !sameBits(got.est.VSafe, want.est.VSafe) || !sameBits(got.est.VDelta, want.est.VDelta) ||
		!sameBits(got.est.VE, want.est.VE) || !sameBits(got.margin, want.margin) {
		t.Fatalf("%s: estimate/margin not bit-exact:\n got %+v\nwant %+v", dev, got, want)
	}
	if len(got.window) != len(want.window) {
		t.Fatalf("%s: window %d vs %d", dev, len(got.window), len(want.window))
	}
	for i := range want.window {
		if got.window[i] != want.window[i] {
			t.Fatalf("%s: window[%d] %+v vs %+v", dev, i, got.window[i], want.window[i])
		}
	}
	if want.closed {
		wantSameUpdate(t, dev+" terminal", got.terminal, want.terminal)
	}
}

// TestReplayBitExact is the core recovery gate: fold seeded traffic into a
// journaled table, "crash" (drop the table, keep the files), replay, and
// demand the recovered sessions be bit-identical — window contents, running
// estimate, adaptive margin, and both sequence counters.
func TestReplayBitExact(t *testing.T) {
	m := testModel(t)
	dir := t.TempDir()
	j, _ := openJournal(t, dir)
	cfg := Config{Ring: 8}
	cfg.Journal = j
	tbl := NewTable(cfg)

	rng := rand.New(rand.NewSource(42))
	devices := []string{"dev-a", "dev-b", "dev-c"}
	seqs := map[string]uint64{}
	for _, dev := range devices {
		res, err := tbl.Attach(dev, m, 0, nil)
		if err != nil {
			t.Fatalf("attach %s: %v", dev, err)
		}
		res.Sub.Detach() // no downlink: folds still consume event seqs
	}
	for step := 0; step < 30; step++ {
		dev := devices[rng.Intn(len(devices))]
		n := 1 + rng.Intn(3)
		batch := make([]api.StreamObservation, n)
		for i := range batch {
			seqs[dev]++
			batch[i] = genObs(rng, seqs[dev])
		}
		if _, err := tbl.Fold(dev, batch, false); err != nil {
			t.Fatalf("fold %s: %v", dev, err)
		}
	}
	// Close one device so recovery must also carry a tombstone + terminal.
	seqs["dev-c"]++
	if _, err := tbl.Fold("dev-c", []api.StreamObservation{genObs(rng, seqs["dev-c"])}, true); err != nil {
		t.Fatalf("close dev-c: %v", err)
	}

	orig := map[string]sessState{}
	for _, dev := range devices {
		orig[dev] = captureState(t, tbl, dev)
	}

	rtbl, st := replayInto(t, dir, j, Config{Ring: 8}, m)
	if st.Sessions != 2 || st.Tombstones != 1 || st.Skipped != 0 {
		t.Fatalf("recover stats: %+v", st)
	}
	if st.FromSnapshot != 0 {
		t.Fatalf("no snapshot was taken, yet FromSnapshot = %d", st.FromSnapshot)
	}

	for _, dev := range devices {
		rec := captureState(t, rtbl, dev)
		wantSameState(t, dev, rec, orig[dev])
		// FoldWindow is the third leg of the parity: the from-scratch
		// reference over the recovered window must match the recovered
		// incremental estimate bit-exactly.
		if len(rec.window) > 0 && rec.haveEst {
			ref, ok, err := FoldWindow(m, rec.window)
			if err != nil || !ok {
				t.Fatalf("%s: FoldWindow: %v", dev, err)
			}
			if !sameBits(ref.VSafe, rec.est.VSafe) {
				t.Fatalf("%s: recovered VSafe diverges from FoldWindow reference", dev)
			}
		}
	}
}

// TestReplayFromSnapshot covers the compacted path: snapshot mid-stream,
// fold more, crash, recover — pre-snapshot state comes from the image,
// post-snapshot records replay on top, and the result is still bit-exact.
func TestReplayFromSnapshot(t *testing.T) {
	m := testModel(t)
	dir := t.TempDir()
	j, _ := openJournal(t, dir)
	cfg := Config{Ring: 4}
	cfg.Journal = j
	tbl := NewTable(cfg)

	rng := rand.New(rand.NewSource(9))
	res, err := tbl.Attach("dev-snap", m, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Sub.Detach()
	seq := uint64(0)
	fold := func(n int) {
		batch := make([]api.StreamObservation, n)
		for i := range batch {
			seq++
			batch[i] = genObs(rng, seq)
		}
		if _, err := tbl.Fold("dev-snap", batch, false); err != nil {
			t.Fatal(err)
		}
	}
	fold(6) // wraps the 4-slot ring before the snapshot
	if err := tbl.JournalSnapshot(); err != nil {
		t.Fatalf("JournalSnapshot: %v", err)
	}
	if got := tbl.JournalAppendsSinceSnapshot(); got != 0 {
		t.Fatalf("appends since snapshot = %d after snapshot", got)
	}
	fold(3) // wraps again on top of the restored image
	orig := captureState(t, tbl, "dev-snap")

	rtbl, st := replayInto(t, dir, j, Config{Ring: 4}, m)
	if st.FromSnapshot != 1 || st.Sessions != 1 || st.Skipped != 0 {
		t.Fatalf("recover stats: %+v", st)
	}
	rec := captureState(t, rtbl, "dev-snap")
	wantSameState(t, "dev-snap", rec, orig)

	if len(rec.window) != 4 {
		t.Fatalf("recovered window: %d slots, want 4", len(rec.window))
	}
	ref, ok, err := FoldWindow(m, rec.window)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if !sameBits(ref.VSafe, rec.est.VSafe) {
		t.Fatal("snapshot-restored estimate diverges from FoldWindow")
	}
}

// TestReplayEviction: sessions the sweeper evicted (idle) or reaped
// (tombstone) before the crash must stay gone after replay — the evict
// records beat the earlier open/obs records.
func TestReplayEviction(t *testing.T) {
	cases := []struct {
		name  string
		close bool // close the session first (tombstone reap) or leave it idle
	}{
		{"idle-evicted", false},
		{"tombstone-reaped", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := testModel(t)
			dir := t.TempDir()
			j, _ := openJournal(t, dir)
			cfg := Config{Ring: 4, IdleEpochs: 1, TombstoneEpochs: 1}
			cfg.Journal = j
			tbl := NewTable(cfg)

			res, err := tbl.Attach("dev-gone", m, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			if _, err := tbl.Fold("dev-gone", []api.StreamObservation{genObs(rng, 1)}, tc.close); err != nil {
				t.Fatal(err)
			}
			res.Sub.Detach()
			for i := 0; i < 3; i++ {
				tbl.AdvanceEpoch()
			}
			if tbl.Len() != 0 {
				t.Fatalf("session survived the sweeps: len=%d", tbl.Len())
			}

			rtbl, st := replayInto(t, dir, j, cfg, m)
			if st.Sessions != 0 || st.Tombstones != 0 {
				t.Fatalf("evicted session resurrected by replay: %+v", st)
			}
			if _, err := rtbl.Fold("dev-gone", []api.StreamObservation{genObs(rng, 2)}, false); !errors.Is(err, ErrNoSession) {
				t.Fatalf("fold after replay = %v, want ErrNoSession", err)
			}
		})
	}
}

// TestReplayCloseRetry: a close acknowledged before the crash must stay
// at-most-once after recovery — the retry is answered idempotently from the
// recovered tombstone, new observations are refused, and a re-attach
// replays the identical terminal.
func TestReplayCloseRetry(t *testing.T) {
	m := testModel(t)
	dir := t.TempDir()
	j, _ := openJournal(t, dir)
	cfg := Config{Ring: 4}
	cfg.Journal = j
	tbl := NewTable(cfg)

	if _, err := tbl.Attach("dev-close", m, 0, nil); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	batch := []api.StreamObservation{genObs(rng, 1), genObs(rng, 2)}
	closeRes, err := tbl.Fold("dev-close", batch, true)
	if err != nil || !closeRes.Closed {
		t.Fatalf("close: %+v, %v", closeRes, err)
	}
	origTerm := captureState(t, tbl, "dev-close").terminal

	rtbl, st := replayInto(t, dir, j, cfg, m)
	if st.Tombstones != 1 {
		t.Fatalf("recover stats: %+v", st)
	}

	// The client's close retry lands on the recovered backend.
	retry, err := rtbl.Fold("dev-close", batch, true)
	if err != nil {
		t.Fatalf("close retry: %v", err)
	}
	if !retry.Closed || retry.Duplicates != len(batch) || retry.LastSeq != closeRes.LastSeq {
		t.Fatalf("close retry not idempotent: %+v vs %+v", retry, closeRes)
	}
	// Fresh observations must still be refused — closed is closed.
	if _, err := rtbl.Fold("dev-close", []api.StreamObservation{genObs(rng, 9)}, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("new obs after recovered close = %v, want ErrClosed", err)
	}
	// And a re-attach replays the exact terminal the crashed server minted
	// (the recovered table is unjournaled, so Attach works post-crash).
	res, err := rtbl.Attach("dev-close", m, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminal {
		t.Fatal("recovered attach did not replay the terminal")
	}
	wantSameUpdate(t, "terminal", res.Snapshot, origTerm)
}

// TestReplaySupersede: a device that reconnected (superseding its old
// subscriber) journals resume records; replay must land on one session
// with the latest event sequence, not two or a stale counter.
func TestReplaySupersede(t *testing.T) {
	m := testModel(t)
	dir := t.TempDir()
	j, _ := openJournal(t, dir)
	cfg := Config{Ring: 4}
	cfg.Journal = j
	tbl := NewTable(cfg)

	rng := rand.New(rand.NewSource(11))
	if _, err := tbl.Attach("dev-super", m, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Fold("dev-super", []api.StreamObservation{genObs(rng, 1)}, false); err != nil {
		t.Fatal(err)
	}
	// Second attach supersedes the first; replay a stale tail alongside a
	// fresh observation, exactly like a reconnecting client.
	if _, err := tbl.Attach("dev-super", m, 0, []api.StreamObservation{genObs(rng, 2)}); err != nil {
		t.Fatal(err)
	}

	orig := captureState(t, tbl, "dev-super")
	rtbl, st := replayInto(t, dir, j, cfg, m)
	if st.Sessions != 1 || st.Skipped != 0 {
		t.Fatalf("recover stats: %+v", st)
	}
	wantSameState(t, "dev-super", captureState(t, rtbl, "dev-super"), orig)
}

// TestReplayGuards: replay refuses misuse and skips what it cannot verify.
func TestReplayGuards(t *testing.T) {
	m := testModel(t)

	t.Run("non-empty-table", func(t *testing.T) {
		tbl := NewTable(Config{})
		if _, err := tbl.Attach("dev", m, 0, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := tbl.Replay(journal.Recovery{}, resolveTo(m)); err == nil {
			t.Fatal("replay into a non-empty table succeeded")
		}
	})
	t.Run("nil-resolver", func(t *testing.T) {
		if _, err := NewTable(Config{}).Replay(journal.Recovery{}, nil); err == nil {
			t.Fatal("replay with nil resolver succeeded")
		}
	})
	t.Run("fingerprint-mismatch", func(t *testing.T) {
		dir := t.TempDir()
		j, _ := openJournal(t, dir)
		cfg := Config{Ring: 4}
		cfg.Journal = j
		tbl := NewTable(cfg)
		if _, err := tbl.Attach("dev-fp", m, 0, nil); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, rec := openJournal(t, dir)
		defer j2.Close()
		other := m
		other.VOff += 0.01 // different model, different fingerprint
		rtbl := NewTable(Config{Ring: 4})
		st, err := rtbl.Replay(rec, resolveTo(other))
		if err != nil {
			t.Fatal(err)
		}
		if st.Skipped == 0 || st.Sessions != 0 {
			t.Fatalf("fingerprint mismatch not skipped: %+v", st)
		}
	})
	t.Run("undecodable-record", func(t *testing.T) {
		rtbl := NewTable(Config{})
		st, err := rtbl.Replay(journal.Recovery{Records: [][]byte{[]byte("not json")}}, resolveTo(m))
		if err != nil {
			t.Fatal(err)
		}
		if st.Skipped != 1 || st.Records != 1 {
			t.Fatalf("stats: %+v", st)
		}
	})
	t.Run("wrong-snapshot-version", func(t *testing.T) {
		rtbl := NewTable(Config{})
		st, err := rtbl.Replay(journal.Recovery{Snapshot: []byte(`{"v":999}`)}, resolveTo(m))
		if err != nil {
			t.Fatal(err)
		}
		if st.Skipped != 1 {
			t.Fatalf("stats: %+v", st)
		}
	})
}

// TestJournalPoisonFailsFold: once the journal is closed underneath the
// table (standing in for a dead disk), acknowledged mutations must fail
// loudly instead of acking from memory.
func TestJournalPoisonFailsFold(t *testing.T) {
	m := testModel(t)
	dir := t.TempDir()
	j, _ := openJournal(t, dir)
	cfg := Config{Ring: 4}
	cfg.Journal = j
	tbl := NewTable(cfg)
	if _, err := tbl.Attach("dev-poison", m, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := tbl.Fold("dev-poison", []api.StreamObservation{genObs(rng, 1)}, false); err == nil {
		t.Fatal("fold acknowledged without a durable record")
	} else if !errors.Is(err, journal.ErrClosed) {
		t.Fatalf("fold error = %v, want wrapped journal.ErrClosed", err)
	}
	if _, err := tbl.Attach("dev-late", m, 0, nil); err == nil {
		t.Fatal("attach acknowledged without a durable record")
	}
}

// Package session is the sessionized streaming tier behind /v1/stream: one
// Session per connected device, holding a fixed-size ring of Culpeo-R
// voltage observations and the running worst-case V_safe estimate over
// that window, plus the device's core.AdaptiveMargin. Sessions live in a
// sharded Table with epoch-based idle eviction and hard caps (MaxSessions,
// bounded per-connection write queues with slow-consumer disconnect), so
// the tier's memory is provably bounded no matter how many devices flap.
//
// The estimate invariant — pinned by the parity suites — is that the
// incremental ring fold always equals FoldWindow (a from-scratch
// core.VSafeR fold over the same window) bit-exactly, including after a
// reconnect rebuilt the session from the client's replayed ring tail.
package session

import (
	"errors"
	"fmt"
	"math"

	"culpeo/internal/api"
	"culpeo/internal/core"
)

// Sentinel errors the serving layer maps onto HTTP statuses.
var (
	// ErrFull: the table is at MaxSessions (503 + Retry-After).
	ErrFull = errors.New("session: table full")
	// ErrDraining: the server is draining; open elsewhere (503).
	ErrDraining = errors.New("session: draining")
	// ErrNoSession: no session for the device — the client should
	// reconnect with a replay to rebuild it (404).
	ErrNoSession = errors.New("session: no such session")
	// ErrClosed: new observations offered to a closed session (409).
	ErrClosed = errors.New("session: closed")
)

// entry is one ring slot: the observation and its Culpeo-R estimate
// (computed once on entry, so the sliding-max fold never recomputes it).
type entry struct {
	obs api.StreamObservation
	est core.Estimate
}

// Session is one device's streaming state. All fields are guarded by the
// owning shard's mutex — the table's operations are the only access path.
type Session struct {
	device  string
	modelFP uint64
	model   core.PowerModel
	// spec is the opaque power-spec blob the session was opened with
	// (journaled so recovery can re-resolve the model; nil when the
	// embedder attached without one).
	spec []byte

	// ring is the fixed-capacity observation window: a circular buffer of
	// the last cap(ring) folded observations.
	ring  []entry
	head  int // index of the oldest entry
	count int

	lastObsSeq uint64 // observation high-water mark (dedup horizon)
	eventSeq   uint64 // downlink update-event counter

	// est is the running window estimate: the maximum-V_safe observation's
	// estimate, tracked incrementally; estSeq is that observation's Seq so
	// the fold knows when the argmax left the window.
	est     core.Estimate
	estSeq  uint64
	haveEst bool

	margin core.AdaptiveMargin

	closed   bool
	terminal api.StreamUpdate // valid once closed: replayed to late resumes

	sub     *Subscriber // attached connection (nil when detached)
	touched uint64      // epoch of last attach/fold/detach (idle eviction)
}

// Device returns the session's device identifier.
func (s *Session) Device() string { return s.device }

// validateObservation is the wire→core check shared by fold and replay:
// finite voltages, physical ordering, a real sequence number.
func validateObservation(o api.StreamObservation) (core.Observation, error) {
	if o.Seq == 0 {
		return core.Observation{}, errors.New("observation seq must be >= 1")
	}
	obs := core.Observation{VStart: o.VStart, VMin: o.VMin, VFinal: o.VFinal}
	if !isFinite(o.VStart) || !isFinite(o.VMin) || !isFinite(o.VFinal) {
		return obs, errors.New("non-finite voltage")
	}
	if err := obs.Validate(); err != nil {
		return obs, err
	}
	return obs, nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// fold pushes one validated observation (seq strictly above lastObsSeq)
// into the ring and updates the running estimate and margin. Caller holds
// the shard lock.
func (s *Session) fold(o api.StreamObservation, obs core.Observation) error {
	est, err := core.VSafeR(s.model, obs)
	if err != nil {
		return err
	}
	evictedArgmax := false
	if s.count == cap(s.ring) {
		if s.ring[s.head].obs.Seq == s.estSeq {
			evictedArgmax = true
		}
		s.head = (s.head + 1) % cap(s.ring)
		s.count--
	}
	s.ring[(s.head+s.count)%cap(s.ring)] = entry{obs: o, est: est}
	s.count++
	s.lastObsSeq = o.Seq

	switch {
	case !s.haveEst:
		s.est, s.estSeq, s.haveEst = est, o.Seq, true
	case evictedArgmax:
		// The window maximum left the ring: refold oldest→newest. The
		// strict > keeps the first of equal maxima, exactly as FoldWindow
		// does, so the incremental and from-scratch folds stay bit-equal.
		s.est, s.estSeq = s.ring[s.head].est, s.ring[s.head].obs.Seq
		for i := 1; i < s.count; i++ {
			e := s.ring[(s.head+i)%cap(s.ring)]
			if e.est.VSafe > s.est.VSafe {
				s.est, s.estSeq = e.est, e.obs.Seq
			}
		}
	case est.VSafe > s.est.VSafe:
		s.est, s.estSeq = est, o.Seq
	}

	if o.Failed {
		s.margin.Failure()
	} else {
		s.margin.Success()
	}
	return nil
}

// update builds the next downlink event from the current state, consuming
// one event sequence number. Caller holds the shard lock.
func (s *Session) update() api.StreamUpdate {
	s.eventSeq++
	u := api.StreamUpdate{
		Seq:    s.eventSeq,
		ObsSeq: s.lastObsSeq,
		Window: s.count,
		Margin: s.margin.Margin(),
	}
	if s.haveEst {
		u.VSafe, u.VDelta, u.VE = s.est.VSafe, s.est.VDelta, s.est.VE
		u.Launch = u.VSafe + u.Margin
	}
	return u
}

// window copies the current observation window, oldest first.
func (s *Session) window() []api.StreamObservation {
	out := make([]api.StreamObservation, 0, s.count)
	for i := 0; i < s.count; i++ {
		out = append(out, s.ring[(s.head+i)%cap(s.ring)].obs)
	}
	return out
}

// FoldWindow is the from-scratch reference the incremental session fold
// must match bit-exactly: evaluate core.VSafeR for every observation in
// window order and keep the first maximum-V_safe estimate (strict >). The
// zero Estimate (ok=false) means an empty window.
func FoldWindow(m core.PowerModel, window []api.StreamObservation) (core.Estimate, bool, error) {
	var (
		best core.Estimate
		have bool
	)
	for i, o := range window {
		obs, err := validateObservation(o)
		if err != nil {
			return core.Estimate{}, false, fmt.Errorf("session: window[%d]: %w", i, err)
		}
		est, err := core.VSafeR(m, obs)
		if err != nil {
			return core.Estimate{}, false, fmt.Errorf("session: window[%d]: %w", i, err)
		}
		if !have || est.VSafe > best.VSafe {
			best, have = est, true
		}
	}
	return best, have, nil
}

// FoldMargin is the margin counterpart of FoldWindow: fold the
// failure/success flags of a window into a fresh copy of the template
// margin, exactly as a session rebuild does.
func FoldMargin(template core.AdaptiveMargin, window []api.StreamObservation) core.AdaptiveMargin {
	m := template
	for _, o := range window {
		if o.Failed {
			m.Failure()
		} else {
			m.Success()
		}
	}
	return m
}

// LoadGen: the closed-loop streaming soak. It drives N device sessions
// through the full lifecycle — open, stream observations, detach (sessions
// stay resident server-side), resume, close — through whatever backends
// (usually netchaos-flapped proxies) it is pointed at, and verifies the
// tier's three load-bearing promises on every single session:
//
//   - estimate parity: every streamed estimate (snapshots, updates and the
//     terminal) equals FoldWindow — a from-scratch core.VSafeR fold — over
//     the client's replay tail, bit-exactly (math.Float64bits), reconnects
//     and rebuilds included;
//   - exactly-once terminals: each session's close terminal is delivered
//     exactly once (tombstone replays dedupe client-side);
//   - bounded memory: with all N sessions resident but detached, heap per
//     session stays under a ceiling the caller asserts.
//
// The generator lives here rather than in internal/expt so `culpeo
// streamtest` and the expt soak share one implementation.
package session

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/client"
	"culpeo/internal/core"
)

// LoadGenOpts configures a soak run. Zero values select the reduced-soak
// defaults noted per field.
type LoadGenOpts struct {
	// Backends are the stream-serving base URLs (typically chaos proxies).
	Backends []string
	// Direct is a no-chaos base URL for the batch /v1/vsafe-r parity
	// sample ("" skips the HTTP parity check).
	Direct string
	// Sessions is the device count (<=0: 1000).
	Sessions int
	// Workers bounds concurrently active devices (<=0: 64). Detached
	// sessions don't hold connections, so N sessions need only Workers
	// sockets — that is the point of the sessionized design.
	Workers int
	// Obs is the observations per session, split across the two phases
	// (<=0: 16).
	Obs int
	// Batch is observations per upload (<=0: 4).
	Batch int
	// Ring is the session window size (<=0: client default).
	Ring int
	// Seed fixes every device's observation generator.
	Seed int64
	// ParitySample is how many devices also get the HTTP parity check
	// against per-observation /v1/vsafe-r calls on Direct (<=0: 16).
	ParitySample int
	// Model is the local reference model — it must resolve identically to
	// Power on the server (the parity gates enforce exactly that).
	Model core.PowerModel
	// Power is the wire spec sent in every open request.
	Power api.PowerSpec
	// Margin is the server's session-margin template (DefaultAdaptiveMargin
	// unless the server was configured otherwise).
	Margin core.AdaptiveMargin
	// Client tunes the shared pool; Backends is overridden.
	Client client.Config
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// LoadGenResult is the soak's verdict material.
type LoadGenResult struct {
	Sessions  int      `json:"sessions"`
	Completed int      `json:"completed"`
	FailedN   int      `json:"failed"`
	Failed    []string `json:"failed_devices,omitempty"` // capped sample

	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	P99EventMs   float64 `json:"p99_event_ms"`

	Terminals    int `json:"terminals"`
	DupTerminals int `json:"dup_terminals"` // deduped tombstone replays (informational)
	Reconnects   int `json:"reconnects"`
	Rebuilds     int `json:"rebuilds"`
	Kicked       int `json:"kicked"`

	ParityChecked        int `json:"parity_checked"`
	ParityMismatches     int `json:"parity_mismatches"`
	MarginChecked        int `json:"margin_checked"`
	MarginMismatches     int `json:"margin_mismatches"`
	HTTPParityChecked    int `json:"http_parity_checked"`
	HTTPParityMismatches int `json:"http_parity_mismatches"`

	BaseHeapBytes       uint64  `json:"base_heap_bytes"`
	PeakHeapBytes       uint64  `json:"peak_heap_bytes"`
	HeapPerSessionBytes float64 `json:"heap_per_session_bytes"`
	DurationSec         float64 `json:"duration_sec"`
}

// devState is one device's cross-phase state.
type devState struct {
	stream   *client.Stream
	rng      *rand.Rand
	margin   core.AdaptiveMargin // mirror of the server session's margin
	rebuilds int                 // stream rebuild count last synced
	failed   bool
}

// loadRun carries the shared soak state.
type loadRun struct {
	opts   LoadGenOpts
	pool   *client.Pool
	direct *client.Pool
	devs   []devState

	mu        sync.Mutex
	events    int
	latencies []float64 // ms
	failures  []string
	res       LoadGenResult
}

func (r *loadRun) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

func (r *loadRun) fail(dev string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.res.FailedN++
	if len(r.failures) < 20 {
		r.failures = append(r.failures, fmt.Sprintf("%s: %v", dev, err))
	}
}

// LoadGen runs the soak. Every per-session invariant violation is counted
// in the result; the caller gates on the counts.
func LoadGen(ctx context.Context, opts LoadGenOpts) (LoadGenResult, error) {
	if len(opts.Backends) == 0 {
		return LoadGenResult{}, fmt.Errorf("session: loadgen needs backends")
	}
	if opts.Sessions <= 0 {
		opts.Sessions = 1000
	}
	if opts.Workers <= 0 {
		opts.Workers = 64
	}
	if opts.Obs <= 0 {
		opts.Obs = 16
	}
	if opts.Batch <= 0 {
		opts.Batch = 4
	}
	if opts.ParitySample <= 0 {
		opts.ParitySample = 16
	}
	ccfg := opts.Client
	ccfg.Backends = opts.Backends
	pool, err := client.New(ccfg)
	if err != nil {
		return LoadGenResult{}, err
	}
	defer pool.Close()
	r := &loadRun{opts: opts, pool: pool, devs: make([]devState, opts.Sessions)}
	r.res.Sessions = opts.Sessions
	if opts.Direct != "" {
		dcfg := client.Config{Backends: []string{opts.Direct}, Seed: opts.Seed + 1}
		r.direct, err = client.New(dcfg)
		if err != nil {
			return LoadGenResult{}, err
		}
		defer r.direct.Close()
	}
	for i := range r.devs {
		r.devs[i].rng = rand.New(rand.NewSource(opts.Seed ^ (int64(i)*2654435761 + 1)))
		r.devs[i].margin = opts.Margin
	}

	r.res.BaseHeapBytes = heapNow()
	start := time.Now()

	r.sweep(ctx, "phase1", r.phase1)

	// All sessions resident, zero connections held: this is the bounded-
	// memory measurement point the soak gates on.
	r.res.PeakHeapBytes = heapNow()
	if d := int64(r.res.PeakHeapBytes) - int64(r.res.BaseHeapBytes); d > 0 {
		r.res.HeapPerSessionBytes = float64(d) / float64(opts.Sessions)
	}
	r.logf("phase1 done: %d sessions resident, heap %d -> %d bytes (%.0f B/session)",
		opts.Sessions, r.res.BaseHeapBytes, r.res.PeakHeapBytes, r.res.HeapPerSessionBytes)

	r.sweep(ctx, "phase2", r.phase2)

	r.res.DurationSec = time.Since(start).Seconds()
	r.mu.Lock()
	r.res.Events = r.events
	r.res.Failed = r.failures
	if r.res.DurationSec > 0 {
		r.res.EventsPerSec = float64(r.events) / r.res.DurationSec
	}
	sort.Float64s(r.latencies)
	if n := len(r.latencies); n > 0 {
		idx := (99 * n) / 100
		if idx >= n {
			idx = n - 1
		}
		r.res.P99EventMs = r.latencies[idx]
	}
	r.mu.Unlock()
	for i := range r.devs {
		st := r.devs[i].stream
		if st == nil {
			continue
		}
		ss := st.Stats()
		r.res.Reconnects += ss.Reconnects
		r.res.Rebuilds += ss.Rebuilds
		r.res.DupTerminals += ss.DupTerminals
		r.res.Kicked += ss.Kicked
	}
	return r.res, nil
}

// sweep runs fn over every non-failed device with bounded concurrency.
func (r *loadRun) sweep(ctx context.Context, name string, fn func(ctx context.Context, idx int) error) {
	sem := make(chan struct{}, r.opts.Workers)
	var wg sync.WaitGroup
	step := r.opts.Sessions / 10
	if step == 0 {
		step = 1
	}
	for i := 0; i < r.opts.Sessions; i++ {
		if r.devs[i].failed || ctx.Err() != nil {
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(ctx, idx); err != nil {
				r.devs[idx].failed = true
				r.fail(deviceName(idx), fmt.Errorf("%s: %w", name, err))
			}
		}(i)
		if (i+1)%step == 0 {
			r.logf("%s: %d/%d dispatched", name, i+1, r.opts.Sessions)
		}
	}
	wg.Wait()
}

func deviceName(idx int) string { return fmt.Sprintf("dev-%06d", idx) }

// genSample draws one physically valid observation.
func genSample(rng *rand.Rand) client.Sample {
	vstart := 2.2 + 0.36*rng.Float64()
	vfinal := vstart - 0.3*rng.Float64()
	vmin := vfinal - 0.4*rng.Float64()
	return client.Sample{VStart: vstart, VMin: vmin, VFinal: vfinal, Failed: rng.Float64() < 0.05}
}

// phase1 opens the session, uploads the first half of the observations,
// verifies an update's estimate parity, then detaches — leaving the
// session resident server-side with no connection.
func (r *loadRun) phase1(ctx context.Context, idx int) error {
	d := &r.devs[idx]
	st, snap, err := r.pool.OpenStream(ctx, client.StreamConfig{
		Device: deviceName(idx),
		Power:  r.opts.Power,
		Ring:   r.opts.Ring,
	})
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	d.stream = st
	r.countEvent(0)
	if snap.Window != 0 || snap.Seq == 0 {
		return fmt.Errorf("open snapshot: window %d seq %d", snap.Window, snap.Seq)
	}
	if err := r.uploadAndVerify(ctx, idx, r.opts.Obs/2); err != nil {
		return err
	}
	st.Detach()
	return nil
}

// phase2 resumes the session (parity-checking the snapshot), uploads the
// remaining observations, closes, and verifies the terminal.
func (r *loadRun) phase2(ctx context.Context, idx int) error {
	d := &r.devs[idx]
	st := d.stream
	snap, err := st.Resume(ctx)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	r.countEvent(0)
	r.syncMargin(idx)
	if err := r.checkParity(idx, "resume snapshot", snap, false); err != nil {
		return err
	}
	if err := r.uploadAndVerify(ctx, idx, r.opts.Obs-r.opts.Obs/2); err != nil {
		return err
	}
	term, err := st.CloseSession(ctx)
	if err != nil {
		return fmt.Errorf("close: %w", err)
	}
	st.Close()
	if !term.Final || term.Reason != "close" {
		return fmt.Errorf("terminal: final=%v reason=%q", term.Final, term.Reason)
	}
	r.mu.Lock()
	r.res.Terminals++
	r.mu.Unlock()
	r.syncMargin(idx)
	if err := r.checkParity(idx, "terminal", term, true); err != nil {
		return err
	}
	if r.direct != nil && idx < r.opts.ParitySample {
		if err := r.checkHTTPParity(ctx, idx, term); err != nil {
			return err
		}
	}
	// The full lifecycle held: open, stream, detach, resume, close, every
	// parity gate passed. Completed == Sessions is the soak's headline gate.
	r.mu.Lock()
	r.res.Completed++
	r.mu.Unlock()
	return nil
}

// uploadAndVerify streams n observations in batches, awaiting the refined
// update after each batch and bit-checking the last one.
func (r *loadRun) uploadAndVerify(ctx context.Context, idx int, n int) error {
	d := &r.devs[idx]
	st := d.stream
	for sent := 0; sent < n; {
		k := r.opts.Batch
		if n-sent < k {
			k = n - sent
		}
		samples := make([]client.Sample, k)
		for i := range samples {
			samples[i] = genSample(d.rng)
		}
		if _, err := st.Observe(ctx, samples...); err != nil {
			return fmt.Errorf("observe: %w", err)
		}
		sent += k
		// A 404-triggered rebuild inside Observe replays the tail — batch
		// included — so the re-based mirror already folded these samples.
		if rebuilt := r.syncMargin(idx); !rebuilt {
			for _, sm := range samples {
				if sm.Failed {
					d.margin.Failure()
				} else {
					d.margin.Success()
				}
			}
		}
		t0 := time.Now()
		u, err := r.awaitUpdate(ctx, idx, st.LastSeq())
		if err != nil {
			return fmt.Errorf("await update: %w", err)
		}
		r.countEvent(time.Since(t0).Seconds() * 1000)
		if sent >= n {
			if err := r.checkParity(idx, "update", u, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// syncMargin re-bases the margin mirror when the stream reports the server
// rebuilt the session from the replay tail: the rebuilt session's margin
// is FoldMargin(template, tail) by construction. Reports whether a rebuild
// was absorbed.
func (r *loadRun) syncMargin(idx int) bool {
	d := &r.devs[idx]
	ss := d.stream.Stats()
	if ss.Rebuilds == d.rebuilds {
		return false
	}
	d.rebuilds = ss.Rebuilds
	d.margin = FoldMargin(r.opts.Margin, d.stream.Tail())
	return true
}

// awaitUpdate waits for an update event reflecting obsSeq. A dropped
// update (slow-consumer kick, severed link) is recovered by resuming: the
// fresh snapshot carries the complete state.
func (r *loadRun) awaitUpdate(ctx context.Context, idx int, obsSeq uint64) (api.StreamUpdate, error) {
	st := r.devs[idx].stream
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case u := <-st.Updates():
			r.countEvent(0)
			if u.ObsSeq >= obsSeq {
				return u, nil
			}
		case <-tick.C:
			if !st.Attached() {
				snap, err := st.Resume(ctx)
				if err != nil {
					return api.StreamUpdate{}, fmt.Errorf("resume during await: %w", err)
				}
				r.countEvent(0)
				r.syncMargin(idx)
				if snap.ObsSeq >= obsSeq {
					return snap, nil
				}
			}
		case <-ctx.Done():
			return api.StreamUpdate{}, ctx.Err()
		}
	}
}

// checkParity bit-compares one streamed update against the from-scratch
// fold over the client's replay tail.
func (r *loadRun) checkParity(idx int, what string, u api.StreamUpdate, checkMargin bool) error {
	d := &r.devs[idx]
	tail := d.stream.Tail()
	want, have, err := FoldWindow(r.opts.Model, tail)
	if err != nil {
		return fmt.Errorf("%s: reference fold: %w", what, err)
	}
	r.mu.Lock()
	r.res.ParityChecked++
	r.mu.Unlock()
	mismatch := func(field string, got, exp float64) error {
		r.mu.Lock()
		r.res.ParityMismatches++
		r.mu.Unlock()
		return fmt.Errorf("%s: %s parity: got %x want %x", what, field, math.Float64bits(got), math.Float64bits(exp))
	}
	if !have {
		if u.VSafe != 0 || u.Window != 0 {
			return mismatch("empty-window v_safe", u.VSafe, 0)
		}
		return nil
	}
	if u.Window != len(tail) {
		r.mu.Lock()
		r.res.ParityMismatches++
		r.mu.Unlock()
		return fmt.Errorf("%s: window %d, tail %d", what, u.Window, len(tail))
	}
	if math.Float64bits(u.VSafe) != math.Float64bits(want.VSafe) {
		return mismatch("v_safe", u.VSafe, want.VSafe)
	}
	if math.Float64bits(u.VDelta) != math.Float64bits(want.VDelta) {
		return mismatch("v_delta", u.VDelta, want.VDelta)
	}
	if math.Float64bits(u.VE) != math.Float64bits(want.VE) {
		return mismatch("v_e", u.VE, want.VE)
	}
	if math.Float64bits(u.Launch) != math.Float64bits(u.VSafe+u.Margin) {
		return mismatch("launch", u.Launch, u.VSafe+u.Margin)
	}
	if checkMargin {
		r.mu.Lock()
		r.res.MarginChecked++
		r.mu.Unlock()
		if math.Float64bits(u.Margin) != math.Float64bits(d.margin.Margin()) {
			r.mu.Lock()
			r.res.MarginMismatches++
			r.mu.Unlock()
			return fmt.Errorf("%s: margin parity: got %x want %x", what, math.Float64bits(u.Margin), math.Float64bits(d.margin.Margin()))
		}
	}
	return nil
}

// checkHTTPParity folds per-observation /v1/vsafe-r responses from the
// direct (no-chaos) backend over the tail and bit-compares with the
// streamed terminal — the batch path and the streaming path must agree.
func (r *loadRun) checkHTTPParity(ctx context.Context, idx int, term api.StreamUpdate) error {
	tail := r.devs[idx].stream.Tail()
	var (
		best float64
		have bool
	)
	for _, o := range tail {
		est, err := r.direct.VSafeR(ctx, api.VSafeRRequest{
			Power:       r.opts.Power,
			Observation: api.ObservationSpec{VStart: o.VStart, VMin: o.VMin, VFinal: o.VFinal},
		})
		if err != nil {
			return fmt.Errorf("http parity: %w", err)
		}
		if !have || est.VSafe > best {
			best, have = est.VSafe, true
		}
	}
	r.mu.Lock()
	r.res.HTTPParityChecked++
	r.mu.Unlock()
	if have && math.Float64bits(best) != math.Float64bits(term.VSafe) {
		r.mu.Lock()
		r.res.HTTPParityMismatches++
		r.mu.Unlock()
		return fmt.Errorf("http parity: /v1/vsafe-r fold %x, streamed %x", math.Float64bits(best), math.Float64bits(term.VSafe))
	}
	return nil
}

func (r *loadRun) countEvent(latencyMs float64) {
	r.mu.Lock()
	r.events++
	if latencyMs > 0 {
		r.latencies = append(r.latencies, latencyMs)
	}
	r.mu.Unlock()
}

func heapNow() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// Render returns the result as indented JSON (the CLI's -v output).
func (res LoadGenResult) Render() string {
	b, _ := json.MarshalIndent(res, "", "  ")
	return string(b)
}

// The session table's journal encoding and recovery: what goes into a
// write-ahead record, what a compacted snapshot image looks like, and how
// Replay rebuilds a table bit-exactly from snapshot + records.
//
// Bit-exactness is the contract the parity gates check with
// math.Float64bits, and it holds by construction on both recovery paths:
//
//   - snapshot restore is pure decode — per-slot estimates, the running
//     window estimate, the adaptive-margin state and both sequence
//     high-water marks are stored as float64/uint64 and JSON round-trips
//     them exactly;
//   - record replay re-runs the same deterministic incremental fold
//     (core.VSafeR through Session.fold) the live path ran, with the
//     lastObsSeq dedup horizon making re-application of already-folded
//     observations a no-op — replay is idempotent, never double-applied.
//
// Event sequence numbers ride inside each record (the post-operation
// value), so a recovered session resumes its downlink numbering where the
// crashed one stopped and client-side rebuild detection (snapshot seq 1)
// keeps meaning what it meant.
package session

import (
	"encoding/json"
	"errors"
	"fmt"

	"culpeo/internal/api"
	"culpeo/internal/core"
	"culpeo/internal/journal"
)

// walRecord is one journal record. T selects the kind:
//
//	"open"   new session: ring, model fingerprint, spec, folded replay
//	"resume" live re-attach (covers supersede): folded replay, event seq
//	"obs"    acknowledged fold: observation batch, close flag, event seq
//	"evict"  sweep removal: Reason "idle" (live) or "reap" (tombstone)
type walRecord struct {
	T      string `json:"t"`
	Device string `json:"d"`
	// Open only.
	Ring int             `json:"r,omitempty"`
	FP   uint64          `json:"fp,omitempty"`
	Spec json.RawMessage `json:"spec,omitempty"`
	// Open/resume replay batch, or the obs batch.
	Obs   []api.StreamObservation `json:"o,omitempty"`
	Close bool                    `json:"c,omitempty"`
	// EventSeq is the session's downlink event counter after the operation.
	EventSeq uint64 `json:"es,omitempty"`
	Reason   string `json:"why,omitempty"`
}

// estImage serializes one core.Estimate.
type estImage struct {
	VSafe  float64 `json:"vs"`
	VDelta float64 `json:"vd"`
	VE     float64 `json:"ve"`
}

func imageEst(e core.Estimate) estImage {
	return estImage{VSafe: e.VSafe, VDelta: e.VDelta, VE: e.VE}
}

func (e estImage) estimate() core.Estimate {
	return core.Estimate{VSafe: e.VSafe, VDelta: e.VDelta, VE: e.VE}
}

// entryImage is one ring slot: the observation plus its precomputed
// estimate, so restore never re-runs Algorithm 1 for snapshotted slots.
type entryImage struct {
	Obs api.StreamObservation `json:"o"`
	Est estImage              `json:"e"`
}

// sessImage is one session's complete state in a snapshot.
type sessImage struct {
	Device     string              `json:"d"`
	Ring       int                 `json:"r"`
	FP         uint64              `json:"fp"`
	Spec       json.RawMessage     `json:"spec,omitempty"`
	LastObsSeq uint64              `json:"os"`
	EventSeq   uint64              `json:"es"`
	Closed     bool                `json:"cl,omitempty"`
	Terminal   *api.StreamUpdate   `json:"term,omitempty"`
	Margin     core.MarginSnapshot `json:"m"`
	Window     []entryImage        `json:"w,omitempty"`
	EstSeq     uint64              `json:"eq,omitempty"`
	Est        *estImage           `json:"e,omitempty"`
	Touched    uint64              `json:"tc"`
}

// snapImage is the compacted table image a journal snapshot carries.
type snapImage struct {
	V        int         `json:"v"`
	Epoch    uint64      `json:"epoch"`
	Sessions []sessImage `json:"sessions"`
}

// snapImageVersion guards the snapshot format; a mismatch means a newer (or
// corrupted) image this build cannot decode.
const snapImageVersion = 1

// journalLocked encodes and enqueues one record. Caller holds the shard
// lock — that is the ordering contract: records enter the journal queue in
// the same order their effects were applied, so replay reconstructs the
// same state. The returned ticket (nil when the table has no journal) is
// waited on after the lock is released.
func (t *Table) journalLocked(rec walRecord) *journal.Ticket {
	if t.wal == nil {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		// Unreachable (the record types are all marshalable), but an
		// unjournaled mutation must not be silently acknowledged.
		return journal.Failed(fmt.Errorf("session: encode journal record: %w", err))
	}
	t.walSinceSnap.Add(1)
	return t.wal.Append(payload)
}

// waitJournal resolves a (possibly nil) ticket into the operation's error.
func waitJournal(tk *journal.Ticket) error {
	if tk == nil {
		return nil
	}
	if err := tk.Wait(); err != nil {
		return fmt.Errorf("session: journal append: %w", err)
	}
	return nil
}

// imageOf captures one session. Caller holds the shard lock.
func imageOf(s *Session) sessImage {
	si := sessImage{
		Device:     s.device,
		Ring:       cap(s.ring),
		FP:         s.modelFP,
		Spec:       s.spec,
		LastObsSeq: s.lastObsSeq,
		EventSeq:   s.eventSeq,
		Closed:     s.closed,
		Margin:     s.margin.Snapshot(),
		EstSeq:     s.estSeq,
		Touched:    s.touched,
	}
	if s.closed {
		term := s.terminal
		si.Terminal = &term
	}
	if s.haveEst {
		e := imageEst(s.est)
		si.Est = &e
	}
	if s.count > 0 {
		si.Window = make([]entryImage, 0, s.count)
		for i := 0; i < s.count; i++ {
			e := s.ring[(s.head+i)%cap(s.ring)]
			si.Window = append(si.Window, entryImage{Obs: e.obs, Est: imageEst(e.est)})
		}
	}
	return si
}

// JournalSnapshot writes a compacted snapshot of the whole table into the
// journal and waits for it to be durable. It locks every shard for the
// image capture + enqueue — one consistent cut, ordered against every
// concurrent fold (folds enqueue their records under the same shard locks)
// — then waits outside the locks. No-op without a journal.
func (t *Table) JournalSnapshot() error {
	if t.wal == nil {
		return nil
	}
	for _, sh := range t.shards {
		sh.mu.Lock()
	}
	img := snapImage{V: snapImageVersion, Epoch: t.epoch.Load()}
	for _, sh := range t.shards {
		for _, s := range sh.sessions {
			img.Sessions = append(img.Sessions, imageOf(s))
		}
	}
	payload, err := json.Marshal(img)
	var tk *journal.Ticket
	if err == nil {
		tk = t.wal.Snapshot(payload)
		t.walSinceSnap.Store(0)
	}
	for i := len(t.shards) - 1; i >= 0; i-- {
		t.shards[i].mu.Unlock()
	}
	if err != nil {
		return fmt.Errorf("session: encode snapshot: %w", err)
	}
	if err := tk.Wait(); err != nil {
		return fmt.Errorf("session: journal snapshot: %w", err)
	}
	return nil
}

// JournalAppendsSinceSnapshot reports how many records were enqueued since
// the last snapshot — the serving layer's -snapshot-every trigger.
func (t *Table) JournalAppendsSinceSnapshot() uint64 { return t.walSinceSnap.Load() }

// RecoverStats summarizes one Replay.
type RecoverStats struct {
	// Sessions and Tombstones are the live/closed sessions in the rebuilt
	// table.
	Sessions   int
	Tombstones int
	// FromSnapshot counts sessions restored straight from the image.
	FromSnapshot int
	// Records is how many journal records were decoded and offered.
	Records int
	// Skipped counts records (or snapshot sessions) that could not be
	// applied — undecodable payloads, fingerprint mismatches against the
	// re-resolved model, records for sessions the journal no longer
	// explains. Zero on every crash-produced journal; non-zero means
	// tampering or a config change across the restart.
	Skipped int
}

// Replay rebuilds the table from a journal recovery: restore the snapshot
// image, then re-apply every record after it through the same fold path
// the live table ran. resolve turns a stored power-spec blob back into its
// model (the serving layer passes its catalog-backed resolver); the stored
// fingerprint must match the re-resolved model or the session is skipped.
//
// Replay must run on a fresh table before any traffic: it bypasses
// journaling (the records being applied are already durable) and does not
// take the drain flag into account.
func (t *Table) Replay(rec journal.Recovery, resolve func(spec []byte) (core.PowerModel, error)) (RecoverStats, error) {
	var st RecoverStats
	if t.Len() != 0 {
		return st, errors.New("session: replay into a non-empty table")
	}
	if resolve == nil {
		return st, errors.New("session: replay needs a spec resolver")
	}
	if rec.Snapshot != nil {
		var img snapImage
		if err := json.Unmarshal(rec.Snapshot, &img); err != nil || img.V != snapImageVersion {
			st.Skipped++
		} else {
			t.epoch.Store(img.Epoch)
			for _, si := range img.Sessions {
				if t.restoreSession(si, resolve) {
					st.FromSnapshot++
				} else {
					st.Skipped++
				}
			}
		}
	}
	for _, raw := range rec.Records {
		st.Records++
		var r walRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			st.Skipped++
			continue
		}
		if !t.applyRecord(r, resolve) {
			st.Skipped++
		}
	}
	for _, sh := range t.shards {
		sh.mu.Lock()
		for _, s := range sh.sessions {
			if s.closed {
				st.Tombstones++
			} else {
				st.Sessions++
			}
		}
		sh.mu.Unlock()
	}
	return st, nil
}

// restoreSession rebuilds one session from its snapshot image: pure decode,
// no folding. Returns false (and restores nothing) on any inconsistency.
func (t *Table) restoreSession(si sessImage, resolve func([]byte) (core.PowerModel, error)) bool {
	if !api.ValidStreamDevice(si.Device) || si.Ring <= 0 || si.Ring > api.MaxStreamRing || len(si.Window) > si.Ring {
		return false
	}
	model, err := resolve(si.Spec)
	if err != nil || model.Fingerprint() != si.FP {
		return false
	}
	if si.Closed && si.Terminal == nil {
		return false
	}
	sh := t.shardFor(si.Device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.sessions[si.Device]; ok {
		return false
	}
	if t.count.Add(1) > int64(t.cfg.MaxSessions) {
		t.count.Add(-1)
		return false
	}
	s := &Session{
		device:     si.Device,
		modelFP:    si.FP,
		model:      model,
		spec:       si.Spec,
		ring:       make([]entry, si.Ring),
		count:      len(si.Window),
		lastObsSeq: si.LastObsSeq,
		eventSeq:   si.EventSeq,
		estSeq:     si.EstSeq,
		margin:     core.RestoreMargin(si.Margin),
		closed:     si.Closed,
		touched:    si.Touched,
	}
	for i, ei := range si.Window {
		s.ring[i] = entry{obs: ei.Obs, est: ei.Est.estimate()}
	}
	if si.Est != nil {
		s.est, s.haveEst = si.Est.estimate(), true
	}
	if si.Terminal != nil {
		s.terminal = *si.Terminal
	}
	sh.sessions[si.Device] = s
	return true
}

// applyRecord re-applies one journal record. Returns false when the record
// cannot be applied against the current replay state.
func (t *Table) applyRecord(r walRecord, resolve func([]byte) (core.PowerModel, error)) bool {
	if !api.ValidStreamDevice(r.Device) {
		return false
	}
	sh := t.shardFor(r.Device)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[r.Device]
	switch r.T {
	case "open":
		if ok || r.Ring <= 0 || r.Ring > api.MaxStreamRing {
			return false
		}
		model, err := resolve(r.Spec)
		if err != nil || model.Fingerprint() != r.FP {
			return false
		}
		if t.count.Add(1) > int64(t.cfg.MaxSessions) {
			t.count.Add(-1)
			return false
		}
		s = &Session{
			device:  r.Device,
			modelFP: r.FP,
			model:   model,
			spec:    r.Spec,
			ring:    make([]entry, r.Ring),
			margin:  *t.cfg.Margin,
			touched: t.epoch.Load(),
		}
		if _, err := t.foldLocked(s, r.Obs, true); err != nil {
			t.count.Add(-1)
			return false
		}
		s.eventSeq = r.EventSeq
		sh.sessions[r.Device] = s
		return true
	case "resume":
		if !ok {
			return false
		}
		s.touched = t.epoch.Load()
		if s.closed {
			return true // tombstone replay: nothing to re-apply
		}
		if _, err := t.foldLocked(s, r.Obs, true); err != nil {
			return false
		}
		if r.EventSeq > s.eventSeq {
			s.eventSeq = r.EventSeq
		}
		return true
	case "obs":
		if !ok {
			return false
		}
		s.touched = t.epoch.Load()
		if s.closed {
			for _, o := range r.Obs {
				if o.Seq > s.lastObsSeq {
					return false
				}
			}
			return true // idempotent close-retry, exactly like the live path
		}
		if _, err := t.foldLocked(s, r.Obs, true); err != nil {
			return false
		}
		if r.EventSeq > s.eventSeq {
			s.eventSeq = r.EventSeq
		}
		if r.Close {
			u := api.StreamUpdate{
				Seq:    r.EventSeq,
				ObsSeq: s.lastObsSeq,
				Window: s.count,
				Margin: s.margin.Margin(),
			}
			if s.haveEst {
				u.VSafe, u.VDelta, u.VE = s.est.VSafe, s.est.VDelta, s.est.VE
				u.Launch = u.VSafe + u.Margin
			}
			u.Final, u.Reason = true, "close"
			s.closed, s.terminal = true, u
		}
		return true
	case "evict":
		if !ok {
			return false
		}
		delete(sh.sessions, r.Device)
		t.count.Add(-1)
		return true
	}
	return false
}

package session

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/powersys"
)

func testModel(t *testing.T) core.PowerModel {
	t.Helper()
	cfg := powersys.Capybara()
	m := core.PowerModel{
		C:     cfg.Storage.TotalCapacitance(),
		ESR:   capacitor.Flat(cfg.Storage.Main().ESR),
		VOut:  cfg.Output.VOut,
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Eff:   cfg.Output.Efficiency,
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("test model invalid: %v", err)
	}
	return m
}

func genObs(rng *rand.Rand, seq uint64) api.StreamObservation {
	vstart := 2.2 + 0.36*rng.Float64()
	vfinal := vstart - 0.3*rng.Float64()
	vmin := vfinal - 0.4*rng.Float64()
	return api.StreamObservation{Seq: seq, VStart: vstart, VMin: vmin, VFinal: vfinal, Failed: rng.Float64() < 0.2}
}

func drainEvents(t *testing.T, sub *Subscriber) []api.StreamUpdate {
	t.Helper()
	var out []api.StreamUpdate
	for {
		select {
		case ev := <-sub.Events:
			if !ev.Heartbeat {
				out = append(out, ev.Update)
			}
		default:
			return out
		}
	}
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestFoldParity streams observations through a small ring and checks the
// published estimate against the from-scratch fold after every batch —
// the bit-exactness invariant, including across ring wraps that evict the
// window argmax.
func TestFoldParity(t *testing.T) {
	m := testModel(t)
	tbl := NewTable(Config{Ring: 8})
	res, err := tbl.Attach("dev-parity", m, 0, nil)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if res.Snapshot.Window != 0 || res.Snapshot.Seq != 1 {
		t.Fatalf("fresh snapshot: %+v", res.Snapshot)
	}
	rng := rand.New(rand.NewSource(7))
	seq := uint64(0)
	for step := 0; step < 60; step++ {
		n := 1 + rng.Intn(3)
		batch := make([]api.StreamObservation, n)
		for i := range batch {
			seq++
			batch[i] = genObs(rng, seq)
		}
		if _, err := tbl.Fold("dev-parity", batch, false); err != nil {
			t.Fatalf("fold step %d: %v", step, err)
		}
		ups := drainEvents(t, res.Sub)
		if len(ups) != 1 {
			t.Fatalf("step %d: %d updates, want 1", step, len(ups))
		}
		u := ups[0]
		window, err := tbl.Window("dev-parity")
		if err != nil {
			t.Fatalf("window: %v", err)
		}
		want, have, err := FoldWindow(m, window)
		if err != nil || !have {
			t.Fatalf("reference fold: have=%v err=%v", have, err)
		}
		if !sameBits(u.VSafe, want.VSafe) || !sameBits(u.VDelta, want.VDelta) || !sameBits(u.VE, want.VE) {
			t.Fatalf("step %d: estimate diverged from FoldWindow: %+v vs %+v", step, u, want)
		}
		if u.ObsSeq != seq || u.Window != len(window) {
			t.Fatalf("step %d: obs_seq %d window %d, want %d/%d", step, u.ObsSeq, u.Window, seq, len(window))
		}
		if !sameBits(u.Launch, u.VSafe+u.Margin) {
			t.Fatalf("step %d: launch %v != v_safe+margin", step, u.Launch)
		}
	}
}

// TestFoldParityEqualMaxima pins the first-of-equal-maxima rule: identical
// observations tie on VSafe, and the incremental refold after the argmax
// leaves the ring must keep agreeing with FoldWindow.
func TestFoldParityEqualMaxima(t *testing.T) {
	m := testModel(t)
	tbl := NewTable(Config{Ring: 4})
	res, err := tbl.Attach("dev-tie", m, 0, nil)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	same := api.StreamObservation{VStart: 2.5, VMin: 2.1, VFinal: 2.3}
	for seq := uint64(1); seq <= 12; seq++ {
		o := same
		o.Seq = seq
		if _, err := tbl.Fold("dev-tie", []api.StreamObservation{o}, false); err != nil {
			t.Fatalf("fold %d: %v", seq, err)
		}
		ups := drainEvents(t, res.Sub)
		window, _ := tbl.Window("dev-tie")
		want, _, err := FoldWindow(m, window)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		if !sameBits(ups[len(ups)-1].VSafe, want.VSafe) {
			t.Fatalf("seq %d: tie-breaking diverged", seq)
		}
	}
}

// TestMarginParity: the session's margin folds failure/success exactly as
// FoldMargin over the full observation history (window == history here).
func TestMarginParity(t *testing.T) {
	m := testModel(t)
	tbl := NewTable(Config{Ring: 64})
	res, err := tbl.Attach("dev-margin", m, 0, nil)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	var all []api.StreamObservation
	for seq := uint64(1); seq <= 40; seq++ {
		o := genObs(rng, seq)
		all = append(all, o)
		if _, err := tbl.Fold("dev-margin", []api.StreamObservation{o}, false); err != nil {
			t.Fatalf("fold: %v", err)
		}
		ups := drainEvents(t, res.Sub)
		want := FoldMargin(*core.DefaultAdaptiveMargin(), all)
		if got := ups[len(ups)-1].Margin; !sameBits(got, want.Margin()) {
			t.Fatalf("seq %d: margin %v, want %v", seq, got, want.Margin())
		}
	}
}

// TestDuplicatesAndValidation: retried batches dedupe away; an invalid
// observation rejects the whole batch atomically.
func TestDuplicatesAndValidation(t *testing.T) {
	m := testModel(t)
	tbl := NewTable(Config{Ring: 8})
	res, err := tbl.Attach("dev-dup", m, 0, nil)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	batch := []api.StreamObservation{genObs(rng, 1), genObs(rng, 2), genObs(rng, 3)}
	first, err := tbl.Fold("dev-dup", batch, false)
	if err != nil || first.LastSeq != 3 || first.Window != 3 {
		t.Fatalf("first fold: %+v err=%v", first, err)
	}
	drainEvents(t, res.Sub)

	// Exact retry: all duplicates, no event published, state unchanged.
	retry, err := tbl.Fold("dev-dup", batch, false)
	if err != nil || retry.Duplicates != 3 || retry.Window != 3 {
		t.Fatalf("retry fold: %+v err=%v", retry, err)
	}
	if ups := drainEvents(t, res.Sub); len(ups) != 1 {
		// one update still published (the batch had len>0); its state must
		// be identical to the pre-retry state
		t.Fatalf("retry published %d updates", len(ups))
	}
	if tbl.Stats().DupObs != 3 {
		t.Fatalf("dup counter: %+v", tbl.Stats())
	}

	// Batch with one invalid member: rejected atomically.
	bad := []api.StreamObservation{genObs(rng, 4), {Seq: 5, VStart: 2.0, VMin: 2.5, VFinal: 2.2}}
	if _, err := tbl.Fold("dev-dup", bad, false); err == nil {
		t.Fatal("invalid batch folded")
	}
	after, err := tbl.Fold("dev-dup", nil, false)
	if err != nil || after.LastSeq != 3 || after.Window != 3 {
		t.Fatalf("state after rejected batch: %+v err=%v", after, err)
	}
	for _, o := range []api.StreamObservation{
		{Seq: 0, VStart: 2.5, VMin: 2.1, VFinal: 2.3},
		{Seq: 9, VStart: math.NaN(), VMin: 2.1, VFinal: 2.3},
		{Seq: 9, VStart: math.Inf(1), VMin: 2.1, VFinal: 2.3},
		{Seq: 9, VStart: 2.5, VMin: -1, VFinal: 2.3},
	} {
		if _, err := tbl.Fold("dev-dup", []api.StreamObservation{o}, false); err == nil {
			t.Fatalf("observation %+v accepted", o)
		}
	}
}

// TestResumeAndRebuild: re-attach resumes bit-identical state; a fresh
// table rebuilt from the replayed tail converges to the same bits.
func TestResumeAndRebuild(t *testing.T) {
	m := testModel(t)
	tbl := NewTable(Config{Ring: 8})
	res, err := tbl.Attach("dev-r", m, 0, nil)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	var tail []api.StreamObservation
	for seq := uint64(1); seq <= 20; seq++ {
		o := genObs(rng, seq)
		tail = append(tail, o)
		if len(tail) > 8 {
			tail = tail[1:]
		}
		if _, err := tbl.Fold("dev-r", []api.StreamObservation{o}, false); err != nil {
			t.Fatalf("fold: %v", err)
		}
	}
	drainEvents(t, res.Sub)
	res.Sub.Detach()

	// Resume on the same table: snapshot continues the event numbering and
	// carries the same estimate.
	res2, err := tbl.Attach("dev-r", m, 0, tail)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !res2.Resumed || res2.Rebuilt || res2.Terminal {
		t.Fatalf("resume result: %+v", res2)
	}
	if res2.Snapshot.Seq <= 1 {
		t.Fatalf("resumed snapshot restarted event numbering: %+v", res2.Snapshot)
	}

	// Rebuild on a fresh table (server restart): bit-identical estimate.
	tbl2 := NewTable(Config{Ring: 8})
	res3, err := tbl2.Attach("dev-r", m, 8, tail)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if !res3.Rebuilt || res3.Snapshot.Seq != 1 {
		t.Fatalf("rebuild result: %+v", res3)
	}
	if !sameBits(res3.Snapshot.VSafe, res2.Snapshot.VSafe) || res3.Snapshot.Window != res2.Snapshot.Window {
		t.Fatalf("rebuilt estimate diverged: %+v vs %+v", res3.Snapshot, res2.Snapshot)
	}
	want, _, err := FoldWindow(m, tail)
	if err != nil || !sameBits(res3.Snapshot.VSafe, want.VSafe) {
		t.Fatalf("rebuild vs FoldWindow: %v / %+v vs %+v", err, res3.Snapshot, want)
	}

	// Mismatched fingerprint and mismatched ring are refused.
	other := m
	other.VOff = m.VOff + 0.1
	if _, err := tbl.Attach("dev-r", other, 0, nil); err == nil {
		t.Fatal("fingerprint mismatch accepted")
	}
	if _, err := tbl.Attach("dev-r", m, 4, nil); err == nil {
		t.Fatal("ring mismatch accepted")
	}
}

// TestCloseAndTombstone: close delivers one terminal, late folds of dups
// are acked idempotently, new observations are refused, a late re-attach
// replays the terminal, and the tombstone reaps on schedule.
func TestCloseAndTombstone(t *testing.T) {
	m := testModel(t)
	tbl := NewTable(Config{Ring: 8, TombstoneEpochs: 2, IdleEpochs: 100})
	res, err := tbl.Attach("dev-c", m, 0, nil)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	rng := rand.New(rand.NewSource(9))
	batch := []api.StreamObservation{genObs(rng, 1), genObs(rng, 2)}
	if _, err := tbl.Fold("dev-c", batch, false); err != nil {
		t.Fatalf("fold: %v", err)
	}
	fr, err := tbl.Fold("dev-c", nil, true)
	if err != nil || !fr.Closed {
		t.Fatalf("close: %+v err=%v", fr, err)
	}
	var term api.StreamUpdate
	select {
	case term = <-res.Sub.Terminal:
	case <-time.After(time.Second):
		t.Fatal("no terminal delivered")
	}
	if !term.Final || term.Reason != "close" || term.ObsSeq != 2 {
		t.Fatalf("terminal: %+v", term)
	}
	res.Sub.Detach()

	// Idempotent close retry and duplicate-only folds ack fine.
	if fr, err := tbl.Fold("dev-c", batch, true); err != nil || !fr.Closed || fr.Duplicates != 2 {
		t.Fatalf("close retry: %+v err=%v", fr, err)
	}
	// New observations to a closed session are refused.
	if _, err := tbl.Fold("dev-c", []api.StreamObservation{genObs(rng, 3)}, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	// Late re-attach replays the terminal bit-identically.
	late, err := tbl.Attach("dev-c", m, 0, nil)
	if err != nil || !late.Terminal || late.Sub != nil {
		t.Fatalf("tombstone attach: %+v err=%v", late, err)
	}
	if !sameBits(late.Snapshot.VSafe, term.VSafe) || late.Snapshot.Seq != term.Seq {
		t.Fatalf("replayed terminal diverged: %+v vs %+v", late.Snapshot, term)
	}
	// The tombstone reaps TombstoneEpochs sweeps after its last touch.
	for i := 0; i < 3; i++ {
		tbl.AdvanceEpoch()
	}
	if tbl.Len() != 0 {
		t.Fatalf("tombstone not reaped: len=%d", tbl.Len())
	}
	if _, err := tbl.Fold("dev-c", batch, true); !errors.Is(err, ErrNoSession) {
		t.Fatalf("want ErrNoSession after reap, got %v", err)
	}
}

// TestCapsAndEviction: MaxSessions refuses, idle sessions evict, attached
// sessions heartbeat instead.
func TestCapsAndEviction(t *testing.T) {
	m := testModel(t)
	tbl := NewTable(Config{Ring: 4, MaxSessions: 2, IdleEpochs: 2})
	a, err := tbl.Attach("dev-a", m, 0, nil)
	if err != nil {
		t.Fatalf("attach a: %v", err)
	}
	if _, err := tbl.Attach("dev-b", m, 0, nil); err != nil {
		t.Fatalf("attach b: %v", err)
	}
	if _, err := tbl.Attach("dev-overflow", m, 0, nil); !errors.Is(err, ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
	if tbl.Stats().Rejected != 1 {
		t.Fatalf("rejected counter: %+v", tbl.Stats())
	}

	// b detaches and idles out; a stays attached and receives heartbeats.
	bSub := mustSub(t, tbl, "dev-b")
	bSub.Detach()
	for i := 0; i < 3; i++ {
		tbl.AdvanceEpoch()
	}
	if tbl.Len() != 1 {
		t.Fatalf("idle eviction: len=%d want 1", tbl.Len())
	}
	if _, err := tbl.Fold("dev-b", nil, false); !errors.Is(err, ErrNoSession) {
		t.Fatalf("evicted session still folds: %v", err)
	}
	hb := 0
	for {
		select {
		case ev := <-a.Sub.Events:
			if ev.Heartbeat {
				hb++
			}
			continue
		default:
		}
		break
	}
	if hb != 3 {
		t.Fatalf("heartbeats: %d want 3", hb)
	}
	st := tbl.Stats()
	if st.Evicted != 1 || st.Heartbeats != 3 || st.Live != 1 || st.Attached != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestMaxSessionsConcurrent: the cap is a reservation, not a racy
// check-then-add — concurrent opens on different shards (different locks)
// must never overshoot MaxSessions, and exactly cap of them win.
func TestMaxSessionsConcurrent(t *testing.T) {
	m := testModel(t)
	const cap, attempts = 4, 64
	tbl := NewTable(Config{Ring: 4, MaxSessions: cap, Shards: 16})
	var won, full atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := tbl.Attach(fmt.Sprintf("dev-cap-%02d", i), m, 0, nil)
			switch {
			case err == nil:
				won.Add(1)
			case errors.Is(err, ErrFull):
				full.Add(1)
			default:
				t.Errorf("attach %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if won.Load() != cap || full.Load() != attempts-cap {
		t.Fatalf("won=%d full=%d, want %d/%d", won.Load(), full.Load(), cap, attempts-cap)
	}
	if tbl.Len() != cap {
		t.Fatalf("len=%d, want %d", tbl.Len(), cap)
	}
	if got := tbl.Stats().Rejected; got != attempts-cap {
		t.Fatalf("rejected_total=%d, want %d", got, attempts-cap)
	}
}

// mustSub re-attaches a device and returns the subscriber (helper for
// tests that need a second handle).
func mustSub(t *testing.T, tbl *Table, dev string) *Subscriber {
	t.Helper()
	m := testModel(t)
	res, err := tbl.Attach(dev, m, 0, nil)
	if err != nil {
		t.Fatalf("attach %s: %v", dev, err)
	}
	return res.Sub
}

// TestSupersedeAndSlowKick: a second attach supersedes the first
// subscriber; a consumer that stops draining is kicked while the session
// survives.
func TestSupersedeAndSlowKick(t *testing.T) {
	m := testModel(t)
	tbl := NewTable(Config{Ring: 4, Queue: 1})
	a, err := tbl.Attach("dev-s", m, 0, nil)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	b, err := tbl.Attach("dev-s", m, 0, nil)
	if err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	select {
	case <-a.Sub.Done:
	default:
		t.Fatal("superseded subscriber not closed")
	}
	if a.Sub.Reason() != "superseded" || tbl.Stats().Superseded != 1 {
		t.Fatalf("supersede reason %q stats %+v", a.Sub.Reason(), tbl.Stats())
	}

	// Queue depth 1 and two undrained updates: the second kicks.
	rng := rand.New(rand.NewSource(13))
	if _, err := tbl.Fold("dev-s", []api.StreamObservation{genObs(rng, 1)}, false); err != nil {
		t.Fatalf("fold1: %v", err)
	}
	if _, err := tbl.Fold("dev-s", []api.StreamObservation{genObs(rng, 2)}, false); err != nil {
		t.Fatalf("fold2: %v", err)
	}
	select {
	case <-b.Sub.Done:
	default:
		t.Fatal("slow consumer not kicked")
	}
	if b.Sub.Reason() != "slow-consumer" || tbl.Stats().SlowKicked != 1 {
		t.Fatalf("kick reason %q stats %+v", b.Sub.Reason(), tbl.Stats())
	}
	// The session survived the kick: fold and re-attach still work.
	if _, err := tbl.Fold("dev-s", []api.StreamObservation{genObs(rng, 3)}, false); err != nil {
		t.Fatalf("fold after kick: %v", err)
	}
	c, err := tbl.Attach("dev-s", m, 0, nil)
	if err != nil || c.Snapshot.ObsSeq != 3 {
		t.Fatalf("re-attach after kick: %+v err=%v", c, err)
	}
}

// TestDrain: draining ends every attached stream with a terminal (reason
// "drain"), refuses new sessions AND live-session resumes (only tombstone
// terminal replays still answer), and leaves existing sessions resumable
// after the flag clears.
func TestDrain(t *testing.T) {
	m := testModel(t)
	tbl := NewTable(Config{Ring: 4})
	res, err := tbl.Attach("dev-d", m, 0, nil)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	rng := rand.New(rand.NewSource(17))
	if _, err := tbl.Fold("dev-d", []api.StreamObservation{genObs(rng, 1)}, false); err != nil {
		t.Fatalf("fold: %v", err)
	}
	// A second session, closed before the drain: its tombstone must keep
	// replaying the terminal while draining.
	tomb, err := tbl.Attach("dev-t", m, 0, nil)
	if err != nil {
		t.Fatalf("attach tombstone device: %v", err)
	}
	if _, err := tbl.Fold("dev-t", []api.StreamObservation{genObs(rng, 1)}, true); err != nil {
		t.Fatalf("close tombstone device: %v", err)
	}
	<-tomb.Sub.Terminal
	tomb.Sub.Detach()
	tbl.SetDraining(true)
	if n := tbl.DrainStreams(); n != 1 {
		t.Fatalf("drained %d streams, want 1", n)
	}
	select {
	case u := <-res.Sub.Terminal:
		if !u.Final || u.Reason != "drain" {
			t.Fatalf("drain terminal: %+v", u)
		}
	default:
		t.Fatal("no drain terminal")
	}
	select {
	case <-res.Sub.Done:
	default:
		t.Fatal("drained subscriber not closed")
	}
	if _, err := tbl.Attach("dev-new", m, 0, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("want ErrDraining, got %v", err)
	}
	// Resuming a live session is refused exactly like a new open: a
	// subscriber attached after DrainStreams swept would never be
	// terminated, and Shutdown would hang on its connection.
	if _, err := tbl.Attach("dev-d", m, 0, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("live resume during drain: want ErrDraining, got %v", err)
	}
	// The tombstone still replays its terminal during the drain — the
	// response completes immediately and attaches nothing, so close
	// retries converge even against a draining server.
	rep, err := tbl.Attach("dev-t", m, 0, nil)
	if err != nil || !rep.Terminal || rep.Sub != nil || rep.Snapshot.Reason != "close" {
		t.Fatalf("tombstone replay during drain: %+v err=%v", rep, err)
	}
	// The session was not closed: after the drain clears (restart or
	// failback) it resumes with its state intact.
	tbl.SetDraining(false)
	back, err := tbl.Attach("dev-d", m, 0, nil)
	if err != nil || back.Terminal || back.Snapshot.ObsSeq != 1 {
		t.Fatalf("resume after drain: %+v err=%v", back, err)
	}
}

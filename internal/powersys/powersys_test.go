package powersys

import (
	"math"
	"testing"
	"testing/quick"

	"culpeo/internal/capacitor"
	"culpeo/internal/load"
	"culpeo/internal/trace"
)

func newTestSystem(t *testing.T, esr float64) *System {
	t.Helper()
	net, err := capacitor.NewNetwork(&capacitor.Branch{
		Name: "main", C: 45e-3, ESR: esr, Voltage: 2.56,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Capybara()
	cfg.Storage = net
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCapybaraConfig(t *testing.T) {
	cfg := Capybara()
	if cfg.VOff != 1.6 || cfg.VHigh != 2.56 {
		t.Errorf("window = [%g, %g]", cfg.VOff, cfg.VHigh)
	}
	main := cfg.Storage.Main()
	if math.Abs(main.C-45e-3) > 1e-12 {
		t.Errorf("bank C = %g", main.C)
	}
	if math.Abs(main.ESR-5.0) > 1e-12 {
		t.Errorf("bank ESR = %g (six 30Ω parts in parallel)", main.ESR)
	}
	if main.Leakage > 25e-9 {
		t.Errorf("bank leakage = %g, want ~20 nA", main.Leakage)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.On() {
		t.Error("system charged to VHigh should start enabled")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := Capybara()
	cfg.Storage = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil storage accepted")
	}
	cfg = Capybara()
	cfg.VHigh, cfg.VOff = 1.0, 2.0
	if _, err := New(cfg); err == nil {
		t.Error("inverted window accepted")
	}
	cfg = Capybara()
	cfg.Output.VOut = -1
	if _, err := New(cfg); err == nil {
		t.Error("bad output accepted")
	}
	cfg = Capybara()
	cfg.Input.Efficiency = 2
	if _, err := New(cfg); err == nil {
		t.Error("bad input accepted")
	}
	cfg = Capybara()
	cfg.Storage.Main().C = -1
	if _, err := New(cfg); err == nil {
		t.Error("bad branch accepted")
	}
}

func TestESRDropAndRebound(t *testing.T) {
	// The Figure 1(b) phenomenon: applying a load instantly drops the
	// terminal voltage by ~I_in·ESR; removing it rebounds most of the drop.
	s := newTestSystem(t, 1.5)
	v0 := s.VTerm()
	var under float64
	for i := 0; i < 1000; i++ { // 8 ms at 50 mA
		info := s.Step(50e-3, 0)
		under = info.VTerm
	}
	drop := v0 - under
	if drop < 0.05 {
		t.Fatalf("ESR drop too small: %g V", drop)
	}
	// Let it rebound.
	var after float64
	for i := 0; i < 1000; i++ {
		info := s.Step(0, 0)
		after = info.VTerm
	}
	rebound := after - under
	if rebound < 0.8*drop {
		t.Fatalf("rebound %g V should recover most of the %g V drop", rebound, drop)
	}
	// The energy actually consumed in 8 ms at ~60 mW is small: after
	// rebound we should be within ~20 mV of the start.
	if v0-after > 0.05 {
		t.Errorf("post-rebound voltage %g too far below start %g", after, v0)
	}
}

func TestESRDropScalesWithESR(t *testing.T) {
	drop := func(esr float64) float64 {
		s := newTestSystem(t, esr)
		v0 := s.VTerm()
		var v float64
		for i := 0; i < 100; i++ {
			v = s.Step(50e-3, 0).VTerm
		}
		return v0 - v
	}
	low, high := drop(0.1), drop(3.0)
	if !(high > 5*low) {
		t.Errorf("drop at 3Ω (%g) should dwarf drop at 0.1Ω (%g)", high, low)
	}
}

func TestFigure4PowerOffWithStoredEnergy(t *testing.T) {
	// 10 Ω ESR + 50 mA LoRa-class draw: ~500 mV drop — the device powers
	// off while ample energy remains (Figure 4).
	net, _ := capacitor.NewNetwork(&capacitor.Branch{
		Name: "main", C: 45e-3, ESR: 10, Voltage: 2.0,
	})
	cfg := Capybara()
	cfg.Storage = net
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Monitor().Force(true)
	e0 := net.TotalEnergy()
	res := s.Run(load.LoRa(), RunOptions{})
	if res.Completed {
		t.Fatal("expected power failure from ESR drop")
	}
	if !res.PowerFailed {
		t.Fatal("PowerFailed flag not set")
	}
	// Most of the stored energy must remain: this is the paper's point.
	if rem := net.TotalEnergy(); rem < 0.8*e0 {
		t.Errorf("remaining energy %g of %g — failure should strand energy", rem, e0)
	}
}

func TestRunCompletesAtHighVoltage(t *testing.T) {
	s := newTestSystem(t, 1.5)
	res := s.Run(load.LoRa(), RunOptions{})
	if !res.Completed || res.PowerFailed {
		t.Fatalf("LoRa from 2.56 V should complete: %+v", res)
	}
	if !(res.VMin < res.VStart) {
		t.Error("VMin should be below VStart under load")
	}
	if !(res.VFinal > res.VMin) {
		t.Error("VFinal should rebound above VMin")
	}
	if !(res.VFinal <= res.VStart) {
		t.Error("VFinal cannot exceed VStart without harvest")
	}
	if res.EnergyUsed <= 0 {
		t.Error("energy must be consumed")
	}
	if res.Duration != load.LoRa().Duration() {
		t.Errorf("duration = %g", res.Duration)
	}
}

func TestRunRecordsTrace(t *testing.T) {
	s := newTestSystem(t, 1.5)
	rec := trace.NewRecorder(1)
	res := s.Run(load.NewUniform(10e-3, 5e-3), RunOptions{Recorder: rec, SkipRebound: true})
	if !res.Completed {
		t.Fatal("run failed")
	}
	wantSteps := int(math.Ceil(5e-3 / s.DT()))
	if rec.Len() != wantSteps {
		t.Errorf("trace samples = %d, want %d", rec.Len(), wantSteps)
	}
	if math.Abs(rec.MinVTerm()-res.VMin) > 1e-12 {
		t.Error("trace min disagrees with run min")
	}
}

func TestHysteresisRecharge(t *testing.T) {
	// After a power failure the device must recharge fully to V_high before
	// the output is re-enabled (Section II-A).
	net, _ := capacitor.NewNetwork(&capacitor.Branch{
		Name: "main", C: 5e-3, ESR: 5, Voltage: 1.7,
	})
	cfg := Capybara()
	cfg.Storage = net
	s, _ := New(cfg)
	s.Monitor().Force(true)
	// Hard load crashes it.
	for i := 0; i < 2000 && s.On(); i++ {
		s.Step(50e-3, 0)
	}
	if s.On() {
		t.Fatal("load should have crashed the device")
	}
	if s.Failures() == 0 {
		t.Error("failure not counted")
	}
	// Recharge with strong harvest; output stays off until V_high.
	reEnabled := false
	for i := 0; i < 4_000_000; i++ {
		info := s.Step(0, 50e-3)
		if info.On {
			reEnabled = true
			if info.VOC < cfg.VHigh-0.05 {
				t.Errorf("re-enabled at %g V, before VHigh", info.VOC)
			}
			break
		}
	}
	if !reEnabled {
		t.Fatal("device never recharged to VHigh")
	}
}

func TestHarvestCharges(t *testing.T) {
	net, _ := capacitor.NewNetwork(&capacitor.Branch{
		Name: "main", C: 45e-3, ESR: 1.5, Voltage: 2.0,
	})
	cfg := Capybara()
	cfg.Storage = net
	s, _ := New(cfg)
	v0 := net.Main().Voltage
	for i := 0; i < 10000; i++ {
		s.Step(0, 10e-3)
	}
	if !(net.Main().Voltage > v0) {
		t.Error("harvest should charge the buffer")
	}
	// Charging stops at VHigh.
	net.Main().Voltage = cfg.VHigh
	for i := 0; i < 100; i++ {
		s.Step(0, 10e-3)
	}
	if net.Main().Voltage > cfg.VHigh+1e-6 {
		t.Error("charging must stop at VHigh")
	}
}

func TestDecouplingReducesDrop(t *testing.T) {
	// Decoupling capacitance shaves the instantaneous drop for short pulses
	// but cannot absorb sustained loads (Section II-D).
	drop := func(withDecoupling bool, pulse float64) float64 {
		branches := []*capacitor.Branch{
			{Name: "main", C: 33e-3, ESR: 3, Voltage: 2.4},
		}
		if withDecoupling {
			branches = append(branches, &capacitor.Branch{
				Name: "decoupling", C: 400e-6, ESR: 0.05, Voltage: 2.4,
			})
		}
		net, err := capacitor.NewNetwork(branches...)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Capybara()
		cfg.Storage = net
		s, _ := New(cfg)
		s.Monitor().Force(true)
		res := s.Run(load.NewUniform(50e-3, pulse), RunOptions{SkipRebound: true})
		return 2.4 - res.VMin
	}
	// Short transient: decoupling helps a lot.
	short := pulseDropRatio(drop, 1e-3)
	if !(short < 0.7) {
		t.Errorf("decoupling should absorb a 1 ms transient (ratio %g)", short)
	}
	// Sustained 100 ms load: decoupling barely helps.
	long := pulseDropRatio(drop, 100e-3)
	if !(long > 0.7) {
		t.Errorf("decoupling should not absorb a sustained load (ratio %g)", long)
	}
}

func pulseDropRatio(drop func(bool, float64) float64, pulse float64) float64 {
	with := drop(true, pulse)
	without := drop(false, pulse)
	return with / without
}

func TestChargeDischargeHarness(t *testing.T) {
	s := newTestSystem(t, 1.5)
	if err := s.ChargeTo(2.56); err != nil {
		t.Fatal(err)
	}
	if err := s.DischargeTo(2.0); err != nil {
		t.Fatal(err)
	}
	if got := s.Config().Storage.Main().Voltage; math.Abs(got-2.0) > 1e-12 {
		t.Errorf("discharge target missed: %g", got)
	}
	// DischargeTo must never raise voltage.
	if err := s.DischargeTo(2.3); err != nil {
		t.Fatal(err)
	}
	if got := s.Config().Storage.Main().Voltage; got > 2.0 {
		t.Error("DischargeTo raised the voltage")
	}
	if err := s.ChargeTo(-1); err == nil {
		t.Error("negative charge target accepted")
	}
	if err := s.DischargeTo(-1); err == nil {
		t.Error("negative discharge target accepted")
	}
}

func TestEnergyConservation(t *testing.T) {
	// Without harvest, storage energy decreases monotonically under load and
	// the decrease is at least the energy delivered to the load (booster
	// losses and ESR losses are both positive).
	s := newTestSystem(t, 1.5)
	e0 := s.Config().Storage.TotalEnergy()
	p := load.NewUniform(25e-3, 50e-3)
	res := s.Run(p, RunOptions{SkipRebound: true})
	if !res.Completed {
		t.Fatal("run failed")
	}
	delivered := load.Energy(p, s.Config().Output.VOut, 125e3)
	used := e0 - s.Config().Storage.TotalEnergy()
	if used < delivered {
		t.Errorf("storage gave up %g J but load received %g J — free energy", used, delivered)
	}
	if used > 3*delivered {
		t.Errorf("losses implausibly high: used %g J for %g J delivered", used, delivered)
	}
	if math.Abs(used-res.EnergyUsed) > 1e-9 {
		t.Errorf("EnergyUsed accounting off: %g vs %g", res.EnergyUsed, used)
	}
}

func TestSolveNodeProperties(t *testing.T) {
	f := func(vRaw, rRaw, pRaw float64) bool {
		v := math.Abs(math.Mod(vRaw, 2)) + 0.5
		r := math.Abs(math.Mod(rRaw, 5)) + 0.01
		pin := math.Abs(math.Mod(pRaw, 0.3))
		b := []*capacitor.Branch{{Name: "b", C: 1e-3, ESR: r, Voltage: v}}
		vt, cur, ok := solveNode(b, pin, nil)
		if !ok {
			return pin > 0.9*v*v/(4*r) // only near/above max power
		}
		// KCL: branch current equals booster current, power balance holds.
		if pin > 0 {
			bal := cur[0] * vt
			if math.Abs(bal-pin) > 1e-6*math.Max(pin, 1) {
				return false
			}
		}
		return vt <= v+1e-12 && vt > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolveNodeMultiBranchConsistency(t *testing.T) {
	// Two identical branches must behave like one branch with half the ESR.
	one, _ := capacitor.NewNetwork(&capacitor.Branch{Name: "a", C: 2e-3, ESR: 1, Voltage: 2.4})
	two, _ := capacitor.NewNetwork(
		&capacitor.Branch{Name: "a", C: 1e-3, ESR: 2, Voltage: 2.4},
		&capacitor.Branch{Name: "b", C: 1e-3, ESR: 2, Voltage: 2.4},
	)
	pin := 0.1
	v1, c1, ok1 := solveNode(one.Branches, pin, nil)
	v2, c2, ok2 := solveNode(two.Branches, pin, nil)
	if !ok1 || !ok2 {
		t.Fatal("solver failed")
	}
	if math.Abs(v1-v2) > 1e-9 {
		t.Errorf("equivalent networks disagree: %g vs %g", v1, v2)
	}
	if math.Abs(c1[0]-(c2[0]+c2[1])) > 1e-9 {
		t.Errorf("total current disagrees: %g vs %g", c1[0], c2[0]+c2[1])
	}
}

func TestBrownoutDetection(t *testing.T) {
	// Demand beyond voc²/(4R): solver must report failure and Step must cut
	// power.
	net, _ := capacitor.NewNetwork(&capacitor.Branch{
		Name: "main", C: 45e-3, ESR: 20, Voltage: 1.8,
	})
	cfg := Capybara()
	cfg.Storage = net
	s, _ := New(cfg)
	s.Monitor().Force(true)
	info := s.Step(0.5, 0) // 0.5 A is far beyond deliverable
	if !info.Failed {
		t.Error("brown-out step should report failure")
	}
	if s.On() {
		t.Error("brown-out should cut power")
	}
}

func TestStepWhileOff(t *testing.T) {
	net, _ := capacitor.NewNetwork(&capacitor.Branch{
		Name: "main", C: 45e-3, ESR: 1.5, Voltage: 2.0, // below VHigh
	})
	cfg := Capybara()
	cfg.Storage = net
	s, _ := New(cfg)
	if s.On() {
		t.Fatal("should start off below VHigh")
	}
	v0 := net.Main().Voltage
	info := s.Step(50e-3, 0) // load demanded but power is off
	if info.ILoad != 0 {
		t.Error("load served while off")
	}
	if math.Abs(net.Main().Voltage-v0) > 1e-9 {
		t.Error("buffer discharged while off")
	}
}

func TestDefaultDTApplied(t *testing.T) {
	cfg := Capybara()
	cfg.DT = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.DT() != DefaultDT {
		t.Errorf("DT = %g, want default", s.DT())
	}
}

func TestRunBaselineCurrent(t *testing.T) {
	// A baseline (profiling overhead) increases the energy drawn.
	mk := func(base float64) float64 {
		s := newTestSystem(t, 1.5)
		res := s.Run(load.NewUniform(10e-3, 50e-3), RunOptions{Baseline: base, SkipRebound: true})
		return res.EnergyUsed
	}
	if !(mk(1e-3) > mk(0)) {
		t.Error("baseline current should cost energy")
	}
}

func TestMaxPowerPoint(t *testing.T) {
	b := []*capacitor.Branch{{Name: "m", C: 1e-3, ESR: 2, Voltage: 2.0}}
	vt, cur := maxPowerPoint(b, nil)
	if math.Abs(vt-1.0) > 1e-12 {
		t.Errorf("max power point voltage = %g, want voc/2", vt)
	}
	if math.Abs(cur[0]-0.5) > 1e-12 {
		t.Errorf("max power point current = %g, want 0.5", cur[0])
	}
}

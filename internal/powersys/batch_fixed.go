// The fixed-point batch lane: an evaluation of Q16.16 integer arithmetic
// (the paper's on-MCU substrate, internal/fixedpoint) as the batch
// stepper's arithmetic, behind BatchOptions.FixedPoint.
//
// Findings (measured in TestBatchFixedPointLane and BenchmarkBatch in
// internal/benchrun): the lane is *correct enough* for verdicts on
// scenarios with healthy margins — voltages track the exact stepper to a
// few millivolts over Table III-scale runs — but it is not a constant-
// factor win on amd64. Two structural reasons, documented in DESIGN.md §13:
//
//   - Resolution: one Q16.16 LSB is ~15 µV while a typical tick moves the
//     bank by ~9 µV (50 mA · 8 µs / 45 mF), so branch voltage must be
//     accumulated in Q32.32 (done here) and the solve still quantizes every
//     intermediate to 15 µV — the error floor is the format, not the math.
//   - Throughput: int64 multiply/shift chains plus an integer-Newton sqrt
//     are not faster than hardware double-precision FMA/div/sqrt on a
//     modern superscalar core; the substrate pays off on the paper's
//     FPU-less MSP430-class targets, not on the host this simulator runs on.
//
// The lane supports single-branch shapes with SkipRebound semantics
// (VFinal = VEndImmediate); multi-branch batches report ErrFixedPointShape.
package powersys

import (
	"errors"

	"culpeo/internal/fixedpoint"
)

// ErrFixedPointShape marks a batch run that requested the fixed-point lane
// on a shape it does not model (multi-branch networks).
var ErrFixedPointShape = errors.New("powersys: fixed-point batch lane supports single-branch shapes only")

// fixedLane holds the per-lane Q-format constants, derived once per run.
type fixedLane struct {
	vout, effM, effB, effMin, effMax fixedpoint.Q // output booster
	r                                fixedpoint.Q // branch ESR
	voff, vhigh                      fixedpoint.Q // monitor window
	inVHigh, inEff, inMax            fixedpoint.Q // input booster
	dtOverC                          int64        // dt/C in Q32.32
}

// runFixed advances every lane tick-by-tick in Q16.16/Q32.32 integer
// arithmetic. Branch voltage accumulates in Q32.32 (int64, 2^-32 V LSB);
// every solve quantizes to Q16.16 — the format the paper's MCU math runs
// in. Reporting (EnergyUsed) converts to float at segment boundaries.
func (bs *BatchSystem) runFixed(opt BatchOptions) []RunResult {
	if bs.nb != 1 {
		for _, l := range bs.active {
			bs.res[l].Err = ErrFixedPointShape
			bs.phase[l] = phaseDone
		}
		bs.active = bs.active[:0]
		return bs.res
	}
	for _, l := range bs.active {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				bs.abortActive(err)
				return bs.res
			}
		}
		bs.res[l] = bs.runFixedLane(l, opt)
		bs.phase[l] = phaseDone
	}
	bs.active = bs.active[:0]
	return bs.res
}

func (bs *BatchSystem) runFixedLane(l int, opt BatchOptions) RunResult {
	fl := fixedLane{
		vout:    fixedpoint.FromFloat(bs.outs[l].VOut),
		effM:    fixedpoint.FromFloat(bs.outs[l].Efficiency.M),
		effB:    fixedpoint.FromFloat(bs.outs[l].Efficiency.B),
		effMin:  fixedpoint.FromFloat(bs.outs[l].Efficiency.Min),
		effMax:  fixedpoint.FromFloat(bs.outs[l].Efficiency.Max),
		r:       fixedpoint.FromFloat(bs.besr[l]),
		voff:    fixedpoint.FromFloat(bs.voff[l]),
		vhigh:   fixedpoint.FromFloat(bs.vhigh[l]),
		inVHigh: fixedpoint.FromFloat(bs.ins[l].VHigh),
		inEff:   fixedpoint.FromFloat(bs.ins[l].Efficiency),
		inMax:   fixedpoint.FromFloat(bs.ins[l].MaxCurrent),
		dtOverC: int64(bs.dt / bs.bc[l] * 4294967296.0),
	}
	res := bs.res[l]

	// Branch voltage in Q32.32; prep state comes from the SoA lane.
	vQ := int64(fixedpoint.FromFloat(bs.bv[l])) << 16
	on := bs.monOn[l]
	vmin := fixedpoint.Q(1) << 40 // larger than any representable voltage
	lastVT := fixedpoint.FromFloat(bs.lastVT[l])
	harvestQ := fixedpoint.FromFloat(bs.scens[l].Harvest)
	c := bs.bc[l]

	sched := bs.sched[l]
	dur := sched.dur
	tick := 0
	e0 := 0.5 * c * bs.bv[l] * bs.bv[l]
	for _, seg := range sched.segs {
		iLoadQ := fixedpoint.FromFloat(seg.i + bs.scens[l].Baseline)
		for n := 0; n < seg.ticks; n++ {
			v16 := fixedpoint.Q(vQ >> 16)
			wasOn := on
			served := iLoadQ
			if !wasOn || served < 0 {
				served = 0
			}

			vt := v16
			failed := false
			var iin fixedpoint.Q
			if served > 0 {
				// The float stepper's solveTerminal iteration, in Q16.16:
				// η is evaluated at the terminal voltage, which depends on
				// the drawn power, which depends on η — three rounds, warm
				// started from the previous tick's solution.
				vt = lastVT
				if vt <= 0 {
					vt = v16
				}
				for iter := 0; iter < 3 && !failed; iter++ {
					eta := fixedpoint.Mul(fl.effM, vt, nil) + fl.effB
					if eta < fl.effMin {
						eta = fl.effMin
					}
					if eta > fl.effMax {
						eta = fl.effMax
					}
					pin, err := fixedpoint.Div(fixedpoint.Mul(fl.vout, served, nil), eta, nil)
					if err != nil {
						return bs.fixedDiverged(res, l, float64(tick)*bs.dt)
					}
					disc := fixedpoint.Mul(v16, v16, nil) - 4*fixedpoint.Mul(fl.r, pin, nil)
					if disc < 0 {
						// Brown-out: collapse through the maximum-power
						// point, as the float stepper does.
						failed = true
						vt = v16 / 2
						iin, err = fixedpoint.Div(v16-vt, fl.r, nil)
						if err != nil {
							return bs.fixedDiverged(res, l, float64(tick)*bs.dt)
						}
						break
					}
					s, err := fixedpoint.Sqrt(disc, nil)
					if err != nil {
						return bs.fixedDiverged(res, l, float64(tick)*bs.dt)
					}
					iin, err = fixedpoint.Div(v16-s, 2*fl.r, nil)
					if err != nil {
						return bs.fixedDiverged(res, l, float64(tick)*bs.dt)
					}
					vt = v16 - fixedpoint.Mul(iin, fl.r, nil)
				}
			}

			// Integrate in Q32.32: discharge by the drawn current, charge
			// from the harvester. (Branch leakage, ~20 nA, is below one
			// Q16.16 current LSB — the quantization floor noted above.)
			vQ -= (int64(iin) * fl.dtOverC) >> 16
			if harvestQ > 0 && v16 < fl.inVHigh {
				vch := v16
				if vch < fixedpoint.FromFloat(0.1) {
					vch = fixedpoint.FromFloat(0.1)
				}
				ichg, err := fixedpoint.Div(fixedpoint.Mul(harvestQ, fl.inEff, nil), vch, nil)
				if err != nil {
					return bs.fixedDiverged(res, l, float64(tick)*bs.dt)
				}
				if ichg > fl.inMax {
					ichg = fl.inMax
				}
				vQ += (int64(ichg) * fl.dtOverC) >> 16
			}
			if vQ < 0 {
				vQ = 0
			}

			obs := vt
			if failed {
				obs = 0
			}
			if on {
				if obs < fl.voff {
					on = false
				}
			} else if obs >= fl.vhigh {
				on = true
			}
			if wasOn && !on {
				failed = true
			}

			if vt < vmin {
				vmin = vt
			}
			lastVT = vt
			tick++
			if failed {
				res.PowerFailed = true
				res.Err = ErrBrownout
				res.FailTime = float64(tick) * bs.dt
				res.Duration = float64(tick) * bs.dt
				res.VMin = vmin.Float()
				v := fixedpoint.Q(vQ >> 16).Float()
				res.VEndImmediate = vt.Float()
				res.VFinal = vt.Float()
				res.EnergyUsed = e0 - 0.5*c*v*v
				return res
			}
		}
	}

	res.Completed = true
	res.Duration = dur
	v := fixedpoint.Q(vQ >> 16).Float()
	res.VMin = vmin.Float()
	if tick == 0 {
		res.VMin = res.VStart
	}
	res.VEndImmediate = lastVT.Float() // terminal voltage at the final tick
	res.VFinal = res.VEndImmediate
	res.EnergyUsed = e0 - 0.5*c*v*v
	return res
}

// fixedDiverged finalizes a lane whose integer solve hit an undefined
// operation (division by zero from a corrupted state).
func (bs *BatchSystem) fixedDiverged(res RunResult, l int, t float64) RunResult {
	res.PowerFailed = true
	res.Err = ErrDiverged
	res.FailTime = t
	res.Duration = t
	res.VEndImmediate = res.VStart
	res.VFinal = res.VStart
	if res.VMin == 0 {
		res.VMin = res.VStart
	}
	return res
}

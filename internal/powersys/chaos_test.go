package powersys

import (
	"math"
	"math/rand"
	"testing"

	"culpeo/internal/capacitor"
)

// TestChaosInvariants drives randomized load/harvest sequences through
// randomized storage networks and checks the physical invariants no step
// may violate, whatever the inputs:
//
//  1. branch voltages stay in [0, ∞) and finite;
//  2. without harvest, total stored energy never increases;
//  3. the terminal voltage never exceeds the highest branch voltage while
//     discharging (ESR only drops it);
//  4. the monitor only serves load while on, and cuts within the step that
//     crosses V_off;
//  5. reported input current is non-negative under load.
func TestChaosInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))

		// Random network: 1–3 branches.
		nb := 1 + rng.Intn(3)
		branches := make([]*capacitor.Branch, nb)
		for i := range branches {
			branches[i] = &capacitor.Branch{
				Name:    "b",
				C:       1e-3 + rng.Float64()*50e-3,
				ESR:     0.01 + rng.Float64()*10,
				Leakage: rng.Float64() * 1e-6,
				Voltage: 1.0 + rng.Float64()*1.6,
			}
		}
		net, err := capacitor.NewNetwork(branches...)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Capybara()
		cfg.Storage = net
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			sys.Monitor().Force(true)
		}

		harvestOn := rng.Intn(2) == 0
		prevEnergy := net.TotalEnergy()
		for step := 0; step < 3000; step++ {
			iLoad := 0.0
			if rng.Intn(3) != 0 {
				iLoad = rng.Float64() * 80e-3
			}
			harvest := 0.0
			if harvestOn && rng.Intn(2) == 0 {
				harvest = rng.Float64() * 20e-3
			}
			info := sys.Step(iLoad, harvest)

			// (1) physical branch state.
			maxV := 0.0
			for _, b := range net.Branches {
				if b.Voltage < 0 || math.IsNaN(b.Voltage) || math.IsInf(b.Voltage, 0) {
					t.Fatalf("seed %d step %d: unphysical branch voltage %g", seed, step, b.Voltage)
				}
				if b.Voltage > maxV {
					maxV = b.Voltage
				}
			}
			// (2) energy bookkeeping without harvest.
			e := net.TotalEnergy()
			if harvest == 0 && e > prevEnergy+1e-12 {
				t.Fatalf("seed %d step %d: free energy (%g → %g)", seed, step, prevEnergy, e)
			}
			prevEnergy = e
			// (3) terminal under discharge.
			if info.ILoad > 0 && info.VTerm > maxV+1e-9 {
				t.Fatalf("seed %d step %d: terminal %g above open-circuit %g under load",
					seed, step, info.VTerm, maxV)
			}
			if math.IsNaN(info.VTerm) || math.IsInf(info.VTerm, 0) {
				t.Fatalf("seed %d step %d: non-finite terminal", seed, step)
			}
			// (4) service gating.
			if info.ILoad > 0 && !(info.On || info.Failed) {
				t.Fatalf("seed %d step %d: load served while off", seed, step)
			}
			// (5) current sign.
			if info.ILoad > 0 && info.IIn < -1e-9 {
				t.Fatalf("seed %d step %d: negative input current %g", seed, step, info.IIn)
			}
		}
	}
}

// TestChaosRunNeverPanics exercises Run/Rebound with randomized profiles
// from randomized states.
func TestChaosRunNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		cfg := Capybara()
		cfg.Storage = cfg.Storage.Clone()
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		start := 1.4 + rng.Float64()*1.2
		if err := sys.ChargeTo(2.56); err != nil {
			t.Fatal(err)
		}
		if err := sys.DischargeTo(start); err != nil {
			t.Fatal(err)
		}
		sys.Monitor().Force(rng.Intn(2) == 0)
		p := randomProfile(rng)
		res := sys.Run(p, RunOptions{
			HarvestPower: rng.Float64() * 10e-3,
			SkipRebound:  rng.Intn(2) == 0,
		})
		if math.IsNaN(res.VMin) && res.Duration > 0 {
			t.Fatalf("trial %d: NaN VMin", trial)
		}
		if res.Completed && res.PowerFailed {
			t.Fatalf("trial %d: contradictory outcome", trial)
		}
		if res.VFinal < 0 || res.VStart < 0 {
			t.Fatalf("trial %d: negative voltages %+v", trial, res)
		}
	}
}

// randomProfile builds a random piecewise load.
func randomProfile(rng *rand.Rand) profileSeq {
	n := 1 + rng.Intn(4)
	parts := make([]segment, n)
	for i := range parts {
		parts[i] = segment{
			i: rng.Float64() * 60e-3,
			t: 1e-4 + rng.Float64()*50e-3,
		}
	}
	return profileSeq(parts)
}

type segment struct{ i, t float64 }

type profileSeq []segment

func (p profileSeq) Current(t float64) float64 {
	for _, s := range p {
		if t < s.t {
			return s.i
		}
		t -= s.t
	}
	return 0
}

func (p profileSeq) Duration() float64 {
	var d float64
	for _, s := range p {
		d += s.t
	}
	return d
}

func (p profileSeq) Name() string { return "chaos" }

// Batched lockstep stepping: BatchSystem advances K independent scenarios
// over structure-of-arrays state vectors — one flat slice per branch
// quantity (voltage, capacitance, ESR, leakage) and one slice per lane
// quantity (terminal voltage, clock, monitor state, segment cursor) — so
// per-step fixed costs (bounds checks, monitor evaluation, segment
// bookkeeping) amortize across the batch. Lanes that finish, brown out or
// diverge are compacted out of the active set in place, preserving order,
// without perturbing the surviving lanes.
//
// The exact batch lane is a transcription of Step/solveTerminal/solveNode/
// maxPowerPoint with identical expression shapes and evaluation order, so
// its per-tick arithmetic is byte-identical (math.Float64bits) to the
// scalar exact stepper — TestBatchEquivalence enforces this per tick. The
// fast batch lane reuses the analytic segment advance (fast.go) over a
// pre-compiled tick-exact schedule, eliminating the scalar fast path's
// O(total ticks) per-run profile scan; like the scalar fast path it is
// bounded, not bit-exact (< 1 mV, identical verdicts).
package powersys

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"

	"culpeo/internal/booster"
	"culpeo/internal/load"
)

// profSeg is one run of ticks with identical demanded profile current
// (baseline excluded — it is added per lane at run time).
type profSeg struct {
	i     float64 // raw profile current over the run
	start int     // first tick index of the run
	ticks int     // run length in ticks
}

// CompiledProfile is a load profile pre-sampled on the integration tick
// grid and merged into runs of constant current. Compiling costs one pass
// over the ticks — the same work the scalar fast path's segment scan does
// on every run — and the result is immutable, so one compiled schedule is
// shared by every lane (and every bisection probe) that runs the profile.
//
// CompiledProfile is itself a load.Profile: Current(t) returns the value
// sampled at compile time for the tick containing t, which on the tick grid
// is bit-identical to the source profile's Current.
type CompiledProfile struct {
	name  string
	dur   float64
	dt    float64
	steps int
	segs  []profSeg
}

// CompileProfile samples p on the tick grid of step dt (0 = DefaultDT),
// exactly as the exact run loop does — left edge, steps = ceil(dur/dt) —
// and merges equal consecutive samples.
func CompileProfile(p load.Profile, dt float64) *CompiledProfile {
	if dt <= 0 {
		dt = DefaultDT
	}
	dur := p.Duration()
	steps := int(math.Ceil(dur / dt))
	cp := &CompiledProfile{name: p.Name(), dur: dur, dt: dt, steps: steps}
	for k := 0; k < steps; k++ {
		i := p.Current(float64(k) * dt)
		if n := len(cp.segs); n > 0 && cp.segs[n-1].i == i {
			cp.segs[n-1].ticks++
			continue
		}
		cp.segs = append(cp.segs, profSeg{i: i, start: k, ticks: 1})
	}
	return cp
}

// Name returns the source profile's name.
func (c *CompiledProfile) Name() string { return c.name }

// Duration returns the source profile's duration.
func (c *CompiledProfile) Duration() float64 { return c.dur }

// DT returns the tick grid the schedule was compiled on.
func (c *CompiledProfile) DT() float64 { return c.dt }

// Steps returns the number of ticks in the schedule.
func (c *CompiledProfile) Steps() int { return c.steps }

// Segments returns the number of constant-current runs.
func (c *CompiledProfile) Segments() int { return len(c.segs) }

// Current returns the compiled sample for the tick containing t (0 beyond
// the schedule). On the tick grid this is bit-identical to the source
// profile.
func (c *CompiledProfile) Current(t float64) float64 {
	k := int(t/c.dt + 0.5)
	if k < 0 || k >= c.steps || len(c.segs) == 0 {
		return 0
	}
	// Binary search for the segment whose [start, start+ticks) contains k.
	idx := sort.Search(len(c.segs), func(i int) bool { return c.segs[i].start > k }) - 1
	return c.segs[idx].i
}

// canShareCompiled reports whether p's dynamic type supports map-key /
// == based deduplication of compiled schedules. Profiles built from slices
// (Seq, Trace) are not comparable; they compile per use.
func canShareCompiled(p load.Profile) bool {
	if p == nil {
		return false
	}
	return reflect.TypeOf(p).Comparable()
}

// BatchScenario is one lane of a batch: a load profile at a starting
// voltage with its harvest and baseline conditions. Compiled, when set,
// supplies a pre-compiled schedule (it must be compiled on the batch's DT);
// otherwise Profile is compiled during NewBatch. Config, when set,
// overrides the batch's shared configuration for this lane — it must have
// the same shape (branch count and DT) as the shared configuration.
type BatchScenario struct {
	Profile  load.Profile
	Compiled *CompiledProfile
	Config   *Config
	VStart   float64
	Harvest  float64
	Baseline float64
}

// BatchOptions controls one BatchSystem.Run.
type BatchOptions struct {
	// SkipRebound skips the post-load settle phase (VFinal = VEndImmediate).
	SkipRebound bool
	// ReboundTimeout bounds the settle phase. 0 = 1 s.
	ReboundTimeout float64
	// Fast selects the analytic fast lane (bounded < 1 mV, identical
	// verdicts) instead of the byte-exact lockstep lane.
	Fast bool
	// FixedPoint selects the Q16.16/Q32.32 integer evaluation lane (see
	// batch_fixed.go). Single-branch shapes only; an evaluation substrate,
	// not a replacement for either float lane.
	FixedPoint bool
	// Ctx, when non-nil, cancels the batch: the lockstep loop polls every
	// ctxCheckInterval rounds and finalizes the remaining lanes with the
	// context's error (run phase) or their current voltage (settle phase).
	Ctx context.Context
}

// Lane phases.
const (
	phaseRun uint8 = iota
	phaseRebound
	phaseDone
)

// BatchSystem advances K scenarios in lockstep. Construct with NewBatch,
// execute with Run, and re-arm with Reset; the SoA state and result slices
// are allocated once, so Reset+Run allocates nothing (enforced by
// TestBatchRunAllocFree).
type BatchSystem struct {
	nb int // branches per lane
	k  int // lanes
	dt float64

	scens []BatchScenario
	sched []*CompiledProfile

	// Per-lane configuration (read-only after NewBatch).
	vhigh, voff []float64
	outs        []booster.Output
	ins         []booster.Input

	// Branch state, flattened [lane*nb + branch].
	bc, besr, bleak, bv []float64

	// Per-lane dynamic state.
	lastVT, tNow []float64
	monOn        []bool
	phase        []uint8
	tick         []int
	segIdx       []int
	segRem       []int

	// Rebound phase state.
	rbTick, rbSteps, rbWindow []int
	rbPrev                    []float64

	// Lane-indexed results; Run returns this slice.
	res []RunResult

	// active lists the lanes still stepping, in lane order. Retired lanes
	// are compacted out in place.
	active []int

	// cur is the per-branch current scratch for the lane being stepped.
	cur []float64

	// sys holds the per-lane scalar systems that back the fast and
	// fixed-point lanes (and the per-lane prep transcription reference).
	sys []*System

	// onTick, when non-nil, observes every exact-lane tick of every lane —
	// the hook the byte-equivalence tests use to compare whole traces.
	onTick func(lane int, info StepInfo)
}

// NewBatch validates the scenarios against the shared configuration and
// builds a prepared batch: every lane charged to its V_high, discharged to
// its V_start, and force-armed, exactly as the test harness prepares a
// scalar run.
func NewBatch(cfg Config, scens []BatchScenario) (*BatchSystem, error) {
	if len(scens) == 0 {
		return nil, errors.New("powersys: batch needs at least one scenario")
	}
	if cfg.DT <= 0 {
		cfg.DT = DefaultDT
	}
	if cfg.Storage == nil || len(cfg.Storage.Branches) == 0 {
		return nil, errors.New("powersys: batch config needs a storage network")
	}
	nb := len(cfg.Storage.Branches)
	k := len(scens)

	bs := &BatchSystem{
		nb: nb, k: k, dt: cfg.DT,
		scens: append([]BatchScenario(nil), scens...),
		sched: make([]*CompiledProfile, k),
		vhigh: make([]float64, k), voff: make([]float64, k),
		outs: make([]booster.Output, k), ins: make([]booster.Input, k),
		bc: make([]float64, k*nb), besr: make([]float64, k*nb),
		bleak: make([]float64, k*nb), bv: make([]float64, k*nb),
		lastVT: make([]float64, k), tNow: make([]float64, k),
		monOn: make([]bool, k), phase: make([]uint8, k),
		tick: make([]int, k), segIdx: make([]int, k), segRem: make([]int, k),
		rbTick: make([]int, k), rbSteps: make([]int, k), rbWindow: make([]int, k),
		rbPrev: make([]float64, k),
		res:    make([]RunResult, k),
		active: make([]int, 0, k),
		cur:    make([]float64, nb),
		sys:    make([]*System, k),
	}

	// One shared compiled schedule per comparable profile value.
	shared := make(map[load.Profile]*CompiledProfile)
	for l, sc := range bs.scens {
		laneCfg := cfg
		if sc.Config != nil {
			laneCfg = *sc.Config
			if laneCfg.DT <= 0 {
				laneCfg.DT = DefaultDT
			}
			if laneCfg.Storage == nil || len(laneCfg.Storage.Branches) != nb {
				return nil, fmt.Errorf("powersys: batch lane %d: config shape mismatch (want %d branches)", l, nb)
			}
			if laneCfg.DT != cfg.DT {
				return nil, fmt.Errorf("powersys: batch lane %d: DT %g != batch DT %g", l, laneCfg.DT, cfg.DT)
			}
		}
		// Per-lane scalar system: validates the configuration and backs the
		// fast lane. Its storage is a private clone of the lane's prototype.
		sys, err := New(cloneConfig(laneCfg))
		if err != nil {
			return nil, fmt.Errorf("powersys: batch lane %d: %w", l, err)
		}
		bs.sys[l] = sys

		if !(sc.VStart > 0) || math.IsInf(sc.VStart, 0) {
			return nil, fmt.Errorf("powersys: batch lane %d: invalid VStart %g", l, sc.VStart)
		}

		cp := sc.Compiled
		if cp == nil {
			if sc.Profile == nil {
				return nil, fmt.Errorf("powersys: batch lane %d: scenario needs a Profile or Compiled schedule", l)
			}
			if canShareCompiled(sc.Profile) {
				if c, ok := shared[sc.Profile]; ok {
					cp = c
				} else {
					cp = CompileProfile(sc.Profile, cfg.DT)
					shared[sc.Profile] = cp
				}
			} else {
				cp = CompileProfile(sc.Profile, cfg.DT)
			}
		} else if cp.dt != cfg.DT {
			return nil, fmt.Errorf("powersys: batch lane %d: schedule compiled at DT %g, batch runs DT %g", l, cp.dt, cfg.DT)
		}
		bs.sched[l] = cp

		bs.vhigh[l] = laneCfg.VHigh
		bs.voff[l] = laneCfg.VOff
		bs.outs[l] = laneCfg.Output
		bs.ins[l] = laneCfg.Input
		base := l * nb
		for j, b := range laneCfg.Storage.Branches {
			bs.bc[base+j] = b.C
			bs.besr[base+j] = b.ESR
			bs.bleak[base+j] = b.Leakage
		}
	}
	bs.Reset()
	return bs, nil
}

func cloneConfig(cfg Config) Config {
	out := cfg
	out.Storage = cfg.Storage.Clone()
	return out
}

// Len returns the number of lanes.
func (bs *BatchSystem) Len() int { return bs.k }

// Results returns the lane-indexed results of the most recent Run. The
// slice is owned by the BatchSystem and rewritten by Reset.
func (bs *BatchSystem) Results() []RunResult { return bs.res }

// Reset re-arms every lane to its prepared starting state — the harness
// sequence ChargeTo(V_high), DischargeTo(V_start), Force(true), transcribed
// onto the SoA state — without allocating.
func (bs *BatchSystem) Reset() {
	bs.active = bs.active[:0]
	for l := 0; l < bs.k; l++ {
		base := l * bs.nb
		vstart := bs.scens[l].VStart
		// ChargeTo(vhigh): every branch to vhigh.
		for j := 0; j < bs.nb; j++ {
			bs.bv[base+j] = bs.vhigh[l]
		}
		// DischargeTo(vstart): clamp branches above the target.
		for j := 0; j < bs.nb; j++ {
			if bs.bv[base+j] > vstart {
				bs.bv[base+j] = vstart
			}
		}
		bs.monOn[l] = true // Force(true), as the harness arms delivery
		bs.lastVT[l] = bs.terminalAtRestLane(l)
		bs.tNow[l] = 0
		bs.tick[l] = 0
		bs.segIdx[l] = 0
		if len(bs.sched[l].segs) > 0 {
			bs.segRem[l] = bs.sched[l].segs[0].ticks
		} else {
			bs.segRem[l] = 0
		}
		bs.phase[l] = phaseRun
		bs.rbTick[l] = 0
		bs.res[l] = RunResult{VMin: math.Inf(1)}
		bs.active = append(bs.active, l)

		// Mirror the prep onto the lane's scalar system for the fast and
		// fixed-point lanes.
		s := bs.sys[l]
		s.cfg.Storage.SetAll(bs.vhigh[l])
		s.lastVT = bs.vhigh[l]
		s.monitor.Observe(bs.vhigh[l])
		for _, b := range s.cfg.Storage.Branches {
			if b.Voltage > vstart {
				b.Voltage = vstart
			}
		}
		s.lastVT = s.terminalAtRest()
		s.monitor.Force(true)
		s.t = 0
		s.failures = 0
	}
}

// Run advances every lane to completion and returns the lane-indexed
// results (the same slice Results reports). The default lane is the
// byte-exact lockstep stepper; BatchOptions.Fast selects the analytic lane
// and BatchOptions.FixedPoint the integer evaluation lane. Run consumes the
// prepared state — call Reset before running the batch again.
func (bs *BatchSystem) Run(opt BatchOptions) []RunResult {
	for _, l := range bs.active {
		bs.res[l].VStart = bs.lastVT[l]
	}
	if opt.FixedPoint {
		return bs.runFixed(opt)
	}
	if opt.Fast {
		return bs.runFastLanes(opt)
	}
	round := 0
	for len(bs.active) > 0 {
		if opt.Ctx != nil && round%ctxCheckInterval == 0 {
			if err := opt.Ctx.Err(); err != nil {
				bs.abortActive(err)
				break
			}
		}
		w := 0
		for _, l := range bs.active {
			if bs.laneTick(l, opt) {
				bs.active[w] = l
				w++
			}
		}
		bs.active = bs.active[:w]
		round++
	}
	return bs.res
}

// runFastLanes runs every lane through the analytic segment advance over
// its compiled schedule. Lanes are independent on this path (the segment
// advance is already block-structured), so they run to completion in lane
// order; the batch's win is the shared compiled schedule, which removes the
// scalar fast path's per-run O(total ticks) profile scan.
func (bs *BatchSystem) runFastLanes(opt BatchOptions) []RunResult {
	for _, l := range bs.active {
		ro := RunOptions{
			HarvestPower:   bs.scens[l].Harvest,
			Baseline:       bs.scens[l].Baseline,
			SkipRebound:    opt.SkipRebound,
			ReboundTimeout: opt.ReboundTimeout,
			Ctx:            opt.Ctx,
			Fast:           true,
		}
		bs.res[l] = bs.sys[l].runCompiled(bs.sched[l], ro)
		bs.phase[l] = phaseDone
	}
	bs.active = bs.active[:0]
	return bs.res
}

// laneTick advances lane l by one tick and reports whether it stays active.
func (bs *BatchSystem) laneTick(l int, opt BatchOptions) bool {
	switch bs.phase[l] {
	case phaseRun:
		k := bs.tick[l]
		if k >= bs.sched[l].steps {
			res := &bs.res[l]
			res.Completed = true
			res.Duration = bs.sched[l].dur
			res.VEndImmediate = bs.lastVT[l]
			if opt.SkipRebound {
				res.VFinal = res.VEndImmediate
				bs.phase[l] = phaseDone
				return false
			}
			bs.enterRebound(l, opt)
			return bs.reboundTick(l)
		}
		t := float64(k) * bs.dt
		iLoad := bs.laneCurrent(l) + bs.scens[l].Baseline
		e0 := bs.laneEnergy(l)
		info := bs.stepLane(l, iLoad, bs.scens[l].Harvest)
		res := &bs.res[l]
		res.EnergyUsed += e0 - bs.laneEnergy(l)
		if bs.onTick != nil {
			bs.onTick(l, info)
		}
		if info.VTerm < res.VMin {
			res.VMin = info.VTerm
		}
		bs.tick[l] = k + 1
		if info.Failed {
			res.PowerFailed = true
			res.Err = ErrBrownout
			if info.Diverged {
				res.Err = ErrDiverged
			}
			res.FailTime = info.T
			res.Duration = t + bs.dt
			res.VEndImmediate = info.VTerm
			res.VFinal = info.VTerm
			bs.phase[l] = phaseDone
			return false
		}
		return true
	case phaseRebound:
		return bs.reboundTick(l)
	}
	return false
}

func (bs *BatchSystem) enterRebound(l int, opt BatchOptions) {
	timeout := opt.ReboundTimeout
	if timeout <= 0 {
		timeout = 1.0
	}
	bs.rbWindow[l] = int(math.Max(1, 10e-3/bs.dt))
	bs.rbSteps[l] = int(timeout / bs.dt)
	bs.rbPrev[l] = bs.lastVT[l]
	bs.rbTick[l] = 0
	bs.phase[l] = phaseRebound
}

// reboundTick runs one settle tick: the same 50 µV-per-10 ms criterion as
// the scalar Rebound, checked on the same tick-grid window boundaries.
func (bs *BatchSystem) reboundTick(l int) bool {
	i := bs.rbTick[l]
	if i >= bs.rbSteps[l] {
		bs.res[l].VFinal = bs.lastVT[l]
		bs.phase[l] = phaseDone
		return false
	}
	info := bs.stepLane(l, load.SleepCurrent, bs.scens[l].Harvest)
	if bs.onTick != nil {
		bs.onTick(l, info)
	}
	window := bs.rbWindow[l]
	if i%window == window-1 {
		if math.Abs(info.VTerm-bs.rbPrev[l]) < 50e-6 {
			bs.res[l].VFinal = info.VTerm
			bs.phase[l] = phaseDone
			return false
		}
		bs.rbPrev[l] = info.VTerm
	}
	bs.rbTick[l] = i + 1
	return true
}

// abortActive finalizes every still-active lane after a context
// cancellation: run-phase lanes abort with the context error (mirroring
// System.abort), settle-phase lanes report their current voltage
// (mirroring Rebound's early return).
func (bs *BatchSystem) abortActive(err error) {
	for _, l := range bs.active {
		res := &bs.res[l]
		switch bs.phase[l] {
		case phaseRun:
			res.Err = err
			res.Duration = float64(bs.tick[l]) * bs.dt
			res.VEndImmediate = bs.lastVT[l]
			res.VFinal = bs.lastVT[l]
			if math.IsInf(res.VMin, 1) {
				res.VMin = bs.lastVT[l]
			}
		case phaseRebound:
			res.VFinal = bs.lastVT[l]
		}
		bs.phase[l] = phaseDone
	}
	bs.active = bs.active[:0]
}

// laneCurrent returns the lane's demanded profile current for its current
// tick and advances the segment cursor.
func (bs *BatchSystem) laneCurrent(l int) float64 {
	sc := bs.sched[l]
	idx := bs.segIdx[l]
	c := sc.segs[idx].i
	bs.segRem[l]--
	if bs.segRem[l] == 0 && idx+1 < len(sc.segs) {
		bs.segIdx[l] = idx + 1
		bs.segRem[l] = sc.segs[idx+1].ticks
	}
	return c
}

// laneEnergy transcribes Network.TotalEnergy for lane l.
func (bs *BatchSystem) laneEnergy(l int) float64 {
	base := l * bs.nb
	e := 0.0
	for j := 0; j < bs.nb; j++ {
		e += 0.5 * bs.bc[base+j] * bs.bv[base+j] * bs.bv[base+j]
	}
	return e
}

// openCircuitLane transcribes Network.OpenCircuitVoltage for lane l.
func (bs *BatchSystem) openCircuitLane(l int) float64 {
	base := l * bs.nb
	v := bs.bv[base]
	for j := 1; j < bs.nb; j++ {
		if bs.bv[base+j] > v {
			v = bs.bv[base+j]
		}
	}
	return v
}

// dischargeLane transcribes Branch.Discharge for flat branch index idx.
func (bs *BatchSystem) dischargeLane(idx int, i, dt float64) {
	bs.bv[idx] -= (i + bs.bleak[idx]) * dt / bs.bc[idx]
	if bs.bv[idx] < 0 {
		bs.bv[idx] = 0
	}
}

// observeLane transcribes Monitor.Observe for lane l.
func (bs *BatchSystem) observeLane(l int, v float64) {
	if bs.monOn[l] {
		if v < bs.voff[l] {
			bs.monOn[l] = false
		}
	} else {
		if v >= bs.vhigh[l] {
			bs.monOn[l] = true
		}
	}
}

// terminalAtRestLane transcribes System.terminalAtRest for lane l.
func (bs *BatchSystem) terminalAtRestLane(l int) float64 {
	vt, _ := bs.solveNodeLane(l, 0)
	return vt
}

// stepLane transcribes System.Step for lane l: identical expression shapes
// and evaluation order, so every intermediate is bit-identical to the
// scalar stepper's. (No injector hook on the batch lane — fault-injected
// runs stay scalar.)
func (bs *BatchSystem) stepLane(l int, iLoad, pHarvest float64) StepInfo {
	dt := bs.dt
	wasOn := bs.monOn[l]

	served := iLoad
	if !wasOn || served < 0 {
		served = 0
	}

	vt, ok := bs.solveTerminalLane(l, served, bs.lastVT[l])

	failed := false
	if !ok {
		vt = bs.maxPowerPointLane(l)
		failed = true
	}

	diverged := math.IsNaN(vt) || math.IsInf(vt, 0)
	if diverged {
		failed = true
	}

	base := l * bs.nb
	for j := 0; j < bs.nb; j++ {
		bs.dischargeLane(base+j, bs.cur[j], dt)
	}
	ichg := bs.ins[l].ChargeCurrent(pHarvest, bs.bv[base])
	if ichg > 0 {
		bs.dischargeLane(base, -ichg, dt)
	}

	iin := 0.0
	for j := 0; j < bs.nb; j++ {
		iin += bs.cur[j]
	}

	if failed {
		bs.observeLane(l, 0)
	} else {
		bs.observeLane(l, vt)
	}
	if wasOn && !bs.monOn[l] {
		failed = true
	}

	bs.lastVT[l] = vt
	bs.tNow[l] += dt
	return StepInfo{
		T: bs.tNow[l], VTerm: vt, VOC: bs.bv[base], IIn: iin,
		ILoad: served, On: bs.monOn[l], Failed: failed, Diverged: diverged,
	}
}

// solveTerminalLane transcribes System.solveTerminal for lane l. On
// success bs.cur holds the per-branch currents.
func (bs *BatchSystem) solveTerminalLane(l int, served, warm float64) (vt float64, ok bool) {
	vt = warm
	if vt <= 0 {
		vt = bs.openCircuitLane(l)
	}
	ok = true
	for iter := 0; iter < 3; iter++ {
		pin := bs.outs[l].InputPower(served, vt)
		nvt, solved := bs.solveNodeLane(l, pin)
		if !solved {
			return vt, false
		}
		vt = nvt
	}
	return vt, ok
}

// solveNodeLane transcribes solveNode for lane l, writing per-branch
// currents into bs.cur.
func (bs *BatchSystem) solveNodeLane(l int, pin float64) (float64, bool) {
	const rMin = 1e-6
	base := l * bs.nb

	var sumG, sumGV float64
	for j := 0; j < bs.nb; j++ {
		r := bs.besr[base+j]
		if r < rMin {
			r = rMin
		}
		g := 1 / r
		sumG += g
		sumGV += g * bs.bv[base+j]
	}
	vavg := sumGV / sumG

	var vt float64
	if pin <= 0 {
		vt = vavg
	} else if bs.nb == 1 {
		r := bs.besr[base]
		if r < rMin {
			r = rMin
		}
		iin, ok := booster.InputCurrentQuadratic(bs.bv[base], r, pin)
		if !ok {
			return 0, false
		}
		vt = bs.bv[base] - iin*r
		bs.cur[0] = iin
		return vt, true
	} else {
		f := func(v float64) float64 { return sumGV - sumG*v - pin/v }
		vstar := math.Sqrt(pin / sumG)
		if vstar >= vavg || f(vstar) < 0 {
			return 0, false
		}
		lo, hi := vstar, vavg
		for i := 0; i < 64; i++ {
			mid := 0.5 * (lo + hi)
			if f(mid) >= 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		vt = 0.5 * (lo + hi)
	}

	for j := 0; j < bs.nb; j++ {
		r := bs.besr[base+j]
		if r < rMin {
			r = rMin
		}
		bs.cur[j] = (bs.bv[base+j] - vt) / r
	}
	return vt, true
}

// maxPowerPointLane transcribes maxPowerPoint for lane l, writing currents
// into bs.cur.
func (bs *BatchSystem) maxPowerPointLane(l int) float64 {
	const rMin = 1e-6
	base := l * bs.nb
	var sumG, sumGV float64
	for j := 0; j < bs.nb; j++ {
		r := bs.besr[base+j]
		if r < rMin {
			r = rMin
		}
		sumG += 1 / r
		sumGV += bs.bv[base+j] / r
	}
	vt := 0.5 * sumGV / sumG
	for j := 0; j < bs.nb; j++ {
		r := bs.besr[base+j]
		if r < rMin {
			r = rMin
		}
		bs.cur[j] = (bs.bv[base+j] - vt) / r
	}
	return vt
}

// runCompiled runs a compiled schedule on a scalar system: the fast path
// iterates the compiled segments directly (no per-tick profile scan); the
// exact path and observer-carrying runs fall back to Run with the schedule
// as the profile, which is bit-identical to running the source profile.
func (s *System) runCompiled(cp *CompiledProfile, opt RunOptions) RunResult {
	if opt.Fast && s.fastEligible(opt) {
		return s.runCompiledFast(cp, opt)
	}
	return s.Run(cp, opt)
}

// runCompiledFast is runFast with the segment scan replaced by the
// compiled schedule. Bookkeeping matches runFast exactly.
func (s *System) runCompiledFast(cp *CompiledProfile, opt RunOptions) RunResult {
	dt := s.cfg.DT
	res := RunResult{VStart: s.terminalAtRest(), VMin: math.Inf(1)}

	k := 0
	for si := 0; si < len(cp.segs); si++ {
		if err := opt.canceled(); err != nil {
			return s.abort(res, float64(k)*dt, err)
		}
		iLoad := cp.segs[si].i + opt.Baseline
		adv := s.advanceSegment(iLoad, opt.HarvestPower, cp.segs[si].ticks, &res)
		k += adv.ticks
		if adv.failed {
			res.PowerFailed = true
			res.Err = ErrBrownout
			if adv.diverged {
				res.Err = ErrDiverged
			}
			res.FailTime = s.t
			res.Duration = float64(k) * dt
			res.VEndImmediate = s.lastVT
			res.VFinal = s.lastVT
			return res
		}
	}
	res.Completed = true
	res.Duration = cp.dur
	res.VEndImmediate = s.lastVT

	if opt.SkipRebound {
		res.VFinal = res.VEndImmediate
		return res
	}
	res.VFinal = s.reboundFast(opt)
	return res
}

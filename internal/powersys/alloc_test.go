// The zero-alloc guard for the simulator hot loop. Kept out of race builds:
// the race runtime inserts its own allocations and breaks AllocsPerRun.

//go:build !race

package powersys

import (
	"testing"

	"culpeo/internal/capacitor"
	"culpeo/internal/load"
)

func allocSystem(t testing.TB, multi bool) *System {
	t.Helper()
	cfg := Capybara()
	if multi {
		net, err := capacitor.NewNetwork(
			&capacitor.Branch{Name: "main", C: 45e-3, ESR: 5, Voltage: 2.56},
			&capacitor.Branch{Name: "decoupling", C: 400e-6, ESR: 0.05, Voltage: 2.56},
		)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Storage = net
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Monitor().Force(true)
	return sys
}

// TestStepAllocFree locks in the scratch ownership contract: Step allocates
// nothing in steady state, for both the single-branch closed-form solve and
// the multi-branch bisection.
func TestStepAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name  string
		multi bool
	}{{"single-branch", false}, {"multi-branch", true}} {
		sys := allocSystem(t, tc.multi)
		if allocs := testing.AllocsPerRun(200, func() {
			sys.Step(50e-3, 1e-3)
			if sys.VTerm() < 1.8 {
				sys.cfg.Storage.SetAll(2.4)
				sys.lastVT = 2.4
			}
		}); allocs != 0 {
			t.Errorf("%s: Step allocates %.0f objects/op, want 0", tc.name, allocs)
		}
	}
}

// TestRunAllocFree extends the guard to whole Run calls on both steppers:
// the run loop, the fast path's macro-stepping and the rebound must all
// live off the System's scratch.
func TestRunAllocFree(t *testing.T) {
	// Pre-box the concrete profile: the interface conversion at the call
	// site is the caller's allocation, not Run's.
	var task load.Profile = load.NewPulse(30e-3, 2e-3)
	for _, fast := range []bool{false, true} {
		sys := allocSystem(t, false)
		opt := RunOptions{SkipRebound: true, Fast: fast}
		if allocs := testing.AllocsPerRun(10, func() {
			sys.cfg.Storage.SetAll(2.4)
			sys.lastVT = 2.4
			sys.Run(task, opt)
		}); allocs != 0 {
			t.Errorf("Run(fast=%v) allocates %.0f objects/op, want 0", fast, allocs)
		}
	}
}

package powersys

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"culpeo/internal/capacitor"
	"culpeo/internal/load"
)

// equivCfg builds the configuration newEquivSystem simulates: Capybara,
// optionally with the decoupling branch.
func equivCfg(t testing.TB, multi bool) Config {
	t.Helper()
	cfg := Capybara()
	if multi {
		branches := []*capacitor.Branch{
			{Name: "main", C: 45e-3, ESR: 5, Voltage: 2.56},
			{Name: "decoupling", C: 400e-6, ESR: 0.05, Voltage: 2.56},
		}
		net, err := capacitor.NewNetwork(branches...)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Storage = net
	}
	return cfg
}

// scalarReference runs one scenario on the scalar stepper with the
// harness preparation sequence — the reference every batch lane is
// compared against.
func scalarReference(t testing.TB, cfg Config, sc BatchScenario, opt BatchOptions, fast bool) RunResult {
	t.Helper()
	if sc.Config != nil {
		cfg = *sc.Config
	}
	sys, err := New(cloneConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ChargeTo(cfg.VHigh); err != nil {
		t.Fatal(err)
	}
	if err := sys.DischargeTo(sc.VStart); err != nil {
		t.Fatal(err)
	}
	sys.Monitor().Force(true)
	return sys.Run(sc.Profile, RunOptions{
		HarvestPower:   sc.Harvest,
		Baseline:       sc.Baseline,
		SkipRebound:    opt.SkipRebound,
		ReboundTimeout: opt.ReboundTimeout,
		Fast:           fast,
	})
}

// checkBitwise requires got to be byte-identical (math.Float64bits on
// every float field, equality elsewhere) to want.
func checkBitwise(t *testing.T, name string, want, got RunResult) {
	t.Helper()
	if want.Completed != got.Completed || want.PowerFailed != got.PowerFailed {
		t.Fatalf("%s: verdict mismatch: scalar completed=%v failed=%v, batch completed=%v failed=%v",
			name, want.Completed, want.PowerFailed, got.Completed, got.PowerFailed)
	}
	if !errors.Is(got.Err, want.Err) && !errors.Is(want.Err, got.Err) {
		t.Fatalf("%s: error mismatch: scalar %v, batch %v", name, want.Err, got.Err)
	}
	fields := []struct {
		field string
		w, g  float64
	}{
		{"VStart", want.VStart, got.VStart},
		{"VMin", want.VMin, got.VMin},
		{"VEndImmediate", want.VEndImmediate, got.VEndImmediate},
		{"VFinal", want.VFinal, got.VFinal},
		{"Duration", want.Duration, got.Duration},
		{"EnergyUsed", want.EnergyUsed, got.EnergyUsed},
		{"FailTime", want.FailTime, got.FailTime},
	}
	for _, f := range fields {
		if math.Float64bits(f.w) != math.Float64bits(f.g) {
			t.Errorf("%s: %s not byte-identical: scalar %v (%#x), batch %v (%#x)",
				name, f.field, f.w, math.Float64bits(f.w), f.g, math.Float64bits(f.g))
		}
	}
}

func batchCorpusTasks() []load.Profile {
	uniform, pulse := load.Fig10Loads()
	var tasks []load.Profile
	tasks = append(tasks, uniform...)
	tasks = append(tasks, pulse...)
	tasks = append(tasks, load.TableIIIUniform()...)
	tasks = append(tasks, load.TableIIIPulse()...)
	tasks = append(tasks, load.Gesture(), load.BLERadio(), load.ComputeAccel(), load.LoRa())
	return tasks
}

// TestBatchEquivalence embeds every golden-corpus load in mixed batches —
// safe, marginal and brownout-inducing starting voltages side by side —
// and requires the exact batch lane to reproduce the scalar exact stepper
// byte-for-byte (math.Float64bits on every result field) on every lane,
// with lane compaction retiring the brownout lanes mid-batch. The fast
// batch lane is held to the scalar fast path's contract against the same
// references: every voltage within 1 mV, identical verdicts.
func TestBatchEquivalence(t *testing.T) {
	tasks := batchCorpusTasks()
	vstarts := []float64{2.56, 2.2, 1.7}
	harvests := []float64{0, 5e-3}
	rebounds := []bool{false, true}
	if testing.Short() {
		vstarts = []float64{2.2}
		harvests = []float64{0}
		rebounds = []bool{false}
	}

	for _, multi := range []bool{false, true} {
		cfg := equivCfg(t, multi)
		for _, harvest := range harvests {
			for _, rebound := range rebounds {
				var scens []BatchScenario
				var names []string
				for _, task := range tasks {
					for _, vstart := range vstarts {
						scens = append(scens, BatchScenario{Profile: task, VStart: vstart, Harvest: harvest})
						names = append(names, fmt.Sprintf("multi=%v/%s/v=%.2f/h=%.0fmW/rebound=%v",
							multi, task.Name(), vstart, harvest*1e3, rebound))
					}
				}
				opt := BatchOptions{SkipRebound: !rebound, ReboundTimeout: 0.2}
				bs, err := NewBatch(cfg, scens)
				if err != nil {
					t.Fatal(err)
				}
				exact := append([]RunResult(nil), bs.Run(opt)...)

				bs.Reset()
				optFast := opt
				optFast.Fast = true
				fast := bs.Run(optFast)

				for l := range scens {
					want := scalarReference(t, cfg, scens[l], opt, false)
					checkBitwise(t, names[l]+"/exact", want, exact[l])
					checkEquiv(t, names[l]+"/fast", want, fast[l])
				}
			}
		}
	}
}

// TestBatchK1Equivalence: a batch of one must behave exactly like the
// scalar stepper — the degenerate case the scalar-fallback rule leans on.
func TestBatchK1Equivalence(t *testing.T) {
	tasks := []load.Profile{
		load.NewUniform(25e-3, 10e-3), load.NewPulse(50e-3, 1e-3),
		load.Gesture(), load.BLERadio(), load.LoRa(),
	}
	for _, multi := range []bool{false, true} {
		cfg := equivCfg(t, multi)
		for _, task := range tasks {
			for _, vstart := range []float64{2.4, 1.8} {
				sc := BatchScenario{Profile: task, VStart: vstart, Harvest: 2e-3}
				opt := BatchOptions{ReboundTimeout: 0.2}
				bs, err := NewBatch(cfg, []BatchScenario{sc})
				if err != nil {
					t.Fatal(err)
				}
				res := bs.Run(opt)
				if len(res) != 1 {
					t.Fatalf("K=1 batch returned %d results", len(res))
				}
				want := scalarReference(t, cfg, sc, opt, false)
				name := fmt.Sprintf("k1/multi=%v/%s/v=%.2f", multi, task.Name(), vstart)
				checkBitwise(t, name, want, res[0])
			}
		}
	}
}

// TestBatchTraceEquivalence pairs every batch lane with a scalar system
// that is stepped in lockstep from the batch's per-tick hook: every
// StepInfo field of every tick of every lane — run and rebound phases,
// through brownouts — must be byte-identical to the scalar stepper's.
func TestBatchTraceEquivalence(t *testing.T) {
	type ref struct {
		sys      *System
		p        load.Profile
		harvest  float64
		baseline float64
		steps    int
		tick     int
	}
	for _, multi := range []bool{false, true} {
		cfg := equivCfg(t, multi)
		dt := cfg.DT
		scens := []BatchScenario{
			{Profile: load.LoRa(), VStart: 1.7},                                  // browns out early
			{Profile: load.NewPulse(30e-3, 2e-3), VStart: 2.2, Baseline: 150e-6}, // completes, rebound
			{Profile: load.Gesture(), VStart: 2.3, Harvest: 2e-3},                // ramps + harvest
			{Profile: load.NewUniform(5e-3, 100e-3), VStart: 2.56},               // long quiet segment
		}
		refs := make([]*ref, len(scens))
		for l, sc := range scens {
			sys, err := New(cloneConfig(cfg))
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.ChargeTo(cfg.VHigh); err != nil {
				t.Fatal(err)
			}
			if err := sys.DischargeTo(sc.VStart); err != nil {
				t.Fatal(err)
			}
			sys.Monitor().Force(true)
			refs[l] = &ref{
				sys: sys, p: sc.Profile, harvest: sc.Harvest, baseline: sc.Baseline,
				steps: int(math.Ceil(sc.Profile.Duration() / dt)),
			}
		}
		bs, err := NewBatch(cfg, scens)
		if err != nil {
			t.Fatal(err)
		}
		ticksChecked := 0
		bs.onTick = func(l int, info StepInfo) {
			r := refs[l]
			var iLoad float64
			if r.tick < r.steps {
				iLoad = r.p.Current(float64(r.tick)*dt) + r.baseline
			} else {
				iLoad = load.SleepCurrent
			}
			r.tick++
			want := r.sys.Step(iLoad, r.harvest)
			if math.Float64bits(want.T) != math.Float64bits(info.T) ||
				math.Float64bits(want.VTerm) != math.Float64bits(info.VTerm) ||
				math.Float64bits(want.VOC) != math.Float64bits(info.VOC) ||
				math.Float64bits(want.IIn) != math.Float64bits(info.IIn) ||
				math.Float64bits(want.ILoad) != math.Float64bits(info.ILoad) ||
				want.On != info.On || want.Failed != info.Failed || want.Diverged != info.Diverged {
				t.Fatalf("multi=%v lane %d tick %d: scalar %+v, batch %+v", multi, l, r.tick, want, info)
			}
			ticksChecked++
		}
		bs.Run(BatchOptions{ReboundTimeout: 0.2})
		if ticksChecked == 0 {
			t.Fatal("per-tick hook never fired")
		}
	}
}

// TestBatchCompaction staggers brownouts through a batch — lanes retiring
// at different ticks, interleaved with completing lanes — and requires
// every survivor to be byte-identical to its solo K=1 run: compaction must
// never perturb the lanes that remain.
func TestBatchCompaction(t *testing.T) {
	cfg := equivCfg(t, false)
	var scens []BatchScenario
	// Alternate doomed lanes (high current from a low start, failing at
	// current-dependent times) with healthy lanes.
	for i := 0; i < 8; i++ {
		scens = append(scens, BatchScenario{
			Profile: load.NewUniform(float64(20+10*i)*1e-3, 50e-3), VStart: 1.72,
		})
		scens = append(scens, BatchScenario{
			Profile: load.NewUniform(5e-3, 10e-3), VStart: 2.3 + float64(i)*0.02,
		})
	}
	opt := BatchOptions{SkipRebound: true}
	bs, err := NewBatch(cfg, scens)
	if err != nil {
		t.Fatal(err)
	}
	res := bs.Run(opt)
	failed := 0
	for l, sc := range scens {
		solo, err := NewBatch(cfg, []BatchScenario{sc})
		if err != nil {
			t.Fatal(err)
		}
		want := solo.Run(opt)[0]
		checkBitwise(t, fmt.Sprintf("compaction/lane%d", l), want, res[l])
		if res[l].PowerFailed {
			failed++
		}
	}
	if failed == 0 || failed == len(scens) {
		t.Fatalf("want a mix of failing and surviving lanes, got %d/%d failed", failed, len(scens))
	}
}

// TestBatchReset: Reset must restore the prepared state exactly — two
// Run calls separated by Reset return byte-identical results.
func TestBatchReset(t *testing.T) {
	cfg := equivCfg(t, true)
	scens := []BatchScenario{
		{Profile: load.LoRa(), VStart: 2.3},
		{Profile: load.NewPulse(25e-3, 10e-3), VStart: 1.9},
	}
	bs, err := NewBatch(cfg, scens)
	if err != nil {
		t.Fatal(err)
	}
	opt := BatchOptions{ReboundTimeout: 0.1}
	first := append([]RunResult(nil), bs.Run(opt)...)
	bs.Reset()
	second := bs.Run(opt)
	for l := range scens {
		checkBitwise(t, fmt.Sprintf("reset/lane%d", l), first[l], second[l])
	}
}

// TestBatchValidation covers NewBatch's rejection paths.
func TestBatchValidation(t *testing.T) {
	cfg := equivCfg(t, false)
	multiCfg := equivCfg(t, true)
	task := load.LoRa()
	cases := []struct {
		name  string
		scens []BatchScenario
	}{
		{"empty", nil},
		{"no-profile", []BatchScenario{{VStart: 2.0}}},
		{"bad-vstart", []BatchScenario{{Profile: task, VStart: -1}}},
		{"nan-vstart", []BatchScenario{{Profile: task, VStart: math.NaN()}}},
		{"shape-mismatch", []BatchScenario{{Profile: task, VStart: 2.0, Config: &multiCfg}}},
		{"dt-mismatch", []BatchScenario{{Profile: task, VStart: 2.0, Config: func() *Config {
			c := equivCfg(t, false)
			c.DT = 1e-6
			return &c
		}()}}},
		{"stale-schedule", []BatchScenario{{Compiled: CompileProfile(task, 1e-6), VStart: 2.0}}},
	}
	for _, tc := range cases {
		if _, err := NewBatch(cfg, tc.scens); err == nil {
			t.Errorf("%s: NewBatch accepted an invalid batch", tc.name)
		}
	}
}

// TestCompiledProfileRoundTrip: a compiled schedule used as a Profile must
// reproduce the source profile bit-for-bit on the tick grid.
func TestCompiledProfileRoundTrip(t *testing.T) {
	dt := DefaultDT
	for _, p := range []load.Profile{
		load.NewUniform(25e-3, 10e-3), load.NewPulse(50e-3, 1e-3),
		load.Gesture(), load.BLERadio(), load.ComputeAccel(),
	} {
		cp := CompileProfile(p, dt)
		if cp.Duration() != p.Duration() || cp.Name() != p.Name() {
			t.Fatalf("%s: metadata mismatch", p.Name())
		}
		steps := int(math.Ceil(p.Duration() / dt))
		if cp.Steps() != steps {
			t.Fatalf("%s: steps %d, want %d", p.Name(), cp.Steps(), steps)
		}
		for k := 0; k < steps; k++ {
			tk := float64(k) * dt
			if math.Float64bits(cp.Current(tk)) != math.Float64bits(p.Current(tk)) {
				t.Fatalf("%s: tick %d: compiled %v, source %v", p.Name(), k, cp.Current(tk), p.Current(tk))
			}
		}
		if cp.Segments() > cp.Steps() && cp.Steps() > 0 {
			t.Fatalf("%s: %d segments exceed %d steps", p.Name(), cp.Segments(), cp.Steps())
		}
	}
}

// TestBatchFixedPointLane evaluates the Q16.16/Q32.32 integer lane: on
// single-branch scenarios with healthy margins it must agree with the
// exact stepper on the verdict and track the voltages to within the
// format's accumulated quantization (a few mV); multi-branch batches must
// report ErrFixedPointShape rather than guess.
func TestBatchFixedPointLane(t *testing.T) {
	cfg := equivCfg(t, false)
	scens := []BatchScenario{
		{Profile: load.NewUniform(25e-3, 10e-3), VStart: 2.4}, // completes with margin
		{Profile: load.NewUniform(10e-3, 5e-3), VStart: 2.0},  // completes
		{Profile: load.LoRa(), VStart: 1.75},                  // reliably browns out
		{Profile: load.NewUniform(50e-3, 20e-3), VStart: 2.5, Harvest: 5e-3},
	}
	opt := BatchOptions{SkipRebound: true}
	bs, err := NewBatch(cfg, scens)
	if err != nil {
		t.Fatal(err)
	}
	fixed := append([]RunResult(nil), bs.Run(BatchOptions{SkipRebound: true, FixedPoint: true})...)
	for l, sc := range scens {
		want := scalarReference(t, cfg, sc, opt, false)
		got := fixed[l]
		name := fmt.Sprintf("fixed/lane%d/%s", l, sc.Profile.Name())
		if want.Completed != got.Completed || want.PowerFailed != got.PowerFailed {
			t.Fatalf("%s: verdict mismatch: exact completed=%v, fixed completed=%v",
				name, want.Completed, got.Completed)
		}
		const fixedTol = 15e-3 // Q16.16 LSB is ~15 µV; tick-by-tick rounding accumulates
		if d := math.Abs(want.VMin - got.VMin); d > fixedTol {
			t.Errorf("%s: VMin diverged %.4f vs %.4f (Δ %.2g V)", name, want.VMin, got.VMin, d)
		}
		if d := math.Abs(want.VEndImmediate - got.VEndImmediate); d > fixedTol {
			t.Errorf("%s: VEnd diverged %.4f vs %.4f (Δ %.2g V)", name, want.VEndImmediate, got.VEndImmediate, d)
		}
	}

	multi, err := NewBatch(equivCfg(t, true), []BatchScenario{{Profile: load.LoRa(), VStart: 2.2}})
	if err != nil {
		t.Fatal(err)
	}
	res := multi.Run(BatchOptions{SkipRebound: true, FixedPoint: true})
	if !errors.Is(res[0].Err, ErrFixedPointShape) {
		t.Fatalf("multi-branch fixed-point lane: got err %v, want ErrFixedPointShape", res[0].Err)
	}
}

// fuzzProfile derives a small load profile from the fuzzer's entropy.
func fuzzProfile(rng *rand.Rand) load.Profile {
	switch rng.Intn(4) {
	case 0:
		return load.NewUniform((1+rng.Float64()*59)*1e-3, (0.5+rng.Float64()*4.5)*1e-3)
	case 1:
		return load.NewPulse((1+rng.Float64()*59)*1e-3, (0.5+rng.Float64()*4.5)*1e-3)
	case 2:
		return load.Gesture()
	default:
		return load.BLERadio()
	}
}

// FuzzBatchStep fuzzes batch composition: sizes 1–128, mixed profiles,
// mixed per-lane power models, brownouts landing mid-batch, both lanes,
// and mid-run context cancellation. Whatever the composition, the batch
// must not panic, compaction must not corrupt surviving lanes (every
// normally-finalized lane matches its solo scalar run — byte-identical on
// the exact lane, bounded on the fast lane), and canceled lanes must carry
// the context's error.
func FuzzBatchStep(f *testing.F) {
	f.Add(uint64(1), uint8(3), false, false, uint16(0))
	f.Add(uint64(2), uint8(64), false, true, uint16(0))
	f.Add(uint64(3), uint8(127), true, false, uint16(300))
	f.Add(uint64(4), uint8(16), true, true, uint16(40))
	f.Add(uint64(5), uint8(1), false, false, uint16(1))
	f.Add(uint64(6), uint8(31), false, false, uint16(900))

	f.Fuzz(func(t *testing.T, seed uint64, size uint8, multi, fast bool, cancelAfter uint16) {
		rng := rand.New(rand.NewSource(int64(seed)))
		k := int(size)%128 + 1
		cfg := equivCfg(t, multi)
		scens := make([]BatchScenario, k)
		for l := range scens {
			sc := BatchScenario{
				Profile: fuzzProfile(rng),
				VStart:  1.62 + rng.Float64()*0.94,
			}
			if rng.Intn(2) == 0 {
				sc.Harvest = rng.Float64() * 10e-3
			}
			if rng.Intn(3) == 0 {
				sc.Baseline = 150e-6
			}
			if !multi && rng.Intn(3) == 0 {
				// Per-lane power-model override: same shape, different bank.
				br := &capacitor.Branch{
					Name: "main", C: (10 + rng.Float64()*50) * 1e-3,
					ESR: 1 + rng.Float64()*7, Voltage: 2.56,
				}
				net, err := capacitor.NewNetwork(br)
				if err != nil {
					t.Fatal(err)
				}
				lane := cfg
				lane.Storage = net
				sc.Config = &lane
			}
			scens[l] = sc
		}
		opt := BatchOptions{SkipRebound: rng.Intn(2) == 0, ReboundTimeout: 0.05, Fast: fast}

		bs, err := NewBatch(cfg, scens)
		if err != nil {
			t.Fatal(err)
		}
		res := bs.Run(opt)
		for l := range scens {
			name := fmt.Sprintf("lane%d/%s", l, scens[l].Profile.Name())
			exact := scalarReference(t, cfg, scens[l], opt, false)
			if fast {
				// The fast batch lane segments by compiled schedule rather
				// than by re-scan, so it is bounded (like the scalar fast
				// path) but not bit-equal to it: compare against the exact
				// reference under the fast-path contract.
				checkEquiv(t, name, exact, res[l])
			} else {
				checkBitwise(t, name, exact, res[l])
			}
		}

		// Cancellation leg (exact lane): cancel after a fuzzed number of
		// ticks; no panic, and every lane either finalized normally
		// (bit-identical to scalar) or carries the context error. Rebound
		// is skipped so the cancellation semantics stay binary: a settle
		// phase truncated by cancellation legitimately reports an early
		// VFinal with no error, which has no scalar twin to compare.
		if !fast && cancelAfter > 0 {
			bs2, err := NewBatch(cfg, scens)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ticks := 0
			bs2.onTick = func(int, StepInfo) {
				ticks++
				if ticks == int(cancelAfter) {
					cancel()
				}
			}
			opt2 := opt
			opt2.Ctx = ctx
			opt2.SkipRebound = true
			res2 := bs2.Run(opt2)
			optCmp := opt
			optCmp.SkipRebound = true
			for l := range scens {
				r := res2[l]
				if errors.Is(r.Err, context.Canceled) {
					if r.Completed {
						t.Fatalf("lane %d: canceled but Completed", l)
					}
					continue
				}
				want := scalarReference(t, cfg, scens[l], optCmp, false)
				checkBitwise(t, fmt.Sprintf("cancel/lane%d", l), want, r)
			}
		}
	})
}

// Analytic segment advance: the opt-in fast path behind RunOptions.Fast.
//
// The exact stepper integrates every DT tick (8 µs) even when nothing
// interesting happens — a constant served load draining an RC bank between
// monitor thresholds. This file detects those quiescent segments and
// advances the branch dynamics in closed form over whole blocks of ticks:
// one nodal solve gives the per-branch discharge currents, which (with the
// harvester's charge current) give each branch's dV/dt; an RK2 midpoint
// step then advances all branch voltages by up to fastEpsV at once. Near a
// monitor threshold, or whenever a macro step would cross one, the fast
// path falls back to bursts of exact Step calls so hysteresis transitions,
// brownout bookkeeping and failure verdicts stay bit-exact with the slow
// path. Divergence from the exact stepper is bounded by the macro-step
// voltage budget (< 1 mV; see TestFastEquivalence).
package powersys

import (
	"math"

	"culpeo/internal/load"
)

const (
	// fastEpsV bounds how far any branch's open-circuit voltage may move in
	// one macro step. The terminal voltage tracks the branch voltages with
	// near-unity sensitivity in the quiescent regime, so this is also the
	// interior error bound versus the exact stepper.
	fastEpsV = 0.5e-3
	// fastHazard is the distance from a monitor threshold inside which the
	// fast path ticks exactly: hysteresis transitions and the failure
	// verdicts that hang off them must come from the exact stepper.
	fastHazard = 2e-3
	// fastBurst is how many exact ticks to run per fallback burst.
	fastBurst = 16
)

// fastEligible reports whether this run may use the analytic segment
// advance. Fault injectors perturb state per tick (active fault windows),
// and Recorder/OnStep observers need every tick, so those runs keep the
// exact stepper.
func (s *System) fastEligible(opt RunOptions) bool {
	return s.inject == nil && opt.Recorder == nil && opt.OnStep == nil
}

// runFast is Run's fast path. It scans the profile for runs of ticks with
// identical demanded current — sampling p.Current on exactly the tick grid
// the exact loop uses — and advances each segment with advanceSegment.
func (s *System) runFast(p load.Profile, opt RunOptions) RunResult {
	dt := s.cfg.DT
	res := RunResult{VStart: s.terminalAtRest(), VMin: math.Inf(1)}

	dur := p.Duration()
	steps := int(math.Ceil(dur / dt))
	k := 0
	for k < steps {
		if err := opt.canceled(); err != nil {
			return s.abort(res, float64(k)*dt, err)
		}
		iLoad := p.Current(float64(k)*dt) + opt.Baseline
		end := k + 1
		for end < steps && p.Current(float64(end)*dt)+opt.Baseline == iLoad {
			end++
		}
		adv := s.advanceSegment(iLoad, opt.HarvestPower, end-k, &res)
		k += adv.ticks
		if adv.failed {
			res.PowerFailed = true
			res.Err = ErrBrownout
			if adv.diverged {
				res.Err = ErrDiverged
			}
			res.FailTime = s.t
			res.Duration = float64(k) * dt
			res.VEndImmediate = s.lastVT
			res.VFinal = s.lastVT
			return res
		}
	}
	res.Completed = true
	res.Duration = dur
	res.VEndImmediate = s.lastVT

	if opt.SkipRebound {
		res.VFinal = res.VEndImmediate
		return res
	}
	res.VFinal = s.reboundFast(opt)
	return res
}

// segmentAdvance reports how far advanceSegment got and how it ended.
type segmentAdvance struct {
	ticks    int
	failed   bool
	diverged bool
}

// advanceSegment moves the simulation forward by up to maxTicks ticks of
// constant demanded load current, macro-stepping where safe and running
// exact Step bursts where not. EnergyUsed and VMin accumulate into res
// exactly as the exact loop would (energy telescopes per segment; VMin is
// sampled at every solved terminal voltage).
func (s *System) advanceSegment(iLoad, pHarvest float64, maxTicks int, res *RunResult) segmentAdvance {
	dt := s.cfg.DT
	done := 0
	for done < maxTicks {
		rem := maxTicks - done
		if rem < 4 {
			// Too short to amortize a macro step's three solves.
			b := s.tickBurst(iLoad, pHarvest, rem, res)
			done += b.ticks
			if b.failed {
				return segmentAdvance{done, true, b.diverged}
			}
			continue
		}

		served := iLoad
		if !s.monitor.On() || served < 0 {
			served = 0
		}
		vt, ok := s.solveTerminal(served, s.lastVT)
		if !ok || s.nearThreshold(vt) {
			// Collapsing or hazard band: hand the crossing to the exact
			// stepper so hysteresis and brownout bookkeeping stay exact.
			n := fastBurst
			if n > rem {
				n = rem
			}
			b := s.tickBurst(iLoad, pHarvest, n, res)
			done += b.ticks
			if b.failed {
				return segmentAdvance{done, true, b.diverged}
			}
			continue
		}

		maxSlope := s.stateDeriv(pHarvest, s.fastF0)
		hTicks := rem
		if maxSlope > 0 {
			// Compare in float first: a near-zero slope makes the ratio
			// overflow an int conversion.
			if ht := fastEpsV / (maxSlope * dt); ht < float64(hTicks) {
				hTicks = int(ht)
			}
		}
		stepped := false
		for hTicks >= 2 {
			if s.tryMacroStep(served, pHarvest, vt, hTicks, res) {
				done += hTicks
				stepped = true
				break
			}
			hTicks /= 2
		}
		if stepped {
			continue
		}
		// Even a two-tick macro step was rejected (threshold or clamp in
		// reach): integrate exactly for a burst.
		n := fastBurst
		if n > rem {
			n = rem
		}
		b := s.tickBurst(iLoad, pHarvest, n, res)
		done += b.ticks
		if b.failed {
			return segmentAdvance{done, true, b.diverged}
		}
	}
	return segmentAdvance{done, false, false}
}

// tickBurst runs n exact Steps with the exact loop's bookkeeping.
func (s *System) tickBurst(iLoad, pHarvest float64, n int, res *RunResult) segmentAdvance {
	for i := 0; i < n; i++ {
		e0 := s.cfg.Storage.TotalEnergy()
		info := s.Step(iLoad, pHarvest)
		res.EnergyUsed += e0 - s.cfg.Storage.TotalEnergy()
		if info.VTerm < res.VMin {
			res.VMin = info.VTerm
		}
		if info.Failed {
			return segmentAdvance{i + 1, true, info.Diverged}
		}
	}
	return segmentAdvance{n, false, false}
}

// stateDeriv fills dst with each branch's dV/dt from the currents of the
// most recent solve (s.scratch), mirroring Step's integration: every branch
// discharges by its solved current plus leakage; the main branch
// additionally takes the harvester's charge current (which Step applies as
// a Charge call, incurring the leakage term a second time). Returns the
// largest |dV/dt| across branches.
func (s *System) stateDeriv(pHarvest float64, dst []float64) float64 {
	maxSlope := 0.0
	for i, b := range s.cfg.Storage.Branches {
		f := -(s.scratch[i] + b.Leakage) / b.C
		if i == 0 {
			if ichg := s.cfg.Input.ChargeCurrent(pHarvest, b.Voltage); ichg > 0 {
				f += (ichg - b.Leakage) / b.C
			}
		}
		dst[i] = f
		if a := math.Abs(f); a > maxSlope {
			maxSlope = a
		}
	}
	return maxSlope
}

// tryMacroStep advances every branch by hTicks ticks with one RK2 midpoint
// step. On entry s.fastF0 holds the state derivative and vt the solved
// terminal voltage at the current state. The step is rejected — state
// restored, false returned — when the midpoint or endpoint solve fails,
// lands near a monitor threshold, would clamp a branch at zero, or the
// main branch would cross the input booster's charge-cutoff voltage (a
// derivative discontinuity the midpoint cannot see).
func (s *System) tryMacroStep(served, pHarvest, vt float64, hTicks int, res *RunResult) bool {
	branches := s.cfg.Storage.Branches
	h := float64(hTicks) * s.cfg.DT
	e0 := s.cfg.Storage.TotalEnergy()

	for i, b := range branches {
		s.fastV0[i] = b.Voltage
		b.Voltage = s.fastV0[i] + 0.5*h*s.fastF0[i]
	}
	vtMid, ok := s.solveTerminal(served, vt)
	if !ok || s.vtUnsafe(vtMid) || s.anyBranchNegative() {
		s.restoreVoltages()
		return false
	}
	s.stateDeriv(pHarvest, s.fastF1)
	for i, b := range branches {
		b.Voltage = s.fastV0[i] + h*s.fastF1[i]
	}
	vtEnd, ok := s.solveTerminal(served, vtMid)
	if !ok || s.vtUnsafe(vtEnd) || s.anyBranchNegative() ||
		crossesLevel(s.fastV0[0], branches[0].Voltage, s.cfg.Input.VHigh) {
		s.restoreVoltages()
		return false
	}

	res.EnergyUsed += e0 - s.cfg.Storage.TotalEnergy()
	if vt < res.VMin {
		res.VMin = vt
	}
	if vtMid < res.VMin {
		res.VMin = vtMid
	}
	if vtEnd < res.VMin {
		res.VMin = vtEnd
	}
	// No hysteresis transition is possible here (vtUnsafe keeps the step
	// clear of both thresholds), so one Observe per macro step matches the
	// exact loop's per-tick observations.
	s.monitor.Observe(vtEnd)
	s.lastVT = vtEnd
	s.t += h
	return true
}

// nearThreshold reports whether vt is inside the hazard band of the
// threshold the monitor is currently watching.
func (s *System) nearThreshold(vt float64) bool {
	if s.monitor.On() {
		return vt < s.cfg.VOff+fastHazard
	}
	return vt > s.cfg.VHigh-fastHazard
}

// vtUnsafe rejects macro-step candidates that land within fastEpsV of the
// watched threshold (or beyond it): crossings belong to the exact stepper.
func (s *System) vtUnsafe(vt float64) bool {
	if s.monitor.On() {
		return vt < s.cfg.VOff+fastEpsV
	}
	return vt > s.cfg.VHigh-fastEpsV
}

func (s *System) anyBranchNegative() bool {
	for _, b := range s.cfg.Storage.Branches {
		if b.Voltage < 0 {
			return true
		}
	}
	return false
}

func (s *System) restoreVoltages() {
	for i, b := range s.cfg.Storage.Branches {
		b.Voltage = s.fastV0[i]
	}
}

// crossesLevel reports whether moving from a to b crosses level.
func crossesLevel(a, b, level float64) bool {
	return (a < level) != (b < level)
}

// reboundFast is Rebound on the fast path: the same 50 µV-per-10 ms settle
// criterion, checked on the same tick-grid window boundaries, with the
// windows advanced analytically. Rebound bookkeeping matches the exact
// path: no EnergyUsed or VMin accumulation, and per-step failures (the
// monitor cutting out mid-settle) do not abort the settle loop.
func (s *System) reboundFast(opt RunOptions) float64 {
	dt := s.cfg.DT
	timeout := opt.ReboundTimeout
	if timeout <= 0 {
		timeout = 1.0
	}
	window := int(math.Max(1, 10e-3/dt))
	steps := int(timeout / dt)
	discard := RunResult{VMin: math.Inf(1)}
	prev := s.lastVT
	done := 0
	for done < steps {
		if opt.canceled() != nil {
			return s.lastVT
		}
		n := window - done%window
		if n > steps-done {
			n = steps - done
		}
		adv := s.advanceSegment(load.SleepCurrent, opt.HarvestPower, n, &discard)
		done += adv.ticks
		if done%window == 0 {
			if math.Abs(s.lastVT-prev) < 50e-6 {
				return s.lastVT
			}
			prev = s.lastVT
		}
	}
	return s.lastVT
}

package powersys

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"culpeo/internal/capacitor"
	"culpeo/internal/load"
)

// fastTol is the equivalence bound the fast path must hold against the
// exact stepper on every reported voltage.
const fastTol = 1e-3

// newEquivSystem builds a Capybara-style system, optionally with a
// decoupling branch, charged and discharged to vStart with delivery forced
// on — the harness's preparation sequence.
func newEquivSystem(t *testing.T, multi bool, vStart float64) *System {
	t.Helper()
	cfg := Capybara()
	if multi {
		branches := []*capacitor.Branch{
			{Name: "main", C: 45e-3, ESR: 5, Voltage: 2.56},
			{Name: "decoupling", C: 400e-6, ESR: 0.05, Voltage: 2.56},
		}
		net, err := capacitor.NewNetwork(branches...)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Storage = net
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ChargeTo(cfg.VHigh); err != nil {
		t.Fatal(err)
	}
	if err := sys.DischargeTo(vStart); err != nil {
		t.Fatal(err)
	}
	sys.Monitor().Force(true)
	return sys
}

func checkEquiv(t *testing.T, name string, exact, fast RunResult) {
	t.Helper()
	if exact.Completed != fast.Completed || exact.PowerFailed != fast.PowerFailed {
		t.Fatalf("%s: verdict mismatch: exact completed=%v failed=%v, fast completed=%v failed=%v",
			name, exact.Completed, exact.PowerFailed, fast.Completed, fast.PowerFailed)
	}
	if !errors.Is(fast.Err, exact.Err) && !errors.Is(exact.Err, fast.Err) {
		t.Fatalf("%s: error mismatch: exact %v, fast %v", name, exact.Err, fast.Err)
	}
	check := func(field string, e, f float64) {
		if math.Abs(e-f) > fastTol {
			t.Errorf("%s: %s diverged: exact %.6f, fast %.6f (Δ %.3g V > %g V)",
				name, field, e, f, math.Abs(e-f), fastTol)
		}
	}
	check("VStart", exact.VStart, fast.VStart)
	check("VMin", exact.VMin, fast.VMin)
	check("VEndImmediate", exact.VEndImmediate, fast.VEndImmediate)
	check("VFinal", exact.VFinal, fast.VFinal)
}

// TestFastEquivalence runs every golden-corpus load — the Table III
// uniform/pulse catalogue, the Figure 10 grid and the real peripherals —
// through both steppers across starting voltages from comfortably safe to
// brownout-inducing, and requires sub-millivolt voltage agreement with
// identical verdicts.
func TestFastEquivalence(t *testing.T) {
	uniform, pulse := load.Fig10Loads()
	var tasks []load.Profile
	tasks = append(tasks, uniform...)
	tasks = append(tasks, pulse...)
	tasks = append(tasks, load.TableIIIUniform()...)
	tasks = append(tasks, load.TableIIIPulse()...)
	tasks = append(tasks, load.Gesture(), load.BLERadio(), load.ComputeAccel(), load.LoRa())

	vstarts := []float64{2.56, 2.2, 1.9, 1.7}
	harvests := []float64{0, 5e-3}
	for _, multi := range []bool{false, true} {
		for _, task := range tasks {
			for _, vstart := range vstarts {
				for _, harvest := range harvests {
					for _, rebound := range []bool{false, true} {
						name := fmt.Sprintf("multi=%v/%s/v=%.2f/h=%.0fmW/rebound=%v",
							multi, task.Name(), vstart, harvest*1e3, rebound)
						opt := RunOptions{HarvestPower: harvest, SkipRebound: !rebound}
						exact := newEquivSystem(t, multi, vstart).Run(task, opt)
						optFast := opt
						optFast.Fast = true
						fast := newEquivSystem(t, multi, vstart).Run(task, optFast)
						checkEquiv(t, name, exact, fast)
					}
				}
			}
		}
	}
}

// TestFastEquivalenceBaseline covers the Baseline path (profiling ADC
// current riding on the profile), which shifts the segment currents.
func TestFastEquivalenceBaseline(t *testing.T) {
	task := load.NewPulse(40e-3, 10e-3)
	opt := RunOptions{Baseline: 150e-6, SkipRebound: true}
	exact := newEquivSystem(t, false, 2.1).Run(task, opt)
	opt.Fast = true
	fast := newEquivSystem(t, false, 2.1).Run(task, opt)
	checkEquiv(t, "baseline", exact, fast)
}

// TestFastFallsBackWithObservers: Recorder/OnStep runs must take the exact
// path even with Fast set, tick for tick.
func TestFastFallsBackWithObservers(t *testing.T) {
	task := load.NewUniform(30e-3, 5e-3)
	ticks := 0
	res := newEquivSystem(t, false, 2.3).Run(task, RunOptions{
		Fast:        true,
		SkipRebound: true,
		OnStep:      func(StepInfo) { ticks++ },
	})
	want := int(math.Ceil(task.Duration() / DefaultDT))
	if ticks != want {
		t.Fatalf("OnStep saw %d ticks, want %d (fast path must defer to exact when observed)", ticks, want)
	}
	if !res.Completed {
		t.Fatalf("run failed unexpectedly: %+v", res)
	}
}

// TestFastBrownoutVerdict pins the failure semantics: a load the buffer
// cannot carry must brown out under both steppers with ErrBrownout and a
// failure time within one hazard-band's worth of ticks.
func TestFastBrownoutVerdict(t *testing.T) {
	task := load.NewUniform(120e-3, 50e-3)
	exact := newEquivSystem(t, false, 1.9).Run(task, RunOptions{SkipRebound: true})
	fast := newEquivSystem(t, false, 1.9).Run(task, RunOptions{SkipRebound: true, Fast: true})
	if !exact.PowerFailed || !fast.PowerFailed {
		t.Fatalf("expected brownout on both paths: exact=%+v fast=%+v", exact, fast)
	}
	if !errors.Is(fast.Err, ErrBrownout) {
		t.Fatalf("fast path error = %v, want ErrBrownout", fast.Err)
	}
	if d := math.Abs(exact.FailTime - fast.FailTime); d > 1e-3 {
		t.Errorf("fail time diverged: exact %.6fs fast %.6fs", exact.FailTime, fast.FailTime)
	}
	checkEquiv(t, "brownout", exact, fast)
}

// TestFastSpeedup is a sanity floor, not a benchmark: the fast path must
// beat the exact stepper by a wide margin on a quiescent profile. The
// recorded trajectory lives in BENCH_culpeo.json (make bench).
func TestFastSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	task := load.NewUniform(20e-3, 200e-3)
	run := func(fast bool) time.Duration {
		sys := newEquivSystem(t, false, 2.4)
		start := time.Now()
		res := sys.Run(task, RunOptions{SkipRebound: true, Fast: fast})
		if !res.Completed {
			t.Fatalf("fast=%v run failed: %+v", fast, res)
		}
		return time.Since(start)
	}
	exact := run(false)
	fastD := run(true)
	if fastD*2 > exact {
		t.Errorf("fast path not at least 2x faster: exact %v, fast %v", exact, fastD)
	}
}

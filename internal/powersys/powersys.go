// Package powersys is a fixed-timestep circuit simulator for the
// energy-harvesting power system of Figure 2: harvester → input booster →
// capacitor network (with ESR) → output booster → load, gated by a
// V_high/V_off voltage monitor.
//
// Each step solves Kirchhoff's current law at the capacitor terminal node:
// the output booster demands P_in(V_t) = V_out·I_load/η(V_t) while each
// storage branch i supplies (V_i − V_t)/R_i. The ESR-induced voltage drop
// that motivates Culpeo — and its rebound when the load is removed — are
// emergent properties of this solution, not modelled as special cases.
package powersys

import (
	"context"
	"errors"
	"fmt"
	"math"

	"culpeo/internal/booster"
	"culpeo/internal/capacitor"
	"culpeo/internal/load"
	"culpeo/internal/trace"
)

// DefaultDT is the default integration timestep: 8 µs, matching the paper's
// 125 kHz profiling rate.
const DefaultDT = 8e-6

// Config assembles a power system.
type Config struct {
	Storage *capacitor.Network
	Output  booster.Output
	Input   booster.Input
	VHigh   float64 // monitor turn-on threshold
	VOff    float64 // monitor power-off threshold
	DT      float64 // integration step; 0 = DefaultDT
}

// Capybara returns the evaluated hardware configuration (Section VI-A):
// V_off 1.6 V, V_high 2.56 V, V_out 2.55 V, and a 45 mF bank of dense
// supercapacitors (six 7.5 mF CPX3225A-class parts, ~30 Ω each at the load
// frequencies that matter, giving ~5 Ω net bank ESR and ~20 nA leakage)
// charged to V_high. The net ESR matches the paper's measured behaviour: a
// 50 mA load produces a ~0.35 V ESR drop (Figure 1b).
func Capybara() Config {
	part := capacitor.Part{
		PartNumber: "CPX3225A752D", Tech: capacitor.Supercap,
		C: 7.5e-3, ESR: 30, Volume: 7.04, DCL: 3.3e-9, MaxVoltage: 2.7,
	}
	bank, err := capacitor.AssembleBank(part, 45e-3)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	net, err := capacitor.NewNetwork(bank.Branch("main", 2.56))
	if err != nil {
		panic(err)
	}
	return Config{
		Storage: net,
		Output:  booster.DefaultOutput(),
		Input:   booster.DefaultInput(),
		VHigh:   2.56,
		VOff:    1.6,
		DT:      DefaultDT,
	}
}

// System is a running power-system simulation.
//
// Scratch ownership contract: the per-branch slices below are owned by the
// System and sized to len(Storage.Branches) at construction. Step,
// solveTerminal, terminalAtRest and the fast path (fast.go) overwrite them
// freely — their contents are only meaningful between a solve and the next
// call into the System, and callers must never retain them. This is what
// keeps the hot loop allocation-free (enforced by TestStepAllocFree).
type System struct {
	cfg     Config
	monitor *booster.Monitor
	t       float64
	lastVT  float64
	// failures counts monitor power-off events.
	failures int
	// scratch holds the per-branch currents of the most recent nodal solve.
	scratch []float64
	// fastF0, fastF1, fastV0 back the fast path's macro-stepping: the
	// per-branch state derivative at the step start, at the midpoint, and
	// the saved branch voltages for rejection rollback.
	fastF0, fastF1, fastV0 []float64
	// inject, when non-nil, perturbs harvest power and drains extra
	// leakage each step (see Inject).
	inject Injector
}

// New validates the configuration and builds a system. The monitor starts
// enabled if the buffer is already at/above V_high, otherwise disabled.
func New(cfg Config) (*System, error) {
	if cfg.Storage == nil || len(cfg.Storage.Branches) == 0 {
		return nil, errors.New("powersys: config needs a storage network")
	}
	for _, b := range cfg.Storage.Branches {
		if err := b.Validate(); err != nil {
			return nil, err
		}
	}
	if err := cfg.Output.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Input.Validate(); err != nil {
		return nil, err
	}
	mon, err := booster.NewMonitor(cfg.VHigh, cfg.VOff)
	if err != nil {
		return nil, err
	}
	if cfg.DT <= 0 {
		cfg.DT = DefaultDT
	}
	n := len(cfg.Storage.Branches)
	s := &System{
		cfg: cfg, monitor: mon,
		scratch: make([]float64, n),
		fastF0:  make([]float64, n),
		fastF1:  make([]float64, n),
		fastV0:  make([]float64, n),
	}
	s.lastVT = cfg.Storage.OpenCircuitVoltage()
	mon.Observe(s.lastVT)
	return s, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Monitor exposes the voltage monitor (the harness forces its state to
// isolate the power system, as the paper's modified Capybara does).
func (s *System) Monitor() *booster.Monitor { return s.monitor }

// Now returns the simulation time in seconds.
func (s *System) Now() float64 { return s.t }

// Failures returns how many times the monitor has cut power.
func (s *System) Failures() int { return s.failures }

// VTerm returns the most recently solved terminal voltage.
func (s *System) VTerm() float64 { return s.lastVT }

// DT returns the integration step.
func (s *System) DT() float64 { return s.cfg.DT }

// On reports whether the output booster is currently enabled.
func (s *System) On() bool { return s.monitor.On() }

// StepInfo describes one integration step.
type StepInfo struct {
	T      float64 // time at the end of the step
	VTerm  float64 // terminal node voltage during the step
	VOC    float64 // main branch open-circuit voltage after the step
	IIn    float64 // total current drawn from storage by the booster
	ILoad  float64 // load current actually served (0 if power is off)
	On       bool // monitor state after the step
	Failed   bool // true when this step caused a power-off
	Diverged bool // true when the nodal solution became non-finite
}

// Step advances the simulation by one DT with the given demanded load
// current (at V_out) and harvested power (at the harvester output).
func (s *System) Step(iLoad, pHarvest float64) StepInfo {
	dt := s.cfg.DT
	wasOn := s.monitor.On()
	if s.inject != nil {
		pHarvest = s.inject.HarvestPower(s.t, pHarvest)
	}

	served := iLoad
	if !wasOn || served < 0 {
		served = 0
	}

	vt, ok := s.solveTerminal(served, s.lastVT)
	currents := s.scratch

	failed := false
	if !ok {
		// The buffer cannot source the demanded power through its ESR: the
		// booster's input collapses. Discharge at the maximum-power point and
		// cut the output.
		vt, currents = maxPowerPoint(s.cfg.Storage.Branches, s.scratch)
		failed = true
	}

	// Non-finite terminal voltage means the model state itself is broken
	// (NaN branch voltage, absurd injected parameters): flag it so callers
	// can tell ErrDiverged from an ordinary brownout.
	diverged := math.IsNaN(vt) || math.IsInf(vt, 0)
	if diverged {
		failed = true
	}

	// Integrate branch state: discharge by solved currents, charge from the
	// harvester into the main branch.
	for i, b := range s.cfg.Storage.Branches {
		b.Discharge(currents[i], dt)
	}
	main := s.cfg.Storage.Main()
	ichg := s.cfg.Input.ChargeCurrent(pHarvest, main.Voltage)
	if ichg > 0 {
		main.Charge(ichg, dt)
	}
	if s.inject != nil {
		if il := s.inject.LeakageCurrent(s.t); il > 0 {
			main.Discharge(il, dt)
		}
	}

	iin := 0.0
	for _, c := range currents {
		iin += c
	}

	// Hysteresis on the terminal voltage the monitor sees.
	if failed {
		s.monitor.Observe(0)
	} else {
		s.monitor.Observe(vt)
	}
	if wasOn && !s.monitor.On() {
		failed = true
	}
	if failed {
		s.failures++
	}

	s.lastVT = vt
	s.t += dt
	return StepInfo{
		T: s.t, VTerm: vt, VOC: main.Voltage, IIn: iin,
		ILoad: served, On: s.monitor.On(), Failed: failed, Diverged: diverged,
	}
}

// solveTerminal runs the fixed-point iteration on the terminal voltage:
// η depends on V_t which depends on the drawn power which depends on η.
// Three rounds converge to well under a millivolt for realistic efficiency
// slopes. warm seeds the iteration (callers pass the previous solution).
// On success s.scratch holds the per-branch currents; ok is false when the
// network cannot deliver the demanded power (brown-out), leaving vt at the
// last converged value. The system state is not advanced.
func (s *System) solveTerminal(served, warm float64) (vt float64, ok bool) {
	vt = warm
	if vt <= 0 {
		vt = s.cfg.Storage.OpenCircuitVoltage()
	}
	ok = true
	for iter := 0; iter < 3; iter++ {
		pin := s.cfg.Output.InputPower(served, vt)
		nvt, _, solved := solveNode(s.cfg.Storage.Branches, pin, s.scratch)
		if !solved {
			return vt, false
		}
		vt = nvt
	}
	return vt, ok
}

// solveNode finds the terminal voltage V_t satisfying
// Σ (V_i − V_t)/R_i = pin/V_t and returns per-branch currents (positive =
// discharging the branch). ok is false when the network cannot deliver pin
// (brown-out). With pin == 0 the solution is the conductance-weighted mean
// of branch voltages (pure redistribution). scratch, when large enough,
// backs the returned slice to avoid per-step allocation; pass nil to
// allocate.
func solveNode(branches []*capacitor.Branch, pin float64, scratch []float64) (float64, []float64, bool) {
	const rMin = 1e-6 // clamp for near-zero ESR branches
	currents := scratch
	if cap(currents) < len(branches) {
		currents = make([]float64, len(branches))
	} else {
		// No zeroing pass: every success path below overwrites every
		// element, and the failure paths return contents callers ignore
		// (Step falls back to maxPowerPoint, which rewrites the slice).
		currents = currents[:len(branches)]
	}

	var sumG, sumGV float64
	for _, b := range branches {
		r := b.ESR
		if r < rMin {
			r = rMin
		}
		g := 1 / r
		sumG += g
		sumGV += g * b.Voltage
	}
	vavg := sumGV / sumG

	var vt float64
	if pin <= 0 {
		vt = vavg
	} else if len(branches) == 1 {
		// Closed-form quadratic for the common single-bank case.
		r := branches[0].ESR
		if r < rMin {
			r = rMin
		}
		iin, ok := booster.InputCurrentQuadratic(branches[0].Voltage, r, pin)
		if !ok {
			return 0, currents, false
		}
		vt = branches[0].Voltage - iin*r
		currents[0] = iin
		return vt, currents, true
	} else {
		// f(V) = Σ(V_i−V)/R_i − pin/V = sumGV − sumG·V − pin/V.
		// f peaks at V* = sqrt(pin/sumG); the stable root is in [V*, vavg].
		f := func(v float64) float64 { return sumGV - sumG*v - pin/v }
		vstar := math.Sqrt(pin / sumG)
		if vstar >= vavg || f(vstar) < 0 {
			return 0, currents, false
		}
		lo, hi := vstar, vavg
		for i := 0; i < 64; i++ {
			mid := 0.5 * (lo + hi)
			if f(mid) >= 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		vt = 0.5 * (lo + hi)
	}

	for i, b := range branches {
		r := b.ESR
		if r < rMin {
			r = rMin
		}
		currents[i] = (b.Voltage - vt) / r
	}
	return vt, currents, true
}

// maxPowerPoint returns the terminal voltage and branch currents at the
// network's maximum deliverable power — the state the system collapses
// through during a brown-out.
func maxPowerPoint(branches []*capacitor.Branch, scratch []float64) (float64, []float64) {
	const rMin = 1e-6
	var sumG, sumGV float64
	for _, b := range branches {
		r := b.ESR
		if r < rMin {
			r = rMin
		}
		sumG += 1 / r
		sumGV += b.Voltage / r
	}
	vt := 0.5 * sumGV / sumG // half the open-node voltage
	currents := scratch
	if cap(currents) < len(branches) {
		currents = make([]float64, len(branches))
	} else {
		currents = currents[:len(branches)]
	}
	for i, b := range branches {
		r := b.ESR
		if r < rMin {
			r = rMin
		}
		currents[i] = (b.Voltage - vt) / r
	}
	return vt, currents
}

// RunResult summarizes the execution of one load profile.
type RunResult struct {
	Completed     bool    // the profile ran to the end without power failure
	PowerFailed   bool    // the monitor cut power during the run
	VStart        float64 // terminal voltage just before the load was applied
	VMin          float64 // minimum terminal voltage while the load ran
	VEndImmediate float64 // terminal voltage at the instant the load ended
	VFinal        float64 // terminal voltage after the rebound settled
	Duration      float64 // how long the profile ran before finishing/failing
	EnergyUsed    float64 // energy removed from storage during the run
	FailTime      float64 // time of the power failure (if any)
	// Err is nil on completion, ErrBrownout on a power failure, ErrDiverged
	// when the nodal solution became non-finite, and the context's error
	// when RunOptions.Ctx was canceled mid-run (match with errors.Is).
	Err error
}

// RunOptions controls Run.
type RunOptions struct {
	// HarvestPower is the constant harvested power during the run (W).
	HarvestPower float64
	// ReboundTimeout bounds how long to wait for the rebound to settle
	// after the load ends. 0 = 1 s.
	ReboundTimeout float64
	// Recorder, when non-nil, receives every step.
	Recorder *trace.Recorder
	// Baseline is an extra constant current drawn for the entire run on top
	// of the profile (e.g. MCU active current or profiling ADC current).
	Baseline float64
	// SkipRebound skips the post-load settle phase (VFinal = VEndImmediate).
	SkipRebound bool
	// OnStep, when non-nil, observes every integration step (profilers use
	// this to sample the terminal voltage like an ADC would).
	OnStep func(StepInfo)
	// Ctx, when non-nil, lets long simulations be abandoned mid-run: the
	// steppers poll it every ctxCheckInterval ticks (and the fast path per
	// macro segment) and return early with Err set to ctx.Err() and
	// Completed false. A nil Ctx costs one pointer check per poll point, so
	// the hot loop stays allocation-free. Serving threads each request's
	// deadline through here; CLIs thread their signal context.
	Ctx context.Context
	// Fast opts into the analytic segment advance (fast.go): quiescent
	// segments — constant demanded load, stable monitor state, no fault
	// window — are advanced in closed form instead of tick-by-tick. The
	// result tracks the exact stepper to within a millivolt on every
	// reported voltage with identical completion/brownout verdicts (see
	// TestFastEquivalence). The option is best-effort: runs that need
	// per-tick observation (Recorder, OnStep) or carry a fault injector
	// fall back to the exact stepper, which remains the default.
	Fast bool
}

// ctxCheckInterval is how many exact ticks elapse between RunOptions.Ctx
// polls: 512 ticks is ~4 ms of simulated time at the default step and a few
// microseconds of wall clock, so cancellation lands promptly without the
// poll showing up in profiles.
const ctxCheckInterval = 512

// canceled reports the context error carried by the options, or nil when no
// context was supplied. It allocates nothing, preserving the hot loop's
// zero-alloc contract.
func (opt RunOptions) canceled() error {
	if opt.Ctx == nil {
		return nil
	}
	return opt.Ctx.Err()
}

// abort finalizes res for a run abandoned at simulated offset t: the
// context error is surfaced on Err, Completed stays false, and the voltages
// report the state at the moment of abandonment.
func (s *System) abort(res RunResult, t float64, err error) RunResult {
	res.Err = err
	res.Duration = t
	res.VEndImmediate = s.lastVT
	res.VFinal = s.lastVT
	if math.IsInf(res.VMin, 1) {
		res.VMin = s.lastVT
	}
	return res
}

// Run applies a load profile from the system's current state and reports
// the voltages the Culpeo estimators need. The caller is responsible for
// putting the system in the desired starting state (see package harness).
func (s *System) Run(p load.Profile, opt RunOptions) RunResult {
	if opt.Fast && s.fastEligible(opt) {
		return s.runFast(p, opt)
	}
	dt := s.cfg.DT
	res := RunResult{VStart: s.terminalAtRest(), VMin: math.Inf(1)}

	dur := p.Duration()
	steps := int(math.Ceil(dur / dt))
	for i := 0; i < steps; i++ {
		t := float64(i) * dt
		if opt.Ctx != nil && i%ctxCheckInterval == 0 {
			if err := opt.Ctx.Err(); err != nil {
				return s.abort(res, t, err)
			}
		}
		iLoad := p.Current(t) + opt.Baseline
		e0 := s.cfg.Storage.TotalEnergy()
		info := s.Step(iLoad, opt.HarvestPower)
		res.EnergyUsed += e0 - s.cfg.Storage.TotalEnergy()
		if opt.OnStep != nil {
			opt.OnStep(info)
		}
		if opt.Recorder != nil {
			opt.Recorder.Add(trace.Sample{
				T: info.T, VTerm: info.VTerm, VOC: info.VOC,
				ILoad: info.ILoad, IIn: info.IIn,
			})
		}
		if info.VTerm < res.VMin {
			res.VMin = info.VTerm
		}
		if info.Failed {
			res.PowerFailed = true
			res.Err = ErrBrownout
			if info.Diverged {
				res.Err = ErrDiverged
			}
			res.FailTime = info.T
			res.Duration = t + dt
			res.VEndImmediate = info.VTerm
			res.VFinal = info.VTerm
			return res
		}
	}
	res.Completed = true
	res.Duration = dur
	res.VEndImmediate = s.lastVT

	if opt.SkipRebound {
		res.VFinal = res.VEndImmediate
		return res
	}
	res.VFinal = s.Rebound(opt)
	return res
}

// Rebound lets the network relax with no load until the terminal voltage
// stops rising (or the timeout elapses) and returns the settled voltage.
// The paper's Culpeo-R-ISR sleeps in 50 ms intervals watching for the
// maximum; we integrate until dV over 10 ms falls under 50 µV.
func (s *System) Rebound(opt RunOptions) float64 {
	dt := s.cfg.DT
	timeout := opt.ReboundTimeout
	if timeout <= 0 {
		timeout = 1.0
	}
	window := int(math.Max(1, 10e-3/dt))
	prev := s.lastVT
	steps := int(timeout / dt)
	for i := 0; i < steps; i++ {
		if opt.Ctx != nil && i%ctxCheckInterval == 0 && opt.Ctx.Err() != nil {
			return s.lastVT
		}
		info := s.Step(load.SleepCurrent, opt.HarvestPower)
		if opt.OnStep != nil {
			opt.OnStep(info)
		}
		if opt.Recorder != nil {
			opt.Recorder.Add(trace.Sample{
				T: info.T, VTerm: info.VTerm, VOC: info.VOC,
				ILoad: info.ILoad, IIn: info.IIn,
			})
		}
		if i%window == window-1 {
			if math.Abs(info.VTerm-prev) < 50e-6 {
				return info.VTerm
			}
			prev = info.VTerm
		}
	}
	return s.lastVT
}

// terminalAtRest returns the no-load terminal voltage from the current
// branch state without advancing time.
func (s *System) terminalAtRest() float64 {
	vt, _, _ := solveNode(s.cfg.Storage.Branches, 0, s.scratch)
	return vt
}

// ChargeTo recharges the buffer to the target voltage using direct charge
// injection (the test harness's bench supply) and returns an error if the
// target is not plausible. It also re-arms the monitor when the target
// reaches V_high.
func (s *System) ChargeTo(v float64) error {
	if v <= 0 {
		return fmt.Errorf("powersys: cannot charge to %g V", v)
	}
	s.cfg.Storage.SetAll(v)
	s.lastVT = v
	s.monitor.Observe(v)
	return nil
}

// DischargeTo drains the buffer to the target open-circuit voltage (the
// harness's controlled discharge before applying a profile at a chosen
// V_start). The monitor state is preserved.
func (s *System) DischargeTo(v float64) error {
	if v < 0 {
		return fmt.Errorf("powersys: cannot discharge to %g V", v)
	}
	for _, b := range s.cfg.Storage.Branches {
		if b.Voltage > v {
			b.Voltage = v
		}
	}
	s.lastVT = s.terminalAtRest()
	return nil
}

package powersys

import (
	"context"
	"errors"
	"testing"

	"culpeo/internal/load"
)

func ctxSystem(t *testing.T) *System {
	t.Helper()
	sys, err := New(Capybara())
	if err != nil {
		t.Fatal(err)
	}
	sys.Monitor().Force(true)
	return sys
}

// TestRunCanceled proves a pre-canceled context aborts the run immediately
// on both steppers: the result carries the context error, Completed stays
// false, and no power-failure verdict is fabricated.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, fast := range []bool{false, true} {
		sys := ctxSystem(t)
		res := sys.Run(load.NewUniform(5e-3, 10), RunOptions{Ctx: ctx, SkipRebound: true, Fast: fast})
		if res.Completed {
			t.Errorf("fast=%v: canceled run reported Completed", fast)
		}
		if res.PowerFailed {
			t.Errorf("fast=%v: canceled run reported PowerFailed", fast)
		}
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("fast=%v: Err = %v, want context.Canceled", fast, res.Err)
		}
		if res.Duration > 0.5 {
			t.Errorf("fast=%v: canceled run simulated %g s", fast, res.Duration)
		}
	}
}

// TestRunDeadline exercises a deadline landing mid-run: a 10-second profile
// under a context that expires almost immediately must return early with
// DeadlineExceeded rather than simulating to the end.
func TestRunDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 1)
	defer cancel()
	<-ctx.Done() // the 1 ns deadline has certainly passed
	sys := ctxSystem(t)
	res := sys.Run(load.NewUniform(1e-3, 10), RunOptions{Ctx: ctx, SkipRebound: true})
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", res.Err)
	}
	if res.Completed || res.Duration >= 10 {
		t.Fatalf("run was not abandoned: completed=%v duration=%g", res.Completed, res.Duration)
	}
}

// TestRunNilCtxUnchanged locks in that runs without a context behave exactly
// as before the option existed.
func TestRunNilCtxUnchanged(t *testing.T) {
	sys := ctxSystem(t)
	res := sys.Run(load.NewUniform(5e-3, 50e-3), RunOptions{SkipRebound: true})
	if !res.Completed || res.Err != nil {
		t.Fatalf("nil-ctx run: completed=%v err=%v", res.Completed, res.Err)
	}
}

// TestReboundCanceled: a canceled context stops the settle loop and returns
// the last solved voltage instead of integrating out the full timeout.
func TestReboundCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys := ctxSystem(t)
	// Drop some charge first so a real rebound would take a while.
	sys.Run(load.NewUniform(50e-3, 20e-3), RunOptions{SkipRebound: true})
	before := sys.Now()
	v := sys.Rebound(RunOptions{Ctx: ctx})
	if v <= 0 {
		t.Fatalf("rebound voltage %g", v)
	}
	if sys.Now()-before > 10e-3 {
		t.Fatalf("canceled rebound integrated %g s", sys.Now()-before)
	}
}

package powersys

import "errors"

// Sentinel errors let schedulers and soak drivers distinguish "the power
// system browned out" (expected physics, retry after recharge) from "the
// numerics broke" (a model bug or absurd injected state, abort) without
// string-matching. Both are carried on RunResult.Err and match with
// errors.Is.
var (
	// ErrBrownout marks a run that ended in a power failure: the network
	// could not deliver the demanded power through its ESR, or the monitor
	// cut the output at V_off.
	ErrBrownout = errors.New("powersys: brownout")
	// ErrDiverged marks a run whose nodal solution left the realm of
	// finite numbers — the model broke, the result is meaningless.
	ErrDiverged = errors.New("powersys: numerical divergence")
)

// Injector perturbs the physical inputs of each integration step — the
// supply/storage hook package faults drives. A nil injector (the default)
// leaves the nominal path untouched and costs one pointer check per step.
type Injector interface {
	// HarvestPower transforms the harvested power arriving at time t (s).
	HarvestPower(t, p float64) float64
	// LeakageCurrent returns extra current (A) drained directly from the
	// main storage branch at time t; values <= 0 mean none.
	LeakageCurrent(t float64) float64
}

// Inject attaches a fault injector to the system (nil detaches it).
func (s *System) Inject(in Injector) { s.inject = in }

package powersys

import (
	"errors"
	"math"
	"testing"

	"culpeo/internal/load"
)

func TestRunErrNilOnSuccess(t *testing.T) {
	sys, err := New(Capybara())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ChargeTo(2.56); err != nil {
		t.Fatal(err)
	}
	sys.Monitor().Force(true)
	res := sys.Run(load.NewUniform(5e-3, 10e-3), RunOptions{SkipRebound: true})
	if !res.Completed || res.Err != nil {
		t.Fatalf("clean run: completed=%v err=%v", res.Completed, res.Err)
	}
}

func TestRunErrBrownout(t *testing.T) {
	sys, err := New(Capybara())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ChargeTo(2.56); err != nil {
		t.Fatal(err)
	}
	if err := sys.DischargeTo(1.65); err != nil {
		t.Fatal(err)
	}
	sys.Monitor().Force(true)
	res := sys.Run(load.NewUniform(50e-3, 200e-3), RunOptions{SkipRebound: true})
	if res.Completed {
		t.Fatal("overload from 1.65 V should brown out")
	}
	if !errors.Is(res.Err, ErrBrownout) {
		t.Errorf("err = %v, want ErrBrownout", res.Err)
	}
	if errors.Is(res.Err, ErrDiverged) {
		t.Error("brownout misreported as divergence")
	}
}

func TestRunErrDiverged(t *testing.T) {
	// The injector guards filter non-finite inputs (NaN harvest or leak is
	// dropped, infinite leak clamps to 0 V), so the only way the nodal
	// solution diverges is broken model state itself — the "NaN branch
	// voltage" case the Step documentation names. Poison it directly.
	sys, err := New(Capybara())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ChargeTo(2.56); err != nil {
		t.Fatal(err)
	}
	sys.Monitor().Force(true)
	sys.cfg.Storage.Main().Voltage = math.NaN()
	res := sys.Run(load.NewUniform(5e-3, 20e-3), RunOptions{SkipRebound: true})
	if res.Completed {
		t.Fatal("NaN-poisoned run reported success")
	}
	if !errors.Is(res.Err, ErrDiverged) {
		t.Errorf("err = %v, want ErrDiverged", res.Err)
	}
	if errors.Is(ErrDiverged, ErrBrownout) {
		t.Error("sentinels must stay distinct")
	}
}

// leakInjector drains a constant extra current, for checking the injector's
// storage-drain hook feeds the real physics.
type leakInjector struct{ i float64 }

func (leakInjector) HarvestPower(_, p float64) float64 { return p }
func (l leakInjector) LeakageCurrent(float64) float64  { return l.i }

func TestInjectedLeakDrainsStorage(t *testing.T) {
	run := func(leak float64) float64 {
		sys, err := New(Capybara())
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.ChargeTo(2.4); err != nil {
			t.Fatal(err)
		}
		sys.Monitor().Force(true)
		if leak > 0 {
			sys.Inject(leakInjector{i: leak})
		}
		res := sys.Run(load.NewUniform(1e-3, 100e-3), RunOptions{SkipRebound: true})
		if !res.Completed {
			t.Fatal("light load failed")
		}
		return res.VFinal
	}
	clean, leaky := run(0), run(5e-3)
	if !(leaky < clean-1e-3) {
		t.Errorf("5 mA leak left V_final %g vs clean %g", leaky, clean)
	}
}

// Zero-allocation guards for the batch lanes, mirroring alloc_test.go.
// The race detector's instrumentation allocates, so the pins only hold in
// normal builds; `make alloc` (and `make batch`) run them there.
//
//go:build !race

package powersys

import (
	"testing"

	"culpeo/internal/load"
)

// batchAllocSystem builds a small prepared batch with lanes that complete
// and lanes that brown out, so both retirement paths stay on the measured
// loop.
func batchAllocSystem(t *testing.T, multi bool) *BatchSystem {
	t.Helper()
	cfg := equivCfg(t, multi)
	var task load.Profile = load.NewPulse(20e-3, 2e-3)
	var doomed load.Profile = load.NewUniform(50e-3, 20e-3)
	bs, err := NewBatch(cfg, []BatchScenario{
		{Profile: task, VStart: 2.3},
		{Profile: doomed, VStart: 1.72},
		{Profile: task, VStart: 2.0, Harvest: 2e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

// TestBatchStepAllocFree pins the exact batch lane at zero allocations:
// after NewBatch, Reset+Run — SoA stepping, monitor evaluation, segment
// bookkeeping, lane compaction — must not touch the heap.
func TestBatchStepAllocFree(t *testing.T) {
	for _, multi := range []bool{false, true} {
		bs := batchAllocSystem(t, multi)
		opt := BatchOptions{SkipRebound: true}
		if n := testing.AllocsPerRun(10, func() {
			bs.Reset()
			bs.Run(opt)
		}); n != 0 {
			t.Fatalf("multi=%v: exact batch loop allocates %.1f times per run, want 0", multi, n)
		}
	}
}

// TestBatchRunAllocFree pins the fast batch lane — compiled-schedule
// segment advance plus the rebound settle phase — at zero allocations.
func TestBatchRunAllocFree(t *testing.T) {
	for _, multi := range []bool{false, true} {
		bs := batchAllocSystem(t, multi)
		opt := BatchOptions{Fast: true, ReboundTimeout: 0.05}
		if n := testing.AllocsPerRun(10, func() {
			bs.Reset()
			bs.Run(opt)
		}); n != 0 {
			t.Fatalf("multi=%v: fast batch loop allocates %.1f times per run, want 0", multi, n)
		}
	}
}

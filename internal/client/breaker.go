// The per-backend circuit breaker: the client-side mirror of the server's
// admission control. Where culpeod sheds load it cannot absorb (503 +
// Retry-After), the breaker sheds load the backend cannot answer — after a
// run of consecutive failures it opens and the pool stops offering traffic
// to that backend, so a dead or flapping instance costs one failed probe
// per cooldown instead of one failed attempt per request.
//
// The state machine is the classic three-state one:
//
//	closed ──(FailureThreshold consecutive failures)──► open
//	open ──(cooldown elapses)──► half-open
//	half-open ──(probe succeeds)──► closed
//	half-open ──(probe fails)──► open
//
// with one deliberate twist: the cooldown can be counted in *rejected
// calls* (CooldownCalls) instead of wall-clock time. Event-counted
// cooldowns make the whole transition history a pure function of the
// request outcome sequence — no timers — which is what lets the chaos soak
// golden-lock its breaker log and replay it bit-identically across runs.
// Production configs use the wall-clock Cooldown; deterministic harnesses
// use CooldownCalls.
package client

import (
	"sync"
	"time"
)

// State is a breaker position.
type State int32

const (
	// Closed passes traffic and counts consecutive failures.
	Closed State = iota
	// Open refuses traffic until the cooldown elapses.
	Open
	// HalfOpen admits a limited number of trial requests.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerConfig tunes one backend's breaker. The zero value gives the
// production defaults; Disabled turns the breaker into a pass-through
// (loadtest uses this: a saturated server answering 503s is the
// measurement, not a dead backend).
type BreakerConfig struct {
	// Disabled makes Allow always true and Record a no-op.
	Disabled bool
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (<=0: 3).
	FailureThreshold int
	// Cooldown is the wall-clock open→half-open delay. Ignored when
	// CooldownCalls > 0; defaults to 2 s when both are unset.
	Cooldown time.Duration
	// CooldownCalls, when > 0, counts the cooldown in rejected Allow calls
	// instead of wall-clock time: the N+1st call after opening is admitted
	// as the half-open trial. Deterministic — used by the chaos soak.
	CooldownCalls int
	// HalfOpenProbes bounds concurrent trial requests in half-open (<=0: 1).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 && c.CooldownCalls <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Transition reports one breaker state change. Cause is a short
// human-readable reason ("failures=3", "cooldown", "probe ok", …) that the
// chaos soak golden-locks.
type Transition struct {
	From, To State
	Cause    string
}

// Breaker is one backend's circuit breaker. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	fails    int       // consecutive failures while closed
	rejects  int       // calls refused since opening (event cooldown)
	openedAt time.Time // when the breaker last opened (time cooldown)
	inTrial  int       // outstanding half-open trials

	// onTransition, set by the pool, observes every state change. Called
	// with the breaker lock held so the transition order is exact; keep it
	// fast and never call back into the breaker.
	onTransition func(Transition)
}

// NewBreaker builds a breaker with the config's defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State reports the current position.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *Breaker) transition(to State, cause string) {
	if b.state == to {
		return
	}
	ev := Transition{From: b.state, To: to, Cause: cause}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(ev)
	}
}

// Allow reports whether a request may be offered to the backend. In open
// state the refusal itself advances the event-counted cooldown; once the
// cooldown elapses the call is admitted as the half-open trial.
func (b *Breaker) Allow() bool {
	if b.cfg.Disabled {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.CooldownCalls > 0 {
			b.rejects++
			if b.rejects < b.cfg.CooldownCalls {
				return false
			}
		} else if time.Since(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.transition(HalfOpen, "cooldown")
		b.inTrial = 1
		return true
	default: // HalfOpen
		if b.inTrial >= b.cfg.HalfOpenProbes {
			return false
		}
		b.inTrial++
		return true
	}
}

// Success records a request the backend answered (any response proves the
// backend alive — a 4xx is the caller's bug, not the backend's).
func (b *Breaker) Success() {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.reset()
		b.transition(Closed, "trial ok")
	case Closed:
		b.fails = 0
	}
}

// Failure records a transport error, timeout or 5xx.
func (b *Breaker) Failure() {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.open("failures=" + itoa(b.fails))
		}
	case HalfOpen:
		b.open("trial failed")
	}
}

// open (re)arms the cooldown. Caller holds the lock.
func (b *Breaker) open(cause string) {
	b.fails = 0
	b.rejects = 0
	b.inTrial = 0
	b.openedAt = time.Now()
	b.transition(Open, cause)
}

func (b *Breaker) reset() {
	b.fails = 0
	b.rejects = 0
	b.inTrial = 0
}

// Release returns an admitted-but-unresolved trial slot: the pool
// abandoned the attempt before the backend answered (hedge sibling won,
// or the slot was picked but never used), so the trial is neither a
// success nor a failure.
func (b *Breaker) Release() {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.inTrial > 0 {
		b.inTrial--
	}
}

// Reset force-closes the breaker (a health probe saw the backend answer).
func (b *Breaker) Reset(cause string) {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reset()
	b.transition(Closed, cause)
}

// itoa avoids strconv for the two-digit counts breakers deal in.
func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

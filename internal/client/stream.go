// Streaming subscribe support: Pool.OpenStream holds a device's
// /v1/stream SSE downlink open, uploads observations as ordinary POSTs to
// the same (pinned) backend, and survives every way the connection can die
// — server drain, slow-consumer kick, eviction, a netchaos mid-stream cut
// — by reconnecting with the client-side ring tail replayed, after which
// the server's rebuilt estimate is bit-identical to the lost session's
// (both are a deterministic fold over the same window).
//
// A Stream is a session-affine object: observation POSTs must land on the
// backend holding the session, so the stream pins the backend the attach
// succeeded on and only re-picks when that backend fails. One goroutine
// owns the control methods (Observe, Resume, CloseSession, Detach);
// Updates and Terminal may be drained from anywhere.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"culpeo/internal/api"
)

// Stream endpoint paths, aliased next to the four request/response paths.
const (
	PathStream    = api.PathStream
	PathStreamObs = api.PathStreamObs
)

// DefaultStreamTail sizes the client-side replay ring when StreamConfig
// leaves Ring zero. It matches the server's default session ring, so the
// replayed tail rebuilds the complete window.
const DefaultStreamTail = 16

// ErrStreamClosed reports a control operation on a stream whose session
// already ended with a terminal event.
var ErrStreamClosed = errors.New("client: stream session closed")

// StreamConfig opens one device stream.
type StreamConfig struct {
	// Device identifies the session (api.ValidStreamDevice).
	Device string
	// Power is the device's power-system spec, fixed for the session.
	Power api.PowerSpec
	// Ring sizes both the requested server window and the client replay
	// tail (<=0: DefaultStreamTail). Keeping them equal is what makes a
	// rebuilt session's window identical to the lost one's.
	Ring int
	// Buffer sizes the Updates channel (<=0: 16).
	Buffer int
}

// Sample is one observation without its sequence number — the stream
// assigns sequence numbers itself, which is what makes its upload retries
// idempotent.
type Sample struct {
	VStart float64
	VMin   float64
	VFinal float64
	Failed bool
}

// StreamStats counts a stream's lifetime events.
type StreamStats struct {
	Reconnects   int // attach calls after the first
	Rebuilds     int // reattaches whose snapshot showed a fresh session
	DupTerminals int // terminal events deduplicated (tombstone replays)
	Kicked       int // connections ended by the server (drain/supersede/kick)
}

// Stream is one device's live session subscription.
type Stream struct {
	p   *Pool
	cfg StreamConfig

	updates  chan api.StreamUpdate
	terminal chan api.StreamUpdate

	mu          sync.Mutex
	b           *backend // pinned session backend
	tail        []api.StreamObservation
	nextSeq     uint64
	lastEvent   uint64
	attached    bool
	everOpened  bool
	gen         uint64 // connection generation; readLoop only touches state it owns
	cancel      context.CancelFunc
	readerDone  chan struct{}
	gotTerminal bool
	term        api.StreamUpdate
	stats       StreamStats
}

// OpenStream attaches a session for cfg.Device and returns the stream plus
// the snapshot update (the session's complete state at attach). The caller
// drains Updates; a terminal update (reason "close") arrives on Terminal
// exactly once.
func (p *Pool) OpenStream(ctx context.Context, cfg StreamConfig) (*Stream, api.StreamUpdate, error) {
	if !api.ValidStreamDevice(cfg.Device) {
		return nil, api.StreamUpdate{}, fmt.Errorf("client: bad stream device %q", cfg.Device)
	}
	if cfg.Ring <= 0 {
		cfg.Ring = DefaultStreamTail
	}
	if cfg.Ring > api.MaxStreamRing {
		cfg.Ring = api.MaxStreamRing
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 16
	}
	s := &Stream{
		p:        p,
		cfg:      cfg,
		updates:  make(chan api.StreamUpdate, cfg.Buffer),
		terminal: make(chan api.StreamUpdate, 1),
	}
	snap, err := s.attach(ctx)
	if err != nil {
		return nil, api.StreamUpdate{}, err
	}
	return s, snap, nil
}

// Updates streams every non-terminal update (snapshots excluded — those
// are returned by OpenStream/Resume). The consumer must drain it; the
// channel is bounded and the reader blocks on it.
func (s *Stream) Updates() <-chan api.StreamUpdate { return s.updates }

// Terminal delivers the session's close terminal exactly once, even when
// reconnects make the server replay it.
func (s *Stream) Terminal() <-chan api.StreamUpdate { return s.terminal }

// Attached reports whether a live downlink connection exists right now.
func (s *Stream) Attached() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attached
}

// Tail copies the client-side replay ring (oldest first) — exactly the
// observation window a reconnect rebuilds, which makes it the reference
// window for estimate-parity checks.
func (s *Stream) Tail() []api.StreamObservation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]api.StreamObservation, len(s.tail))
	copy(out, s.tail)
	return out
}

// LastSeq returns the highest observation sequence number assigned so far.
func (s *Stream) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq
}

// Stats snapshots the stream's lifetime counters.
func (s *Stream) Stats() StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Detach drops the downlink connection, leaving the session alive
// server-side (it keeps folding uploads and eventually idles out). Resume
// re-attaches. Idempotent.
func (s *Stream) Detach() {
	s.mu.Lock()
	cancel, done := s.cancel, s.readerDone
	s.cancel = nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if done != nil {
		<-done
	}
}

// Close is Detach under the conventional name; the session is left to the
// server's idle eviction (or was already closed via CloseSession).
func (s *Stream) Close() { s.Detach() }

// Resume (re)attaches the downlink, replaying the ring tail so a backend
// that lost the session rebuilds it bit-identically. Returns the snapshot.
func (s *Stream) Resume(ctx context.Context) (api.StreamUpdate, error) {
	s.mu.Lock()
	if s.attached {
		s.mu.Unlock()
		return api.StreamUpdate{}, errors.New("client: stream already attached")
	}
	s.mu.Unlock()
	return s.attach(ctx)
}

// Observe assigns sequence numbers to samples, records them in the replay
// tail, and uploads them to the session's backend, reattaching (with
// replay) when the backend answers 404 or stops answering at all. The
// refined estimate arrives on Updates; the returned ack carries the
// server's high-water mark.
func (s *Stream) Observe(ctx context.Context, samples ...Sample) (api.StreamObsResponse, error) {
	if len(samples) > api.MaxStreamObsBatch {
		return api.StreamObsResponse{}, fmt.Errorf("client: %d observations exceed the %d batch cap", len(samples), api.MaxStreamObsBatch)
	}
	s.mu.Lock()
	obs := make([]api.StreamObservation, len(samples))
	for i, sm := range samples {
		s.nextSeq++
		obs[i] = api.StreamObservation{Seq: s.nextSeq, VStart: sm.VStart, VMin: sm.VMin, VFinal: sm.VFinal, Failed: sm.Failed}
	}
	s.tail = append(s.tail, obs...)
	if over := len(s.tail) - s.cfg.Ring; over > 0 {
		s.tail = append(s.tail[:0], s.tail[over:]...)
	}
	s.mu.Unlock()
	return s.post(ctx, api.StreamObsRequest{Device: s.cfg.Device, Observations: obs})
}

// CloseSession folds nothing further, closes the session, and waits for
// the terminal update. Safe to retry: a tombstoned session acks the close
// idempotently, and a lost terminal is recovered by reattaching (the
// tombstone replays it).
func (s *Stream) CloseSession(ctx context.Context) (api.StreamUpdate, error) {
	if _, err := s.post(ctx, api.StreamObsRequest{Device: s.cfg.Device, Close: true}); err != nil && !errors.Is(err, ErrStreamClosed) {
		return api.StreamUpdate{}, err
	}
	// ErrStreamClosed is success here, not failure: the session is already
	// closed — by a lost-ack retry of this very call (the server processed
	// the close but the connection died before the ack), a tombstone 409,
	// or an earlier CloseSession — and the loop below collects the terminal.
	for {
		s.mu.Lock()
		got, term := s.gotTerminal, s.term
		s.mu.Unlock()
		if got {
			return term, nil
		}
		select {
		case u := <-s.terminal:
			// Put it back for the Terminal() consumer; term is also recorded.
			select {
			case s.terminal <- u:
			default:
			}
			return u, nil
		case <-time.After(150 * time.Millisecond):
			// The downlink may have died between the close ack and the
			// terminal: reattach — the tombstone replays the terminal.
			// ErrStreamClosed means the terminal just landed via another
			// path; the next loop iteration returns it.
			if !s.Attached() {
				if _, err := s.attach(ctx); err != nil && !errors.Is(err, ErrStreamClosed) {
					return api.StreamUpdate{}, err
				}
			}
		case <-ctx.Done():
			return api.StreamUpdate{}, ctx.Err()
		}
	}
}

// post uploads one StreamObsRequest to the pinned backend with
// reattach-on-404 and failover-on-connection-death.
func (s *Stream) post(ctx context.Context, req api.StreamObsRequest) (api.StreamObsResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return api.StreamObsResponse{}, fmt.Errorf("client: marshal stream obs: %w", err)
	}
	call := s.p.met.calls.Add(1)
	var lastErr error
	for n := 1; n <= s.p.cfg.MaxAttempts; n++ {
		if err := ctx.Err(); err != nil {
			break
		}
		s.mu.Lock()
		b, attached := s.b, s.attached
		s.mu.Unlock()
		if b == nil || !attached {
			if _, err := s.attach(ctx); err != nil {
				// A closed session never reopens: surface it now instead of
				// burning the remaining attempts on attaches that must fail.
				if errors.Is(err, ErrStreamClosed) {
					return api.StreamObsResponse{}, err
				}
				lastErr = err
				continue
			}
			s.mu.Lock()
			b = s.b
			s.mu.Unlock()
		}
		raw, err := s.p.attempt(ctx, b, PathStreamObs, body, call, n)
		if err == nil {
			var out api.StreamObsResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				return api.StreamObsResponse{}, fmt.Errorf("client: decode stream obs response: %w", err)
			}
			return out, nil
		}
		lastErr = err
		var he *HTTPError
		switch {
		case errors.As(err, &he) && he.Status == http.StatusNotFound:
			// The backend lost the session (restart, eviction, failover):
			// drop the dead downlink and reattach with the replay tail. The
			// observations in this request ride along in the replay, so a
			// success here IS a successful fold — but re-posting is harmless
			// (sequence dedup), so just loop.
			s.markLost()
		case errors.As(err, &he) && he.Status == http.StatusConflict:
			return api.StreamObsResponse{}, fmt.Errorf("%w: %v", ErrStreamClosed, err)
		case errors.As(err, &he) && !he.Retryable():
			return api.StreamObsResponse{}, err
		case errors.As(err, &he):
			// 5xx from the pinned backend: retry there after a beat (the
			// session is presumably still alive behind the overload).
			if serr := sleepCtx(ctx, s.p.backoff(n-1)); serr != nil {
				return api.StreamObsResponse{}, fmt.Errorf("client: stream obs: %w (last error: %v)", serr, lastErr)
			}
		default:
			// Connection-level failure: the backend may be gone entirely.
			// Unpin so the reattach can fail over.
			s.markLost()
			s.mu.Lock()
			s.b = nil
			s.mu.Unlock()
			if serr := sleepCtx(ctx, s.p.backoff(n-1)); serr != nil {
				return api.StreamObsResponse{}, fmt.Errorf("client: stream obs: %w (last error: %v)", serr, lastErr)
			}
		}
	}
	return api.StreamObsResponse{}, fmt.Errorf("client: stream obs for %s failed: %w", s.cfg.Device, lastErr)
}

// markLost tears down the downlink state after the session's backend lost
// it (or the connection died); the next attach replays the tail.
func (s *Stream) markLost() {
	s.mu.Lock()
	cancel := s.cancel
	s.cancel = nil
	s.attached = false
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// attach runs the connect loop: pinned backend first, then the pool's
// round-robin pick, with full-jitter backoff between rounds — the same
// discipline as the request/response retry loop, hand-rolled because the
// response here is a stream, not a body.
func (s *Stream) attach(ctx context.Context) (api.StreamUpdate, error) {
	s.mu.Lock()
	if s.gotTerminal {
		s.mu.Unlock()
		return api.StreamUpdate{}, ErrStreamClosed
	}
	req := api.StreamOpenRequest{
		Device:       s.cfg.Device,
		Power:        s.cfg.Power,
		Ring:         s.cfg.Ring,
		Replay:       append([]api.StreamObservation(nil), s.tail...),
		LastEventSeq: s.lastEvent,
	}
	reconnect := s.everOpened
	s.mu.Unlock()
	body, err := json.Marshal(req)
	if err != nil {
		return api.StreamUpdate{}, fmt.Errorf("client: marshal stream open: %w", err)
	}

	var lastErr error
	tried := make(map[*backend]bool)
	attempts, round := 0, 0
	for {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return api.StreamUpdate{}, fmt.Errorf("client: stream attach for %s: %w (last error: %v)", s.cfg.Device, err, lastErr)
			}
			return api.StreamUpdate{}, err
		}
		if attempts >= s.p.cfg.MaxAttempts {
			return api.StreamUpdate{}, fmt.Errorf("client: stream attach for %s failed after %d attempts: %w", s.cfg.Device, attempts, lastErr)
		}
		b := s.pickBackend(tried)
		if b == nil {
			round++
			if err := sleepCtx(ctx, s.p.backoff(round)); err != nil {
				return api.StreamUpdate{}, fmt.Errorf("client: stream attach for %s: %w (last error: %v)", s.cfg.Device, err, lastErr)
			}
			clear(tried)
			continue
		}
		attempts++
		snap, err := s.connect(ctx, b, body, reconnect)
		if err == nil {
			return snap, nil
		}
		lastErr = err
		tried[b] = true
		var he *HTTPError
		if errors.As(err, &he) && !he.Retryable() && he.Status != http.StatusServiceUnavailable {
			return api.StreamUpdate{}, err
		}
	}
}

// pickBackend prefers the pinned session backend, then falls back to the
// pool's round-robin pick. The returned backend's breaker slot is held;
// connect records the verdict.
func (s *Stream) pickBackend(tried map[*backend]bool) *backend {
	s.mu.Lock()
	pinned := s.b
	s.mu.Unlock()
	if pinned != nil && !tried[pinned] && !pinned.ejected.Load() {
		if pinned.brk.Allow() {
			return pinned
		}
		s.p.met.breakerRejects.Add(1)
		tried[pinned] = true
	}
	return s.p.pick(tried)
}

// connect performs one attach attempt against b: POST the open request,
// require 200 + a snapshot frame within AttemptTimeout, then hand the
// connection to the reader goroutine. The connection context is
// independent of ctx — the stream outlives the attach call.
func (s *Stream) connect(ctx context.Context, b *backend, body []byte, reconnect bool) (api.StreamUpdate, error) {
	s.p.met.attempts.Add(1)
	b.met.attempts.Add(1)
	connCtx, cancel := context.WithCancel(context.Background())
	stop := context.AfterFunc(ctx, cancel)
	watchdog := time.AfterFunc(s.p.cfg.AttemptTimeout, cancel)
	fail := func(format string, args ...any) (api.StreamUpdate, error) {
		watchdog.Stop()
		stop()
		cancel()
		b.met.failures.Add(1)
		b.brk.Failure()
		return api.StreamUpdate{}, fmt.Errorf("client: %s stream attach: %w", b.name, fmt.Errorf(format, args...))
	}

	req, err := http.NewRequestWithContext(connCtx, http.MethodPost, b.base+PathStream, bytes.NewReader(body))
	if err != nil {
		return fail("build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.RequestIDHeader, s.cfg.Device+"-a"+strconv.Itoa(int(s.p.met.attempts.Load())))

	resp, err := s.p.http.Do(req)
	if err != nil {
		return fail("%w", err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		he := &HTTPError{
			Status:     resp.StatusCode,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			RequestID:  resp.Header.Get(api.RequestIDHeader),
			Body:       errorLine(raw),
		}
		watchdog.Stop()
		stop()
		cancel()
		if he.Retryable() {
			b.met.failures.Add(1)
			b.brk.Failure()
		} else {
			b.brk.Success() // alive; the request (or a 503 drain) is the issue
		}
		return api.StreamUpdate{}, fmt.Errorf("client: %s stream attach: %w", b.name, he)
	}

	sc := api.NewSSEScanner(resp.Body)
	ev, err := sc.Next()
	if err != nil {
		resp.Body.Close()
		return fail("reading snapshot: %w", err)
	}
	var snap api.StreamUpdate
	if ev.Name != api.StreamEventUpdate || json.Unmarshal(ev.Data, &snap) != nil {
		resp.Body.Close()
		return fail("bad snapshot frame %q", ev.Name)
	}
	watchdog.Stop()
	stop()
	b.met.successes.Add(1)
	b.brk.Success()

	s.mu.Lock()
	s.b = b
	if reconnect {
		s.stats.Reconnects++
		if snap.Seq == 1 && s.lastEvent > 0 {
			// A fresh session answers its first snapshot with event seq 1:
			// the old session is gone and this one was rebuilt from our
			// replay. (A resumed session continues its event numbering.)
			s.stats.Rebuilds++
		}
	}
	if snap.Seq > s.lastEvent || snap.Seq == 1 {
		s.lastEvent = snap.Seq
	}
	s.everOpened = true
	if snap.Final {
		s.mu.Unlock()
		resp.Body.Close()
		cancel()
		if snap.Reason == "close" {
			s.deliverTerminal(snap)
		}
		return snap, nil
	}
	s.attached = true
	s.cancel = cancel
	done := make(chan struct{})
	s.readerDone = done
	s.gen++
	gen := s.gen
	s.mu.Unlock()
	go s.readLoop(connCtx, cancel, resp.Body, sc, done, gen)
	return snap, nil
}

// readLoop drains one connection's SSE events until the stream ends. gen
// identifies the connection this reader owns: after markLost plus a
// reattach, a late detach from the old reader must not clobber the new
// live connection's state.
func (s *Stream) readLoop(connCtx context.Context, cancel context.CancelFunc, body io.ReadCloser, sc *api.SSEScanner, done chan struct{}, gen uint64) {
	defer close(done)
	defer cancel()
	defer body.Close()
	detach := func() {
		s.mu.Lock()
		if s.gen == gen {
			s.attached = false
			s.cancel = nil
			s.readerDone = nil
		}
		s.mu.Unlock()
	}
	for {
		ev, err := sc.Next()
		if err != nil {
			detach()
			return
		}
		if ev.Name != api.StreamEventUpdate {
			continue
		}
		var u api.StreamUpdate
		if json.Unmarshal(ev.Data, &u) != nil {
			detach()
			return
		}
		s.mu.Lock()
		if u.Seq > s.lastEvent {
			s.lastEvent = u.Seq
		}
		s.mu.Unlock()
		if u.Final {
			if u.Reason == "close" {
				s.deliverTerminal(u)
			} else {
				// drain / superseded / slow-consumer: the connection is
				// over but the session lives; Resume reattaches.
				s.mu.Lock()
				s.stats.Kicked++
				if u.Reason == "drain" && s.gen == gen {
					// A draining backend refuses resumes of live sessions:
					// unpin so the reattach fails over instead of re-pinning
					// the server we were just kicked from.
					s.b = nil
				}
				s.mu.Unlock()
			}
			detach()
			return
		}
		select {
		case s.updates <- u:
		case <-connCtx.Done():
			detach()
			return
		}
	}
}

// deliverTerminal records the close terminal, delivering it downstream
// exactly once no matter how many tombstone replays arrive.
func (s *Stream) deliverTerminal(u api.StreamUpdate) {
	s.mu.Lock()
	if s.gotTerminal {
		s.stats.DupTerminals++
		s.mu.Unlock()
		return
	}
	s.gotTerminal = true
	s.term = u
	s.mu.Unlock()
	s.terminal <- u // cap 1, guarded by gotTerminal: never blocks
}

package client_test

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/capacitor"
	"culpeo/internal/client"
	"culpeo/internal/core"
	"culpeo/internal/powersys"
	"culpeo/internal/serve"
	"culpeo/internal/session"
)

// streamBackend is one real serve.Server behind an httptest listener — the
// stream tests run against the genuine endpoint, not a stub, so the parity
// checks cover the full wire round trip.
type streamBackend struct {
	srv *serve.Server
	ts  *httptest.Server
}

func newStreamBackend(t *testing.T, cfg serve.Config) *streamBackend {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { s.SetDraining(true); ts.Close() })
	return &streamBackend{srv: s, ts: ts}
}

// newStreamPool builds a fast-backoff pool against real backends.
func newStreamPool(t *testing.T, backends ...string) *client.Pool {
	t.Helper()
	p, err := client.New(client.Config{
		Backends:    backends,
		Budget:      5 * time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Seed:        42,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

// streamModel mirrors what the zero-value PowerSpec resolves to server-side.
func streamModel(t *testing.T) core.PowerModel {
	t.Helper()
	cfg := powersys.Capybara()
	m := core.PowerModel{
		C:     cfg.Storage.TotalCapacitance(),
		ESR:   capacitor.Flat(cfg.Storage.Main().ESR),
		VOut:  cfg.Output.VOut,
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Eff:   cfg.Output.Efficiency,
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("model: %v", err)
	}
	return m
}

func mkSample(i int) client.Sample {
	vstart := 2.28 + 0.015*float64(i%6)
	vfinal := vstart - 0.11 - 0.02*float64(i%4)
	return client.Sample{VStart: vstart, VMin: vfinal - 0.05, VFinal: vfinal, Failed: i%7 == 0}
}

func awaitStreamUpdate(t *testing.T, st *client.Stream) api.StreamUpdate {
	t.Helper()
	select {
	case u := <-st.Updates():
		return u
	case <-time.After(5 * time.Second):
		t.Fatal("no update within 5s")
		return api.StreamUpdate{}
	}
}

// checkStreamParity folds the client's own replay tail from scratch and
// requires the streamed estimate to match bit for bit.
func checkStreamParity(t *testing.T, u api.StreamUpdate, model core.PowerModel, st *client.Stream) {
	t.Helper()
	tail := st.Tail()
	want, have, err := session.FoldWindow(model, tail)
	if err != nil || !have {
		t.Fatalf("FoldWindow over %d obs: have=%v err=%v", len(tail), have, err)
	}
	if math.Float64bits(u.VSafe) != math.Float64bits(want.VSafe) ||
		math.Float64bits(u.VDelta) != math.Float64bits(want.VDelta) ||
		math.Float64bits(u.VE) != math.Float64bits(want.VE) {
		t.Fatalf("parity: streamed %+v != folded %+v over %d obs", u, want, len(tail))
	}
	if u.Window != len(tail) {
		t.Fatalf("window %d, want %d", u.Window, len(tail))
	}
	if math.Float64bits(u.Launch) != math.Float64bits(u.VSafe+u.Margin) {
		t.Fatalf("launch %v != v_safe+margin %v", u.Launch, u.VSafe+u.Margin)
	}
}

// TestStreamObserveClose is the client happy path: open, observe with
// per-update parity, close, exactly one terminal.
func TestStreamObserveClose(t *testing.T) {
	b := newStreamBackend(t, serve.Config{SessionRing: 8})
	p := newStreamPool(t, b.ts.URL)
	model := streamModel(t)
	ctx := context.Background()

	st, snap, err := p.OpenStream(ctx, client.StreamConfig{Device: "dev-client", Ring: 8})
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	defer st.Close()
	if snap.Seq != 1 || snap.Window != 0 {
		t.Fatalf("snapshot %+v", snap)
	}

	for i := 0; i < 6; i++ {
		ack, err := st.Observe(ctx, mkSample(3*i), mkSample(3*i+1), mkSample(3*i+2))
		if err != nil {
			t.Fatalf("Observe %d: %v", i, err)
		}
		if ack.LastSeq != st.LastSeq() {
			t.Fatalf("ack %+v, client high-water %d", ack, st.LastSeq())
		}
		checkStreamParity(t, awaitStreamUpdate(t, st), model, st)
	}

	term, err := st.CloseSession(ctx)
	if err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if !term.Final || term.Reason != "close" {
		t.Fatalf("terminal %+v", term)
	}
	checkStreamParity(t, term, model, st)
	select {
	case u := <-st.Terminal():
		if math.Float64bits(u.VSafe) != math.Float64bits(term.VSafe) {
			t.Fatalf("Terminal() delivered %+v != %+v", u, term)
		}
	case <-time.After(time.Second):
		t.Fatal("Terminal() never delivered")
	}

	// The session is over: further control operations refuse.
	if _, err := st.Observe(ctx, mkSample(99)); !errors.Is(err, client.ErrStreamClosed) {
		t.Fatalf("Observe after close: %v, want client.ErrStreamClosed", err)
	}
	if _, err := st.Resume(ctx); !errors.Is(err, client.ErrStreamClosed) {
		t.Fatalf("Resume after close: %v, want client.ErrStreamClosed", err)
	}
}

// TestStreamRebuildAfterEviction: the backend evicts the idle session; the
// next Observe gets 404, reattaches with the replay tail, and the rebuilt
// session's estimate is bit-identical to the from-scratch fold.
func TestStreamRebuildAfterEviction(t *testing.T) {
	b := newStreamBackend(t, serve.Config{SessionRing: 4})
	p := newStreamPool(t, b.ts.URL)
	model := streamModel(t)
	ctx := context.Background()

	st, _, err := p.OpenStream(ctx, client.StreamConfig{Device: "dev-evict", Ring: 4})
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	defer st.Close()
	if _, err := st.Observe(ctx, mkSample(0), mkSample(1), mkSample(2), mkSample(3), mkSample(4)); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	awaitStreamUpdate(t, st)
	st.Detach()
	if st.Attached() {
		t.Fatal("still attached after Detach")
	}
	// The server notices the dropped connection asynchronously; idle
	// eviction only applies to detached sessions.
	deadline := time.Now().Add(5 * time.Second)
	for b.srv.Sessions().Stats().Attached != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	// Sweep the detached session away server-side.
	for i := 0; i < session.DefaultIdleEpochs+2; i++ {
		b.srv.Sessions().AdvanceEpoch()
	}
	if n := b.srv.Sessions().Len(); n != 0 {
		t.Fatalf("%d sessions after sweeps", n)
	}

	// Observe again: 404 → reattach with replay → rebuilt session folds the
	// new batch; the ack's high-water mark covers it.
	ack, err := st.Observe(ctx, mkSample(5))
	if err != nil {
		t.Fatalf("Observe after eviction: %v", err)
	}
	if ack.LastSeq != st.LastSeq() || ack.LastSeq != 6 {
		t.Fatalf("ack %+v, want last_seq 6", ack)
	}
	checkStreamParity(t, awaitStreamUpdate(t, st), model, st)
	stats := st.Stats()
	if stats.Reconnects < 1 || stats.Rebuilds != 1 {
		t.Fatalf("stats %+v, want >=1 reconnect and exactly 1 rebuild", stats)
	}
}

// TestStreamFailover: the pinned backend drains mid-stream; the client sees
// the kick, fails over to the other backend, rebuilds from its tail, and
// the estimates re-converge bit-exactly.
func TestStreamFailover(t *testing.T) {
	b0 := newStreamBackend(t, serve.Config{SessionRing: 8})
	b1 := newStreamBackend(t, serve.Config{SessionRing: 8})
	p := newStreamPool(t, b0.ts.URL, b1.ts.URL)
	model := streamModel(t)
	ctx := context.Background()

	st, _, err := p.OpenStream(ctx, client.StreamConfig{Device: "dev-fo", Ring: 8})
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	defer st.Close()
	if _, err := st.Observe(ctx, mkSample(0), mkSample(1), mkSample(2)); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	before := awaitStreamUpdate(t, st)
	checkStreamParity(t, before, model, st)

	pinned, other := b0, b1
	if b1.srv.Sessions().Len() == 1 {
		pinned, other = b1, b0
	}
	if pinned.srv.Sessions().Len() != 1 {
		t.Fatalf("no backend holds the session")
	}

	// Drain the pinned backend: the downlink ends with a "drain" terminal
	// (a kick, not a close — the session resumes elsewhere).
	pinned.srv.SetDraining(true)
	deadline := time.Now().Add(5 * time.Second)
	for st.Attached() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st.Attached() {
		t.Fatal("still attached after drain")
	}
	// The next Observe fails over: the draining backend refuses even a
	// resume of the session it still holds (503 ErrDraining — anything else
	// would re-pin live streams to a server trying to shut down), the drain
	// terminal already unpinned it client-side, and the other backend
	// rebuilds from the replayed tail.
	ack, err := st.Observe(ctx, mkSample(3))
	if err != nil {
		t.Fatalf("Observe after drain: %v", err)
	}
	if ack.LastSeq != 4 {
		t.Fatalf("ack %+v, want last_seq 4", ack)
	}
	after := awaitStreamUpdate(t, st)
	checkStreamParity(t, after, model, st)
	if other.srv.Sessions().Len() != 1 {
		t.Fatal("session did not move to the surviving backend")
	}
	stats := st.Stats()
	if stats.Kicked != 1 || stats.Rebuilds != 1 {
		t.Fatalf("stats %+v, want 1 kick and 1 rebuild", stats)
	}

	// Close on the new backend still yields exactly one terminal.
	term, err := st.CloseSession(ctx)
	if err != nil {
		t.Fatalf("CloseSession: %v", err)
	}
	if !term.Final || term.Reason != "close" {
		t.Fatalf("terminal %+v", term)
	}
}

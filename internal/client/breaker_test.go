package client

import (
	"testing"
	"time"
)

// collect wires a transition recorder into b and returns the log.
func collect(b *Breaker) *[]Transition {
	log := &[]Transition{}
	b.onTransition = func(tr Transition) { *log = append(*log, tr) }
	return log
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, CooldownCalls: 2})
	log := collect(b)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("failure %d: breaker refused while closed", i)
		}
		b.Failure()
		if got := b.State(); got != Closed {
			t.Fatalf("after %d failures: state = %v, want closed", i+1, got)
		}
	}
	b.Allow()
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("after 3 failures: state = %v, want open", got)
	}
	if len(*log) != 1 || (*log)[0].Cause != "failures=3" {
		t.Fatalf("transition log = %+v, want one closed->open (failures=3)", *log)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2})
	b.Failure()
	b.Success() // breaks the run
	b.Failure()
	if got := b.State(); got != Closed {
		t.Fatalf("non-consecutive failures opened the breaker: state = %v", got)
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("2 consecutive failures: state = %v, want open", got)
	}
}

func TestBreakerEventCooldownAndRecovery(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, CooldownCalls: 3})
	log := collect(b)
	b.Failure() // opens immediately
	for i := 0; i < 2; i++ {
		if b.Allow() {
			t.Fatalf("reject %d: breaker admitted during cooldown", i)
		}
	}
	// Third call after opening: admitted as the half-open trial.
	if !b.Allow() {
		t.Fatal("cooldown elapsed but trial refused")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	// Concurrent second trial is refused (HalfOpenProbes = 1).
	if b.Allow() {
		t.Fatal("second concurrent half-open trial admitted")
	}
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("after trial ok: state = %v, want closed", got)
	}
	want := []Transition{
		{From: Closed, To: Open, Cause: "failures=1"},
		{From: Open, To: HalfOpen, Cause: "cooldown"},
		{From: HalfOpen, To: Closed, Cause: "trial ok"},
	}
	if len(*log) != len(want) {
		t.Fatalf("transition log = %+v, want %+v", *log, want)
	}
	for i := range want {
		if (*log)[i] != want[i] {
			t.Fatalf("transition %d = %+v, want %+v", i, (*log)[i], want[i])
		}
	}
}

func TestBreakerTrialFailureReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, CooldownCalls: 1})
	b.Failure()
	if !b.Allow() { // first call after opening is the trial
		t.Fatal("trial refused")
	}
	b.Failure()
	if got := b.State(); got != Open {
		t.Fatalf("after trial failure: state = %v, want open", got)
	}
	// The cooldown re-armed: the next Allow is a fresh trial.
	if !b.Allow() {
		t.Fatal("re-armed cooldown did not admit a new trial")
	}
	b.Success()
	if got := b.State(); got != Closed {
		t.Fatalf("after second trial ok: state = %v, want closed", got)
	}
}

func TestBreakerWallClockCooldown(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 10 * time.Millisecond})
	b.Failure()
	if b.Allow() {
		t.Fatal("admitted before cooldown elapsed")
	}
	time.Sleep(20 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("refused after cooldown elapsed")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
}

func TestBreakerRelease(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, CooldownCalls: 1})
	b.Failure()
	if !b.Allow() {
		t.Fatal("trial refused")
	}
	if b.Allow() {
		t.Fatal("second trial admitted while first outstanding")
	}
	b.Release() // the pool abandoned the trial attempt
	if !b.Allow() {
		t.Fatal("released trial slot not reusable")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Disabled: true, FailureThreshold: 1})
	for i := 0; i < 10; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatal("disabled breaker refused traffic")
		}
	}
	if got := b.State(); got != Closed {
		t.Fatalf("disabled breaker left closed state: %v", got)
	}
}

func TestBreakerReset(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, CooldownCalls: 100})
	log := collect(b)
	b.Failure()
	b.Reset("probe ok")
	if got := b.State(); got != Closed {
		t.Fatalf("after Reset: state = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("reset breaker refused traffic")
	}
	if n := len(*log); n != 2 || (*log)[1].Cause != "probe ok" {
		t.Fatalf("transition log = %+v, want open then closed (probe ok)", *log)
	}
}

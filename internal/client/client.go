// Package client is the production-grade Go client for culpeod: typed
// methods for the four /v1/* endpoints, per-attempt deadlines carved out
// of an overall per-call budget, exponential backoff with full jitter
// that honors the server's Retry-After on 503, a circuit breaker per
// backend, and a Pool that spreads load across N backends with
// health-probe-driven ejection/readmission and optional hedged batch
// requests.
//
// The retry loop is round-based: within a round every admissible backend
// gets one attempt before the client sleeps at all, so a single dead
// backend costs one failed attempt — not one backoff — per call. Only
// when the whole round fails does the pool sleep, for
// max(server Retry-After, jittered backoff), then start a fresh round.
//
// Every culpeod endpoint is pure estimation — requests carry no
// server-side state — so retries can never double-apply an effect. That
// idempotency is encoded explicitly (idempotent map below) rather than
// assumed, so a future mutating endpoint has to opt in before the retry
// loop will touch it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"culpeo/internal/api"
	"culpeo/internal/core"
)

// Endpoint paths, shared with internal/serve's mux.
const (
	PathVSafe    = "/v1/vsafe"
	PathVSafeR   = "/v1/vsafe-r"
	PathSimulate = "/v1/simulate"
	PathBatch    = "/v1/batch"
)

// idempotent records, per endpoint, that a retry is safe. All current
// endpoints are pure estimation; a future mutating endpoint must be added
// as false and will then only ever be attempted once per call.
var idempotent = map[string]bool{
	PathVSafe:    true,
	PathVSafeR:   true,
	PathSimulate: true,
	PathBatch:    true,
}

// maxResponseBytes bounds a response read (a full 4096-element batch
// response is well under 1 MiB; 64 MiB mirrors the server's request cap).
const maxResponseBytes = 64 << 20

// Config tunes a Pool. The zero value of every field selects a sensible
// production default; only Backends is required.
type Config struct {
	// Backends are the culpeod base URLs (e.g. "http://127.0.0.1:8080").
	// Backend i is named "b<i>" in metrics and transition events, so logs
	// stay stable across runs even when ports are ephemeral.
	Backends []string

	// HTTPClient overrides the transport (nil: a dedicated client).
	HTTPClient *http.Client
	// DisableKeepAlives forces one TCP connection per attempt. The chaos
	// soak sets this so connection-indexed fault schedules line up 1:1
	// with attempts.
	DisableKeepAlives bool

	// Budget is the overall wall-clock allowance for one call, covering
	// every attempt and every backoff sleep (<=0: 15 s).
	Budget time.Duration
	// AttemptTimeout is the per-attempt deadline carved from the budget
	// (<=0: 2 s). A blackholed connection costs one AttemptTimeout, not
	// the whole budget.
	AttemptTimeout time.Duration
	// MaxAttempts caps total attempts per call (<=0: 8).
	MaxAttempts int

	// BaseBackoff seeds the exponential backoff (<=0: 25 ms); the sleep
	// before round r is uniform in [0, min(MaxBackoff, BaseBackoff<<r)]
	// ("full jitter"). MaxBackoff <=0 selects 1 s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryAfterCap bounds how long a server Retry-After is honored for
	// (<=0: honored in full, up to the remaining budget).
	RetryAfterCap time.Duration
	// Seed fixes the jitter RNG for reproducible runs (0: seeded from 1).
	Seed int64

	// Breaker configures every backend's circuit breaker.
	Breaker BreakerConfig

	// ProbeInterval enables a background health-probe loop over all
	// backends (0: no background probes).
	ProbeInterval time.Duration
	// ProbeEvery, when > 0, synchronously probes suspect backends (open
	// breaker or ejected) every Nth call — deterministic, no timers; the
	// chaos soak uses this instead of ProbeInterval.
	ProbeEvery int
	// ProbeTimeout bounds one health probe (<=0: 1 s).
	ProbeTimeout time.Duration

	// HedgeDelay, when > 0, arms hedged batch requests: if /v1/batch has
	// not answered within HedgeDelay, the same request is issued to a
	// second backend and the first response wins (the loser is canceled).
	HedgeDelay time.Duration

	// OnTransition observes breaker state changes and ejection /
	// readmission events as they happen. Called synchronously from the
	// call path; keep it fast.
	OnTransition func(Event)
}

// Event is one pool-observed backend state change: a breaker transition
// or a health-probe ejection/readmission. Call is the pool call counter
// when the event fired, which is what makes a sequential chaos soak's
// event log bit-reproducible.
type Event struct {
	Backend  string `json:"backend"`
	Call     uint64 `json:"call"`
	From, To string `json:"-"`
	Cause    string `json:"cause"`
}

// String renders "call=12 b0 open->half-open (cooldown)" — the golden-log
// line format.
func (e Event) String() string {
	return fmt.Sprintf("call=%d %s %s->%s (%s)", e.Call, e.Backend, e.From, e.To, e.Cause)
}

// HTTPError is a non-2xx response. Retryable reports whether the retry
// loop may try again (5xx: the backend is unhealthy or shedding; 4xx: the
// request itself is wrong and no backend will like it better).
type HTTPError struct {
	Status     int
	RetryAfter time.Duration // parsed Retry-After, 0 if absent
	RequestID  string        // server-echoed X-Request-Id
	Body       string        // first line of the error body
}

func (e *HTTPError) Error() string {
	msg := fmt.Sprintf("http %d", e.Status)
	if e.Body != "" {
		msg += ": " + e.Body
	}
	if e.RequestID != "" {
		msg += " (request " + e.RequestID + ")"
	}
	return msg
}

// Retryable reports whether another attempt could succeed.
func (e *HTTPError) Retryable() bool { return e.Status >= 500 }

// backend is one culpeod instance as the pool sees it.
type backend struct {
	name    string // "b<i>" — stable across runs
	base    string // normalized base URL, no trailing slash
	brk     *Breaker
	ejected atomic.Bool // health probe saw it down or draining
	met     backendCounters

	// healthMu guards the identity fields the last successful /healthz
	// probe reported (additive shard-era fields; empty until a probe has
	// decoded them).
	healthMu      sync.Mutex
	shardID       string
	topologyEpoch uint64
	version       string
	phase         string

	// metricsMu guards the last successfully scraped server-side metrics
	// subset (nil until ScrapeServerMetrics has reached this backend).
	metricsMu sync.Mutex
	serverMet *serverMetrics
}

// serverMetrics returns the last scraped cache stats and batch-dedup total
// (nil, 0 before the first successful scrape).
func (b *backend) serverMetrics() (*core.VSafeCacheStats, uint64) {
	b.metricsMu.Lock()
	defer b.metricsMu.Unlock()
	if b.serverMet == nil {
		return nil, 0
	}
	c := b.serverMet.VSafeCache // value copy: the snapshot must not alias live state
	return &c, b.serverMet.BatchDeduped
}

// setHealthIdentity records the shard identity a probe decoded.
func (b *backend) setHealthIdentity(h api.HealthResponse) {
	b.healthMu.Lock()
	b.shardID = h.ShardID
	b.topologyEpoch = h.TopologyEpoch
	b.version = h.Version
	b.phase = h.Phase
	b.healthMu.Unlock()
}

// healthIdentity returns the last probed shard identity and phase.
func (b *backend) healthIdentity() (shardID string, epoch uint64, version, phase string) {
	b.healthMu.Lock()
	defer b.healthMu.Unlock()
	return b.shardID, b.topologyEpoch, b.version, b.phase
}

// Pool is a load-balancing, failure-isolating culpeod client. Safe for
// concurrent use; Close releases the background prober and idle
// connections.
type Pool struct {
	cfg  Config
	http *http.Client
	own  bool // we built http and own its transport

	backends []*backend
	rr       atomic.Uint64 // round-robin cursor
	met      poolCounters

	rngMu sync.Mutex
	rng   *rand.Rand

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a Pool over cfg.Backends.
func New(cfg Config) (*Pool, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("client: no backends configured")
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 15 * time.Second
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 2 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	p := &Pool{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(seed)),
		done: make(chan struct{}),
	}
	if cfg.HTTPClient != nil {
		p.http = cfg.HTTPClient
	} else {
		p.http = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			DisableKeepAlives:   cfg.DisableKeepAlives,
		}}
		p.own = true
	}
	for i, raw := range cfg.Backends {
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("client: backend %d: bad base URL %q", i, raw)
		}
		b := &backend{
			name: "b" + strconv.Itoa(i),
			base: strings.TrimRight(raw, "/"),
			brk:  NewBreaker(cfg.Breaker),
		}
		b.brk.onTransition = func(tr Transition) {
			p.emit(Event{
				Backend: b.name,
				Call:    p.met.calls.Load(),
				From:    tr.From.String(),
				To:      tr.To.String(),
				Cause:   tr.Cause,
			})
		}
		p.backends = append(p.backends, b)
	}
	if cfg.ProbeInterval > 0 {
		p.wg.Add(1)
		go p.probeLoop()
	}
	return p, nil
}

// Close stops the background prober and releases idle connections. Safe
// to call more than once.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.done) })
	p.wg.Wait()
	if p.own {
		if t, ok := p.http.Transport.(*http.Transport); ok {
			t.CloseIdleConnections()
		}
	}
}

func (p *Pool) emit(ev Event) {
	if p.cfg.OnTransition != nil {
		p.cfg.OnTransition(ev)
	}
}

// --- typed endpoint methods ---------------------------------------------

// VSafe estimates V_safe ahead of time (POST /v1/vsafe).
func (p *Pool) VSafe(ctx context.Context, req api.VSafeRequest) (api.EstimateResponse, error) {
	var out api.EstimateResponse
	err := p.call(ctx, PathVSafe, req, &out, false)
	return out, err
}

// VSafeR estimates V_safe from one observed execution (POST /v1/vsafe-r).
func (p *Pool) VSafeR(ctx context.Context, req api.VSafeRRequest) (api.EstimateResponse, error) {
	var out api.EstimateResponse
	err := p.call(ctx, PathVSafeR, req, &out, false)
	return out, err
}

// Simulate launches the task once and reports the verdict (POST
// /v1/simulate).
func (p *Pool) Simulate(ctx context.Context, req api.SimulateRequest) (api.SimulateResponse, error) {
	var out api.SimulateResponse
	err := p.call(ctx, PathSimulate, req, &out, false)
	return out, err
}

// Batch estimates many specs in one request (POST /v1/batch). Batch calls
// are hedged when Config.HedgeDelay is set: they are the expensive,
// long-tail endpoint where a second in-flight copy is worth its cost.
func (p *Pool) Batch(ctx context.Context, req api.BatchRequest) (api.BatchResponse, error) {
	var out api.BatchResponse
	err := p.call(ctx, PathBatch, req, &out, true)
	return out, err
}

// Do sends a pre-marshaled body to path through the full retry/failover
// machinery and returns the raw response body. The escape hatch the load
// generator uses.
func (p *Pool) Do(ctx context.Context, path string, body []byte) ([]byte, error) {
	return p.exec(ctx, path, body, false)
}

func (p *Pool) call(ctx context.Context, path string, req, out any, hedge bool) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("client: marshal %s request: %w", path, err)
	}
	raw, err := p.exec(ctx, path, body, hedge)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("client: decode %s response: %w", path, err)
	}
	return nil
}

// --- the call engine ----------------------------------------------------

// exec runs one pool call: assign a call number, optionally probe suspect
// backends, optionally hedge, then the round-based retry loop — all under
// one budget.
func (p *Pool) exec(ctx context.Context, path string, body []byte, hedge bool) ([]byte, error) {
	call := p.met.calls.Add(1)
	if n := p.cfg.ProbeEvery; n > 0 && call%uint64(n) == 0 {
		p.probeSuspects(ctx)
	}
	ctx, cancel := context.WithTimeout(ctx, p.cfg.Budget)
	defer cancel()
	if hedge && p.cfg.HedgeDelay > 0 && len(p.backends) > 1 {
		if raw, ok := p.hedged(ctx, call, path, body); ok {
			p.met.successes.Add(1)
			return raw, nil
		}
		// Both hedge arms failed (or a second backend wasn't admissible):
		// fall through to the sequential loop on the remaining budget.
	}
	return p.retryLoop(ctx, call, path, body)
}

// retryLoop is the round-based engine described in the package comment.
func (p *Pool) retryLoop(ctx context.Context, call uint64, path string, body []byte) ([]byte, error) {
	var (
		lastErr    error
		prev       *backend
		attempts   int
		round      int
		retryAfter time.Duration
		tried      = make(map[*backend]bool)
	)
	fail := func(reason string) ([]byte, error) {
		p.met.failures.Add(1)
		if lastErr != nil {
			return nil, fmt.Errorf("client: %s %s after %d attempts: last error: %w", path, reason, attempts, lastErr)
		}
		return nil, fmt.Errorf("client: %s %s after %d attempts", path, reason, attempts)
	}
	for {
		if ctx.Err() != nil {
			return fail("budget exhausted")
		}
		if attempts >= p.cfg.MaxAttempts {
			return fail("attempts exhausted")
		}
		b := p.pick(tried)
		if b == nil {
			// Round over: every backend tried, ejected or breaker-refused.
			// Sleep max(server Retry-After, jittered backoff), then reset
			// the round so every backend is a candidate again.
			d := p.backoff(round)
			if retryAfter > 0 {
				ra := retryAfter
				if cap := p.cfg.RetryAfterCap; cap > 0 && ra > cap {
					ra = cap
				}
				if ra > d {
					d = ra
				}
				p.met.retryAfterHonored.Add(1)
				retryAfter = 0
			}
			if err := sleepCtx(ctx, d); err != nil {
				return fail("budget exhausted")
			}
			round++
			clear(tried)
			prev = nil
			continue
		}
		if attempts > 0 {
			p.met.retries.Add(1)
			if prev != nil && b != prev {
				p.met.failovers.Add(1)
			}
		}
		attempts++
		raw, err := p.attempt(ctx, b, path, body, call, attempts)
		if err == nil {
			p.met.successes.Add(1)
			return raw, nil
		}
		lastErr = err
		tried[b] = true
		prev = b
		var he *HTTPError
		if errors.As(err, &he) {
			if !he.Retryable() {
				p.met.failures.Add(1)
				return nil, err
			}
			if he.RetryAfter > retryAfter {
				retryAfter = he.RetryAfter
			}
		}
		if !idempotent[path] {
			// Non-idempotent endpoint: never re-send a request that may
			// have reached the server.
			p.met.failures.Add(1)
			return nil, err
		}
	}
}

// pick selects the next admissible backend round-robin: pass 0 considers
// healthy backends, pass 1 falls back to ejected ones (if every backend
// is ejected — say, all draining — offering the request anyway beats
// failing it). Each backend's breaker is consulted at most once.
func (p *Pool) pick(tried map[*backend]bool) *backend {
	n := len(p.backends)
	start := int(p.rr.Add(1)-1) % n
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			b := p.backends[(start+i)%n]
			if tried[b] || b.ejected.Load() != (pass == 1) {
				continue
			}
			if !b.brk.Allow() {
				p.met.breakerRejects.Add(1)
				tried[b] = true // don't re-consult this breaker in pass 1
				continue
			}
			return b
		}
	}
	return nil
}

// attempt issues one HTTP POST with its own deadline and records the
// verdict on the backend's breaker. An attempt abandoned by the pool
// itself (hedge sibling won, caller gave up) is no verdict at all: the
// breaker slot is released and only the abandoned counter moves.
func (p *Pool) attempt(parent context.Context, b *backend, path string, body []byte, call uint64, n int) ([]byte, error) {
	actx, cancel := context.WithTimeout(parent, p.cfg.AttemptTimeout)
	defer cancel()
	p.met.attempts.Add(1)
	b.met.attempts.Add(1)

	abandoned := func() bool { return errors.Is(parent.Err(), context.Canceled) }
	failure := func(format string, args ...any) ([]byte, error) {
		if abandoned() {
			p.met.abandoned.Add(1)
			b.brk.Release()
			return nil, fmt.Errorf("client: %s %s: abandoned: %w", b.name, path, parent.Err())
		}
		b.met.failures.Add(1)
		b.brk.Failure()
		return nil, fmt.Errorf("client: %s %s: %w", b.name, path, fmt.Errorf(format, args...))
	}

	req, err := http.NewRequestWithContext(actx, http.MethodPost, b.base+path, bytes.NewReader(body))
	if err != nil {
		return failure("build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.RequestIDHeader, "c"+strconv.FormatUint(call, 10)+"-a"+strconv.Itoa(n))

	t0 := time.Now()
	resp, err := p.http.Do(req)
	if err != nil {
		b.met.latency.Observe(time.Since(t0))
		return failure("%w", err)
	}
	raw, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	resp.Body.Close()
	b.met.latency.Observe(time.Since(t0))
	if rerr != nil {
		return failure("truncated response: %w", rerr)
	}
	if resp.StatusCode == http.StatusOK {
		b.met.successes.Add(1)
		b.brk.Success()
		return raw, nil
	}
	he := &HTTPError{
		Status:     resp.StatusCode,
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		RequestID:  resp.Header.Get(api.RequestIDHeader),
		Body:       errorLine(raw),
	}
	if he.Retryable() {
		b.met.failures.Add(1)
		b.brk.Failure()
	} else {
		// A 4xx proves the backend alive and well; the request is the bug.
		b.brk.Success()
	}
	return nil, fmt.Errorf("client: %s %s: %w", b.name, path, he)
}

// hedged races the call on two backends: launch on the first, arm a
// timer, launch on the second if the first has not answered within
// HedgeDelay, first success wins and the sibling is canceled. Returns
// ok=false when hedging could not conclude (no second backend, primary
// failed fast, both arms failed) — the caller falls back to the
// sequential retry loop on the same budget.
func (p *Pool) hedged(ctx context.Context, call uint64, path string, body []byte) ([]byte, bool) {
	first := p.pick(map[*backend]bool{})
	if first == nil {
		return nil, false
	}
	second := p.pick(map[*backend]bool{first: true})
	if second == nil {
		first.brk.Release()
		return nil, false
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		raw []byte
		err error
		b   *backend
	}
	resCh := make(chan result, 2)
	launch := func(b *backend, attempt int) {
		go func() {
			raw, err := p.attempt(hctx, b, path, body, call, attempt)
			resCh <- result{raw, err, b}
		}()
	}
	launch(first, 1)
	timer := time.NewTimer(p.cfg.HedgeDelay)
	defer timer.Stop()

	launched := 1
	failed := 0
	for {
		select {
		case r := <-resCh:
			if r.err == nil {
				if launched == 2 && r.b == second {
					p.met.hedgeWins.Add(1)
				}
				cancel() // abandon the sibling; its goroutine drains into the buffered channel
				return r.raw, true
			}
			failed++
			if launched == 1 || failed == launched {
				// Primary failed before the hedge fired, or both arms
				// failed: the sequential loop handles it from here.
				if launched == 1 {
					second.brk.Release()
				}
				return nil, false
			}
		case <-timer.C:
			if launched == 1 {
				p.met.hedges.Add(1)
				launch(second, 2)
				launched = 2
			}
		case <-hctx.Done():
			return nil, false
		}
	}
}

// backoff draws the full-jitter sleep for round r.
func (p *Pool) backoff(round int) time.Duration {
	cap := p.cfg.BaseBackoff << uint(round)
	if cap > p.cfg.MaxBackoff || cap <= 0 {
		cap = p.cfg.MaxBackoff
	}
	p.rngMu.Lock()
	f := p.rng.Float64()
	p.rngMu.Unlock()
	return time.Duration(f * float64(cap))
}

// --- health probes ------------------------------------------------------

// probeLoop is the background prober (Config.ProbeInterval).
func (p *Pool) probeLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
			for _, b := range p.backends {
				p.probe(context.Background(), b)
			}
		}
	}
}

// probeSuspects synchronously probes every backend the pool has stopped
// trusting — ejected, or breaker not closed (Config.ProbeEvery).
func (p *Pool) probeSuspects(ctx context.Context) {
	for _, b := range p.backends {
		if b.ejected.Load() || b.brk.State() != Closed {
			p.probe(ctx, b)
		}
	}
}

// ProbeNow synchronously probes every suspect backend once — the hook a
// topology-aware router (internal/shard) uses to drive readmission on its
// own cadence. A shard the router has stopped sending to never advances
// the pool's call counter, so ProbeEvery alone would leave it ejected
// forever; the router calls ProbeNow instead.
func (p *Pool) ProbeNow(ctx context.Context) { p.probeSuspects(ctx) }

// ProbeAll synchronously probes every backend, healthy or not. Healthy
// backends that stay healthy produce no events; the point is to detect
// draining (which only /healthz reveals — a draining culpeod still answers
// work requests) and to refresh each backend's advertised shard identity
// and topology epoch.
func (p *Pool) ProbeAll(ctx context.Context) {
	for _, b := range p.backends {
		p.probe(ctx, b)
	}
}

// Admissible reports whether any backend would currently be offered a
// request: not ejected, breaker not refusing outright. A router treats a
// non-admissible pool as a dead shard and fails over to the next
// rendezvous candidate rather than paying a doomed attempt.
func (p *Pool) Admissible() bool {
	for _, b := range p.backends {
		if !b.ejected.Load() && b.brk.State() != Open {
			return true
		}
	}
	return false
}

// probe hits /healthz once and moves the backend between the healthy and
// ejected sets. A draining backend is ejected exactly like a dead one —
// it asked us to leave.
func (p *Pool) probe(ctx context.Context, b *backend) {
	b.met.probes.Add(1)
	pctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
	defer cancel()
	ok, cause := false, "probe failed"
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.base+"/healthz", nil)
	if err == nil {
		resp, err := p.http.Do(req)
		if err == nil {
			raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			var h api.HealthResponse
			// Trust the body only when it self-identifies as a culpeod
			// /healthz (version is always set). An intermediary's error page
			// — a proxy's own 503, say — also arrives as JSON but must not
			// overwrite the backend's advertised identity or read as a drain
			// signal. (A draining culpeod answers 503 too, so the status code
			// alone cannot discriminate.)
			if rerr == nil && json.Unmarshal(raw, &h) == nil && h.Version != "" {
				b.setHealthIdentity(h)
				switch {
				case h.Draining:
					cause = "draining"
				case h.Phase == "recovering" || h.Phase == "starting":
					// Boot-time journal replay: the table is half-rebuilt.
					// Treat it exactly like draining — probe-only, no routing,
					// and no ejection-log spam (the transition edge emits one
					// event, same as any other cause).
					cause = h.Phase
				case resp.StatusCode == http.StatusOK && h.OK:
					ok = true
				}
			}
		}
	}
	if ok {
		if b.ejected.CompareAndSwap(true, false) {
			p.emit(Event{Backend: b.name, Call: p.met.calls.Load(), From: "ejected", To: "healthy", Cause: "probe ok"})
		}
		if b.brk.State() != Closed {
			b.brk.Reset("probe ok")
		}
		return
	}
	b.met.probeFails.Add(1)
	if !b.ejected.Swap(true) {
		p.emit(Event{Backend: b.name, Call: p.met.calls.Load(), From: "healthy", To: "ejected", Cause: cause})
	}
}

// --- helpers ------------------------------------------------------------

// sleepCtx sleeps d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the only
// form culpeod emits).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// errorLine extracts the error string from an ErrorResponse body, falling
// back to the first line of whatever was returned.
func errorLine(raw []byte) string {
	var er api.ErrorResponse
	if json.Unmarshal(raw, &er) == nil && er.Error != "" {
		return er.Error
	}
	s := strings.TrimSpace(string(raw))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

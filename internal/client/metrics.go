// Client-side metrics, mirroring the shape of internal/serve's /metrics
// document: monotonic counters plus a per-backend latency histogram using
// the identical buckets (internal/api). A chaos soak reads the client
// snapshot next to each server's snapshot and the numbers line up
// field-for-field — attempts here, requests there; breaker state here,
// draining flag there.
package client

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"

	"culpeo/internal/api"
	"culpeo/internal/core"
)

// poolCounters aggregates pool-wide traffic.
type poolCounters struct {
	calls     atomic.Uint64 // public API calls
	successes atomic.Uint64
	failures  atomic.Uint64 // calls that exhausted budget/attempts
	attempts  atomic.Uint64 // individual HTTP attempts
	retries   atomic.Uint64 // attempts beyond the first of a call
	failovers atomic.Uint64 // retries that moved to a different backend
	abandoned atomic.Uint64 // attempts canceled because a sibling won (hedge)

	retryAfterHonored atomic.Uint64 // sleeps driven by a server Retry-After
	breakerRejects    atomic.Uint64 // candidate backends skipped by breakers

	hedges    atomic.Uint64 // hedge attempts launched
	hedgeWins atomic.Uint64 // hedges that answered before the primary
}

// backendCounters is one backend's share of the traffic.
type backendCounters struct {
	attempts   atomic.Uint64
	successes  atomic.Uint64
	failures   atomic.Uint64
	probes     atomic.Uint64
	probeFails atomic.Uint64
	latency    api.Histogram
}

// serverMetrics is the subset of serve's /metrics document the client
// decodes on a scrape: the V_safe cache counters (hit/miss plus the
// singleflight and warm-bisection fields) and the in-batch dedup total.
// Decoding a subset keeps the client forward-compatible with new server
// fields.
type serverMetrics struct {
	BatchDeduped uint64               `json:"batch_deduped_total"`
	VSafeCache   core.VSafeCacheStats `json:"vsafe_cache"`
}

// BackendSnapshot is the wire form of one backend's client-side view.
// ShardID / TopologyEpoch / Version echo what the backend's last decoded
// /healthz probe advertised (empty until a probe has run) — how a router
// verifies its topology pushes actually reached the fleet. VSafeCache and
// BatchDeduped echo the backend's last scraped /metrics document (nil /
// zero until ScrapeServerMetrics has reached it).
type BackendSnapshot struct {
	Name          string                `json:"name"`
	URL           string                `json:"url"`
	BreakerState  string                `json:"breaker_state"`
	Ejected       bool                  `json:"ejected"`
	Attempts      uint64                `json:"attempts"`
	Successes     uint64                `json:"successes"`
	Failures      uint64                `json:"failures"`
	Probes        uint64                `json:"probes"`
	ProbeFails    uint64                `json:"probe_failures"`
	ShardID       string                `json:"shard_id,omitempty"`
	TopologyEpoch uint64                `json:"topology_epoch,omitempty"`
	Version       string                `json:"version,omitempty"`
	Phase         string                `json:"phase,omitempty"`
	VSafeCache    *core.VSafeCacheStats `json:"vsafe_cache,omitempty"`
	BatchDeduped  uint64                `json:"batch_deduped_total,omitempty"`
	Latency       api.HistogramSnapshot `json:"latency"`
}

// MetricsSnapshot is the client-side metrics document.
type MetricsSnapshot struct {
	Calls             uint64            `json:"calls"`
	Successes         uint64            `json:"successes"`
	Failures          uint64            `json:"failures"`
	Attempts          uint64            `json:"attempts"`
	Retries           uint64            `json:"retries"`
	Failovers         uint64            `json:"failovers"`
	Abandoned         uint64            `json:"abandoned"`
	RetryAfterHonored uint64            `json:"retry_after_honored"`
	BreakerRejects    uint64            `json:"breaker_rejects"`
	Hedges            uint64            `json:"hedges"`
	HedgeWins         uint64            `json:"hedge_wins"`
	Backends          []BackendSnapshot `json:"backends"`
}

// Metrics snapshots the pool's live counters.
func (p *Pool) Metrics() MetricsSnapshot {
	s := MetricsSnapshot{
		Calls:             p.met.calls.Load(),
		Successes:         p.met.successes.Load(),
		Failures:          p.met.failures.Load(),
		Attempts:          p.met.attempts.Load(),
		Retries:           p.met.retries.Load(),
		Failovers:         p.met.failovers.Load(),
		Abandoned:         p.met.abandoned.Load(),
		RetryAfterHonored: p.met.retryAfterHonored.Load(),
		BreakerRejects:    p.met.breakerRejects.Load(),
		Hedges:            p.met.hedges.Load(),
		HedgeWins:         p.met.hedgeWins.Load(),
	}
	for _, b := range p.backends {
		shardID, epoch, version, phase := b.healthIdentity()
		cache, deduped := b.serverMetrics()
		s.Backends = append(s.Backends, BackendSnapshot{
			Name:          b.name,
			URL:           b.base,
			BreakerState:  b.brk.State().String(),
			Ejected:       b.ejected.Load(),
			Attempts:      b.met.attempts.Load(),
			Successes:     b.met.successes.Load(),
			Failures:      b.met.failures.Load(),
			Probes:        b.met.probes.Load(),
			ProbeFails:    b.met.probeFails.Load(),
			ShardID:       shardID,
			TopologyEpoch: epoch,
			Version:       version,
			Phase:         phase,
			VSafeCache:    cache,
			BatchDeduped:  deduped,
			Latency:       b.met.latency.Snapshot(),
		})
	}
	return s
}

// ScrapeServerMetrics fetches every backend's /metrics document once and
// records its V_safe cache and batch-dedup counters, which then ride the
// next Metrics() snapshot. An unreachable or non-culpeod backend keeps its
// last-seen values; a fleet-wide scrape never fails the caller. The load
// generator runs one scrape after its final request so its report can
// print server-side coalescing next to client-side attempt counts.
func (p *Pool) ScrapeServerMetrics(ctx context.Context) {
	for _, b := range p.backends {
		pctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.base+"/metrics", nil)
		if err == nil {
			if resp, err := p.http.Do(req); err == nil {
				raw, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
				resp.Body.Close()
				var sm serverMetrics
				if rerr == nil && resp.StatusCode == http.StatusOK && json.Unmarshal(raw, &sm) == nil {
					b.metricsMu.Lock()
					b.serverMet = &sm
					b.metricsMu.Unlock()
				}
			}
		}
		cancel()
	}
}

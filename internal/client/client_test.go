package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"culpeo/internal/api"
)

// fastCfg returns a config with millisecond-scale backoff so failure
// tests stay fast; tests override what they exercise.
func fastCfg(backends ...string) Config {
	return Config{
		Backends:    backends,
		Budget:      5 * time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Seed:        42,
	}
}

// estimateOK writes a fixed EstimateResponse.
func estimateOK(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, `{"v_safe":2.5,"v_delta":0.125,"v_e":2.375}`)
}

func newPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestRetryThenSuccess(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		estimateOK(w)
	}))
	defer srv.Close()

	p := newPool(t, fastCfg(srv.URL))
	est, err := p.VSafe(context.Background(), api.VSafeRequest{})
	if err != nil {
		t.Fatalf("VSafe: %v", err)
	}
	if est.VSafe != 2.5 {
		t.Fatalf("VSafe = %v, want 2.5", est.VSafe)
	}
	m := p.Metrics()
	if m.Attempts != 3 || m.Retries != 2 || m.Successes != 1 || m.Failures != 0 {
		t.Fatalf("metrics = %+v, want attempts=3 retries=2 successes=1", m)
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"load: shape unknown"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	p := newPool(t, fastCfg(srv.URL))
	_, err := p.VSafe(context.Background(), api.VSafeRequest{})
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want HTTPError 400", err)
	}
	if he.Body != "load: shape unknown" {
		t.Fatalf("HTTPError.Body = %q", he.Body)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d attempts, want 1 (4xx must not retry)", n)
	}
}

func TestRetryAfterHonored(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"saturated"}`, http.StatusServiceUnavailable)
			return
		}
		estimateOK(w)
	}))
	defer srv.Close()

	cfg := fastCfg(srv.URL)
	cfg.RetryAfterCap = 30 * time.Millisecond
	p := newPool(t, cfg)
	t0 := time.Now()
	if _, err := p.VSafe(context.Background(), api.VSafeRequest{}); err != nil {
		t.Fatalf("VSafe: %v", err)
	}
	elapsed := time.Since(t0)
	if elapsed < 20*time.Millisecond {
		t.Fatalf("call returned in %v — Retry-After not honored", elapsed)
	}
	if elapsed > 900*time.Millisecond {
		t.Fatalf("call took %v — RetryAfterCap not applied to the 1 s Retry-After", elapsed)
	}
	if m := p.Metrics(); m.RetryAfterHonored != 1 {
		t.Fatalf("RetryAfterHonored = %d, want 1", m.RetryAfterHonored)
	}
}

func TestBudgetExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()

	cfg := fastCfg(srv.URL)
	cfg.Budget = 100 * time.Millisecond
	cfg.MaxAttempts = 1 << 20
	p := newPool(t, cfg)
	_, err := p.VSafe(context.Background(), api.VSafeRequest{})
	if err == nil || !strings.Contains(err.Error(), "budget exhausted") {
		t.Fatalf("err = %v, want budget exhausted", err)
	}
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want wrapped HTTPError 500", err)
	}
	if m := p.Metrics(); m.Failures != 1 || m.Successes != 0 {
		t.Fatalf("metrics = %+v, want failures=1", m)
	}
}

func TestAttemptsExhausted(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()

	cfg := fastCfg(srv.URL)
	cfg.MaxAttempts = 3
	p := newPool(t, cfg)
	_, err := p.VSafe(context.Background(), api.VSafeRequest{})
	if err == nil || !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("err = %v, want attempts exhausted", err)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3", n)
	}
}

func TestFailoverToHealthyBackend(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		estimateOK(w)
	}))
	defer good.Close()

	p := newPool(t, fastCfg(bad.URL, good.URL))
	if _, err := p.VSafe(context.Background(), api.VSafeRequest{}); err != nil {
		t.Fatalf("VSafe: %v", err)
	}
	m := p.Metrics()
	if m.Failovers != 1 || m.Successes != 1 {
		t.Fatalf("metrics = %+v, want failovers=1 successes=1", m)
	}
	// The failover happened within the round: no backoff sleep separates
	// the b0 failure from the b1 attempt, so both land in one round trip.
	if m.Backends[0].Attempts != 1 || m.Backends[1].Attempts != 1 {
		t.Fatalf("backend attempts = %d/%d, want 1/1",
			m.Backends[0].Attempts, m.Backends[1].Attempts)
	}
}

func TestBreakerStopsOfferingDeadBackend(t *testing.T) {
	var badHits atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badHits.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		estimateOK(w)
	}))
	defer good.Close()

	var evMu sync.Mutex
	var events []string
	cfg := fastCfg(bad.URL, good.URL)
	cfg.Breaker = BreakerConfig{FailureThreshold: 2, CooldownCalls: 1 << 20}
	cfg.OnTransition = func(ev Event) {
		evMu.Lock()
		events = append(events, ev.String())
		evMu.Unlock()
	}
	p := newPool(t, cfg)
	for i := 0; i < 10; i++ {
		if _, err := p.VSafe(context.Background(), api.VSafeRequest{}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	m := p.Metrics()
	if m.Successes != 10 {
		t.Fatalf("successes = %d, want 10", m.Successes)
	}
	if n := badHits.Load(); n != 2 {
		t.Fatalf("dead backend saw %d attempts, want exactly 2 (threshold)", n)
	}
	if m.BreakerRejects == 0 {
		t.Fatal("breaker never rejected the open backend")
	}
	if st := m.Backends[0].BreakerState; st != "open" {
		t.Fatalf("b0 breaker state = %q, want open", st)
	}
	evMu.Lock()
	defer evMu.Unlock()
	if len(events) != 1 || !strings.Contains(events[0], "b0 closed->open (failures=2)") {
		t.Fatalf("events = %v, want one b0 closed->open", events)
	}
}

func TestBreakerRecoversViaHalfOpen(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		estimateOK(w)
	}))
	defer srv.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		estimateOK(w)
	}))
	defer good.Close()

	cfg := fastCfg(srv.URL, good.URL)
	cfg.Breaker = BreakerConfig{FailureThreshold: 1, CooldownCalls: 2}
	p := newPool(t, cfg)
	// Call 1 trips b0's breaker (and fails over to b1).
	if _, err := p.VSafe(context.Background(), api.VSafeRequest{}); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	fail.Store(false) // backend recovers
	// Subsequent calls burn the event-counted cooldown, then a half-open
	// trial lands on b0, succeeds, and the breaker closes.
	for i := 0; i < 6; i++ {
		if _, err := p.VSafe(context.Background(), api.VSafeRequest{}); err != nil {
			t.Fatalf("call %d: %v", i+2, err)
		}
	}
	if st := p.Metrics().Backends[0].BreakerState; st != "closed" {
		t.Fatalf("b0 breaker state = %q, want closed after recovery", st)
	}
	if got := p.Metrics().Backends[0].Successes; got == 0 {
		t.Fatal("recovered backend never served a success")
	}
}

func TestProbeEjectsAndReadmits(t *testing.T) {
	var draining atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			// version must be present: the probe only trusts a body that
			// self-identifies as a culpeod /healthz.
			if draining.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(w, `{"ok":false,"draining":true,"version":"culpeod/test"}`)
				return
			}
			fmt.Fprint(w, `{"ok":true,"draining":false,"version":"culpeod/test"}`)
			return
		}
		estimateOK(w)
	}))
	defer srv.Close()

	var evMu sync.Mutex
	var events []string
	cfg := fastCfg(srv.URL)
	cfg.OnTransition = func(ev Event) {
		evMu.Lock()
		events = append(events, fmt.Sprintf("%s %s->%s (%s)", ev.Backend, ev.From, ev.To, ev.Cause))
		evMu.Unlock()
	}
	p := newPool(t, cfg)
	b := p.backends[0]

	draining.Store(true)
	p.probe(context.Background(), b)
	if !b.ejected.Load() {
		t.Fatal("probe did not eject a draining backend")
	}
	// An ejected sole backend still serves (pass-1 fallback): failing the
	// call because everyone is draining would be strictly worse.
	if _, err := p.VSafe(context.Background(), api.VSafeRequest{}); err != nil {
		t.Fatalf("VSafe with sole backend ejected: %v", err)
	}

	draining.Store(false)
	p.probe(context.Background(), b)
	if b.ejected.Load() {
		t.Fatal("probe did not readmit a recovered backend")
	}
	m := p.Metrics()
	if m.Backends[0].Probes != 2 || m.Backends[0].ProbeFails != 1 {
		t.Fatalf("probe counters = %d/%d, want 2/1", m.Backends[0].Probes, m.Backends[0].ProbeFails)
	}
	evMu.Lock()
	defer evMu.Unlock()
	want := []string{"b0 healthy->ejected (draining)", "b0 ejected->healthy (probe ok)"}
	if len(events) != 2 || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("events = %v, want %v", events, want)
	}
}

// TestProbeRecoveringBackend: a backend whose /healthz phase is
// "recovering" (boot-time journal replay) or "starting" is treated exactly
// like a draining one — ejected with a single transition event, no routing,
// no per-probe log spam — and readmitted once the phase flips to "ready".
func TestProbeRecoveringBackend(t *testing.T) {
	var phase atomic.Value
	phase.Store("recovering")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			estimateOK(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		p := phase.Load().(string)
		if p != "ready" {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"ok":false,"draining":false,"phase":%q,"version":"culpeod/test"}`, p)
			return
		}
		fmt.Fprint(w, `{"ok":true,"draining":false,"phase":"ready","version":"culpeod/test"}`)
	}))
	defer srv.Close()

	var evMu sync.Mutex
	var events []string
	cfg := fastCfg(srv.URL)
	cfg.OnTransition = func(ev Event) {
		evMu.Lock()
		events = append(events, fmt.Sprintf("%s->%s (%s)", ev.From, ev.To, ev.Cause))
		evMu.Unlock()
	}
	p := newPool(t, cfg)
	b := p.backends[0]

	for _, ph := range []string{"recovering", "starting"} {
		phase.Store(ph)
		// Repeated probes while stuck in the phase: one transition edge, no
		// spam.
		p.probe(context.Background(), b)
		p.probe(context.Background(), b)
		if !b.ejected.Load() {
			t.Fatalf("probe did not eject a %s backend", ph)
		}
		if got := p.Metrics().Backends[0].Phase; got != ph {
			t.Fatalf("BackendSnapshot.Phase = %q, want %q", got, ph)
		}
		phase.Store("ready")
		p.probe(context.Background(), b)
		if b.ejected.Load() {
			t.Fatalf("probe did not readmit after %s -> ready", ph)
		}
	}
	if got := p.Metrics().Backends[0].Phase; got != "ready" {
		t.Fatalf("BackendSnapshot.Phase = %q, want ready", got)
	}

	evMu.Lock()
	defer evMu.Unlock()
	want := []string{
		"healthy->ejected (recovering)", "ejected->healthy (probe ok)",
		"healthy->ejected (starting)", "ejected->healthy (probe ok)",
	}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event[%d] = %q, want %q", i, events[i], want[i])
		}
	}
}

func TestHedgedBatchSecondBackendWins(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(300 * time.Millisecond):
		case <-r.Context().Done():
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"results":[{"estimate":{"v_safe":2.5,"v_delta":0.1,"v_e":2.4}}]}`)
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"results":[{"estimate":{"v_safe":2.5,"v_delta":0.1,"v_e":2.4}}]}`)
	}))
	defer fast.Close()

	cfg := fastCfg(slow.URL, fast.URL)
	cfg.HedgeDelay = 20 * time.Millisecond
	p := newPool(t, cfg)
	t0 := time.Now()
	resp, err := p.Batch(context.Background(), api.BatchRequest{Requests: []api.VSafeRequest{{}}})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Estimate == nil {
		t.Fatalf("batch response = %+v", resp)
	}
	if elapsed := time.Since(t0); elapsed > 250*time.Millisecond {
		t.Fatalf("hedged batch took %v — hedge did not win", elapsed)
	}
	m := p.Metrics()
	if m.Hedges != 1 || m.HedgeWins != 1 {
		t.Fatalf("hedges/wins = %d/%d, want 1/1", m.Hedges, m.HedgeWins)
	}
	// The abandoned primary drains asynchronously; wait for the counter.
	deadline := time.Now().Add(2 * time.Second)
	for p.Metrics().Abandoned == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned hedge attempt never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRequestIDPerAttempt(t *testing.T) {
	var mu sync.Mutex
	var ids []string
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get(api.RequestIDHeader))
		mu.Unlock()
		if hits.Add(1) == 1 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		estimateOK(w)
	}))
	defer srv.Close()

	p := newPool(t, fastCfg(srv.URL))
	if _, err := p.VSafe(context.Background(), api.VSafeRequest{}); err != nil {
		t.Fatalf("VSafe: %v", err)
	}
	if _, err := p.VSafeR(context.Background(), api.VSafeRRequest{Observation: api.ObservationSpec{VStart: 2.5, VMin: 2.2, VFinal: 2.4}}); err != nil {
		t.Fatalf("VSafeR: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"c1-a1", "c1-a2", "c2-a1"}
	if len(ids) != 3 || ids[0] != want[0] || ids[1] != want[1] || ids[2] != want[2] {
		t.Fatalf("request IDs = %v, want %v", ids, want)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no backends succeeded")
	}
	if _, err := New(Config{Backends: []string{"not a url"}}); err == nil {
		t.Fatal("New with junk URL succeeded")
	}
	if _, err := New(Config{Backends: []string{"ftp://host"}}); err == nil {
		t.Fatal("New with non-http scheme succeeded")
	}
}

func TestDoRawPath(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		estimateOK(w)
	}))
	defer srv.Close()
	p := newPool(t, fastCfg(srv.URL))
	raw, err := p.Do(context.Background(), PathVSafe, []byte(`{}`))
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !strings.Contains(string(raw), `"v_safe":2.5`) {
		t.Fatalf("raw = %s", raw)
	}
}

// TestScrapeServerMetrics: a scrape decodes the serve-shaped /metrics
// document, the counters ride the next snapshot, and an unreachable
// backend keeps its last-seen values rather than erroring the scrape.
func TestScrapeServerMetrics(t *testing.T) {
	doc := `{"batch_deduped_total":7,"vsafe_cache":{"hits":40,"misses":10,"inflight_waits":12,"coalesced":9,"warm_hits":3,"warm_fallbacks":1}}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, doc)
	}))
	defer srv.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // refused connections from here on

	p := newPool(t, fastCfg(srv.URL, dead.URL))
	if got := p.Metrics().Backends[0].VSafeCache; got != nil {
		t.Fatalf("cache stats before any scrape: %+v", got)
	}
	p.ScrapeServerMetrics(context.Background())
	bs := p.Metrics().Backends
	if bs[0].VSafeCache == nil {
		t.Fatal("no cache stats after scrape")
	}
	if c := bs[0].VSafeCache; c.Hits != 40 || c.Coalesced != 9 || c.InflightWaits != 12 ||
		c.WarmHits != 3 || c.WarmFallbacks != 1 {
		t.Errorf("scraped cache stats wrong: %+v", c)
	}
	if bs[0].BatchDeduped != 7 {
		t.Errorf("batch_deduped = %d, want 7", bs[0].BatchDeduped)
	}
	if bs[1].VSafeCache != nil || bs[1].BatchDeduped != 0 {
		t.Errorf("dead backend grew metrics: %+v", bs[1])
	}
}

package reconfig

import (
	"math"
	"testing"

	"culpeo/internal/core"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

// capybaraArray builds a three-bank array: one small fast bank and two
// large dense banks.
func capybaraArray(t *testing.T) *Array {
	t.Helper()
	a, err := NewArray(0.05,
		Bank{Name: "small", C: 7.5e-3, ESR: 30},
		Bank{Name: "big-1", C: 22.5e-3, ESR: 10},
		Bank{Name: "big-2", C: 22.5e-3, ESR: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Define("small", 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Define("big", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Define("all", 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(0.05); err == nil {
		t.Error("empty array accepted")
	}
	if _, err := NewArray(0.05, Bank{Name: "x", C: 0}); err == nil {
		t.Error("zero-C bank accepted")
	}
	if _, err := NewArray(-1, Bank{Name: "x", C: 1e-3}); err == nil {
		t.Error("negative switch ESR accepted")
	}
}

func TestDefineValidation(t *testing.T) {
	a := capybaraArray(t)
	if err := a.Define("none"); err == nil {
		t.Error("empty configuration accepted")
	}
	if err := a.Define("oob", 7); err == nil {
		t.Error("out-of-range bank accepted")
	}
	if err := a.Define("dup", 0, 0); err == nil {
		t.Error("duplicate bank accepted")
	}
	ids := a.Configs()
	if len(ids) != 3 || ids[0] != "all" || ids[1] != "big" || ids[2] != "small" {
		t.Errorf("Configs() = %v", ids)
	}
}

func TestNetworkAndAggregates(t *testing.T) {
	a := capybaraArray(t)
	net, err := a.Network("big", 2.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Branches) != 2 {
		t.Fatalf("branches = %d", len(net.Branches))
	}
	// Switch resistance is added per branch.
	if net.Branches[0].ESR != 10.05 {
		t.Errorf("branch ESR = %g", net.Branches[0].ESR)
	}
	c, err := a.Capacitance("big")
	if err != nil || math.Abs(c-45e-3) > 1e-12 {
		t.Errorf("capacitance = %g, err %v", c, err)
	}
	r, err := a.EffectiveESR("big")
	if err != nil || math.Abs(r-10.05/2) > 1e-9 {
		t.Errorf("effective ESR = %g, err %v", r, err)
	}
	if _, err := a.Network("ghost", 2.4); err == nil {
		t.Error("unknown configuration accepted")
	}
	if _, err := a.Capacitance("ghost"); err == nil {
		t.Error("unknown configuration accepted")
	}
	if _, err := a.EffectiveESR("ghost"); err == nil {
		t.Error("unknown configuration accepted")
	}
}

func TestSystemConfigRuns(t *testing.T) {
	a := capybaraArray(t)
	cfg, err := a.SystemConfig("all", powersys.Capybara())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := powersys.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Monitor().Force(true)
	res := sys.Run(load.NewUniform(10e-3, 5e-3), powersys.RunOptions{SkipRebound: true})
	if !res.Completed {
		t.Error("light load should run on the full array")
	}
}

func TestProfileAcrossAndPerBufferTables(t *testing.T) {
	a := capybaraArray(t)
	template := powersys.Capybara()
	iface, err := core.NewInterface(mustModel(t, a, "all", template), nullProbe{})
	if err != nil {
		t.Fatal(err)
	}
	task := load.NewUniform(25e-3, 10e-3)
	if err := a.ProfileAcross(iface, template, "radio", task); err != nil {
		t.Fatal(err)
	}
	// Each configuration has its own estimate; the small bank's is the
	// largest (30 Ω through one bank) and exceeds V_high (infeasible).
	vsafes := map[core.BufferID]float64{}
	for _, id := range a.Configs() {
		iface.SetBuffer(id)
		v := iface.GetVSafe("radio")
		vsafes[id] = v
	}
	if !(vsafes["small"] > vsafes["big"] && vsafes["big"] > vsafes["all"]) {
		t.Errorf("V_safe ordering wrong: %v", vsafes)
	}
	if vsafes["small"] <= template.VHigh {
		t.Errorf("25 mA on the lone 30 Ω bank should be infeasible, got %g", vsafes["small"])
	}
	// The active buffer is restored after profiling.
	iface.SetBuffer("")
	if iface.Buffer() != "" {
		t.Error("buffer not restorable")
	}
}

func TestChooseRanksByRechargeTime(t *testing.T) {
	a := capybaraArray(t)
	template := powersys.Capybara()
	iface, err := core.NewInterface(mustModel(t, a, "all", template), nullProbe{})
	if err != nil {
		t.Fatal(err)
	}
	task := load.NewUniform(25e-3, 10e-3)
	if err := a.ProfileAcross(iface, template, "radio", task); err != nil {
		t.Fatal(err)
	}
	choices, err := a.Choose(iface, template, "radio", 2.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 3 {
		t.Fatalf("choices = %d", len(choices))
	}
	// Feasible configurations come first; the winner minimizes recharge
	// time; the infeasible small bank is last.
	if !choices[0].Feasible {
		t.Fatal("best choice infeasible")
	}
	if choices[len(choices)-1].Config != "small" {
		t.Errorf("infeasible small bank should rank last: %+v", choices)
	}
	for i := 1; i < len(choices); i++ {
		if choices[i-1].Feasible && choices[i].Feasible &&
			choices[i-1].RechargeTime > choices[i].RechargeTime {
			t.Error("feasible choices not sorted by recharge time")
		}
	}
	// The chosen configuration actually completes the task from its V_safe.
	best := choices[0]
	cfg, err := a.SystemConfig(best.Config, template)
	if err != nil {
		t.Fatal(err)
	}
	h, err := harness.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := h.RunAt(best.VSafe, task, powersys.RunOptions{SkipRebound: true})
	if !res.Completed {
		t.Errorf("chosen configuration %s fails at its own V_safe", best.Config)
	}
}

func TestChooseErrors(t *testing.T) {
	a := capybaraArray(t)
	template := powersys.Capybara()
	iface, err := core.NewInterface(mustModel(t, a, "all", template), nullProbe{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Choose(iface, template, "radio", 0); err == nil {
		t.Error("zero harvest accepted")
	}
	if _, err := a.Choose(iface, template, "unprofiled", 1e-3); err == nil {
		t.Error("unprofiled task accepted")
	}
}

func mustModel(t *testing.T, a *Array, id core.BufferID, template powersys.Config) core.PowerModel {
	t.Helper()
	m, err := a.Model(id, template)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// nullProbe satisfies core.Probe for interfaces that only use SetStatic.
type nullProbe struct{}

func (nullProbe) Start() {}
func (nullProbe) End()   {}
func (nullProbe) ReboundEnd() core.Observation {
	return core.Observation{VStart: 1, VMin: 1, VFinal: 1}
}

// Package reconfig models a software-defined, reconfigurable energy
// storage array (Capybara / Morphy class hardware, paper §V-B): the device
// carries several capacitor banks and connects a chosen subset to the rail
// through low-resistance switches. Culpeo "models a system's energy buffer
// as a capacitor in series with a variable resistor, capturing the effect
// of low resistance connections", and tags per-task profiling data with a
// buffer identifier so V_safe tables are kept per configuration.
//
// The package provides the array model, per-configuration power models,
// profiling a task across every configuration into one core.Interface
// (exercising SetBuffer), and a configuration chooser that picks the
// feasible configuration with the fastest recharge-to-V_safe — small banks
// recharge quickly for small tasks, large banks enable energy-hungry ones.
package reconfig

import (
	"errors"
	"fmt"
	"sort"

	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
)

// Bank is one physical capacitor bank of the array.
type Bank struct {
	Name string
	C    float64 // farads
	ESR  float64 // ohms, the bank's own ESR
}

// Array is the reconfigurable storage.
type Array struct {
	Banks []Bank
	// SwitchESR is the series resistance each engaged switch adds.
	SwitchESR float64
	// configs maps a configuration ID to the engaged bank indices.
	configs map[core.BufferID][]int
}

// NewArray builds an array from banks.
func NewArray(switchESR float64, banks ...Bank) (*Array, error) {
	if len(banks) == 0 {
		return nil, errors.New("reconfig: array needs banks")
	}
	for _, b := range banks {
		if b.C <= 0 || b.ESR < 0 {
			return nil, fmt.Errorf("reconfig: bank %q unphysical", b.Name)
		}
	}
	if switchESR < 0 {
		return nil, errors.New("reconfig: negative switch ESR")
	}
	return &Array{Banks: banks, SwitchESR: switchESR, configs: map[core.BufferID][]int{}}, nil
}

// Define registers a configuration: the subset of banks engaged in
// parallel.
func (a *Array) Define(id core.BufferID, bankIdx ...int) error {
	if len(bankIdx) == 0 {
		return fmt.Errorf("reconfig: configuration %s engages no banks", id)
	}
	seen := map[int]bool{}
	for _, i := range bankIdx {
		if i < 0 || i >= len(a.Banks) {
			return fmt.Errorf("reconfig: configuration %s: bank %d out of range", id, i)
		}
		if seen[i] {
			return fmt.Errorf("reconfig: configuration %s: duplicate bank %d", id, i)
		}
		seen[i] = true
	}
	a.configs[id] = append([]int(nil), bankIdx...)
	return nil
}

// Configs lists defined configuration IDs, sorted.
func (a *Array) Configs() []core.BufferID {
	out := make([]core.BufferID, 0, len(a.configs))
	for id := range a.configs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Network builds the storage network for a configuration at the given
// initial voltage: each engaged bank is a branch whose ESR includes the
// switch resistance.
func (a *Array) Network(id core.BufferID, v float64) (*capacitor.Network, error) {
	idx, ok := a.configs[id]
	if !ok {
		return nil, fmt.Errorf("reconfig: unknown configuration %s", id)
	}
	branches := make([]*capacitor.Branch, 0, len(idx))
	for _, i := range idx {
		b := a.Banks[i]
		branches = append(branches, &capacitor.Branch{
			Name:    b.Name,
			C:       b.C,
			ESR:     b.ESR + a.SwitchESR,
			Voltage: v,
		})
	}
	return capacitor.NewNetwork(branches...)
}

// Capacitance returns a configuration's total capacitance.
func (a *Array) Capacitance(id core.BufferID) (float64, error) {
	net, err := a.Network(id, 0)
	if err != nil {
		return 0, err
	}
	return net.TotalCapacitance(), nil
}

// EffectiveESR returns the configuration's parallel-combined ESR (with
// switch resistance).
func (a *Array) EffectiveESR(id core.BufferID) (float64, error) {
	idx, ok := a.configs[id]
	if !ok {
		return 0, fmt.Errorf("reconfig: unknown configuration %s", id)
	}
	var g float64
	for _, i := range idx {
		r := a.Banks[i].ESR + a.SwitchESR
		if r <= 0 {
			r = 1e-6
		}
		g += 1 / r
	}
	return 1 / g, nil
}

// SystemConfig builds a full power-system configuration for a
// configuration ID, based on a template (boosters and window come from the
// template; storage is replaced).
func (a *Array) SystemConfig(id core.BufferID, template powersys.Config) (powersys.Config, error) {
	net, err := a.Network(id, template.VHigh)
	if err != nil {
		return powersys.Config{}, err
	}
	out := template
	out.Storage = net
	return out, nil
}

// Model derives the Culpeo power model for a configuration.
func (a *Array) Model(id core.BufferID, template powersys.Config) (core.PowerModel, error) {
	c, err := a.Capacitance(id)
	if err != nil {
		return core.PowerModel{}, err
	}
	r, err := a.EffectiveESR(id)
	if err != nil {
		return core.PowerModel{}, err
	}
	return core.PowerModel{
		C:     c,
		ESR:   capacitor.Flat(r),
		VOut:  template.Output.VOut,
		VOff:  template.VOff,
		VHigh: template.VHigh,
		Eff:   template.Output.Efficiency,
	}, nil
}

// ProfileAcross profiles one task on every defined configuration with
// Culpeo-PG, storing per-buffer estimates into the interface via SetBuffer
// — the §V-B workflow ("Culpeo-R tags per-task data with a buffer
// identifier. Future get queries must then specify a buffer
// configuration"). The interface's active buffer is restored afterwards.
func (a *Array) ProfileAcross(iface *core.Interface, template powersys.Config, id core.TaskID, task load.Profile) error {
	prev := iface.Buffer()
	defer iface.SetBuffer(prev)
	for _, cfgID := range a.Configs() {
		model, err := a.Model(cfgID, template)
		if err != nil {
			return err
		}
		est, err := profiler.PG{Model: model}.Estimate(task)
		if err != nil {
			return err
		}
		iface.SetBuffer(cfgID)
		iface.SetStatic(id, est)
	}
	return nil
}

// Choice is a configuration recommendation for a task.
type Choice struct {
	Config core.BufferID
	VSafe  float64
	// RechargeTime estimates charging the configuration from V_off to
	// V_safe at the given harvested power (seconds).
	RechargeTime float64
	Feasible     bool
}

// Choose ranks configurations for a task: feasible ones (V_safe ≤ V_high)
// first, by estimated recharge time to V_safe at harvest watts. The §III
// use case: "the programmer can also use V_safe as a guide to configure
// the energy buffer".
func (a *Array) Choose(iface *core.Interface, template powersys.Config, id core.TaskID, harvest float64) ([]Choice, error) {
	if harvest <= 0 {
		return nil, errors.New("reconfig: non-positive harvest")
	}
	prev := iface.Buffer()
	defer iface.SetBuffer(prev)
	etaIn := template.Input.Efficiency
	var out []Choice
	for _, cfgID := range a.Configs() {
		iface.SetBuffer(cfgID)
		est, ok := iface.Estimate(id)
		if !ok {
			continue
		}
		c, err := a.Capacitance(cfgID)
		if err != nil {
			return nil, err
		}
		vs := est.VSafe
		feasible := vs <= template.VHigh
		t := 0.0
		if feasible {
			// E = ½C(V_safe² − V_off²) delivered at harvest·η_in.
			t = 0.5 * c * (vs*vs - template.VOff*template.VOff) / (harvest * etaIn)
		}
		out = append(out, Choice{Config: cfgID, VSafe: vs, RechargeTime: t, Feasible: feasible})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("reconfig: no profiled configurations for task %s", id)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Feasible != out[j].Feasible {
			return out[i].Feasible
		}
		if out[i].Feasible {
			return out[i].RechargeTime < out[j].RechargeTime
		}
		return out[i].VSafe < out[j].VSafe
	})
	return out, nil
}

package sched

import (
	"fmt"
	"math"

	"culpeo/internal/core"
	"culpeo/internal/harness"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
)

// guard is the headroom both policies keep between the background floor and
// the chain requirement, so one background execution cannot cross the line
// mid-run.
const guard = 10e-3

// DispatchMargin is added to every policy's readiness threshold. It is the
// paper's measured estimate-uncertainty band (Section VI-A: estimates up to
// 20 mV below the true V_safe "will cause failures some of the time"), so a
// deployment dispatches with that much headroom. Both policies receive the
// same margin; it is far too small to rescue energy-only estimates, whose
// errors are hundreds of millivolts.
const DispatchMargin = 20e-3

// CatNapPolicy is the energy-only baseline (Section II-D): each task's cost
// is the voltage-squared drop measured immediately at task completion when
// profiled from a full buffer. Feasibility is "enough energy", with no
// awareness of ESR transients.
type CatNapPolicy struct {
	// deltaV2 holds the per-task energy estimate as V_start² − V_end².
	deltaV2 map[core.TaskID]float64
	vOff    float64
	vHigh   float64
}

// NewCatNapPolicy returns an unprepared CatNap policy.
func NewCatNapPolicy() *CatNapPolicy { return &CatNapPolicy{} }

func (p *CatNapPolicy) Name() string { return "CatNap" }

// Prepare profiles every task once from V_high using the published CatNap
// measurement: voltage sampled right when the task completes.
func (p *CatNapPolicy) Prepare(d *Device) error {
	cfg := d.Sys.Config()
	h, err := harness.New(cfg)
	if err != nil {
		return err
	}
	p.vOff, p.vHigh = cfg.VOff, cfg.VHigh
	p.deltaV2 = map[core.TaskID]float64{}
	profile := func(t Task) error {
		res := h.RunAt(cfg.VHigh, t.Profile, powersys.RunOptions{SkipRebound: true})
		if !res.Completed {
			return fmt.Errorf("sched: catnap profiling of %s failed", t.ID)
		}
		d2 := res.VStart*res.VStart - res.VEndImmediate*res.VEndImmediate
		if d2 < 0 {
			d2 = 0
		}
		p.deltaV2[t.ID] = d2
		return nil
	}
	for _, t := range d.Tasks {
		if err := profile(t); err != nil {
			return err
		}
	}
	if d.Background != nil {
		if err := profile(*d.Background); err != nil {
			return err
		}
	}
	return nil
}

// need returns CatNap's required starting voltage for a chain: the voltage
// whose stored energy covers the sum of the measured task energies.
func (p *CatNapPolicy) need(chain []core.TaskID) float64 {
	sum := 0.0
	for _, id := range chain {
		d2, ok := p.deltaV2[id]
		if !ok {
			return p.vHigh
		}
		sum += d2
	}
	return math.Sqrt(p.vOff*p.vOff+sum) + DispatchMargin
}

func (p *CatNapPolicy) ChainReady(chain []core.TaskID, v float64) bool {
	return v >= p.need(chain)
}

func (p *CatNapPolicy) BackgroundFloor(chain []core.TaskID) float64 {
	return p.need(chain) + guard
}

// CulpeoPolicy replaces CatNap's feasibility test with Theorem 1: a chain
// runs only when the buffer voltage meets the chain's V_safe_multi computed
// by the Culpeo runtime from profiled observations (ISR sampling by
// default; see NewCulpeoPolicyWithProbe for the µArch block).
type CulpeoPolicy struct {
	iface *core.Interface
	model core.PowerModel
	probe func(source func() float64) profiler.Sampler
	bgReq core.TaskReq
	hasBG bool

	// needMemo caches per-chain requirements, validated against the
	// interface's mutation generation: the dispatcher tests the same one or
	// two chains on every scheduler quantum, and the estimates behind them
	// only change on re-profiling. A generation mismatch drops the memo.
	needMemo []needEntry
	needGen  uint64
}

// needEntry is one memoized chain requirement.
type needEntry struct {
	chain []core.TaskID
	v     float64
}

// NewCulpeoPolicy builds the policy around a power model (the same
// datasheet + measured-ESR information Culpeo-R needs), profiling with the
// Culpeo-R-ISR mechanism.
func NewCulpeoPolicy(model core.PowerModel) *CulpeoPolicy {
	return NewCulpeoPolicyWithProbe(model, func(src func() float64) profiler.Sampler {
		return profiler.NewISRProbe(src)
	})
}

// NewCulpeoPolicyWithProbe builds the policy with a custom voltage-capture
// mechanism — pass a µArch probe factory to schedule off the proposed
// peripheral block (Section V-D: its negligible sampling power lets it
// profile lower-energy tasks than the ISR).
func NewCulpeoPolicyWithProbe(model core.PowerModel, probe func(source func() float64) profiler.Sampler) *CulpeoPolicy {
	return &CulpeoPolicy{model: model, probe: probe}
}

func (p *CulpeoPolicy) Name() string { return "Culpeo" }

// Interface exposes the underlying Culpeo runtime interface (tests and
// tools inspect the per-task estimates through it).
func (p *CulpeoPolicy) Interface() *core.Interface { return p.iface }

// Prepare profiles every task once with the Culpeo-R-ISR mechanism from a
// full buffer under the deployment's harvested power, then computes V_safe
// and V_delta via the Table I interface.
func (p *CulpeoPolicy) Prepare(d *Device) error {
	cfg := d.Sys.Config()
	h, err := harness.New(cfg)
	if err != nil {
		return err
	}
	profileTask := func(t Task) (core.Estimate, error) {
		sys := h.NewSystem()
		sys.Monitor().Force(true)
		probe := p.probe(sys.VTerm)
		// Profile with no incoming power: the worst case Culpeo-PG also
		// assumes (Section IV-B). Profiling under harvest would let the
		// rebound-settle window absorb harvested energy into V_final and
		// understate the task's cost.
		est, err := profiler.REstimate(p.model, sys, probe, t.Profile, 0)
		if err != nil {
			return core.Estimate{}, fmt.Errorf("sched: culpeo profiling of %s: %w", t.ID, err)
		}
		return est, nil
	}

	// The runtime interface holds the estimates the dispatch tests consult.
	probe := profiler.NewISRProbe(func() float64 { return p.model.VHigh })
	p.iface, err = core.NewInterface(p.model, probe)
	if err != nil {
		return err
	}
	for _, t := range d.Tasks {
		est, err := profileTask(t)
		if err != nil {
			return err
		}
		p.iface.SetStatic(t.ID, est)
	}
	if d.Background != nil {
		est, err := profileTask(*d.Background)
		if err != nil {
			return err
		}
		p.iface.SetStatic(d.Background.ID, est)
		p.bgReq = est.Req(string(d.Background.ID))
		p.hasBG = true
	}
	return nil
}

// need returns the chain's V_safe_multi plus the dispatch margin, memoized
// per chain while the interface generation is stable.
func (p *CulpeoPolicy) need(chain []core.TaskID) float64 {
	if gen := p.iface.Generation(); gen != p.needGen {
		p.needMemo = p.needMemo[:0]
		p.needGen = gen
	}
	for i := range p.needMemo {
		if chainsEqual(p.needMemo[i].chain, chain) {
			return p.needMemo[i].v
		}
	}
	v, _ := p.iface.SeqVSafe(chain)
	v += DispatchMargin
	p.needMemo = append(p.needMemo, needEntry{
		chain: append([]core.TaskID(nil), chain...),
		v:     v,
	})
	return v
}

// chainsEqual compares chains element-wise (no allocation, unlike joining
// IDs into a map key).
func chainsEqual(a, b []core.TaskID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (p *CulpeoPolicy) ChainReady(chain []core.TaskID, v float64) bool {
	return v >= p.need(chain)
}

// BackgroundFloor keeps enough headroom that one background execution (its
// energy cost plus its own ESR dip) cannot take the buffer below the
// chain's requirement.
func (p *CulpeoPolicy) BackgroundFloor(chain []core.TaskID) float64 {
	floor := p.need(chain) + guard
	if p.hasBG {
		floor += p.bgReq.VE
	}
	return floor
}

package sched

import (
	"fmt"
	"io"

	"culpeo/internal/core"
)

// EventKind classifies a scheduler log entry.
type EventKind int

const (
	// EvChainStart: a high-priority chain was dispatched.
	EvChainStart EventKind = iota
	// EvChainDone: the chain completed within its deadline.
	EvChainDone
	// EvChainFail: a task in the chain suffered a power failure.
	EvChainFail
	// EvDeadlineMiss: an event's deadline passed unserved.
	EvDeadlineMiss
	// EvRecharged: the device finished a post-failure full recharge.
	EvRecharged
)

func (k EventKind) String() string {
	switch k {
	case EvChainStart:
		return "chain-start"
	case EvChainDone:
		return "chain-done"
	case EvChainFail:
		return "CHAIN-FAIL"
	case EvDeadlineMiss:
		return "DEADLINE-MISS"
	case EvRecharged:
		return "recharged"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one scheduler log entry.
type Event struct {
	T      float64 // simulation time
	Kind   EventKind
	Stream string      // event stream, when applicable
	Task   core.TaskID // failing task, when applicable
	V      float64     // terminal voltage at the moment
}

// String renders one line.
func (e Event) String() string {
	s := fmt.Sprintf("t=%8.3fs  %-13s v=%.3f", e.T, e.Kind, e.V)
	if e.Stream != "" {
		s += "  stream=" + e.Stream
	}
	if e.Task != "" {
		s += "  task=" + string(e.Task)
	}
	return s
}

// EventLog collects scheduler events, bounded to Cap entries (0 = 4096).
// Attach one to Device.Log to trace a run.
type EventLog struct {
	Cap    int
	Events []Event
	// Dropped counts entries discarded after the cap was reached.
	Dropped int
}

func (l *EventLog) add(e Event) {
	if l == nil {
		return
	}
	capN := l.Cap
	if capN <= 0 {
		capN = 4096
	}
	if len(l.Events) >= capN {
		l.Dropped++
		return
	}
	l.Events = append(l.Events, e)
}

// Count returns how many events of the kind were logged.
func (l *EventLog) Count(k EventKind) int {
	if l == nil {
		return 0
	}
	n := 0
	for _, e := range l.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Render writes the log as text lines.
func (l *EventLog) Render(w io.Writer) error {
	for _, e := range l.Events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	if l.Dropped > 0 {
		if _, err := fmt.Fprintf(w, "(+%d events dropped past cap)\n", l.Dropped); err != nil {
			return err
		}
	}
	return nil
}

// Package sched implements the charge-management schedulers of the paper's
// application evaluation (Sections VI-B and VII-B/C):
//
//   - CatNap: the state-of-the-art energy-only scheduler. It estimates each
//     task's cost from a quick voltage measurement at task completion and
//     dispatches whenever the buffer holds "enough energy". ESR-induced
//     drops violate its feasibility assumption, causing unexpected power
//     failures.
//   - Culpeo: the same scheduler with its feasibility test replaced by
//     Theorem 1 — a task chain starts only when the buffer voltage is at or
//     above the chain's V_safe_multi from the Culpeo runtime interface.
//
// Both schedulers run event-driven applications: high-priority task chains
// triggered by periodic or Poisson event streams with deadlines, plus a
// low-priority background task that runs on surplus energy.
package sched

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

// Priority of a task.
type Priority int

const (
	// Low priority work runs opportunistically on surplus energy.
	Low Priority = iota
	// High priority work responds to events under a deadline.
	High
)

// Task is a schedulable unit of work.
type Task struct {
	ID       core.TaskID
	Profile  load.Profile
	Priority Priority
}

// Stream is one event source of an application: arrivals trigger a chain of
// high-priority tasks that must complete within Deadline of the arrival.
type Stream struct {
	Name     string
	Arrivals []float64 // absolute arrival times, ascending
	Chain    []core.TaskID
	Deadline float64 // seconds after arrival
}

// PeriodicArrivals generates arrivals every period up to horizon, starting
// at the first period boundary.
func PeriodicArrivals(period, horizon float64) []float64 {
	var out []float64
	for t := period; t < horizon; t += period {
		out = append(out, t)
	}
	return out
}

// PoissonArrivals generates a Poisson process with mean inter-arrival
// lambda seconds up to horizon, deterministic for a given rng.
func PoissonArrivals(rng *rand.Rand, lambda, horizon float64) []float64 {
	var out []float64
	t := 0.0
	for {
		t += rng.ExpFloat64() * lambda
		if t >= horizon {
			return out
		}
		out = append(out, t)
	}
}

// Policy is the dispatch test under evaluation: it decides when a
// high-priority chain may start and how far background work may drain the
// buffer.
type Policy interface {
	Name() string
	// Prepare profiles the task set before the application starts (the
	// evaluation profiles once, since harvested power is stable).
	Prepare(d *Device) error
	// ChainReady reports whether the chain may start at buffer voltage v.
	ChainReady(chain []core.TaskID, v float64) bool
	// BackgroundFloor returns the voltage above which low-priority work may
	// run, given the chain it must stay ready for.
	BackgroundFloor(chain []core.TaskID) float64
}

// Device is a simulated energy-harvesting device running an event-driven
// application under a scheduling policy.
type Device struct {
	Sys        *powersys.System
	Harvest    float64 // constant harvested power (W)
	Tasks      map[core.TaskID]Task
	Background *Task // optional low-priority task
	Policy     Policy

	// IdleChunk bounds how long the device sleeps per scheduling decision.
	// 0 = 5 ms.
	IdleChunk float64
	// Fast requests the analytic segment-advance stepper for every task the
	// device executes (see powersys.RunOptions.Fast). Idle stepping is
	// unaffected — it already runs one Step per chunk.
	Fast bool
	// Log, when non-nil, records dispatches, failures and deadline misses.
	Log *EventLog

	// ReadV, when non-nil, replaces Sys.VTerm as the voltage the scheduler
	// sees for dispatch decisions — the hook for a faulty measurement
	// chain. The physics still runs on the true voltage.
	ReadV func() float64
	// Margin, when non-nil, adds an adaptive guard voltage on top of every
	// dispatch test: chains wait until the measured voltage clears the
	// policy threshold plus the margin. Failures inflate it, sustained
	// success decays it (graceful degradation under conditions the
	// profiles didn't see).
	Margin *core.AdaptiveMargin
}

// readV returns the voltage the scheduler believes, through ReadV when set.
func (d *Device) readV() float64 {
	if d.ReadV != nil {
		return d.ReadV()
	}
	return d.Sys.VTerm()
}

// NewDevice wires a device.
func NewDevice(sys *powersys.System, harvest float64, tasks []Task, background *Task, policy Policy) (*Device, error) {
	if sys == nil || policy == nil {
		return nil, errors.New("sched: device needs a system and a policy")
	}
	m := map[core.TaskID]Task{}
	for _, t := range tasks {
		if t.Profile == nil {
			return nil, fmt.Errorf("sched: task %s has no profile", t.ID)
		}
		if _, dup := m[t.ID]; dup {
			return nil, fmt.Errorf("sched: duplicate task %s", t.ID)
		}
		m[t.ID] = t
	}
	return &Device{Sys: sys, Harvest: harvest, Tasks: m, Background: background, Policy: policy}, nil
}

// Metrics summarizes an application run.
type Metrics struct {
	// PerStream maps stream name to (events, captured).
	PerStream map[string]StreamMetrics
	// PowerFailures counts monitor power-off events during the run.
	PowerFailures int
	// BackgroundRuns counts completed low-priority executions.
	BackgroundRuns int
	// SimTime is the simulated duration.
	SimTime float64
}

// StreamMetrics counts one stream's outcomes.
type StreamMetrics struct {
	Events   int
	Captured int
}

// CaptureRate returns captured/events as a percentage (100 when no events).
func (m StreamMetrics) CaptureRate() float64 {
	if m.Events == 0 {
		return 100
	}
	return float64(m.Captured) / float64(m.Events) * 100
}

// pendingEvent is an arrival waiting to be served.
type pendingEvent struct {
	stream   int
	arrival  float64
	deadline float64
}

// Run executes the application until horizon and returns metrics. Events
// are served in arrival order; an event is captured when its whole chain
// completes by its deadline. A power failure mid-chain forces a full
// recharge to V_high before anything else runs (Section II-A), and the
// event is lost if its deadline passes meanwhile.
func (d *Device) Run(streams []Stream, horizon float64) (Metrics, error) {
	if err := d.Policy.Prepare(d); err != nil {
		return Metrics{}, err
	}
	met := Metrics{PerStream: map[string]StreamMetrics{}}
	for _, s := range streams {
		sm := met.PerStream[s.Name]
		sm.Events += len(s.Arrivals)
		met.PerStream[s.Name] = sm
	}

	// Merge arrivals.
	var queue []pendingEvent
	for si, s := range streams {
		for _, a := range s.Arrivals {
			queue = append(queue, pendingEvent{stream: si, arrival: a, deadline: a + s.Deadline})
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].arrival < queue[j].arrival })

	idle := d.IdleChunk
	if idle <= 0 {
		idle = 5e-3
	}

	failures0 := d.Sys.Failures()
	qi := 0
	for d.Sys.Now() < horizon {
		now := d.Sys.Now()

		// Drop events whose deadline already passed while we were busy.
		for qi < len(queue) && queue[qi].deadline <= now {
			d.Log.add(Event{T: now, Kind: EvDeadlineMiss,
				Stream: streams[queue[qi].stream].Name, V: d.Sys.VTerm()})
			qi++
		}

		var ev *pendingEvent
		if qi < len(queue) && queue[qi].arrival <= now {
			ev = &queue[qi]
		}

		if ev != nil {
			s := streams[ev.stream]
			if d.Policy.ChainReady(s.Chain, d.readV()-d.Margin.Margin()) && d.Sys.On() {
				d.Log.add(Event{T: now, Kind: EvChainStart, Stream: s.Name, V: d.Sys.VTerm()})
				ok := d.runChain(s.Name, s.Chain, ev.deadline)
				if ok && d.Sys.Now() <= ev.deadline {
					sm := met.PerStream[s.Name]
					sm.Captured++
					met.PerStream[s.Name] = sm
					d.Log.add(Event{T: d.Sys.Now(), Kind: EvChainDone, Stream: s.Name, V: d.Sys.VTerm()})
				}
				qi++
				continue
			}
			// Not ready: charge toward readiness; give up when the deadline
			// passes (the event is dropped by the loop head).
			d.idleStep(math.Min(idle, ev.deadline-now))
			continue
		}

		// No pending event: background work on surplus energy, else sleep.
		next := horizon
		if qi < len(queue) {
			next = math.Min(next, queue[qi].arrival)
		}
		if d.Background != nil && d.Sys.On() {
			floor := d.Policy.BackgroundFloor(upcomingChain(streams, queue, qi))
			if d.readV()-d.Margin.Margin() > floor {
				res := d.Sys.Run(d.Background.Profile, powersys.RunOptions{
					HarvestPower: d.Harvest, SkipRebound: true, Fast: d.Fast,
				})
				if res.Completed {
					met.BackgroundRuns++
				}
				continue
			}
		}
		d.idleStep(math.Min(idle, next-now))
	}

	met.PowerFailures = d.Sys.Failures() - failures0
	met.SimTime = d.Sys.Now()
	return met, nil
}

// upcomingChain returns the chain of the next queued event (for background
// floor decisions), or the first stream's chain when the queue is drained.
func upcomingChain(streams []Stream, queue []pendingEvent, qi int) []core.TaskID {
	if qi < len(queue) {
		return streams[queue[qi].stream].Chain
	}
	if len(streams) > 0 {
		return streams[0].Chain
	}
	return nil
}

// runChain executes the chain's tasks back to back. It returns false when
// any task suffers a power failure; in that case the device recharges to
// V_high before returning (hysteresis), consuming wall-clock time.
func (d *Device) runChain(stream string, chain []core.TaskID, deadline float64) bool {
	for _, id := range chain {
		t, ok := d.Tasks[id]
		if !ok {
			return false
		}
		res := d.Sys.Run(t.Profile, powersys.RunOptions{
			HarvestPower: d.Harvest, SkipRebound: true, Fast: d.Fast,
		})
		if !res.Completed {
			d.Margin.Failure()
			d.Log.add(Event{T: d.Sys.Now(), Kind: EvChainFail, Stream: stream, Task: id, V: res.VMin})
			d.rechargeToOn(deadline + 120)
			d.Log.add(Event{T: d.Sys.Now(), Kind: EvRecharged, Stream: stream, V: d.Sys.VTerm()})
			return false
		}
		d.Margin.Success()
	}
	return true
}

// idleStep sleeps the device for up to dur while harvesting.
func (d *Device) idleStep(dur float64) {
	if dur <= 0 {
		dur = d.Sys.DT()
	}
	steps := int(math.Ceil(dur / d.Sys.DT()))
	for i := 0; i < steps; i++ {
		d.Sys.Step(load.SleepCurrent, d.Harvest)
	}
}

// rechargeToOn steps with no load until the monitor re-enables delivery or
// the absolute time limit passes.
func (d *Device) rechargeToOn(limit float64) {
	for !d.Sys.On() && d.Sys.Now() < limit {
		d.Sys.Step(0, d.Harvest)
	}
}

package sched

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
)

func TestPeriodicArrivals(t *testing.T) {
	a := PeriodicArrivals(4.5, 300)
	if len(a) != 66 {
		t.Fatalf("arrivals = %d, want 66", len(a))
	}
	if a[0] != 4.5 || a[1] != 9.0 {
		t.Error("arrival spacing wrong")
	}
	for _, x := range a {
		if x >= 300 {
			t.Fatal("arrival past horizon")
		}
	}
	if len(PeriodicArrivals(10, 5)) != 0 {
		t.Error("short horizon should have no arrivals")
	}
}

func TestPoissonArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := PoissonArrivals(rng, 45, 10000)
	if len(a) < 150 || len(a) > 300 {
		t.Fatalf("arrival count = %d, want ≈222", len(a))
	}
	// Ascending and inside the horizon.
	for i, x := range a {
		if x >= 10000 || (i > 0 && x <= a[i-1]) {
			t.Fatal("arrivals not ascending within horizon")
		}
	}
	// Mean inter-arrival ≈ λ.
	mean := a[len(a)-1] / float64(len(a))
	if math.Abs(mean-45)/45 > 0.2 {
		t.Errorf("mean inter-arrival = %g, want ≈45", mean)
	}
	// Deterministic per seed.
	b := PoissonArrivals(rand.New(rand.NewSource(7)), 45, 10000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Poisson arrivals not deterministic")
		}
	}
}

func TestStreamMetricsCaptureRate(t *testing.T) {
	if (StreamMetrics{Events: 0}).CaptureRate() != 100 {
		t.Error("no events should be 100%")
	}
	if got := (StreamMetrics{Events: 4, Captured: 1}).CaptureRate(); got != 25 {
		t.Errorf("capture rate = %g", got)
	}
}

// testApp builds a minimal single-task application on the Capybara system.
func testApp(t *testing.T, policy Policy) (*Device, []Stream) {
	t.Helper()
	cfg := powersys.Capybara()
	cfg.DT = 40e-6
	sys, err := powersys.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := Task{ID: "blip", Profile: load.NewUniform(10e-3, 5e-3), Priority: High}
	bg := Task{ID: "bg", Profile: load.PhotoRead(), Priority: Low}
	dev, err := NewDevice(sys, 2.5e-3, []Task{task}, &bg, policy)
	if err != nil {
		t.Fatal(err)
	}
	streams := []Stream{{
		Name:     "blips",
		Arrivals: PeriodicArrivals(2.0, 20),
		Chain:    []core.TaskID{"blip"},
		Deadline: 2.0,
	}}
	return dev, streams
}

func TestNewDeviceValidation(t *testing.T) {
	cfg := powersys.Capybara()
	sys, _ := powersys.New(cfg)
	if _, err := NewDevice(nil, 0, nil, nil, NewCatNapPolicy()); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := NewDevice(sys, 0, nil, nil, nil); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewDevice(sys, 0, []Task{{ID: "x"}}, nil, NewCatNapPolicy()); err == nil {
		t.Error("task without profile accepted")
	}
	dup := []Task{
		{ID: "x", Profile: load.PhotoRead()},
		{ID: "x", Profile: load.PhotoRead()},
	}
	if _, err := NewDevice(sys, 0, dup, nil, NewCatNapPolicy()); err == nil {
		t.Error("duplicate task accepted")
	}
}

func TestDeviceRunsLightApp(t *testing.T) {
	dev, streams := testApp(t, NewCatNapPolicy())
	met, err := dev.Run(streams, 20)
	if err != nil {
		t.Fatal(err)
	}
	sm := met.PerStream["blips"]
	if sm.Events != 9 {
		t.Fatalf("events = %d", sm.Events)
	}
	// A 10 mA, 5 ms blip every 2 s is trivially sustainable: everything
	// captured under either policy.
	if sm.Captured != sm.Events {
		t.Errorf("captured %d of %d light events", sm.Captured, sm.Events)
	}
	if met.PowerFailures != 0 {
		t.Errorf("power failures = %d", met.PowerFailures)
	}
	if met.BackgroundRuns == 0 {
		t.Error("background never ran despite surplus")
	}
	if met.SimTime < 20 {
		t.Errorf("sim time = %g", met.SimTime)
	}
}

func TestCulpeoPolicyPrepares(t *testing.T) {
	cfg := powersys.Capybara()
	model := core.PowerModel{
		C:    cfg.Storage.TotalCapacitance(),
		ESR:  capacitor.Flat(cfg.Storage.Main().ESR),
		VOut: cfg.Output.VOut, VOff: cfg.VOff, VHigh: cfg.VHigh,
		Eff: cfg.Output.Efficiency,
	}
	pol := NewCulpeoPolicy(model)
	dev, _ := testApp(t, pol)
	if err := pol.Prepare(dev); err != nil {
		t.Fatal(err)
	}
	if _, ok := pol.Interface().Estimate("blip"); !ok {
		t.Error("task not profiled")
	}
	if _, ok := pol.Interface().Estimate("bg"); !ok {
		t.Error("background not profiled")
	}
	need := pol.BackgroundFloor([]core.TaskID{"blip"})
	if need <= cfg.VOff || need >= cfg.VHigh {
		t.Errorf("floor = %g out of window", need)
	}
	// ChainReady consistent with the floor ordering.
	if pol.ChainReady([]core.TaskID{"blip"}, cfg.VOff) {
		t.Error("ready at V_off should be false")
	}
	if !pol.ChainReady([]core.TaskID{"blip"}, cfg.VHigh) {
		t.Error("ready at V_high should be true")
	}
}

func TestCatNapUnderestimatesPulseChain(t *testing.T) {
	// The core of the paper: for a chain ending in a high-current pulse,
	// CatNap's energy-only requirement sits far below Culpeo's ESR-aware
	// requirement.
	cfg := powersys.Capybara()
	cfg.DT = 40e-6
	sys, _ := powersys.New(cfg)
	pulse := Task{ID: "radio", Profile: load.NewUniform(50e-3, 10e-3), Priority: High}
	cat := NewCatNapPolicy()
	model := core.PowerModel{
		C:    cfg.Storage.TotalCapacitance(),
		ESR:  capacitor.Flat(cfg.Storage.Main().ESR),
		VOut: cfg.Output.VOut, VOff: cfg.VOff, VHigh: cfg.VHigh,
		Eff: cfg.Output.Efficiency,
	}
	cul := NewCulpeoPolicy(model)
	devCat, _ := NewDevice(sys, 0, []Task{pulse}, nil, cat)
	if err := cat.Prepare(devCat); err != nil {
		t.Fatal(err)
	}
	if err := cul.Prepare(devCat); err != nil {
		t.Fatal(err)
	}
	chain := []core.TaskID{"radio"}
	catNeed := cat.need(chain)
	culNeed := cul.need(chain)
	if !(culNeed > catNeed+0.1) {
		t.Errorf("Culpeo need %g should exceed CatNap need %g by the ESR penalty",
			culNeed, catNeed)
	}
	// A voltage CatNap accepts but Culpeo rejects must actually fail.
	mid := (catNeed + culNeed) / 2
	if !cat.ChainReady(chain, mid) || cul.ChainReady(chain, mid) {
		t.Fatalf("mid voltage %g should split the policies", mid)
	}
	trial, _ := powersys.New(powersys.Capybara())
	if err := trial.DischargeTo(mid); err != nil {
		t.Fatal(err)
	}
	trial.Monitor().Force(true)
	res := trial.Run(pulse.Profile, powersys.RunOptions{SkipRebound: true})
	if res.Completed && res.VMin >= cfg.VOff {
		t.Errorf("run at CatNap-approved %g V unexpectedly survived (VMin %g)", mid, res.VMin)
	}
}

func TestDeadlineMissWhenNotReady(t *testing.T) {
	// An event arriving while the buffer is far below the requirement and
	// with a tight deadline must be dropped, not served late.
	cfg := powersys.Capybara()
	cfg.DT = 40e-6
	sys, _ := powersys.New(cfg)
	sys.DischargeTo(1.65)
	sys.Monitor().Force(true)
	task := Task{ID: "radio", Profile: load.NewUniform(50e-3, 10e-3), Priority: High}
	pol := NewCatNapPolicy()
	dev, err := NewDevice(sys, 0.1e-3, []Task{task}, nil, pol) // feeble harvest
	if err != nil {
		t.Fatal(err)
	}
	streams := []Stream{{
		Name:     "r",
		Arrivals: []float64{0.1},
		Chain:    []core.TaskID{"radio"},
		Deadline: 0.5,
	}}
	met, err := dev.Run(streams, 2)
	if err != nil {
		t.Fatal(err)
	}
	if met.PerStream["r"].Captured != 0 {
		t.Error("unservable event was captured")
	}
}

func TestDispatchMarginAppliedSymmetrically(t *testing.T) {
	if DispatchMargin <= 0 || DispatchMargin > 50e-3 {
		t.Errorf("dispatch margin %g outside the paper's uncertainty band", DispatchMargin)
	}
}

func TestEventLogRecordsLifecycle(t *testing.T) {
	// Run the light app with a log attached: starts and completions appear;
	// nothing fails.
	dev, streams := testApp(t, NewCatNapPolicy())
	log := &EventLog{}
	dev.Log = log
	if _, err := dev.Run(streams, 20); err != nil {
		t.Fatal(err)
	}
	if log.Count(EvChainStart) == 0 || log.Count(EvChainDone) == 0 {
		t.Errorf("lifecycle events missing: %d starts, %d dones",
			log.Count(EvChainStart), log.Count(EvChainDone))
	}
	if log.Count(EvChainFail) != 0 {
		t.Error("light app should not fail")
	}
	var sb strings.Builder
	if err := log.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "chain-start") {
		t.Error("render missing entries")
	}
	// Every event line renders.
	for _, e := range log.Events {
		if e.String() == "" {
			t.Fatal("unrenderable event")
		}
	}
}

func TestEventLogCap(t *testing.T) {
	l := &EventLog{Cap: 2}
	for i := 0; i < 5; i++ {
		l.add(Event{T: float64(i)})
	}
	if len(l.Events) != 2 || l.Dropped != 3 {
		t.Errorf("cap not enforced: %d events, %d dropped", len(l.Events), l.Dropped)
	}
	var nilLog *EventLog
	nilLog.add(Event{}) // must not panic
	if nilLog.Count(EvChainStart) != 0 {
		t.Error("nil log count wrong")
	}
}

func TestEventKindStrings(t *testing.T) {
	for _, k := range []EventKind{EvChainStart, EvChainDone, EvChainFail, EvDeadlineMiss, EvRecharged} {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestCulpeoPolicyWithUArchProbe(t *testing.T) {
	cfg := powersys.Capybara()
	model := core.PowerModel{
		C:    cfg.Storage.TotalCapacitance(),
		ESR:  capacitor.Flat(cfg.Storage.Main().ESR),
		VOut: cfg.Output.VOut, VOff: cfg.VOff, VHigh: cfg.VHigh,
		Eff: cfg.Output.Efficiency,
	}
	pol := NewCulpeoPolicyWithProbe(model, func(src func() float64) profiler.Sampler {
		return profiler.NewUArchProbe(src)
	})
	dev, streams := testApp(t, pol)
	met, err := dev.Run(streams, 20)
	if err != nil {
		t.Fatal(err)
	}
	if met.PerStream["blips"].CaptureRate() < 99 {
		t.Errorf("µArch-profiled policy capture = %g", met.PerStream["blips"].CaptureRate())
	}
	// The µArch-profiled requirement stays close to the ISR-profiled one.
	isr := NewCulpeoPolicy(model)
	devISR, _ := testApp(t, isr)
	if err := isr.Prepare(devISR); err != nil {
		t.Fatal(err)
	}
	a := pol.BackgroundFloor([]core.TaskID{"blip"})
	b := isr.BackgroundFloor([]core.TaskID{"blip"})
	if math.Abs(a-b) > 50e-3 {
		t.Errorf("probe choice moved the floor too far: %g vs %g", a, b)
	}
}

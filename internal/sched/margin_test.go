package sched

import (
	"testing"

	"culpeo/internal/core"
)

// TestReadVGatesDispatch proves the scheduler's dispatch decisions consult
// the pluggable voltage read: a chain that reads zero volts must never
// dispatch, even though the true rail is healthy.
func TestReadVGatesDispatch(t *testing.T) {
	dev, streams := testApp(t, NewCatNapPolicy())
	dev.ReadV = func() float64 { return 0 }
	met, err := dev.Run(streams, 20)
	if err != nil {
		t.Fatal(err)
	}
	if met.PerStream["blips"].Captured != 0 {
		t.Errorf("captured %d events on a dead measurement chain",
			met.PerStream["blips"].Captured)
	}
	if met.BackgroundRuns != 0 {
		t.Errorf("background ran %d times on a dead measurement chain", met.BackgroundRuns)
	}
}

// TestMarginGatesDispatch proves the adaptive guard margin is subtracted
// from every dispatch decision: an absurd margin blocks everything, while
// the default margin leaves a trivially sustainable app untouched.
func TestMarginGatesDispatch(t *testing.T) {
	dev, streams := testApp(t, NewCatNapPolicy())
	dev.Margin = &core.AdaptiveMargin{Base: 10} // 10 V: nothing can clear it
	met, err := dev.Run(streams, 20)
	if err != nil {
		t.Fatal(err)
	}
	if met.PerStream["blips"].Captured != 0 {
		t.Errorf("captured %d events past a 10 V margin", met.PerStream["blips"].Captured)
	}

	dev, streams = testApp(t, NewCatNapPolicy())
	dev.Margin = core.DefaultAdaptiveMargin()
	met, err = dev.Run(streams, 20)
	if err != nil {
		t.Fatal(err)
	}
	sm := met.PerStream["blips"]
	if sm.Captured != sm.Events || sm.Events == 0 {
		t.Errorf("default margin broke the light app: %d of %d", sm.Captured, sm.Events)
	}
	if dev.Margin.Failures() != 0 {
		t.Errorf("clean run recorded %d margin failures", dev.Margin.Failures())
	}
}

package fixedpoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"culpeo/internal/booster"
	"culpeo/internal/capacitor"
	"culpeo/internal/core"
)

func TestQConversion(t *testing.T) {
	cases := []float64{0, 1, 2.56, 1.6, 0.72, -0.5, 3.14159}
	for _, f := range cases {
		q := FromFloat(f)
		if math.Abs(q.Float()-f) > 1.0/65536 {
			t.Errorf("round trip %g → %g", f, q.Float())
		}
	}
	if One.Float() != 1.0 {
		t.Error("One wrong")
	}
	if FromFloat(2.5).String() != "2.50000" {
		t.Errorf("String = %q", FromFloat(2.5).String())
	}
}

func TestMulDiv(t *testing.T) {
	var ops Ops
	a, b := FromFloat(2.4), FromFloat(0.75)
	if got := Mul(a, b, &ops).Float(); math.Abs(got-1.8) > 1e-4 {
		t.Errorf("mul = %g", got)
	}
	q, err := Div(a, b, &ops)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Float()-3.2) > 1e-4 {
		t.Errorf("div = %g", q.Float())
	}
	if _, err := Div(a, 0, &ops); err == nil {
		t.Error("division by zero accepted")
	}
	// The rejected division-by-zero never reaches the ALU, so only one
	// divide is booked.
	if ops.Mul != 1 || ops.Div != 1 {
		t.Errorf("ops miscounted: %+v", ops)
	}
}

func TestSqrt(t *testing.T) {
	var ops Ops
	for _, f := range []float64{0, 0.25, 1, 2, 2.56, 6.5536, 100} {
		q, err := Sqrt(FromFloat(f), &ops)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(q.Float()-math.Sqrt(f)) > 2.0/65536+1e-9 {
			t.Errorf("sqrt(%g) = %g, want %g", f, q.Float(), math.Sqrt(f))
		}
	}
	if _, err := Sqrt(-One, &ops); err == nil {
		t.Error("sqrt of negative accepted")
	}
}

func TestSqrtProperty(t *testing.T) {
	f := func(raw float64) bool {
		v := math.Abs(math.Mod(raw, 1000))
		q, err := Sqrt(FromFloat(v), nil)
		if err != nil {
			return false
		}
		return math.Abs(q.Float()-math.Sqrt(v)) < 1e-3*math.Sqrt(v)+1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func refModel() (core.PowerModel, Model) {
	eff := booster.DefaultEfficiency()
	m := core.PowerModel{
		C:    45e-3,
		ESR:  capacitor.Flat(5),
		VOut: 2.55, VOff: 1.6, VHigh: 2.56,
		Eff: eff,
	}
	fm := NewModel(eff.M, eff.B, eff.Min, eff.Max, m.VOff)
	return m, fm
}

func TestVSafeRMatchesFloat(t *testing.T) {
	m, fm := refModel()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		vstart := 1.7 + rng.Float64()*0.8
		vfinal := vstart - rng.Float64()*(vstart-1.62)
		vmin := vfinal - rng.Float64()*(vfinal-1.3)
		if vmin <= 0 {
			continue
		}
		obs := core.Observation{VStart: vstart, VMin: vmin, VFinal: vfinal}
		want, err := core.VSafeR(m, obs)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := VSafeR(fm, FromFloat(vstart), FromFloat(vmin), FromFloat(vfinal))
		if err != nil {
			t.Fatal(err)
		}
		// Q16.16 rounding across ~15 operations: a couple of millivolts.
		if math.Abs(got.Float()-want.VSafe) > 3e-3 {
			t.Fatalf("fixed %g vs float %g for %+v", got.Float(), want.VSafe, obs)
		}
	}
}

func TestVSafeRValidation(t *testing.T) {
	_, fm := refModel()
	if _, _, err := VSafeR(fm, FromFloat(2.0), FromFloat(2.2), FromFloat(2.1)); err == nil {
		t.Error("invalid ordering accepted")
	}
	if _, _, err := VSafeR(fm, FromFloat(2.0), 0, FromFloat(1.9)); err == nil {
		t.Error("zero vmin accepted")
	}
}

func TestVSafeROperationBudget(t *testing.T) {
	// The whole on-device calculation fits in a few tens of integer
	// operations — the practicality claim of Section IV-D.
	_, fm := refModel()
	_, ops, err := VSafeR(fm, FromFloat(2.4), FromFloat(1.95), FromFloat(2.25))
	if err != nil {
		t.Fatal(err)
	}
	if ops.Sqrt != 1 {
		t.Errorf("sqrt count = %d, want exactly 1 (Eq. 3's design goal)", ops.Sqrt)
	}
	if ops.Div > 3 {
		t.Errorf("divide count = %d, want ≤3", ops.Div)
	}
	if ops.Total() > 40 {
		t.Errorf("total ops = %d — not MCU-practical", ops.Total())
	}
	if ops.Total() == 0 {
		t.Error("ops not counted")
	}
}

func TestModelEtaClamps(t *testing.T) {
	_, fm := refModel()
	if got := fm.eta(FromFloat(-10), nil); got != fm.EtaLo {
		t.Error("low clamp failed")
	}
	if got := fm.eta(FromFloat(10), nil); got != fm.EtaHi {
		t.Error("high clamp failed")
	}
	mid := fm.eta(FromFloat(2.0), nil).Float()
	if math.Abs(mid-(0.1875*2.0+0.42)) > 1e-3 {
		t.Errorf("eta(2.0) = %g", mid)
	}
}

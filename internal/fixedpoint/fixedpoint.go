// Package fixedpoint implements the Culpeo-R V_safe calculation in Q16.16
// integer arithmetic — the form it takes on the paper's target MCUs, which
// have no floating-point unit and for which "multiple cubic root operations
// ... are expensive" (Section IV-D). Equation 3's collapsed-efficiency form
// exists precisely so the on-device math stays in cheap multiplies, one
// divide, and one square root.
//
// The package provides the Q16.16 primitive operations (multiply, divide,
// integer-Newton square root), the fixed-point VSafeR, and operation
// counting so the cost claim is checkable: the whole calculation runs in a
// few tens of integer operations.
package fixedpoint

import (
	"errors"
	"fmt"
	"math"
)

// Q is a Q16.16 fixed-point number: value = Q / 65536.
type Q int64

// One is 1.0 in Q16.16.
const One Q = 1 << 16

// FromFloat converts a float64 to Q16.16 (round to nearest).
func FromFloat(f float64) Q {
	return Q(math.Round(f * 65536))
}

// Float converts back to float64.
func (q Q) Float() float64 { return float64(q) / 65536 }

// String renders the value.
func (q Q) String() string { return fmt.Sprintf("%.5f", q.Float()) }

// Ops counts the integer operations a calculation performed, standing in
// for MCU cycle estimates (a 16×16→32 multiply is 1, a divide is ~1 op
// here but tens of cycles on an MSP430 — the *count* is what matters).
type Ops struct {
	Mul, Div, Sqrt, AddSub int
}

// Total returns the summed count.
func (o Ops) Total() int { return o.Mul + o.Div + o.Sqrt + o.AddSub }

// Mul multiplies two Q16.16 values.
func Mul(a, b Q, ops *Ops) Q {
	if ops != nil {
		ops.Mul++
	}
	return Q((int64(a) * int64(b)) >> 16)
}

// Div divides a by b.
func Div(a, b Q, ops *Ops) (Q, error) {
	if b == 0 {
		return 0, errors.New("fixedpoint: division by zero")
	}
	if ops != nil {
		ops.Div++
	}
	return Q((int64(a) << 16) / int64(b)), nil
}

// Sqrt computes the square root of a non-negative Q16.16 value with an
// integer Newton iteration (the routine an MCU math library would use).
func Sqrt(a Q, ops *Ops) (Q, error) {
	if a < 0 {
		return 0, errors.New("fixedpoint: sqrt of negative")
	}
	if ops != nil {
		ops.Sqrt++
	}
	if a == 0 {
		return 0, nil
	}
	// sqrt(a/65536)*65536 = sqrt(a*65536) = sqrt(a<<16).
	x := int64(a) << 16
	// Initial guess: 1 << ((bitlen+1)/2).
	guess := int64(1) << ((bits(x) + 1) / 2)
	for i := 0; i < 24; i++ {
		next := (guess + x/guess) >> 1
		if next >= guess {
			break
		}
		guess = next
	}
	return Q(guess), nil
}

func bits(x int64) int {
	n := 0
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

// Model is the compile-time-constant part of the Culpeo-R calculation,
// pre-converted to fixed point: the efficiency line and the window. The
// MCU stores these five constants; everything else is measured.
type Model struct {
	M, B  Q // η(V) = M·V + B
	EtaLo Q // clamp bounds of the line
	EtaHi Q
	VOff  Q
}

// NewModel converts the float model parameters.
func NewModel(m, b, etaLo, etaHi, vOff float64) Model {
	return Model{
		M: FromFloat(m), B: FromFloat(b),
		EtaLo: FromFloat(etaLo), EtaHi: FromFloat(etaHi),
		VOff: FromFloat(vOff),
	}
}

// eta evaluates the clamped efficiency line.
func (md Model) eta(v Q, ops *Ops) Q {
	e := Mul(md.M, v, ops) + md.B
	if ops != nil {
		ops.AddSub++
	}
	if e < md.EtaLo {
		return md.EtaLo
	}
	if e > md.EtaHi {
		return md.EtaHi
	}
	return e
}

// VSafeR is the on-device Culpeo-R calculation (Equations 1c and 3) in
// Q16.16. Inputs are the three profiled voltages; the returned Ops records
// the integer-operation budget the MCU spends.
func VSafeR(md Model, vStart, vMin, vFinal Q) (vsafe Q, ops Ops, err error) {
	if vMin <= 0 || vMin > vFinal || vFinal > vStart {
		return 0, ops, errors.New("fixedpoint: invalid observation ordering")
	}
	// Equation 1c: Vδ_safe = (V_final − V_min) · (V_min·η(V_min)) / (V_off·η(V_off)).
	vdelta := vFinal - vMin
	ops.AddSub++
	num := Mul(vMin, md.eta(vMin, &ops), &ops)
	den := Mul(md.VOff, md.eta(md.VOff, &ops), &ops)
	scale, err := Div(num, den, &ops)
	if err != nil {
		return 0, ops, err
	}
	vdeltaSafe := Mul(vdelta, scale, &ops)

	// Equation 3: V_safe_E² = η(V_start)/η(V_off) · (V_start² − V_final²) + V_off².
	ratio, err := Div(md.eta(vStart, &ops), md.eta(md.VOff, &ops), &ops)
	if err != nil {
		return 0, ops, err
	}
	d2 := Mul(vStart, vStart, &ops) - Mul(vFinal, vFinal, &ops)
	ops.AddSub++
	if d2 < 0 {
		d2 = 0
	}
	e2 := Mul(ratio, d2, &ops) + Mul(md.VOff, md.VOff, &ops)
	ops.AddSub++
	vsafeE, err := Sqrt(e2, &ops)
	if err != nil {
		return 0, ops, err
	}
	ops.AddSub++
	return vsafeE + vdeltaSafe, ops, nil
}

// Package mcu models the microcontroller-side hardware Culpeo's runtime
// implementations depend on: ADCs with realistic resolution, sample rate and
// supply current, and the proposed Culpeo-µArch peripheral block (Figure 9 /
// Table II) — an 8-bit ADC, a digital comparator, and a min/max capture
// register that track the capacitor voltage without involving the CPU.
package mcu

import (
	"fmt"
	"math"
)

// ADC is a successive-approximation ADC characterized by resolution,
// reference voltage, maximum sample rate, and the supply current it draws
// while enabled.
type ADC struct {
	Name          string
	Bits          int
	VRef          float64 // full-scale input voltage
	SampleRate    float64 // max samples per second
	SupplyCurrent float64 // amperes drawn while enabled
}

// MSP430ADC12 models the on-chip 12-bit ADC of an MSP430FR-class MCU used
// by Culpeo-R-ISR: built in 130 nm, consuming over 180 µW (≈72 µA at 2.5 V)
// while enabled — 4.2 % of total MCU power in the paper's accounting.
func MSP430ADC12() ADC {
	return ADC{Name: "msp430-adc12", Bits: 12, VRef: 2.56, SampleRate: 200e3, SupplyCurrent: 72e-6}
}

// MicroArch8 models the dedicated modern 8-bit ADC of the Culpeo-µArch
// block: 140 nW at 0.01 mm² in 130 nm (≈56 nA at 2.5 V), sampled by a
// 100 kHz clock.
func MicroArch8() ADC {
	return ADC{Name: "uarch-adc8", Bits: 8, VRef: 2.56, SampleRate: 100e3, SupplyCurrent: 56e-9}
}

// Validate checks the ADC parameters.
func (a ADC) Validate() error {
	switch {
	case a.Bits < 1 || a.Bits > 24:
		return fmt.Errorf("mcu: ADC bits %d out of range", a.Bits)
	case a.VRef <= 0:
		return fmt.Errorf("mcu: non-positive VRef %g", a.VRef)
	case a.SampleRate <= 0:
		return fmt.Errorf("mcu: non-positive sample rate %g", a.SampleRate)
	case a.SupplyCurrent < 0:
		return fmt.Errorf("mcu: negative supply current %g", a.SupplyCurrent)
	}
	return nil
}

// MaxCode returns the full-scale output code.
func (a ADC) MaxCode() uint16 { return uint16(1<<a.Bits - 1) }

// LSB returns the voltage of one code step.
func (a ADC) LSB() float64 { return a.VRef / float64(a.MaxCode()) }

// Quantize converts a voltage to an output code (truncating, as a SAR
// conversion does), clamped to the code range.
func (a ADC) Quantize(v float64) uint16 {
	if v <= 0 {
		return 0
	}
	code := math.Floor(v / a.VRef * float64(a.MaxCode()))
	if code > float64(a.MaxCode()) {
		return a.MaxCode()
	}
	return uint16(code)
}

// Voltage converts a code back to volts.
func (a ADC) Voltage(code uint16) float64 {
	if code > a.MaxCode() {
		code = a.MaxCode()
	}
	return float64(code) * a.LSB()
}

// Read quantizes and reconstructs in one step — the value software sees.
func (a ADC) Read(v float64) float64 { return a.Voltage(a.Quantize(v)) }

// CaptureMode selects what the Culpeo block's comparator latches.
type CaptureMode int

const (
	// CaptureMin tracks the minimum observed code (capture register
	// initialized to 0xFF).
	CaptureMin CaptureMode = iota
	// CaptureMax tracks the maximum observed code (capture register
	// initialized to 0x00).
	CaptureMax
)

func (m CaptureMode) String() string {
	if m == CaptureMin {
		return "min"
	}
	return "max"
}

// CulpeoBlock is the memory-mapped Culpeo-µArch peripheral of Figure 9: an
// 8-bit ADC feeding a digital comparator whose output (XORed with the
// min/max select) gates the write-enable of a single capture register. The
// MCU drives it through the four commands of Table II and a sample clock.
type CulpeoBlock struct {
	ADC   ADC
	Clock float64 // sample clock in Hz (100 kHz in the prototype)

	enabled  bool
	sampling bool
	mode     CaptureMode
	capture  uint16
	lastTick float64
	ticked   bool
}

// NewCulpeoBlock builds the block with the prototype's 8-bit ADC and
// 100 kHz clock.
func NewCulpeoBlock() *CulpeoBlock {
	return &CulpeoBlock{ADC: MicroArch8(), Clock: 100e3}
}

// Configure implements Table II configure([on/off]): enable or disable the
// ADC. Disabling stops sampling; the capture register retains its value.
func (b *CulpeoBlock) Configure(on bool) {
	b.enabled = on
	if !on {
		b.sampling = false
	}
	b.ticked = false
}

// Enabled reports whether the block is powered.
func (b *CulpeoBlock) Enabled() bool { return b.enabled }

// Prepare implements Table II prepare([min/max]): set the capture register
// to 0xFF (for min) or 0x00 (for max) in preparation for sampling.
func (b *CulpeoBlock) Prepare(mode CaptureMode) {
	if mode == CaptureMin {
		b.capture = b.ADC.MaxCode()
	} else {
		b.capture = 0
	}
	b.mode = mode
}

// Sample implements Table II sample([min/max]): start repeated ADC
// sampling, storing the min or max value.
func (b *CulpeoBlock) Sample(mode CaptureMode) {
	b.mode = mode
	b.sampling = b.enabled
}

// Stop halts sampling without disabling the block.
func (b *CulpeoBlock) Stop() { b.sampling = false }

// Read implements Table II read(): read from the capture register.
func (b *CulpeoBlock) Read() uint16 { return b.capture }

// ReadVoltage returns the capture register as volts.
func (b *CulpeoBlock) ReadVoltage() float64 { return b.ADC.Voltage(b.capture) }

// SupplyCurrent returns the block's draw in its present state.
func (b *CulpeoBlock) SupplyCurrent() float64 {
	if !b.enabled {
		return 0
	}
	return b.ADC.SupplyCurrent
}

// Tick presents the capacitor voltage v at simulation time t. The block
// samples when the clock period has elapsed since the last conversion; the
// comparator-plus-XOR datapath then updates the capture register when the
// new code is more extreme in the selected direction.
func (b *CulpeoBlock) Tick(t, v float64) {
	if !b.enabled || !b.sampling || b.Clock <= 0 {
		return
	}
	// The 1e-9 slack absorbs floating-point residue in the time base so a
	// tick landing exactly one period later is not skipped.
	period := (1 - 1e-9) / b.Clock
	if b.ticked && t-b.lastTick < period {
		return
	}
	b.lastTick = t
	b.ticked = true
	code := b.ADC.Quantize(v)
	// Hardware datapath: cmp = (code > capture); write = cmp XOR (mode==min).
	cmp := code > b.capture
	min := b.mode == CaptureMin
	if cmp != min { // XOR
		b.capture = code
	}
}

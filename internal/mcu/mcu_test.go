package mcu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestADCValidate(t *testing.T) {
	for _, a := range []ADC{MSP430ADC12(), MicroArch8()} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s invalid: %v", a.Name, err)
		}
	}
	bad := []ADC{
		{Bits: 0, VRef: 2.5, SampleRate: 1e3},
		{Bits: 32, VRef: 2.5, SampleRate: 1e3},
		{Bits: 8, VRef: 0, SampleRate: 1e3},
		{Bits: 8, VRef: 2.5, SampleRate: 0},
		{Bits: 8, VRef: 2.5, SampleRate: 1e3, SupplyCurrent: -1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("bad ADC %d accepted", i)
		}
	}
}

func TestADCQuantization(t *testing.T) {
	a := MicroArch8()
	if a.MaxCode() != 255 {
		t.Fatalf("max code = %d", a.MaxCode())
	}
	if math.Abs(a.LSB()-2.56/255) > 1e-12 {
		t.Fatalf("LSB = %g", a.LSB())
	}
	// Full scale and beyond clamp.
	if a.Quantize(2.56) != 255 || a.Quantize(5.0) != 255 {
		t.Error("full-scale clamp failed")
	}
	// Negative clamps to zero.
	if a.Quantize(-1) != 0 {
		t.Error("negative clamp failed")
	}
	// Truncation: a voltage just below a code boundary stays at the lower
	// code.
	v := a.Voltage(100)
	if a.Quantize(v+a.LSB()*0.99) != 100 {
		t.Error("truncation semantics wrong")
	}
	if a.Quantize(v+a.LSB()*1.01) != 101 {
		t.Error("code increment wrong")
	}
}

func TestADCReadErrorBound(t *testing.T) {
	f := func(raw float64) bool {
		a := MSP430ADC12()
		v := math.Abs(math.Mod(raw, a.VRef))
		r := a.Read(v)
		return r <= v+1e-12 && v-r <= a.LSB()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestADCResolutionOrdering(t *testing.T) {
	// 12-bit error bound is 16× tighter than 8-bit.
	if !(MSP430ADC12().LSB() < MicroArch8().LSB()/10) {
		t.Error("12-bit LSB should be ~16× smaller")
	}
	// The µArch ADC draws ~3 orders of magnitude less current.
	if !(MicroArch8().SupplyCurrent < MSP430ADC12().SupplyCurrent/100) {
		t.Error("µArch ADC should be far lower power")
	}
}

func TestCaptureModeString(t *testing.T) {
	if CaptureMin.String() != "min" || CaptureMax.String() != "max" {
		t.Error("mode strings wrong")
	}
}

func TestCulpeoBlockMinCapture(t *testing.T) {
	b := NewCulpeoBlock()
	b.Configure(true)
	b.Prepare(CaptureMin)
	if b.Read() != b.ADC.MaxCode() {
		t.Fatal("prepare(min) must set capture to 0xFF")
	}
	b.Sample(CaptureMin)
	// Feed a dip: 2.4 → 1.9 → 2.2. Ticks spaced at the block clock.
	times := []float64{0, 10e-6, 20e-6, 30e-6}
	volts := []float64{2.4, 2.0, 1.9, 2.2}
	for i := range times {
		b.Tick(times[i], volts[i])
	}
	got := b.ReadVoltage()
	if math.Abs(got-1.9) > b.ADC.LSB() {
		t.Errorf("captured min = %g, want ≈1.9", got)
	}
}

func TestCulpeoBlockMaxCapture(t *testing.T) {
	b := NewCulpeoBlock()
	b.Configure(true)
	b.Prepare(CaptureMax)
	if b.Read() != 0 {
		t.Fatal("prepare(max) must set capture to 0x00")
	}
	b.Sample(CaptureMax)
	times := []float64{0, 10e-6, 20e-6}
	volts := []float64{1.9, 2.3, 2.1}
	for i := range times {
		b.Tick(times[i], volts[i])
	}
	if got := b.ReadVoltage(); math.Abs(got-2.3) > b.ADC.LSB() {
		t.Errorf("captured max = %g, want ≈2.3", got)
	}
}

func TestCulpeoBlockClockDecimation(t *testing.T) {
	b := NewCulpeoBlock() // 100 kHz clock = 10 µs period
	b.Configure(true)
	b.Prepare(CaptureMin)
	b.Sample(CaptureMin)
	// A 3 µs dip between clock edges must be missed.
	b.Tick(0, 2.4)
	b.Tick(3e-6, 1.7) // too soon after the last conversion
	b.Tick(10e-6, 2.4)
	if got := b.ReadVoltage(); got < 2.3 {
		t.Errorf("sub-period dip should be missed, got %g", got)
	}
}

func TestCulpeoBlockDisabled(t *testing.T) {
	b := NewCulpeoBlock()
	b.Prepare(CaptureMin)
	b.Sample(CaptureMin) // not enabled: sampling must not arm
	b.Tick(0, 1.0)
	if b.Read() != b.ADC.MaxCode() {
		t.Error("disabled block sampled anyway")
	}
	if b.SupplyCurrent() != 0 {
		t.Error("disabled block draws current")
	}
	b.Configure(true)
	if b.SupplyCurrent() != b.ADC.SupplyCurrent {
		t.Error("enabled block should draw ADC current")
	}
	if !b.Enabled() {
		t.Error("Enabled() wrong")
	}
	// Disabling stops sampling but keeps the capture value.
	b.Sample(CaptureMin)
	b.Tick(0, 2.0)
	v := b.Read()
	b.Configure(false)
	b.Tick(10e-6, 1.0)
	if b.Read() != v {
		t.Error("capture value lost or updated while disabled")
	}
}

func TestCulpeoBlockStop(t *testing.T) {
	b := NewCulpeoBlock()
	b.Configure(true)
	b.Prepare(CaptureMin)
	b.Sample(CaptureMin)
	b.Tick(0, 2.0)
	b.Stop()
	b.Tick(20e-6, 1.0)
	if got := b.ReadVoltage(); got < 1.9 {
		t.Errorf("stopped block kept sampling: %g", got)
	}
}

func TestCulpeoBlockMinMaxSwitch(t *testing.T) {
	// The profile_end sequence: read min, then track max without losing it.
	b := NewCulpeoBlock()
	b.Configure(true)
	b.Prepare(CaptureMin)
	b.Sample(CaptureMin)
	b.Tick(0, 2.4)
	b.Tick(10e-6, 1.9)
	min := b.ReadVoltage()
	b.Prepare(CaptureMax)
	b.Sample(CaptureMax)
	b.Tick(20e-6, 2.0)
	b.Tick(30e-6, 2.2)
	max := b.ReadVoltage()
	if !(min < 2.0 && max > 2.1) {
		t.Errorf("min/max switch broken: min=%g max=%g", min, max)
	}
}

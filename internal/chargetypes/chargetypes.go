// Package chargetypes implements the paper's first future-work direction
// (Section IX, "Language Constructs"): a charge-state type system for
// intermittent programs, in the spirit of Energy Types, but voltage-aware.
//
// Energy-Types-style systems associate program elements with energy-
// availability levels and enforce that high-availability elements may call
// low-availability ones, not vice versa. The paper's observation: "A
// program element could take little energy but have a high ESR drop.
// Calling this element with little energy respects the invariant but could
// cause the system to fail."
//
// This package provides both disciplines over the same program
// representation:
//
//   - EnergyDiscipline types each operation by its energy cost alone
//     (VE) — the classic, ESR-blind invariant;
//   - VoltageDiscipline types each operation by its full Culpeo V_safe
//     (energy + worst-case ESR drop).
//
// Infer computes the minimal consistent entry level for every operation
// over the call graph (a DAG; cycles are rejected), and Check validates
// declared levels. The package's tests demonstrate the paper's point: a
// program that energy-typing accepts can fail on real (simulated)
// hardware, while voltage-typing rejects it.
package chargetypes

import (
	"errors"
	"fmt"
	"sort"

	"culpeo/internal/core"
)

// Call is an invocation site inside an operation: the callee runs after
// the caller has consumed afterVE volts of its own energy budget.
type Call struct {
	Callee string
	// AfterVE is the caller's energy-voltage consumed before this call
	// (0 = the call happens first thing).
	AfterVE float64
}

// Op is one program element with its Culpeo characterization and its
// outgoing calls.
type Op struct {
	ID    string
	Est   core.Estimate
	Calls []Call
}

// Program is a set of operations forming a call DAG.
type Program struct {
	VOff  float64
	VHigh float64
	Ops   []Op
}

// Validate checks structural sanity: unique IDs, known callees,
// non-negative costs.
func (p Program) Validate() error {
	if p.VOff <= 0 || p.VHigh <= p.VOff {
		return fmt.Errorf("chargetypes: invalid window [%g, %g]", p.VOff, p.VHigh)
	}
	if len(p.Ops) == 0 {
		return errors.New("chargetypes: empty program")
	}
	ids := map[string]bool{}
	for _, op := range p.Ops {
		if op.ID == "" {
			return errors.New("chargetypes: operation without ID")
		}
		if ids[op.ID] {
			return fmt.Errorf("chargetypes: duplicate operation %s", op.ID)
		}
		ids[op.ID] = true
		if op.Est.VE < 0 || op.Est.VDelta < 0 {
			return fmt.Errorf("chargetypes: operation %s has negative costs", op.ID)
		}
	}
	for _, op := range p.Ops {
		for _, c := range op.Calls {
			if !ids[c.Callee] {
				return fmt.Errorf("chargetypes: %s calls unknown %s", op.ID, c.Callee)
			}
			if c.AfterVE < 0 || c.AfterVE > op.Est.VE+1e-12 {
				return fmt.Errorf("chargetypes: %s call to %s at AfterVE %g outside [0, %g]",
					op.ID, c.Callee, c.AfterVE, op.Est.VE)
			}
		}
	}
	return nil
}

// Discipline is a typing discipline: how an operation's own requirement is
// derived from its Culpeo estimate.
type Discipline int

const (
	// EnergyDiscipline types by energy alone: requirement = V_off + VE.
	// This is the classic Energy-Types invariant — and the one ESR breaks.
	EnergyDiscipline Discipline = iota
	// VoltageDiscipline types by the full V_safe (energy + ESR penalty).
	VoltageDiscipline
)

func (d Discipline) String() string {
	if d == EnergyDiscipline {
		return "energy"
	}
	return "voltage"
}

// ownRequirement is the operation's entry requirement under the
// discipline, ignoring calls.
func ownRequirement(d Discipline, vOff float64, op Op) float64 {
	switch d {
	case EnergyDiscipline:
		return vOff + op.Est.VE
	default:
		// The full Culpeo V_safe; fall back to its decomposition when the
		// caller populated only VE/VDelta.
		if op.Est.VSafe > 0 {
			return op.Est.VSafe
		}
		return vOff + op.Est.VE + op.Est.VDelta
	}
}

// Levels maps operation IDs to their inferred (or declared) entry levels:
// the buffer voltage that must be guaranteed when the operation starts.
type Levels map[string]float64

// Infer computes the minimal consistent level assignment under the
// discipline:
//
//	level(op) = max( own(op), max over calls (AfterVE + level(callee)) )
//
// It returns an error for cyclic call graphs (recursion needs a different
// treatment) and reports operations whose level exceeds V_high — the
// program cannot be driven even from a full buffer.
func Infer(p Program, d Discipline) (Levels, []string, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	byID := map[string]Op{}
	for _, op := range p.Ops {
		byID[op.ID] = op
	}
	levels := Levels{}
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(id string) (float64, error)
	visit = func(id string) (float64, error) {
		switch state[id] {
		case 1:
			return 0, fmt.Errorf("chargetypes: call cycle through %s", id)
		case 2:
			return levels[id], nil
		}
		state[id] = 1
		op := byID[id]
		lvl := ownRequirement(d, p.VOff, op)
		for _, c := range op.Calls {
			sub, err := visit(c.Callee)
			if err != nil {
				return 0, err
			}
			if need := c.AfterVE + sub; need > lvl {
				lvl = need
			}
		}
		state[id] = 2
		levels[id] = lvl
		return lvl, nil
	}
	for _, op := range p.Ops {
		if _, err := visit(op.ID); err != nil {
			return nil, nil, err
		}
	}
	var infeasible []string
	for id, lvl := range levels {
		if lvl > p.VHigh {
			infeasible = append(infeasible, id)
		}
	}
	sort.Strings(infeasible)
	return levels, infeasible, nil
}

// Violation describes a typing error found by Check.
type Violation struct {
	Op     string
	Callee string  // empty for an own-requirement violation
	Have   float64 // declared level
	Need   float64 // required level
}

func (v Violation) String() string {
	if v.Callee == "" {
		return fmt.Sprintf("%s: declared level %.3f below own requirement %.3f", v.Op, v.Have, v.Need)
	}
	return fmt.Sprintf("%s → %s: level %.3f at call site below callee requirement %.3f",
		v.Op, v.Callee, v.Have, v.Need)
}

// Check validates declared levels under a discipline: every operation's
// level must cover its own requirement, and at every call site the
// remaining level must cover the callee's declared level. A nil result is
// a well-typed program.
func Check(p Program, d Discipline, declared Levels) ([]Violation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for _, op := range p.Ops {
		if _, ok := declared[op.ID]; !ok {
			return nil, fmt.Errorf("chargetypes: no declared level for %s", op.ID)
		}
	}
	var out []Violation
	for _, op := range p.Ops {
		have := declared[op.ID]
		if need := ownRequirement(d, p.VOff, op); have < need-1e-12 {
			out = append(out, Violation{Op: op.ID, Have: have, Need: need})
		}
		for _, c := range op.Calls {
			remaining := have - c.AfterVE
			if need := declared[c.Callee]; remaining < need-1e-12 {
				out = append(out, Violation{Op: op.ID, Callee: c.Callee, Have: remaining, Need: need})
			}
		}
	}
	return out, nil
}

package chargetypes

import (
	"math"
	"testing"

	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
)

// radioProgram is the paper's §IX scenario: a compute element that invokes
// a radio element. The radio "could take little energy but have a high ESR
// drop".
func radioProgram(t *testing.T) (Program, load.Profile, load.Profile) {
	t.Helper()
	cfg := powersys.Capybara()
	model := core.PowerModel{
		C:    cfg.Storage.TotalCapacitance(),
		ESR:  capacitor.Flat(cfg.Storage.Main().ESR),
		VOut: cfg.Output.VOut, VOff: cfg.VOff, VHigh: cfg.VHigh,
		Eff: cfg.Output.Efficiency,
	}
	pg := profiler.PG{Model: model}
	computeLoad := load.NewUniform(2e-3, 200e-3) // lots of energy, tiny drop
	radioLoad := load.NewUniform(50e-3, 5e-3)    // tiny energy, huge drop
	computeEst, err := pg.Estimate(computeLoad)
	if err != nil {
		t.Fatal(err)
	}
	radioEst, err := pg.Estimate(radioLoad)
	if err != nil {
		t.Fatal(err)
	}
	prog := Program{
		VOff:  cfg.VOff,
		VHigh: cfg.VHigh,
		Ops: []Op{
			{
				ID:  "compute",
				Est: computeEst,
				// The radio is invoked at the end of compute's work.
				Calls: []Call{{Callee: "radio", AfterVE: computeEst.VE}},
			},
			{ID: "radio", Est: radioEst},
		},
	}
	return prog, computeLoad, radioLoad
}

func TestValidate(t *testing.T) {
	prog, _, _ := radioProgram(t)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Program{
		{VOff: 0, VHigh: 2, Ops: []Op{{ID: "x"}}},
		{VOff: 1.6, VHigh: 2.56},
		{VOff: 1.6, VHigh: 2.56, Ops: []Op{{ID: ""}}},
		{VOff: 1.6, VHigh: 2.56, Ops: []Op{{ID: "a"}, {ID: "a"}}},
		{VOff: 1.6, VHigh: 2.56, Ops: []Op{{ID: "a", Calls: []Call{{Callee: "ghost"}}}}},
		{VOff: 1.6, VHigh: 2.56, Ops: []Op{{ID: "a", Est: core.Estimate{VE: -1}}}},
		{VOff: 1.6, VHigh: 2.56, Ops: []Op{
			{ID: "a", Est: core.Estimate{VE: 0.1}, Calls: []Call{{Callee: "b", AfterVE: 0.5}}},
			{ID: "b"},
		}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad program %d accepted", i)
		}
	}
}

func TestInferCycleRejected(t *testing.T) {
	prog := Program{VOff: 1.6, VHigh: 2.56, Ops: []Op{
		{ID: "a", Calls: []Call{{Callee: "b"}}},
		{ID: "b", Calls: []Call{{Callee: "a"}}},
	}}
	if _, _, err := Infer(prog, VoltageDiscipline); err == nil {
		t.Error("cyclic program accepted")
	}
}

func TestDisciplinesDivergeOnHighDropElement(t *testing.T) {
	// The §IX claim, end to end: energy typing accepts a level for the
	// radio that voltage typing rejects — and the simulator agrees with
	// voltage typing.
	prog, _, radioLoad := radioProgram(t)

	eLevels, eInfeasible, err := Infer(prog, EnergyDiscipline)
	if err != nil {
		t.Fatal(err)
	}
	vLevels, vInfeasible, err := Infer(prog, VoltageDiscipline)
	if err != nil {
		t.Fatal(err)
	}
	if len(eInfeasible) != 0 || len(vInfeasible) != 0 {
		t.Fatalf("program should fit the buffer: %v %v", eInfeasible, vInfeasible)
	}
	// Energy typing assigns the radio a level barely above V_off (its
	// energy is tiny); voltage typing demands the ESR headroom too.
	if !(vLevels["radio"] > eLevels["radio"]+0.2) {
		t.Fatalf("voltage level (%g) should exceed energy level (%g) by the ESR drop",
			vLevels["radio"], eLevels["radio"])
	}

	// The energy-typed level is well-typed under EnergyDiscipline...
	if v, err := Check(prog, EnergyDiscipline, eLevels); err != nil || len(v) != 0 {
		t.Fatalf("energy levels should energy-typecheck: %v %v", v, err)
	}
	// ...but ill-typed under VoltageDiscipline.
	v, err := Check(prog, VoltageDiscipline, eLevels)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) == 0 {
		t.Fatal("voltage discipline accepted energy-only levels")
	}
	for _, viol := range v {
		if viol.String() == "" {
			t.Error("violation without description")
		}
	}

	// And the hardware agrees: launching the radio at its energy-typed
	// level fails; at its voltage-typed level it completes.
	h, err := harness.New(powersys.Capybara())
	if err != nil {
		t.Fatal(err)
	}
	res := h.RunAt(eLevels["radio"], radioLoad, powersys.RunOptions{SkipRebound: true})
	if res.Completed && res.VMin >= 1.6 {
		t.Error("energy-typed level unexpectedly survived on hardware")
	}
	res = h.RunAt(vLevels["radio"], radioLoad, powersys.RunOptions{SkipRebound: true})
	if !res.Completed || res.VMin < 1.6 {
		t.Error("voltage-typed level failed on hardware")
	}
}

func TestInferPropagatesThroughCalls(t *testing.T) {
	prog, _, _ := radioProgram(t)
	levels, _, err := Infer(prog, VoltageDiscipline)
	if err != nil {
		t.Fatal(err)
	}
	// compute's level must cover its energy plus the radio's level at the
	// call site.
	computeOp := prog.Ops[0]
	want := computeOp.Calls[0].AfterVE + levels["radio"]
	if levels["compute"] < want-1e-12 {
		t.Errorf("compute level %g below call-site requirement %g", levels["compute"], want)
	}
	// Inferred levels always typecheck.
	if v, err := Check(prog, VoltageDiscipline, levels); err != nil || len(v) != 0 {
		t.Fatalf("inferred levels do not typecheck: %v %v", v, err)
	}
}

func TestInferFlagsInfeasible(t *testing.T) {
	prog := Program{VOff: 1.6, VHigh: 2.56, Ops: []Op{
		{ID: "monster", Est: core.Estimate{VSafe: 3.2, VE: 0.5, VDelta: 1.1}},
	}}
	_, infeasible, err := Infer(prog, VoltageDiscipline)
	if err != nil {
		t.Fatal(err)
	}
	if len(infeasible) != 1 || infeasible[0] != "monster" {
		t.Errorf("infeasible = %v", infeasible)
	}
	// Energy discipline is oblivious: 1.6+0.5 fits.
	_, eInfeasible, err := Infer(prog, EnergyDiscipline)
	if err != nil {
		t.Fatal(err)
	}
	if len(eInfeasible) != 0 {
		t.Error("energy discipline should miss the ESR infeasibility")
	}
}

func TestCheckMissingLevel(t *testing.T) {
	prog, _, _ := radioProgram(t)
	if _, err := Check(prog, VoltageDiscipline, Levels{"compute": 2.5}); err == nil {
		t.Error("missing level accepted")
	}
}

func TestDisciplineString(t *testing.T) {
	if EnergyDiscipline.String() != "energy" || VoltageDiscipline.String() != "voltage" {
		t.Error("discipline names wrong")
	}
}

func TestOwnRequirementFallback(t *testing.T) {
	// Without a populated VSafe, the voltage discipline reconstructs the
	// requirement from the decomposition.
	op := Op{ID: "x", Est: core.Estimate{VE: 0.1, VDelta: 0.3}}
	got := ownRequirement(VoltageDiscipline, 1.6, op)
	if math.Abs(got-2.0) > 1e-12 {
		t.Errorf("fallback requirement = %g, want 2.0", got)
	}
}

package harness

import (
	"context"
	"math"
	"sync"
	"testing"

	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

// warmGrid is a sweep-shaped set of loads, in chains: within a chain
// V_safe varies monotonically and smoothly with the swept parameter, the
// structure warm-started drivers exploit. Chains are hinted independently
// — a driver never carries a bracket across load families.
func warmGrid() [][]load.Profile {
	var pulses, uniforms []load.Profile
	for _, i := range []float64{30e-3, 33e-3, 36e-3, 39e-3, 42e-3, 45e-3} {
		pulses = append(pulses, load.NewPulse(i, 1e-3))
	}
	for _, i := range []float64{20e-3, 22e-3, 24e-3, 26e-3} {
		uniforms = append(uniforms, load.NewUniform(i, 10e-3))
	}
	return [][]load.Profile{pulses, uniforms}
}

// TestWarmEquivalence: chained like a sweep driver — each point hinted by
// its predecessor's result ± a guard band — the warm-started search stays
// within the harness Tolerance of the cold-bracket result on every grid
// point, and actually engages the warm path (hits recorded on the chained
// points).
func TestWarmEquivalence(t *testing.T) {
	for _, fast := range []bool{false, true} {
		h := newHarness(t)
		h.Fast = fast
		core.ResetWarmStats()
		for _, chain := range warmGrid() {
			var prev float64
			for i, p := range chain {
				cold, err := h.GroundTruthCtx(context.Background(), p, 0)
				if err != nil {
					t.Fatal(err)
				}
				var hint *Bracket
				if i > 0 {
					hint = &Bracket{Lo: prev - WarmGuardBand, Hi: prev + WarmGuardBand}
				}
				warm, err := h.GroundTruthHinted(context.Background(), p, 0, hint)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(warm-cold) > Tolerance {
					t.Errorf("fast=%v %s: warm %.6f diverges from cold %.6f by %.2f mV",
						fast, p.Name(), warm, cold, math.Abs(warm-cold)*1e3)
				}
				prev = warm
			}
		}
		hits, _ := core.WarmStats()
		if hits == 0 {
			t.Errorf("fast=%v: no warm hits recorded across a chained grid", fast)
		}
	}
}

// TestWarmHintViolation: a hint that lies — bracket entirely below the
// true V_safe (ceiling probes unsafe), entirely above it (floor probes
// safe), or degenerate under the clamp — must fall back to the full cold
// bracket and return the cold result bit for bit, with the fallback
// counted.
func TestWarmHintViolation(t *testing.T) {
	h := newHarness(t)
	p := load.NewPulse(40e-3, 1e-3)
	cold, err := h.GroundTruthCtx(context.Background(), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.Config()
	bad := map[string]*Bracket{
		"below":      {Lo: cfg.VOff, Hi: cold - 50e-3},
		"above":      {Lo: cold + 50e-3, Hi: cfg.VHigh},
		"inverted":   {Lo: cold + 30e-3, Hi: cold - 30e-3},
		"off-window": {Lo: cfg.VHigh + 1, Hi: cfg.VHigh + 2},
	}
	for name, hint := range bad {
		core.ResetWarmStats()
		got, err := h.GroundTruthHinted(context.Background(), p, 0, hint)
		if err != nil {
			t.Fatalf("%s hint: %v", name, err)
		}
		if math.Float64bits(got) != math.Float64bits(cold) {
			t.Errorf("%s hint: fallback returned %v, cold search %v — must be identical", name, got, cold)
		}
		if hits, falls := core.WarmStats(); falls != 1 || hits != 0 {
			t.Errorf("%s hint: warm stats hits=%d fallbacks=%d, want 0/1", name, hits, falls)
		}
	}
}

// TestWarmBatchMatchesScalar: hinted batched searches replicate the
// hinted scalar search probe for probe, so their results are bit-identical
// on the exact path — including searches whose hints are violated
// mid-batch while others verify.
func TestWarmBatchMatchesScalar(t *testing.T) {
	h := newHarness(t)
	var grid []load.Profile
	for _, chain := range warmGrid() {
		grid = append(grid, chain...)
	}
	colds := make([]float64, len(grid))
	for i, p := range grid {
		var err error
		colds[i], err = h.GroundTruthCtx(context.Background(), p, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	reqs := make([]GroundTruthReq, len(grid))
	for i, p := range grid {
		reqs[i] = GroundTruthReq{Task: p}
		switch i % 3 {
		case 0: // honest neighbor-style hint
			reqs[i].Hint = &Bracket{Lo: colds[i] - 40e-3, Hi: colds[i] + 40e-3}
		case 1: // violated hint: bracket entirely below the truth
			reqs[i].Hint = &Bracket{Lo: h.Config().VOff, Hi: colds[i] - 50e-3}
		case 2: // no hint
		}
	}
	got, err := h.GroundTruthBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		want, err := h.GroundTruthHinted(context.Background(), req.Task, req.Harvest, req.Hint)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(want) != math.Float64bits(got[i]) {
			t.Errorf("%s: batch hinted V_safe %v != scalar hinted %v", req.Task.Name(), got[i], want)
		}
	}
}

var (
	warmFuzzOnce sync.Once
	warmFuzzH    *Harness
	warmFuzzCold float64
)

// FuzzWarmBracket throws arbitrary brackets — honest, lying, inverted,
// NaN, infinite, sub-window, astronomically wide — at the hinted search
// and requires the result to stay within Tolerance of the cold-bracket
// truth. Verification-then-fallback is what makes this hold: a hint is
// only ever trusted after its endpoints probe correctly, so no bracket,
// however hostile, can move the answer.
func FuzzWarmBracket(f *testing.F) {
	f.Add(1.8, 2.2)
	f.Add(1.6, 1.7)       // entirely below the truth
	f.Add(2.4, 2.56)      // entirely above
	f.Add(2.2, 1.8)       // inverted
	f.Add(0.0, 0.0)       // empty
	f.Add(-5.0, 5.0)      // wildly wide
	f.Add(math.NaN(), 2.0)
	f.Add(1.9, math.Inf(1))
	f.Fuzz(func(t *testing.T, lo, hi float64) {
		warmFuzzOnce.Do(func() {
			h, err := New(powersys.Capybara())
			if err != nil {
				panic(err)
			}
			h.Fast = true // cheap probes: the fuzz loop runs many searches
			warmFuzzH = h
			warmFuzzCold, err = h.GroundTruthCtx(context.Background(), warmFuzzTask(), 0)
			if err != nil {
				panic(err)
			}
		})
		_, fallsBefore := core.WarmStats()
		got, err := warmFuzzH.GroundTruthHinted(context.Background(), warmFuzzTask(), 0, &Bracket{Lo: lo, Hi: hi})
		if err != nil {
			t.Fatalf("hint (%g, %g): %v", lo, hi, err)
		}
		if math.Abs(got-warmFuzzCold) > Tolerance {
			t.Fatalf("hint (%g, %g): V_safe %.6f diverges from cold %.6f by %.2f mV",
				lo, hi, got, warmFuzzCold, math.Abs(got-warmFuzzCold)*1e3)
		}
		// A hint that misses the truth entirely must engage the fallback,
		// not silently bisect a wrong bracket.
		if _, falls := core.WarmStats(); hi < warmFuzzCold-25e-3 && hi > lo && falls == fallsBefore {
			t.Fatalf("hint (%g, %g) excludes the truth %.6f but no fallback was recorded", lo, hi, warmFuzzCold)
		}
	})
}

func warmFuzzTask() load.Profile { return load.NewPulse(40e-3, 1e-3) }

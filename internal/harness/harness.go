// Package harness reproduces the paper's hardware test harness
// (Section VI-A): it charges the supercapacitor bank to V_high, disables the
// charging circuit, discharges the capacitor to a chosen V_start, applies a
// load profile, and observes whether the task completes without power
// failure. Its brute-force binary search produces the "known-good" V_safe
// values every estimator is judged against.
package harness

import (
	"context"
	"errors"
	"fmt"
	"math"

	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

// Tolerance is the paper's search tolerance: the harness finds a V_start at
// which the minimum voltage during the run lands within 5 mV of V_off.
const Tolerance = 5e-3

// WarmGuardBand is the default half-width of the bracket hint a sweep
// driver builds around its previous grid point's V_safe. It must cover the
// V_safe delta between adjacent grid points (tens of millivolts on the
// paper's Figure 6/10 grids); when it doesn't, the endpoint verification
// in GroundTruthHinted catches the violation and the point pays a cold
// search — a wrong guard band costs probes, never correctness.
const WarmGuardBand = 75e-3

// Harness drives repeated isolated runs of a power-system configuration.
// Each run clones the configured storage network, so trials are independent.
type Harness struct {
	cfg powersys.Config

	// Fast requests the analytic segment-advance stepper for every run the
	// harness performs (see powersys.RunOptions.Fast). Ground-truth searches
	// stay within the fast path's sub-millivolt envelope of the exact
	// stepper, well inside the harness's 5 mV Tolerance.
	Fast bool
}

// New builds a harness around a template configuration. The configuration's
// storage network is treated as a prototype and never mutated.
func New(cfg powersys.Config) (*Harness, error) {
	if cfg.Storage == nil {
		return nil, errors.New("harness: config needs storage")
	}
	// Validate once by constructing a throwaway system.
	if _, err := powersys.New(cloneCfg(cfg)); err != nil {
		return nil, err
	}
	return &Harness{cfg: cfg}, nil
}

// Config returns the template configuration.
func (h *Harness) Config() powersys.Config { return h.cfg }

func cloneCfg(cfg powersys.Config) powersys.Config {
	out := cfg
	out.Storage = cfg.Storage.Clone()
	return out
}

// NewSystem returns a fresh, isolated system charged to V_high with the
// output booster armed.
func (h *Harness) NewSystem() *powersys.System {
	sys, err := powersys.New(cloneCfg(h.cfg))
	if err != nil {
		panic(err) // unreachable: validated in New
	}
	if err := sys.ChargeTo(h.cfg.VHigh); err != nil {
		panic(err)
	}
	return sys
}

// RunAt charges to V_high, discharges to vStart, disables incoming power
// (the worst case: the V_safe value must ensure the task completes on stored
// energy alone), force-enables delivery, and applies the profile.
func (h *Harness) RunAt(vStart float64, p load.Profile, opt powersys.RunOptions) powersys.RunResult {
	sys := h.NewSystem()
	if err := sys.DischargeTo(vStart); err != nil {
		panic(err)
	}
	sys.Monitor().Force(true)
	opt.HarvestPower = 0
	opt.Fast = opt.Fast || h.Fast
	return sys.Run(p, opt)
}

// RunAtWithSystem behaves like RunAt but also returns the system so callers
// can inspect post-run state.
func (h *Harness) RunAtWithSystem(vStart float64, p load.Profile, opt powersys.RunOptions) (powersys.RunResult, *powersys.System) {
	sys := h.NewSystem()
	if err := sys.DischargeTo(vStart); err != nil {
		panic(err)
	}
	sys.Monitor().Force(true)
	opt.HarvestPower = 0
	opt.Fast = opt.Fast || h.Fast
	return sys.Run(p, opt), sys
}

// GroundTruth finds the profile's true V_safe by binary search: the lowest
// starting voltage from which the run completes with V_min within Tolerance
// above V_off. It returns an error when even V_high cannot complete the
// profile (the task is infeasible on this buffer — the situation Culpeo-PG
// warns programmers about at compile time). Incoming power is disabled
// (the worst case); use GroundTruthWith for a harvest-subsidized truth.
func (h *Harness) GroundTruth(p load.Profile) (float64, error) {
	return h.GroundTruthCtx(context.Background(), p, 0)
}

// GroundTruthWith finds the true V_safe with constant harvested power
// flowing during the run — the operating condition Culpeo-R profiles under
// when schedulers re-profile per power level (Section V-B).
func (h *Harness) GroundTruthWith(p load.Profile, harvest float64) (float64, error) {
	return h.GroundTruthCtx(context.Background(), p, harvest)
}

// GroundTruthCtx is GroundTruthWith with cancellation: the binary search
// checks ctx between trials and threads it into every run (see
// powersys.RunOptions.Ctx), so a CLI interrupt or a serving deadline stops
// a long known-good search mid-simulation instead of finishing all ~60
// iterations.
func (h *Harness) GroundTruthCtx(ctx context.Context, p load.Profile, harvest float64) (float64, error) {
	return h.GroundTruthHinted(ctx, p, harvest, nil)
}

// Bracket is a voltage interval [Lo, Hi] a caller believes contains a
// profile's true V_safe — typically the previous grid point's result ± a
// guard band in a sweep along an axis V_safe varies monotonically with
// (capacitance, pulse current, harvest level). It is a hint, never an
// oracle: GroundTruthHinted verifies both endpoints before trusting it.
type Bracket struct {
	Lo, Hi float64
}

// GroundTruthHinted is GroundTruthCtx warm-started by a bracket hint. The
// hint is verified before it is trusted — Hi must probe safe and Lo must
// probe unsafe, the invariant the bisection needs — and on any violation
// (or a degenerate hint) the search falls back to the full [V_off, V_high]
// bracket, so correctness never depends on the hint's quality: a wrong
// hint costs up to two wasted probes, not a wrong answer. A verified hint
// cuts the search from ~60 probes over the full window to the handful a
// guard-band-sized bracket needs. Process-wide counters record the
// outcome (core.RecordWarmHit / core.RecordWarmFallback → /metrics).
// A nil hint is exactly the cold search.
func (h *Harness) GroundTruthHinted(ctx context.Context, p load.Profile, harvest float64, hint *Bracket) (float64, error) {
	vOff, vHigh := h.cfg.VOff, h.cfg.VHigh

	safe := func(v float64) (bool, float64) {
		sys := h.NewSystem()
		if err := sys.DischargeTo(v); err != nil {
			panic(err)
		}
		sys.Monitor().Force(true)
		res := sys.Run(p, powersys.RunOptions{SkipRebound: true, HarvestPower: harvest, Fast: h.Fast, Ctx: ctx})
		return res.Completed && res.VMin >= vOff, res.VMin
	}

	if err := ctx.Err(); err != nil {
		return 0, err
	}

	if hint != nil {
		// Clamp to the physical window; a hint that collapses under the
		// clamp carries no information and falls straight back.
		lo, hi := math.Max(hint.Lo, vOff), math.Min(hint.Hi, vHigh)
		if lo < hi {
			okHi, vminHi := safe(hi)
			// Re-check after every verification probe: a cancellation that
			// lands mid-run aborts the trial, which must read as neither a
			// verdict nor a hint violation.
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			if okHi {
				if vminHi-vOff <= Tolerance {
					// The hinted ceiling already sits at the search's own
					// termination criterion (safe, V_min within Tolerance
					// of V_off) — the same condition that ends the cold
					// bisection ends the warm one here.
					core.RecordWarmHit()
					return hi, nil
				}
				okLo, _ := safe(lo)
				if err := ctx.Err(); err != nil {
					return 0, err
				}
				switch {
				case !okLo:
					// Verified: hi safe, lo unsafe — the bisection
					// invariant holds on the narrow bracket.
					core.RecordWarmHit()
					return bisectSearch(ctx, safe, lo, hi, vOff)
				case lo == vOff:
					// The degenerate case the cold search recognizes:
					// even starting at V_off survives.
					core.RecordWarmHit()
					return vOff, nil
				}
			}
		}
		core.RecordWarmFallback()
	}

	okHigh, _ := safe(vHigh)
	// Re-check before concluding: a cancellation that lands mid-run aborts
	// the trial, which must not read as "infeasible".
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if !okHigh {
		return 0, fmt.Errorf("harness: %s infeasible even from V_high=%g", p.Name(), vHigh)
	}
	okLow, _ := safe(vOff)
	if okLow {
		// Degenerate: even starting at V_off survives (zero-load profile).
		return vOff, nil
	}
	return bisectSearch(ctx, safe, vOff, vHigh, vOff)
}

// bisectSearch runs the paper's bisection over a verified bracket: hi
// probes safe, lo probes unsafe (or they are the full window, whose
// endpoints the caller just established). The loop body — midpoint choice,
// Tolerance break, 0.1 mV bracket collapse, 60-round cap — is shared by
// the cold and warm paths, so warm-starting changes only the starting
// bracket, never the search semantics.
func bisectSearch(ctx context.Context, safe func(float64) (bool, float64), lo, hi, vOff float64) (float64, error) {
	for i := 0; i < 60; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		mid := 0.5 * (lo + hi)
		ok, vmin := safe(mid)
		if ok {
			hi = mid
			if vmin-vOff <= Tolerance {
				break
			}
		} else {
			lo = mid
		}
		if hi-lo < 0.1e-3 {
			break
		}
	}
	return hi, nil
}

// ValidateEstimate classifies an estimator's V_safe against the ground
// truth following the paper's analysis: estimates more than 20 mV below the
// true V_safe reliably cause failures; estimates within 20 mV below cause
// failures some of the time; estimates at or above are safe.
type Verdict int

const (
	// Safe: estimate ≥ ground truth.
	Safe Verdict = iota
	// Marginal: within 20 mV below ground truth — fails some of the time.
	Marginal
	// Unsafe: more than 20 mV below ground truth — reliably fails.
	Unsafe
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "safe"
	case Marginal:
		return "marginal"
	case Unsafe:
		return "unsafe"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Classify applies the 20 mV rule.
func Classify(estimate, groundTruth float64) Verdict {
	switch {
	case estimate >= groundTruth:
		return Safe
	case groundTruth-estimate <= 20e-3:
		return Marginal
	default:
		return Unsafe
	}
}

// ErrorPercent expresses estimate − groundTruth as a percentage of the
// operating range (V_high − V_off), the y-axis of Figures 6 and 10.
// Positive = conservative (safe); negative = unsafe.
func (h *Harness) ErrorPercent(estimate, groundTruth float64) float64 {
	r := h.cfg.VHigh - h.cfg.VOff
	if r <= 0 {
		return math.NaN()
	}
	return (estimate - groundTruth) / r * 100
}

package harness

import (
	"context"
	"math"
	"strings"
	"testing"

	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

func batchTasks() []GroundTruthReq {
	var reqs []GroundTruthReq
	for _, p := range []load.Profile{
		load.LoRa(), load.NewUniform(25e-3, 10e-3), load.NewPulse(50e-3, 1e-3),
		load.Gesture(), load.BLERadio(),
	} {
		reqs = append(reqs, GroundTruthReq{Task: p})
	}
	// A harvest-subsidized search mixed into the same batch.
	reqs = append(reqs, GroundTruthReq{Task: load.NewPulse(25e-3, 10e-3), Harvest: 5e-3})
	return reqs
}

// TestGroundTruthBatchMatchesScalar: the lockstep batched search must
// reproduce the sequential scalar search bit for bit — same probes, same
// verdicts, same V_safe — on both the exact and the fast stepper.
func TestGroundTruthBatchMatchesScalar(t *testing.T) {
	reqs := batchTasks()
	for _, fast := range []bool{false, true} {
		h := newHarness(t)
		h.Fast = fast
		got, err := h.GroundTruthBatch(context.Background(), reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i, req := range reqs {
			want, err := h.GroundTruthCtx(context.Background(), req.Task, req.Harvest)
			if err != nil {
				t.Fatal(err)
			}
			if fast {
				// The fast batch lane is bounded, not bit-equal, to the
				// scalar fast path (different segmentation of the same
				// schedule); the searches must still land within the
				// harness tolerance of each other.
				if math.Abs(want-got[i]) > Tolerance {
					t.Errorf("fast %s: batch V_safe %.6f, scalar %.6f", req.Task.Name(), got[i], want)
				}
				continue
			}
			if math.Float64bits(want) != math.Float64bits(got[i]) {
				t.Errorf("%s: batch V_safe %v (%#x) != scalar %v (%#x)",
					req.Task.Name(), got[i], math.Float64bits(got[i]), want, math.Float64bits(want))
			}
		}
	}
}

// TestGroundTruthBatchInfeasible: an infeasible task must surface the same
// error the scalar search reports.
func TestGroundTruthBatchInfeasible(t *testing.T) {
	h := newHarness(t)
	reqs := []GroundTruthReq{
		{Task: load.NewUniform(25e-3, 10e-3)},
		{Task: load.NewUniform(0.8, 1.0)}, // far beyond the bank's deliverable power
	}
	_, err := h.GroundTruthBatch(context.Background(), reqs)
	if err == nil || !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("want infeasibility error, got %v", err)
	}
}

// TestGroundTruthBatchCanceled: cancellation aborts the lockstep search
// with the context's error.
func TestGroundTruthBatchCanceled(t *testing.T) {
	h := newHarness(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := h.GroundTruthBatch(ctx, batchTasks())
	if err == nil {
		t.Fatal("canceled batch search returned nil error")
	}
}

// TestGroundTruthBatchEmpty: no requests, no work, no error.
func TestGroundTruthBatchEmpty(t *testing.T) {
	h := newHarness(t)
	out, err := h.GroundTruthBatch(context.Background(), nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
	if _, err := h.GroundTruthBatch(context.Background(), []GroundTruthReq{{}}); err == nil {
		t.Fatal("nil task accepted")
	}
}

// BenchmarkGroundTruthBatch measures the batched search against the
// scalar loop it replaces (see internal/benchrun for the recorded pair).
func BenchmarkGroundTruthBatch(b *testing.B) {
	h, err := New(powersys.Capybara())
	if err != nil {
		b.Fatal(err)
	}
	h.Fast = true
	reqs := batchTasks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.GroundTruthBatch(context.Background(), reqs); err != nil {
			b.Fatal(err)
		}
	}
}

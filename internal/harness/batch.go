// Batched ground-truth search: GroundTruthBatch runs the binary searches
// of many load profiles in lockstep, one powersys batch lane per unsettled
// search per round. Each search's probe sequence — and therefore its
// result — is identical to the scalar GroundTruthCtx's, because a search's
// next probe depends only on its own history and every batch lane is
// byte-identical to the scalar run it replaces (TestBatchEquivalence).
// The win is shared work: each profile's tick schedule is compiled once
// and reused by all ~60 bisection probes, and the probes of one round
// advance through one SoA lockstep pass instead of ~K isolated scans.
package harness

import (
	"context"
	"fmt"
	"math"
	"reflect"

	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

// GroundTruthReq is one batched ground-truth query: a task profile and the
// constant harvested power flowing during its probe runs. A non-nil Hint
// warm-starts the search exactly as GroundTruthHinted does in the scalar
// path: both endpoints are verified by probing before the hint is
// trusted, and any violation falls back to the full cold protocol.
type GroundTruthReq struct {
	Task    load.Profile
	Harvest float64
	Hint    *Bracket
}

// Search states of one batched binary search, mirroring GroundTruthHinted's
// control flow exactly: optional hint verification (ceiling probe, then
// floor probe), falling back to the cold protocol — feasibility probe at
// V_high, degenerate probe at V_off — then up to 60 bisection rounds.
const (
	gtWarmHi = iota
	gtWarmLo
	gtHigh
	gtLow
	gtBisect
	gtDone
)

type gtSearch struct {
	state    int
	probe    float64 // voltage of the in-flight probe
	lo, hi   float64
	iter     int // bisection probes completed
	out      float64
	err      error
	compiled *powersys.CompiledProfile
}

// GroundTruthBatch finds the true V_safe of every request, byte-identical
// to calling GroundTruthCtx per request in order (same probes, same
// results), but with all searches advancing in lockstep through the batch
// stepper — h.Fast selects the fast batch lane, within the same
// sub-millivolt envelope as the scalar fast path. The first failing
// request (lowest index) aborts the batch with its error; ctx cancellation
// aborts with the context's error.
func (h *Harness) GroundTruthBatch(ctx context.Context, reqs []GroundTruthReq) ([]float64, error) {
	out := make([]float64, len(reqs))
	if len(reqs) == 0 {
		return out, ctx.Err()
	}
	vOff, vHigh := h.cfg.VOff, h.cfg.VHigh
	dt := h.cfg.DT
	if dt <= 0 {
		dt = powersys.DefaultDT
	}

	// Compile each distinct task once; one schedule serves every probe of
	// every round. Only comparable profile values can be deduplicated.
	shared := make(map[load.Profile]*powersys.CompiledProfile)
	searches := make([]*gtSearch, len(reqs))
	for i, req := range reqs {
		if req.Task == nil {
			return out, fmt.Errorf("harness: batch request %d has no task", i)
		}
		var cp *powersys.CompiledProfile
		if reflect.TypeOf(req.Task).Comparable() {
			if c, ok := shared[req.Task]; ok {
				cp = c
			} else {
				cp = powersys.CompileProfile(req.Task, dt)
				shared[req.Task] = cp
			}
		} else {
			cp = powersys.CompileProfile(req.Task, dt)
		}
		s := &gtSearch{state: gtHigh, probe: vHigh, compiled: cp}
		if req.Hint != nil {
			if lo, hi := math.Max(req.Hint.Lo, vOff), math.Min(req.Hint.Hi, vHigh); lo < hi {
				s.lo, s.hi = lo, hi
				s.state, s.probe = gtWarmHi, hi
			} else {
				// Degenerate under the clamp: no information, cold start.
				core.RecordWarmFallback()
			}
		}
		searches[i] = s
	}

	scens := make([]powersys.BatchScenario, 0, len(reqs))
	lanes := make([]int, 0, len(reqs)) // lane -> request index
	for {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		scens = scens[:0]
		lanes = lanes[:0]
		for i, s := range searches {
			if s.state == gtDone {
				continue
			}
			scens = append(scens, powersys.BatchScenario{
				Compiled: s.compiled,
				VStart:   s.probe,
				Harvest:  reqs[i].Harvest,
			})
			lanes = append(lanes, i)
		}
		if len(scens) == 0 {
			break
		}
		bs, err := powersys.NewBatch(h.cfg, scens)
		if err != nil {
			return out, fmt.Errorf("harness: batch: %w", err)
		}
		results := bs.Run(powersys.BatchOptions{SkipRebound: true, Fast: h.Fast, Ctx: ctx})
		// Re-check before consuming the round: a cancellation that lands
		// mid-run aborts the probes, which must not read as verdicts.
		if err := ctx.Err(); err != nil {
			return out, err
		}
		for l, i := range lanes {
			s := searches[i]
			res := results[l]
			ok := res.Completed && res.VMin >= vOff
			s.advance(ok, res.VMin, vOff, vHigh, reqs[i].Task)
		}
		for _, s := range searches {
			if s.state == gtDone && s.err != nil {
				return out, s.err
			}
		}
	}

	for i, s := range searches {
		out[i] = s.out
	}
	return out, nil
}

// advance consumes one probe verdict, replicating GroundTruthHinted's
// branch structure (including its break conditions) exactly.
func (s *gtSearch) advance(ok bool, vmin, vOff, vHigh float64, task load.Profile) {
	switch s.state {
	case gtWarmHi:
		if ok {
			if vmin-vOff <= Tolerance {
				// The hinted ceiling already meets the search's own
				// termination criterion.
				core.RecordWarmHit()
				s.out = s.hi
				s.state = gtDone
				return
			}
			s.state = gtWarmLo
			s.probe = s.lo
			return
		}
		// Hinted ceiling probed unsafe: the hint lied, fall back cold.
		core.RecordWarmFallback()
		s.state = gtHigh
		s.probe = vHigh
	case gtWarmLo:
		if !ok {
			// Verified: hi safe, lo unsafe — bisect the narrow bracket.
			core.RecordWarmHit()
			s.iter = 0
			s.state = gtBisect
			s.probe = 0.5 * (s.lo + s.hi)
			return
		}
		if s.lo == vOff {
			// Degenerate: even starting at V_off survives.
			core.RecordWarmHit()
			s.out = vOff
			s.state = gtDone
			return
		}
		core.RecordWarmFallback()
		s.state = gtHigh
		s.probe = vHigh
	case gtHigh:
		if !ok {
			s.err = fmt.Errorf("harness: %s infeasible even from V_high=%g", task.Name(), vHigh)
			s.state = gtDone
			return
		}
		s.state = gtLow
		s.probe = vOff
	case gtLow:
		if ok {
			// Degenerate: even starting at V_off survives.
			s.out = vOff
			s.state = gtDone
			return
		}
		s.lo, s.hi = vOff, vHigh
		s.iter = 0
		s.state = gtBisect
		s.probe = 0.5 * (s.lo + s.hi)
	case gtBisect:
		mid := s.probe
		if ok {
			s.hi = mid
			if vmin-vOff <= Tolerance {
				s.finishBisect()
				return
			}
		} else {
			s.lo = mid
		}
		if s.hi-s.lo < 0.1e-3 {
			s.finishBisect()
			return
		}
		s.iter++
		if s.iter >= 60 {
			s.finishBisect()
			return
		}
		s.probe = 0.5 * (s.lo + s.hi)
	}
}

func (s *gtSearch) finishBisect() {
	s.out = s.hi
	s.state = gtDone
}

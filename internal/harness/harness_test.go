package harness

import (
	"math"
	"testing"

	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

func newHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := New(powersys.Capybara())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewValidates(t *testing.T) {
	cfg := powersys.Capybara()
	cfg.Storage = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil storage accepted")
	}
	cfg = powersys.Capybara()
	cfg.VOff = 3.0
	if _, err := New(cfg); err == nil {
		t.Error("invalid window accepted")
	}
}

func TestRunsAreIsolated(t *testing.T) {
	h := newHarness(t)
	p := load.LoRa()
	a := h.RunAt(2.4, p, powersys.RunOptions{SkipRebound: true})
	b := h.RunAt(2.4, p, powersys.RunOptions{SkipRebound: true})
	if a.VMin != b.VMin || a.EnergyUsed != b.EnergyUsed {
		t.Error("identical trials diverged — state leaked between runs")
	}
	// Template storage untouched.
	if got := h.Config().Storage.Main().Voltage; got != 2.56 {
		t.Errorf("template storage mutated: %g", got)
	}
}

func TestRunAtStartsWhereAsked(t *testing.T) {
	h := newHarness(t)
	res := h.RunAt(2.1, load.NewUniform(5e-3, 1e-3), powersys.RunOptions{SkipRebound: true})
	if math.Abs(res.VStart-2.1) > 1e-9 {
		t.Errorf("VStart = %g, want 2.1", res.VStart)
	}
}

func TestGroundTruthLoRa(t *testing.T) {
	h := newHarness(t)
	vsafe, err := h.GroundTruth(load.LoRa())
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.Config()
	if vsafe <= cfg.VOff || vsafe >= cfg.VHigh {
		t.Fatalf("vsafe = %g outside the operating window", vsafe)
	}
	// Starting at the ground truth completes with V_min just above V_off.
	res := h.RunAt(vsafe, load.LoRa(), powersys.RunOptions{SkipRebound: true})
	if !res.Completed {
		t.Fatal("run at ground-truth vsafe failed")
	}
	if res.VMin < cfg.VOff {
		t.Errorf("VMin %g below VOff", res.VMin)
	}
	if res.VMin > cfg.VOff+3*Tolerance {
		t.Errorf("VMin %g too conservative for a ground-truth search", res.VMin)
	}
	// Starting 25 mV below must fail (the paper's 20 mV reliability band).
	res = h.RunAt(vsafe-25e-3, load.LoRa(), powersys.RunOptions{SkipRebound: true})
	if res.Completed && res.VMin >= cfg.VOff {
		t.Error("run well below ground truth should fail")
	}
}

func TestGroundTruthOrdering(t *testing.T) {
	// Heavier loads need higher safe voltages.
	h := newHarness(t)
	light, err := h.GroundTruth(load.NewUniform(5e-3, 10e-3))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := h.GroundTruth(load.NewUniform(50e-3, 10e-3))
	if err != nil {
		t.Fatal(err)
	}
	if !(heavy > light) {
		t.Errorf("50 mA vsafe (%g) should exceed 5 mA vsafe (%g)", heavy, light)
	}
	// Longer pulses need more than shorter at the same current.
	short, _ := h.GroundTruth(load.NewUniform(25e-3, 1e-3))
	long, _ := h.GroundTruth(load.NewUniform(25e-3, 100e-3))
	if !(long > short) {
		t.Errorf("100 ms vsafe (%g) should exceed 1 ms vsafe (%g)", long, short)
	}
}

func TestGroundTruthInfeasible(t *testing.T) {
	h := newHarness(t)
	// An absurd load no buffer state can serve.
	if _, err := h.GroundTruth(load.NewUniform(5, 100e-3)); err == nil {
		t.Error("infeasible profile should error")
	}
}

func TestGroundTruthZeroLoad(t *testing.T) {
	h := newHarness(t)
	v, err := h.GroundTruth(load.Uniform{ID: "nil", ILoad: 0, TPulse: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	// Leakage makes exactly-V_off marginal, so the search may settle a few
	// millivolts above; anything beyond 10 mV would be wrong for a no-op.
	if v < h.Config().VOff || v > h.Config().VOff+10e-3 {
		t.Errorf("zero load vsafe = %g, want ≈VOff", v)
	}
}

func TestClassify(t *testing.T) {
	if Classify(2.10, 2.10) != Safe {
		t.Error("equal should be safe")
	}
	if Classify(2.15, 2.10) != Safe {
		t.Error("above should be safe")
	}
	if Classify(2.09, 2.10) != Marginal {
		t.Error("10 mV below should be marginal")
	}
	if Classify(2.05, 2.10) != Unsafe {
		t.Error("50 mV below should be unsafe")
	}
	for v, s := range map[Verdict]string{Safe: "safe", Marginal: "marginal", Unsafe: "unsafe"} {
		if v.String() != s {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
	if Verdict(9).String() == "" {
		t.Error("unknown verdict should render")
	}
}

func TestErrorPercent(t *testing.T) {
	h := newHarness(t)
	// Operating range 0.96 V: a +96 mV error is +10 %.
	got := h.ErrorPercent(2.196, 2.100)
	if math.Abs(got-10) > 1e-6 {
		t.Errorf("error percent = %g, want 10", got)
	}
	if got := h.ErrorPercent(2.0, 2.1); got >= 0 {
		t.Error("unsafe estimate should be negative")
	}
}

func TestGroundTruthWithHarvest(t *testing.T) {
	// Harvest subsidizes long tasks: the true V_safe with incoming power is
	// lower than the dark-condition truth.
	h := newHarness(t)
	task := load.ComputeAccel() // 1.1 s — plenty of time to harvest
	dark, err := h.GroundTruth(task)
	if err != nil {
		t.Fatal(err)
	}
	lit, err := h.GroundTruthWith(task, 10e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !(lit < dark-5e-3) {
		t.Errorf("harvested truth (%g) should sit below dark truth (%g)", lit, dark)
	}
	// Short pulses barely benefit.
	pulse := load.NewUniform(25e-3, 1e-3)
	darkP, _ := h.GroundTruth(pulse)
	litP, _ := h.GroundTruthWith(pulse, 10e-3)
	if math.Abs(darkP-litP) > 10e-3 {
		t.Errorf("1 ms pulse should be harvest-insensitive: %g vs %g", darkP, litP)
	}
}

package baseline

import (
	"math"
	"testing"

	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

func newHarness(t *testing.T) *harness.Harness {
	t.Helper()
	h, err := harness.New(powersys.Capybara())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		EnergyDirect:   "Energy-Direct",
		EnergyV:        "Energy-V",
		CatnapMeasured: "Catnap-Measured",
		CatnapSlow:     "Catnap-Slow",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() != "baseline(?)" {
		t.Error("unknown kind should render placeholder")
	}
	if len(Kinds()) != 4 {
		t.Error("Kinds() incomplete")
	}
}

func TestAllBaselinesProduceFiniteEstimates(t *testing.T) {
	h := newHarness(t)
	task := load.NewPulse(25e-3, 10e-3)
	for _, k := range Kinds() {
		v := Estimate(k, h, task)
		if math.IsNaN(v) || v < h.Config().VOff || v > h.Config().VHigh+0.5 {
			t.Errorf("%s estimate = %g implausible", k, v)
		}
	}
}

func TestEnergyBaselinesAreUnsafeOnPulseLoads(t *testing.T) {
	// The paper's headline negative result (Figure 6): for pulse + compute
	// loads, energy-only estimators predict starting voltages that fail.
	h := newHarness(t)
	for _, task := range []load.Profile{
		load.NewPulse(25e-3, 10e-3),
		load.NewPulse(50e-3, 10e-3),
	} {
		gt, err := h.GroundTruth(task)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []Kind{EnergyDirect, EnergyV} {
			est := Estimate(k, h, task)
			if harness.Classify(est, gt) != harness.Unsafe {
				t.Errorf("%s on %s: estimate %g vs truth %g — expected unsafe",
					k, task.Name(), est, gt)
			}
		}
	}
}

func TestCatnapMeasuredNearTruthOnUniform(t *testing.T) {
	// For a uniform load with no tail, the task ends at the bottom of the
	// ESR drop, so CatNap's quick measurement accidentally captures (part
	// of) the drop as consumed energy — Figure 10 shows small errors for
	// uniform loads versus the gross misses on pulse+tail loads. The
	// residual error comes from profiling at V_high, where the drop is
	// smaller than it will be near V_off.
	h := newHarness(t)
	uniform := load.NewUniform(50e-3, 10e-3)
	pulse := load.NewPulse(50e-3, 10e-3)
	gtU, err := h.GroundTruth(uniform)
	if err != nil {
		t.Fatal(err)
	}
	gtP, err := h.GroundTruth(pulse)
	if err != nil {
		t.Fatal(err)
	}
	errU := math.Abs(Estimate(CatnapMeasured, h, uniform) - gtU)
	errP := math.Abs(Estimate(CatnapMeasured, h, pulse) - gtP)
	if errU > 0.15 {
		t.Errorf("Catnap-Measured uniform error %g V too large", errU)
	}
	if !(errP > 2*errU) {
		t.Errorf("pulse+tail error (%g) should dwarf uniform error (%g)", errP, errU)
	}
}

func TestCatnapMeasuredUnsafeOnPulseTail(t *testing.T) {
	// With a 100 ms low-power tail the voltage rebounds before the task
	// ends, so the quick measurement misses the pulse's ESR drop entirely.
	h := newHarness(t)
	task := load.NewPulse(50e-3, 10e-3)
	gt, err := h.GroundTruth(task)
	if err != nil {
		t.Fatal(err)
	}
	measured := Estimate(CatnapMeasured, h, task)
	if harness.Classify(measured, gt) != harness.Unsafe {
		t.Errorf("Catnap-Measured %g vs truth %g — expected unsafe on pulse+tail", measured, gt)
	}
}

func TestCatnapSlowBelowCatnapMeasuredOnUniform(t *testing.T) {
	// Waiting 2 ms lets the rebound start: the slow measurement sees a
	// higher end voltage, so it books less energy and estimates a lower
	// V_safe than the immediate measurement.
	h := newHarness(t)
	task := load.NewUniform(50e-3, 10e-3)
	slow := Estimate(CatnapSlow, h, task)
	fast := Estimate(CatnapMeasured, h, task)
	if !(slow <= fast) {
		t.Errorf("Catnap-Slow %g should not exceed Catnap-Measured %g", slow, fast)
	}
}

func TestEnergyDirectMatchesClosedForm(t *testing.T) {
	h := newHarness(t)
	task := load.NewUniform(10e-3, 100e-3)
	cfg := h.Config()
	e := load.Energy(task, cfg.Output.VOut, 0)
	want := math.Sqrt(cfg.VOff*cfg.VOff + 2*e/cfg.Storage.TotalCapacitance())
	got := Estimate(EnergyDirect, h, task)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("EnergyDirect = %g, want %g", got, want)
	}
}

func TestVsafeFromEnergyVoltageClamps(t *testing.T) {
	// A measured end voltage above start (noise) must not produce NaN.
	v := vsafeFromEnergyVoltage(1.6, 2.0, 2.1)
	if math.IsNaN(v) || v != 1.6 {
		t.Errorf("clamped estimate = %g, want V_off", v)
	}
}

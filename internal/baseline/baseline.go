// Package baseline implements the energy-only V_safe estimators the paper
// evaluates Culpeo against (Sections II-D and VI-A). All of them reason
// about stored energy via E = ½CV² and ignore the ESR-induced transient
// drop, which is exactly why they fail:
//
//   - Energy-Direct: uses the task's true load-side energy and the nominal
//     capacitance.
//   - Energy-V: an end-to-end voltage-as-energy approximation measured
//     after the rebound fully settles.
//   - Catnap-Measured: the published CatNap approach — voltage measured
//     immediately at task completion (accidentally capturing part of the
//     ESR drop as "consumed energy").
//   - Catnap-Slow: the same measurement delayed 2 ms, by which time part of
//     the rebound has already happened.
package baseline

import (
	"math"

	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/trace"
)

// Kind names a baseline estimator.
type Kind int

const (
	EnergyDirect Kind = iota
	EnergyV
	CatnapMeasured
	CatnapSlow
)

func (k Kind) String() string {
	switch k {
	case EnergyDirect:
		return "Energy-Direct"
	case EnergyV:
		return "Energy-V"
	case CatnapMeasured:
		return "Catnap-Measured"
	case CatnapSlow:
		return "Catnap-Slow"
	default:
		return "baseline(?)"
	}
}

// Kinds lists all baselines in display order.
func Kinds() []Kind { return []Kind{EnergyDirect, EnergyV, CatnapMeasured, CatnapSlow} }

// vsafeFromEnergyVoltage computes the energy-only safe voltage from a
// voltage-squared energy difference: V_safe = sqrt(V_off² + ΔV²) where
// ΔV² = V_start² − V_end².
func vsafeFromEnergyVoltage(vOff, vStart, vEnd float64) float64 {
	d := vStart*vStart - vEnd*vEnd
	if d < 0 {
		d = 0
	}
	return math.Sqrt(vOff*vOff + d)
}

// Estimate produces the baseline's V_safe for a task on the harness's power
// system. Profiling runs start from V_high (a fully charged buffer), the
// most favourable measurement condition.
func Estimate(k Kind, h *harness.Harness, task load.Profile) float64 {
	cfg := h.Config()
	switch k {
	case EnergyDirect:
		// True load-side energy plus the ideal-capacitor model: the voltage
		// that stores exactly E above V_off. No booster, no ESR.
		e := load.Energy(task, cfg.Output.VOut, 0)
		c := cfg.Storage.TotalCapacitance()
		return math.Sqrt(cfg.VOff*cfg.VOff + 2*e/c)

	case EnergyV:
		res := h.RunAt(cfg.VHigh, task, powersys.RunOptions{})
		return vsafeFromEnergyVoltage(cfg.VOff, res.VStart, res.VFinal)

	case CatnapMeasured:
		res := h.RunAt(cfg.VHigh, task, powersys.RunOptions{SkipRebound: true})
		return vsafeFromEnergyVoltage(cfg.VOff, res.VStart, res.VEndImmediate)

	case CatnapSlow:
		rec := trace.NewRecorder(1)
		res := h.RunAt(cfg.VHigh, task, powersys.RunOptions{Recorder: rec})
		// Voltage 2 ms after the task completed: partway up the rebound.
		s, ok := rec.At(task.Duration() + 2e-3)
		vEnd := res.VEndImmediate
		if ok {
			vEnd = s.VTerm
		}
		return vsafeFromEnergyVoltage(cfg.VOff, res.VStart, vEnd)
	}
	return math.NaN()
}

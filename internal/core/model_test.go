package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"culpeo/internal/booster"
	"culpeo/internal/capacitor"
	"culpeo/internal/load"
)

func testModel() PowerModel {
	return PowerModel{
		C:     45e-3,
		ESR:   capacitor.Flat(1.5),
		VOut:  2.55,
		VOff:  1.6,
		VHigh: 2.56,
		Eff:   booster.DefaultEfficiency(),
	}
}

func TestPowerModelValidate(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*PowerModel){
		func(m *PowerModel) { m.C = 0 },
		func(m *PowerModel) { m.ESR = nil },
		func(m *PowerModel) { m.VOut = 0 },
		func(m *PowerModel) { m.VOff = 0 },
		func(m *PowerModel) { m.VHigh = 1.0 },
		func(m *PowerModel) { m.Eff = booster.EfficiencyLine{} },
	}
	for i, mut := range bad {
		m := testModel()
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestPowerModelAging(t *testing.T) {
	m := testModel()
	m.Aging = capacitor.Aging{LifeFraction: 1}
	if !almost(m.EffectiveC(), 45e-3*0.8, 1e-12) {
		t.Errorf("aged C = %g", m.EffectiveC())
	}
	if !almost(m.EffectiveESR(10e-3), 3.0, 1e-12) {
		t.Errorf("aged ESR = %g, want doubled", m.EffectiveESR(10e-3))
	}
	if !almost(m.OperatingRange(), 0.96, 1e-12) {
		t.Errorf("operating range = %g", m.OperatingRange())
	}
}

func TestVSafePGBasic(t *testing.T) {
	m := testModel()
	tr := load.Sample(load.LoRa(), 125e3)
	est, err := VSafePG(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Must exceed V_off plus the ESR drop of a 50 mA load through ~1.5 Ω
	// (booster-side current is higher than 50 mA at low voltage).
	if est.VSafe <= m.VOff+0.1 {
		t.Errorf("VSafe = %g implausibly low for a LoRa pulse", est.VSafe)
	}
	if est.VSafe >= m.VHigh {
		t.Errorf("VSafe = %g implausibly high — LoRa fits the Capybara buffer", est.VSafe)
	}
	if est.VDelta <= 0 {
		t.Error("VDelta must be positive for a real load")
	}
	if est.VE <= 0 {
		t.Error("VE must be positive for a real load")
	}
}

func TestVSafePGMonotoneInCurrent(t *testing.T) {
	m := testModel()
	var prev float64
	for _, i := range []float64{5e-3, 10e-3, 25e-3, 50e-3} {
		tr := load.Sample(load.NewUniform(i, 10e-3), 125e3)
		est, err := VSafePG(m, tr)
		if err != nil {
			t.Fatal(err)
		}
		if est.VSafe <= prev {
			t.Errorf("VSafe(%g A) = %g not increasing", i, est.VSafe)
		}
		prev = est.VSafe
	}
}

func TestVSafePGMonotoneInESR(t *testing.T) {
	tr := load.Sample(load.NewUniform(25e-3, 10e-3), 125e3)
	var prev float64
	for _, r := range []float64{0.1, 1, 3, 10} {
		m := testModel()
		m.ESR = capacitor.Flat(r)
		est, err := VSafePG(m, tr)
		if err != nil {
			t.Fatal(err)
		}
		if est.VSafe <= prev {
			t.Errorf("VSafe(ESR=%g) = %g not increasing", r, est.VSafe)
		}
		prev = est.VSafe
	}
}

func TestVSafePGEmptyTrace(t *testing.T) {
	est, err := VSafePG(testModel(), load.Trace{Rate: 125e3})
	if err != nil {
		t.Fatal(err)
	}
	if est.VSafe != testModel().VOff {
		t.Errorf("empty trace VSafe = %g, want VOff", est.VSafe)
	}
}

func TestVSafePGRejectsNegativeCurrent(t *testing.T) {
	tr := load.Trace{Rate: 125e3, Samples: []float64{0.01, -0.01}}
	if _, err := VSafePG(testModel(), tr); err == nil {
		t.Error("negative sample accepted")
	}
}

func TestVSafePGRejectsBadModel(t *testing.T) {
	m := testModel()
	m.C = 0
	if _, err := VSafePG(m, load.Sample(load.LoRa(), 125e3)); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestVSafePGInfeasibleTaskExceedsVHigh(t *testing.T) {
	// A long, heavy load on a small capacitor: the computed requirement
	// exceeds V_high, telling the programmer to re-divide the task.
	m := testModel()
	m.C = 1e-3
	tr := load.Sample(load.NewUniform(50e-3, 500e-3), 25e3)
	est, err := VSafePG(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	if est.VSafe <= m.VHigh {
		t.Errorf("VSafe = %g; expected above VHigh for an infeasible task", est.VSafe)
	}
}

func TestVSafePGUsesFrequencyDependentESR(t *testing.T) {
	curve, err := capacitor.NewESRCurve(
		capacitor.ESRPoint{Hz: 1, Ohm: 5},
		capacitor.ESRPoint{Hz: 100, Ohm: 2},
		capacitor.ESRPoint{Hz: 10000, Ohm: 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel()
	m.ESR = curve
	// Same charge delivered by a short and a long pulse: the long pulse sees
	// higher ESR (lower frequency), so its V_delta must be larger.
	slow, err := VSafePG(m, load.Sample(load.NewUniform(25e-3, 100e-3), 125e3))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := VSafePG(m, load.Sample(load.NewUniform(25e-3, 1e-3), 125e3))
	if err != nil {
		t.Fatal(err)
	}
	if !(slow.VDelta > fast.VDelta) {
		t.Errorf("slow-pulse VDelta %g should exceed fast-pulse VDelta %g", slow.VDelta, fast.VDelta)
	}
}

func TestObservationValidate(t *testing.T) {
	good := Observation{VStart: 2.4, VMin: 1.9, VFinal: 2.2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Observation{
		{VStart: 2.4, VMin: 2.3, VFinal: 2.2},  // min above final
		{VStart: 2.0, VMin: 1.9, VFinal: 2.2},  // final above start
		{VStart: 2.4, VMin: -0.1, VFinal: 2.2}, // non-positive min
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad observation %d accepted", i)
		}
	}
	if !almost(good.VDelta(), 0.3, 1e-12) {
		t.Errorf("VDelta = %g", good.VDelta())
	}
}

func TestVSafeRBasic(t *testing.T) {
	m := testModel()
	obs := Observation{VStart: 2.4, VMin: 1.95, VFinal: 2.25}
	est, err := VSafeR(m, obs)
	if err != nil {
		t.Fatal(err)
	}
	// The worst-case drop must exceed the observed drop (efficiency falls
	// toward V_off — Equation 1c scales it up).
	if !(est.VDelta > obs.VDelta()) {
		t.Errorf("scaled VDelta %g should exceed observed %g", est.VDelta, obs.VDelta())
	}
	// V_safe covers the energy and the drop above V_off.
	if est.VSafe <= m.VOff {
		t.Error("VSafe must exceed VOff")
	}
	if !almost(est.VSafe, est.VE+m.VOff+est.VDelta, 1e-9) {
		t.Error("VSafe decomposition inconsistent")
	}
}

func TestVSafeRZeroDropTask(t *testing.T) {
	// A task with no rebound (pure energy) still needs the energy voltage.
	m := testModel()
	obs := Observation{VStart: 2.4, VMin: 2.3, VFinal: 2.3}
	est, err := VSafeR(m, obs)
	if err != nil {
		t.Fatal(err)
	}
	if est.VDelta != 0 {
		t.Errorf("VDelta = %g, want 0", est.VDelta)
	}
	// Energy from 2.4→2.3 scaled by efficiency ratio, referenced to V_off.
	want := math.Sqrt(m.Eff.At(2.4)/m.Eff.At(1.6)*(2.4*2.4-2.3*2.3) + 1.6*1.6)
	if !almost(est.VSafe, want, 1e-9) {
		t.Errorf("VSafe = %g, want %g", est.VSafe, want)
	}
}

func TestVSafeRRejectsBadInput(t *testing.T) {
	m := testModel()
	if _, err := VSafeR(m, Observation{VStart: 2.0, VMin: 2.2, VFinal: 2.1}); err == nil {
		t.Error("invalid observation accepted")
	}
	m.C = -1
	if _, err := VSafeR(m, Observation{VStart: 2.4, VMin: 2.0, VFinal: 2.2}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestVSafeRProperty(t *testing.T) {
	m := testModel()
	f := func(a, b, c float64) bool {
		// Build a valid observation inside the window.
		vstart := 1.7 + math.Abs(math.Mod(a, 0.8))
		vfinal := m.VOff + math.Abs(math.Mod(b, vstart-m.VOff))
		if vfinal > vstart {
			vfinal = vstart
		}
		vmin := m.VOff*0.8 + math.Abs(math.Mod(c, vfinal-m.VOff*0.8))
		if vmin > vfinal {
			vmin = vfinal
		}
		obs := Observation{VStart: vstart, VMin: vmin, VFinal: vfinal}
		est, err := VSafeR(m, obs)
		if err != nil {
			return false
		}
		// Invariants: estimates are at least V_off; both components
		// non-negative; more rebound ⇒ larger VDelta.
		return est.VSafe >= m.VOff && est.VDelta >= 0 && est.VE >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEq3ApproximationTracksExactIntegral(t *testing.T) {
	// Ablation check: the collapsed-η approximation (Eq. 3) lands within a
	// few percent of the numerically solved Eq. 2c across the window.
	m := testModel()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		vstart := 1.8 + rng.Float64()*0.7
		vfinal := vstart - rng.Float64()*(vstart-1.65)
		obs := Observation{VStart: vstart, VMin: vfinal - 0.01, VFinal: vfinal}
		exact, err := VSafeE2Exact(m, obs)
		if err != nil {
			t.Fatal(err)
		}
		est, err := VSafeR(m, obs)
		if err != nil {
			t.Fatal(err)
		}
		approxE := est.VE + m.VOff
		// The collapsed-η form is conservative and drifts further above the
		// exact solution as the transferred energy grows (the paper observes
		// the same: Culpeo-R's "estimates are less accurate as energy
		// increases, but ... always safe").
		if math.Abs(approxE-exact) > 0.15 {
			t.Errorf("Eq3 %g vs exact %g for VStart=%g VFinal=%g",
				approxE, exact, vstart, vfinal)
		}
		// The approximation must not be unsafe: η(V_start) ≥ η(V_off) with a
		// positive-slope line, so Eq. 3 over-reserves.
		if approxE < exact-1e-3 {
			t.Errorf("Eq3 %g unsafely below exact %g", approxE, exact)
		}
	}
}

func TestEtaVIntegral(t *testing.T) {
	// With a constant η the integral is η(b²−a²)/2.
	eff := booster.EfficiencyLine{M: 0, B: 0.8, Min: 0.8, Max: 0.8}
	got := etaVIntegral(eff, 1.0, 2.0)
	want := 0.8 * (4 - 1) / 2
	if !almost(got, want, 1e-9) {
		t.Errorf("integral = %g, want %g", got, want)
	}
	if etaVIntegral(eff, 2.0, 1.0) != 0 {
		t.Error("reversed bounds should give 0")
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

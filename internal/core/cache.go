// Memoized V_safe: a concurrency-safe LRU cache over VSafePG keyed by
// (power-model fingerprint, trace fingerprint).
//
// Every analysis layer above the simulator re-derives the same estimates:
// the Figure 10/11 grids score four estimators per load against one model,
// the soak matrix re-profiles the same gate tasks across twelve fault
// cells, the scheduler's dispatch test recomposes chain requirements from
// static per-task estimates, and bank sweeps walk many loads over few
// models. VSafePG is a pure function of (model, trace), so its results are
// safe to share globally; identical inputs return identical Estimates,
// which keeps golden outputs byte-stable whether or not the cache is warm.
//
// Invalidation is structural: there is none, because the key is a hash of
// every model parameter that influences the result. Fault injection that
// ages a capacitor or drifts its ESR produces a different PowerModel, a
// different fingerprint, and therefore a different cache line — stale
// entries for the old configuration simply age out of the LRU.
package core

import (
	"container/list"
	"math"
	"sync"

	"culpeo/internal/load"
)

// 64-bit FNV-1a.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

func hashFloat(h uint64, f float64) uint64 { return hashUint64(h, math.Float64bits(f)) }

func hashBool(h uint64, b bool) uint64 {
	if b {
		return hashUint64(h, 1)
	}
	return hashUint64(h, 0)
}

// Fingerprint hashes every model parameter that influences a V_safe
// calculation: capacitance, the full ESR curve (by value — two curves with
// identical points are the same characteristic), the booster voltages and
// efficiency line, the monitor window, aging state and the ESR-loss
// accounting switch. Models with equal fingerprints produce identical
// VSafePG results for any trace (up to the negligible 64-bit collision
// probability the cache accepts).
func (m PowerModel) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	h = hashFloat(h, m.C)
	h = hashFloat(h, m.VOut)
	h = hashFloat(h, m.VOff)
	h = hashFloat(h, m.VHigh)
	h = hashFloat(h, m.Eff.M)
	h = hashFloat(h, m.Eff.B)
	h = hashFloat(h, m.Eff.Min)
	h = hashFloat(h, m.Eff.Max)
	h = hashFloat(h, m.Aging.LifeFraction)
	h = hashBool(h, m.OmitESRLoss)
	if m.ESR != nil {
		for _, p := range m.ESR.Points() {
			h = hashFloat(h, p.Hz)
			h = hashFloat(h, p.Ohm)
		}
	}
	return h
}

// TraceFingerprint hashes a current trace by value: sample rate, length and
// every sample. The trace ID is deliberately excluded — V_safe depends on
// the waveform, not its name, so renamed copies of one profile share a
// cache line.
func TraceFingerprint(tr load.Trace) uint64 {
	h := uint64(fnvOffset64)
	h = hashFloat(h, tr.Rate)
	h = hashUint64(h, uint64(len(tr.Samples)))
	for _, s := range tr.Samples {
		h = hashFloat(h, s)
	}
	return h
}

// DefaultVSafeCacheSize bounds the shared cache. An entry is ~64 bytes;
// the working set of the full experiment suite is a few hundred
// (model, trace) pairs.
const DefaultVSafeCacheSize = 512

type vsafeKey struct{ model, trace uint64 }

type vsafeEntry struct {
	key vsafeKey
	est Estimate
}

// VSafeCache memoizes VSafePG results under an LRU policy. All methods are
// safe for concurrent use, and nil-safe: a nil *VSafeCache computes without
// memoizing, so callers can thread an optional cache unconditionally.
type VSafeCache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[vsafeKey]*list.Element
	order     *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
}

// NewVSafeCache builds a cache holding at most capacity estimates
// (capacity <= 0 selects DefaultVSafeCacheSize).
func NewVSafeCache(capacity int) *VSafeCache {
	if capacity <= 0 {
		capacity = DefaultVSafeCacheSize
	}
	return &VSafeCache{
		capacity: capacity,
		entries:  make(map[vsafeKey]*list.Element),
		order:    list.New(),
	}
}

// PG returns VSafePG(m, tr), memoized. The calculation runs outside the
// lock, so concurrent misses on the same key may duplicate work but never
// serialize behind each other; the first result wins the cache line and
// all compute identical values. Errors are returned uncached (they are
// cheap input-validation failures).
func (c *VSafeCache) PG(m PowerModel, tr load.Trace) (Estimate, error) {
	if c == nil {
		return VSafePG(m, tr)
	}
	key := vsafeKey{model: m.Fingerprint(), trace: TraceFingerprint(tr)}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		est := el.Value.(*vsafeEntry).est
		c.hits++
		c.mu.Unlock()
		return est, nil
	}
	c.misses++
	c.mu.Unlock()

	est, err := VSafePG(m, tr)
	if err != nil {
		return est, err
	}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el) // lost a compute race; keep the incumbent
	} else {
		c.entries[key] = c.order.PushFront(&vsafeEntry{key: key, est: est})
		for c.order.Len() > c.capacity {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.entries, back.Value.(*vsafeEntry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	return est, nil
}

// VSafeCacheStats is a point-in-time snapshot of cache effectiveness. It
// marshals directly into the serving layer's /metrics document, so the JSON
// field names are part of the metrics schema (see internal/serve).
type VSafeCacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped by the LRU policy — the number a
	// sharded deployment watches: a shard whose evictions climb is one
	// whose slice of the keyspace outgrew its cache (see internal/shard).
	Evictions uint64 `json:"evictions"`
	Len       int    `json:"len"`
	Capacity  int    `json:"capacity"`
	// Rate is hits/(hits+misses), filled by Stats so marshaled snapshots
	// carry the headline number without the consumer re-deriving it.
	Rate float64 `json:"hit_rate"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s VSafeCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the hit/miss counters. Nil-safe.
func (c *VSafeCache) Stats() VSafeCacheStats {
	if c == nil {
		return VSafeCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := VSafeCacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Len: c.order.Len(), Capacity: c.capacity}
	s.Rate = s.HitRate()
	return s
}

// Reset drops all entries and zeroes the counters. Nil-safe.
func (c *VSafeCache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[vsafeKey]*list.Element)
	c.order.Init()
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// defaultVSafeCache is the process-wide memo every PG estimate routes
// through by default (see profiler.PG).
var defaultVSafeCache = NewVSafeCache(DefaultVSafeCacheSize)

// DefaultVSafeCache returns the shared process-wide cache (benchmarks read
// its Stats; tests Reset it).
func DefaultVSafeCache() *VSafeCache { return defaultVSafeCache }

// VSafePGCached is VSafePG memoized through the shared default cache.
func VSafePGCached(m PowerModel, tr load.Trace) (Estimate, error) {
	return defaultVSafeCache.PG(m, tr)
}

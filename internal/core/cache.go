// Memoized V_safe: a concurrency-safe LRU cache over VSafePG keyed by
// (power-model fingerprint, trace fingerprint).
//
// Every analysis layer above the simulator re-derives the same estimates:
// the Figure 10/11 grids score four estimators per load against one model,
// the soak matrix re-profiles the same gate tasks across twelve fault
// cells, the scheduler's dispatch test recomposes chain requirements from
// static per-task estimates, and bank sweeps walk many loads over few
// models. VSafePG is a pure function of (model, trace), so its results are
// safe to share globally; identical inputs return identical Estimates,
// which keeps golden outputs byte-stable whether or not the cache is warm.
//
// Invalidation is structural: there is none, because the key is a hash of
// every model parameter that influences the result. Fault injection that
// ages a capacitor or drifts its ESR produces a different PowerModel, a
// different fingerprint, and therefore a different cache line — stale
// entries for the old configuration simply age out of the LRU.
package core

import (
	"container/list"
	"context"
	"math"
	"sync"
	"sync/atomic"

	"culpeo/internal/load"
)

// 64-bit FNV-1a.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashUint64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

func hashFloat(h uint64, f float64) uint64 { return hashUint64(h, math.Float64bits(f)) }

func hashBool(h uint64, b bool) uint64 {
	if b {
		return hashUint64(h, 1)
	}
	return hashUint64(h, 0)
}

// Fingerprint hashes every model parameter that influences a V_safe
// calculation: capacitance, the full ESR curve (by value — two curves with
// identical points are the same characteristic), the booster voltages and
// efficiency line, the monitor window, aging state and the ESR-loss
// accounting switch. Models with equal fingerprints produce identical
// VSafePG results for any trace (up to the negligible 64-bit collision
// probability the cache accepts).
func (m PowerModel) Fingerprint() uint64 {
	h := uint64(fnvOffset64)
	h = hashFloat(h, m.C)
	h = hashFloat(h, m.VOut)
	h = hashFloat(h, m.VOff)
	h = hashFloat(h, m.VHigh)
	h = hashFloat(h, m.Eff.M)
	h = hashFloat(h, m.Eff.B)
	h = hashFloat(h, m.Eff.Min)
	h = hashFloat(h, m.Eff.Max)
	h = hashFloat(h, m.Aging.LifeFraction)
	h = hashBool(h, m.OmitESRLoss)
	if m.ESR != nil {
		for _, p := range m.ESR.Points() {
			h = hashFloat(h, p.Hz)
			h = hashFloat(h, p.Ohm)
		}
	}
	return h
}

// TraceFingerprint hashes a current trace by value: sample rate, length and
// every sample. The trace ID is deliberately excluded — V_safe depends on
// the waveform, not its name, so renamed copies of one profile share a
// cache line.
func TraceFingerprint(tr load.Trace) uint64 {
	h := uint64(fnvOffset64)
	h = hashFloat(h, tr.Rate)
	h = hashUint64(h, uint64(len(tr.Samples)))
	for _, s := range tr.Samples {
		h = hashFloat(h, s)
	}
	return h
}

// DefaultVSafeCacheSize bounds the shared cache. An entry is ~64 bytes;
// the working set of the full experiment suite is a few hundred
// (model, trace) pairs.
const DefaultVSafeCacheSize = 512

type vsafeKey struct{ model, trace uint64 }

type vsafeEntry struct {
	key vsafeKey
	est Estimate
}

// vsafeFlight is one in-progress miss computation. The leader that created
// it publishes est/err and then closes done; the channel close is the
// happens-before edge that makes the fields safe for waiters to read.
type vsafeFlight struct {
	done chan struct{}
	est  Estimate
	err  error
}

// VSafeCache memoizes VSafePG results under an LRU policy. All methods are
// safe for concurrent use, and nil-safe: a nil *VSafeCache computes without
// memoizing, so callers can thread an optional cache unconditionally.
//
// Concurrent misses on one key are coalesced (singleflight): the first
// looker becomes the leader and computes; later lookers wait on the
// leader's flight and share its bit-exact result. VSafePG is pure, so a
// shared result is indistinguishable from a private recomputation — except
// in cost, which is the point: on a cache-cold shard the miss path is the
// dominant expense and duplicated searches are pure waste.
type VSafeCache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[vsafeKey]*list.Element
	order     *list.List // front = most recently used
	flights   map[vsafeKey]*vsafeFlight
	hits      uint64
	misses    uint64
	evictions uint64
	waits     uint64 // lookups that found a flight and waited
	coalesced uint64 // waits resolved by sharing a leader's success

	// compute overrides the miss-path computation; nil selects VSafePG.
	// Test seam only: the singleflight suite substitutes blocking and
	// counting computations to pin leader/waiter semantics.
	compute func(PowerModel, load.Trace) (Estimate, error)
}

// NewVSafeCache builds a cache holding at most capacity estimates
// (capacity <= 0 selects DefaultVSafeCacheSize).
func NewVSafeCache(capacity int) *VSafeCache {
	if capacity <= 0 {
		capacity = DefaultVSafeCacheSize
	}
	return &VSafeCache{
		capacity: capacity,
		entries:  make(map[vsafeKey]*list.Element),
		order:    list.New(),
		flights:  make(map[vsafeKey]*vsafeFlight),
	}
}

// PG returns VSafePG(m, tr), memoized and miss-coalesced. Equivalent to
// PGCtx with a background context: a waiter blocks until its leader
// publishes.
func (c *VSafeCache) PG(m PowerModel, tr load.Trace) (Estimate, error) {
	return c.PGCtx(context.Background(), m, tr)
}

// PGCtx returns VSafePG(m, tr), memoized. Misses are coalesced: the first
// looker on a key becomes the leader, computes outside the lock, inserts
// on success and publishes to every waiter. Waiters share the leader's
// bit-exact result — counted as a hit plus a coalesce — or its error,
// which is never cached (errors are cheap input-validation failures, and
// caching one would pin a poison line). A waiter's ctx cancellation
// abandons only that wait: the leader's computation continues and still
// populates the cache for everyone else. The leader itself ignores ctx —
// by the time it is elected the computation is already owed to any waiters
// that pile up behind it.
func (c *VSafeCache) PGCtx(ctx context.Context, m PowerModel, tr load.Trace) (Estimate, error) {
	if c == nil {
		return VSafePG(m, tr)
	}
	key := vsafeKey{model: m.Fingerprint(), trace: TraceFingerprint(tr)}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		est := el.Value.(*vsafeEntry).est
		c.hits++
		c.mu.Unlock()
		return est, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.waits++
		c.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return Estimate{}, ctx.Err()
		}
		c.mu.Lock()
		if fl.err == nil {
			c.hits++
			c.coalesced++
		} else {
			c.misses++
		}
		c.mu.Unlock()
		return fl.est, fl.err
	}
	c.misses++
	fl := &vsafeFlight{done: make(chan struct{})}
	c.flights[key] = fl
	compute := c.compute
	c.mu.Unlock()

	if compute == nil {
		compute = VSafePG
	}
	est, err := compute(m, tr)

	c.mu.Lock()
	fl.est, fl.err = est, err
	delete(c.flights, key)
	if err == nil {
		// The flight map guarantees this key has exactly one leader at a
		// time and no other path inserts, so the line cannot already exist:
		// every successful miss inserts exactly once (the accounting tests
		// rely on len+evictions == misses holding under concurrency).
		c.entries[key] = c.order.PushFront(&vsafeEntry{key: key, est: est})
		for c.order.Len() > c.capacity {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.entries, back.Value.(*vsafeEntry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return est, err
}

// VSafeCacheStats is a point-in-time snapshot of cache effectiveness. It
// marshals directly into the serving layer's /metrics document, so the JSON
// field names are part of the metrics schema (see internal/serve).
type VSafeCacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped by the LRU policy — the number a
	// sharded deployment watches: a shard whose evictions climb is one
	// whose slice of the keyspace outgrew its cache (see internal/shard).
	Evictions uint64 `json:"evictions"`
	Len       int    `json:"len"`
	Capacity  int    `json:"capacity"`
	// Rate is hits/(hits+misses), filled by Stats so marshaled snapshots
	// carry the headline number without the consumer re-deriving it.
	Rate float64 `json:"hit_rate"`
	// InflightWaits counts lookups that found a miss already being computed
	// and waited on it; Coalesced counts the waits that resolved by sharing
	// the leader's successful result (a wait whose leader errored, or whose
	// context was cancelled first, is not a coalesce). Coalesced/Misses is
	// the duplicated-search work the singleflight path eliminated.
	InflightWaits uint64 `json:"inflight_waits"`
	Coalesced     uint64 `json:"coalesced"`
	// WarmHits/WarmFallbacks are process-wide (not per-cache) counters for
	// the warm-started ground-truth bisection (see internal/harness):
	// searches whose bracket hint verified and paid the short search, vs.
	// searches whose hint failed endpoint verification and fell back to the
	// full cold bracket. Surfaced here so they ride the same /metrics
	// document operators already watch for miss-path health.
	WarmHits      uint64 `json:"warm_hits"`
	WarmFallbacks uint64 `json:"warm_fallbacks"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s VSafeCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the hit/miss counters. Nil-safe.
func (c *VSafeCache) Stats() VSafeCacheStats {
	if c == nil {
		return VSafeCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := VSafeCacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Len: c.order.Len(), Capacity: c.capacity,
		InflightWaits: c.waits, Coalesced: c.coalesced,
		WarmHits: warmHits.Load(), WarmFallbacks: warmFallbacks.Load(),
	}
	s.Rate = s.HitRate()
	return s
}

// Reset drops all entries and zeroes the counters. In-progress flights are
// left alone: their leaders publish to their waiters regardless and insert
// into the fresh map on success. Nil-safe. The process-wide warm counters
// are not touched (see ResetWarmStats).
func (c *VSafeCache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[vsafeKey]*list.Element)
	c.order.Init()
	c.hits, c.misses, c.evictions = 0, 0, 0
	c.waits, c.coalesced = 0, 0
}

// Warm-start accounting. The counters live here rather than in
// internal/harness so they surface on the serving /metrics document
// through VSafeCacheStats without the serving layer importing the harness;
// they are process-wide because warm-started sweeps run through many
// short-lived Harness values, none of which outlives the sweep.
var (
	warmHits      atomic.Uint64
	warmFallbacks atomic.Uint64
)

// RecordWarmHit notes a ground-truth search whose bracket hint verified.
func RecordWarmHit() { warmHits.Add(1) }

// RecordWarmFallback notes a search whose hint failed endpoint
// verification and fell back to the full cold bracket.
func RecordWarmFallback() { warmFallbacks.Add(1) }

// WarmStats snapshots the process-wide warm-start counters.
func WarmStats() (hits, fallbacks uint64) { return warmHits.Load(), warmFallbacks.Load() }

// ResetWarmStats zeroes the process-wide warm-start counters (tests).
func ResetWarmStats() { warmHits.Store(0); warmFallbacks.Store(0) }

// defaultVSafeCache is the process-wide memo every PG estimate routes
// through by default (see profiler.PG).
var defaultVSafeCache = NewVSafeCache(DefaultVSafeCacheSize)

// DefaultVSafeCache returns the shared process-wide cache (benchmarks read
// its Stats; tests Reset it).
func DefaultVSafeCache() *VSafeCache { return defaultVSafeCache }

// VSafePGCached is VSafePG memoized through the shared default cache.
func VSafePGCached(m PowerModel, tr load.Trace) (Estimate, error) {
	return defaultVSafeCache.PG(m, tr)
}

// VSafePGCachedCtx is VSafePGCached with a context bounding a coalesced
// wait (see VSafeCache.PGCtx).
func VSafePGCachedCtx(ctx context.Context, m PowerModel, tr load.Trace) (Estimate, error) {
	return defaultVSafeCache.PGCtx(ctx, m, tr)
}

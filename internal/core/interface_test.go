package core

import (
	"sync"
	"testing"
)

// fakeProbe replays scripted observations.
type fakeProbe struct {
	obs     []Observation
	i       int
	started bool
	ended   bool
}

func (p *fakeProbe) Start() { p.started = true; p.ended = false }
func (p *fakeProbe) End()   { p.ended = true }
func (p *fakeProbe) ReboundEnd() Observation {
	o := p.obs[p.i%len(p.obs)]
	p.i++
	p.started = false
	return o
}

func newTestInterface(t *testing.T, obs ...Observation) (*Interface, *fakeProbe) {
	t.Helper()
	if len(obs) == 0 {
		obs = []Observation{{VStart: 2.4, VMin: 1.95, VFinal: 2.25}}
	}
	p := &fakeProbe{obs: obs}
	c, err := NewInterface(testModel(), p)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestInterfaceLifecycle(t *testing.T) {
	c, p := newTestInterface(t)
	c.ProfileStart()
	if !p.started {
		t.Error("probe not started")
	}
	if err := c.ProfileEnd("radio"); err != nil {
		t.Fatal(err)
	}
	if !p.ended {
		t.Error("probe not ended")
	}
	if err := c.ReboundEnd("radio"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Observation("radio"); !ok {
		t.Fatal("observation not stored")
	}
	// Before ComputeVSafe, the defaults of Table I apply.
	if got := c.GetVSafe("radio"); got != c.Model().VHigh {
		t.Errorf("GetVSafe default = %g, want VHigh", got)
	}
	if got := c.GetVDrop("radio"); got != -1 {
		t.Errorf("GetVDrop default = %g, want -1", got)
	}
	c.ComputeVSafe("radio")
	if got := c.GetVSafe("radio"); got >= c.Model().VHigh || got <= c.Model().VOff {
		t.Errorf("computed VSafe = %g out of window", got)
	}
	if got := c.GetVDrop("radio"); got <= 0 {
		t.Errorf("computed VDrop = %g", got)
	}
	if _, ok := c.Estimate("radio"); !ok {
		t.Error("estimate not retrievable")
	}
}

func TestInterfaceComputeVSafeNoProfileIsNoop(t *testing.T) {
	c, _ := newTestInterface(t)
	c.ComputeVSafe("ghost") // must not panic or store anything
	if got := c.GetVSafe("ghost"); got != c.Model().VHigh {
		t.Error("no-op compute stored something")
	}
}

func TestInterfaceMisuseErrors(t *testing.T) {
	c, _ := newTestInterface(t)
	if err := c.ProfileEnd("x"); err == nil {
		t.Error("profile_end without start accepted")
	}
	if err := c.ReboundEnd("x"); err == nil {
		t.Error("rebound_end without start accepted")
	}
}

func TestInterfaceAbort(t *testing.T) {
	c, _ := newTestInterface(t)
	c.ProfileStart()
	c.AbortProfile()
	if err := c.ProfileEnd("radio"); err != nil {
		t.Fatal(err)
	}
	if err := c.ReboundEnd("radio"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Observation("radio"); ok {
		t.Error("aborted profile stored an observation")
	}
}

func TestInterfaceRejectsInvalidObservation(t *testing.T) {
	c, _ := newTestInterface(t, Observation{VStart: 1.0, VMin: 2.0, VFinal: 1.5})
	c.ProfileStart()
	_ = c.ProfileEnd("bad")
	if err := c.ReboundEnd("bad"); err == nil {
		t.Error("invalid observation accepted")
	}
}

func TestInterfaceBufferConfigurations(t *testing.T) {
	c, _ := newTestInterface(t)
	profileAndCompute := func(id TaskID) {
		c.ProfileStart()
		_ = c.ProfileEnd(id)
		_ = c.ReboundEnd(id)
		c.ComputeVSafe(id)
	}
	c.SetBuffer("bank-A")
	profileAndCompute("radio")
	vA := c.GetVSafe("radio")
	// Switch configuration: values must not leak across buffers
	// (Section V-B: "Future get queries must then specify a buffer
	// configuration").
	c.SetBuffer("bank-B")
	if got := c.GetVSafe("radio"); got != c.Model().VHigh {
		t.Errorf("buffer B sees buffer A's estimate: %g", got)
	}
	c.SetBuffer("bank-A")
	if got := c.GetVSafe("radio"); got != vA {
		t.Error("buffer A's estimate lost")
	}
	if c.Buffer() != "bank-A" {
		t.Error("Buffer() wrong")
	}
}

func TestInterfaceInvalidate(t *testing.T) {
	c, _ := newTestInterface(t)
	c.ProfileStart()
	_ = c.ProfileEnd("radio")
	_ = c.ReboundEnd("radio")
	c.ComputeVSafe("radio")
	c.Invalidate()
	if got := c.GetVSafe("radio"); got != c.Model().VHigh {
		t.Error("invalidate did not clear estimates")
	}
	if _, ok := c.Observation("radio"); ok {
		t.Error("invalidate did not clear profiles")
	}
}

func TestInterfaceSetStaticAndTasks(t *testing.T) {
	c, _ := newTestInterface(t)
	c.SetStatic("pg-task", Estimate{VSafe: 2.2, VDelta: 0.3, VE: 0.1})
	if got := c.GetVSafe("pg-task"); got != 2.2 {
		t.Errorf("static VSafe = %g", got)
	}
	c.SetStatic("another", Estimate{VSafe: 2.0, VDelta: 0.1, VE: 0.05})
	ids := c.Tasks()
	if len(ids) != 2 || ids[0] != "another" || ids[1] != "pg-task" {
		t.Errorf("Tasks() = %v", ids)
	}
}

func TestInterfaceSeqVSafe(t *testing.T) {
	c, _ := newTestInterface(t)
	c.SetStatic("sense", Estimate{VSafe: 1.75, VDelta: 0.05, VE: 0.08})
	c.SetStatic("radio", Estimate{VSafe: 2.15, VDelta: 0.45, VE: 0.12})
	v, ok := c.SeqVSafe([]TaskID{"sense", "radio"})
	if !ok {
		t.Fatal("sequence incomplete")
	}
	want := VSafeMulti(c.Model().VOff, []TaskReq{
		{ID: "sense", VE: 0.08, VDelta: 0.05},
		{ID: "radio", VE: 0.12, VDelta: 0.45},
	})
	if v != want {
		t.Errorf("SeqVSafe = %g, want %g", v, want)
	}
	// Missing estimate falls back conservatively.
	v, ok = c.SeqVSafe([]TaskID{"sense", "ghost"})
	if ok || v != c.Model().VHigh {
		t.Errorf("missing estimate: got %g, %v", v, ok)
	}
}

func TestInterfaceConcurrency(t *testing.T) {
	c, _ := newTestInterface(t)
	c.SetStatic("t", Estimate{VSafe: 2.0, VDelta: 0.2, VE: 0.1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_ = c.GetVSafe("t")
				_ = c.GetVDrop("t")
				c.SetStatic("t2", Estimate{VSafe: 2.1})
				_, _ = c.SeqVSafe([]TaskID{"t", "t2"})
			}
		}()
	}
	wg.Wait()
}

func TestNewInterfaceValidation(t *testing.T) {
	if _, err := NewInterface(testModel(), nil); err == nil {
		t.Error("nil probe accepted")
	}
	m := testModel()
	m.C = -1
	if _, err := NewInterface(m, &fakeProbe{obs: []Observation{{}}}); err == nil {
		t.Error("bad model accepted")
	}
}

package core

import (
	"fmt"
	"sort"
	"sync"
)

// TaskID identifies a software task in the Culpeo tables.
type TaskID string

// BufferID identifies an energy-buffer configuration. Systems with a
// reconfigurable energy storage array (Capybara, Morphy) tag per-task data
// with the active configuration (Section V-B); fixed-buffer systems use the
// default empty ID.
type BufferID string

// Probe abstracts the voltage-capture mechanism behind the Culpeo runtime:
// either the interrupt-driven ADC sampler (Culpeo-R-ISR, Section V-C) or
// the memory-mapped peripheral block (Culpeo-µArch, Section V-D). Package
// profiler provides both.
type Probe interface {
	// Start begins profiling: record V_start and reset minimum tracking.
	Start()
	// End latches the in-task minimum and switches to rebound (maximum)
	// tracking.
	End()
	// ReboundEnd stops tracking and returns the completed observation.
	ReboundEnd() Observation
}

// Interface is the Culpeo charge-management interface of Table I. A
// scheduler calls the Profile functions around task executions, then
// ComputeVSafe and the Get accessors to make dispatch decisions. All
// methods are safe for concurrent use.
type Interface struct {
	mu      sync.Mutex
	model   PowerModel
	probe   Probe
	buffer  BufferID
	active  bool // a profile is in progress
	aborted bool // the in-progress profile was invalidated

	profiles  map[BufferID]map[TaskID]Observation
	estimates map[BufferID]map[TaskID]Estimate
	// gen counts estimate-visible mutations (stores, invalidations, buffer
	// switches). Callers that memoize derived values — the scheduler's
	// chain requirements — compare generations instead of re-reading the
	// tables on every dispatch test.
	gen uint64
}

// NewInterface builds the runtime interface around a power model and a
// probe.
func NewInterface(model PowerModel, probe Probe) (*Interface, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if probe == nil {
		return nil, fmt.Errorf("core: nil probe")
	}
	return &Interface{
		model:     model,
		probe:     probe,
		profiles:  map[BufferID]map[TaskID]Observation{},
		estimates: map[BufferID]map[TaskID]Estimate{},
	}, nil
}

// Model returns the power model.
func (c *Interface) Model() PowerModel { return c.model }

// SetBuffer selects the active energy-buffer configuration; subsequent
// profile and get operations are keyed by it.
func (c *Interface) SetBuffer(id BufferID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buffer = id
	c.gen++
}

// Buffer returns the active buffer configuration.
func (c *Interface) Buffer() BufferID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buffer
}

// ProfileStart begins profiling the next task execution (Table I:
// profile_start()).
func (c *Interface) ProfileStart() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.active = true
	c.aborted = false
	c.probe.Start()
}

// AbortProfile invalidates an in-progress profile (e.g. the task failed or
// was preempted); the pending observation is discarded at ProfileEnd.
func (c *Interface) AbortProfile() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aborted = true
}

// ProfileEnd marks the task complete and begins rebound tracking (Table I:
// profile_end(id)). It returns an error when no profile is in progress.
func (c *Interface) ProfileEnd(id TaskID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.active {
		return fmt.Errorf("core: profile_end(%s) without profile_start", id)
	}
	c.probe.End()
	return nil
}

// ReboundEnd finishes the profile: the probe's maximum tracking stops and
// the observation is stored in the per-task table (Table I:
// rebound_end(id)).
func (c *Interface) ReboundEnd(id TaskID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.active {
		return fmt.Errorf("core: rebound_end(%s) without profile_start", id)
	}
	obs := c.probe.ReboundEnd()
	c.active = false
	if c.aborted {
		c.aborted = false
		return nil
	}
	if err := obs.Validate(); err != nil {
		return fmt.Errorf("core: rebound_end(%s): %w", id, err)
	}
	tbl := c.profiles[c.buffer]
	if tbl == nil {
		tbl = map[TaskID]Observation{}
		c.profiles[c.buffer] = tbl
	}
	tbl[id] = obs
	return nil
}

// ComputeVSafe performs the Culpeo-R V_safe and V_delta calculation for the
// task using its stored profile (Table I: compute_vsafe(id)). If the task's
// profile table entry is unpopulated this is a no-op, matching the paper.
func (c *Interface) ComputeVSafe(id TaskID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	obs, ok := c.profiles[c.buffer][id]
	if !ok {
		return
	}
	est, err := VSafeR(c.model, obs)
	if err != nil {
		return
	}
	tbl := c.estimates[c.buffer]
	if tbl == nil {
		tbl = map[TaskID]Estimate{}
		c.estimates[c.buffer] = tbl
	}
	tbl[id] = est
	c.gen++
}

// SetStatic installs a compile-time estimate (Culpeo-PG values baked into
// the program image, Section V-A).
func (c *Interface) SetStatic(id TaskID, e Estimate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tbl := c.estimates[c.buffer]
	if tbl == nil {
		tbl = map[TaskID]Estimate{}
		c.estimates[c.buffer] = tbl
	}
	tbl[id] = e
	c.gen++
}

// GetVSafe returns the task's V_safe, or V_high when no valid value exists
// (Table I: get_vsafe(id) — "otherwise returning V_high", the conservative
// default that only dispatches on a full buffer).
func (c *Interface) GetVSafe(id TaskID) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.estimates[c.buffer][id]; ok {
		return e.VSafe
	}
	return c.model.VHigh
}

// GetVDrop returns the task's worst-case ESR drop V_delta, or −1 when no
// valid value exists (Table I: get_vdrop(id)).
func (c *Interface) GetVDrop(id TaskID) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.estimates[c.buffer][id]; ok {
		return e.VDelta
	}
	return -1
}

// Estimate returns the full estimate and whether one exists.
func (c *Interface) Estimate(id TaskID) (Estimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.estimates[c.buffer][id]
	return e, ok
}

// Observation returns the stored raw profile and whether one exists.
func (c *Interface) Observation(id TaskID) (Observation, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	o, ok := c.profiles[c.buffer][id]
	return o, ok
}

// Invalidate clears all profiles and estimates for the active buffer —
// schedulers that monitor charge rate call this when incoming power changes
// beyond a threshold to trigger re-profiling (Section V-B).
func (c *Interface) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.profiles, c.buffer)
	delete(c.estimates, c.buffer)
	c.gen++
}

// Tasks lists the task IDs with estimates in the active buffer, sorted.
func (c *Interface) Tasks() []TaskID {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ids []TaskID
	for id := range c.estimates[c.buffer] {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Generation returns a counter that advances on every estimate-visible
// mutation (ComputeVSafe/SetStatic stores, Invalidate, SetBuffer). A cached
// value derived from the tables is valid while the generation is unchanged.
func (c *Interface) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// SeqVSafe composes V_safe_multi for an ordered task chain from the stored
// estimates. ok is false when any task lacks an estimate.
func (c *Interface) SeqVSafe(ids []TaskID) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	reqs := make([]TaskReq, 0, len(ids))
	for _, id := range ids {
		e, found := c.estimates[c.buffer][id]
		if !found {
			return c.model.VHigh, false
		}
		reqs = append(reqs, e.Req(string(id)))
	}
	return VSafeMulti(c.model.VOff, reqs), true
}

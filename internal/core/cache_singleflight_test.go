package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"culpeo/internal/load"
)

// waitForWaiters polls until the cache reports n registered in-flight
// waiters (or the deadline passes). The wait counter is incremented under
// the cache lock before the waiter blocks, so once Stats reports n the
// waiters are committed to the flight.
func waitForWaiters(t *testing.T, c *VSafeCache, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().InflightWaits >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %d inflight waiters (stats %+v)", n, c.Stats())
}

// TestVSafeCacheSingleflightHammer: N goroutines missing on one key
// perform exactly one computation, and every caller receives a result
// bit-exact with the uncoalesced path. The leader is held at a gate until
// all other lookups are registered as waiters, so the test pins the
// coalescing semantics deterministically rather than by racing.
func TestVSafeCacheSingleflightHammer(t *testing.T) {
	m, tr := cacheModel(), cacheTrace(30e-3)
	want, err := VSafePG(m, tr)
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 16
	gate := make(chan struct{})
	var computes atomic.Uint64
	c := NewVSafeCache(8)
	c.compute = func(m PowerModel, tr load.Trace) (Estimate, error) {
		computes.Add(1)
		<-gate
		return VSafePG(m, tr)
	}

	results := make([]Estimate, waiters+1)
	errs := make([]error, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader
		defer wg.Done()
		results[0], errs[0] = c.PG(m, tr)
	}()
	// The leader registers its flight before blocking at the gate; once a
	// compute is counted, every subsequent lookup must become a waiter.
	deadline := time.Now().Add(5 * time.Second)
	for computes.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if computes.Load() == 0 {
		t.Fatal("leader never started computing")
	}
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.PG(m, tr)
		}(i)
	}
	waitForWaiters(t, c, waiters)
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("%d concurrent misses performed %d computations, want exactly 1", waiters+1, got)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
		got := results[i]
		if math.Float64bits(got.VSafe) != math.Float64bits(want.VSafe) ||
			math.Float64bits(got.VDelta) != math.Float64bits(want.VDelta) ||
			math.Float64bits(got.VE) != math.Float64bits(want.VE) {
			t.Fatalf("caller %d: coalesced result %+v not bit-exact with direct %+v", i, got, want)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (the leader)", st.Misses)
	}
	if st.InflightWaits != waiters || st.Coalesced != waiters {
		t.Fatalf("inflight_waits = %d, coalesced = %d, want %d each", st.InflightWaits, st.Coalesced, waiters)
	}
	if st.Hits != waiters {
		t.Fatalf("hits = %d, want %d (each coalesced waiter counts as a hit)", st.Hits, waiters)
	}
	if st.Len != 1 {
		t.Fatalf("len = %d, want the one computed line", st.Len)
	}
}

// TestVSafeCacheSingleflightError: a leader's error propagates to every
// waiter and nothing is cached, so the next lookup recomputes.
func TestVSafeCacheSingleflightError(t *testing.T) {
	m, tr := cacheModel(), cacheTrace(30e-3)
	wantErr := errors.New("synthetic compute failure")

	const waiters = 8
	gate := make(chan struct{})
	var computes atomic.Uint64
	c := NewVSafeCache(8)
	c.compute = func(PowerModel, load.Trace) (Estimate, error) {
		computes.Add(1)
		<-gate
		return Estimate{}, wantErr
	}

	errs := make([]error, waiters+1)
	var wg sync.WaitGroup
	for i := 0; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.PG(m, tr)
		}(i)
	}
	waitForWaiters(t, c, waiters)
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("errored flight ran %d computations, want 1", got)
	}
	for i, err := range errs {
		if !errors.Is(err, wantErr) {
			t.Fatalf("caller %d got %v, want the leader's error", i, err)
		}
	}
	st := c.Stats()
	if st.Len != 0 {
		t.Fatalf("error result was cached: %+v", st)
	}
	if st.Coalesced != 0 {
		t.Fatalf("coalesced = %d, but sharing an error is not a coalesce", st.Coalesced)
	}
	if st.Misses != waiters+1 {
		t.Fatalf("misses = %d, want %d (leader + every errored waiter)", st.Misses, waiters+1)
	}

	// The failed flight left no residue: a fresh lookup recomputes.
	c.compute = nil
	want, err := VSafePG(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.PG(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-error lookup returned %+v, want %+v", got, want)
	}
}

// TestVSafeCacheWaiterCancel: cancelling a waiter's context abandons only
// that wait. The leader keeps computing, its result still lands in the
// cache, and other waiters still share it.
func TestVSafeCacheWaiterCancel(t *testing.T) {
	m, tr := cacheModel(), cacheTrace(30e-3)
	want, err := VSafePG(m, tr)
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	var computes atomic.Uint64
	c := NewVSafeCache(8)
	c.compute = func(m PowerModel, tr load.Trace) (Estimate, error) {
		computes.Add(1)
		<-gate
		return VSafePG(m, tr)
	}

	var leaderEst, patientEst Estimate
	var leaderErr, patientErr, cancelledErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderEst, leaderErr = c.PG(m, tr)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for computes.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan struct{})
	wg.Add(2)
	go func() { // the waiter that gives up
		defer wg.Done()
		defer close(cancelled)
		_, cancelledErr = c.PGCtx(ctx, m, tr)
	}()
	go func() { // the waiter that sees it through
		defer wg.Done()
		patientEst, patientErr = c.PG(m, tr)
	}()
	waitForWaiters(t, c, 2)
	cancel()
	// The cancelled waiter must return while the leader is still blocked at
	// the gate — that is the "abandons the wait without killing the
	// leader's compute" contract.
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return while the leader was still computing")
	}
	if !errors.Is(cancelledErr, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", cancelledErr)
	}
	close(gate)
	wg.Wait()

	if leaderErr != nil || patientErr != nil {
		t.Fatalf("leader err %v, patient err %v", leaderErr, patientErr)
	}
	if leaderEst != want || patientEst != want {
		t.Fatalf("leader %+v / patient %+v, want %+v", leaderEst, patientEst, want)
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("cancellation caused %d computations, want 1", got)
	}
	st := c.Stats()
	if st.Len != 1 {
		t.Fatalf("leader's result missing from the cache after a waiter cancel: %+v", st)
	}
	if st.InflightWaits != 2 || st.Coalesced != 1 {
		t.Fatalf("inflight_waits = %d, coalesced = %d, want 2 waits with 1 coalesce (the cancel is not one)", st.InflightWaits, st.Coalesced)
	}
	// And the line is genuinely resident: one more lookup is a pure hit.
	hitsBefore := st.Hits
	if got, err := c.PG(m, tr); err != nil || got != want {
		t.Fatalf("post-cancel lookup got %+v, %v", got, err)
	}
	if st := c.Stats(); st.Hits != hitsBefore+1 {
		t.Fatalf("post-cancel lookup did not hit: %+v", st)
	}
}

package core

import (
	"sync"
	"testing"

	"culpeo/internal/booster"
	"culpeo/internal/capacitor"
	"culpeo/internal/load"
)

func cacheModel() PowerModel {
	return PowerModel{
		C:     45e-3,
		ESR:   capacitor.Flat(5),
		VOut:  2.55,
		VOff:  1.6,
		VHigh: 2.56,
		Eff:   booster.DefaultEfficiency(),
	}
}

func cacheTrace(i float64) load.Trace {
	return load.Sample(load.NewUniform(i, 5e-3), 125e3)
}

// TestVSafeCacheReturnsExactValues: a cached result must be bit-identical
// to a direct computation — the property that keeps golden outputs stable
// with the cache always on.
func TestVSafeCacheReturnsExactValues(t *testing.T) {
	m, tr := cacheModel(), cacheTrace(30e-3)
	want, err := VSafePG(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewVSafeCache(8)
	for i := 0; i < 3; i++ {
		got, err := c.PG(m, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("lookup %d: cache returned %+v, direct %+v", i, got, want)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss + 2 hits", st)
	}
	if st.HitRate() < 0.6 || st.HitRate() > 0.7 {
		t.Fatalf("hit rate = %v, want 2/3", st.HitRate())
	}
}

// TestVSafeCacheKeySensitivity: any model or trace parameter that changes
// the result must change the key.
func TestVSafeCacheKeySensitivity(t *testing.T) {
	base, tr := cacheModel(), cacheTrace(30e-3)
	mods := map[string]PowerModel{}
	m := base
	m.C = 40e-3
	mods["capacitance"] = m
	m = base
	m.ESR = capacitor.Flat(7)
	mods["esr"] = m
	m = base
	m.Aging = capacitor.Aging{LifeFraction: 0.5}
	mods["aging"] = m
	m = base
	m.OmitESRLoss = true
	mods["omit-esr-loss"] = m
	m = base
	m.Eff.M += 0.01
	mods["efficiency"] = m

	baseFP := base.Fingerprint()
	for name, mod := range mods {
		if mod.Fingerprint() == baseFP {
			t.Errorf("%s change did not change the model fingerprint", name)
		}
	}
	if TraceFingerprint(tr) == TraceFingerprint(cacheTrace(31e-3)) {
		t.Error("different waveforms share a trace fingerprint")
	}
	// Same points, independently built curve: same characteristic.
	m = base
	m.ESR = capacitor.Flat(5)
	if m.Fingerprint() != baseFP {
		t.Error("identical ESR curves built separately must fingerprint equal")
	}
	// Renamed trace: same waveform, same key.
	renamed := tr
	renamed.ID = "other-name"
	if TraceFingerprint(renamed) != TraceFingerprint(tr) {
		t.Error("trace ID must not influence the fingerprint")
	}
}

// TestVSafeCacheLRUEviction: capacity bounds residency and evicts the
// least recently used line.
func TestVSafeCacheLRUEviction(t *testing.T) {
	m := cacheModel()
	c := NewVSafeCache(2)
	t1, t2, t3 := cacheTrace(10e-3), cacheTrace(20e-3), cacheTrace(30e-3)
	mustPG := func(tr load.Trace) {
		t.Helper()
		if _, err := c.PG(m, tr); err != nil {
			t.Fatal(err)
		}
	}
	mustPG(t1)
	mustPG(t2)
	mustPG(t1) // touch t1: t2 becomes LRU
	mustPG(t3) // evicts t2
	if st := c.Stats(); st.Len != 2 {
		t.Fatalf("len = %d, want 2", st.Len)
	}
	before := c.Stats().Misses
	mustPG(t2) // must recompute (its insert evicts t1, the then-LRU)
	if c.Stats().Misses != before+1 {
		t.Fatal("expected t2 to have been evicted as LRU")
	}
	before = c.Stats().Hits
	mustPG(t3) // still resident
	if c.Stats().Hits != before+1 {
		t.Fatal("expected t3 to still be resident")
	}
}

// TestVSafeCacheNilSafe: a nil cache computes without memoizing.
func TestVSafeCacheNilSafe(t *testing.T) {
	var c *VSafeCache
	m, tr := cacheModel(), cacheTrace(25e-3)
	want, err := VSafePG(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.PG(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("nil cache returned %+v, want %+v", got, want)
	}
	if st := c.Stats(); st != (VSafeCacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	c.Reset() // must not panic
}

// TestVSafeCacheErrorUncached: input-validation failures pass through and
// never occupy a line.
func TestVSafeCacheErrorUncached(t *testing.T) {
	c := NewVSafeCache(8)
	tr := load.Trace{Rate: 125e3, Samples: []float64{-1}}
	if _, err := c.PG(cacheModel(), tr); err == nil {
		t.Fatal("expected a negative-sample error")
	}
	if st := c.Stats(); st.Len != 0 {
		t.Fatalf("error result was cached: %+v", st)
	}
}

// TestVSafeCacheConcurrent hammers one cache from many goroutines over a
// small key set; run under -race this is the concurrency-safety proof.
func TestVSafeCacheConcurrent(t *testing.T) {
	m := cacheModel()
	c := NewVSafeCache(4)
	traces := []load.Trace{cacheTrace(10e-3), cacheTrace(20e-3), cacheTrace(30e-3)}
	want := make([]Estimate, len(traces))
	for i, tr := range traces {
		var err error
		want[i], err = VSafePG(m, tr)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (g + i) % len(traces)
				got, err := c.PG(m, traces[k])
				if err != nil {
					t.Error(err)
					return
				}
				if got != want[k] {
					t.Errorf("concurrent lookup returned %+v, want %+v", got, want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Hits+st.Misses != 8*50 {
		t.Fatalf("lookups accounted %d, want %d", st.Hits+st.Misses, 8*50)
	}
}

// TestVSafeCacheEvictionAccounting: single-threaded, every miss inserts,
// so the counters obey evictions = misses - len exactly. Cycling a keyspace
// far larger than capacity (the shard-undersized regime) keeps the LRU
// thrashing: every lookup is a miss.
func TestVSafeCacheEvictionAccounting(t *testing.T) {
	m := cacheModel()
	const capacity, keys = 4, 16
	c := NewVSafeCache(capacity)
	traces := make([]load.Trace, keys)
	for i := range traces {
		traces[i] = load.Sample(load.NewUniform(float64(i+1)*1e-3, 0.2e-3), 125e3)
	}
	for pass := 0; pass < 2; pass++ {
		for _, tr := range traces {
			if _, err := c.PG(m, tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 2*keys {
		t.Fatalf("cyclic access over an undersized LRU must always miss: %+v", st)
	}
	if st.Len != capacity {
		t.Fatalf("len = %d, want %d", st.Len, capacity)
	}
	if st.Evictions != st.Misses-uint64(st.Len) {
		t.Fatalf("evictions = %d, want misses-len = %d (%+v)", st.Evictions, st.Misses-uint64(st.Len), st)
	}
	c.Reset()
	if st := c.Stats(); st.Evictions != 0 || st.Len != 0 {
		t.Fatalf("Reset left residue: %+v", st)
	}
}

// TestVSafeCacheEvictionHammer is the concurrent-eviction proof at a
// shard-sized working set: capacity ≪ keyspace, many goroutines cycling
// overlapping key sequences, so inserts and evictions race constantly.
// Under -race this checks the structure; the assertions check the
// counters stay mutually consistent: every lookup is a hit or a miss,
// residency never exceeds capacity, and — because singleflight gives each
// key exactly one leader and each successful leader inserts exactly once —
// len+evictions equals misses exactly, even under concurrency (before
// coalescing, duplicate computes could lose the insert race and the
// invariant was only an inequality).
func TestVSafeCacheEvictionHammer(t *testing.T) {
	m := cacheModel()
	const (
		capacity   = 8
		keys       = 96
		goroutines = 8
		lookups    = 150
	)
	traces := make([]load.Trace, keys)
	want := make([]Estimate, keys)
	for i := range traces {
		traces[i] = load.Sample(load.NewUniform(float64(i+1)*0.5e-3, 0.2e-3), 125e3)
		var err error
		want[i], err = VSafePG(m, traces[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	c := NewVSafeCache(capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < lookups; i++ {
				// Strided walks with per-goroutine phase: plenty of overlap
				// (hits and compute races) and plenty of churn (evictions).
				k := (g*13 + i*7) % keys
				got, err := c.PG(m, traces[k])
				if err != nil {
					t.Error(err)
					return
				}
				if got != want[k] {
					t.Errorf("key %d: cache returned %+v, want %+v", k, got, want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	total := uint64(goroutines * lookups)
	if st.Hits+st.Misses != total {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d lookups", st.Hits, st.Misses, st.Hits+st.Misses, total)
	}
	if st.Len > capacity {
		t.Fatalf("len %d exceeds capacity %d", st.Len, capacity)
	}
	if st.Misses < keys {
		t.Fatalf("misses = %d, but %d distinct keys each require at least one", st.Misses, keys)
	}
	if uint64(st.Len)+st.Evictions != st.Misses {
		t.Fatalf("len(%d)+evictions(%d) != misses(%d): singleflight must make every miss insert exactly once", st.Len, st.Evictions, st.Misses)
	}
	if st.InflightWaits < st.Coalesced {
		t.Fatalf("coalesced(%d) exceeds inflight_waits(%d)", st.Coalesced, st.InflightWaits)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions with keyspace %d over capacity %d: %+v", keys, capacity, st)
	}
}

// TestInterfaceGeneration: estimate-visible mutations advance the counter;
// reads do not.
func TestInterfaceGeneration(t *testing.T) {
	iface, err := NewInterface(cacheModel(), stubProbe{})
	if err != nil {
		t.Fatal(err)
	}
	g0 := iface.Generation()
	iface.SetStatic("a", Estimate{VSafe: 2.0})
	if iface.Generation() == g0 {
		t.Fatal("SetStatic must advance the generation")
	}
	g1 := iface.Generation()
	iface.GetVSafe("a")
	iface.SeqVSafe([]TaskID{"a"})
	if iface.Generation() != g1 {
		t.Fatal("reads must not advance the generation")
	}
	iface.Invalidate()
	if iface.Generation() == g1 {
		t.Fatal("Invalidate must advance the generation")
	}
	g2 := iface.Generation()
	iface.SetBuffer("alt")
	if iface.Generation() == g2 {
		t.Fatal("SetBuffer must advance the generation")
	}
}

type stubProbe struct{}

func (stubProbe) Start()                  {}
func (stubProbe) End()                    {}
func (stubProbe) ReboundEnd() Observation { return Observation{VStart: 2, VMin: 1.9, VFinal: 2} }

package core

import (
	"math"
	"math/rand"
	"testing"

	"culpeo/internal/booster"
	"culpeo/internal/capacitor"
	"culpeo/internal/load"
)

// Property-based tests: the V_safe invariants must hold for *every* valid
// power system and load, not just the Capybara configuration the figures
// use. Models and loads are drawn from the physically plausible ranges of
// the paper's evaluation (millifarad buffers, ohms of ESR, a boost
// converter window around 2 V).

const propIters = 200

// randModel draws a valid PowerModel: C ∈ [1, 100] mF, flat ESR ∈ [0.1,
// 20] Ω, VOff ∈ [1.2, 1.8] V with a [0.5, 1.5] V operating window, and an
// increasing efficiency line (M > 0, the Culpeo-R assumption).
func randModel(rng *rand.Rand) PowerModel {
	vOff := 1.2 + 0.6*rng.Float64()
	return PowerModel{
		C:     1e-3 + 99e-3*rng.Float64(),
		ESR:   capacitor.Flat(0.1 + 19.9*rng.Float64()),
		VOut:  2.55,
		VOff:  vOff,
		VHigh: vOff + 0.5 + rng.Float64(),
		Eff: booster.EfficiencyLine{
			M:   0.05 + 0.25*rng.Float64(),
			B:   0.3 + 0.2*rng.Float64(),
			Min: 0.05,
			Max: 0.98,
		},
	}
}

// randLoad draws a uniform or pulse load: 1–50 mA for 1–100 ms.
func randLoad(rng *rand.Rand) load.Profile {
	i := 1e-3 + 49e-3*rng.Float64()
	t := 1e-3 + 99e-3*rng.Float64()
	if rng.Intn(2) == 0 {
		return load.NewUniform(i, t)
	}
	return load.NewPulse(i, t)
}

const propRate = 25e3 // trace sample rate; 25 kHz keeps 200 iterations fast

// TestPropVSafePGAboveVOff: a safe starting voltage can never sit below the
// power-off threshold — V_off is the recursion's base case and every step
// only adds requirement.
func TestPropVSafePGAboveVOff(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < propIters; iter++ {
		m := randModel(rng)
		task := randLoad(rng)
		est, err := VSafePG(m, load.Sample(task, propRate))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if est.VSafe < m.VOff {
			t.Fatalf("iter %d: VSafe %g below VOff %g (model %+v, load %s)",
				iter, est.VSafe, m.VOff, m, task.Name())
		}
		if est.VDelta < 0 || est.VE < 0 {
			t.Fatalf("iter %d: negative components %+v", iter, est)
		}
	}
}

// TestPropVSafePGMonotoneInEnergy: asking for more work can never lower the
// requirement. Both scalings grow task energy — a higher current also
// deepens the ESR drop, a longer run only adds steps to the reverse walk.
func TestPropVSafePGMonotoneInEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < propIters; iter++ {
		m := randModel(rng)
		i := 1e-3 + 30e-3*rng.Float64()
		dur := 1e-3 + 50e-3*rng.Float64()

		base, err := VSafePG(m, load.Sample(load.NewUniform(i, dur), propRate))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		moreCurrent, err := VSafePG(m, load.Sample(load.NewUniform(i*1.5, dur), propRate))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		longer, err := VSafePG(m, load.Sample(load.NewUniform(i, dur*2), propRate))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if moreCurrent.VSafe < base.VSafe-1e-9 {
			t.Fatalf("iter %d: 1.5× current lowered VSafe: %g -> %g (C=%g ESR=%g)",
				iter, base.VSafe, moreCurrent.VSafe, m.C, m.EffectiveESR(dur))
		}
		if longer.VSafe < base.VSafe-1e-9 {
			t.Fatalf("iter %d: 2× duration lowered VSafe: %g -> %g",
				iter, base.VSafe, longer.VSafe)
		}
	}
}

// TestPropVSafeMultiDominates: the sequence requirement covers every
// member. V_safe_multi must be at least each task's standalone V_safe
// (VE + VDelta + V_off) — otherwise a schedule certified feasible could
// still brown out inside one of its tasks.
func TestPropVSafeMultiDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < propIters; iter++ {
		vOff := 1.2 + 0.6*rng.Float64()
		n := 1 + rng.Intn(8)
		tasks := make([]TaskReq, n)
		for i := range tasks {
			tasks[i] = TaskReq{
				VE:     rng.Float64() * 0.3,
				VDelta: rng.Float64() * 0.5,
			}
		}
		multi := VSafeMulti(vOff, tasks)
		for i, tk := range tasks {
			single := tk.VE + tk.VDelta + vOff
			if multi < single-1e-9 {
				t.Fatalf("iter %d: VSafeMulti %g below task %d's own requirement %g",
					iter, multi, i, single)
			}
		}
		// And the recursion's own certificate must accept its output.
		if err := CheckSeq(vOff, tasks, VSafeSeq(vOff, tasks)); err != nil {
			t.Fatalf("iter %d: CheckSeq rejected VSafeSeq's output: %v", iter, err)
		}
	}
}

// TestPropVSafeSeqSuffixMonotone: prefix requirements dominate suffix
// requirements — running more of the sequence can only need more voltage.
func TestPropVSafeSeqSuffixMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < propIters; iter++ {
		vOff := 1.2 + 0.6*rng.Float64()
		n := 2 + rng.Intn(7)
		tasks := make([]TaskReq, n)
		for i := range tasks {
			tasks[i] = TaskReq{VE: rng.Float64() * 0.3, VDelta: rng.Float64() * 0.5}
		}
		vs := VSafeSeq(vOff, tasks)
		for i := 1; i < len(vs); i++ {
			if vs[i-1] < vs[i]-1e-12 {
				t.Fatalf("iter %d: requirement grew along the suffix: vs[%d]=%g < vs[%d]=%g",
					iter, i-1, vs[i-1], i, vs[i])
			}
		}
		if vs[len(vs)-1] < vOff {
			t.Fatalf("iter %d: final requirement %g below VOff", iter, vs[len(vs)-1])
		}
	}
}

// TestPropVSafeRAboveVOff: the runtime calculation shares the PG
// invariant — whatever was observed, the corrected estimate keeps the
// worst-case execution at or above V_off.
func TestPropVSafeRAboveVOff(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < propIters; iter++ {
		m := randModel(rng)
		// A physically ordered observation inside the operating window:
		// VMin ≤ VFinal ≤ VStart.
		vStart := m.VOff + m.OperatingRange()*rng.Float64()
		vFinal := m.VOff + (vStart-m.VOff)*rng.Float64()
		vMin := m.VOff*0.5 + (vFinal-m.VOff*0.5)*rng.Float64()
		est, err := VSafeR(m, Observation{VStart: vStart, VMin: vMin, VFinal: vFinal})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if est.VSafe < m.VOff-1e-9 {
			t.Fatalf("iter %d: VSafe %g below VOff %g (obs %.3f/%.3f/%.3f)",
				iter, est.VSafe, m.VOff, vStart, vMin, vFinal)
		}
		if math.IsNaN(est.VSafe) || math.IsInf(est.VSafe, 0) {
			t.Fatalf("iter %d: non-finite VSafe", iter)
		}
	}
}

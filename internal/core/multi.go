package core

import "fmt"

// TaskReq is the per-task information V_safe_multi composition needs: the
// voltage cost of the task's consumed energy, V(E_i), and its worst-case
// ESR drop, V_delta_i. Both come from an Estimate (VE and VDelta).
type TaskReq struct {
	ID     string
	VE     float64 // voltage consumed by the task's energy, additive model
	VDelta float64 // worst-case ESR drop while the task runs
}

// Req converts an Estimate into the sequencing requirement.
func (e Estimate) Req(id string) TaskReq {
	return TaskReq{ID: id, VE: e.VE, VDelta: e.VDelta}
}

// Penalty computes the corrective term of Section IV-A for a task with ESR
// drop vDelta followed by a task requiring vSafeNext:
//
//	penalty = V_off + V_delta − V_safe_next   if V_off + V_delta > V_safe_next
//	          0                               otherwise
//
// If the next task's requirement is already high enough to tolerate this
// task's transient drop, the rebound "repays" the penalty.
func Penalty(vOff, vDelta, vSafeNext float64) float64 {
	if p := vOff + vDelta - vSafeNext; p > 0 {
		return p
	}
	return 0
}

// VSafeSeq computes the safe starting voltage for every suffix of a task
// sequence via the paper's recursion:
//
//	V_safe_final = V(E_final) + penalty_final + V_off
//	V_safe_i     = V(E_i) + penalty_i + V_safe_{i+1}
//
// result[i] is the voltage required before task i so that tasks i..n-1 all
// complete; result[0] is V_safe_multi. An empty sequence yields nil.
func VSafeSeq(vOff float64, tasks []TaskReq) []float64 {
	if len(tasks) == 0 {
		return nil
	}
	out := make([]float64, len(tasks))
	next := vOff // base case: after the last task, voltage must be ≥ V_off
	for i := len(tasks) - 1; i >= 0; i-- {
		p := Penalty(vOff, tasks[i].VDelta, next)
		out[i] = tasks[i].VE + p + next
		next = out[i]
	}
	return out
}

// VSafeMulti returns the safe starting voltage for the whole sequence
// (Section IV-A's V_safe_multi).
func VSafeMulti(vOff float64, tasks []TaskReq) float64 {
	vs := VSafeSeq(vOff, tasks)
	if vs == nil {
		return vOff
	}
	return vs[0]
}

// CheckSeq verifies the paper's proof-sketch invariant on a computed
// sequence: starting at result[0] and paying each task's V(E) in turn, the
// running voltage never dips below V_off even at the bottom of each task's
// ESR drop. It returns an error naming the first violating task; a nil
// error certifies the schedule under the additive model.
func CheckSeq(vOff float64, tasks []TaskReq, vs []float64) error {
	if len(vs) != len(tasks) {
		return fmt.Errorf("core: %d requirements for %d tasks", len(vs), len(tasks))
	}
	if len(tasks) == 0 {
		return nil
	}
	v := vs[0]
	for i, tk := range tasks {
		if v+1e-12 < vs[i] {
			return fmt.Errorf("core: task %d (%s): voltage %g below requirement %g", i, tk.ID, v, vs[i])
		}
		// Bottom of the ESR drop while this task runs.
		if v-tk.VE-tk.VDelta < vOff-1e-9 {
			return fmt.Errorf("core: task %d (%s): ESR drop bottoms at %g, below V_off %g",
				i, tk.ID, v-tk.VE-tk.VDelta, vOff)
		}
		v -= tk.VE // the ESR component rebounds; only energy persists
		if v < vOff-1e-9 {
			return fmt.Errorf("core: task %d (%s): post-task voltage %g below V_off", i, tk.ID, v)
		}
	}
	return nil
}

// Feasible implements Theorem 1's corrected feasibility test for a task
// sequence: given the current buffer voltage v, the sequence is feasible iff
// v ≥ V_safe_multi. (The energy-positivity conjunct of the theorem is
// implied in the additive voltage model: V_safe_multi already reserves
// V(E_i) for every task above V_off.)
func Feasible(v, vOff float64, tasks []TaskReq) bool {
	return v >= VSafeMulti(vOff, tasks)
}

package core

import (
	"math"
	"testing"
)

func TestAdaptiveMarginNilAndZero(t *testing.T) {
	var nilM *AdaptiveMargin
	if nilM.Margin() != 0 || nilM.Failures() != 0 {
		t.Error("nil margin must read as zero")
	}
	nilM.Failure() // must not panic
	nilM.Success()

	var zero AdaptiveMargin
	zero.Failure()
	if zero.Margin() != 0 {
		t.Errorf("zero-value margin inflated to %g", zero.Margin())
	}
}

func TestAdaptiveMarginInflatesAndCaps(t *testing.T) {
	m := DefaultAdaptiveMargin()
	if m.Margin() != 20e-3 {
		t.Fatalf("base margin = %g", m.Margin())
	}
	want := []float64{40e-3, 80e-3, 160e-3, 200e-3, 200e-3}
	for i, w := range want {
		m.Failure()
		if got := m.Margin(); math.Abs(got-w) > 1e-12 {
			t.Fatalf("after %d failures margin = %g, want %g", i+1, got, w)
		}
	}
	if m.Failures() != len(want) {
		t.Errorf("failure count = %d", m.Failures())
	}
}

func TestAdaptiveMarginDecays(t *testing.T) {
	m := DefaultAdaptiveMargin()
	m.Failure()
	m.Failure() // 80 mV
	for i := 0; i < m.DecayAfter-1; i++ {
		m.Success()
	}
	if got := m.Margin(); math.Abs(got-80e-3) > 1e-12 {
		t.Fatalf("decayed before DecayAfter successes: %g", got)
	}
	m.Success() // third consecutive success: one decay step
	if got := m.Margin(); math.Abs(got-40e-3) > 1e-12 {
		t.Fatalf("after decay step margin = %g, want 40 mV", got)
	}
	// Decay never drops below Base.
	for i := 0; i < 20; i++ {
		m.Success()
	}
	if got := m.Margin(); math.Abs(got-m.Base) > 1e-12 {
		t.Errorf("decayed below base: %g", got)
	}
}

func TestAdaptiveMarginFloor(t *testing.T) {
	// With a zero base, the floor gives the first failure a real step.
	m := &AdaptiveMargin{Base: 0, Max: 100e-3, Floor: 5e-3, Inflate: 2, DecayAfter: 1}
	m.Failure()
	if got := m.Margin(); math.Abs(got-10e-3) > 1e-12 {
		t.Fatalf("first failure from floor = %g, want 10 mV", got)
	}
	// A failure resets the success streak.
	m.Success()
	m.Failure()
	if got := m.Margin(); got <= 5e-3 {
		t.Errorf("failure after decay should re-inflate, margin = %g", got)
	}
}

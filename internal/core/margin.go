package core

// AdaptiveMargin is a graceful-degradation guard on dispatch decisions: an
// extra voltage margin added to V_safe that inflates exponentially when a
// task suffers an unexpected power failure (the estimate or the measurement
// chain is wrong for the current conditions) and decays back toward the
// base after sustained success. It is the runtime's defense when the world
// the estimates were profiled in no longer matches the world the system
// runs in — aged capacitors, sagging harvesters, a biased ADC.
//
// The zero value is a usable no-op (all margins 0, never inflates past 0).
// Typical configuration is DefaultAdaptiveMargin. AdaptiveMargin is not
// safe for concurrent use; each scheduler or runtime owns its own.
type AdaptiveMargin struct {
	// Base is the steady-state margin (V) applied when everything works.
	Base float64
	// Max caps the inflated margin (V); 0 means Base (never inflate).
	Max float64
	// Floor is the smallest margin inflation starts from (V) when Base is
	// tiny or zero, so the first failure still produces a real step.
	Floor float64
	// Inflate is the multiplicative step applied per failure; values <= 1
	// disable inflation. A failed dispatch doubles the margin by default.
	Inflate float64
	// DecayAfter is how many consecutive successes earn one decay step
	// (margin divided by Inflate); 0 disables decay.
	DecayAfter int

	cur      float64 // current margin above zero; tracks [Base, Max]
	started  bool
	streak   int // consecutive successes since the last failure/decay
	failures int // lifetime failure count, for reporting
}

// DefaultAdaptiveMargin is tuned for the Capybara-class systems in this
// repo: 20 mV base (the dispatch margin the schedulers already use), a
// 200 mV ceiling (about half the worst ESR drop of the heavy radio tasks),
// doubling on failure from a 5 mV floor, decaying after 3 clean tasks.
func DefaultAdaptiveMargin() *AdaptiveMargin {
	return &AdaptiveMargin{Base: 20e-3, Max: 200e-3, Floor: 5e-3, Inflate: 2, DecayAfter: 3}
}

// Margin returns the guard voltage to add to V_safe right now.
func (m *AdaptiveMargin) Margin() float64 {
	if m == nil {
		return 0
	}
	if !m.started {
		return m.Base
	}
	return m.cur
}

// Failure records an unexpected power failure: the margin inflates
// multiplicatively (starting from max(Base, Floor)) up to Max, and the
// success streak resets.
func (m *AdaptiveMargin) Failure() {
	if m == nil {
		return
	}
	m.ensure()
	m.failures++
	m.streak = 0
	if m.Inflate <= 1 {
		return
	}
	next := m.cur
	if next < m.Floor {
		next = m.Floor
	}
	next *= m.Inflate
	if max := m.max(); next > max {
		next = max
	}
	if next > m.cur {
		m.cur = next
	}
}

// Success records a completed task. After DecayAfter consecutive successes
// the margin decays one multiplicative step back toward Base.
func (m *AdaptiveMargin) Success() {
	if m == nil {
		return
	}
	m.ensure()
	if m.DecayAfter <= 0 || m.Inflate <= 1 {
		return
	}
	m.streak++
	if m.streak < m.DecayAfter || m.cur <= m.Base {
		return
	}
	m.streak = 0
	m.cur /= m.Inflate
	if m.cur < m.Base {
		m.cur = m.Base
	}
}

// Failures returns the lifetime failure count.
func (m *AdaptiveMargin) Failures() int {
	if m == nil {
		return 0
	}
	return m.failures
}

// MarginSnapshot is the complete serializable state of an AdaptiveMargin —
// configuration and the four mutable fields — so a crash-recovery layer can
// restore a margin bit-exactly (Cur is the raw float64; JSON round-trips it
// at full precision).
type MarginSnapshot struct {
	Base       float64 `json:"base"`
	Max        float64 `json:"max"`
	Floor      float64 `json:"floor"`
	Inflate    float64 `json:"inflate"`
	DecayAfter int     `json:"decay_after"`
	Cur        float64 `json:"cur"`
	Started    bool    `json:"started,omitempty"`
	Streak     int     `json:"streak,omitempty"`
	Failures   int     `json:"failures,omitempty"`
}

// Snapshot captures the margin's full state.
func (m *AdaptiveMargin) Snapshot() MarginSnapshot {
	if m == nil {
		return MarginSnapshot{}
	}
	return MarginSnapshot{
		Base: m.Base, Max: m.Max, Floor: m.Floor, Inflate: m.Inflate,
		DecayAfter: m.DecayAfter,
		Cur:        m.cur, Started: m.started, Streak: m.streak, Failures: m.failures,
	}
}

// RestoreMargin rebuilds an AdaptiveMargin from a snapshot; Margin(),
// Failure() and Success() continue exactly where the captured one was.
func RestoreMargin(s MarginSnapshot) AdaptiveMargin {
	return AdaptiveMargin{
		Base: s.Base, Max: s.Max, Floor: s.Floor, Inflate: s.Inflate,
		DecayAfter: s.DecayAfter,
		cur:        s.Cur, started: s.Started, streak: s.Streak, failures: s.Failures,
	}
}

func (m *AdaptiveMargin) ensure() {
	if !m.started {
		m.cur = m.Base
		m.started = true
	}
}

func (m *AdaptiveMargin) max() float64 {
	if m.Max < m.Base {
		return m.Base
	}
	return m.Max
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPenalty(t *testing.T) {
	// Next task's requirement already tolerates the drop: no penalty.
	if got := Penalty(1.6, 0.2, 1.9); got != 0 {
		t.Errorf("penalty = %g, want 0", got)
	}
	// Next requirement too low: penalty tops it up to V_off + V_delta.
	if got := Penalty(1.6, 0.5, 1.9); !almost(got, 0.2, 1e-12) {
		t.Errorf("penalty = %g, want 0.2", got)
	}
	// Boundary (up to floating-point residue).
	if got := Penalty(1.6, 0.3, 1.9); got > 1e-12 {
		t.Errorf("boundary penalty = %g, want ~0", got)
	}
}

func TestVSafeSeqSingleTask(t *testing.T) {
	// One task: V_safe = V(E) + penalty + V_off with next = V_off.
	tasks := []TaskReq{{ID: "radio", VE: 0.1, VDelta: 0.4}}
	vs := VSafeSeq(1.6, tasks)
	if len(vs) != 1 {
		t.Fatal("length mismatch")
	}
	// penalty = V_off + 0.4 − 1.6 = 0.4; V_safe = 0.1 + 0.4 + 1.6 = 2.1.
	if !almost(vs[0], 2.1, 1e-12) {
		t.Errorf("vs[0] = %g, want 2.1", vs[0])
	}
	if got := VSafeMulti(1.6, tasks); !almost(got, 2.1, 1e-12) {
		t.Errorf("VSafeMulti = %g", got)
	}
}

func TestVSafeSeqReboundRepaysPenalty(t *testing.T) {
	// Figure 8(b) reasoning: a small-drop task followed by a demanding task
	// needs no penalty of its own, because the follower's requirement
	// already keeps the voltage high enough to tolerate the leader's dip.
	lead := TaskReq{ID: "sense", VE: 0.05, VDelta: 0.1}
	heavy := TaskReq{ID: "send", VE: 0.2, VDelta: 0.5}
	vs := VSafeSeq(1.6, []TaskReq{lead, heavy})
	// heavy alone: penalty 0.5, vs = 0.2+0.5+1.6 = 2.3.
	if !almost(vs[1], 2.3, 1e-12) {
		t.Fatalf("vs[1] = %g, want 2.3", vs[1])
	}
	// lead: V_off + 0.1 = 1.7 < 2.3 ⇒ penalty 0; vs = 0.05 + 2.3 = 2.35.
	if !almost(vs[0], 2.35, 1e-12) {
		t.Errorf("vs[0] = %g, want 2.35", vs[0])
	}
}

func TestVSafeSeqEmptyAndDegenerate(t *testing.T) {
	if VSafeSeq(1.6, nil) != nil {
		t.Error("empty sequence should be nil")
	}
	if got := VSafeMulti(1.6, nil); got != 1.6 {
		t.Errorf("empty VSafeMulti = %g, want V_off", got)
	}
	// Zero-cost tasks require exactly V_off.
	vs := VSafeSeq(1.6, []TaskReq{{}, {}})
	if !almost(vs[0], 1.6, 1e-12) {
		t.Errorf("zero tasks vs[0] = %g", vs[0])
	}
}

func TestCheckSeqAcceptsComputedSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		tasks := make([]TaskReq, n)
		for i := range tasks {
			tasks[i] = TaskReq{
				ID:     "t",
				VE:     rng.Float64() * 0.3,
				VDelta: rng.Float64() * 0.6,
			}
		}
		vs := VSafeSeq(1.6, tasks)
		if err := CheckSeq(1.6, tasks, vs); err != nil {
			t.Fatalf("trial %d: computed sequence rejected: %v", trial, err)
		}
	}
}

func TestCheckSeqRejectsUndershoot(t *testing.T) {
	tasks := []TaskReq{{ID: "radio", VE: 0.1, VDelta: 0.4}}
	vs := VSafeSeq(1.6, tasks)
	// Shave the requirement below what the drop needs: must be rejected.
	bad := []float64{vs[0] - 0.05}
	if err := CheckSeq(1.6, tasks, bad); err == nil {
		t.Error("undershooting sequence accepted")
	}
	// Length mismatch.
	if err := CheckSeq(1.6, tasks, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	// Empty is fine.
	if err := CheckSeq(1.6, nil, nil); err != nil {
		t.Errorf("empty sequence rejected: %v", err)
	}
}

func TestVSafeSeqProofSketchInvariant(t *testing.T) {
	// The paper's proof sketch: if the starting voltage meets V_safe_multi,
	// then for every task i the post-task voltage still meets the
	// requirement of task i+1, and no ESR dip crosses V_off.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		tasks := make([]TaskReq, n)
		for i := range tasks {
			tasks[i] = TaskReq{VE: rng.Float64() * 0.25, VDelta: rng.Float64() * 0.5}
		}
		vOff := 1.6
		vs := VSafeSeq(vOff, tasks)
		v := vs[0]
		for i, tk := range tasks {
			if v+1e-12 < vs[i] {
				return false
			}
			if v-tk.VE-tk.VDelta < vOff-1e-9 {
				return false
			}
			v -= tk.VE
		}
		return v >= vOff-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVSafeSeqMonotoneInTasks(t *testing.T) {
	// Adding a task never lowers the sequence requirement.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		tasks := make([]TaskReq, n)
		for i := range tasks {
			tasks[i] = TaskReq{VE: rng.Float64() * 0.25, VDelta: rng.Float64() * 0.5}
		}
		whole := VSafeMulti(1.6, tasks)
		suffix := VSafeMulti(1.6, tasks[1:])
		return whole >= suffix-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFeasible(t *testing.T) {
	tasks := []TaskReq{{ID: "radio", VE: 0.1, VDelta: 0.4}}
	need := VSafeMulti(1.6, tasks) // 2.1
	if !Feasible(need, 1.6, tasks) {
		t.Error("exactly-sufficient voltage should be feasible")
	}
	if Feasible(need-0.01, 1.6, tasks) {
		t.Error("insufficient voltage should be infeasible")
	}
}

func TestEstimateReq(t *testing.T) {
	e := Estimate{VSafe: 2.1, VDelta: 0.4, VE: 0.1}
	r := e.Req("x")
	if r.ID != "x" || r.VE != 0.1 || r.VDelta != 0.4 {
		t.Errorf("Req = %+v", r)
	}
}

func TestVSafeSeqFig5Scenario(t *testing.T) {
	// The CatNap failure of Figure 5: sense then radio in one discharge.
	// An energy-only model says V(E_sense)+V(E_radio)+V_off suffices; the
	// ESR-aware model demands the radio's penalty on top. The gap is
	// exactly the penalty term.
	vOff := 1.6
	sense := TaskReq{ID: "sense", VE: 0.08, VDelta: 0.05}
	radio := TaskReq{ID: "radio", VE: 0.12, VDelta: 0.45}
	energyOnly := sense.VE + radio.VE + vOff
	culpeo := VSafeMulti(vOff, []TaskReq{sense, radio})
	if !(culpeo > energyOnly+0.3) {
		t.Errorf("Culpeo %g should exceed energy-only %g by the radio penalty", culpeo, energyOnly)
	}
	wantGap := Penalty(vOff, radio.VDelta, vOff)
	if !almost(culpeo-energyOnly, wantGap, 1e-9) {
		t.Errorf("gap = %g, want the penalty %g", culpeo-energyOnly, wantGap)
	}
}

func TestVSafeSeqOrderMatters(t *testing.T) {
	// Running the high-drop task first (at high voltage) is cheaper than
	// running it last: testing "operating a radio at the end of a compute
	// task results in a higher V_safe than operating it at the beginning"
	// (Section III).
	vOff := 1.6
	compute := TaskReq{ID: "compute", VE: 0.3, VDelta: 0.02}
	radio := TaskReq{ID: "radio", VE: 0.05, VDelta: 0.45}
	radioFirst := VSafeMulti(vOff, []TaskReq{radio, compute})
	radioLast := VSafeMulti(vOff, []TaskReq{compute, radio})
	if !(radioLast > radioFirst) {
		t.Errorf("radio-last %g should exceed radio-first %g", radioLast, radioFirst)
	}
	if math.Abs((radioLast-radioFirst)-radio.VDelta+compute.VDelta) > 0.3 {
		// Loose sanity: the difference is driven by the penalty placement.
		t.Logf("order difference = %g", radioLast-radioFirst)
	}
}

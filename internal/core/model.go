// Package core implements the paper's primary contribution: the Culpeo
// voltage-aware charge model (Section IV) and the Culpeo hardware/software
// interface (Table I).
//
// The model produces V_safe — the minimum energy-buffer voltage at which a
// task can start and run to completion without the terminal voltage dipping
// below the power-off threshold V_off — accounting for both the voltage
// drop due to consumed energy and the transient drop due to the buffer's
// equivalent series resistance (ESR).
//
// Two mathematical implementations are provided, matching the paper:
//
//   - Culpeo-PG (profile guided, Section IV-C / Algorithm 1): a compile-time
//     analysis over a task's measured current trace plus a power-system
//     model.
//   - Culpeo-R (runtime, Section IV-D / Equations 1 and 3): an online
//     calculation from only three observed voltages (V_start, V_min,
//     V_final), cheap enough for a low-power MCU.
//
// Task sequences compose through the penalty recursion of Section IV-A,
// yielding V_safe_multi.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"culpeo/internal/booster"
	"culpeo/internal/capacitor"
	"culpeo/internal/load"
)

// PowerModel is what Culpeo knows about the target power system
// (Section IV-B): nominal capacitance from the datasheet, the measured
// ESR-versus-frequency curve, the output booster's regulated voltage and
// linear efficiency model, and the monitor window.
type PowerModel struct {
	C     float64                // nominal buffer capacitance (F)
	ESR   *capacitor.ESRCurve    // measured ESR vs frequency
	VOut  float64                // output booster regulated voltage
	VOff  float64                // power-off threshold
	VHigh float64                // fully-charged voltage
	Eff   booster.EfficiencyLine // η(V) of the output booster
	Aging capacitor.Aging        // optional lifetime drift applied to C/ESR

	// OmitESRLoss makes VSafePG account only the booster's input energy,
	// exactly as the paper's Algorithm 1 (line 6) does. The default (false)
	// additionally books the I²R heat dissipated in the ESR itself, which
	// removes the paper's documented Culpeo-PG failures on high-energy
	// loads ("likely due to compounding errors in the output booster
	// efficiency model" — a large share of which is this missing term).
	OmitESRLoss bool
}

// Validate reports whether the model is usable.
func (m PowerModel) Validate() error {
	switch {
	case m.C <= 0:
		return fmt.Errorf("core: non-positive capacitance %g", m.C)
	case m.ESR == nil:
		return errors.New("core: missing ESR curve")
	case m.VOut <= 0:
		return fmt.Errorf("core: non-positive VOut %g", m.VOut)
	case m.VOff <= 0 || m.VHigh <= m.VOff:
		return fmt.Errorf("core: invalid window [%g, %g]", m.VOff, m.VHigh)
	}
	return m.Eff.Validate()
}

// EffectiveC returns the capacitance after aging.
func (m PowerModel) EffectiveC() float64 { return m.C * m.Aging.CapacitanceFactor() }

// EffectiveESR returns the aged ESR for a load whose widest pulse lasts w
// seconds.
func (m PowerModel) EffectiveESR(w float64) float64 {
	return m.ESR.ForPulseWidth(w) * m.Aging.ESRFactor()
}

// OperatingRange returns VHigh − VOff.
func (m PowerModel) OperatingRange() float64 { return m.VHigh - m.VOff }

// Estimate is the output of a V_safe calculation.
type Estimate struct {
	VSafe  float64 // minimum safe starting voltage for the task
	VDelta float64 // worst-case ESR-induced drop the task produces
	// VE is the voltage "cost" of the task's consumed energy alone: the
	// amount the open-circuit voltage drops end to end when starting at
	// VSafe. Schedulers use it in the V_safe_multi composition.
	VE float64
}

// PGGuard is the profiling-precision guard added to every Culpeo-PG
// result. Algorithm 1's worst-case construction places the terminal voltage
// exactly at V_off at the bottom of the deepest drop; near that operating
// point the terminal's sensitivity to the starting voltage exceeds unity
// (the booster draws more current as the capacitor sags), so measurement
// noise in the profiled current trace would otherwise turn an exact
// estimate into a marginal one. Ten millivolts is about 1 % of the
// operating range — well inside the "performant" band of Figure 10.
const PGGuard = 10e-3

// VSafePG implements Algorithm 1: Culpeo-PG's reverse walk over a task's
// current trace. At each step it computes the energy drawn through the
// booster, estimates the capacitor voltage, derives the ESR drop from the
// booster's input current, and propagates the voltage requirement backwards
// with the penalty rule. The trace holds load current at V_out; the model
// supplies everything else.
func VSafePG(m PowerModel, tr load.Trace) (Estimate, error) {
	if err := m.Validate(); err != nil {
		return Estimate{}, err
	}
	if len(tr.Samples) == 0 {
		return Estimate{VSafe: m.VOff}, nil
	}
	dt := tr.Dt()
	c := m.EffectiveC()
	r := m.EffectiveESR(load.WidestPulse(tr, tr.Rate))

	// v is V[i+1] during the reverse walk; the base case is V_off: after the
	// final step the voltage must still be at the operating threshold.
	v := m.VOff
	var maxVDelta float64
	var sumVE float64
	for i := len(tr.Samples) - 1; i >= 0; i-- {
		iLoad := tr.Samples[i]
		if iLoad < 0 {
			return Estimate{}, fmt.Errorf("core: negative current sample %d", i)
		}
		// ESTVCAP: estimate the terminal voltage during this step. When the
		// task starts at exactly V_safe, the buffer's open-circuit voltage
		// sits near the requirement of the next step (V[i+1]) and the
		// terminal sags below it by the ESR drop. As V_cap decreases, the
		// booster draws more current, which deepens the drop — so iterate
		// the coupled estimate, never assuming a terminal above V_off's
		// floor (the worst case the estimate must survive).
		vnext := v
		if vnext < m.VOff {
			vnext = m.VOff
		}
		vcap := vnext
		var eta, iin, vdelta float64
		for k := 0; k < 12; k++ {
			eta = m.Eff.At(vcap)
			iin = iLoad * m.VOut / (eta * vcap)
			vdelta = iin * r
			est := vnext - vdelta
			if est < m.VOff {
				est = m.VOff
			}
			vcap = est
		}
		// Energy removed from storage by step i. The booster's input energy
		// is I_in·V_cap·dt = I·V_out·dt/η; the ESR additionally dissipates
		// I_in²·R·dt as heat, so the storage sees I_in·(V_cap + V_delta)·dt
		// — the input current times the open-circuit voltage.
		e := iLoad * m.VOut * dt / eta
		if !m.OmitESRLoss {
			e += iin * iin * r * dt
		}
		if vdelta > maxVDelta {
			maxVDelta = vdelta
		}
		// Voltage penalty: the starting voltage must both survive this
		// step's ESR drop and satisfy the next step's requirement.
		vpenalty := m.VOff + vdelta
		if v > vpenalty {
			vpenalty = v
		}
		next := math.Sqrt(2*e/c + vpenalty*vpenalty)
		sumVE += next - vpenalty
		v = next
	}
	// The guard keeps the worst-case construction off the exact cliff; see
	// PGGuard. A result above VHigh is still valid output — the caller
	// compares against VHigh to learn the task cannot run on this buffer
	// (Section III: "if a task's V_safe value is higher than what the
	// energy buffer can provide, the programmer knows they must correct the
	// task division").
	return Estimate{VSafe: v + PGGuard, VDelta: maxVDelta, VE: sumVE}, nil
}

// Observation is what Culpeo-R's profiling captures for one task execution:
// the starting voltage, the minimum voltage seen while the task ran, and the
// final voltage after the post-task rebound settled (Figure 8a).
type Observation struct {
	VStart float64
	VMin   float64
	VFinal float64
}

// Validate checks physical ordering: VMin ≤ VFinal ≤ VStart.
func (o Observation) Validate() error {
	if o.VMin > o.VFinal+1e-9 {
		return fmt.Errorf("core: observation VMin %g above VFinal %g", o.VMin, o.VFinal)
	}
	if o.VFinal > o.VStart+1e-9 {
		return fmt.Errorf("core: observation VFinal %g above VStart %g", o.VFinal, o.VStart)
	}
	if o.VMin <= 0 {
		return fmt.Errorf("core: non-positive VMin %g", o.VMin)
	}
	return nil
}

// VDelta returns the observed ESR drop: the rebound from the in-task
// minimum to the settled final voltage.
func (o Observation) VDelta() float64 { return o.VFinal - o.VMin }

// VSafeR implements the Culpeo-R calculation (Section IV-D): from one
// profiled execution at an arbitrary starting voltage, produce a V_safe
// estimate valid for a worst-case execution that ends exactly at V_off.
//
//	V_delta_safe = V_delta · (V_min·η(V_min)) / (V_off·η(V_off))   (Eq. 1c)
//	V_safe_E²    = η(V_start)/η(V_off) · (V_start² − V_final²) + V_off²  (Eq. 3)
//	V_safe       = V_safe_E + V_delta_safe
func VSafeR(m PowerModel, o Observation) (Estimate, error) {
	if err := m.Validate(); err != nil {
		return Estimate{}, err
	}
	if err := o.Validate(); err != nil {
		return Estimate{}, err
	}
	vdelta := o.VDelta()
	// Equation 1c: scale the observed drop to the worst case at V_off.
	// Efficiency falls as voltage falls, so the same load at V_off draws
	// more current and drops further.
	vdeltaSafe := vdelta * (o.VMin * m.Eff.At(o.VMin)) / (m.VOff * m.Eff.At(m.VOff))

	// Equation 3: energy-equivalent starting voltage with η collapsed to
	// known constants.
	vsafeE2 := m.Eff.At(o.VStart)/m.Eff.At(m.VOff)*(o.VStart*o.VStart-o.VFinal*o.VFinal) + m.VOff*m.VOff
	if vsafeE2 < 0 {
		vsafeE2 = m.VOff * m.VOff
	}
	vsafeE := math.Sqrt(vsafeE2)

	return Estimate{
		VSafe:  vsafeE + vdeltaSafe,
		VDelta: vdeltaSafe,
		VE:     vsafeE - m.VOff,
	}, nil
}

// VSafeRCtx is VSafeR honouring a request context: a context already
// expired (or cancelled) returns ctx.Err() unwrapped, so callers can
// classify deadline against input errors. The evaluation itself is a
// handful of float operations — the check is the useful part; it makes a
// serving deadline observable on this path exactly as on the PG path.
func VSafeRCtx(ctx context.Context, m PowerModel, o Observation) (Estimate, error) {
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	return VSafeR(m, o)
}

// VSafeE2Exact numerically solves Equation 2c without collapsing η(V) to a
// constant: find V_safe_E such that ∫_{V_off}^{V_safe_E} η(V)·V dV equals
// ∫_{V_final}^{V_start} η(V)·V dV. The paper avoids this on-device because
// it needs cubic roots; we provide it as the reference the Eq. 3
// approximation is benchmarked against (ablation).
func VSafeE2Exact(m PowerModel, o Observation) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := o.Validate(); err != nil {
		return 0, err
	}
	target := etaVIntegral(m.Eff, o.VFinal, o.VStart)
	// Bisect V in [VOff, 2·VHigh] for ∫_{VOff}^{V} η·v dv = target.
	lo, hi := m.VOff, 2*m.VHigh
	for i := 0; i < 80; i++ {
		mid := 0.5 * (lo + hi)
		if etaVIntegral(m.Eff, m.VOff, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// etaVIntegral computes ∫_a^b η(v)·v dv for the clamped-line efficiency by
// Simpson's rule on a fine grid (the integrand is piecewise smooth).
func etaVIntegral(eff booster.EfficiencyLine, a, b float64) float64 {
	if b <= a {
		return 0
	}
	const n = 256 // even
	h := (b - a) / n
	sum := eff.At(a)*a + eff.At(b)*b
	for i := 1; i < n; i++ {
		v := a + float64(i)*h
		w := 2.0
		if i%2 == 1 {
			w = 4.0
		}
		sum += w * eff.At(v) * v
	}
	return sum * h / 3
}

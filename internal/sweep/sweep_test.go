package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGridShape(t *testing.T) {
	g := NewGrid(3, 4, 2)
	if g.Size() != 24 {
		t.Fatalf("size = %d", g.Size())
	}
	// Row-major: last dimension fastest.
	if got := g.Coords(0); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Errorf("coords(0) = %v", got)
	}
	if got := g.Coords(1); got[0] != 0 || got[1] != 0 || got[2] != 1 {
		t.Errorf("coords(1) = %v", got)
	}
	if got := g.Coords(23); got[0] != 2 || got[1] != 3 || got[2] != 1 {
		t.Errorf("coords(23) = %v", got)
	}
	// Enumeration matches the nested loops it replaces.
	i := 0
	for a := 0; a < 3; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 2; c++ {
				got := g.Coords(i)
				if got[0] != a || got[1] != b || got[2] != c {
					t.Fatalf("coords(%d) = %v, want [%d %d %d]", i, got, a, b, c)
				}
				i++
			}
		}
	}
}

func TestGridDegenerate(t *testing.T) {
	if NewGrid().Size() != 1 {
		t.Error("zero-dimension grid should have one cell")
	}
	if NewGrid(3, 0, 2).Size() != 0 {
		t.Error("zero extent should empty the grid")
	}
	if Of(5).Size() != 5 {
		t.Error("Of(5) size")
	}
}

func TestRunOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Run(context.Background(), Of(100), func(_ context.Context, c Cell) (int, error) {
			return c.Index * c.Index, nil
		}, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int64
	_, err := Run(context.Background(), Of(50), func(_ context.Context, c Cell) (struct{}, error) {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	}, Workers(workers))
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Errorf("observed %d concurrent cells, bound %d", m, workers)
	}
}

func TestRunError(t *testing.T) {
	sentinel := errors.New("boom")
	out, err := Run(context.Background(), NewGrid(4, 5), func(_ context.Context, c Cell) (int, error) {
		if c.Coords[0] == 2 && c.Coords[1] == 3 {
			return 0, sentinel
		}
		return 1, nil
	}, Workers(4))
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("not a CellError: %v", err)
	}
	if ce.Index != 13 || ce.Coords[0] != 2 || ce.Coords[1] != 3 {
		t.Errorf("cell error position: %+v", ce)
	}
	if !strings.Contains(err.Error(), "cell 13") {
		t.Errorf("error message should name the cell: %v", err)
	}
	_ = out
}

func TestRunLowestErrorWins(t *testing.T) {
	// With many failing cells the reported one is the lowest index, no
	// matter how the pool schedules them.
	for trial := 0; trial < 5; trial++ {
		_, err := Run(context.Background(), Of(64), func(_ context.Context, c Cell) (int, error) {
			if c.Index%7 == 3 { // 3, 10, 17, ...
				return 0, fmt.Errorf("cell failure %d", c.Index)
			}
			return 0, nil
		}, Workers(8))
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v", err)
		}
		if ce.Index != 3 {
			t.Fatalf("reported cell %d, want 3", ce.Index)
		}
	}
}

func TestRunPanicRecovered(t *testing.T) {
	_, err := Run(context.Background(), Of(8), func(_ context.Context, c Cell) (int, error) {
		if c.Index == 5 {
			panic("kaboom")
		}
		return 0, nil
	}, Workers(2))
	if err == nil || !strings.Contains(err.Error(), "panic: kaboom") {
		t.Fatalf("panic not surfaced: %v", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != 5 {
		t.Fatalf("panic cell not identified: %v", err)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	_, err := Run(ctx, Of(1000), func(ctx context.Context, c Cell) (int, error) {
		started.Add(1)
		once.Do(func() { cancel(); close(release) })
		<-release
		return 0, nil
	}, Workers(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n := started.Load(); n > 10 {
		t.Errorf("cancellation did not stop the feed: %d cells started", n)
	}
}

func TestRunEmptyGrid(t *testing.T) {
	out, err := Run(context.Background(), NewGrid(0, 4), func(_ context.Context, c Cell) (int, error) {
		t.Fatal("cell ran on empty grid")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMap(t *testing.T) {
	items := []string{"a", "bb", "ccc"}
	out, err := Map(context.Background(), items, func(_ context.Context, i int, s string) (int, error) {
		return len(s) + i, nil
	}, Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 3, 5} {
		if out[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
}

func TestWorkersFromContext(t *testing.T) {
	ctx := WithWorkers(context.Background(), 7)
	if WorkersFromContext(ctx) != 7 {
		t.Error("context carrier lost the count")
	}
	if WorkersFromContext(context.Background()) != 0 {
		t.Error("bare context should report 0")
	}
	// The option overrides the context.
	if n := resolveWorkers(ctx, options{workers: 2}, 100); n != 2 {
		t.Errorf("option should win: %d", n)
	}
	if n := resolveWorkers(ctx, options{}, 100); n != 7 {
		t.Errorf("context should win over default: %d", n)
	}
	// Never more workers than cells.
	if n := resolveWorkers(ctx, options{}, 3); n != 3 {
		t.Errorf("workers should clamp to cells: %d", n)
	}
}

func TestRunDeterministicWithSeededCells(t *testing.T) {
	// The engine's contract: per-cell seeding makes output independent of
	// the worker count. This is the in-miniature version of the golden
	// suite in internal/expt.
	run := func(workers int) []int64 {
		out, err := Run(context.Background(), Of(32), func(_ context.Context, c Cell) (int64, error) {
			// Deterministic per-cell pseudo-randomness seeded by index.
			x := int64(c.Index)*6364136223846793005 + 1442695040888963407
			return x ^ (x >> 31), nil
		}, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := run(1)
	for _, w := range []int{2, 4, 16} {
		got := run(w)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d diverged at cell %d", w, i)
			}
		}
	}
}

func TestMapChunks(t *testing.T) {
	items := make([]int, 23)
	for i := range items {
		items[i] = i * 10
	}
	out, err := MapChunks(context.Background(), items, 5, func(_ context.Context, start int, chunk []int) ([]int, error) {
		res := make([]int, len(chunk))
		for j, v := range chunk {
			if v != (start+j)*10 {
				t.Errorf("chunk at %d: element %d is %d", start, j, v)
			}
			res[j] = v + 1
		}
		return res, nil
	}, Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(items) {
		t.Fatalf("got %d results, want %d", len(out), len(items))
	}
	for i, v := range out {
		if v != i*10+1 {
			t.Errorf("out[%d] = %d, want %d", i, v, i*10+1)
		}
	}

	// Degenerate sizes clamp to 1; empty input is empty output.
	if out, err := MapChunks(context.Background(), items[:3], 0, func(_ context.Context, _ int, ch []int) ([]int, error) {
		if len(ch) != 1 {
			t.Errorf("size 0 should clamp to singleton chunks, got %d", len(ch))
		}
		return ch, nil
	}); err != nil || len(out) != 3 {
		t.Fatalf("clamped run: out=%v err=%v", out, err)
	}
	if out, err := MapChunks(context.Background(), []int(nil), 8, func(_ context.Context, _ int, ch []int) ([]int, error) {
		return ch, nil
	}); err != nil || len(out) != 0 {
		t.Fatalf("empty run: out=%v err=%v", out, err)
	}
}

func TestMapChunksLengthContract(t *testing.T) {
	items := []int{1, 2, 3, 4}
	_, err := MapChunks(context.Background(), items, 2, func(_ context.Context, _ int, chunk []int) ([]int, error) {
		return chunk[:1], nil // short: violates the one-result-per-item contract
	})
	if err == nil {
		t.Fatal("short chunk result accepted")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CellError, got %T: %v", err, err)
	}
}

// Package sweep is the parallel experiment engine behind the repository's
// figure and table drivers. Every evaluation element is a grid of
// independent cells — capacitor bank × load profile × estimator × trial —
// and each cell is one isolated powersys simulation, so the sweep is
// embarrassingly parallel. The engine runs cells on a bounded worker pool
// while keeping the result order (and therefore every rendered table)
// byte-identical to the serial path; the golden-file suite in internal/expt
// enforces that invariant at workers=1, 4 and NumCPU.
//
// Rules for cell functions:
//
//   - a cell owns everything it mutates: its *powersys.System, its
//     *rand.Rand, its policies and devices. Shared inputs (configs, power
//     models, part catalogues) must be treated as read-only.
//   - cells must not communicate; the only output is the return value.
//   - determinism comes from seeding by cell index, never from scheduling.
//
// Worker count resolves in priority order: the Workers option on the call,
// the value carried by WithWorkers on the context, then GOMAXPROCS.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Grid is a rectangular index space of experiment cells: the cartesian
// product of its dimensions, enumerated row-major (the last dimension
// varies fastest), exactly like the nested loops it replaces.
type Grid struct {
	dims []int
	size int
}

// NewGrid builds a grid from dimension extents. A zero-dimension grid has
// one cell; any non-positive extent yields an empty grid.
func NewGrid(dims ...int) Grid {
	size := 1
	for _, d := range dims {
		if d <= 0 {
			return Grid{dims: append([]int(nil), dims...), size: 0}
		}
		size *= d
	}
	return Grid{dims: append([]int(nil), dims...), size: size}
}

// Of is shorthand for the 1-D grid over n items.
func Of(n int) Grid { return NewGrid(n) }

// Size returns the number of cells.
func (g Grid) Size() int { return g.size }

// Dims returns the dimension extents.
func (g Grid) Dims() []int { return append([]int(nil), g.dims...) }

// Coords converts a flat cell index to per-dimension coordinates.
func (g Grid) Coords(index int) []int {
	out := make([]int, len(g.dims))
	for i := len(g.dims) - 1; i >= 0; i-- {
		out[i] = index % g.dims[i]
		index /= g.dims[i]
	}
	return out
}

// Cell identifies one unit of work inside a grid.
type Cell struct {
	Index  int   // flat index in [0, grid.Size())
	Coords []int // per-dimension coordinates, len == len(grid.Dims())
}

// options collects per-call tuning.
type options struct {
	workers int
}

// Option tunes one Run/Map call.
type Option func(*options)

// Workers bounds the worker pool for this call. n < 1 means "use the
// context / GOMAXPROCS default".
func Workers(n int) Option { return func(o *options) { o.workers = n } }

type ctxKey struct{}

// WithWorkers returns a context carrying a default worker count for every
// sweep launched under it — how the CLIs' -workers flag reaches the
// drivers without threading a parameter through every signature.
func WithWorkers(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, ctxKey{}, n)
}

// WorkersFromContext reports the worker count carried by ctx, or 0.
func WorkersFromContext(ctx context.Context) int {
	if n, ok := ctx.Value(ctxKey{}).(int); ok {
		return n
	}
	return 0
}

func resolveWorkers(ctx context.Context, o options, cells int) int {
	n := o.workers
	if n < 1 {
		n = WorkersFromContext(ctx)
	}
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > cells {
		n = cells
	}
	if n < 1 {
		n = 1
	}
	return n
}

// CellError wraps a cell's failure with its position so a sweep over
// hundreds of configurations names the one that broke.
type CellError struct {
	Index  int
	Coords []int
	Err    error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("sweep: cell %d %v: %v", e.Index, e.Coords, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// Run executes fn once per grid cell on a bounded worker pool and returns
// the results indexed by cell — out[i] is fn's value for cell i, so the
// output is independent of scheduling. The first failing cell (lowest
// index, deterministically — not first in wall-clock) is returned as a
// *CellError and cancels the remaining cells. A panicking cell is recovered
// and surfaced the same way. Run honours ctx: cancellation stops new cells
// from starting and is returned as ctx.Err().
func Run[T any](ctx context.Context, g Grid, fn func(ctx context.Context, c Cell) (T, error), opts ...Option) ([]T, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	n := g.Size()
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers := resolveWorkers(ctx, o, n)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n) // per-cell, so error choice is deterministic
	var wg sync.WaitGroup
	next := make(chan int)

	cell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &CellError{Index: i, Coords: g.Coords(i), Err: fmt.Errorf("panic: %v", r)}
				cancel()
			}
		}()
		v, err := fn(ctx, Cell{Index: i, Coords: g.Coords(i)})
		if err != nil {
			errs[i] = &CellError{Index: i, Coords: g.Coords(i), Err: err}
			cancel()
			return
		}
		out[i] = v
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				cell(i)
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	// Prefer the lowest-index root-cause failure: cells that merely noticed
	// the cancellation triggered by another cell's error are secondary.
	var secondary error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if secondary == nil {
				secondary = err
			}
			continue
		}
		return out, err
	}
	if secondary != nil {
		return out, secondary
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// Map runs fn over a slice with bounded concurrency, preserving order:
// out[i] corresponds to items[i]. It is the 1-D convenience form of Run.
func Map[I, O any](ctx context.Context, items []I, fn func(ctx context.Context, index int, item I) (O, error), opts ...Option) ([]O, error) {
	return Run(ctx, Of(len(items)), func(ctx context.Context, c Cell) (O, error) {
		return fn(ctx, c.Index, items[c.Index])
	}, opts...)
}

// MapChunks partitions items into contiguous chunks of at most size
// elements and runs fn once per chunk on the worker pool, preserving
// order: the returned slice is the concatenation of the chunk results, so
// out[i] corresponds to items[i] exactly as with Map. It is the
// granularity-tuned form of Map for work whose per-item cost is too small
// to amortize a dispatch — or that gets cheaper in bulk, like the serving
// layer's batch simulations, where each chunk becomes one SoA lockstep
// batch run. fn receives the chunk's starting index into items and must
// return exactly len(chunk) results; anything else is an error.
func MapChunks[I, O any](ctx context.Context, items []I, size int, fn func(ctx context.Context, start int, chunk []I) ([]O, error), opts ...Option) ([]O, error) {
	if size < 1 {
		size = 1
	}
	n := len(items)
	chunks := (n + size - 1) / size
	per, err := Run(ctx, Of(chunks), func(ctx context.Context, c Cell) ([]O, error) {
		lo := c.Index * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		out, err := fn(ctx, lo, items[lo:hi])
		if err != nil {
			return nil, err
		}
		if len(out) != hi-lo {
			return nil, fmt.Errorf("chunk [%d,%d) returned %d results, want %d", lo, hi, len(out), hi-lo)
		}
		return out, nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	out := make([]O, 0, n)
	for _, ch := range per {
		out = append(out, ch...)
	}
	return out, nil
}

package trace

import (
	"math"
	"strings"
	"testing"
)

func fill(r *Recorder, n int) {
	for i := 0; i < n; i++ {
		t := float64(i) * 1e-3
		r.Add(Sample{T: t, VTerm: 2.0 + 0.1*math.Sin(float64(i)), VOC: 2.1, ILoad: 0.01, IIn: 0.012})
	}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(1)
	if _, ok := r.Last(); ok {
		t.Error("empty recorder should have no last sample")
	}
	if _, ok := r.First(); ok {
		t.Error("empty recorder should have no first sample")
	}
	if _, ok := r.At(0); ok {
		t.Error("empty recorder should have no At sample")
	}
	if !math.IsInf(r.MinVTerm(), 1) || !math.IsInf(r.MaxVTerm(), -1) {
		t.Error("empty min/max should be infinities")
	}
	fill(r, 100)
	if r.Len() != 100 {
		t.Fatalf("len = %d", r.Len())
	}
	first, _ := r.First()
	last, _ := r.Last()
	if first.T != 0 || last.T != 99e-3 {
		t.Errorf("first/last T = %g/%g", first.T, last.T)
	}
	if r.MinVTerm() < 1.9 || r.MaxVTerm() > 2.1 {
		t.Error("min/max out of expected band")
	}
}

func TestRecorderDecimation(t *testing.T) {
	r := NewRecorder(10)
	fill(r, 100)
	if r.Len() != 10 {
		t.Fatalf("decimated len = %d, want 10", r.Len())
	}
	// Zero/negative Every behaves like 1.
	r2 := NewRecorder(0)
	fill(r2, 5)
	if r2.Len() != 5 {
		t.Errorf("Every=0 len = %d, want 5", r2.Len())
	}
}

func TestRecorderAt(t *testing.T) {
	r := NewRecorder(1)
	fill(r, 100)
	s, ok := r.At(50.4e-3)
	if !ok {
		t.Fatal("At failed")
	}
	if math.Abs(s.T-50e-3) > 1e-12 {
		t.Errorf("nearest sample T = %g, want 0.050", s.T)
	}
	// Clamps at the ends.
	s, _ = r.At(-1)
	if s.T != 0 {
		t.Error("At before start should clamp to first")
	}
	s, _ = r.At(10)
	if s.T != 99e-3 {
		t.Error("At past end should clamp to last")
	}
	// Rounds to the closer neighbour above.
	s, _ = r.At(50.6e-3)
	if math.Abs(s.T-51e-3) > 1e-12 {
		t.Errorf("nearest-above failed: %g", s.T)
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(1)
	fill(r, 10)
	r.Reset()
	if r.Len() != 0 {
		t.Error("reset did not clear")
	}
	fill(r, 3)
	if r.Len() != 3 {
		t.Error("reuse after reset broken")
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(1)
	r.Add(Sample{T: 0.001, VTerm: 2.5, VOC: 2.51, ILoad: 0.05, IIn: 0.06})
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_s,") {
		t.Error("missing header")
	}
	if !strings.Contains(lines[1], "0.001") || !strings.Contains(lines[1], "2.5") {
		t.Errorf("row content wrong: %q", lines[1])
	}
}

func TestPlotRendersShape(t *testing.T) {
	r := NewRecorder(1)
	// A dip: 2.4 → 1.9 → 2.3.
	for i := 0; i < 300; i++ {
		v := 2.4
		if i >= 100 && i < 200 {
			v = 1.9
		} else if i >= 200 {
			v = 2.3
		}
		r.Add(Sample{T: float64(i) * 1e-3, VTerm: v})
	}
	var sb strings.Builder
	if err := r.Plot(&sb, PlotOptions{Width: 60, Height: 12, Marker: 1.6, MarkerLabel: "V_off"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "#") {
		t.Error("no plotted samples")
	}
	if !strings.Contains(out, "V_off") {
		t.Error("marker label missing")
	}
	if !strings.Contains(out, "V |") && !strings.Contains(out, "V  |") {
		t.Error("axis labels missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12+2 { // rows + axis + time labels
		t.Errorf("plot lines = %d", len(lines))
	}
	// The dip must appear: a '#' in the lower half of the chart, in the
	// middle third of the time axis.
	foundDip := false
	for _, row := range lines[6:10] {
		if len(row) > 50 && strings.Contains(row[30:50], "#") {
			foundDip = true
		}
	}
	if !foundDip {
		t.Error("dip not visible in lower rows")
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	r := NewRecorder(1)
	var sb strings.Builder
	if err := r.Plot(&sb, PlotOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no samples") {
		t.Error("empty plot should say so")
	}
	// A single flat sample must not divide by zero.
	r.Add(Sample{T: 1, VTerm: 2.0})
	sb.Reset()
	if err := r.Plot(&sb, PlotOptions{Width: 10, Height: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "#") {
		t.Error("single sample not plotted")
	}
}

func TestPlotPinnedAxis(t *testing.T) {
	r := NewRecorder(1)
	r.Add(Sample{T: 0, VTerm: 2.0})
	r.Add(Sample{T: 1, VTerm: 2.1})
	var sb strings.Builder
	if err := r.Plot(&sb, PlotOptions{Width: 20, Height: 6, VMin: 1.6, VMax: 2.56}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2.560V") || !strings.Contains(sb.String(), "1.600V") {
		t.Error("pinned axis labels missing")
	}
}

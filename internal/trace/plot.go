package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PlotOptions configures the ASCII rendering of a voltage trace.
type PlotOptions struct {
	// Width is the number of time columns; 0 = 72.
	Width int
	// Height is the number of voltage rows; 0 = 16.
	Height int
	// VMin/VMax pin the vertical axis; both zero = auto-scale with margin.
	VMin, VMax float64
	// Marker draws a horizontal reference line at this voltage (e.g.
	// V_off); NaN/0 disables it.
	Marker float64
	// MarkerLabel annotates the reference line.
	MarkerLabel string
}

// Plot renders the recorded terminal voltage as an ASCII chart — the
// quick-look view an engineer gets from an oscilloscope. Each column
// aggregates the samples in its time slice; the band between the slice's
// min and max voltage is filled, so ESR drops show as solid dips.
func (r *Recorder) Plot(w io.Writer, opt PlotOptions) error {
	samples := r.Samples()
	if len(samples) == 0 {
		_, err := fmt.Fprintln(w, "(no samples)")
		return err
	}
	width := opt.Width
	if width <= 0 {
		width = 72
	}
	height := opt.Height
	if height <= 0 {
		height = 16
	}

	lo, hi := opt.VMin, opt.VMax
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, s := range samples {
			lo = math.Min(lo, s.VTerm)
			hi = math.Max(hi, s.VTerm)
		}
		if opt.Marker != 0 && !math.IsNaN(opt.Marker) {
			lo = math.Min(lo, opt.Marker)
			hi = math.Max(hi, opt.Marker)
		}
		pad := (hi - lo) * 0.08
		if pad == 0 {
			pad = 0.01
		}
		lo -= pad
		hi += pad
	}
	if hi <= lo {
		hi = lo + 1e-6
	}

	// Column aggregation: per-column [min, max] voltage band.
	t0 := samples[0].T
	t1 := samples[len(samples)-1].T
	span := t1 - t0
	if span <= 0 {
		span = 1e-9
	}
	colLo := make([]float64, width)
	colHi := make([]float64, width)
	for i := range colLo {
		colLo[i] = math.Inf(1)
		colHi[i] = math.Inf(-1)
	}
	for _, s := range samples {
		c := int(float64(width-1) * (s.T - t0) / span)
		colLo[c] = math.Min(colLo[c], s.VTerm)
		colHi[c] = math.Max(colHi[c], s.VTerm)
	}

	row := func(v float64) int {
		f := (v - lo) / (hi - lo)
		r := int(math.Round(f * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return height - 1 - r // row 0 is the top
	}
	markerRow := -1
	if opt.Marker != 0 && !math.IsNaN(opt.Marker) {
		markerRow = row(opt.Marker)
	}

	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
		if y == markerRow {
			for x := range grid[y] {
				grid[y][x] = '-'
			}
		}
	}
	prev := -1
	for x := 0; x < width; x++ {
		if math.IsInf(colLo[x], 1) {
			continue
		}
		top, bot := row(colHi[x]), row(colLo[x])
		for y := top; y <= bot; y++ {
			grid[y][x] = '#'
		}
		// Connect to the previous column so slow ramps stay contiguous.
		if prev >= 0 {
			a, b := prev, top
			if a > b {
				a, b = b, a
			}
			for y := a; y <= b; y++ {
				if grid[y][x] == ' ' || grid[y][x] == '-' {
					grid[y][x] = '#'
				}
			}
		}
		prev = bot
	}

	for y := 0; y < height; y++ {
		label := "        "
		switch y {
		case 0:
			label = fmt.Sprintf("%7.3fV", hi)
		case height - 1:
			label = fmt.Sprintf("%7.3fV", lo)
		case markerRow:
			if opt.MarkerLabel != "" {
				label = fmt.Sprintf("%7s ", opt.MarkerLabel)
			} else {
				label = fmt.Sprintf("%7.3fV", opt.Marker)
			}
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(grid[y])); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%8s +%s\n%8s  %-8s%*s\n",
		"", strings.Repeat("-", width),
		"", fmt.Sprintf("%.4gs", t0), width-8, fmt.Sprintf("%.4gs", t1))
	return err
}

// Package trace records time-series measurements from the power-system
// simulator — the in-silico equivalent of the paper's Saleae logic analyzer
// and TI current-sense harness (Section VI-A) — and computes the summary
// statistics (minimum voltage, final voltage, voltage at a delay) the
// estimators consume.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Sample is one measurement row.
type Sample struct {
	T     float64 // seconds since recording started
	VTerm float64 // capacitor terminal (node) voltage
	VOC   float64 // main buffer open-circuit voltage
	ILoad float64 // load current at V_out
	IIn   float64 // current drawn from the buffer by the output booster
}

// Recorder accumulates samples with optional decimation.
type Recorder struct {
	// Every keeps one sample per Every added (1 = keep all). Zero behaves
	// like 1.
	Every   int
	samples []Sample
	n       int
}

// NewRecorder returns a recorder keeping every n-th sample.
func NewRecorder(every int) *Recorder {
	if every < 1 {
		every = 1
	}
	return &Recorder{Every: every}
}

// Add appends a sample, honouring decimation.
func (r *Recorder) Add(s Sample) {
	every := r.Every
	if every < 1 {
		every = 1
	}
	if r.n%every == 0 {
		r.samples = append(r.samples, s)
	}
	r.n++
}

// Len returns the number of retained samples.
func (r *Recorder) Len() int { return len(r.samples) }

// Samples returns the retained samples (not a copy; callers must not
// mutate).
func (r *Recorder) Samples() []Sample { return r.samples }

// Reset clears the recorder for reuse.
func (r *Recorder) Reset() {
	r.samples = r.samples[:0]
	r.n = 0
}

// MinVTerm returns the minimum recorded terminal voltage, or +Inf when
// empty.
func (r *Recorder) MinVTerm() float64 {
	m := math.Inf(1)
	for _, s := range r.samples {
		if s.VTerm < m {
			m = s.VTerm
		}
	}
	return m
}

// MaxVTerm returns the maximum recorded terminal voltage, or -Inf when
// empty.
func (r *Recorder) MaxVTerm() float64 {
	m := math.Inf(-1)
	for _, s := range r.samples {
		if s.VTerm > m {
			m = s.VTerm
		}
	}
	return m
}

// At returns the sample nearest to time t. ok is false when the recorder is
// empty.
func (r *Recorder) At(t float64) (Sample, bool) {
	if len(r.samples) == 0 {
		return Sample{}, false
	}
	i := sort.Search(len(r.samples), func(i int) bool { return r.samples[i].T >= t })
	if i == len(r.samples) {
		return r.samples[len(r.samples)-1], true
	}
	if i == 0 {
		return r.samples[0], true
	}
	// Choose the closer neighbour.
	if t-r.samples[i-1].T <= r.samples[i].T-t {
		return r.samples[i-1], true
	}
	return r.samples[i], true
}

// Last returns the final sample.
func (r *Recorder) Last() (Sample, bool) {
	if len(r.samples) == 0 {
		return Sample{}, false
	}
	return r.samples[len(r.samples)-1], true
}

// First returns the first sample.
func (r *Recorder) First() (Sample, bool) {
	if len(r.samples) == 0 {
		return Sample{}, false
	}
	return r.samples[0], true
}

// WriteCSV streams the samples as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_s,v_term_V,v_oc_V,i_load_A,i_in_A"); err != nil {
		return err
	}
	for _, s := range r.samples {
		if _, err := fmt.Fprintf(w, "%.9g,%.9g,%.9g,%.9g,%.9g\n",
			s.T, s.VTerm, s.VOC, s.ILoad, s.IIn); err != nil {
			return err
		}
	}
	return nil
}

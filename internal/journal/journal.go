// Package journal is the crash-durability layer under the streaming
// session table: a length+CRC-framed, segment-rotated write-ahead log with
// group-commit fsync batching, periodic compacted snapshots, and
// torn-tail-tolerant recovery. It follows Alpaca's redo-logging design
// (PAPERS.md, arXiv 1909.06951): mutations are appended as small redo
// records instead of checkpointing the full state on every change, and a
// snapshot every so often bounds replay time and reclaims segments.
//
// The package is payload-agnostic — records and snapshots are opaque byte
// slices (internal/session owns their encoding) — so its invariants are
// purely about bytes on disk:
//
//   - a record is acknowledged (Ticket.Wait returns nil) only after its
//     frame is written and, unless Options.Fsync is off, fsynced;
//   - frames are durable in Append order: the single writer goroutine
//     drains the enqueue queue in order and one fsync covers the whole
//     batch (group commit — concurrent appenders share fsyncs);
//   - recovery replays the newest valid snapshot plus every whole valid
//     frame after it, stops at the first bad frame (short header, bogus
//     length, CRC mismatch), truncates the torn tail, and never resurrects
//     bytes past the first corruption;
//   - a snapshot enqueued between two appends cleanly partitions them:
//     everything before it compacts away, everything after it replays.
//
// File layout inside Options.Dir:
//
//	seg-00000001.wal   frames, rotated at SegmentBytes
//	snap-00000004.snap one frame: state as of the start of segment 4
//
// A snapshot forces a rotation first, so snap-N.snap plus segments >= N is
// always a complete replay set; older segments and snapshots are deleted
// once the snapshot rename is durable.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Defaults for Options' zero values.
const (
	DefaultSegmentBytes = 4 << 20
	// maxFrameBytes bounds one frame; a scanned length beyond it is
	// corruption, not a huge record (the session tier's records are KBs).
	maxFrameBytes = 64 << 20
	// frameHeader is the [u32 length][u32 crc] prefix.
	frameHeader = 8
)

// ErrClosed reports an operation on a closed (or poisoned) journal.
var ErrClosed = errors.New("journal: closed")

// Options configures Open.
type Options struct {
	// Dir holds the segments and snapshots; created if missing.
	Dir string
	// SegmentBytes rotates the active segment once it grows past this
	// (<=0: DefaultSegmentBytes).
	SegmentBytes int64
	// Fsync, when true, fsyncs each group-committed batch before its
	// waiters are released — the durable-ack mode. Off trades the
	// power-loss guarantee for write speed (page cache only).
	Fsync bool
}

// Recovery is what Open found on disk: the newest valid snapshot payload
// (nil if none) and every valid record frame after it, in append order.
type Recovery struct {
	Snapshot []byte
	Records  [][]byte
	// Segments is how many segment files were scanned.
	Segments int
	// Truncated is how many bytes were discarded at the first bad frame
	// (torn tail, CRC mismatch, or unreachable later segments).
	Truncated int64
}

// Stats counts a journal's lifetime I/O, exposed for the group-commit
// throughput benchmarks: Fsyncs < Appends means batching is working.
type Stats struct {
	Appends   uint64 `json:"appends"`
	Snapshots uint64 `json:"snapshots"`
	Batches   uint64 `json:"batches"`
	Fsyncs    uint64 `json:"fsyncs"`
	Rotations uint64 `json:"rotations"`
	Bytes     int64  `json:"bytes"`
	Segment   uint64 `json:"segment"`
}

// Ticket is one enqueued record's durability handle.
type Ticket struct {
	done chan error
	err  error
	got  bool
}

// Failed returns a ticket already resolved to err — for callers whose
// record never reached the queue (an encode failure upstream).
func Failed(err error) *Ticket {
	ch := make(chan error, 1)
	ch <- err
	return &Ticket{done: ch}
}

// Wait blocks until the record's batch is flushed (and fsynced, in Fsync
// mode) and returns the write outcome. Safe to call more than once.
func (tk *Ticket) Wait() error {
	if !tk.got {
		tk.err = <-tk.done
		tk.got = true
	}
	return tk.err
}

type request struct {
	payload  []byte
	snapshot bool
	done     chan error
}

// Journal is an open write-ahead log. Append and Snapshot may be called
// concurrently; one writer goroutine owns the files.
type Journal struct {
	opts Options

	mu     sync.Mutex
	queue  []request
	closed bool

	kick chan struct{} // cap 1: wakes the writer
	done chan struct{} // closed when the writer exits

	// Writer-goroutine state (no locking: single owner).
	f       *os.File
	seg     uint64 // active segment number
	segSize int64
	failed  error // first I/O error; poisons every later request

	appends, snapshots, batches, fsyncs, rotations atomic.Uint64
	bytes                                          atomic.Int64
	segNow                                         atomic.Uint64
}

// Open scans dir, recovers the replayable state (newest valid snapshot +
// valid frames after it, torn tail truncated), and returns a journal
// positioned to append after the last valid frame.
func Open(opts Options) (*Journal, Recovery, error) {
	if opts.Dir == "" {
		return nil, Recovery{}, errors.New("journal: empty dir")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		opts: opts,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	rec, err := j.scan()
	if err != nil {
		return nil, Recovery{}, err
	}
	j.segNow.Store(j.seg)
	go j.writer()
	return j, rec, nil
}

// scan performs the recovery read: pick the snapshot, replay segments,
// truncate at the first bad frame, and open the tail segment for append.
func (j *Journal) scan() (Recovery, error) {
	entries, err := os.ReadDir(j.opts.Dir)
	if err != nil {
		return Recovery{}, fmt.Errorf("journal: %w", err)
	}
	segs := map[uint64]string{}
	var segNums []uint64
	var snapNums []uint64
	snaps := map[uint64]string{}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A snapshot that never made its rename: dead by construction.
			os.Remove(filepath.Join(j.opts.Dir, name))
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal"):
			if n, ok := parseNum(name, "seg-", ".wal"); ok {
				segs[n] = name
				segNums = append(segNums, n)
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if n, ok := parseNum(name, "snap-", ".snap"); ok {
				snaps[n] = name
				snapNums = append(snapNums, n)
			}
		}
	}
	sort.Slice(segNums, func(a, b int) bool { return segNums[a] < segNums[b] })
	sort.Slice(snapNums, func(a, b int) bool { return snapNums[a] > snapNums[b] })

	var rec Recovery
	var snapFrom uint64 = 0
	for _, n := range snapNums {
		payload, ok := readSnapshotFile(filepath.Join(j.opts.Dir, snaps[n]))
		if ok && (rec.Snapshot == nil) {
			rec.Snapshot = payload
			snapFrom = n
			continue
		}
		// Corrupt, or older than the chosen one: gone either way.
		os.Remove(filepath.Join(j.opts.Dir, snaps[n]))
	}

	// Replay the contiguous run of segments starting at the snapshot
	// boundary (or the oldest segment). A numbering gap means the later
	// segments are unreachable — records in them depend on deleted state —
	// so they are discarded, exactly like bytes past a bad frame.
	var run []uint64
	for _, n := range segNums {
		if n < snapFrom {
			os.Remove(filepath.Join(j.opts.Dir, segs[n])) // compacted away
			continue
		}
		run = append(run, n)
	}
	stop := len(run)
	if snapFrom > 0 && len(run) > 0 && run[0] != snapFrom {
		// The snapshot's boundary segment is gone: every later segment's
		// records assume state we no longer have.
		stop = 0
	}
	for i := 1; i < stop; i++ {
		if run[i] != run[i-1]+1 {
			stop = i
			break
		}
	}
	for _, n := range run[stop:] {
		path := filepath.Join(j.opts.Dir, segs[n])
		if st, err := os.Stat(path); err == nil {
			rec.Truncated += st.Size()
		}
		os.Remove(path)
	}
	run = run[:stop]

	truncatedAt := -1 // index in run where a bad frame cut the scan short
	for i, n := range run {
		path := filepath.Join(j.opts.Dir, segs[n])
		frames, validBytes, total, err := scanSegment(path)
		if err != nil {
			return Recovery{}, err
		}
		rec.Records = append(rec.Records, frames...)
		rec.Segments++
		if validBytes < total {
			rec.Truncated += total - validBytes
			if err := os.Truncate(path, validBytes); err != nil {
				return Recovery{}, fmt.Errorf("journal: truncate torn tail: %w", err)
			}
			truncatedAt = i
			break
		}
	}
	if truncatedAt >= 0 {
		// Nothing after the first corruption survives.
		for _, n := range run[truncatedAt+1:] {
			path := filepath.Join(j.opts.Dir, segs[n])
			if st, err := os.Stat(path); err == nil {
				rec.Truncated += st.Size()
			}
			os.Remove(path)
		}
		run = run[:truncatedAt+1]
	}

	// Open (or create) the tail segment for appending.
	j.seg = snapFrom
	if j.seg == 0 {
		j.seg = 1
	}
	if len(run) > 0 {
		j.seg = run[len(run)-1]
	}
	path := j.segPath(j.seg)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return Recovery{}, fmt.Errorf("journal: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return Recovery{}, fmt.Errorf("journal: %w", err)
	}
	j.f, j.segSize = f, size
	if err := syncDir(j.opts.Dir); err != nil {
		f.Close()
		return Recovery{}, err
	}
	return rec, nil
}

func (j *Journal) segPath(n uint64) string {
	return filepath.Join(j.opts.Dir, fmt.Sprintf("seg-%08d.wal", n))
}

func (j *Journal) snapPath(n uint64) string {
	return filepath.Join(j.opts.Dir, fmt.Sprintf("snap-%08d.snap", n))
}

func parseNum(name, prefix, suffix string) (uint64, bool) {
	s := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if s == "" {
		return 0, false
	}
	var n uint64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + uint64(s[i]-'0')
	}
	return n, n > 0
}

// frame encodes one payload with its length+CRC header.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeader:], payload)
	return buf
}

// scanSegment reads every whole valid frame from one segment. validBytes is
// the offset of the first bad frame (== total when the whole file is good).
func scanSegment(path string) (frames [][]byte, validBytes, total int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("journal: %w", err)
	}
	total = int64(len(data))
	off := int64(0)
	for off+frameHeader <= total {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > maxFrameBytes || off+frameHeader+n > total {
			break // bogus length or torn tail
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		frames = append(frames, append([]byte(nil), payload...))
		off += frameHeader + n
	}
	return frames, off, total, nil
}

// readSnapshotFile parses a snapshot file: exactly one valid frame.
func readSnapshotFile(path string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) < frameHeader {
		return nil, false
	}
	n := int64(binary.LittleEndian.Uint32(data[0:4]))
	crc := binary.LittleEndian.Uint32(data[4:8])
	if n == 0 || n > maxFrameBytes || frameHeader+n != int64(len(data)) {
		return nil, false
	}
	payload := data[frameHeader:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, false
	}
	return payload, true
}

// Append enqueues one record. The returned ticket resolves once the record
// is durable (group-committed with its batch). Append itself never blocks
// on I/O — callers may enqueue under their own locks and Wait outside.
func (j *Journal) Append(payload []byte) *Ticket {
	return j.enqueue(payload, false)
}

// Snapshot enqueues a compacted state image. Its position in the enqueue
// order is its consistency contract: records enqueued before it are
// compacted away, records enqueued after it survive into the new segment —
// so a caller that captures its state and enqueues the snapshot under the
// same locks that order its Appends gets a perfect partition.
func (j *Journal) Snapshot(payload []byte) *Ticket {
	return j.enqueue(payload, true)
}

func (j *Journal) enqueue(payload []byte, snapshot bool) *Ticket {
	tk := &Ticket{done: make(chan error, 1)}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		tk.done <- ErrClosed
		return tk
	}
	j.queue = append(j.queue, request{payload: payload, snapshot: snapshot, done: tk.done})
	j.mu.Unlock()
	select {
	case j.kick <- struct{}{}:
	default:
	}
	return tk
}

// Close flushes the queue, syncs, and stops the writer. Further operations
// return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.done
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	select {
	case j.kick <- struct{}{}:
	default:
	}
	<-j.done
	return j.failed
}

// Stats snapshots the I/O counters.
func (j *Journal) Stats() Stats {
	return Stats{
		Appends:   j.appends.Load(),
		Snapshots: j.snapshots.Load(),
		Batches:   j.batches.Load(),
		Fsyncs:    j.fsyncs.Load(),
		Rotations: j.rotations.Load(),
		Bytes:     j.bytes.Load(),
		Segment:   j.segNow.Load(),
	}
}

// writer is the single goroutine that owns the files: it drains the queue
// in enqueue order, writes appends in batches with one fsync per batch,
// and executes snapshot requests as rotation+compaction barriers.
func (j *Journal) writer() {
	defer close(j.done)
	for {
		j.mu.Lock()
		batch := j.queue
		j.queue = nil
		closed := j.closed
		j.mu.Unlock()
		if len(batch) > 0 {
			j.process(batch)
		}
		if closed {
			j.mu.Lock()
			rest := j.queue
			j.queue = nil
			j.mu.Unlock()
			if len(rest) > 0 {
				j.process(rest)
			}
			if j.f != nil {
				if j.failed == nil && j.opts.Fsync {
					j.failed = j.f.Sync()
				}
				j.f.Close()
			}
			return
		}
		<-j.kick
	}
}

// process handles one drained batch: contiguous appends are written and
// fsynced together; a snapshot flushes what precedes it, then rotates.
func (j *Journal) process(batch []request) {
	var pending []request
	var buf []byte
	flush := func() {
		if len(pending) == 0 {
			return
		}
		err := j.failed
		if err == nil {
			err = j.writeAll(buf)
		}
		if err == nil && j.opts.Fsync {
			j.fsyncs.Add(1)
			err = j.f.Sync()
		}
		if err != nil && j.failed == nil {
			j.failed = err
		}
		j.batches.Add(1)
		for _, req := range pending {
			req.done <- err
		}
		if err == nil {
			j.appends.Add(uint64(len(pending)))
			j.maybeRotate()
		}
		pending, buf = pending[:0], buf[:0]
	}
	for _, req := range batch {
		if !req.snapshot {
			buf = append(buf, frame(req.payload)...)
			pending = append(pending, req)
			continue
		}
		flush()
		err := j.failed
		if err == nil {
			err = j.doSnapshot(req.payload)
			if err != nil && j.failed == nil {
				j.failed = err
			}
		}
		req.done <- err
	}
	flush()
}

func (j *Journal) writeAll(buf []byte) error {
	n, err := j.f.Write(buf)
	j.segSize += int64(n)
	j.bytes.Add(int64(n))
	if err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	return nil
}

// maybeRotate opens the next segment once the active one is past the size
// threshold. The old segment stays until a snapshot compacts it away.
func (j *Journal) maybeRotate() {
	if j.segSize < j.opts.SegmentBytes {
		return
	}
	if err := j.rotate(); err != nil && j.failed == nil {
		j.failed = err
	}
}

func (j *Journal) rotate() error {
	if j.opts.Fsync {
		j.fsyncs.Add(1)
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync before rotate: %w", err)
		}
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: close segment: %w", err)
	}
	j.seg++
	f, err := os.OpenFile(j.segPath(j.seg), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	j.f, j.segSize = f, 0
	j.rotations.Add(1)
	j.segNow.Store(j.seg)
	return syncDir(j.opts.Dir)
}

// doSnapshot executes one snapshot barrier: rotate so the image covers
// exactly the segments before the new one, write snap-N.tmp, fsync, rename,
// fsync the directory, then delete everything the snapshot supersedes.
func (j *Journal) doSnapshot(payload []byte) error {
	if err := j.rotate(); err != nil {
		return err
	}
	n := j.seg
	tmp := j.snapPath(n) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	buf := frame(payload)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("journal: snapshot write: %w", err)
	}
	j.bytes.Add(int64(len(buf)))
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, j.snapPath(n)); err != nil {
		return fmt.Errorf("journal: snapshot rename: %w", err)
	}
	if err := syncDir(j.opts.Dir); err != nil {
		return err
	}
	// Compaction: older segments and snapshots are now redundant.
	entries, err := os.ReadDir(j.opts.Dir)
	if err == nil {
		for _, e := range entries {
			name := e.Name()
			if num, ok := parseNum(name, "seg-", ".wal"); ok && strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal") && num < n {
				os.Remove(filepath.Join(j.opts.Dir, name))
			}
			if num, ok := parseNum(name, "snap-", ".snap"); ok && strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") && num < n {
				os.Remove(filepath.Join(j.opts.Dir, name))
			}
		}
	}
	j.snapshots.Add(1)
	return nil
}

// syncDir fsyncs a directory so renames and creates inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}

package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) (*Journal, Recovery) {
	t.Helper()
	opts.Dir = dir
	j, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	return j, rec
}

func appendWait(t *testing.T, j *Journal, payload string) {
	t.Helper()
	if err := j.Append([]byte(payload)).Wait(); err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
}

func records(rec Recovery) []string {
	out := make([]string, 0, len(rec.Records))
	for _, r := range rec.Records {
		out = append(out, string(r))
	}
	return out
}

func wantRecords(t *testing.T, rec Recovery, want ...string) {
	t.Helper()
	got := records(rec)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records %q, want %d %q", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := openT(t, dir, Options{Fsync: true})
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	for i := 0; i < 10; i++ {
		appendWait(t, j, fmt.Sprintf("rec-%d", i))
	}
	st := j.Stats()
	if st.Appends != 10 {
		t.Fatalf("Appends = %d, want 10", st.Appends)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rec2 := openT(t, dir, Options{Fsync: true})
	defer j2.Close()
	if rec2.Snapshot != nil {
		t.Fatalf("unexpected snapshot: %q", rec2.Snapshot)
	}
	wantRecords(t, rec2, "rec-0", "rec-1", "rec-2", "rec-3", "rec-4", "rec-5", "rec-6", "rec-7", "rec-8", "rec-9")
	if rec2.Truncated != 0 {
		t.Fatalf("Truncated = %d, want 0", rec2.Truncated)
	}
	// The reopened journal must be appendable.
	appendWait(t, j2, "after")
}

func TestGroupCommitBatching(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: true})
	defer j.Close()

	// Enqueue a burst without waiting: the single writer drains them in
	// few batches, so every ticket resolves and Fsyncs stays <= Batches.
	const n = 200
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tickets[i] = j.Append([]byte(fmt.Sprintf("burst-%d", i)))
	}
	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	st := j.Stats()
	if st.Appends != n {
		t.Fatalf("Appends = %d, want %d", st.Appends, n)
	}
	if st.Batches == 0 || st.Batches > n {
		t.Fatalf("Batches = %d, want in [1, %d]", st.Batches, n)
	}
	if st.Fsyncs > st.Batches+st.Rotations {
		t.Fatalf("Fsyncs = %d > Batches+Rotations = %d", st.Fsyncs, st.Batches+st.Rotations)
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: true})
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append([]byte(fmt.Sprintf("w%d-%d", w, i))).Wait(); err != nil {
					t.Errorf("w%d append %d: %v", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := openT(t, dir, Options{})
	if len(rec.Records) != workers*per {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), workers*per)
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{SegmentBytes: 64, Fsync: true})
	for i := 0; i < 20; i++ {
		appendWait(t, j, fmt.Sprintf("rotate-me-%02d", i))
	}
	st := j.Stats()
	if st.Rotations == 0 {
		t.Fatalf("no rotations after 20 appends with 64-byte segments; stats %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := 0
	for _, name := range listDir(t, dir) {
		if _, ok := parseNum(name, "seg-", ".wal"); ok {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("want >= 2 segment files, got %v", listDir(t, dir))
	}
	j2, rec := openT(t, dir, Options{SegmentBytes: 64})
	defer j2.Close()
	if len(rec.Records) != 20 || rec.Segments != segs {
		t.Fatalf("recovered %d records over %d segments, want 20 over %d", len(rec.Records), rec.Segments, segs)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: true})
	appendWait(t, j, "before-1")
	appendWait(t, j, "before-2")
	if err := j.Snapshot([]byte("image")).Wait(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	appendWait(t, j, "after-1")
	appendWait(t, j, "after-2")
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Pre-snapshot segments must be gone.
	for _, name := range listDir(t, dir) {
		if name == "seg-00000001.wal" {
			t.Fatalf("pre-snapshot segment survived compaction: %v", listDir(t, dir))
		}
	}

	j2, rec := openT(t, dir, Options{Fsync: true})
	defer j2.Close()
	if string(rec.Snapshot) != "image" {
		t.Fatalf("Snapshot = %q, want %q", rec.Snapshot, "image")
	}
	wantRecords(t, rec, "after-1", "after-2")
}

func TestSecondSnapshotSupersedes(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: true})
	appendWait(t, j, "a")
	if err := j.Snapshot([]byte("one")).Wait(); err != nil {
		t.Fatal(err)
	}
	appendWait(t, j, "b")
	if err := j.Snapshot([]byte("two")).Wait(); err != nil {
		t.Fatal(err)
	}
	appendWait(t, j, "c")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	if string(rec.Snapshot) != "two" {
		t.Fatalf("Snapshot = %q, want %q", rec.Snapshot, "two")
	}
	wantRecords(t, rec, "c")
	snaps := 0
	for _, name := range listDir(t, dir) {
		if _, ok := parseNum(name, "snap-", ".snap"); ok {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("want exactly 1 snapshot file, dir: %v", listDir(t, dir))
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: true})
	appendWait(t, j, "good-1")
	appendWait(t, j, "good-2")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: a frame header promising more bytes than exist.
	seg := filepath.Join(dir, "seg-00000001.wal")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var torn [8]byte
	binary.LittleEndian.PutUint32(torn[0:4], 1000) // length far past EOF
	binary.LittleEndian.PutUint32(torn[4:8], 0xdeadbeef)
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, rec := openT(t, dir, Options{Fsync: true})
	wantRecords(t, rec, "good-1", "good-2")
	if rec.Truncated != 8 {
		t.Fatalf("Truncated = %d, want 8", rec.Truncated)
	}
	// The torn bytes are physically gone and appends continue cleanly.
	appendWait(t, j2, "good-3")
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec3 := openT(t, dir, Options{})
	wantRecords(t, rec3, "good-1", "good-2", "good-3")
	if rec3.Truncated != 0 {
		t.Fatalf("second recovery still truncating: %d", rec3.Truncated)
	}
}

func TestBitFlipStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{SegmentBytes: 48, Fsync: true})
	for i := 0; i < 8; i++ {
		appendWait(t, j, fmt.Sprintf("frame-%d", i))
	}
	if j.Stats().Rotations == 0 {
		t.Fatal("test needs multiple segments")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte in the first segment: replay must stop there and
	// every later segment must be discarded, not replayed over the gap.
	seg := filepath.Join(dir, "seg-00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec := openT(t, dir, Options{})
	defer j2.Close()
	if len(rec.Records) != 0 {
		t.Fatalf("records resurrected past corruption: %q", records(rec))
	}
	if rec.Truncated == 0 {
		t.Fatal("Truncated = 0 after bit flip")
	}
	for _, name := range listDir(t, dir) {
		if n, ok := parseNum(name, "seg-", ".wal"); ok && n > 1 {
			t.Fatalf("segment past corruption survived: %v", listDir(t, dir))
		}
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{Fsync: true})
	appendWait(t, j, "pre")
	if err := j.Snapshot([]byte("image")).Wait(); err != nil {
		t.Fatal(err)
	}
	appendWait(t, j, "post")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	var snap string
	for _, name := range listDir(t, dir) {
		if _, ok := parseNum(name, "snap-", ".snap"); ok {
			snap = filepath.Join(dir, name)
		}
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// The snapshot is unreadable, but the post-snapshot segment run is
	// intact: recovery degrades to "no snapshot, replay what remains"
	// without panicking or inventing state.
	j2, rec := openT(t, dir, Options{})
	defer j2.Close()
	if rec.Snapshot != nil {
		t.Fatalf("corrupt snapshot returned: %q", rec.Snapshot)
	}
	wantRecords(t, rec, "post")
}

func TestMissingBoundarySegmentDiscardsRun(t *testing.T) {
	dir := t.TempDir()
	// snap-2 exists but seg-2 is missing: seg-3's records assume state in
	// the deleted boundary segment, so they must not replay.
	writeSnap := func(n uint64, payload string) {
		path := filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", n))
		if err := os.WriteFile(path, frame([]byte(payload)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeSeg := func(n uint64, payloads ...string) {
		var buf bytes.Buffer
		for _, p := range payloads {
			buf.Write(frame([]byte(p)))
		}
		path := filepath.Join(dir, fmt.Sprintf("seg-%08d.wal", n))
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeSnap(2, "image")
	writeSeg(3, "orphan-1", "orphan-2")

	j, rec := openT(t, dir, Options{})
	defer j.Close()
	if string(rec.Snapshot) != "image" {
		t.Fatalf("Snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("orphaned records replayed: %q", records(rec))
	}
	if rec.Truncated == 0 {
		t.Fatal("orphaned segment not counted as truncated")
	}
}

func TestGapInSegmentRunStopsReplay(t *testing.T) {
	dir := t.TempDir()
	writeSeg := func(n uint64, payloads ...string) {
		var buf bytes.Buffer
		for _, p := range payloads {
			buf.Write(frame([]byte(p)))
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seg-%08d.wal", n)), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeSeg(1, "a")
	writeSeg(3, "c") // gap: seg-2 missing
	j, rec := openT(t, dir, Options{})
	defer j.Close()
	wantRecords(t, rec, "a")
	if rec.Truncated == 0 {
		t.Fatal("post-gap segment not discarded")
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("late")).Wait(); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestFailedTicket(t *testing.T) {
	errBoom := fmt.Errorf("boom")
	tk := Failed(errBoom)
	if err := tk.Wait(); err != errBoom {
		t.Fatalf("Wait = %v, want boom", err)
	}
	if err := tk.Wait(); err != errBoom {
		t.Fatalf("second Wait = %v, want boom", err)
	}
}

func TestStatsCRCCoverage(t *testing.T) {
	// Sanity-pin the frame format itself: little-endian length, IEEE CRC of
	// the payload only.
	payload := []byte("pinned")
	buf := frame(payload)
	if got := binary.LittleEndian.Uint32(buf[0:4]); got != uint32(len(payload)) {
		t.Fatalf("length field = %d", got)
	}
	if got := binary.LittleEndian.Uint32(buf[4:8]); got != crc32.ChecksumIEEE(payload) {
		t.Fatalf("crc field = %#x, want %#x", got, crc32.ChecksumIEEE(payload))
	}
	if !bytes.Equal(buf[8:], payload) {
		t.Fatal("payload not copied verbatim")
	}
}

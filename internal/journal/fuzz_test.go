package journal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// refScan is the test's independent reading of the frame format: the valid
// prefix of data as [payload...]. Recovery must return exactly this — no
// frame past the first corruption may be resurrected.
func refScan(data []byte) [][]byte {
	var frames [][]byte
	off := 0
	for off+frameHeader <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > maxFrameBytes || off+frameHeader+n > len(data) {
			break
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		frames = append(frames, payload)
		off += frameHeader + n
	}
	return frames
}

// FuzzJournalRecover feeds arbitrary bytes to recovery as a segment file:
// truncated tails, bit flips, garbage appended after valid frames, pure
// noise. Recovery must never panic, must replay exactly the valid prefix,
// and must leave a journal that still accepts appends and recovers them.
func FuzzJournalRecover(f *testing.F) {
	valid := func(payloads ...string) []byte {
		var buf bytes.Buffer
		for _, p := range payloads {
			buf.Write(frame([]byte(p)))
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(valid("one"))
	f.Add(valid("one", "two", "three"))
	f.Add(valid("one", "two")[:11])               // torn mid-frame
	f.Add(append(valid("ok"), 0xff, 0x00, 0x13))  // garbage tail
	f.Add(append(valid("ok"), valid("next")...))  // all good
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3}) // absurd length
	flip := valid("aaaa", "bbbb")
	flip[frameHeader] ^= 0x01 // CRC mismatch in the first frame
	f.Add(flip)
	zero := make([]byte, 64) // zero length field: bogus frame at offset 0
	f.Add(zero)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, "seg-00000001.wal")
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}

		j, rec, err := Open(Options{Dir: dir})
		if err != nil {
			// Recovery errors only on real I/O failures, which a byte pattern
			// cannot cause.
			t.Fatalf("Open on fuzzed segment: %v", err)
		}

		want := refScan(data)
		if len(rec.Records) != len(want) {
			t.Fatalf("recovered %d records, reference scan says %d (input %d bytes)", len(rec.Records), len(want), len(data))
		}
		for i := range want {
			if !bytes.Equal(rec.Records[i], want[i]) {
				t.Fatalf("record[%d] mismatch", i)
			}
		}
		if rec.Snapshot != nil {
			t.Fatalf("snapshot invented from segment bytes: %q", rec.Snapshot)
		}

		// The recovered journal must be live: append, close, recover again,
		// and see the valid prefix plus the new record.
		if err := j.Append([]byte("post-recovery")).Wait(); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		j2, rec2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer j2.Close()
		if len(rec2.Records) != len(want)+1 {
			t.Fatalf("second recovery has %d records, want %d", len(rec2.Records), len(want)+1)
		}
		if got := rec2.Records[len(rec2.Records)-1]; string(got) != "post-recovery" {
			t.Fatalf("last record = %q", got)
		}
		if rec2.Truncated != 0 {
			t.Fatalf("second recovery truncated %d bytes — first recovery left a torn tail behind", rec2.Truncated)
		}
	})
}

// Package prof wires the standard runtime/pprof file profiles into the
// CLIs' -cpuprofile/-memprofile flags.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the flag values (empty = off) and
// returns a stop function that must run before process exit: it stops the
// CPU profile and writes the heap profile. The caller defers stop and
// reports its error; a failed Start leaves no profile running.
func Start(cpu, mem string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpuFile = f
	}
	stop = func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); first == nil {
				first = err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				if first == nil {
					first = err
				}
				return first
			}
			runtime.GC() // settle the live set the heap profile reports
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return stop, nil
}

package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("no-op stop: %v", err)
	}
}

func TestCPUProfileWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := Start(path, "")
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i) * 1e-9
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Error("CPU profile is empty")
	}
}

func TestHeapProfileWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	stop, err := Start("", path)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Error("heap profile is empty")
	}
}

func TestBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing profile: %v", err)
		}
	}
}

func TestStartErrors(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "x.pprof")
	if _, err := Start(bad, ""); err == nil {
		t.Error("unwritable CPU path accepted")
	}
	// A failed Start must leave no CPU profile running: a second Start with
	// a good path must succeed.
	good := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := Start(good, "")
	if err != nil {
		t.Fatalf("Start after failed Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	// A bad heap path surfaces at stop time (the heap profile is written on
	// exit), not at Start.
	stop, err = Start("", bad)
	if err != nil {
		t.Fatalf("Start with deferred-bad mem path: %v", err)
	}
	if err := stop(); err == nil {
		t.Error("unwritable heap path not reported by stop")
	}
}

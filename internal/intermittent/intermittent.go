// Package intermittent implements a task-based intermittent-execution
// runtime — the software substrate the paper's introduction motivates.
// A program is an ordered sequence of *atomic tasks* (Alpaca/Chain-style):
// completed tasks persist across power failures, but a task interrupted by
// a power failure re-executes from its beginning after the device
// recharges. "Trying to execute a task with insufficient stored energy
// dooms the device to fail and not only imposes the cost of powering off,
// recharging, restarting, and re-execution, but risks prolonged
// non-termination" (Section I).
//
// Three dispatch gates are provided:
//
//   - Opportunistic: run the next task whenever power is on (the behaviour
//     of early intermittent systems);
//   - EnergyGate: run when the buffer's stored energy covers an
//     energy-only per-task estimate (CatNap-class reasoning);
//   - CulpeoGate: run when the buffer voltage meets the task's V_safe.
//
// The package also provides Culpeo-guided task decomposition
// (DecomposeFeasible): splitting a task whose V_safe exceeds V_high into
// the smallest number of chunks that each fit the buffer — the §III
// workflow where "the programmer knows they must correct the task
// division".
package intermittent

import (
	"errors"
	"fmt"
	"math"

	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/profiler"
)

// AtomicTask is one unit of atomic re-execution.
type AtomicTask struct {
	ID      string
	Profile load.Profile
}

// Program is an ordered task sequence executed in a loop (sense → process
// → transmit → repeat).
type Program struct {
	Name  string
	Tasks []AtomicTask
}

// Validate checks the program.
func (p Program) Validate() error {
	if len(p.Tasks) == 0 {
		return errors.New("intermittent: empty program")
	}
	seen := map[string]bool{}
	for _, t := range p.Tasks {
		if t.Profile == nil {
			return fmt.Errorf("intermittent: task %s has no profile", t.ID)
		}
		if seen[t.ID] {
			return fmt.Errorf("intermittent: duplicate task %s", t.ID)
		}
		seen[t.ID] = true
	}
	return nil
}

// Gate decides whether the runtime may start the given task now.
type Gate interface {
	Name() string
	// Ready reports whether task idx may start at terminal voltage v.
	Ready(idx int, v float64) bool
}

// Opportunistic starts any task the moment power is available.
type Opportunistic struct{}

func (Opportunistic) Name() string            { return "opportunistic" }
func (Opportunistic) Ready(int, float64) bool { return true }

// EnergyGate requires the buffer to hold the task's measured energy above
// V_off: v ≥ sqrt(V_off² + ΔV²). ESR-blind.
type EnergyGate struct {
	VOff    float64
	DeltaV2 []float64 // per-task V_start²−V_end² measured from a full buffer
}

func (EnergyGate) Name() string { return "energy" }

func (g EnergyGate) Ready(idx int, v float64) bool {
	if idx < 0 || idx >= len(g.DeltaV2) {
		return false
	}
	return v >= math.Sqrt(g.VOff*g.VOff+g.DeltaV2[idx])
}

// CulpeoGate requires v ≥ V_safe per task.
type CulpeoGate struct {
	VSafe []float64
}

func (CulpeoGate) Name() string { return "culpeo" }

func (g CulpeoGate) Ready(idx int, v float64) bool {
	if idx < 0 || idx >= len(g.VSafe) {
		return false
	}
	return v >= g.VSafe[idx]
}

// Result summarizes an intermittent execution.
type Result struct {
	// Iterations counts complete passes through the program.
	Iterations int
	// TasksCompleted counts committed tasks (including repeats across
	// iterations).
	TasksCompleted int
	// Reexecutions counts task attempts that were destroyed by a power
	// failure and had to restart.
	Reexecutions int
	// PowerFailures counts monitor power-off events.
	PowerFailures int
	// WastedEnergy is the storage energy consumed by failed attempts.
	WastedEnergy float64
	// UsefulEnergy is the storage energy consumed by committed attempts.
	UsefulEnergy float64
	// SimTime is how long the run took in simulated seconds.
	SimTime float64
	// LiveLocked is set when a single task failed MaxAttempts times in a
	// row — the prolonged non-termination the paper warns about.
	LiveLocked bool
	// LiveLockedTask names the offending task.
	LiveLockedTask string
	// Escalations counts non-termination escalations: a repeatedly failing
	// task was decomposed into feasible chunks mid-run (see Degrade).
	Escalations int
}

// Degrade configures graceful degradation for the runtime: bounded retry
// with recharge-aware backoff, plus a non-termination detector that
// escalates a repeatedly failing task to Culpeo-guided decomposition
// instead of spinning forever.
type Degrade struct {
	// MaxRetries is how many consecutive failed attempts of one task the
	// runtime tolerates before escalating; 0 = 5.
	MaxRetries int
	// BackoffV is the base of the recharge backoff: after f consecutive
	// failures the gate threshold is effectively raised by
	// min(BackoffMax, BackoffV·(2^f − 1)) volts, so each retry waits for
	// the buffer to recharge further before trying again (the wait scales
	// with harvest rate, not wall-clock). 0 = 25 mV.
	BackoffV float64
	// BackoffMax caps the backoff so thresholds stay reachable; 0 = 150 mV.
	BackoffMax float64
	// Model, when non-nil, enables escalation: after MaxRetries failures
	// the task is split with DecomposeFeasible on this model and the gate
	// is rebuilt from Culpeo-PG estimates of the new program.
	Model *core.PowerModel
	// MaxChunks bounds the decomposition; 0 = 8.
	MaxChunks int
	// MaxEscalations bounds how many times a run may decompose before
	// declaring livelock; 0 = 4.
	MaxEscalations int
}

func (d *Degrade) maxRetries() int {
	if d == nil || d.MaxRetries <= 0 {
		return 5
	}
	return d.MaxRetries
}

// backoff returns the extra recharge headroom demanded after f consecutive
// failures of the current task.
func (d *Degrade) backoff(f int) float64 {
	if d == nil || f <= 0 {
		return 0
	}
	base := d.BackoffV
	if base <= 0 {
		base = 25e-3
	}
	max := d.BackoffMax
	if max <= 0 {
		max = 150e-3
	}
	if f > 8 {
		f = 8
	}
	b := base * float64(int(1)<<f-1)
	if b > max {
		b = max
	}
	return b
}

// Runtime executes a program intermittently on a simulated device.
type Runtime struct {
	Sys     *powersys.System
	Harvest float64
	Gate    Gate
	// MaxAttempts bounds consecutive failures of one task before declaring
	// livelock; 0 = 25.
	MaxAttempts int

	// Read, when non-nil, replaces Sys.VTerm as the voltage the gate sees
	// — the hook for a faulty measurement chain. The physics still runs on
	// the true voltage.
	Read func() float64
	// Margin, when non-nil, is an adaptive guard subtracted from the
	// measured voltage before every gate decision; failures inflate it and
	// sustained success decays it.
	Margin *core.AdaptiveMargin
	// Degrade, when non-nil, enables bounded retry with recharge-aware
	// backoff and escalation to decomposition (see Degrade).
	Degrade *Degrade
}

// read returns the voltage the runtime believes, through Read when set.
func (r *Runtime) read() float64 {
	if r.Read != nil {
		return r.Read()
	}
	return r.Sys.VTerm()
}

// Run executes the program in a loop until horizon (simulated seconds) or
// livelock.
func (r *Runtime) Run(prog Program, horizon float64) (Result, error) {
	if err := prog.Validate(); err != nil {
		return Result{}, err
	}
	if r.Sys == nil || r.Gate == nil {
		return Result{}, errors.New("intermittent: runtime needs a system and a gate")
	}
	maxAttempts := r.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 25
	}

	gate := r.Gate
	maxEscalations := 4
	if r.Degrade != nil && r.Degrade.MaxEscalations > 0 {
		maxEscalations = r.Degrade.MaxEscalations
	}

	var res Result
	failures0 := r.Sys.Failures()
	idx := 0
	attempts := 0
	escalateFailed := false
	for r.Sys.Now() < horizon {
		// Wait for power and for the gate.
		if !r.Sys.On() {
			r.Sys.Step(0, r.Harvest)
			continue
		}
		// The gate judges the measured voltage minus the adaptive guard
		// margin and the retry backoff: after failures the runtime demands
		// a correspondingly fuller buffer before trying again.
		if !gate.Ready(idx, r.read()-r.Margin.Margin()-r.Degrade.backoff(attempts)) {
			// Charge toward readiness; if the gate can never be satisfied
			// (requirement above V_high), this shows up as livelock via the
			// horizon — Culpeo avoids it up front via FeasibleOn.
			r.Sys.Step(load.SleepCurrent, r.Harvest)
			continue
		}
		task := prog.Tasks[idx]
		e0 := r.Sys.Config().Storage.TotalEnergy()
		run := r.Sys.Run(task.Profile, powersys.RunOptions{
			HarvestPower: r.Harvest,
			SkipRebound:  true,
		})
		used := e0 - r.Sys.Config().Storage.TotalEnergy()
		if run.Completed {
			res.TasksCompleted++
			res.UsefulEnergy += used
			r.Margin.Success()
			idx++
			attempts = 0
			escalateFailed = false
			if idx == len(prog.Tasks) {
				idx = 0
				res.Iterations++
			}
			continue
		}
		if errors.Is(run.Err, powersys.ErrDiverged) {
			// The model broke — this is not a power failure to retry.
			return res, fmt.Errorf("intermittent: task %s at t=%.3fs: %w", task.ID, run.FailTime, run.Err)
		}
		// Power failure: the attempt is destroyed; the device must fully
		// recharge (hysteresis) and the task restarts from scratch.
		res.Reexecutions++
		res.WastedEnergy += used
		r.Margin.Failure()
		attempts++
		if r.Degrade != nil && r.Degrade.Model != nil && !escalateFailed &&
			attempts >= r.Degrade.maxRetries() && res.Escalations < maxEscalations {
			// Non-termination detector: the task keeps dying despite backoff.
			// Split it into chunks that individually fit the buffer and
			// rebuild the gate from Culpeo-PG estimates of the new program.
			if next, ngate, err := r.escalate(prog, idx, task); err == nil {
				prog = next
				gate = ngate
				res.Escalations++
				attempts = 0
				continue
			}
			// Decomposition can't help (already minimal, or peak load too
			// high): fall through to the livelock detector.
			escalateFailed = true
		}
		if attempts >= maxAttempts {
			res.LiveLocked = true
			res.LiveLockedTask = task.ID
			break
		}
	}
	res.PowerFailures = r.Sys.Failures() - failures0
	res.SimTime = r.Sys.Now()
	return res, nil
}

// escalate splits the failing task at idx into feasible chunks and rebuilds
// the program and gate. The caller's task slice is never mutated. An error
// means decomposition cannot make progress.
func (r *Runtime) escalate(prog Program, idx int, task AtomicTask) (Program, Gate, error) {
	maxChunks := r.Degrade.MaxChunks
	if maxChunks <= 0 {
		maxChunks = 8
	}
	chunks, err := DecomposeFeasible(*r.Degrade.Model, task, maxChunks)
	if err != nil {
		return prog, nil, err
	}
	if len(chunks) < 2 {
		return prog, nil, fmt.Errorf("intermittent: %s is already minimal", task.ID)
	}
	tasks := make([]AtomicTask, 0, len(prog.Tasks)+len(chunks)-1)
	tasks = append(tasks, prog.Tasks[:idx]...)
	tasks = append(tasks, chunks...)
	tasks = append(tasks, prog.Tasks[idx+1:]...)
	next := Program{Name: prog.Name, Tasks: tasks}
	gate, err := NewCulpeoGate(*r.Degrade.Model, next)
	if err != nil {
		return prog, nil, err
	}
	return next, gate, nil
}

// Estimates profiles every task of a program with Culpeo-PG and returns the
// per-task estimates, in program order.
func Estimates(model core.PowerModel, prog Program) ([]core.Estimate, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	pg := profiler.PG{Model: model}
	out := make([]core.Estimate, len(prog.Tasks))
	for i, t := range prog.Tasks {
		est, err := pg.Estimate(t.Profile)
		if err != nil {
			return nil, fmt.Errorf("intermittent: estimating %s: %w", t.ID, err)
		}
		out[i] = est
	}
	return out, nil
}

// FeasibleOn reports whether every task of the program can run on a buffer
// charged to V_high — the compile-time termination check of §III/§VIII. It
// returns the first infeasible task's index, or -1 when all fit.
func FeasibleOn(model core.PowerModel, prog Program) (int, error) {
	ests, err := Estimates(model, prog)
	if err != nil {
		return -1, err
	}
	for i, e := range ests {
		if e.VSafe > model.VHigh {
			return i, nil
		}
	}
	return -1, nil
}

// NewCulpeoGate builds a Culpeo gate from Culpeo-PG estimates.
func NewCulpeoGate(model core.PowerModel, prog Program) (CulpeoGate, error) {
	ests, err := Estimates(model, prog)
	if err != nil {
		return CulpeoGate{}, err
	}
	vs := make([]float64, len(ests))
	for i, e := range ests {
		vs[i] = e.VSafe
	}
	return CulpeoGate{VSafe: vs}, nil
}

// NewEnergyGate measures each task's energy cost from a full buffer on an
// isolated copy of the system (the CatNap methodology) and builds the
// energy-only gate.
func NewEnergyGate(cfg powersys.Config, prog Program) (EnergyGate, error) {
	if err := prog.Validate(); err != nil {
		return EnergyGate{}, err
	}
	d2 := make([]float64, len(prog.Tasks))
	for i, t := range prog.Tasks {
		c := cfg
		c.Storage = cfg.Storage.Clone()
		sys, err := powersys.New(c)
		if err != nil {
			return EnergyGate{}, err
		}
		if err := sys.ChargeTo(c.VHigh); err != nil {
			return EnergyGate{}, err
		}
		sys.Monitor().Force(true)
		res := sys.Run(t.Profile, powersys.RunOptions{SkipRebound: true})
		if !res.Completed {
			// Unmeasurable task: demand a full buffer.
			d2[i] = c.VHigh*c.VHigh - c.VOff*c.VOff
			continue
		}
		d := res.VStart*res.VStart - res.VEndImmediate*res.VEndImmediate
		if d < 0 {
			d = 0
		}
		d2[i] = d
	}
	return EnergyGate{VOff: cfg.VOff, DeltaV2: d2}, nil
}

// DecomposeFeasible splits one oversized task into the smallest number of
// equal-duration atomic chunks whose individual V_safe fits the buffer
// (V_safe ≤ V_high), up to maxChunks. This is the §III task-division
// workflow, automated: Culpeo-PG tells the programmer a task cannot run;
// the decomposer finds a division that can.
//
// Splitting helps because completed chunks persist: each chunk's energy
// must fit the buffer, but the whole task's energy no longer has to.
// A chunk whose instantaneous load alone exceeds the buffer's deliverable
// power can never become feasible by splitting; in that case an error is
// returned.
func DecomposeFeasible(model core.PowerModel, task AtomicTask, maxChunks int) ([]AtomicTask, error) {
	if maxChunks < 1 {
		maxChunks = 1
	}
	pg := profiler.PG{Model: model}
	for n := 1; n <= maxChunks; n++ {
		chunks := load.SplitEven(task.Profile, n)
		ok := true
		for _, c := range chunks {
			est, err := pg.Estimate(c)
			if err != nil {
				return nil, err
			}
			if est.VSafe > model.VHigh {
				ok = false
				break
			}
		}
		if ok {
			out := make([]AtomicTask, n)
			for i, c := range chunks {
				out[i] = AtomicTask{ID: fmt.Sprintf("%s.%d", task.ID, i+1), Profile: c}
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("intermittent: %s infeasible even in %d chunks (peak load exceeds the buffer's deliverable power)",
		task.ID, maxChunks)
}

package intermittent

import (
	"math"
	"testing"

	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

// smallBufferConfig builds a marginal device: a 15 mF high-ESR buffer that
// makes the radio task's V_safe sit close to V_high.
func smallBufferConfig(t *testing.T, bankC float64) powersys.Config {
	t.Helper()
	part := capacitor.Part{
		PartNumber: "CPX3225A752D", Tech: capacitor.Supercap,
		C: 7.5e-3, ESR: 30, Volume: 7.04, DCL: 3.3e-9,
	}
	bank, err := capacitor.AssembleBank(part, bankC)
	if err != nil {
		t.Fatal(err)
	}
	cfg := powersys.Capybara()
	net, err := capacitor.NewNetwork(bank.Branch("main", cfg.VHigh))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Storage = net
	cfg.DT = 40e-6
	return cfg
}

func modelFor(cfg powersys.Config) core.PowerModel {
	return core.PowerModel{
		C:    cfg.Storage.TotalCapacitance(),
		ESR:  capacitor.Flat(cfg.Storage.Main().ESR),
		VOut: cfg.Output.VOut, VOff: cfg.VOff, VHigh: cfg.VHigh,
		Eff: cfg.Output.Efficiency,
	}
}

func sensePipeline() Program {
	return Program{
		Name: "sense-pipeline",
		Tasks: []AtomicTask{
			{ID: "sample", Profile: load.IMURead(16)},
			{ID: "process", Profile: load.FFT(128)},
			{ID: "report", Profile: load.BLERadio()},
		},
	}
}

func TestProgramValidate(t *testing.T) {
	if err := sensePipeline().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Program{}).Validate(); err == nil {
		t.Error("empty program accepted")
	}
	if err := (Program{Tasks: []AtomicTask{{ID: "x"}}}).Validate(); err == nil {
		t.Error("profile-less task accepted")
	}
	dup := Program{Tasks: []AtomicTask{
		{ID: "x", Profile: load.PhotoRead()},
		{ID: "x", Profile: load.PhotoRead()},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestGates(t *testing.T) {
	if !(Opportunistic{}).Ready(0, 0.1) {
		t.Error("opportunistic must always be ready")
	}
	eg := EnergyGate{VOff: 1.6, DeltaV2: []float64{0.36}} // need = sqrt(2.56+0.36) ≈ 1.708
	if eg.Ready(0, 1.70) {
		t.Error("energy gate ready below its requirement")
	}
	if !eg.Ready(0, 1.71) {
		t.Error("energy gate not ready above its requirement")
	}
	if eg.Ready(5, 3.0) {
		t.Error("out-of-range task index accepted")
	}
	cg := CulpeoGate{VSafe: []float64{2.0}}
	if cg.Ready(0, 1.99) || !cg.Ready(0, 2.0) || cg.Ready(1, 3.0) {
		t.Error("culpeo gate thresholds wrong")
	}
	for _, g := range []Gate{Opportunistic{}, eg, cg} {
		if g.Name() == "" {
			t.Error("gate without a name")
		}
	}
}

func TestRunValidation(t *testing.T) {
	r := &Runtime{}
	if _, err := r.Run(Program{}, 1); err == nil {
		t.Error("invalid program accepted")
	}
	if _, err := r.Run(sensePipeline(), 1); err == nil {
		t.Error("runtime without system accepted")
	}
}

func TestCulpeoGateCompletesPipeline(t *testing.T) {
	cfg := smallBufferConfig(t, 45e-3)
	sys, err := powersys.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gate, err := NewCulpeoGate(modelFor(cfg), sensePipeline())
	if err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{Sys: sys, Harvest: 2.5e-3, Gate: gate}
	res, err := rt.Run(sensePipeline(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 3 {
		t.Errorf("iterations = %d, want several in 30 s", res.Iterations)
	}
	if res.Reexecutions != 0 || res.PowerFailures != 0 {
		t.Errorf("culpeo-gated run should not fail: %+v", res)
	}
	if res.WastedEnergy != 0 {
		t.Errorf("wasted energy = %g, want 0", res.WastedEnergy)
	}
	if res.UsefulEnergy <= 0 {
		t.Error("no useful energy booked")
	}
}

func TestOpportunisticWastesEnergy(t *testing.T) {
	// On a small, high-ESR buffer with weak harvest, running the radio the
	// moment power returns fails repeatedly; the Culpeo gate waits instead.
	cfg := smallBufferConfig(t, 15e-3)
	prog := Program{Name: "radio-loop", Tasks: []AtomicTask{
		{ID: "burn", Profile: load.NewUniform(2e-3, 400e-3)}, // drains the buffer
		{ID: "radio", Profile: load.NewUniform(20e-3, 20e-3)},
	}}

	run := func(g Gate) Result {
		sys, err := powersys.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.ChargeTo(cfg.VHigh); err != nil {
			t.Fatal(err)
		}
		rt := &Runtime{Sys: sys, Harvest: 1.5e-3, Gate: g, MaxAttempts: 1000}
		res, err := rt.Run(prog, 60)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	opp := run(Opportunistic{})
	gate, err := NewCulpeoGate(modelFor(cfg), prog)
	if err != nil {
		t.Fatal(err)
	}
	cul := run(gate)

	if opp.Reexecutions == 0 {
		t.Fatalf("opportunistic run never failed — scenario not marginal: %+v", opp)
	}
	if cul.Reexecutions != 0 {
		t.Errorf("culpeo-gated run re-executed %d times", cul.Reexecutions)
	}
	// Throughput stays comparable: failure is cheap in a deadline-free
	// pipeline (the hysteresis recharge refills the buffer), so Culpeo's
	// win here is predictability — zero failures and waste — not raw rate.
	if cul.Iterations < opp.Iterations*7/10 {
		t.Errorf("culpeo iterations (%d) collapsed vs opportunistic (%d)",
			cul.Iterations, opp.Iterations)
	}
	if cul.Iterations == 0 {
		t.Error("culpeo gate made no progress")
	}
	if !(opp.WastedEnergy > 0) {
		t.Error("opportunistic waste not recorded")
	}
}

func TestLiveLockDetection(t *testing.T) {
	// A task whose V_safe exceeds V_high on this buffer: the opportunistic
	// executor re-executes forever (prolonged non-termination).
	cfg := smallBufferConfig(t, 15e-3)
	// 10 mA for 3 s needs ~100 mJ; the buffer holds ~30 mJ of usable
	// energy, so the task can never finish in one discharge.
	prog := Program{Name: "doomed", Tasks: []AtomicTask{
		{ID: "bigjob", Profile: load.NewUniform(10e-3, 3.0)},
	}}
	sys, err := powersys.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{Sys: sys, Harvest: 2.5e-3, Gate: Opportunistic{}, MaxAttempts: 5}
	res, err := rt.Run(prog, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !res.LiveLocked || res.LiveLockedTask != "bigjob" {
		t.Fatalf("expected livelock on bigjob: %+v", res)
	}
	if res.Iterations != 0 {
		t.Error("doomed program should complete nothing")
	}

	// Culpeo-PG flags the same task as infeasible at compile time.
	idx, err := FeasibleOn(modelFor(cfg), prog)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Errorf("FeasibleOn = %d, want task 0 flagged", idx)
	}
}

func TestDecomposeFeasibleFixesLivelock(t *testing.T) {
	cfg := smallBufferConfig(t, 15e-3)
	model := modelFor(cfg)
	big := AtomicTask{ID: "bigjob", Profile: load.NewUniform(10e-3, 3.0)}

	chunks, err := DecomposeFeasible(model, big, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("expected a real split, got %d chunks", len(chunks))
	}
	// Every chunk individually fits.
	for _, c := range chunks {
		est, err := Estimates(model, Program{Tasks: []AtomicTask{c}})
		if err != nil {
			t.Fatal(err)
		}
		if est[0].VSafe > model.VHigh {
			t.Errorf("chunk %s still infeasible", c.ID)
		}
	}
	// Chunk durations cover the original task.
	var total float64
	for _, c := range chunks {
		total += c.Profile.Duration()
	}
	if math.Abs(total-big.Profile.Duration()) > 1e-9 {
		t.Errorf("chunks cover %g s of %g s", total, big.Profile.Duration())
	}

	// The decomposed program actually terminates under the Culpeo gate.
	sys, err := powersys.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gate, err := NewCulpeoGate(model, Program{Tasks: chunks})
	if err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{Sys: sys, Harvest: 2.5e-3, Gate: gate}
	res, err := rt.Run(Program{Name: "fixed", Tasks: chunks}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Errorf("decomposed program never completed: %+v", res)
	}
	if res.LiveLocked {
		t.Error("decomposed program livelocked")
	}
}

func TestDecomposeFeasibleRejectsImpossiblePeak(t *testing.T) {
	// A load whose instantaneous current exceeds the buffer's deliverable
	// power can never be fixed by splitting in time.
	cfg := smallBufferConfig(t, 15e-3)
	model := modelFor(cfg)
	task := AtomicTask{ID: "monster", Profile: load.NewUniform(500e-3, 10e-3)}
	if _, err := DecomposeFeasible(model, task, 32); err == nil {
		t.Error("impossible peak accepted")
	}
}

func TestNewEnergyGateMeasures(t *testing.T) {
	cfg := smallBufferConfig(t, 45e-3)
	g, err := NewEnergyGate(cfg, sensePipeline())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.DeltaV2) != 3 {
		t.Fatalf("gate entries = %d", len(g.DeltaV2))
	}
	for i, d2 := range g.DeltaV2 {
		if d2 <= 0 {
			t.Errorf("task %d energy estimate non-positive", i)
		}
	}
	// The energy gate demands less voltage than the Culpeo gate for the
	// radio task — that is exactly its flaw.
	cg, err := NewCulpeoGate(modelFor(cfg), sensePipeline())
	if err != nil {
		t.Fatal(err)
	}
	radioIdx := 2
	energyNeed := math.Sqrt(cfg.VOff*cfg.VOff + g.DeltaV2[radioIdx])
	if !(cg.VSafe[radioIdx] > energyNeed) {
		t.Errorf("culpeo need %g should exceed energy need %g", cg.VSafe[radioIdx], energyNeed)
	}
}

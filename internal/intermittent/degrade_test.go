package intermittent

import (
	"math"
	"testing"

	"culpeo/internal/core"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

func TestDegradeBackoff(t *testing.T) {
	var nilD *Degrade
	if nilD.backoff(3) != 0 {
		t.Error("nil Degrade must not back off")
	}
	d := &Degrade{} // defaults: 25 mV base, 150 mV cap
	if d.backoff(0) != 0 {
		t.Error("no failures, no backoff")
	}
	want := []float64{25e-3, 75e-3, 150e-3, 150e-3}
	for f, w := range want {
		if got := d.backoff(f + 1); math.Abs(got-w) > 1e-12 {
			t.Errorf("backoff(%d) = %g, want %g", f+1, got, w)
		}
	}
	// Deep failure counts stay clamped (no overflow of the shift).
	if got := d.backoff(1000); got != 150e-3 {
		t.Errorf("backoff(1000) = %g", got)
	}
	custom := &Degrade{BackoffV: 10e-3, BackoffMax: 35e-3}
	if got := custom.backoff(2); math.Abs(got-30e-3) > 1e-12 {
		t.Errorf("custom backoff(2) = %g, want 30 mV", got)
	}
	if got := custom.backoff(3); got != 35e-3 {
		t.Errorf("custom backoff cap: %g", got)
	}
}

func TestDegradeMaxRetriesDefault(t *testing.T) {
	var nilD *Degrade
	if nilD.maxRetries() != 5 || (&Degrade{}).maxRetries() != 5 {
		t.Error("default max retries must be 5")
	}
	if (&Degrade{MaxRetries: 2}).maxRetries() != 2 {
		t.Error("explicit max retries ignored")
	}
}

// TestEscalationDecomposesLivelockedTask drives the scenario of
// TestLiveLockDetection — a task whose V_safe exceeds V_high, dispatched by
// an oblivious gate — but with graceful degradation enabled: after
// MaxRetries failures the runtime must decompose the task mid-run and then
// make real progress instead of livelocking.
func TestEscalationDecomposesLivelockedTask(t *testing.T) {
	cfg := smallBufferConfig(t, 15e-3)
	model := modelFor(cfg)
	prog := Program{Name: "doomed", Tasks: []AtomicTask{
		{ID: "bigjob", Profile: load.NewUniform(10e-3, 3.0)},
	}}
	sys, err := powersys.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{
		Sys: sys, Harvest: 2.5e-3, Gate: Opportunistic{}, MaxAttempts: 50,
		Degrade: &Degrade{MaxRetries: 2, MaxChunks: 16, Model: &model},
	}
	res, err := rt.Run(prog, 600)
	if err != nil {
		t.Fatal(err)
	}
	if res.Escalations == 0 {
		t.Fatalf("runtime never escalated: %+v", res)
	}
	if res.LiveLocked {
		t.Fatalf("escalation did not break the livelock: %+v", res)
	}
	if res.Iterations == 0 {
		t.Fatalf("decomposed program completed nothing: %+v", res)
	}
	// The original program the caller handed in must be untouched.
	if len(prog.Tasks) != 1 || prog.Tasks[0].ID != "bigjob" {
		t.Error("escalation mutated the caller's program")
	}
}

// TestEscalationBoundedThenLivelock: when decomposition cannot help (the
// peak load exceeds the buffer's deliverable power at any chunking), the
// runtime must fall back to the livelock detector rather than loop in
// escalation attempts.
func TestEscalationBoundedThenLivelock(t *testing.T) {
	cfg := smallBufferConfig(t, 15e-3)
	model := modelFor(cfg)
	prog := Program{Name: "monster", Tasks: []AtomicTask{
		{ID: "monster", Profile: load.NewUniform(500e-3, 10e-3)},
	}}
	sys, err := powersys.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := &Runtime{
		Sys: sys, Harvest: 2.5e-3, Gate: Opportunistic{}, MaxAttempts: 4,
		Degrade: &Degrade{MaxRetries: 2, Model: &model},
	}
	res, err := rt.Run(prog, 600)
	if err != nil {
		t.Fatal(err)
	}
	if res.Escalations != 0 {
		t.Errorf("impossible task should not count an escalation: %+v", res)
	}
	if !res.LiveLocked || res.LiveLockedTask != "monster" {
		t.Errorf("expected livelock fallback: %+v", res)
	}
}

// TestAdaptiveMarginGuardsBiasedReads: a measurement chain that reads 60 mV
// high makes the Culpeo gate dispatch early and fail; the adaptive margin
// must absorb the bias after at most a few failures, and the margin-guarded
// run must end with strictly fewer re-executions than the unguarded one.
func TestAdaptiveMarginGuardsBiasedReads(t *testing.T) {
	cfg := smallBufferConfig(t, 15e-3)
	prog := Program{Name: "radio-loop", Tasks: []AtomicTask{
		{ID: "radio", Profile: load.NewUniform(20e-3, 40e-3)},
	}}
	gate, err := NewCulpeoGate(modelFor(cfg), prog)
	if err != nil {
		t.Fatal(err)
	}
	run := func(margin *core.AdaptiveMargin) Result {
		sys, err := powersys.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt := &Runtime{
			Sys: sys, Harvest: 2.5e-3, Gate: gate, MaxAttempts: 1000,
			Read:   func() float64 { return sys.VTerm() + 60e-3 },
			Margin: margin,
		}
		res, err := rt.Run(prog, 120)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	biased := run(nil)
	if biased.Reexecutions == 0 {
		t.Fatalf("+60 mV read bias never caused a failure — scenario not marginal: %+v", biased)
	}
	guarded := run(&core.AdaptiveMargin{
		Base: 20e-3, Max: 200e-3, Floor: 5e-3, Inflate: 2, DecayAfter: 1000,
	})
	if guarded.Reexecutions >= biased.Reexecutions {
		t.Errorf("margin did not reduce failures: %d vs %d",
			guarded.Reexecutions, biased.Reexecutions)
	}
	if guarded.Iterations == 0 {
		t.Error("guarded run made no progress")
	}
}

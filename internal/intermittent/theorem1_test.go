package intermittent

import (
	"math/rand"
	"testing"

	"culpeo/internal/capacitor"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

// TestTheorem1Property is the paper's central guarantee as a property test:
// on a fault-free device, a program dispatched through the Culpeo gate
// never suffers a Theorem-1 violation (a dispatched task destroyed by a
// power failure), across randomized buffers, programs and harvest rates.
// The seed is fixed so the sampled configurations are reproducible.
func TestTheorem1Property(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 6
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		c := 20e-3 + rng.Float64()*30e-3 // 20–50 mF
		esr := 1 + rng.Float64()*7       // 1–8 Ω
		cfg := powersys.Capybara()
		net, err := capacitor.NewNetwork(&capacitor.Branch{
			Name: "main", C: c, ESR: esr, Voltage: cfg.VHigh,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Storage = net
		cfg.DT = 40e-6

		nTasks := 1 + rng.Intn(3)
		prog := Program{Name: "random"}
		for i := 0; i < nTasks; i++ {
			amps := 2e-3 + rng.Float64()*23e-3 // 2–25 mA
			dur := 5e-3 + rng.Float64()*95e-3  // 5–100 ms
			var p load.Profile
			if rng.Intn(2) == 0 {
				p = load.NewUniform(amps, dur)
			} else {
				p = load.NewPulse(amps, dur)
			}
			prog.Tasks = append(prog.Tasks, AtomicTask{ID: string(rune('a' + i)), Profile: p})
		}

		model := modelFor(cfg)
		if idx, err := FeasibleOn(model, prog); err != nil || idx >= 0 {
			// An infeasible draw proves nothing about dispatch: skip it the
			// way Culpeo-PG rejects it at compile time.
			continue
		}
		gate, err := NewCulpeoGate(model, prog)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := powersys.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		harvest := rng.Float64() * 5e-3
		rt := &Runtime{Sys: sys, Harvest: harvest, Gate: gate, MaxAttempts: 1000}
		res, err := rt.Run(prog, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reexecutions != 0 || res.PowerFailures != 0 {
			t.Errorf("trial %d (C=%.3g ESR=%.2g harvest=%.3g, %d tasks): %d violations, %d power failures",
				trial, c, esr, harvest, nTasks, res.Reexecutions, res.PowerFailures)
		}
		if res.TasksCompleted == 0 {
			t.Errorf("trial %d: gate starved the program entirely", trial)
		}
	}
}

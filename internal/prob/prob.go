// Package prob implements the paper's second future-work direction
// (Section IX, "Probabilistic Resource Reasoning"): completion-probability
// bounds for tasks whose cost varies run to run (e.g. input-dependent
// "knob" values), with voltage modelled as a resource.
//
// Compile-time tools bound completion probability from energy
// distributions; the paper's point is that "a task could with all
// likelihood have enough energy to run and still fail" because of the ESR
// drop. This package provides both bounds over the same task
// distribution:
//
//   - EnergyQuantileVSafe: the energy-only probabilistic bound — the
//     starting voltage whose stored energy covers the task's energy at the
//     target quantile. ESR-blind.
//   - VSafeQuantile: the voltage-aware bound — the lowest starting voltage
//     at which the Monte-Carlo completion probability (measured on the
//     full simulator) reaches the target.
//
// Everything is deterministic per seed.
package prob

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

// TaskDist generates task instances: each Sample is one possible execution
// of the task (e.g. a matrix multiply whose input dimension varies).
type TaskDist interface {
	Name() string
	// Sample draws one execution's load profile.
	Sample(rng *rand.Rand) load.Profile
}

// KnobPulse is a pulse task whose duration (the "knob") is uniform in
// [TMin, TMax] — the paper's matrix-dimension example in load form.
type KnobPulse struct {
	ID         string
	ILoad      float64
	TMin, TMax float64
	// Compute tail, as in Table III's pulse loads; zero disables it.
	ICompute, TCompute float64
}

func (k KnobPulse) Name() string {
	if k.ID != "" {
		return k.ID
	}
	return fmt.Sprintf("knob-pulse-%gmA", k.ILoad*1e3)
}

func (k KnobPulse) Sample(rng *rand.Rand) load.Profile {
	t := k.TMin + rng.Float64()*(k.TMax-k.TMin)
	p := load.Pulse{
		ID:       k.Name(),
		ILoad:    k.ILoad,
		TPulse:   t,
		ICompute: k.ICompute,
		TCompute: k.TCompute,
	}
	return p
}

// KnobMix draws uniformly from a set of concrete profiles (e.g. the
// different code paths a task can take).
type KnobMix struct {
	ID       string
	Profiles []load.Profile
}

func (k KnobMix) Name() string { return k.ID }

func (k KnobMix) Sample(rng *rand.Rand) load.Profile {
	return k.Profiles[rng.Intn(len(k.Profiles))]
}

// CompletionProb estimates P(task completes | started at vStart) by n
// Monte-Carlo trials on isolated copies of the power system.
func CompletionProb(cfg powersys.Config, d TaskDist, vStart float64, n int, seed int64) (float64, error) {
	if d == nil || n <= 0 {
		return 0, errors.New("prob: need a distribution and positive trials")
	}
	rng := rand.New(rand.NewSource(seed))
	ok := 0
	for i := 0; i < n; i++ {
		task := d.Sample(rng)
		c := cfg
		c.Storage = cfg.Storage.Clone()
		sys, err := powersys.New(c)
		if err != nil {
			return 0, err
		}
		if err := sys.ChargeTo(c.VHigh); err != nil {
			return 0, err
		}
		if err := sys.DischargeTo(vStart); err != nil {
			return 0, err
		}
		sys.Monitor().Force(true)
		res := sys.Run(task, powersys.RunOptions{SkipRebound: true})
		if res.Completed && res.VMin >= c.VOff {
			ok++
		}
	}
	return float64(ok) / float64(n), nil
}

// VSafeQuantile finds the lowest starting voltage whose Monte-Carlo
// completion probability is at least target (e.g. 0.99). Completion
// probability is monotone in the starting voltage, so bisection applies.
// It returns an error when even V_high cannot reach the target.
func VSafeQuantile(cfg powersys.Config, d TaskDist, target float64, n int, seed int64) (float64, error) {
	if target <= 0 || target > 1 {
		return 0, fmt.Errorf("prob: target %g outside (0,1]", target)
	}
	pHigh, err := CompletionProb(cfg, d, cfg.VHigh, n, seed)
	if err != nil {
		return 0, err
	}
	if pHigh < target {
		return 0, fmt.Errorf("prob: %s reaches only %.3f completion even from V_high", d.Name(), pHigh)
	}
	lo, hi := cfg.VOff, cfg.VHigh
	for i := 0; i < 20; i++ {
		mid := 0.5 * (lo + hi)
		p, err := CompletionProb(cfg, d, mid, n, seed)
		if err != nil {
			return 0, err
		}
		if p >= target {
			hi = mid
		} else {
			lo = mid
		}
		if hi-lo < 2e-3 {
			break
		}
	}
	return hi, nil
}

// EnergyQuantileVSafe is the energy-only probabilistic bound: sample n
// task energies, take the target quantile, and return the voltage whose
// stored energy above V_off covers it — the reasoning of compile-time
// energy tools, which "can incorrectly conclude a task likely terminates
// when ESR drops will actually pull the voltage beneath the power-off
// threshold".
func EnergyQuantileVSafe(cfg powersys.Config, d TaskDist, target float64, n int, seed int64) (float64, error) {
	if target <= 0 || target > 1 {
		return 0, fmt.Errorf("prob: target %g outside (0,1]", target)
	}
	if d == nil || n <= 0 {
		return 0, errors.New("prob: need a distribution and positive trials")
	}
	rng := rand.New(rand.NewSource(seed))
	energies := make([]float64, n)
	for i := range energies {
		energies[i] = load.Energy(d.Sample(rng), cfg.Output.VOut, 0)
	}
	sort.Float64s(energies)
	idx := int(target*float64(n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	e := energies[idx]
	c := cfg.Storage.TotalCapacitance()
	return math.Sqrt(cfg.VOff*cfg.VOff + 2*e/c), nil
}

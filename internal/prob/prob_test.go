package prob

import (
	"math/rand"
	"testing"

	"culpeo/internal/load"
	"culpeo/internal/powersys"
)

func knobTask() KnobPulse {
	// A 25 mA pulse whose duration varies 2–20 ms with a compute tail: the
	// ESR drop is ~constant across the knob, so the energy distribution is
	// wide but the voltage requirement is dominated by the drop.
	return KnobPulse{
		ID: "knob-radio", ILoad: 25e-3, TMin: 2e-3, TMax: 20e-3,
		ICompute: 1.5e-3, TCompute: 100e-3,
	}
}

func TestKnobPulseSampling(t *testing.T) {
	k := knobTask()
	rng := rand.New(rand.NewSource(1))
	sawShort, sawLong := false, false
	for i := 0; i < 200; i++ {
		p := k.Sample(rng)
		d := p.Duration() - 100e-3 // strip the tail
		if d < 2e-3-1e-9 || d > 20e-3+1e-9 {
			t.Fatalf("knob outside range: %g", d)
		}
		if d < 5e-3 {
			sawShort = true
		}
		if d > 17e-3 {
			sawLong = true
		}
	}
	if !sawShort || !sawLong {
		t.Error("knob not exploring its range")
	}
	if k.Name() != "knob-radio" {
		t.Error("name wrong")
	}
	if (KnobPulse{ILoad: 5e-3}).Name() == "" {
		t.Error("default name empty")
	}
}

func TestKnobMix(t *testing.T) {
	m := KnobMix{ID: "mix", Profiles: []load.Profile{
		load.NewUniform(5e-3, 1e-3),
		load.NewUniform(10e-3, 1e-3),
	}}
	rng := rand.New(rand.NewSource(2))
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		seen[m.Sample(rng).Name()] = true
	}
	if len(seen) != 2 {
		t.Error("mix not drawing all profiles")
	}
	if m.Name() != "mix" {
		t.Error("name wrong")
	}
}

func TestCompletionProbMonotone(t *testing.T) {
	cfg := powersys.Capybara()
	d := knobTask()
	low, err := CompletionProb(cfg, d, 1.75, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	high, err := CompletionProb(cfg, d, 2.4, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !(high >= low) {
		t.Errorf("completion probability not monotone: %g @1.75 vs %g @2.4", low, high)
	}
	if high < 0.99 {
		t.Errorf("from 2.4 V the knob task should always complete: %g", high)
	}
	// Deterministic per seed.
	again, _ := CompletionProb(cfg, d, 1.75, 40, 7)
	if again != low {
		t.Error("Monte Carlo not deterministic per seed")
	}
}

func TestCompletionProbValidation(t *testing.T) {
	cfg := powersys.Capybara()
	if _, err := CompletionProb(cfg, nil, 2.0, 10, 1); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := CompletionProb(cfg, knobTask(), 2.0, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestEnergyBoundIsOptimistic(t *testing.T) {
	// The §IX headline: the 99th-percentile *energy* bound is far below
	// what actually completes 99% of the time, because the ESR drop is
	// invisible to energy reasoning.
	cfg := powersys.Capybara()
	d := knobTask()
	const target, n, seed = 0.95, 60, 11

	eBound, err := EnergyQuantileVSafe(cfg, d, target, 200, seed)
	if err != nil {
		t.Fatal(err)
	}
	vBound, err := VSafeQuantile(cfg, d, target, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !(vBound > eBound+0.1) {
		t.Fatalf("voltage bound (%g) should exceed energy bound (%g) by the ESR drop", vBound, eBound)
	}
	// Starting at the energy bound fails most of the time.
	pEnergy, err := CompletionProb(cfg, d, eBound, n, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	if pEnergy > 0.2 {
		t.Errorf("energy bound completes %g of runs — should be doomed", pEnergy)
	}
	// Starting at the voltage bound meets the target (fresh seed).
	pVolt, err := CompletionProb(cfg, d, vBound, n, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	if pVolt < target-0.1 {
		t.Errorf("voltage bound completes only %g of runs", pVolt)
	}
}

func TestVSafeQuantileValidation(t *testing.T) {
	cfg := powersys.Capybara()
	if _, err := VSafeQuantile(cfg, knobTask(), 0, 10, 1); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := VSafeQuantile(cfg, knobTask(), 1.5, 10, 1); err == nil {
		t.Error("target above 1 accepted")
	}
	// An infeasible distribution errors out.
	doomed := KnobPulse{ILoad: 0.8, TMin: 10e-3, TMax: 20e-3}
	if _, err := VSafeQuantile(cfg, doomed, 0.9, 10, 1); err == nil {
		t.Error("infeasible distribution accepted")
	}
}

func TestEnergyQuantileValidation(t *testing.T) {
	cfg := powersys.Capybara()
	if _, err := EnergyQuantileVSafe(cfg, nil, 0.9, 10, 1); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := EnergyQuantileVSafe(cfg, knobTask(), 0, 10, 1); err == nil {
		t.Error("zero target accepted")
	}
	// Quantile ordering: a higher target never lowers the bound.
	lo, err := EnergyQuantileVSafe(cfg, knobTask(), 0.5, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := EnergyQuantileVSafe(cfg, knobTask(), 0.99, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(hi >= lo) {
		t.Errorf("quantile bound not monotone: %g vs %g", lo, hi)
	}
}

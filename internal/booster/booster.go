// Package booster models the voltage regulators of an energy-harvesting
// power system (Figure 2 of the paper): the output booster that supplies a
// stable V_out to the load from a declining capacitor voltage, the input
// booster that charges the capacitor from a fluctuating harvester, and the
// voltage monitor that gates the output booster with V_high/V_off
// hysteresis.
package booster

import (
	"fmt"
	"math"
)

// EfficiencyLine is the paper's linear efficiency model for the output
// booster (Section IV-B): η(V) = m·V + b at a representative load current,
// clamped to [Min, Max]. The assumption used by Culpeo-R — efficiency
// decreases monotonically as input voltage declines — holds when m > 0.
type EfficiencyLine struct {
	M, B     float64 // slope (per volt) and intercept
	Min, Max float64 // clamp bounds, e.g. 0.05 and 0.98
}

// DefaultEfficiency approximates a TPS61200-class boost converter between
// 1.6 V and 2.56 V input: about 0.72 at V_off rising to about 0.90 near
// V_high.
func DefaultEfficiency() EfficiencyLine {
	return EfficiencyLine{M: 0.1875, B: 0.42, Min: 0.05, Max: 0.98}
}

// At returns the efficiency at capacitor terminal voltage v.
func (e EfficiencyLine) At(v float64) float64 {
	eta := e.M*v + e.B
	if eta < e.Min {
		return e.Min
	}
	if eta > e.Max {
		return e.Max
	}
	return eta
}

// Validate checks the line is usable.
func (e EfficiencyLine) Validate() error {
	if e.Min <= 0 || e.Max > 1 || e.Min > e.Max {
		return fmt.Errorf("booster: efficiency clamp [%g,%g] invalid", e.Min, e.Max)
	}
	return nil
}

// Output models the output booster: it delivers V_out to the load and draws
// P_in = P_out/η(V_cap) from the energy buffer.
type Output struct {
	VOut       float64        // regulated output voltage (e.g. 2.55 V)
	Efficiency EfficiencyLine // η(V) of the conversion
	MaxInput   float64        // max current the booster can draw from the cap (A); 0 = unlimited
}

// DefaultOutput mirrors the evaluated Capybara configuration: V_out 2.55 V.
func DefaultOutput() Output {
	return Output{VOut: 2.55, Efficiency: DefaultEfficiency(), MaxInput: 1.3}
}

// Validate checks parameters.
func (o Output) Validate() error {
	if o.VOut <= 0 {
		return fmt.Errorf("booster: non-positive VOut %g", o.VOut)
	}
	if o.MaxInput < 0 {
		return fmt.Errorf("booster: negative MaxInput %g", o.MaxInput)
	}
	return o.Efficiency.Validate()
}

// InputPower returns the power the booster must draw from the buffer at
// terminal voltage vcap to deliver load current iLoad at VOut.
func (o Output) InputPower(iLoad, vcap float64) float64 {
	if iLoad <= 0 {
		return 0
	}
	return o.VOut * iLoad / o.Efficiency.At(vcap)
}

// InputCurrentQuadratic solves the single-branch ESR coupling in closed
// form: the booster draws I_in from a source with open-circuit voltage voc
// behind resistance r, such that I_in·(voc − I_in·r) = pin. It returns the
// stable (low-current) root and true, or (0, false) when the source cannot
// deliver pin through r (the discriminant is negative — brown-out).
func InputCurrentQuadratic(voc, r, pin float64) (float64, bool) {
	if pin <= 0 {
		return 0, true
	}
	if voc <= 0 {
		return 0, false
	}
	if r == 0 {
		return pin / voc, true
	}
	disc := voc*voc - 4*r*pin
	if disc < 0 {
		return 0, false
	}
	return (voc - math.Sqrt(disc)) / (2 * r), true
}

// Monitor is the voltage monitor (BU4924-class) that enables the output
// booster only while the buffer voltage is within the operating window:
// once the terminal voltage falls below VOff the load is cut, and it is not
// re-enabled until the buffer recharges to VHigh (Section II-A).
type Monitor struct {
	VHigh float64 // turn-on (fully recharged) threshold, e.g. 2.56 V
	VOff  float64 // power-off threshold, e.g. 1.6 V

	on bool
}

// NewMonitor builds a monitor. The output starts disabled (device boots only
// after a full recharge).
func NewMonitor(vHigh, vOff float64) (*Monitor, error) {
	if vOff <= 0 || vHigh <= vOff {
		return nil, fmt.Errorf("booster: invalid monitor window VHigh=%g VOff=%g", vHigh, vOff)
	}
	return &Monitor{VHigh: vHigh, VOff: vOff}, nil
}

// On reports whether the output booster is currently enabled.
func (m *Monitor) On() bool { return m.on }

// Observe updates the hysteresis state for terminal voltage v and returns
// the new enabled state.
func (m *Monitor) Observe(v float64) bool {
	if m.on {
		if v < m.VOff {
			m.on = false
		}
	} else {
		if v >= m.VHigh {
			m.on = true
		}
	}
	return m.on
}

// Force sets the state explicitly; the test harness uses this to isolate
// the power system from the load or to trigger delivery at a chosen V_start
// (Section VI-A: "A test harness ... explicitly triggers the power system to
// begin delivering power").
func (m *Monitor) Force(on bool) { m.on = on }

// OperatingRange returns VHigh − VOff, the denominator used when the paper
// reports errors as a percentage of the operating range.
func (m *Monitor) OperatingRange() float64 { return m.VHigh - m.VOff }

// Input models the input booster (BQ25504-class): it converts harvested
// power into charge current for the buffer, decoupling charging from the
// harvester's voltage limitations, and stops at VHigh.
type Input struct {
	Efficiency float64 // flat conversion efficiency of the input path
	MaxCurrent float64 // charge current limit (A); 0 = unlimited
	VHigh      float64 // stop charging at this buffer voltage
}

// DefaultInput mirrors a BQ25504-style boost charger feeding a 2.56 V rail.
func DefaultInput() Input {
	return Input{Efficiency: 0.80, MaxCurrent: 0.100, VHigh: 2.56}
}

// Validate checks parameters.
func (in Input) Validate() error {
	if in.Efficiency <= 0 || in.Efficiency > 1 {
		return fmt.Errorf("booster: input efficiency %g out of (0,1]", in.Efficiency)
	}
	if in.MaxCurrent < 0 {
		return fmt.Errorf("booster: negative input MaxCurrent %g", in.MaxCurrent)
	}
	if in.VHigh <= 0 {
		return fmt.Errorf("booster: non-positive input VHigh %g", in.VHigh)
	}
	return nil
}

// ChargeCurrent returns the current delivered into the buffer at voltage
// vcap given harvested power pHarvest (watts at the harvester output).
func (in Input) ChargeCurrent(pHarvest, vcap float64) float64 {
	if pHarvest <= 0 || vcap >= in.VHigh {
		return 0
	}
	// Below a small floor the converter pushes its max current (cold start
	// behaviour is out of scope; the buffer never operates near 0 V in our
	// experiments).
	v := vcap
	if v < 0.1 {
		v = 0.1
	}
	i := pHarvest * in.Efficiency / v
	if in.MaxCurrent > 0 && i > in.MaxCurrent {
		i = in.MaxCurrent
	}
	return i
}

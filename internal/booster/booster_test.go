package booster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEfficiencyLine(t *testing.T) {
	e := DefaultEfficiency()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// Monotone increasing with voltage inside the clamp window.
	if !(e.At(2.5) > e.At(1.6)) {
		t.Error("efficiency should rise with input voltage")
	}
	// Clamps.
	if e.At(-100) != e.Min {
		t.Error("low clamp failed")
	}
	if e.At(100) != e.Max {
		t.Error("high clamp failed")
	}
	// Sanity of the default line near the Capybara operating window.
	if eta := e.At(1.6); eta < 0.6 || eta > 0.8 {
		t.Errorf("η(1.6V) = %g outside plausible converter range", eta)
	}
	if eta := e.At(2.56); eta < 0.8 || eta > 0.95 {
		t.Errorf("η(2.56V) = %g outside plausible converter range", eta)
	}
}

func TestEfficiencyValidate(t *testing.T) {
	bad := []EfficiencyLine{
		{Min: 0, Max: 0.9},
		{Min: 0.5, Max: 1.5},
		{Min: 0.9, Max: 0.5},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad line %d accepted", i)
		}
	}
}

func TestOutputInputPower(t *testing.T) {
	o := DefaultOutput()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	// 50 mA at 2.55 V out = 127.5 mW out; at η(2.4V) it takes more in.
	pin := o.InputPower(50e-3, 2.4)
	pout := o.VOut * 50e-3
	if !(pin > pout) {
		t.Errorf("input power %g must exceed output power %g", pin, pout)
	}
	eta := o.Efficiency.At(2.4)
	if math.Abs(pin*eta-pout) > 1e-12 {
		t.Errorf("power balance violated: pin*η=%g pout=%g", pin*eta, pout)
	}
	if o.InputPower(0, 2.4) != 0 || o.InputPower(-1, 2.4) != 0 {
		t.Error("non-positive load must draw nothing")
	}
	// Lower capacitor voltage → lower efficiency → more input power.
	if !(o.InputPower(50e-3, 1.7) > o.InputPower(50e-3, 2.5)) {
		t.Error("input power should grow as the capacitor sags")
	}
}

func TestOutputValidate(t *testing.T) {
	bad := []Output{
		{VOut: 0, Efficiency: DefaultEfficiency()},
		{VOut: 2.5, MaxInput: -1, Efficiency: DefaultEfficiency()},
		{VOut: 2.5, Efficiency: EfficiencyLine{Min: 0, Max: 1}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad output %d accepted", i)
		}
	}
}

func TestInputCurrentQuadratic(t *testing.T) {
	// Known case: voc=2.4, r=1.5, pin=0.2 → I(2.4 − 1.5I) = 0.2.
	i, ok := InputCurrentQuadratic(2.4, 1.5, 0.2)
	if !ok {
		t.Fatal("solvable case reported as brown-out")
	}
	if got := i * (2.4 - 1.5*i); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("root does not satisfy equation: %g", got)
	}
	// Stable root: must be the smaller of the two (I < voc/(2r)).
	if i >= 2.4/(2*1.5) {
		t.Error("returned the unstable high-current root")
	}
	// Zero resistance short-circuits to P/V.
	i, ok = InputCurrentQuadratic(2.0, 0, 0.5)
	if !ok || math.Abs(i-0.25) > 1e-15 {
		t.Errorf("zero-ESR case: got %g, %v", i, ok)
	}
	// Infeasible: max deliverable power is voc²/(4r).
	if _, ok := InputCurrentQuadratic(2.0, 10, 0.2); ok {
		t.Error("brown-out case reported solvable") // max is 0.1 W
	}
	// Degenerate inputs.
	if i, ok := InputCurrentQuadratic(2.0, 1, 0); !ok || i != 0 {
		t.Error("zero power should draw zero current")
	}
	if _, ok := InputCurrentQuadratic(0, 1, 0.1); ok {
		t.Error("zero voc cannot deliver power")
	}
}

func TestInputCurrentQuadraticProperty(t *testing.T) {
	f := func(vRaw, rRaw, pRaw float64) bool {
		voc := math.Abs(math.Mod(vRaw, 3)) + 0.5
		r := math.Abs(math.Mod(rRaw, 10))
		pmax := voc * voc / (4*r + 1e-12)
		pin := math.Abs(math.Mod(pRaw, 1))
		i, ok := InputCurrentQuadratic(voc, r, pin)
		if pin > pmax+1e-12 {
			return !ok
		}
		if !ok {
			// Borderline numerical cases may legitimately fail near pmax.
			return pin > pmax*0.999
		}
		// The root satisfies the power balance and keeps terminal voltage
		// positive.
		bal := i * (voc - i*r)
		return math.Abs(bal-pin) < 1e-9 && voc-i*r > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonitorHysteresis(t *testing.T) {
	m, err := NewMonitor(2.56, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if m.On() {
		t.Fatal("monitor must start off")
	}
	// Rising through VOff does not enable; only reaching VHigh does.
	if m.Observe(2.0) {
		t.Error("enabled below VHigh from off state")
	}
	if !m.Observe(2.56) {
		t.Error("failed to enable at VHigh")
	}
	// Stays on through the window, drops off below VOff.
	if !m.Observe(1.7) {
		t.Error("disabled inside operating window")
	}
	if m.Observe(1.59) {
		t.Error("stayed on below VOff")
	}
	// Needs full recharge to re-enable.
	if m.Observe(2.0) {
		t.Error("re-enabled before full recharge")
	}
	if !m.Observe(2.6) {
		t.Error("failed to re-enable at VHigh")
	}
	if got := m.OperatingRange(); math.Abs(got-0.96) > 1e-12 {
		t.Errorf("operating range = %g", got)
	}
}

func TestMonitorForce(t *testing.T) {
	m, _ := NewMonitor(2.56, 1.6)
	m.Force(true)
	if !m.On() {
		t.Error("Force(true) ignored")
	}
	m.Force(false)
	if m.On() {
		t.Error("Force(false) ignored")
	}
}

func TestMonitorValidate(t *testing.T) {
	if _, err := NewMonitor(1.0, 1.6); err == nil {
		t.Error("VHigh <= VOff accepted")
	}
	if _, err := NewMonitor(2.0, 0); err == nil {
		t.Error("zero VOff accepted")
	}
}

func TestInputChargeCurrent(t *testing.T) {
	in := DefaultInput()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Charging stops at VHigh.
	if in.ChargeCurrent(0.01, 2.56) != 0 {
		t.Error("should not charge at VHigh")
	}
	// No harvest, no charge.
	if in.ChargeCurrent(0, 2.0) != 0 {
		t.Error("no harvest should mean no charge")
	}
	// Power conversion: 10 mW at 2.0 V with η=0.8 → 4 mA.
	if got := in.ChargeCurrent(0.010, 2.0); math.Abs(got-0.004) > 1e-12 {
		t.Errorf("charge current = %g, want 0.004", got)
	}
	// Current limit engages for strong harvest.
	if got := in.ChargeCurrent(10, 2.0); got != in.MaxCurrent {
		t.Errorf("current limit not applied: %g", got)
	}
	// Low-voltage floor avoids divide-by-near-zero blowup: 10 mW at the
	// 0.1 V floor with η=0.8 is 80 mA, finite and below the limit.
	if got := in.ChargeCurrent(0.010, 0.0); math.Abs(got-0.080) > 1e-12 {
		t.Errorf("cold-start floor: got %g, want 0.080", got)
	}
}

func TestInputValidate(t *testing.T) {
	bad := []Input{
		{Efficiency: 0, VHigh: 2.5},
		{Efficiency: 1.2, VHigh: 2.5},
		{Efficiency: 0.8, MaxCurrent: -1, VHigh: 2.5},
		{Efficiency: 0.8, VHigh: 0},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad input %d accepted", i)
		}
	}
}

package load

import (
	"strings"
	"testing"
)

// FuzzTraceFromCSV checks the CSV ingester never panics and that accepted
// traces are physically valid.
func FuzzTraceFromCSV(f *testing.F) {
	for _, seed := range []string{
		"0.01\n0.02\n",
		"time_s,current_A\n0,0.01\n0.001,0.02\n",
		"# comment\n\n0.005\n",
		"a,b,c\n",
		"0,-1\n",
		strings.Repeat("0.001\n", 100),
		"0,0.01\n0,0.02\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := TraceFromCSV(strings.NewReader(s), "fuzz", 1000)
		if err != nil {
			return
		}
		if len(tr.Samples) == 0 {
			t.Fatal("accepted trace with no samples")
		}
		if tr.Rate <= 0 {
			t.Fatalf("accepted trace with rate %g", tr.Rate)
		}
		for i, v := range tr.Samples {
			if v < 0 {
				t.Fatalf("accepted negative sample %d = %g", i, v)
			}
		}
		if tr.Duration() <= 0 {
			t.Fatal("accepted zero-duration trace")
		}
	})
}

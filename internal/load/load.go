// Package load models the load-side current demand of an energy-harvesting
// device: the synthetic Uniform and Pulse profiles of Table III, the three
// real-peripheral signatures used in Figure 11 (gesture recognition, BLE
// radio, MNIST compute acceleration), and the peripheral operations used by
// the full applications of Section VI-B (IMU, photoresistor, microphone,
// FFT, encryption, BLE listen).
//
// A Profile maps time since the operation started to the current drawn from
// the output booster's regulated rail (V_out). Profiles compose by
// concatenation and superposition, and can be sampled into discrete current
// traces (the 125 kHz captures Culpeo-PG ingests).
package load

import (
	"fmt"
	"math"
)

// Profile is a deterministic current-versus-time demand placed on the
// regulated output rail.
type Profile interface {
	// Current returns the instantaneous load current (amperes at V_out) at
	// time t seconds after the operation starts. t outside [0, Duration())
	// returns 0.
	Current(t float64) float64
	// Duration returns the length of the operation in seconds.
	Duration() float64
	// Name identifies the profile in reports.
	Name() string
}

// Uniform is Table III's uniform load: a single rectangular pulse of Iload
// for Tpulse.
type Uniform struct {
	ID     string
	ILoad  float64 // amperes
	TPulse float64 // seconds
}

// NewUniform builds a named uniform profile.
func NewUniform(iLoad, tPulse float64) Uniform {
	return Uniform{
		ID:     fmt.Sprintf("uniform-%gmA-%gms", iLoad*1e3, tPulse*1e3),
		ILoad:  iLoad,
		TPulse: tPulse,
	}
}

func (u Uniform) Current(t float64) float64 {
	if t < 0 || t >= u.TPulse {
		return 0
	}
	return u.ILoad
}
func (u Uniform) Duration() float64 { return u.TPulse }
func (u Uniform) Name() string      { return u.ID }

// Pulse is Table III's pulsed load: a high current pulse (Iload for Tpulse)
// followed by TCompute of low-power compute at ICompute — "representing
// peripheral activation followed by low-power computing".
type Pulse struct {
	ID       string
	ILoad    float64
	TPulse   float64
	ICompute float64
	TCompute float64
}

// NewPulse builds the paper's pulse-plus-compute profile with the standard
// 1.5 mA, 100 ms compute tail.
func NewPulse(iLoad, tPulse float64) Pulse {
	return Pulse{
		ID:       fmt.Sprintf("pulse-%gmA-%gms", iLoad*1e3, tPulse*1e3),
		ILoad:    iLoad,
		TPulse:   tPulse,
		ICompute: 1.5e-3,
		TCompute: 100e-3,
	}
}

func (p Pulse) Current(t float64) float64 {
	switch {
	case t < 0:
		return 0
	case t < p.TPulse:
		return p.ILoad
	case t < p.TPulse+p.TCompute:
		return p.ICompute
	default:
		return 0
	}
}
func (p Pulse) Duration() float64 { return p.TPulse + p.TCompute }
func (p Pulse) Name() string      { return p.ID }

// Seq concatenates profiles back to back.
type Seq struct {
	ID    string
	Parts []Profile
}

// NewSeq builds a sequence profile.
func NewSeq(id string, parts ...Profile) Seq { return Seq{ID: id, Parts: parts} }

func (s Seq) Current(t float64) float64 {
	if t < 0 {
		return 0
	}
	for _, p := range s.Parts {
		d := p.Duration()
		if t < d {
			return p.Current(t)
		}
		t -= d
	}
	return 0
}

func (s Seq) Duration() float64 {
	var d float64
	for _, p := range s.Parts {
		d += p.Duration()
	}
	return d
}
func (s Seq) Name() string { return s.ID }

// Offset adds a constant baseline current (e.g. MCU active current or ADC
// profiling overhead) on top of another profile for its whole duration.
type Offset struct {
	Base Profile
	Add  float64
	ID   string
}

func (o Offset) Current(t float64) float64 {
	if t < 0 || t >= o.Duration() {
		return 0
	}
	return o.Base.Current(t) + o.Add
}
func (o Offset) Duration() float64 { return o.Base.Duration() }
func (o Offset) Name() string {
	if o.ID != "" {
		return o.ID
	}
	return o.Base.Name() + "+offset"
}

// Ramp rises linearly from I0 to I1 over T — used to synthesize the MNIST
// compute-acceleration trace's staged activity.
type Ramp struct {
	ID     string
	I0, I1 float64
	T      float64
}

func (r Ramp) Current(t float64) float64 {
	if t < 0 || t >= r.T || r.T <= 0 {
		return 0
	}
	return r.I0 + (r.I1-r.I0)*(t/r.T)
}
func (r Ramp) Duration() float64 { return r.T }
func (r Ramp) Name() string      { return r.ID }

// Trace is a sampled current profile at a fixed rate — the artifact
// Culpeo-PG ingests (captured at 125 kHz in the paper's prototype).
type Trace struct {
	ID      string
	Rate    float64   // samples per second
	Samples []float64 // amperes
}

// SampleRateDefault is the paper's profiling sample rate.
const SampleRateDefault = 125e3

// Sample discretizes p at rate samples/second (left-edge sampling).
func Sample(p Profile, rate float64) Trace {
	if rate <= 0 {
		rate = SampleRateDefault
	}
	n := int(math.Ceil(p.Duration() * rate))
	if n == 0 {
		n = 1
	}
	s := make([]float64, n)
	dt := 1 / rate
	for i := range s {
		s[i] = p.Current(float64(i) * dt)
	}
	return Trace{ID: p.Name(), Rate: rate, Samples: s}
}

func (tr Trace) Current(t float64) float64 {
	if t < 0 || len(tr.Samples) == 0 {
		return 0
	}
	i := int(t * tr.Rate)
	if i >= len(tr.Samples) {
		return 0
	}
	return tr.Samples[i]
}
func (tr Trace) Duration() float64 { return float64(len(tr.Samples)) / tr.Rate }
func (tr Trace) Name() string      { return tr.ID }

// Dt returns the sampling interval.
func (tr Trace) Dt() float64 { return 1 / tr.Rate }

// Energy returns the total charge-side energy of a profile delivered at the
// regulated rail voltage vOut: ∫ I(t)·V_out dt, integrated at the given
// resolution (samples per second; <=0 uses the default rate).
func Energy(p Profile, vOut, rate float64) float64 {
	tr := Sample(p, rate)
	dt := tr.Dt()
	var e float64
	for _, i := range tr.Samples {
		e += i * vOut * dt
	}
	return e
}

// PeakCurrent returns the maximum instantaneous current of the profile.
func PeakCurrent(p Profile, rate float64) float64 {
	tr := Sample(p, rate)
	var m float64
	for _, i := range tr.Samples {
		if i > m {
			m = i
		}
	}
	return m
}

// WidestPulse returns the duration of the longest contiguous run of samples
// at or above half the profile's peak current — the "width of the largest
// current pulse, excluding high frequency noise" that Culpeo-PG uses to
// select an ESR value from the measured ESR-versus-frequency curve
// (Section V-A).
func WidestPulse(p Profile, rate float64) float64 {
	tr := Sample(p, rate)
	peak := 0.0
	for _, i := range tr.Samples {
		if i > peak {
			peak = i
		}
	}
	if peak == 0 {
		return 0
	}
	thresh := peak / 2
	dt := tr.Dt()
	best, run := 0, 0
	for _, i := range tr.Samples {
		if i >= thresh {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return float64(best) * dt
}

// Window exposes the sub-interval [Start, Start+Dur) of a base profile as
// a standalone profile — the building block for splitting an oversized
// atomic task into feasible chunks.
type Window struct {
	ID    string
	Base  Profile
	Start float64
	Dur   float64
}

func (w Window) Current(t float64) float64 {
	if t < 0 || t >= w.Dur {
		return 0
	}
	return w.Base.Current(w.Start + t)
}
func (w Window) Duration() float64 { return w.Dur }
func (w Window) Name() string {
	if w.ID != "" {
		return w.ID
	}
	return fmt.Sprintf("%s[%g:%g]", w.Base.Name(), w.Start, w.Start+w.Dur)
}

// SplitEven cuts a profile into n equal-duration windows.
func SplitEven(p Profile, n int) []Profile {
	if n < 1 {
		n = 1
	}
	total := p.Duration()
	chunk := total / float64(n)
	out := make([]Profile, n)
	for i := 0; i < n; i++ {
		out[i] = Window{
			ID:    fmt.Sprintf("%s.%d/%d", p.Name(), i+1, n),
			Base:  p,
			Start: float64(i) * chunk,
			Dur:   chunk,
		}
	}
	return out
}

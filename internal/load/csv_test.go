package load

import (
	"math"
	"strings"
	"testing"
)

func TestTraceFromCSVOneColumn(t *testing.T) {
	in := "0.01\n0.02\n0.03\n"
	tr, err := TraceFromCSV(strings.NewReader(in), "x", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 3 || tr.Rate != 1000 || tr.ID != "x" {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Samples[1] != 0.02 {
		t.Error("sample value wrong")
	}
}

func TestTraceFromCSVTwoColumnInfersRate(t *testing.T) {
	in := "time_s,current_A\n0,0.01\n0.001,0.02\n0.002,0.03\n"
	tr, err := TraceFromCSV(strings.NewReader(in), "y", 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Rate-1000) > 1e-6 {
		t.Errorf("inferred rate = %g, want 1000", tr.Rate)
	}
	if len(tr.Samples) != 3 {
		t.Errorf("samples = %d", len(tr.Samples))
	}
}

func TestTraceFromCSVSkipsHeaderCommentsBlank(t *testing.T) {
	in := "# capture session 42\ncurrent\n\n0.005\n0.006\n"
	tr, err := TraceFromCSV(strings.NewReader(in), "z", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 2 {
		t.Errorf("samples = %d", len(tr.Samples))
	}
	if tr.Rate != SampleRateDefault {
		t.Error("default rate not applied")
	}
}

func TestTraceFromCSVErrors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"a,b,c\n1,2,3\n",       // three columns
		"0.01\nbroken\n",       // bad number mid-file
		"0,-0.01\n0.001,0.0\n", // negative current
		"0,0.01\n0,0.02\n",     // non-ascending time
		"0,abc\n",              // bad current column
	}
	for i, in := range cases {
		if _, err := TraceFromCSV(strings.NewReader(in), "x", 1000); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	orig := Sample(NewPulse(25e-3, 10e-3), 10e3)
	var sb strings.Builder
	if err := orig.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := TraceFromCSV(strings.NewReader(sb.String()), orig.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.Rate-orig.Rate) > 1e-3 {
		t.Errorf("rate mismatch: %g vs %g", back.Rate, orig.Rate)
	}
	if len(back.Samples) != len(orig.Samples) {
		t.Fatalf("sample count mismatch: %d vs %d", len(back.Samples), len(orig.Samples))
	}
	for i := range back.Samples {
		if math.Abs(back.Samples[i]-orig.Samples[i]) > 1e-12 {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestWindowAndSplitEven(t *testing.T) {
	base := NewPulse(25e-3, 10e-3) // 110 ms total
	w := Window{Base: base, Start: 5e-3, Dur: 10e-3}
	if w.Current(0) != 25e-3 {
		t.Error("window start should be inside the pulse")
	}
	if w.Current(6e-3) != 1.5e-3 {
		t.Error("window should see the compute tail after the pulse ends")
	}
	if w.Current(-1) != 0 || w.Current(11e-3) != 0 {
		t.Error("window bounds wrong")
	}
	if w.Duration() != 10e-3 {
		t.Error("window duration wrong")
	}
	if w.Name() == "" {
		t.Error("window name empty")
	}
	if (Window{ID: "n", Base: base, Dur: 1}).Name() != "n" {
		t.Error("custom window name ignored")
	}

	parts := SplitEven(base, 4)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	var total float64
	for _, p := range parts {
		total += p.Duration()
	}
	if math.Abs(total-base.Duration()) > 1e-12 {
		t.Errorf("split durations sum to %g", total)
	}
	// Energy is conserved across the split.
	var eParts float64
	for _, p := range parts {
		eParts += Energy(p, 2.55, 50e3)
	}
	eBase := Energy(base, 2.55, 50e3)
	if math.Abs(eParts-eBase)/eBase > 0.01 {
		t.Errorf("split energy %g vs base %g", eParts, eBase)
	}
	if len(SplitEven(base, 0)) != 1 {
		t.Error("degenerate split should yield one chunk")
	}
}

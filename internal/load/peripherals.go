package load

// Peripheral current signatures. Parameters come from Table III and the
// application descriptions in Section VI-B. On the real Capybara these were
// captured from the physical parts (APDS-9960, CC2650 BLE, Cortex-M4 running
// an MNIST DNN, LSM6DS3 IMU, SPU0414HR5H microphone, SX1276 LoRa); here they
// are synthesized with the same peak current, pulse width, and shape, which
// is all the power system observes.

// Gesture is the gesture-recognition sensor operation: a short, sharp
// 25 mA peak for 3.5 ms (Table III).
func Gesture() Profile {
	return Seq{ID: "gesture", Parts: []Profile{
		Ramp{ID: "gesture-rise", I0: 2e-3, I1: 25e-3, T: 0.4e-3},
		Uniform{ID: "gesture-peak", ILoad: 25e-3, TPulse: 2.7e-3},
		Ramp{ID: "gesture-fall", I0: 25e-3, I1: 2e-3, T: 0.4e-3},
	}}
}

// BLERadio is the BLE transmit operation: 13 mA peak for 17 ms with the
// characteristic pre-amble of radio startup (Table III).
func BLERadio() Profile {
	return Seq{ID: "ble", Parts: []Profile{
		Uniform{ID: "ble-wake", ILoad: 5e-3, TPulse: 2e-3},
		Uniform{ID: "ble-tx", ILoad: 13e-3, TPulse: 13e-3},
		Uniform{ID: "ble-tail", ILoad: 6e-3, TPulse: 2e-3},
	}}
}

// BLEListen is a low-power listen window after a transmission (the
// Responsive Reporting app listens for 2 s awaiting a response). The
// paper's listen path is an ultra-low-power wake-up-receiver arrangement,
// so the draw is sub-milliamp.
func BLEListen(window float64) Profile {
	return Uniform{ID: "ble-listen", ILoad: 0.3e-3, TPulse: window}
}

// ComputeAccel is the external Cortex-M4 running an MNIST digit-recognition
// DNN: a sustained 5 mA draw for 1.1 s (Table III).
func ComputeAccel() Profile {
	return Seq{ID: "mnist", Parts: []Profile{
		Uniform{ID: "mnist-start", ILoad: 6e-3, TPulse: 20e-3},
		Uniform{ID: "mnist-run", ILoad: 5e-3, TPulse: 1.06},
		Uniform{ID: "mnist-finish", ILoad: 3e-3, TPulse: 20e-3},
	}}
}

// LoRa is the LoRa packet transmission used in the Figure 4 motivation:
// 50 mA for 100 ms.
func LoRa() Profile {
	return Uniform{ID: "lora", ILoad: 50e-3, TPulse: 100e-3}
}

// IMURead reads n samples from the inertial module. Each sample costs a
// short access burst on top of sensor-active current; 32 samples take about
// 160 ms (Periodic Sensing reads 32 samples per event).
func IMURead(n int) Profile {
	if n <= 0 {
		n = 1
	}
	return Seq{ID: "imu-read", Parts: []Profile{
		Uniform{ID: "imu-on", ILoad: 4e-3, TPulse: 10e-3},
		Uniform{ID: "imu-sample", ILoad: 6.5e-3, TPulse: float64(n) * 5e-3},
		Uniform{ID: "imu-off", ILoad: 2e-3, TPulse: 5e-3},
	}}
}

// PhotoRead is the background photoresistor read plus averaging compute —
// the low-priority task of Periodic Sensing and Responsive Reporting.
func PhotoRead() Profile {
	return Seq{ID: "photo-read", Parts: []Profile{
		Uniform{ID: "photo-adc", ILoad: 2.5e-3, TPulse: 8e-3},
		Uniform{ID: "photo-avg", ILoad: 1.5e-3, TPulse: 12e-3},
	}}
}

// MicRead reads n samples at the given rate from the low-power microphone
// (Noise Monitoring reads 256 samples at 12 kHz).
func MicRead(n int, rate float64) Profile {
	if n <= 0 {
		n = 1
	}
	if rate <= 0 {
		rate = 12e3
	}
	return Seq{ID: "mic-read", Parts: []Profile{
		Uniform{ID: "mic-on", ILoad: 1.8e-3, TPulse: 2e-3},
		Uniform{ID: "mic-sample", ILoad: 3.2e-3, TPulse: float64(n) / rate},
	}}
}

// FFT is the background FFT over n samples — compute-bound MCU work at
// active current.
func FFT(n int) Profile {
	if n <= 0 {
		n = 256
	}
	// ~0.6 ms of active compute per 32-sample chunk on an MSP430-class core.
	t := float64(n) / 32 * 0.6e-3 * 10
	return Uniform{ID: "fft", ILoad: 2.2e-3, TPulse: t}
}

// Encrypt encrypts n bytes (Responsive Reporting encrypts the IMU samples
// before transmission).
func Encrypt(n int) Profile {
	if n <= 0 {
		n = 192
	}
	t := float64(n) * 60e-6
	return Uniform{ID: "encrypt", ILoad: 2.8e-3, TPulse: t}
}

// SleepCurrent is the MCU low-power sleep draw used between events.
const SleepCurrent = 50e-6

// MCUActiveCurrent is the MCU draw while executing instructions.
const MCUActiveCurrent = 1.5e-3

// TableIIIUniform returns the paper's uniform load sweep: Iload in
// {5, 10, 25, 50} mA crossed with tpulse in {1, 10, 100} ms.
func TableIIIUniform() []Profile {
	var out []Profile
	for _, i := range []float64{5e-3, 10e-3, 25e-3, 50e-3} {
		for _, t := range []float64{1e-3, 10e-3, 100e-3} {
			out = append(out, NewUniform(i, t))
		}
	}
	return out
}

// TableIIIPulse returns the paper's pulsed load sweep (same grid, each pulse
// followed by 100 ms of 1.5 mA compute).
func TableIIIPulse() []Profile {
	var out []Profile
	for _, i := range []float64{5e-3, 10e-3, 25e-3, 50e-3} {
		for _, t := range []float64{1e-3, 10e-3, 100e-3} {
			out = append(out, NewPulse(i, t))
		}
	}
	return out
}

// Fig10Loads returns the 18 load points plotted in Figure 10: nine uniform
// and nine pulsed combinations — {5 mA, 10 mA} × 100 ms, {5, 10, 25, 50 mA}
// × 10 ms, and {10, 25, 50 mA} × 1 ms.
func Fig10Loads() (uniform, pulse []Profile) {
	type pt struct{ i, t float64 }
	grid := []pt{
		{5e-3, 100e-3}, {10e-3, 100e-3},
		{5e-3, 10e-3}, {10e-3, 10e-3}, {25e-3, 10e-3}, {50e-3, 10e-3},
		{10e-3, 1e-3}, {25e-3, 1e-3}, {50e-3, 1e-3},
	}
	for _, g := range grid {
		uniform = append(uniform, NewUniform(g.i, g.t))
		pulse = append(pulse, NewPulse(g.i, g.t))
	}
	return uniform, pulse
}

// Fig6Loads returns the six pulsed loads of Figure 6: {5, 10 mA} × 100 ms
// and {5, 10, 25, 50 mA} × 10 ms, each with the 100 ms compute tail.
func Fig6Loads() []Profile {
	type pt struct{ i, t float64 }
	grid := []pt{
		{5e-3, 100e-3}, {10e-3, 100e-3},
		{5e-3, 10e-3}, {10e-3, 10e-3}, {25e-3, 10e-3}, {50e-3, 10e-3},
	}
	var out []Profile
	for _, g := range grid {
		out = append(out, NewPulse(g.i, g.t))
	}
	return out
}

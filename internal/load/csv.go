package load

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TraceFromCSV parses a current trace captured by an external power monitor
// (the paper's Culpeo-PG "interfaces with current measurement instruments"
// such as the STM32 power shield). Two formats are accepted:
//
//   - one column: current samples in amperes at the given rate;
//   - two columns: time_s,current_A rows at a fixed rate (the rate is
//     inferred from the first two timestamps; the rate argument is then
//     ignored unless the file has a single row).
//
// A header row is skipped when its first field is not numeric. Blank lines
// and lines starting with '#' are ignored.
func TraceFromCSV(r io.Reader, id string, rate float64) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var samples []float64
	var times []float64
	twoCol := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		first, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			if len(samples) == 0 {
				continue // header row
			}
			return Trace{}, fmt.Errorf("load: csv line %d: bad number %q", line, fields[0])
		}
		switch len(fields) {
		case 1:
			samples = append(samples, first)
		case 2:
			cur, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
			if err != nil {
				return Trace{}, fmt.Errorf("load: csv line %d: bad current %q", line, fields[1])
			}
			twoCol = true
			times = append(times, first)
			samples = append(samples, cur)
		default:
			return Trace{}, fmt.Errorf("load: csv line %d: %d columns (want 1 or 2)", line, len(fields))
		}
	}
	if err := sc.Err(); err != nil {
		return Trace{}, err
	}
	if len(samples) == 0 {
		return Trace{}, fmt.Errorf("load: csv contains no samples")
	}
	for i, s := range samples {
		if s < 0 {
			return Trace{}, fmt.Errorf("load: csv sample %d negative (%g)", i, s)
		}
	}
	if twoCol && len(times) >= 2 {
		dt := times[1] - times[0]
		if dt <= 0 {
			return Trace{}, fmt.Errorf("load: csv timestamps not ascending")
		}
		rate = 1 / dt
	}
	if rate <= 0 {
		rate = SampleRateDefault
	}
	return Trace{ID: id, Rate: rate, Samples: samples}, nil
}

// WriteCSV writes the trace as time_s,current_A rows with a header.
func (tr Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_s,current_A"); err != nil {
		return err
	}
	dt := tr.Dt()
	for i, s := range tr.Samples {
		if _, err := fmt.Fprintf(w, "%.9g,%.9g\n", float64(i)*dt, s); err != nil {
			return err
		}
	}
	return nil
}

package load

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniform(t *testing.T) {
	u := NewUniform(50e-3, 100e-3)
	if u.Name() != "uniform-50mA-100ms" {
		t.Errorf("name = %q", u.Name())
	}
	if u.Duration() != 100e-3 {
		t.Errorf("duration = %g", u.Duration())
	}
	if u.Current(-1) != 0 || u.Current(0.2) != 0 {
		t.Error("current outside window should be 0")
	}
	if u.Current(0.05) != 50e-3 {
		t.Error("current inside window wrong")
	}
	if u.Current(0) != 50e-3 {
		t.Error("left edge should be inside")
	}
	if u.Current(100e-3) != 0 {
		t.Error("right edge should be outside")
	}
}

func TestPulse(t *testing.T) {
	p := NewPulse(25e-3, 10e-3)
	if p.Duration() != 110e-3 {
		t.Errorf("duration = %g", p.Duration())
	}
	if p.Current(5e-3) != 25e-3 {
		t.Error("pulse phase current wrong")
	}
	if p.Current(50e-3) != 1.5e-3 {
		t.Error("compute tail current wrong")
	}
	if p.Current(200e-3) != 0 {
		t.Error("after end should be 0")
	}
}

func TestSeq(t *testing.T) {
	s := NewSeq("s", NewUniform(10e-3, 1e-3), NewUniform(20e-3, 2e-3))
	if s.Duration() != 3e-3 {
		t.Errorf("seq duration = %g", s.Duration())
	}
	if s.Current(0.5e-3) != 10e-3 {
		t.Error("first part current wrong")
	}
	if s.Current(2e-3) != 20e-3 {
		t.Error("second part current wrong")
	}
	if s.Current(5e-3) != 0 {
		t.Error("past end should be 0")
	}
	if s.Current(-1e-3) != 0 {
		t.Error("before start should be 0")
	}
}

func TestOffset(t *testing.T) {
	o := Offset{Base: NewUniform(10e-3, 1e-3), Add: 1e-3}
	if o.Current(0.5e-3) != 11e-3 {
		t.Error("offset not added")
	}
	if o.Current(2e-3) != 0 {
		t.Error("offset must not extend past base duration")
	}
	if o.Duration() != 1e-3 {
		t.Error("duration should match base")
	}
	if o.Name() != "uniform-10mA-1ms+offset" {
		t.Errorf("name = %q", o.Name())
	}
	named := Offset{Base: NewUniform(1, 1), Add: 0, ID: "custom"}
	if named.Name() != "custom" {
		t.Error("custom name ignored")
	}
}

func TestRamp(t *testing.T) {
	r := Ramp{ID: "r", I0: 0, I1: 10e-3, T: 10e-3}
	if r.Current(0) != 0 {
		t.Error("ramp start wrong")
	}
	if got := r.Current(5e-3); math.Abs(got-5e-3) > 1e-15 {
		t.Errorf("ramp midpoint = %g", got)
	}
	if r.Current(20e-3) != 0 {
		t.Error("past ramp should be 0")
	}
	zero := Ramp{T: 0}
	if zero.Current(0) != 0 {
		t.Error("degenerate ramp should be 0")
	}
}

func TestSampleAndTrace(t *testing.T) {
	u := NewUniform(10e-3, 1e-3)
	tr := Sample(u, 10e3) // 0.1 ms per sample → 10 samples
	if len(tr.Samples) != 10 {
		t.Fatalf("sample count = %d, want 10", len(tr.Samples))
	}
	for i, s := range tr.Samples {
		if s != 10e-3 {
			t.Fatalf("sample %d = %g", i, s)
		}
	}
	if tr.Duration() != 1e-3 {
		t.Errorf("trace duration = %g", tr.Duration())
	}
	if tr.Current(0.55e-3) != 10e-3 {
		t.Error("trace lookup wrong")
	}
	if tr.Current(2e-3) != 0 || tr.Current(-1) != 0 {
		t.Error("trace out of range should be 0")
	}
	if tr.Dt() != 1e-4 {
		t.Errorf("dt = %g", tr.Dt())
	}
}

func TestSampleDefaults(t *testing.T) {
	tr := Sample(NewUniform(1e-3, 1e-3), 0)
	if tr.Rate != SampleRateDefault {
		t.Error("default rate not applied")
	}
	empty := Trace{Rate: 1000}
	if empty.Current(0) != 0 {
		t.Error("empty trace should read 0")
	}
}

func TestEnergy(t *testing.T) {
	// 10 mA for 100 ms at 2.55 V = 2.55 mJ.
	u := NewUniform(10e-3, 100e-3)
	e := Energy(u, 2.55, 125e3)
	want := 10e-3 * 100e-3 * 2.55
	if math.Abs(e-want)/want > 1e-3 {
		t.Errorf("energy = %g, want %g", e, want)
	}
}

func TestEnergyAdditivity(t *testing.T) {
	f := func(i1Raw, i2Raw float64) bool {
		i1 := math.Abs(math.Mod(i1Raw, 0.05)) + 1e-4
		i2 := math.Abs(math.Mod(i2Raw, 0.05)) + 1e-4
		a := NewUniform(i1, 10e-3)
		b := NewUniform(i2, 20e-3)
		s := NewSeq("ab", a, b)
		ea := Energy(a, 2.55, 50e3)
		eb := Energy(b, 2.55, 50e3)
		es := Energy(s, 2.55, 50e3)
		return math.Abs(es-(ea+eb)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeakCurrent(t *testing.T) {
	p := NewPulse(25e-3, 10e-3)
	if got := PeakCurrent(p, 125e3); got != 25e-3 {
		t.Errorf("peak = %g", got)
	}
}

func TestWidestPulse(t *testing.T) {
	// A 10 ms pulse at 25 mA with a 100 ms 1.5 mA tail: the tail is below
	// half-peak, so the widest pulse is the 10 ms head.
	p := NewPulse(25e-3, 10e-3)
	w := WidestPulse(p, 125e3)
	if math.Abs(w-10e-3) > 0.2e-3 {
		t.Errorf("widest pulse = %g, want ~10ms", w)
	}
	// A uniform load is one long pulse.
	u := NewUniform(5e-3, 100e-3)
	w = WidestPulse(u, 125e3)
	if math.Abs(w-100e-3) > 0.2e-3 {
		t.Errorf("uniform widest pulse = %g, want ~100ms", w)
	}
	// Zero profile.
	if WidestPulse(Uniform{ILoad: 0, TPulse: 1e-3}, 125e3) != 0 {
		t.Error("zero profile should have zero pulse width")
	}
}

func TestPeripheralShapes(t *testing.T) {
	cases := []struct {
		p        Profile
		peak     float64
		duration float64
		tol      float64
	}{
		{Gesture(), 25e-3, 3.5e-3, 0.1e-3},
		{BLERadio(), 13e-3, 17e-3, 0.1e-3},
		{ComputeAccel(), 6e-3, 1.1, 0.01},
		{LoRa(), 50e-3, 100e-3, 1e-6},
	}
	for _, c := range cases {
		if got := PeakCurrent(c.p, 125e3); math.Abs(got-c.peak) > 1e-9 {
			t.Errorf("%s peak = %g, want %g", c.p.Name(), got, c.peak)
		}
		if got := c.p.Duration(); math.Abs(got-c.duration) > c.tol {
			t.Errorf("%s duration = %g, want %g", c.p.Name(), got, c.duration)
		}
	}
}

func TestApplicationPeripherals(t *testing.T) {
	// All app peripherals must be non-trivial, finite profiles.
	for _, p := range []Profile{
		IMURead(32), PhotoRead(), MicRead(256, 12e3), FFT(256),
		Encrypt(192), BLEListen(2.0),
	} {
		if p.Duration() <= 0 {
			t.Errorf("%s has non-positive duration", p.Name())
		}
		if Energy(p, 2.55, 50e3) <= 0 {
			t.Errorf("%s consumes no energy", p.Name())
		}
		if PeakCurrent(p, 50e3) > 100e-3 {
			t.Errorf("%s peak current implausibly high", p.Name())
		}
	}
	// Degenerate arguments take defaults rather than exploding.
	if IMURead(0).Duration() <= 0 || MicRead(0, 0).Duration() <= 0 ||
		FFT(0).Duration() <= 0 || Encrypt(0).Duration() <= 0 {
		t.Error("degenerate peripheral arguments mishandled")
	}
}

func TestMicReadDuration(t *testing.T) {
	// 256 samples at 12 kHz ≈ 21.3 ms of sampling.
	p := MicRead(256, 12e3)
	want := 2e-3 + 256.0/12e3
	if math.Abs(p.Duration()-want) > 1e-9 {
		t.Errorf("mic duration = %g, want %g", p.Duration(), want)
	}
}

func TestTableIIISweeps(t *testing.T) {
	u := TableIIIUniform()
	p := TableIIIPulse()
	if len(u) != 12 || len(p) != 12 {
		t.Fatalf("sweep sizes = %d, %d; want 12, 12", len(u), len(p))
	}
	for _, pr := range p {
		pu := pr.(Pulse)
		if pu.ICompute != 1.5e-3 || pu.TCompute != 100e-3 {
			t.Errorf("%s: compute tail wrong", pu.Name())
		}
	}
}

func TestFig10AndFig6Loads(t *testing.T) {
	u, p := Fig10Loads()
	if len(u) != 9 || len(p) != 9 {
		t.Fatalf("fig10 loads = %d uniform, %d pulse; want 9, 9", len(u), len(p))
	}
	if len(Fig6Loads()) != 6 {
		t.Fatalf("fig6 loads = %d, want 6", len(Fig6Loads()))
	}
	// Names must be unique (they key result tables).
	seen := map[string]bool{}
	for _, pr := range append(append([]Profile{}, u...), p...) {
		if seen[pr.Name()] {
			t.Errorf("duplicate profile name %q", pr.Name())
		}
		seen[pr.Name()] = true
	}
}

// Package faults provides composable, seeded fault injectors for the
// simulation stack. A Spec — parsed from a compact string such as
//
//	seed:7;dropout:at=2s,dur=300ms,period=1.5s;noise:sigma=5mV
//
// — describes perturbations on three planes of the power system:
//
//   - supply:  harvester dropout windows and power sag
//   - storage: capacitor aging (capacitance fade + ESR drift), extra
//     leakage current drained straight from the main branch
//   - measurement: the chain feeding Culpeo-R probes and gate decisions
//     (ADC offset/gain error, Gaussian noise, stuck bits, sample jitter)
//
// Injection is strictly opt-in: a nil *Injector is a valid no-op on every
// method, and the nominal simulation path never pays for faults it does
// not carry. All stochastic faults draw from rand sources derived from the
// spec seed and the fault's position in the spec, so a run is reproducible
// bit-for-bit regardless of worker count as long as each sweep cell owns
// its own Injector.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"culpeo/internal/units"
)

// Kind names one fault mechanism.
type Kind string

const (
	// Dropout forces harvested power to zero inside the window.
	Dropout Kind = "dropout"
	// Sag multiplies harvested power by frac inside the window.
	Sag Kind = "sag"
	// Leak drains an extra current i (A) from the main storage branch.
	Leak Kind = "leak"
	// Age applies capacitor.Aging{LifeFraction: life} to every branch.
	Age Kind = "age"
	// ESRDrift multiplies every branch ESR by factor.
	ESRDrift Kind = "esr"
	// Offset adds v volts to every measured voltage.
	Offset Kind = "offset"
	// Gain multiplies every measured voltage by factor.
	Gain Kind = "gain"
	// Noise adds zero-mean Gaussian noise with deviation sigma volts.
	Noise Kind = "noise"
	// Stuck forces ADC code bit `bit` to `val` (0 or 1), quantizing the
	// measurement through a 12-bit converter to do so.
	Stuck Kind = "stuck"
	// Jitter shifts each sample timestamp by Gaussian noise with
	// deviation sigma seconds.
	Jitter Kind = "jitter"
)

// Window bounds when a fault is active. The zero value means "always".
// With Dur > 0 the fault is active for Dur seconds starting at At; with
// Period > 0 as well, that burst repeats every Period seconds.
type Window struct {
	At     float64 // start time (s)
	Dur    float64 // active duration per burst (s); 0 = open-ended
	Period float64 // burst repeat interval (s); 0 = one burst
}

// Active reports whether the window covers simulation time t.
func (w Window) Active(t float64) bool {
	if t < w.At {
		return false
	}
	if w.Dur <= 0 {
		return true
	}
	t -= w.At
	if w.Period > 0 {
		t = math.Mod(t, w.Period)
	}
	return t < w.Dur
}

func (w Window) zero() bool { return w.At == 0 && w.Dur == 0 && w.Period == 0 }

// Fault is one parsed clause of a Spec.
type Fault struct {
	Kind Kind
	Win  Window
	// V is the kind's primary magnitude: frac for Sag, amps for Leak,
	// life fraction for Age, multiplier for ESRDrift and Gain, volts for
	// Offset and Noise, seconds for Jitter. Unused by Dropout and Stuck.
	V float64
	// Bit and High configure Stuck: which ADC code bit, and whether it is
	// stuck at 1 (true) or 0.
	Bit  int
	High bool
}

// Spec is a full parsed fault specification.
type Spec struct {
	// Seed feeds the stochastic faults (Noise, Jitter). Parse defaults it
	// to 1 when the string has no seed clause, so an explicit seed:0 is
	// honoured.
	Seed   int64
	Faults []Fault
}

// Empty reports whether the spec carries no faults at all.
func (s Spec) Empty() bool { return len(s.Faults) == 0 }

// windowKinds may carry at/dur/period keys. Measurement faults accept
// them too (a drifting offset is a windowed offset), so every kind is
// windowable; this set exists only for documentation symmetry.
var kindKeys = map[Kind][]string{
	Dropout:  {},
	Sag:      {"frac"},
	Leak:     {"i"},
	Age:      {"life"},
	ESRDrift: {"factor"},
	Offset:   {"v"},
	Gain:     {"factor"},
	Noise:    {"sigma"},
	Stuck:    {"bit", "val"},
	Jitter:   {"sigma"},
}

// Parse builds a Spec from its string form. The grammar is
//
//	spec   = clause *( ";" clause )
//	clause = "seed:" integer
//	       | kind [ ":" key "=" value *( "," key "=" value ) ]
//
// where values go through units.Parse, so "300ms", "5mV" and "0.6" all
// work. Unknown kinds, unknown keys, missing required keys and
// out-of-range magnitudes are errors. An empty string parses to an empty
// Spec.
func Parse(s string) (Spec, error) {
	spec := Spec{Seed: 1}
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		head, rest, hasRest := strings.Cut(clause, ":")
		head = strings.TrimSpace(strings.ToLower(head))
		if head == "seed" {
			if !hasRest {
				return Spec{}, fmt.Errorf("faults: seed clause needs a value (seed:N)")
			}
			v, err := units.Parse(strings.TrimSpace(rest))
			if err != nil || v != math.Trunc(v) || math.Abs(v) > 1e18 {
				return Spec{}, fmt.Errorf("faults: bad seed %q", rest)
			}
			spec.Seed = int64(v)
			continue
		}
		f, err := parseClause(Kind(head), rest, hasRest)
		if err != nil {
			return Spec{}, err
		}
		spec.Faults = append(spec.Faults, f)
	}
	return spec, nil
}

func parseClause(kind Kind, rest string, hasRest bool) (Fault, error) {
	allowed, ok := kindKeys[kind]
	if !ok {
		return Fault{}, fmt.Errorf("faults: unknown fault kind %q", kind)
	}
	f := Fault{Kind: kind, High: true} // stuck-at-1 unless val=0
	kv := map[string]float64{}
	if hasRest {
		for _, pair := range strings.Split(rest, ",") {
			pair = strings.TrimSpace(pair)
			if pair == "" {
				continue
			}
			key, val, ok := strings.Cut(pair, "=")
			if !ok {
				return Fault{}, fmt.Errorf("faults: %s: expected key=value, got %q", kind, pair)
			}
			key = strings.TrimSpace(strings.ToLower(key))
			if !keyAllowed(key, allowed) {
				return Fault{}, fmt.Errorf("faults: %s: unknown key %q", kind, key)
			}
			x, err := units.Parse(strings.TrimSpace(val))
			if err != nil {
				return Fault{}, fmt.Errorf("faults: %s: bad value for %s: %v", kind, key, err)
			}
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return Fault{}, fmt.Errorf("faults: %s: %s must be finite", kind, key)
			}
			if _, dup := kv[key]; dup {
				return Fault{}, fmt.Errorf("faults: %s: duplicate key %q", kind, key)
			}
			kv[key] = x
		}
	}
	// Window keys, shared by every kind.
	f.Win = Window{At: kv["at"], Dur: kv["dur"], Period: kv["period"]}
	if f.Win.At < 0 || f.Win.Dur < 0 || f.Win.Period < 0 {
		return Fault{}, fmt.Errorf("faults: %s: window times must be >= 0", kind)
	}
	if f.Win.Period > 0 && f.Win.Dur <= 0 {
		return Fault{}, fmt.Errorf("faults: %s: period needs dur", kind)
	}
	if f.Win.Period > 0 && f.Win.Dur > f.Win.Period {
		return Fault{}, fmt.Errorf("faults: %s: dur exceeds period", kind)
	}

	need := func(key string) (float64, error) {
		v, ok := kv[key]
		if !ok {
			return 0, fmt.Errorf("faults: %s: missing required key %q", kind, key)
		}
		return v, nil
	}
	var err error
	switch kind {
	case Dropout:
		// window-only fault
	case Sag:
		if f.V, err = need("frac"); err != nil {
			return Fault{}, err
		}
		if f.V < 0 || f.V > 1 {
			return Fault{}, fmt.Errorf("faults: sag frac must be in [0,1], got %g", f.V)
		}
	case Leak:
		if f.V, err = need("i"); err != nil {
			return Fault{}, err
		}
		if f.V <= 0 || f.V > 1 {
			return Fault{}, fmt.Errorf("faults: leak i must be in (0,1] A, got %g", f.V)
		}
	case Age:
		if f.V, err = need("life"); err != nil {
			return Fault{}, err
		}
		if f.V < 0 || f.V > 1 {
			return Fault{}, fmt.Errorf("faults: age life must be in [0,1], got %g", f.V)
		}
	case ESRDrift:
		if f.V, err = need("factor"); err != nil {
			return Fault{}, err
		}
		if f.V <= 0 || f.V > 100 {
			return Fault{}, fmt.Errorf("faults: esr factor must be in (0,100], got %g", f.V)
		}
	case Offset:
		if f.V, err = need("v"); err != nil {
			return Fault{}, err
		}
		if math.Abs(f.V) > 1 {
			return Fault{}, fmt.Errorf("faults: offset v must be within ±1 V, got %g", f.V)
		}
	case Gain:
		if f.V, err = need("factor"); err != nil {
			return Fault{}, err
		}
		if f.V <= 0 || f.V > 10 {
			return Fault{}, fmt.Errorf("faults: gain factor must be in (0,10], got %g", f.V)
		}
	case Noise:
		if f.V, err = need("sigma"); err != nil {
			return Fault{}, err
		}
		if f.V < 0 || f.V > 1 {
			return Fault{}, fmt.Errorf("faults: noise sigma must be in [0,1] V, got %g", f.V)
		}
	case Stuck:
		bit, err := need("bit")
		if err != nil {
			return Fault{}, err
		}
		if bit != math.Trunc(bit) || bit < 0 || bit > 11 {
			return Fault{}, fmt.Errorf("faults: stuck bit must be an integer in [0,11], got %g", bit)
		}
		f.Bit = int(bit)
		if v, ok := kv["val"]; ok {
			if v != 0 && v != 1 {
				return Fault{}, fmt.Errorf("faults: stuck val must be 0 or 1, got %g", v)
			}
			f.High = v == 1
		}
	case Jitter:
		if f.V, err = need("sigma"); err != nil {
			return Fault{}, err
		}
		if f.V < 0 || f.V > 0.1 {
			return Fault{}, fmt.Errorf("faults: jitter sigma must be in [0,0.1] s, got %g", f.V)
		}
	}
	return f, nil
}

func keyAllowed(key string, allowed []string) bool {
	switch key {
	case "at", "dur", "period":
		return true
	}
	for _, k := range allowed {
		if k == key {
			return true
		}
	}
	return false
}

// String renders the spec in canonical parseable form (sorted keys,
// seconds/volts as plain numbers). Parse(s.String()) is equivalent to s.
func (s Spec) String() string {
	var parts []string
	if s.Seed != 1 {
		parts = append(parts, fmt.Sprintf("seed:%d", s.Seed))
	}
	for _, f := range s.Faults {
		parts = append(parts, f.String())
	}
	return strings.Join(parts, ";")
}

// String renders one fault clause in canonical parseable form.
func (f Fault) String() string {
	kv := map[string]float64{}
	switch f.Kind {
	case Sag:
		kv["frac"] = f.V
	case Leak:
		kv["i"] = f.V
	case Age:
		kv["life"] = f.V
	case ESRDrift, Gain:
		kv["factor"] = f.V
	case Offset:
		kv["v"] = f.V
	case Noise, Jitter:
		kv["sigma"] = f.V
	case Stuck:
		kv["bit"] = float64(f.Bit)
		if !f.High {
			kv["val"] = 0
		}
	}
	if !f.Win.zero() {
		kv["at"] = f.Win.At
		if f.Win.Dur > 0 {
			kv["dur"] = f.Win.Dur
		}
		if f.Win.Period > 0 {
			kv["period"] = f.Win.Period
		}
	}
	if len(kv) == 0 {
		return string(f.Kind)
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]string, len(keys))
	for i, k := range keys {
		pairs[i] = fmt.Sprintf("%s=%g", k, kv[k])
	}
	return string(f.Kind) + ":" + strings.Join(pairs, ",")
}

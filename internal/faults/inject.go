package faults

import (
	"math/rand"

	"culpeo/internal/capacitor"
	"culpeo/internal/harvester"
	"culpeo/internal/mcu"
	"culpeo/internal/profiler"
)

// Injector evaluates a Spec against the running simulation. It satisfies
// powersys.Injector (supply/storage plane) and supplies measurement-chain
// wrappers for voltage-read closures and profiler samplers.
//
// Every method is safe on a nil receiver and degenerates to the identity,
// so call sites can hold an *Injector unconditionally. An Injector is NOT
// safe for concurrent use (stochastic faults advance rand streams); give
// each sweep cell its own via New or NewFromString.
type Injector struct {
	spec Spec
	// rngs[i] is the dedicated stream for spec.Faults[i] when the kind is
	// stochastic (Noise, Jitter), else nil. Streams derive from the spec
	// seed plus the fault index, so draws are independent of fault order
	// evaluation and of how many other injectors exist.
	rngs []*rand.Rand
	adc  mcu.ADC // quantizer for stuck-bit faults

	hasSupply  bool // any Dropout/Sag fault present
	hasStorage bool // any Age/ESRDrift fault present
	hasLeak    bool // any Leak fault present
	hasMeasure bool // any Offset/Gain/Noise/Stuck fault present
	hasJitter  bool // any Jitter fault present
}

// New builds an injector for a parsed spec. An empty spec yields a nil
// injector, keeping the nominal path branch-free at call sites.
func New(spec Spec) *Injector {
	if spec.Empty() {
		return nil
	}
	in := &Injector{
		spec: spec,
		rngs: make([]*rand.Rand, len(spec.Faults)),
		adc:  mcu.MSP430ADC12(),
	}
	for i, f := range spec.Faults {
		switch f.Kind {
		case Dropout, Sag:
			in.hasSupply = true
		case Leak:
			in.hasLeak = true
		case Age, ESRDrift:
			in.hasStorage = true
		case Offset, Gain, Noise, Stuck:
			in.hasMeasure = true
		case Jitter:
			in.hasJitter = true
		}
		if f.Kind == Noise || f.Kind == Jitter {
			// Golden-ratio-style spread keeps neighbouring fault streams
			// decorrelated even for small seeds.
			in.rngs[i] = rand.New(rand.NewSource(spec.Seed*0x9E3779B9 + int64(i)*0x517CC1B7 + 0x2545F491))
		}
	}
	return in
}

// NewFromString parses and builds in one step; "" yields a nil injector.
func NewFromString(s string) (*Injector, error) {
	spec, err := Parse(s)
	if err != nil {
		return nil, err
	}
	return New(spec), nil
}

// Spec returns the parsed specification (zero value for a nil injector).
func (in *Injector) Spec() Spec {
	if in == nil {
		return Spec{}
	}
	return in.spec
}

// HarvestPower transforms harvested power at time t (powersys.Injector).
func (in *Injector) HarvestPower(t, p float64) float64 {
	if in == nil || !in.hasSupply {
		return p
	}
	for _, f := range in.spec.Faults {
		switch f.Kind {
		case Dropout:
			if f.Win.Active(t) {
				p = 0
			}
		case Sag:
			if f.Win.Active(t) {
				p *= f.V
			}
		}
	}
	return p
}

// LeakageCurrent returns the extra current (A) drained from the main
// storage branch at time t (powersys.Injector).
func (in *Injector) LeakageCurrent(t float64) float64 {
	if in == nil || !in.hasLeak {
		return 0
	}
	var i float64
	for _, f := range in.spec.Faults {
		if f.Kind == Leak && f.Win.Active(t) {
			i += f.V
		}
	}
	return i
}

// ApplyStorage applies the storage-plane faults (aging, ESR drift) to a
// network in place, once, before simulation starts. Time windows are
// ignored: wear is a state of the hardware, not a transient.
func (in *Injector) ApplyStorage(n *capacitor.Network) {
	if in == nil || !in.hasStorage {
		return
	}
	for _, f := range in.spec.Faults {
		switch f.Kind {
		case Age:
			capacitor.Aging{LifeFraction: f.V}.ApplyNetwork(n)
		case ESRDrift:
			for _, b := range n.Branches {
				b.ESR *= f.V
			}
		}
	}
}

// Read passes a voltage sample taken at time t through the measurement
// chain: gain error, then offset, then Gaussian noise, then stuck-bit
// quantization. Without a stuck fault the value stays continuous (offset
// and gain model analog front-end error, not conversion).
func (in *Injector) Read(t, v float64) float64 {
	if in == nil || !in.hasMeasure {
		return v
	}
	for i, f := range in.spec.Faults {
		if !f.Win.Active(t) {
			continue
		}
		switch f.Kind {
		case Gain:
			v *= f.V
		case Offset:
			v += f.V
		case Noise:
			v += in.rngs[i].NormFloat64() * f.V
		case Stuck:
			code := in.adc.Quantize(v)
			if f.High {
				code |= 1 << f.Bit
			} else {
				code &^= 1 << f.Bit
			}
			v = in.adc.Voltage(code)
		}
	}
	if v < 0 {
		v = 0
	}
	return v
}

// SampleTime perturbs a sample timestamp with the configured jitter.
func (in *Injector) SampleTime(t float64) float64 {
	if in == nil || !in.hasJitter {
		return t
	}
	out := t
	for i, f := range in.spec.Faults {
		if f.Kind == Jitter && f.Win.Active(t) {
			out += in.rngs[i].NormFloat64() * f.V
		}
	}
	if out < 0 {
		out = 0
	}
	return out
}

// Measure combines SampleTime and Read — the transform a wrapped probe
// sees for each tick.
func (in *Injector) Measure(t, v float64) (float64, float64) {
	return in.SampleTime(t), in.Read(t, v)
}

// WrapRead routes a voltage-read closure (a gate or scheduler's view of
// the terminal voltage) through the measurement chain, stamping samples
// with the simulation clock now. Identity when no measurement faults are
// configured.
func (in *Injector) WrapRead(read, now func() float64) func() float64 {
	if in == nil || !in.hasMeasure {
		return read
	}
	return func() float64 { return in.Read(now(), read()) }
}

// WrapSampler corrupts what a profiler probe observes. Identity when no
// measurement-chain faults are configured.
func (in *Injector) WrapSampler(s profiler.Sampler) profiler.Sampler {
	if in == nil || (!in.hasMeasure && !in.hasJitter) {
		return s
	}
	return profiler.Perturbed{Inner: s, Measure: in.Measure}
}

// WrapHarvester layers the supply-plane faults over a harvest source.
// Identity when none are configured.
func (in *Injector) WrapHarvester(src harvester.Source) harvester.Source {
	if in == nil || !in.hasSupply {
		return src
	}
	return harvester.Perturbed{Base: src, F: in.HarvestPower, Label: "faults"}
}

package faults

import (
	"strings"
	"testing"
)

// FuzzParse checks the fault-spec parser never panics, that accepted specs
// are in range, and that the canonical String form round-trips.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed:7;dropout:at=2s,dur=300ms,period=1.5s;noise:sigma=5mV",
		"sag:frac=0.35",
		"leak:i=500uA;leak:i=1mA,at=2",
		"age:life=0.5;esr:factor=1.5",
		"seed:11;offset:v=10mV;gain:factor=1.003;stuck:bit=2;jitter:sigma=200us",
		"stuck:bit=5,val=0",
		"dropout;;dropout",
		"seed:-3;noise:sigma=0",
		strings.Repeat("dropout;", 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := Parse(s)
		if err != nil {
			return
		}
		for _, fl := range spec.Faults {
			if fl.Win.At < 0 || fl.Win.Dur < 0 || fl.Win.Period < 0 {
				t.Fatalf("accepted negative window: %+v", fl)
			}
			if fl.Win.Period > 0 && (fl.Win.Dur <= 0 || fl.Win.Dur > fl.Win.Period) {
				t.Fatalf("accepted inconsistent window: %+v", fl)
			}
			if fl.Kind == Stuck && (fl.Bit < 0 || fl.Bit > 11) {
				t.Fatalf("accepted out-of-range stuck bit: %+v", fl)
			}
		}
		// The canonical form must parse back to the same spec.
		canon := spec.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, again.String())
		}
		// Building the injector from any accepted spec must not panic, and
		// the injector must echo its spec.
		if in := New(spec); in != nil && in.Spec().String() != canon {
			t.Fatalf("injector spec mismatch: %q vs %q", in.Spec().String(), canon)
		}
	})
}

package faults

import (
	"math"
	"reflect"
	"testing"

	"culpeo/internal/capacitor"
	"culpeo/internal/harvester"
	"culpeo/internal/mcu"
)

func TestParseEmpty(t *testing.T) {
	for _, s := range []string{"", "  ", ";", " ; "} {
		spec, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !spec.Empty() || spec.Seed != 1 {
			t.Errorf("Parse(%q) = %+v, want empty with seed 1", s, spec)
		}
		if New(spec) != nil {
			t.Errorf("New(empty) must be nil")
		}
	}
}

func TestParseSeed(t *testing.T) {
	spec, err := Parse("seed:7;dropout")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 7 {
		t.Errorf("seed = %d, want 7", spec.Seed)
	}
	// Explicit seed:0 is honoured (the default is 1, not 0).
	spec, err = Parse("seed:0;noise:sigma=1mV")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 0 {
		t.Errorf("seed = %d, want 0", spec.Seed)
	}
}

func TestParseUnits(t *testing.T) {
	spec, err := Parse("dropout:at=500ms,dur=200ms,period=2s;leak:i=500uA;noise:sigma=5mV")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Faults) != 3 {
		t.Fatalf("faults = %d, want 3", len(spec.Faults))
	}
	d := spec.Faults[0]
	if d.Win.At != 0.5 || d.Win.Dur != 0.2 || d.Win.Period != 2 {
		t.Errorf("dropout window = %+v", d.Win)
	}
	if spec.Faults[1].V != 500e-6 {
		t.Errorf("leak i = %g, want 500 µA", spec.Faults[1].V)
	}
	if spec.Faults[2].V != 5e-3 {
		t.Errorf("noise sigma = %g, want 5 mV", spec.Faults[2].V)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"seed",                   // seed without value
		"seed:x",                 // non-numeric seed
		"seed:1.5",               // fractional seed
		"meteor",                 // unknown kind
		"sag",                    // missing required key
		"sag:frac=1.5",           // out of range
		"sag:frac=0.5,frac=0.6",  // duplicate key
		"sag:frac",               // not key=value
		"leak:i=0",               // zero leak
		"leak:i=2",               // 2 A leak is a short, not a fault
		"age:life=2",             // beyond end of life
		"esr:factor=0",           // zero multiplier
		"offset:v=2",             // ±1 V bound
		"gain:factor=0",          // zero gain
		"noise:sigma=-1mV",       // negative sigma
		"stuck:bit=12",           // 12-bit ADC has bits 0..11
		"stuck:bit=3,val=2",      // val must be 0/1
		"stuck:val=1",            // missing bit
		"jitter:sigma=1",         // 1 s jitter is out of range
		"dropout:dur=-1",         // negative window
		"dropout:period=1",       // period without dur
		"dropout:dur=2s,period=1s", // dur exceeds period
		"dropout:frac=0.5",       // key from another kind
		"noise:sigma=1mV,x=2",    // unknown key
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	specs := []string{
		"dropout",
		"dropout:at=0.3,dur=0.6,period=1.2",
		"seed:11;offset:v=0.01;gain:factor=1.003;noise:sigma=0.003;stuck:bit=2;jitter:sigma=0.0002",
		"sag:frac=0.35;leak:at=1,dur=1,i=0.003,period=3",
		"age:life=0.5;esr:factor=1.5",
		"stuck:bit=5,val=0",
	}
	for _, s := range specs {
		spec, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		again, err := Parse(spec.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", s, spec.String(), err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Errorf("round trip of %q: %+v != %+v", s, spec, again)
		}
	}
}

func TestWindowActive(t *testing.T) {
	cases := []struct {
		w    Window
		t    float64
		want bool
	}{
		{Window{}, 0, true},                          // zero window = always
		{Window{}, 1e9, true},
		{Window{At: 2}, 1.9, false},                  // open-ended from At
		{Window{At: 2}, 2.0, true},
		{Window{At: 2, Dur: 0.5}, 2.4, true},         // one burst
		{Window{At: 2, Dur: 0.5}, 2.6, false},
		{Window{At: 1, Dur: 0.2, Period: 1}, 1.1, true}, // repeating burst
		{Window{At: 1, Dur: 0.2, Period: 1}, 1.5, false},
		{Window{At: 1, Dur: 0.2, Period: 1}, 2.1, true},
		{Window{At: 1, Dur: 0.2, Period: 1}, 2.9, false},
	}
	for _, c := range cases {
		if got := c.w.Active(c.t); got != c.want {
			t.Errorf("%+v.Active(%g) = %v", c.w, c.t, got)
		}
	}
}

func TestNilInjectorIsIdentity(t *testing.T) {
	var in *Injector
	if got := in.HarvestPower(1, 5e-3); got != 5e-3 {
		t.Error("nil HarvestPower not identity")
	}
	if got := in.LeakageCurrent(1); got != 0 {
		t.Error("nil LeakageCurrent not zero")
	}
	if got := in.Read(1, 2.2); got != 2.2 {
		t.Error("nil Read not identity")
	}
	if got := in.SampleTime(1); got != 1 {
		t.Error("nil SampleTime not identity")
	}
	in.ApplyStorage(nil) // must not panic
	read := func() float64 { return 2.0 }
	if got := in.WrapRead(read, func() float64 { return 0 })(); got != 2.0 {
		t.Error("nil WrapRead not identity")
	}
	if in.Spec().Seed != 0 || !in.Spec().Empty() {
		t.Error("nil Spec() not zero")
	}
}

func TestSupplyFaults(t *testing.T) {
	in, err := NewFromString("dropout:at=1,dur=0.5;sag:frac=0.5,at=3")
	if err != nil {
		t.Fatal(err)
	}
	if got := in.HarvestPower(0.5, 10e-3); got != 10e-3 {
		t.Errorf("before any window: %g", got)
	}
	if got := in.HarvestPower(1.2, 10e-3); got != 0 {
		t.Errorf("inside dropout: %g, want 0", got)
	}
	if got := in.HarvestPower(3.5, 10e-3); got != 5e-3 {
		t.Errorf("inside sag: %g, want 5 mW", got)
	}

	src := in.WrapHarvester(harvester.Constant{P: 10e-3})
	if got := src.Power(1.2); got != 0 {
		t.Errorf("wrapped harvester inside dropout: %g", got)
	}
}

func TestLeakageCurrent(t *testing.T) {
	in, err := NewFromString("leak:i=500uA;leak:i=1mA,at=2")
	if err != nil {
		t.Fatal(err)
	}
	if got := in.LeakageCurrent(1); got != 500e-6 {
		t.Errorf("leak at t=1: %g", got)
	}
	if got := in.LeakageCurrent(3); got != 1.5e-3 {
		t.Errorf("leaks must sum: %g", got)
	}
}

func TestApplyStorage(t *testing.T) {
	fresh, err := capacitor.NewNetwork(&capacitor.Branch{Name: "main", C: 45e-3, ESR: 5, Voltage: 2.56})
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewFromString("age:life=1;esr:factor=1.5")
	if err != nil {
		t.Fatal(err)
	}
	n := fresh.Clone()
	in.ApplyStorage(n)
	aging := capacitor.Aging{LifeFraction: 1}
	wantESR := 5.0 * aging.ESRFactor() * 1.5
	if got := n.Main().ESR; math.Abs(got-wantESR) > 1e-12 {
		t.Errorf("aged+drifted ESR = %g, want %g", got, wantESR)
	}
	if got := n.TotalCapacitance(); got >= 45e-3 {
		t.Errorf("end-of-life capacitance %g did not fade", got)
	}
	if fresh.Main().ESR != 5 {
		t.Error("ApplyStorage mutated the cloned-from network")
	}
}

func TestReadChain(t *testing.T) {
	in, err := NewFromString("gain:factor=1.01")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := in.Read(0, 2.0), 2.02; math.Abs(got-want) > 1e-12 {
		t.Errorf("gain read = %g, want %g", got, want)
	}
	in, err = NewFromString("offset:v=-10mV")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := in.Read(0, 2.0), 1.99; math.Abs(got-want) > 1e-12 {
		t.Errorf("offset read = %g, want %g", got, want)
	}
	// A windowed measurement fault is inert outside its window.
	in, err = NewFromString("offset:v=100mV,at=5")
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Read(1, 2.0); got != 2.0 {
		t.Errorf("windowed offset leaked outside window: %g", got)
	}
	// Reads never go negative.
	in, err = NewFromString("offset:v=-1")
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Read(0, 0.5); got != 0 {
		t.Errorf("negative read not clamped: %g", got)
	}
}

func TestStuckBit(t *testing.T) {
	adc := mcu.MSP430ADC12()
	v := 2.0

	in, err := NewFromString("stuck:bit=0") // stuck-at-1 by default
	if err != nil {
		t.Fatal(err)
	}
	want := adc.Voltage(adc.Quantize(v) | 1)
	if got := in.Read(0, v); got != want {
		t.Errorf("stuck-at-1 bit 0: %g, want %g", got, want)
	}

	in, err = NewFromString("stuck:bit=3,val=0")
	if err != nil {
		t.Fatal(err)
	}
	want = adc.Voltage(adc.Quantize(v) &^ (1 << 3))
	if got := in.Read(0, v); got != want {
		t.Errorf("stuck-at-0 bit 3: %g, want %g", got, want)
	}
}

func TestStochasticDeterminism(t *testing.T) {
	const spec = "seed:9;noise:sigma=5mV;jitter:sigma=1ms"
	a, err := NewFromString(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFromString(spec)
	if err != nil {
		t.Fatal(err)
	}
	var sawNoise, sawJitter bool
	for i := 0; i < 100; i++ {
		t0 := float64(i) * 1e-3
		av, bv := a.Read(t0, 2.2), b.Read(t0, 2.2)
		if av != bv {
			t.Fatalf("same seed diverged at sample %d: %g vs %g", i, av, bv)
		}
		if av != 2.2 {
			sawNoise = true
		}
		at, bt := a.SampleTime(t0), b.SampleTime(t0)
		if at != bt {
			t.Fatalf("same seed jitter diverged at sample %d", i)
		}
		if at != t0 {
			sawJitter = true
		}
		if at < 0 {
			t.Fatalf("jittered time went negative: %g", at)
		}
	}
	if !sawNoise || !sawJitter {
		t.Error("stochastic faults never perturbed anything")
	}

	// A different seed draws a different stream.
	c, err := NewFromString("seed:10;noise:sigma=5mV;jitter:sigma=1ms")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 16; i++ {
		if a.Read(1, 2.2) != c.Read(1, 2.2) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

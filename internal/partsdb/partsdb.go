// Package partsdb provides the capacitor part catalogue behind Figure 3:
// volume versus ESR for 45 mF banks assembled from different capacitor
// technologies.
//
// The paper built this figure from Digikey distributor metadata (the 500
// shortest parts per technology). That dataset is proprietary and offline,
// so this package synthesizes a catalogue from per-technology parametric
// models calibrated to the anchors the paper states explicitly:
//
//   - supercapacitors: a 45 mF bank from six parts, ~20 nA total leakage,
//     the smallest volume of all technologies, but ohms of ESR;
//   - ceramics: ~10 mΩ ESR per part (the paper's own approximation) but
//     >2,000 parts to reach 45 mF;
//   - tantalums: volumetrically competitive but with tens of mA of leakage
//     in the smallest banks;
//   - electrolytics: too much volume for too little energy, with the
//     low-ESR-optimized parts larger than a US pint glass as a bank.
//
// Everything is deterministic given the seed.
package partsdb

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"culpeo/internal/capacitor"
	"culpeo/internal/harness"
	"culpeo/internal/load"
	"culpeo/internal/powersys"
	"culpeo/internal/sweep"
)

// DefaultSeed reproduces the catalogue used by the repository's figures.
const DefaultSeed = 2022

// DefaultPartsPerTech matches the paper's 500 shortest parts per category.
const DefaultPartsPerTech = 500

// TargetBankC is the figure's bank capacitance.
const TargetBankC = 45e-3

// logUniform draws from [lo, hi] uniformly in log space.
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}

// jitter multiplies v by a lognormal-ish factor in [1/f, f].
func jitter(rng *rand.Rand, v, f float64) float64 {
	return v * math.Exp((rng.Float64()*2-1)*math.Log(f))
}

// CatalogTech synthesizes n parts of one technology.
func CatalogTech(tech capacitor.Technology, n int, seed int64) []capacitor.Part {
	rng := rand.New(rand.NewSource(seed + int64(tech)*7919))
	parts := make([]capacitor.Part, 0, n)
	for i := 0; i < n; i++ {
		var p capacitor.Part
		switch tech {
		case capacitor.Supercap:
			// Anchor: CPX3225A752D-class — 7.5 mF, 3.2×2.5×0.88 mm ≈ 7 mm³,
			// ~9 Ω, ~3 nA leakage.
			c := logUniform(rng, 3.3e-3, 1.5)
			vol := jitter(rng, 1.3*math.Pow(c/1e-3, 0.83), 1.6)
			esr := jitter(rng, 30*math.Pow(vol, -0.6), 1.8)
			dcl := jitter(rng, 0.47e-9*vol, 1.5)
			p = capacitor.Part{Tech: tech, C: c, ESR: esr, Volume: vol, DCL: dcl, MaxVoltage: 2.7}
		case capacitor.Ceramic:
			// MLCC effective capacitance under the 2.5 V rail's DC bias tops
			// out around 22 µF — which is what makes a 45 mF ceramic bank
			// take >2,000 parts. ESR is ~10 mΩ (the paper's assumed value,
			// since distributor metadata omits it).
			c := logUniform(rng, 1e-6, 22e-6)
			vol := jitter(rng, 7*math.Pow(c/100e-6, 0.9), 1.5)
			esr := jitter(rng, 10e-3, 1.3)
			dcl := jitter(rng, 5e-9, 2)
			p = capacitor.Part{Tech: tech, C: c, ESR: esr, Volume: vol, DCL: dcl, MaxVoltage: 6.3}
		case capacitor.Tantalum:
			// Dense but leaky: DCL scales with C·V_rated.
			c := logUniform(rng, 1e-6, 1.5e-3)
			vol := jitter(rng, 70*math.Pow(c/1e-3, 0.85), 1.6)
			esr := jitter(rng, 0.9*math.Pow(c/1e-3, -0.3), 1.8)
			dcl := jitter(rng, 0.022*c*25, 1.4)
			p = capacitor.Part{Tech: tech, C: c, ESR: esr, Volume: vol, DCL: dcl, MaxVoltage: 25}
		case capacitor.Electrolytic:
			// Bulky; ESR trades against volume (low-ESR families are
			// physically large).
			c := logUniform(rng, 10e-6, 45e-3)
			esr := logUniform(rng, 8e-3, 2.0)
			vol := jitter(rng, 900*math.Pow(c/1e-3, 0.75)*math.Pow(0.1/esr, 0.45), 1.7)
			dcl := jitter(rng, 0.002*c*16, 1.5)
			p = capacitor.Part{Tech: tech, C: c, ESR: esr, Volume: vol, DCL: dcl, MaxVoltage: 16}
		default:
			continue
		}
		p.PartNumber = fmt.Sprintf("%s-%04d", tech, i)
		parts = append(parts, p)
	}
	return parts
}

// Catalog synthesizes the full four-technology catalogue.
func Catalog(seed int64) []capacitor.Part {
	var all []capacitor.Part
	for _, tech := range capacitor.Technologies() {
		all = append(all, CatalogTech(tech, DefaultPartsPerTech, seed)...)
	}
	return all
}

// Index provides part-number lookup over a catalogue — the resolution path
// the serving layer takes when a request names a capacitor part instead of
// spelling out C and ESR. The index is immutable after construction, so it
// is safe for concurrent use.
type Index struct {
	byNumber map[string]capacitor.Part
}

// NewIndex builds a part-number index over a catalogue. Later duplicates of
// a part number win, matching a distributor feed where re-listed parts
// supersede earlier rows.
func NewIndex(parts []capacitor.Part) *Index {
	ix := &Index{byNumber: make(map[string]capacitor.Part, len(parts))}
	for _, p := range parts {
		ix.byNumber[p.PartNumber] = p
	}
	return ix
}

// Len returns how many distinct part numbers the index holds.
func (ix *Index) Len() int { return len(ix.byNumber) }

// Part looks up a part by its catalogue number.
func (ix *Index) Part(number string) (capacitor.Part, bool) {
	p, ok := ix.byNumber[number]
	return p, ok
}

// Bank resolves a part number into an assembled bank of the target
// capacitance (targetC <= 0 selects the figure's 45 mF).
func (ix *Index) Bank(number string, targetC float64) (capacitor.Bank, error) {
	p, ok := ix.Part(number)
	if !ok {
		return capacitor.Bank{}, fmt.Errorf("partsdb: unknown part %q", number)
	}
	if targetC <= 0 {
		targetC = TargetBankC
	}
	return capacitor.AssembleBank(p, targetC)
}

var (
	defaultIndexOnce sync.Once
	defaultIndex     *Index
)

// DefaultIndex returns the process-wide index over the default-seed
// catalogue, built lazily on first use (synthesizing 2,000 parts costs
// milliseconds — too much per request, nothing at startup).
func DefaultIndex() *Index {
	defaultIndexOnce.Do(func() { defaultIndex = NewIndex(Catalog(DefaultSeed)) })
	return defaultIndex
}

// BankSweep assembles a targetC bank from every part, in parallel, and
// returns them sorted by volume. Parts that cannot reach the target (e.g.
// per-part C too far off) are skipped, matching the distributor-catalogue
// reality that not every listed part yields a buildable bank.
func BankSweep(ctx context.Context, parts []capacitor.Part, targetC float64) ([]capacitor.Bank, error) {
	type cell struct {
		bank capacitor.Bank
		ok   bool
	}
	cells, err := sweep.Map(ctx, parts, func(_ context.Context, _ int, p capacitor.Part) (cell, error) {
		b, err := capacitor.AssembleBank(p, targetC)
		if err != nil {
			return cell{}, nil // unbuildable part: skip, not a sweep failure
		}
		return cell{bank: b, ok: true}, nil
	})
	if err != nil {
		return nil, err
	}
	banks := make([]capacitor.Bank, 0, len(cells))
	for _, c := range cells {
		if c.ok {
			banks = append(banks, c.bank)
		}
	}
	sort.Slice(banks, func(i, j int) bool { return banks[i].Volume() < banks[j].Volume() })
	return banks, nil
}

// VSafeSweepOptions configures BankVSafeSweep.
type VSafeSweepOptions struct {
	// Warm chains the searches: banks are walked in ESR order (every bank
	// targets the same capacitance, so ESR is the axis V_safe varies along)
	// and each search is hinted with its predecessor's result ± a guard
	// band. Hints are endpoint-verified before being trusted
	// (harness.GroundTruthHinted), so a technology-boundary jump that
	// outruns the guard band costs a cold search for that bank, never a
	// wrong V_safe.
	Warm bool
	// Fast selects the analytic segment-advance stepper for every probe.
	Fast bool
}

// BankVSafeSweep finds the task's true ground-truth V_safe on every bank:
// the number a designer actually shops on — Figure 3 trades volume against
// ESR, and ESR is only interesting because of what it does to V_safe.
// Results are returned in input order. The walk itself is sequential (a
// warm hint needs its predecessor's result); parallel callers should
// partition banks into independent chains.
func BankVSafeSweep(ctx context.Context, banks []capacitor.Bank, task load.Profile, opt VSafeSweepOptions) ([]float64, error) {
	out := make([]float64, len(banks))
	order := make([]int, len(banks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return banks[order[a]].ESR() < banks[order[b]].ESR() })
	var hint *harness.Bracket
	for _, i := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b := banks[i]
		// Mirror the serving layer's bank resolution (serve.resolvePower):
		// the evaluated configuration with the bank's assembled C and ESR
		// as the storage branch.
		cfg := powersys.Capybara()
		br := capacitor.Branch{Name: "main", C: b.C(), ESR: b.ESR(), Voltage: cfg.VHigh}
		net, err := capacitor.NewNetwork(&br)
		if err != nil {
			return nil, fmt.Errorf("partsdb: bank %s: %w", b.Part.PartNumber, err)
		}
		cfg.Storage = net
		h, err := harness.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("partsdb: bank %s: %w", b.Part.PartNumber, err)
		}
		h.Fast = opt.Fast
		v, err := h.GroundTruthHinted(ctx, task, 0, hint)
		if err != nil {
			return nil, fmt.Errorf("partsdb: bank %s: %w", b.Part.PartNumber, err)
		}
		out[i] = v
		if opt.Warm {
			hint = &harness.Bracket{Lo: v - harness.WarmGuardBand, Hi: v + harness.WarmGuardBand}
		}
	}
	return out, nil
}

// BestByVolume returns, per technology, the bank with the smallest total
// volume.
func BestByVolume(banks []capacitor.Bank) map[capacitor.Technology]capacitor.Bank {
	best := map[capacitor.Technology]capacitor.Bank{}
	for _, b := range banks {
		cur, ok := best[b.Part.Tech]
		if !ok || b.Volume() < cur.Volume() {
			best[b.Part.Tech] = b
		}
	}
	return best
}

// Summary captures the Figure 3 narrative for one technology.
type Summary struct {
	Tech       capacitor.Technology
	Banks      int
	MinVolume  float64 // mm³ of the smallest bank
	ESRAtMin   float64 // ESR of that bank
	PartsAtMin int     // part count of that bank
	DCLAtMin   float64 // leakage of that bank
}

// Summarize reduces a sweep to per-technology summaries, ordered as
// capacitor.Technologies.
func Summarize(banks []capacitor.Bank) []Summary {
	best := BestByVolume(banks)
	counts := map[capacitor.Technology]int{}
	for _, b := range banks {
		counts[b.Part.Tech]++
	}
	var out []Summary
	for _, tech := range capacitor.Technologies() {
		b, ok := best[tech]
		if !ok {
			continue
		}
		out = append(out, Summary{
			Tech:       tech,
			Banks:      counts[tech],
			MinVolume:  b.Volume(),
			ESRAtMin:   b.ESR(),
			PartsAtMin: b.Count,
			DCLAtMin:   b.DCL(),
		})
	}
	return out
}

package partsdb

import (
	"context"
	"math"
	"testing"

	"culpeo/internal/capacitor"
	"culpeo/internal/core"
	"culpeo/internal/harness"
	"culpeo/internal/load"
)

func TestCatalogDeterministic(t *testing.T) {
	a := Catalog(DefaultSeed)
	b := Catalog(DefaultSeed)
	if len(a) != len(b) || len(a) != 4*DefaultPartsPerTech {
		t.Fatalf("catalog sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("catalog not deterministic at %d", i)
		}
	}
	c := Catalog(DefaultSeed + 1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical catalogues")
	}
}

func TestCatalogPhysicalSanity(t *testing.T) {
	for _, p := range Catalog(DefaultSeed) {
		if p.C <= 0 || p.ESR <= 0 || p.Volume <= 0 || p.DCL < 0 {
			t.Fatalf("unphysical part %+v", p)
		}
		if p.PartNumber == "" {
			t.Fatal("part without part number")
		}
	}
}

func TestBankSweepSorted(t *testing.T) {
	banks, err := BankSweep(context.Background(), Catalog(DefaultSeed), TargetBankC)
	if err != nil {
		t.Fatal(err)
	}
	if len(banks) == 0 {
		t.Fatal("no banks assembled")
	}
	for i := 1; i < len(banks); i++ {
		if banks[i].Volume() < banks[i-1].Volume() {
			t.Fatal("sweep not sorted by volume")
		}
	}
	for _, b := range banks {
		if b.C() < TargetBankC-1e-12 {
			t.Fatalf("bank under target: %v", b)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	// The figure's qualitative claims, which the synthetic catalogue must
	// reproduce.
	banks, err := BankSweep(context.Background(), Catalog(DefaultSeed), TargetBankC)
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(banks)
	byTech := map[capacitor.Technology]Summary{}
	for _, s := range sums {
		byTech[s.Tech] = s
	}
	super := byTech[capacitor.Supercap]
	ceramic := byTech[capacitor.Ceramic]
	tant := byTech[capacitor.Tantalum]
	elec := byTech[capacitor.Electrolytic]

	// 1. Supercapacitors give the smallest bank of all technologies.
	for _, other := range []Summary{ceramic, tant, elec} {
		if !(super.MinVolume < other.MinVolume) {
			t.Errorf("supercap bank (%.0f mm³) should be smaller than %s (%.0f mm³)",
				super.MinVolume, other.Tech, other.MinVolume)
		}
	}
	// 2. ...with single-digit part count and ~tens of nA leakage.
	if super.PartsAtMin > 16 {
		t.Errorf("supercap part count = %d, want single digits", super.PartsAtMin)
	}
	if super.DCLAtMin > 200e-9 {
		t.Errorf("supercap bank DCL = %g, want tens of nA", super.DCLAtMin)
	}
	// 3. ...but the highest ESR.
	for _, other := range []Summary{ceramic, tant, elec} {
		if !(super.ESRAtMin > other.ESRAtMin) {
			t.Errorf("supercap ESR (%g) should exceed %s (%g)",
				super.ESRAtMin, other.Tech, other.ESRAtMin)
		}
	}
	// 4. Ceramic banks need an impractical number of parts (>1000).
	if ceramic.PartsAtMin < 1000 {
		t.Errorf("ceramic part count = %d, want thousands", ceramic.PartsAtMin)
	}
	// 5. The smallest tantalum banks leak milliamps.
	if tant.DCLAtMin < 1e-3 {
		t.Errorf("tantalum bank DCL = %g, want mA-scale", tant.DCLAtMin)
	}
	// 6. Electrolytic banks are orders of magnitude larger than supercaps.
	if !(elec.MinVolume > 50*super.MinVolume) {
		t.Errorf("electrolytic bank (%.0f mm³) should dwarf supercap (%.0f mm³)",
			elec.MinVolume, super.MinVolume)
	}
}

func TestSupercapAnchor(t *testing.T) {
	// A CPX3225A-class 7.5 mF part must make a ~6-part, ~20 nA, sub-100 mm³
	// 45 mF bank — the "This Work" annotation of Figure 3.
	p := capacitor.Part{
		PartNumber: "CPX3225A752D", Tech: capacitor.Supercap,
		C: 7.5e-3, ESR: 9, Volume: 7.04, DCL: 3.3e-9,
	}
	b, err := capacitor.AssembleBank(p, TargetBankC)
	if err != nil {
		t.Fatal(err)
	}
	if b.Count != 6 {
		t.Errorf("parts = %d, want 6", b.Count)
	}
	if math.Abs(b.DCL()-19.8e-9) > 1e-12 {
		t.Errorf("DCL = %g, want ≈20 nA", b.DCL())
	}
	if b.Volume() > 100 {
		t.Errorf("volume = %g mm³, want rice-grain scale", b.Volume())
	}
}

func TestSummarizeCountsAllBanks(t *testing.T) {
	banks, err := BankSweep(context.Background(), Catalog(DefaultSeed), TargetBankC)
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(banks)
	total := 0
	for _, s := range sums {
		total += s.Banks
	}
	if total != len(banks) {
		t.Errorf("summaries cover %d banks of %d", total, len(banks))
	}
	if len(sums) != 4 {
		t.Errorf("technologies summarized = %d", len(sums))
	}
}

func TestBestByVolume(t *testing.T) {
	banks, err := BankSweep(context.Background(), Catalog(DefaultSeed), TargetBankC)
	if err != nil {
		t.Fatal(err)
	}
	best := BestByVolume(banks)
	for tech, b := range best {
		for _, other := range banks {
			if other.Part.Tech == tech && other.Volume() < b.Volume() {
				t.Fatalf("%s: found smaller bank than 'best'", tech)
			}
		}
	}
}

func TestIndexLookup(t *testing.T) {
	parts := Catalog(DefaultSeed)
	ix := NewIndex(parts)
	if ix.Len() != len(parts) {
		t.Fatalf("index holds %d of %d parts", ix.Len(), len(parts))
	}
	for _, want := range []string{"supercapacitor-0000", "ceramic-0499", "tantalum-0042", "electrolytic-0007"} {
		p, ok := ix.Part(want)
		if !ok {
			t.Fatalf("part %q missing from index", want)
		}
		if p.PartNumber != want {
			t.Errorf("looked up %q, got %q", want, p.PartNumber)
		}
	}
	if _, ok := ix.Part("unobtainium-9999"); ok {
		t.Error("index resolved a nonexistent part")
	}
}

func TestIndexBank(t *testing.T) {
	ix := DefaultIndex()
	b, err := ix.Bank("supercapacitor-0000", 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.C() < TargetBankC {
		t.Errorf("default-target bank C = %g, want >= %g", b.C(), TargetBankC)
	}
	if _, err := ix.Bank("unobtainium-9999", 0); err == nil {
		t.Error("unknown part assembled a bank")
	}
}

func TestDefaultIndexShared(t *testing.T) {
	if DefaultIndex() != DefaultIndex() {
		t.Error("DefaultIndex rebuilt per call")
	}
}

// TestBankVSafeSweepWarmEquivalence: the warm-chained V_safe sweep must
// agree with the cold sweep within the harness search tolerance on every
// bank, engage the warm path on the ESR-adjacent banks, and survive the
// supercap→ceramic technology jump (a hint violation) via fallback.
func TestBankVSafeSweepWarmEquivalence(t *testing.T) {
	ix := DefaultIndex()
	var banks []capacitor.Bank
	for _, num := range []string{
		"supercapacitor-0000", "supercapacitor-0001", "supercapacitor-0002", "supercapacitor-0003",
		"ceramic-0000", // ESR three orders of magnitude below the supercaps
	} {
		b, err := ix.Bank(num, TargetBankC)
		if err != nil {
			t.Fatal(err)
		}
		banks = append(banks, b)
	}
	task := load.NewPulse(30e-3, 1e-3)
	cold, err := BankVSafeSweep(context.Background(), banks, task, VSafeSweepOptions{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	core.ResetWarmStats()
	warm, err := BankVSafeSweep(context.Background(), banks, task, VSafeSweepOptions{Warm: true, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range banks {
		if math.Abs(warm[i]-cold[i]) > harness.Tolerance {
			t.Errorf("bank %s: warm V_safe %.6f diverges from cold %.6f by %.2f mV",
				banks[i].Part.PartNumber, warm[i], cold[i], math.Abs(warm[i]-cold[i])*1e3)
		}
	}
	hits, _ := core.WarmStats()
	if hits == 0 {
		t.Error("no warm hits across ESR-adjacent banks")
	}
}

package netchaos

import (
	"strings"
	"testing"
)

// FuzzParse checks the schedule parser never panics, that accepted specs
// are internally consistent, and that the canonical String form is a
// fixed point: Parse(s).String() re-parses to itself. Malformed specs
// must come back as errors — a chaos schedule that panics the harness is
// a chaos tool failing its own job.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed:7;latency:d=2ms;h503:retryafter=1,from=5,count=2,every=19",
		"reset:after=200,from=11,count=1,every=23",
		"blackhole:from=8,count=1,every=31",
		"down:from=3,count=2,every=10;slow:chunk=64,delay=5ms",
		"latency:d=250ms,jitter=50ms;h503",
		"seed:-3;latency:jitter=1ms",
		"h503:retryafter=0",
		"slow",
		"down;;down",
		strings.Repeat("blackhole;", 50),
		"latency:d=0.001",
		"reset",
		"partition:plo=8080",
		"partition:plo=9000,phi=9007,from=4,count=3,every=16",
		"partition:phi=80",
		"partition",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := Parse(s)
		if err != nil {
			return
		}
		for _, fl := range spec.Faults {
			if fl.Win.From < 0 || fl.Win.Count < 0 || fl.Win.Every < 0 {
				t.Fatalf("accepted negative window: %+v", fl)
			}
			if fl.Win.Every > 0 && (fl.Win.Count <= 0 || fl.Win.Count > fl.Win.Every) {
				t.Fatalf("accepted inconsistent window: %+v", fl)
			}
			if fl.D < 0 || fl.Jitter < 0 || fl.Delay < 0 {
				t.Fatalf("accepted negative duration: %+v", fl)
			}
			if fl.After < 0 || fl.RetryAfter < 0 || fl.Chunk < 0 {
				t.Fatalf("accepted negative count: %+v", fl)
			}
			if fl.Kind == Latency && fl.D == 0 && fl.Jitter == 0 {
				t.Fatalf("accepted no-op latency: %+v", fl)
			}
			if fl.Kind == Slow && (fl.Chunk == 0 || fl.Delay == 0) {
				t.Fatalf("accepted undefaulted slow: %+v", fl)
			}
			if fl.Kind == Partition && (fl.PLo < 1 || fl.PHi < fl.PLo || fl.PHi > 65535) {
				t.Fatalf("accepted bad partition range: %+v", fl)
			}
			if fl.Kind != Partition && (fl.PLo != 0 || fl.PHi != 0) {
				t.Fatalf("port range leaked onto %s: %+v", fl.Kind, fl)
			}
		}
		canon := spec.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, again.String())
		}
	})
}
